# Pinned lint-tool versions — keep in sync with .github/workflows/ci.yml.
# These are installed on demand (network required); spash-vet itself
# builds offline from the standard library alone.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

GOBIN := $(shell go env GOPATH)/bin

.PHONY: all build test race lint vet vet-sarif staticcheck govulncheck fuzz-smoke serve-smoke clean

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/core ./internal/pmem ./internal/htm ./internal/obs \
		./internal/harness ./internal/shard ./internal/alloc ./internal/repl \
		./internal/resp ./internal/server
	go test -race . -run 'Sharded|Shard|Close|Scrubber'
	go test -race ./internal/crashtest -short

# lint runs the invariant suite plus the external linters when they are
# installed. The external tools are skipped (with a note) when absent so
# the target works on an offline machine; CI always installs them.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		$(MAKE) --no-print-directory staticcheck; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		$(MAKE) --no-print-directory govulncheck; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# vet runs go vet with spash-vet layered on top, exactly as CI does.
vet:
	go vet ./...
	go build -o $(CURDIR)/bin/spash-vet ./cmd/spash-vet
	go vet -vettool=$(CURDIR)/bin/spash-vet ./...

# vet-sarif emits the findings as SARIF 2.1.0 — the format the CI
# code-scanning job uploads — honoring the committed baseline. The file
# is written even when findings fail the run, so it can be inspected.
vet-sarif:
	go run ./cmd/spash-vet -sarif -baseline .spash-vet-baseline ./... > spash-vet.sarif; \
		rc=$$?; echo "wrote spash-vet.sarif"; exit $$rc

staticcheck:
	staticcheck -checks=SA ./...

govulncheck:
	govulncheck ./...

fuzz-smoke:
	go test ./internal/core -run '^$$' -fuzz=FuzzInsertSearchDelete -fuzztime=30s
	go test ./internal/core -run '^$$' -fuzz=FuzzSlotCodec -fuzztime=30s
	go test ./internal/resp -run '^$$' -fuzz=FuzzReadCommand -fuzztime=30s
	go test ./internal/resp -run '^$$' -fuzz=FuzzReadReply -fuzztime=30s

# serve-smoke starts spash-serve on loopback, runs a short pipelined
# YCSB scan against it and checks the artifact, mirroring CI's job.
serve-smoke:
	mkdir -p bin
	go build -o bin/spash-serve ./cmd/spash-serve
	go build -o bin/spash-cli ./cmd/spash-cli
	go build -o bin/spash-ycsb ./cmd/spash-ycsb
	bin/spash-serve -addr 127.0.0.1:6399 -shards 2 & \
		pid=$$!; sleep 1; \
		printf 'put smoke v1\nget smoke\nquit\n' | bin/spash-cli -connect 127.0.0.1:6399; \
		bin/spash-ycsb -net 127.0.0.1:6399 -records 20000 -ops 40000 \
			-connections 1,4,16 -shards 2 -json /tmp/BENCH_serve_smoke.json; \
		kill -INT $$pid; wait $$pid

clean:
	rm -rf bin
