package spash

// Benchmark harness entry points: one testing.B benchmark per figure
// and table of the paper's evaluation (regenerated at small scale —
// use cmd/spash-bench for the full medium/large-scale tables), plus
// conventional per-operation microbenchmarks of the index itself.

import (
	"encoding/binary"
	"io"
	"math/rand"
	"testing"

	"spash/internal/harness"
)

// --- per-operation microbenchmarks (real time per op) ---------------

func benchDB(b *testing.B) (*DB, *Session) {
	b.Helper()
	cfg := DefaultPlatform()
	cfg.PoolSize = 512 << 20
	db, err := Open(Options{Platform: cfg})
	if err != nil {
		b.Fatal(err)
	}
	return db, db.Session()
}

func bkey(buf []byte, v uint64) []byte {
	binary.LittleEndian.PutUint64(buf, v)
	return buf[:8]
}

func BenchmarkInsert(b *testing.B) {
	_, s := benchDB(b)
	kb := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Insert(bkey(kb, uint64(i)), bkey(kb, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	_, s := benchDB(b)
	const n = 100000
	kb := make([]byte, 8)
	vb := make([]byte, 8)
	for i := uint64(0); i < n; i++ {
		binary.LittleEndian.PutUint64(vb, i)
		s.Insert(bkey(kb, i), vb)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := s.Get(bkey(kb, rng.Uint64()%n), nil); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSearchPipelined(b *testing.B) {
	_, s := benchDB(b)
	const n = 100000
	kb := make([]byte, 8)
	for i := uint64(0); i < n; i++ {
		s.Insert(bkey(kb, i), bkey(kb, i))
	}
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = make([]byte, 8)
	}
	ops := make([]Op, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(ops) {
		for j := range ops {
			binary.LittleEndian.PutUint64(keys[j], rng.Uint64()%n)
			ops[j] = Op{Kind: OpGet, Key: keys[j]}
		}
		s.ExecBatch(ops)
	}
}

func BenchmarkUpdateHot(b *testing.B) {
	_, s := benchDB(b)
	const n = 100000
	kb := make([]byte, 8)
	vb := make([]byte, 8)
	for i := uint64(0); i < n; i++ {
		s.Insert(bkey(kb, i), bkey(kb, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(vb, uint64(i))
		// A tiny hot set: the adaptive policy serves these in cache.
		if _, err := s.Update(bkey(kb, uint64(i%16)), vb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	_, s := benchDB(b)
	kb := make([]byte, 8)
	for i := uint64(0); i < uint64(b.N); i++ {
		s.Insert(bkey(kb, i), bkey(kb, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := s.Delete(bkey(kb, uint64(i))); !ok {
			b.Fatal("miss")
		}
	}
}

// --- one benchmark per paper figure/table ---------------------------

// benchFigure runs a figure runner once per iteration at small scale.
func benchFigure(b *testing.B, run func(io.Writer, harness.Scale) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := run(io.Discard, harness.ScaleSmall); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1FlushStrategies(b *testing.B)  { benchFigure(b, harness.Fig1) }
func BenchmarkFig7Throughput(b *testing.B)       { benchFigure(b, harness.Fig7) }
func BenchmarkFig8PMAccesses(b *testing.B)       { benchFigure(b, harness.Fig8) }
func BenchmarkFig9LoadFactor(b *testing.B)       { benchFigure(b, harness.Fig9) }
func BenchmarkFig10YCSBInline(b *testing.B)      { benchFigure(b, harness.Fig10) }
func BenchmarkFig11YCSBVariable(b *testing.B)    { benchFigure(b, harness.Fig11) }
func BenchmarkFig12aUpdatePolicy(b *testing.B)   { benchFigure(b, harness.Fig12a) }
func BenchmarkFig12bCompactedFlush(b *testing.B) { benchFigure(b, harness.Fig12b) }
func BenchmarkFig12cConcurrency(b *testing.B)    { benchFigure(b, harness.Fig12c) }
func BenchmarkFig12dPipelineDepth(b *testing.B)  { benchFigure(b, harness.Fig12d) }
func BenchmarkTable1FlushPolicy(b *testing.B)    { benchFigure(b, harness.Table1) }

// --- comparative per-operation benchmarks across all indexes --------

func benchIndexOps(b *testing.B, e harness.Entry) {
	ix, err := e.New(harness.ScaleSmall.Platform())
	if err != nil {
		b.Fatal(err)
	}
	w := ix.NewWorker()
	defer w.Close()
	const preload = 50000
	kb := make([]byte, 8)
	for i := uint64(0); i < preload; i++ {
		binary.LittleEndian.PutUint64(kb, i)
		if err := w.Insert(kb, kb); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			binary.LittleEndian.PutUint64(kb, rng.Uint64()%preload)
			if _, ok, _ := w.Search(kb, nil); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("update", func(b *testing.B) {
		vb := make([]byte, 8)
		for i := 0; i < b.N; i++ {
			binary.LittleEndian.PutUint64(kb, rng.Uint64()%preload)
			binary.LittleEndian.PutUint64(vb, uint64(i))
			if ok, _ := w.Update(kb, vb); !ok {
				b.Fatal("miss")
			}
		}
	})
}

func BenchmarkIndexSpash(b *testing.B)  { benchIndexOps(b, harness.SpashEntry()) }
func BenchmarkIndexCCEH(b *testing.B)   { benchIndexOps(b, harness.MicroRoster()[2]) }
func BenchmarkIndexDash(b *testing.B)   { benchIndexOps(b, harness.MicroRoster()[3]) }
func BenchmarkIndexLevel(b *testing.B)  { benchIndexOps(b, harness.MicroRoster()[4]) }
func BenchmarkIndexCLevel(b *testing.B) { benchIndexOps(b, harness.MicroRoster()[5]) }
func BenchmarkIndexPlush(b *testing.B)  { benchIndexOps(b, harness.MicroRoster()[6]) }
