// Command spash-bench regenerates the paper's evaluation: every figure
// and table of §VI, measured on the simulated PM platform in virtual
// time.
//
// Usage:
//
//	spash-bench [-fig all|1|7|8|9|10|11|12a|12b|12c|12d|table1|ext-doubling|ext-hotspot|ext-eadr|ext-integrity] [-scale small|medium|large]
//	            [-json DIR] [-metrics-addr HOST:PORT]
//
// Output is a sequence of labelled tables (one per figure panel); see
// EXPERIMENTS.md for the mapping to the paper's figures and the
// expected shapes. With -json each figure additionally writes a
// machine-readable BENCH_<fig>.json artifact (results + obs snapshot)
// into DIR. With -metrics-addr the process serves /metrics (Prometheus
// text over the latest snapshot), /debug/vars, /debug/obs/trace and
// /debug/pprof while the figures run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"spash"
	"spash/internal/harness"
	"spash/internal/obs"
)

type figure struct {
	name string
	desc string
	run  func(io.Writer, harness.Scale) error
}

var figures = []figure{
	{"1", "PM write bandwidth under flush strategies (Fig 1)", harness.Fig1},
	{"7", "single-operation throughput vs workers (Fig 7)", harness.Fig7},
	{"8", "PM accesses per operation (Fig 8)", harness.Fig8},
	{"9", "load factor vs inserted entries (Fig 9)", harness.Fig9},
	{"10", "YCSB, inlined key-values (Fig 10)", harness.Fig10},
	{"11", "YCSB, variable-sized values (Fig 11)", harness.Fig11},
	{"12a", "adaptive in-place update ablation (Fig 12a)", harness.Fig12a},
	{"12b", "compacted-flush insertion ablation (Fig 12b)", harness.Fig12b},
	{"12c", "concurrency-protocol ablation (Fig 12c)", harness.Fig12c},
	{"12d", "pipeline depth (Fig 12d)", harness.Fig12d},
	{"table1", "adaptive flush policy validation (Table I)", harness.Table1},
	{"ext-doubling", "staged vs monolithic doubling tail latency (extension)", harness.ExtDoublingTail},
	{"ext-hotspot", "hotspot detector sizing sweep (extension)", harness.ExtHotspotSweep},
	{"ext-eadr", "eADR+HTM vs legacy-ADR discipline (extension)", harness.ExtEADRBenefit},
	{"ext-integrity", "checksum-seal overhead, off vs on (extension)", harness.ExtIntegrity},
	{"shards", "shard scaling: throughput vs shards × threads (extension)", harness.FigShards},
}

// curRec is the recorder of the figure currently running; the
// /metrics source reads it so scrapes follow the active figure.
var curRec atomic.Pointer[harness.Recorder]

func main() {
	figFlag := flag.String("fig", "all", "figure to regenerate (all, 1, 7-11, 12a-12d, table1, ext-doubling, ext-hotspot, ext-eadr, ext-integrity, shards)")
	scaleFlag := flag.String("scale", "medium", "workload scale (small, medium, large)")
	jsonDir := flag.String("json", "", "write one BENCH_<fig>.json artifact per figure into this directory")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/obs/trace and /debug/pprof on this address (off when empty)")
	shardsFlag := flag.String("shards", "", "comma-separated shard counts for the shards figure (default 1,2,4,8)")
	flag.Parse()

	scale, err := harness.ScaleByName(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *shardsFlag != "" {
		var counts []int
		for _, f := range strings.Split(*shardsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -shards value %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		harness.SetShardCounts(counts)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metricsAddr != "" {
		obs.SetDefault(nil, func() obs.Snapshot { return curRec.Load().Obs() })
		// The metrics server intentionally lives until process exit.
		addr, _, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics (also /debug/vars, /debug/pprof)\n", addr)
	}

	wanted := strings.Split(*figFlag, ",")
	match := func(name string) bool {
		for _, w := range wanted {
			if w == "all" || w == name {
				return true
			}
		}
		return false
	}

	fmt.Printf("spash-bench: scale=%s (micro %d keys / %d ops, ycsb %d keys / %d ops, %d workers)\n",
		*scaleFlag, scale.MicroLoad, scale.MicroOps, scale.YCSBLoad, scale.YCSBOps, scale.MaxThreads)
	ran := 0
	for _, f := range figures {
		if !match(f.name) {
			continue
		}
		ran++
		fmt.Printf("\n==> %s\n", f.desc)
		start := time.Now()
		artName := f.name
		if artName[0] >= '0' && artName[0] <= '9' {
			artName = "fig" + artName
		}
		rec := harness.NewRecorder(artName, map[string]string{"scale": *scaleFlag})
		curRec.Store(rec)
		harness.SetRecorder(rec)
		err := f.run(os.Stdout, scale)
		harness.SetRecorder(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %s\n", f.name, spash.DescribeError(err))
			os.Exit(1)
		}
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "BENCH_"+artName+".json")
			if err := rec.WriteFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("artifact: %s\n", path)
		}
		fmt.Printf("\n(%s regenerated in %.1fs wall time)\n", f.desc, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no figure matches %q\n", *figFlag)
		os.Exit(2)
	}
}
