// Command spash-cli is an interactive shell over a Spash index on a
// simulated PM device: put/get/update/delete keys, inspect index and
// memory statistics, and inject power failures with recovery.
//
// With -connect host:port it instead speaks RESP to a running
// spash-serve (same client code as spash-ycsb -net), so the wire
// front end is testable without redis-cli.
//
// Usage:
//
//	spash-cli [-shards N]
//	spash-cli -connect 127.0.0.1:6399
//	> put user1 hello
//	> get user1
//	> stats
//	> crash        (power failure + recovery)
//	> help
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"spash"
)

func main() {
	shards := flag.Int("shards", 1, "shard count (independent devices + HTM domains)")
	connect := flag.String("connect", "", "connect to a running spash-serve at host:port instead of opening a local index")
	flag.Parse()
	if *connect != "" {
		runConnect(*connect)
		return
	}
	opts := spash.Options{Shards: *shards}
	db, err := spash.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := db.Session()
	fmt.Println("spash-cli — type 'help' for commands")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "help":
			fmt.Print(`commands:
  put <key> <value>     insert or replace
  get <key>             look up
  update <key> <value>  update existing key (adaptive in-place)
  del <key>             delete
  len                   number of entries
  lf                    load factor
  stats                 index + PM memory counters
  crash                 simulate power failure, then recover
  fsck [repair]         verify every segment; with 'repair', rebuild damaged ones
  shrink                try to halve the directory
  quit
`)
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			if err := s.Insert([]byte(fields[1]), []byte(fields[2])); err != nil {
				fmt.Println("error:", spash.DescribeError(err))
			} else {
				fmt.Println("ok")
			}
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, ok, err := s.Get([]byte(fields[1]), nil)
			switch {
			case err != nil:
				fmt.Println("error:", spash.DescribeError(err))
			case !ok:
				fmt.Println("(not found)")
			default:
				fmt.Printf("%q\n", v)
			}
		case "update":
			if len(fields) != 3 {
				fmt.Println("usage: update <key> <value>")
				continue
			}
			found, err := s.Update([]byte(fields[1]), []byte(fields[2]))
			switch {
			case err != nil:
				fmt.Println("error:", spash.DescribeError(err))
			case !found:
				fmt.Println("(not found)")
			default:
				fmt.Println("ok")
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			found, err := s.Delete([]byte(fields[1]))
			switch {
			case err != nil:
				fmt.Println("error:", spash.DescribeError(err))
			case !found:
				fmt.Println("(not found)")
			default:
				fmt.Println("ok")
			}
		case "len":
			fmt.Println(db.Len())
		case "lf":
			fmt.Printf("%.3f\n", db.LoadFactor())
		case "stats":
			st := db.Stats()
			if db.Shards() > 1 {
				for i, sh := range st.Shards {
					fmt.Printf("shard %d: entries=%d segments=%d\n", i, sh.Index.Entries, sh.Index.Segments)
				}
			}
			fmt.Printf("entries=%d segments=%d depth-splits=%d merges=%d doublings=%d\n",
				st.Index.Entries, st.Index.Segments, st.Index.Splits, st.Index.Merges, st.Index.Doubles)
			fmt.Printf("htm: conflicts=%d capacity=%d fallbacks=%d collab-stages=%d hot-hits=%d\n",
				st.Index.TxConflicts, st.Index.TxCapacity, st.Index.Fallbacks, st.Index.CollabStages, st.Index.HotHits)
			fmt.Printf("pm: cache hit/miss=%d/%d, media reads=%d XPLines, media writes=%d XPLines, flushes=%d\n",
				st.Memory.CacheHits, st.Memory.CacheMisses, st.Memory.XPLineReads, st.Memory.XPLineWrites, st.Memory.Flushes)
		case "crash":
			s.Close()
			platforms := db.Platforms()
			lost := db.Crash()
			db2, err := spash.RecoverAll(platforms, opts)
			if err != nil {
				fmt.Println("recovery failed:", spash.DescribeError(err))
				os.Exit(1)
			}
			db = db2
			s = db.Session()
			fmt.Printf("power failure: %d cachelines lost across %d device(s) (eADR keeps everything); recovered %d entries\n",
				lost, db.Shards(), db.Len())
		case "fsck":
			repair := len(fields) > 1 && fields[1] == "repair"
			rep, err := s.Fsck(repair)
			if err != nil {
				fmt.Println("error:", spash.DescribeError(err))
				continue
			}
			switch {
			case rep.Clean():
				fmt.Printf("clean (%d segments)\n", rep.Segments)
			case repair:
				fmt.Printf("%d damaged of %d segments: %d repaired, %d unrecoverable, %d keys lost\n",
					len(rep.Faults), rep.Segments, len(rep.Repairs), len(rep.Failed), len(rep.LostKeys()))
			default:
				fmt.Printf("%d damaged of %d segments (rerun as 'fsck repair' to rebuild)\n",
					len(rep.Faults), rep.Segments)
			}
		case "shrink":
			if db.TryShrink() {
				fmt.Println("directory halved")
			} else {
				fmt.Println("(no shrink possible)")
			}
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command; try 'help'")
		}
	}
}
