// Command spash-dump builds an index from a synthetic workload and
// prints its internal structure: directory depth histogram, segment
// occupancy distribution, overflow/hint usage, allocator occupancy and
// PM traffic — the introspection an operator (or a curious reader of
// the paper) wants when studying the fine-grained extendible layout.
//
// Usage:
//
//	spash-dump [-records 100000] [-valuesize 8] [-deletes 0.2] [-shards N]
//
// With -shards N the database is partitioned; the report shows one
// summary line per shard and histograms merged across all of them.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"spash"
	"spash/internal/core"
	"spash/internal/ycsb"
)

func main() {
	records := flag.Int("records", 100000, "records to insert")
	valSize := flag.Int("valuesize", 8, "value size in bytes")
	deletes := flag.Float64("deletes", 0.2, "fraction of records deleted afterwards")
	shards := flag.Int("shards", 1, "shard count (independent devices + HTM domains)")
	flag.Parse()

	platform := spash.DefaultPlatform()
	platform.PoolSize = 1 << 30
	db, err := spash.Open(spash.Options{Platform: platform, Shards: *shards})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := db.Session()

	kb := make([]byte, 16)
	vb := make([]byte, *valSize)
	for i := uint64(0); i < uint64(*records); i++ {
		var key, val []byte
		if *valSize == 8 {
			binary.LittleEndian.PutUint64(kb[:8], i)
			key = kb[:8]
			binary.LittleEndian.PutUint64(vb, i)
			val = vb[:8]
		} else {
			key = ycsb.KeyBytes(kb, i)
			ycsb.FillValue(vb, i)
			val = vb
		}
		if err := s.Insert(key, val); err != nil {
			fmt.Fprintln(os.Stderr, spash.DescribeError(err))
			os.Exit(1)
		}
	}
	del := uint64(float64(*records) * *deletes)
	for i := uint64(0); i < del; i++ {
		if *valSize == 8 {
			binary.LittleEndian.PutUint64(kb[:8], i*3%uint64(*records))
			s.Delete(kb[:8])
		} else {
			s.Delete(ycsb.KeyBytes(kb, i*3%uint64(*records)))
		}
	}

	ixs := db.Indexes()
	dumps := make([]core.DumpInfo, len(ixs))
	for i, ix := range ixs {
		dumps[i] = ix.Dump(s.ShardCtx(i))
	}
	dump := mergeDumps(dumps)
	st := db.Stats()

	fmt.Printf("spash-dump: %d inserts, %d deletes, %dB values, %d shard(s)\n\n", *records, del, *valSize, db.Shards())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if db.Shards() > 1 {
		for i := range dumps {
			fmt.Fprintf(tw, "shard %d\tentries %d, segments %d, global depth %d\n",
				i, st.Shards[i].Index.Entries, st.Shards[i].Index.Segments, dumps[i].GlobalDepth)
		}
	}
	fmt.Fprintf(tw, "entries\t%d\n", st.Index.Entries)
	fmt.Fprintf(tw, "segments\t%d\n", st.Index.Segments)
	dirEntries := 0
	for i := range dumps {
		dirEntries += 1 << dumps[i].GlobalDepth
	}
	fmt.Fprintf(tw, "global depth\t%d (directories %d entries total)\n", dump.GlobalDepth, dirEntries)
	fmt.Fprintf(tw, "load factor\t%.3f\n", db.LoadFactor())
	fmt.Fprintf(tw, "splits / merges / doublings\t%d / %d / %d\n",
		st.Index.Splits, st.Index.Merges, st.Index.Doubles)
	fmt.Fprintf(tw, "HTM conflicts / capacity / fallbacks\t%d / %d / %d\n",
		st.Index.TxConflicts, st.Index.TxCapacity, st.Index.Fallbacks)
	fmt.Fprintf(tw, "overflow entries (hinted)\t%d (%.1f%% of entries)\n",
		dump.OverflowEntries, 100*float64(dump.OverflowEntries)/float64(max64(st.Index.Entries, 1)))
	fmt.Fprintf(tw, "out-of-line keys / values\t%d / %d\n", dump.KeyRecords, dump.ValueRecords)
	fmt.Fprintf(tw, "PM media traffic\t%d XPLine reads, %d XPLine writes\n",
		st.Memory.XPLineReads, st.Memory.XPLineWrites)
	if dump.PoisonedSegments > 0 {
		fmt.Fprintf(tw, "POISONED segments (unreadable, excluded above)\t%d\n", dump.PoisonedSegments)
	}
	tw.Flush()

	fmt.Println("\nlocal-depth histogram (segments per depth):")
	for d, n := range dump.DepthHistogram {
		if n > 0 {
			fmt.Printf("  depth %2d: %6d %s\n", d, n, bar(n, dump.MaxDepthCount))
		}
	}
	fmt.Println("\nsegment occupancy histogram (entries per 16-slot segment):")
	for o, n := range dump.OccupancyHistogram {
		fmt.Printf("  %2d/16: %6d %s\n", o, n, bar(n, dump.MaxOccupancyCount))
	}
}

// mergeDumps folds per-shard structure reports into one: histograms
// are summed slot-wise, counters added, and the reported global depth
// is the deepest shard's (each shard owns its own directory).
func mergeDumps(dumps []core.DumpInfo) core.DumpInfo {
	out := dumps[0]
	for _, d := range dumps[1:] {
		if d.GlobalDepth > out.GlobalDepth {
			out.GlobalDepth = d.GlobalDepth
		}
		if len(d.DepthHistogram) > len(out.DepthHistogram) {
			out.DepthHistogram = append(out.DepthHistogram,
				make([]int, len(d.DepthHistogram)-len(out.DepthHistogram))...)
		}
		for i, n := range d.DepthHistogram {
			out.DepthHistogram[i] += n
		}
		for i, n := range d.OccupancyHistogram {
			out.OccupancyHistogram[i] += n
		}
		out.OverflowEntries += d.OverflowEntries
		out.KeyRecords += d.KeyRecords
		out.ValueRecords += d.ValueRecords
		out.PoisonedSegments += d.PoisonedSegments
	}
	out.MaxDepthCount, out.MaxOccupancyCount = 0, 0
	for _, n := range out.DepthHistogram {
		if n > out.MaxDepthCount {
			out.MaxDepthCount = n
		}
	}
	for _, n := range out.OccupancyHistogram {
		if n > out.MaxOccupancyCount {
			out.MaxOccupancyCount = n
		}
	}
	return out
}

func bar(n, max int) string {
	if max == 0 {
		return ""
	}
	w := n * 40 / max
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
