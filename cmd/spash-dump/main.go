// Command spash-dump builds an index from a synthetic workload and
// prints its internal structure: directory depth histogram, segment
// occupancy distribution, overflow/hint usage, allocator occupancy and
// PM traffic — the introspection an operator (or a curious reader of
// the paper) wants when studying the fine-grained extendible layout.
//
// Usage:
//
//	spash-dump [-records 100000] [-valuesize 8] [-deletes 0.2]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"spash"
	"spash/internal/ycsb"
)

func main() {
	records := flag.Int("records", 100000, "records to insert")
	valSize := flag.Int("valuesize", 8, "value size in bytes")
	deletes := flag.Float64("deletes", 0.2, "fraction of records deleted afterwards")
	flag.Parse()

	platform := spash.DefaultPlatform()
	platform.PoolSize = 1 << 30
	db, err := spash.Open(spash.Options{Platform: platform})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := db.Session()

	kb := make([]byte, 16)
	vb := make([]byte, *valSize)
	for i := uint64(0); i < uint64(*records); i++ {
		var key, val []byte
		if *valSize == 8 {
			binary.LittleEndian.PutUint64(kb[:8], i)
			key = kb[:8]
			binary.LittleEndian.PutUint64(vb, i)
			val = vb[:8]
		} else {
			key = ycsb.KeyBytes(kb, i)
			ycsb.FillValue(vb, i)
			val = vb
		}
		if err := s.Insert(key, val); err != nil {
			fmt.Fprintln(os.Stderr, spash.DescribeError(err))
			os.Exit(1)
		}
	}
	del := uint64(float64(*records) * *deletes)
	for i := uint64(0); i < del; i++ {
		if *valSize == 8 {
			binary.LittleEndian.PutUint64(kb[:8], i*3%uint64(*records))
			s.Delete(kb[:8])
		} else {
			s.Delete(ycsb.KeyBytes(kb, i*3%uint64(*records)))
		}
	}

	dump := db.Index().Dump(s.Ctx())
	st := db.Stats()

	fmt.Printf("spash-dump: %d inserts, %d deletes, %dB values\n\n", *records, del, *valSize)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "entries\t%d\n", st.Index.Entries)
	fmt.Fprintf(tw, "segments\t%d\n", st.Index.Segments)
	fmt.Fprintf(tw, "global depth\t%d (directory %d entries)\n", dump.GlobalDepth, 1<<dump.GlobalDepth)
	fmt.Fprintf(tw, "load factor\t%.3f\n", db.LoadFactor())
	fmt.Fprintf(tw, "splits / merges / doublings\t%d / %d / %d\n",
		st.Index.Splits, st.Index.Merges, st.Index.Doubles)
	fmt.Fprintf(tw, "HTM conflicts / capacity / fallbacks\t%d / %d / %d\n",
		st.Index.TxConflicts, st.Index.TxCapacity, st.Index.Fallbacks)
	fmt.Fprintf(tw, "overflow entries (hinted)\t%d (%.1f%% of entries)\n",
		dump.OverflowEntries, 100*float64(dump.OverflowEntries)/float64(max64(st.Index.Entries, 1)))
	fmt.Fprintf(tw, "out-of-line keys / values\t%d / %d\n", dump.KeyRecords, dump.ValueRecords)
	fmt.Fprintf(tw, "PM media traffic\t%d XPLine reads, %d XPLine writes\n",
		st.Memory.XPLineReads, st.Memory.XPLineWrites)
	if dump.PoisonedSegments > 0 {
		fmt.Fprintf(tw, "POISONED segments (unreadable, excluded above)\t%d\n", dump.PoisonedSegments)
	}
	tw.Flush()

	fmt.Println("\nlocal-depth histogram (segments per depth):")
	for d, n := range dump.DepthHistogram {
		if n > 0 {
			fmt.Printf("  depth %2d: %6d %s\n", d, n, bar(n, dump.MaxDepthCount))
		}
	}
	fmt.Println("\nsegment occupancy histogram (entries per 16-slot segment):")
	for o, n := range dump.OccupancyHistogram {
		fmt.Printf("  %2d/16: %6d %s\n", o, n, bar(n, dump.MaxOccupancyCount))
	}
}

func bar(n, max int) string {
	if max == 0 {
		return ""
	}
	w := n * 40 / max
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
