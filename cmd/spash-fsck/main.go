// Command spash-fsck is the offline consistency checker: it builds an
// index, optionally crashes the device mid-life, recovers, and runs
// the full structural invariant scan (directory well-formedness,
// registry agreement, slot routing, fingerprints, hint hygiene,
// counters) plus an allocator occupancy report — the check an operator
// would run on a suspect pool.
//
// Usage:
//
//	spash-fsck [-records 100000] [-churn 3] [-crash]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spash"
)

func main() {
	records := flag.Int("records", 100000, "records inserted")
	churn := flag.Int("churn", 3, "delete/reinsert rounds before checking")
	crash := flag.Bool("crash", true, "power-cycle the device before checking")
	flag.Parse()

	platform := spash.DefaultPlatform()
	platform.PoolSize = 1 << 30
	db, err := spash.Open(spash.Options{Platform: platform})
	if err != nil {
		fail(err)
	}
	s := db.Session()
	rng := rand.New(rand.NewSource(1))
	kb := make([]byte, 8)
	fmt.Printf("building: %d records, %d churn rounds...\n", *records, *churn)
	for i := uint64(0); i < uint64(*records); i++ {
		binary.LittleEndian.PutUint64(kb, i)
		if err := s.Insert(kb, kb); err != nil {
			fail(err)
		}
	}
	for r := 0; r < *churn; r++ {
		for i := 0; i < *records/2; i++ {
			binary.LittleEndian.PutUint64(kb, uint64(rng.Intn(*records)))
			s.Delete(kb)
		}
		for i := 0; i < *records/2; i++ {
			k := uint64(rng.Intn(*records))
			binary.LittleEndian.PutUint64(kb, k)
			if err := s.Insert(kb, kb); err != nil {
				fail(err)
			}
		}
	}

	if *crash {
		platformPool := db.Platform()
		lost := db.Crash()
		fmt.Printf("power cycle: %d cachelines lost\n", lost)
		db, err = spash.Recover(platformPool, spash.Options{})
		if err != nil {
			fail(fmt.Errorf("recovery: %w", err))
		}
		s = db.Session()
	}

	fmt.Print("checking structural invariants... ")
	if err := db.Index().CheckInvariants(s.Ctx()); err != nil {
		fmt.Println("FAIL")
		fail(err)
	}
	fmt.Println("ok")

	// Cross-check the entry counter against a full iteration.
	n := 0
	if err := s.ForEach(func(k, v []byte) bool { n++; return true }); err != nil {
		fail(err)
	}
	if n != db.Len() {
		fail(fmt.Errorf("iteration found %d entries, counter says %d", n, db.Len()))
	}
	fmt.Printf("entry count cross-check: %d entries ok\n", n)

	st := db.Stats()
	fmt.Printf("\nsummary: %d entries in %d segments (load factor %.3f)\n",
		st.Index.Entries, st.Index.Segments, db.LoadFactor())
	fmt.Printf("since last open: %d splits, %d merges, %d doublings, %d fallbacks\n",
		st.Index.Splits, st.Index.Merges, st.Index.Doubles, st.Index.Fallbacks)
	fmt.Println("\nspash-fsck: CLEAN")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spash-fsck:", err)
	os.Exit(1)
}
