// Command spash-fsck is the offline consistency checker and repair
// tool. It builds an index from a seeded workload, optionally crashes
// the device — at a quiescent point (-crash) or mid-operation at an
// exact persistence-primitive step (-crashstep N) — optionally injects
// seeded media damage at the crash (-bitflips, -torn, -poison), then
// recovers and verifies: segment seals and record CRCs (-checksums),
// the full structural invariant scan, and an entry-count cross-check.
// With -repair, damaged segments are quarantined and rebuilt from
// their salvageable entries, and the report lists every key lost.
// With -repair-from replica an in-process replica is fed by the
// workload (every write ships before it is acknowledged), and after
// the local repair pass the quarantined ranges are healed from that
// peer: keys the rebuild could only report as lost are fetched back
// over the replication transport (read_repair section in the JSON
// report).
//
// The run is reproducible: workload randomness comes from -seed and
// media damage from -faultseed. With -report the full repair report is
// written as one JSON document.
//
// Exit status:
//
//	0  clean — no damage found
//	1  damage found and fully repaired (-repair)
//	2  damage remains (repair disabled or impossible), or the check
//	   itself failed
//
// Usage:
//
//	spash-fsck [-records 100000] [-churn 3] [-seed 1] [-mode eadr|adr]
//	           [-crash] [-crashstep N] [-shards N]
//	           [-checksums] [-bitflips N] [-torn N] [-poison N] [-faultseed 1]
//	           [-repair] [-repair-from replica] [-report FILE.json]
//
// With -shards N the database is partitioned onto N devices. Injected
// faults (crashstep, media damage) target shard 0's device — the
// remaining shards see a plain power cut — and the check then covers
// every shard: parallel recovery, a merged segment-verification
// report, per-shard structural invariants and the global entry-count
// cross-check.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spash"
	"spash/internal/pmem"
	"spash/internal/repl"
)

// report is the -report JSON document.
type report struct {
	Schema    string `json:"schema"`
	Mode      string `json:"mode"`
	Shards    int    `json:"shards"`
	Seed      int64  `json:"seed"`
	FaultSeed uint64 `json:"faultseed"`
	Checksums bool   `json:"checksums"`
	Injected  struct {
		BitFlips    uint64 `json:"bitflips"`
		TornLines   uint64 `json:"torn_lines"`
		PoisonLines uint64 `json:"poison_lines"`
	} `json:"injected"`
	Fsck       *spash.FsckReport  `json:"fsck"`
	ReadRepair *repl.RepairReport `json:"read_repair,omitempty"`
	Chaos      *chaosInfo         `json:"chaos,omitempty"`
	Invariant  string             `json:"invariant_error,omitempty"`
	Misplaced  int                `json:"misplaced"`
	Entries    int                `json:"entries"`
	Exit       int                `json:"exit"`
}

// chaosInfo summarises the -chaos ship path: what the faulty
// transport did and what the delivery hardening left behind. Frames
// still in the spill queue at the crash are acknowledged
// degraded-async writes the replica never received — the bound on
// what replica-backed read-repair can restore.
type chaosInfo struct {
	Stats     repl.FaultStats `json:"stats"`
	Breaker   string          `json:"breaker"`
	SpillLost int             `json:"spill_lost"`
}

func main() {
	records := flag.Int("records", 100000, "records inserted")
	churn := flag.Int("churn", 3, "delete/reinsert rounds before checking")
	seed := flag.Int64("seed", 1, "seed for the workload's randomness (reproducible torture runs)")
	mode := flag.String("mode", "eadr", "persistence domain of the simulated device (eadr, adr)")
	poolMB := flag.Int("poolmb", 1024, "simulated PM pool size in MB")
	cacheKB := flag.Int("cachekb", 8192, "simulated CPU cache size in KB (small values force evictions, making ADR torture bite)")
	crash := flag.Bool("crash", true, "power-cycle the device (quiescent) before checking")
	crashStep := flag.Int64("crashstep", 0,
		"inject a power failure before the N-th persistence-primitive step of the workload (0 = disabled)")
	checksums := flag.Bool("checksums", true, "maintain + verify per-segment checksum seals")
	bitFlips := flag.Int("bitflips", 0, "single-bit flips injected into live segment frames at the crash")
	torn := flag.Int("torn", 0, "max dirty cachelines torn (old/new words interleaved) at an ADR crash")
	poison := flag.Int("poison", 0, "XPLines poisoned (reads become machine checks) at the crash")
	faultSeed := flag.Uint64("faultseed", 1, "seed for media-fault placement")
	repair := flag.Bool("repair", false, "quarantine and rebuild damaged segments")
	repairFrom := flag.String("repair-from", "",
		"heal quarantine losses from a peer after -repair (only value: replica — an in-process replica the workload ships to)")
	chaosRate := flag.Float64("chaos", 0,
		"inject seeded transport faults (drop/dup/reorder at this aggregate rate) into the replica ship path; requires -repair-from replica")
	reportPath := flag.String("report", "", "write the repair report as JSON to this file")
	shards := flag.Int("shards", 1, "shard count (faults target shard 0; checks cover every shard)")
	flag.Parse()

	var pmode pmem.Mode
	switch *mode {
	case "eadr":
		pmode = spash.EADR
	case "adr":
		pmode = spash.ADR
	default:
		fmt.Fprintf(os.Stderr, "spash-fsck: unknown -mode %q (want eadr or adr)\n", *mode)
		os.Exit(2)
	}
	wantMedia := *bitFlips > 0 || *torn > 0 || *poison > 0

	platform := spash.DefaultPlatform()
	platform.PoolSize = uint64(*poolMB) << 20
	platform.CacheSize = uint64(*cacheKB) << 10
	platform.Mode = pmode
	opts := spash.Options{Platform: platform, Shards: *shards}
	opts.Index.Checksums = *checksums
	db, err := spash.Open(opts)
	if err != nil {
		fail(err)
	}
	s := db.Session()
	// Injected faults aim at shard 0's device; a single-shard database
	// makes that the whole pool.
	target := db.Platforms()[0]
	rng := rand.New(rand.NewSource(*seed))
	kb := make([]byte, 8)

	// -repair-from replica: the workload ships every write to an
	// in-process peer before acknowledging it, so after local repair
	// the peer holds the authoritative copy of every quarantined range.
	var rrep *repl.Replica
	var prim *repl.Primary
	var faulty *repl.FaultyTransport
	ins, del := s.Insert, s.Delete
	if *repairFrom != "" {
		if *repairFrom != "replica" {
			fmt.Fprintf(os.Stderr, "spash-fsck: unknown -repair-from %q (want replica)\n", *repairFrom)
			os.Exit(2)
		}
		ropts := opts
		ropts.Replica = true
		rdb, err := spash.Open(ropts)
		if err != nil {
			fail(err)
		}
		rrep, err = repl.NewReplica(rdb)
		if err != nil {
			fail(err)
		}
		var tport repl.Transport = &repl.InProc{R: rrep}
		if *chaosRate > 0 {
			faulty = repl.NewFaultyTransport(tport, repl.FaultSpec{
				Seed:    *seed,
				Drop:    *chaosRate / 2,
				Dup:     *chaosRate / 4,
				Reorder: *chaosRate / 4,
			})
			tport = faulty
		}
		// The prober is off: after an injected crash this wrapper holds
		// a dead pool, and a background drain touching it would panic.
		// Recovery is driven explicitly (drain after the workload; a
		// fresh wrapper for read-repair).
		prim, err = repl.NewPrimaryWith(db, tport, repl.PrimaryOptions{ProbeInterval: -1})
		if err != nil {
			fail(err)
		}
		ins, del = prim.Insert, prim.Delete
		if faulty != nil {
			// With the prober off, recovery from a tripped breaker is
			// driven inline: a cheap TryDrain every few hundred ops (a
			// no-op while the breaker is closed and the spill empty)
			// keeps the bounded spill queue from overflowing into
			// write sheds during long degraded stretches.
			var nops int
			maybeDrain := func() {
				if nops++; nops%256 == 0 {
					_, _ = prim.TryDrain()
				}
			}
			ins = func(k, v []byte) error { maybeDrain(); return prim.Insert(k, v) }
			del = func(k []byte) (bool, error) { maybeDrain(); return prim.Delete(k) }
		}
	} else if *chaosRate > 0 {
		fmt.Fprintln(os.Stderr, "spash-fsck: -chaos requires -repair-from replica")
		os.Exit(2)
	}

	var plan *pmem.FaultPlan
	if *crashStep > 0 {
		plan = &pmem.FaultPlan{CrashAtStep: *crashStep}
		target.ArmFault(plan)
	}

	fmt.Printf("building: %d records, %d churn rounds (seed %d, %s, checksums %v, %d shards)...\n",
		*records, *churn, *seed, *mode, *checksums, db.Shards())
	werr := pmem.CatchCrash(func() error {
		for i := uint64(0); i < uint64(*records); i++ {
			binary.LittleEndian.PutUint64(kb, i)
			if err := ins(kb, kb); err != nil {
				return err
			}
		}
		for r := 0; r < *churn; r++ {
			for i := 0; i < *records/2; i++ {
				binary.LittleEndian.PutUint64(kb, uint64(rng.Intn(*records)))
				if _, err := del(kb); err != nil {
					return err
				}
			}
			for i := 0; i < *records/2; i++ {
				binary.LittleEndian.PutUint64(kb, uint64(rng.Intn(*records)))
				if err := ins(kb, kb); err != nil {
					return err
				}
			}
		}
		return nil
	})

	// With -chaos, the transport may have degraded mid-workload: heal
	// it and (when the pool is still alive — an injected crash leaves
	// the wrapper over a dead device) drain the spill so the replica
	// holds everything it can before damage is assessed. Whatever is
	// still spilled at a crash is the documented degraded-async loss
	// bound, reported as chaos.spill_lost.
	var chaos *chaosInfo
	if faulty != nil {
		faulty.Heal()
		if werr == nil {
			for i := 0; i < 50; i++ {
				if _, derr := prim.TryDrain(); derr == nil {
					if prim.Resync() == nil {
						break
					}
				}
			}
		}
		st, _ := prim.Breaker()
		chaos = &chaosInfo{Stats: faulty.Stats(), Breaker: st.String(),
			SpillLost: prim.SpillDepth()}
		fmt.Printf("chaos transport: %+v; breaker %s, %d acknowledged frame(s) undeliverable\n",
			chaos.Stats, chaos.Breaker, chaos.SpillLost)
	}

	// Media damage is injected when the power actually cuts — that is
	// when real bit rot and torn write-backs become visible. Bit flips
	// and poison aim at live segment frames; torn consumes whatever is
	// dirty in the cache, so targeting (which would scan — and thereby
	// clean — the cache) is skipped when only torn damage is asked for.
	var mp *pmem.MediaFaultPlan
	if wantMedia {
		mp = &pmem.MediaFaultPlan{
			Seed:        *faultSeed,
			BitFlips:    *bitFlips,
			TornLines:   *torn,
			PoisonLines: *poison,
		}
		if *bitFlips > 0 || *poison > 0 {
			mp.Frames = db.Indexes()[0].SegmentAddrs(s.ShardCtx(0))
		}
		target.ArmMediaFault(mp)
	}

	crashed := false
	switch {
	case plan != nil:
		target.DisarmFault()
		if !plan.Fired() {
			fmt.Printf("fault injection: step %d beyond workload's %d steps; no crash fired\n",
				*crashStep, plan.Steps())
			if werr != nil {
				fail(werr)
			}
		} else {
			fmt.Printf("fault injection: power cut at step %d (mid-operation, %d cachelines lost)\n",
				*crashStep, plan.LinesLost())
			// Power fails on every device at once: the sibling shards
			// (quiescent at the cut) take a plain power cycle.
			for _, p := range db.Platforms()[1:] {
				p.Crash()
			}
			crashed = true
		}
	case werr != nil:
		fail(werr)
	case *crash:
		lost := db.Crash()
		fmt.Printf("power cycle: %d cachelines lost\n", lost)
		crashed = true
	}
	if crashed {
		db, err = spash.RecoverAll(db.Platforms(), opts)
		if err != nil {
			fail(fmt.Errorf("recovery: %w", err))
		}
		s = db.Session()
		target = db.Platforms()[0]
	}

	rep := report{Schema: "spash-fsck/v1", Mode: *mode, Shards: db.Shards(), Seed: *seed,
		FaultSeed: *faultSeed, Checksums: *checksums, Chaos: chaos}
	if mp != nil {
		target.DisarmMediaFault()
		inj := mp.Injected()
		rep.Injected.BitFlips = inj.MediaBitFlips
		rep.Injected.TornLines = inj.MediaTornLines
		rep.Injected.PoisonLines = inj.MediaPoisonedLines
		if !mp.Applied() {
			fmt.Println("warning: media faults requested but no crash fired; nothing was injected")
		} else {
			fmt.Printf("media faults injected: %d bit flips, %d torn lines, %d poisoned XPLines (faultseed %d)\n",
				inj.MediaBitFlips, inj.MediaTornLines, inj.MediaPoisonedLines, *faultSeed)
		}
	}

	fmt.Print("verifying segments... ")
	fsck, err := s.Fsck(*repair)
	if err != nil {
		fmt.Println("FAIL")
		fail(err)
	}
	rep.Fsck = fsck
	switch {
	case fsck.Clean():
		fmt.Printf("ok (%d segments)\n", fsck.Segments)
	case *repair:
		fmt.Printf("%d damaged of %d segments; %d repaired, %d unrecoverable\n",
			len(fsck.Faults), fsck.Segments, len(fsck.Repairs), len(fsck.Failed))
		salvaged, dropped := 0, 0
		for i := range fsck.Repairs {
			salvaged += fsck.Repairs[i].Salvaged
			dropped += fsck.Repairs[i].Dropped
		}
		fmt.Printf("repair: %d entries salvaged, %d dropped (%d lost keys identified)\n",
			salvaged, dropped, len(fsck.LostKeys()))
	default:
		fmt.Printf("%d damaged of %d segments (run with -repair to rebuild)\n",
			len(fsck.Faults), fsck.Segments)
	}
	for i := range fsck.Faults {
		f := &fsck.Faults[i]
		fmt.Printf("  fault: segment %#x (prefix %#x depth %d): %s\n", f.Seg, f.Prefix, f.Depth, f.Cause)
	}

	// Replica-backed read-repair: fetch every quarantined range's
	// authoritative contents from the peer and restore the keys the
	// local rebuild lost. (A fresh Primary wrapper — after a crash the
	// pre-crash one wraps the dead pool.)
	if rrep != nil && *repair && len(fsck.Repairs) > 0 {
		fmt.Print("read-repair from replica... ")
		p2, err := repl.NewPrimary(db, &repl.InProc{R: rrep})
		if err != nil {
			fmt.Println("FAIL")
			fail(err)
		}
		rr, err := p2.ReadRepair(fsck)
		if err != nil {
			fmt.Println("FAIL")
			fail(err)
		}
		rep.ReadRepair = rr
		fmt.Printf("%d ranges fetched (%d pairs offered), %d lost keys restored\n",
			rr.Ranges, rr.Fetched, rr.Restored)
	}

	fmt.Print("checking structural invariants... ")
	var iErr error
	for i, ix := range db.Indexes() {
		if err := ix.CheckInvariants(s.ShardCtx(i)); err != nil {
			iErr = fmt.Errorf("shard %d: %w", i, err)
			break
		}
	}
	if iErr != nil {
		fmt.Println("FAIL")
		rep.Invariant = iErr.Error()
	} else {
		fmt.Println("ok")
	}
	for i, ix := range db.Indexes() {
		rep.Misplaced += ix.CheckPlacement(s.ShardCtx(i))
	}
	if rep.Misplaced > 0 {
		fmt.Printf("silent misplacement: %d records route to the wrong segment\n", rep.Misplaced)
	}

	// Cross-check the entry counter against a full iteration (only
	// meaningful once the pool is readable, i.e. clean or repaired).
	if iErr == nil {
		n := 0
		if err := s.ForEach(func(k, v []byte) bool { n++; return true }); err != nil {
			fmt.Printf("iteration: %s\n", spash.DescribeError(err))
			rep.Invariant = err.Error()
			iErr = err
		} else if n != db.Len() {
			iErr = fmt.Errorf("iteration found %d entries, counter says %d", n, db.Len())
			rep.Invariant = iErr.Error()
		} else {
			fmt.Printf("entry count cross-check: %d entries ok\n", n)
			rep.Entries = n
		}
	}

	exit := fsck.ExitCode()
	if iErr != nil || rep.Misplaced > 0 {
		exit = 2
	}
	rep.Exit = exit
	if *reportPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*reportPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fail(fmt.Errorf("writing report: %w", err))
		}
		fmt.Printf("report: %s\n", *reportPath)
	}

	st := db.Stats()
	fmt.Printf("\nsummary: %d entries in %d segments (load factor %.3f)\n",
		st.Index.Entries, st.Index.Segments, db.LoadFactor())
	switch exit {
	case 0:
		fmt.Println("\nspash-fsck: PASS (clean)")
	case 1:
		fmt.Println("\nspash-fsck: REPAIRED")
	default:
		fmt.Println("\nspash-fsck: FAIL: damage remains")
	}
	os.Exit(exit)
}

func fail(err error) {
	fmt.Printf("spash-fsck: FAIL: %s\n", spash.DescribeError(err))
	os.Exit(2)
}
