// Command spash-fsck is the offline consistency checker: it builds an
// index, optionally crashes the device — either at a quiescent point
// (-crash) or mid-operation at an exact persistence-primitive step
// (-crashstep N, via the deterministic fault injector) — recovers, and
// runs the full structural invariant scan (directory well-formedness,
// registry agreement, slot routing, fingerprints, hint hygiene,
// counters) plus an allocator occupancy report — the check an operator
// would run on a suspect pool.
//
// The run is reproducible: all randomness comes from -seed. The final
// line of output is machine-readable — "spash-fsck: PASS" or
// "spash-fsck: FAIL: <reason>" — and the exit status matches (0/1).
//
// Usage:
//
//	spash-fsck [-records 100000] [-churn 3] [-seed 1] [-crash] [-crashstep N]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spash"
	"spash/internal/pmem"
)

func main() {
	records := flag.Int("records", 100000, "records inserted")
	churn := flag.Int("churn", 3, "delete/reinsert rounds before checking")
	crash := flag.Bool("crash", true, "power-cycle the device (quiescent) before checking")
	seed := flag.Int64("seed", 1, "seed for the workload's randomness (reproducible torture runs)")
	crashStep := flag.Int64("crashstep", 0,
		"inject a power failure before the N-th persistence-primitive step of the workload (0 = disabled)")
	flag.Parse()

	platform := spash.DefaultPlatform()
	platform.PoolSize = 1 << 30
	db, err := spash.Open(spash.Options{Platform: platform})
	if err != nil {
		fail(err)
	}
	s := db.Session()
	rng := rand.New(rand.NewSource(*seed))
	kb := make([]byte, 8)

	var plan *pmem.FaultPlan
	if *crashStep > 0 {
		plan = &pmem.FaultPlan{CrashAtStep: *crashStep}
		db.Platform().ArmFault(plan)
	}

	fmt.Printf("building: %d records, %d churn rounds (seed %d)...\n", *records, *churn, *seed)
	werr := pmem.CatchCrash(func() error {
		for i := uint64(0); i < uint64(*records); i++ {
			binary.LittleEndian.PutUint64(kb, i)
			if err := s.Insert(kb, kb); err != nil {
				return err
			}
		}
		for r := 0; r < *churn; r++ {
			for i := 0; i < *records/2; i++ {
				binary.LittleEndian.PutUint64(kb, uint64(rng.Intn(*records)))
				if _, err := s.Delete(kb); err != nil {
					return err
				}
			}
			for i := 0; i < *records/2; i++ {
				binary.LittleEndian.PutUint64(kb, uint64(rng.Intn(*records)))
				if err := s.Insert(kb, kb); err != nil {
					return err
				}
			}
		}
		return nil
	})

	switch {
	case plan != nil:
		db.Platform().DisarmFault()
		if !plan.Fired() {
			fmt.Printf("fault injection: step %d beyond workload's %d steps; no crash fired\n",
				*crashStep, plan.Steps())
			if werr != nil {
				fail(werr)
			}
		} else {
			fmt.Printf("fault injection: power cut at step %d (mid-operation, %d cachelines lost)\n",
				*crashStep, plan.LinesLost())
			db, err = spash.Recover(db.Platform(), spash.Options{})
			if err != nil {
				fail(fmt.Errorf("recovery after injected crash: %w", err))
			}
			s = db.Session()
		}
	case werr != nil:
		fail(werr)
	case *crash:
		platformPool := db.Platform()
		lost := db.Crash()
		fmt.Printf("power cycle: %d cachelines lost\n", lost)
		db, err = spash.Recover(platformPool, spash.Options{})
		if err != nil {
			fail(fmt.Errorf("recovery: %w", err))
		}
		s = db.Session()
	}

	fmt.Print("checking structural invariants... ")
	if err := db.Index().CheckInvariants(s.Ctx()); err != nil {
		fmt.Println("FAIL")
		fail(err)
	}
	fmt.Println("ok")

	// Cross-check the entry counter against a full iteration.
	n := 0
	if err := s.ForEach(func(k, v []byte) bool { n++; return true }); err != nil {
		fail(err)
	}
	if n != db.Len() {
		fail(fmt.Errorf("iteration found %d entries, counter says %d", n, db.Len()))
	}
	fmt.Printf("entry count cross-check: %d entries ok\n", n)

	st := db.Stats()
	fmt.Printf("\nsummary: %d entries in %d segments (load factor %.3f)\n",
		st.Index.Entries, st.Index.Segments, db.LoadFactor())
	fmt.Printf("since last open: %d splits, %d merges, %d doublings, %d fallbacks\n",
		st.Index.Splits, st.Index.Merges, st.Index.Doubles, st.Index.Fallbacks)
	fmt.Println("\nspash-fsck: PASS")
}

func fail(err error) {
	fmt.Printf("spash-fsck: FAIL: %v\n", err)
	os.Exit(1)
}
