// Command spash-serve exposes a sharded spash DB as a RESP2 network
// service: redis-cli, spash-cli -connect, and spash-ycsb -net all
// speak to it. Each connection's read bursts drain through the
// engine's batched, shard-splitting pipeline; a bounded per-connection
// window provides backpressure; SIGINT drains gracefully (stop
// accepting, finish and acknowledge in-flight batches, then exit).
//
// Examples:
//
//	spash-serve -addr 127.0.0.1:6399 -shards 4
//	spash-serve -addr :6399 -metrics-addr 127.0.0.1:8080
//	redis-cli -p 6399 SET k v
//	spash-cli -connect 127.0.0.1:6399
//	spash-ycsb -net 127.0.0.1:6399 -connections 64
//
// With -metrics-addr the process serves /metrics (Prometheus text),
// /debug/vars, /debug/obs/trace, the /debug/spash JSON feeds (so
// spash-top -addr can attach to the live server) and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spash"
	"spash/internal/obs"
	"spash/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:6399", "TCP listen address")
		shards      = flag.Int("shards", 4, "partition the DB into N shards (independent devices + HTM domains)")
		maxBatch    = flag.Int("maxbatch", 128, "per-connection inflight window (largest batch per ExecBatch)")
		idle        = flag.Duration("idle-timeout", 0, "close connections idle for this long (0 = never)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/spash/*, /debug/pprof on this address (off when empty)")
	)
	flag.Parse()

	db, err := spash.Open(spash.Options{Shards: *shards})
	if err != nil {
		fmt.Fprintln(os.Stderr, spash.DescribeError(err))
		os.Exit(1)
	}

	stopMetrics := func() {}
	if *metricsAddr != "" {
		obs.SetSources(db.ExportSources())
		maddr, stop, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		stopMetrics = stop
		fmt.Printf("metrics: http://%s/metrics (also /debug/spash/*, /debug/vars, /debug/pprof)\n", maddr)
	}

	srv := server.New(db, server.Config{
		Addr:        *addr,
		MaxBatch:    *maxBatch,
		IdleTimeout: *idle,
	})
	bound, err := srv.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("spash-serve: listening on %s (%d shards, window %d)\n", bound, *shards, *maxBatch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("spash-serve: draining...")
	start := time.Now()
	_ = srv.Close()
	stopMetrics()
	db.Close()
	fmt.Printf("spash-serve: drained in %v\n", time.Since(start).Round(time.Millisecond))
}
