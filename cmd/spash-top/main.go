// Command spash-top is a terminal viewer for a live Spash database's
// latency-attribution feeds: per-shard throughput and HTM abort rates,
// per-phase latency percentiles from sampled spans, the slow-op log,
// and the health verdict, refreshed by diffing successive snapshots.
//
// It attaches to a process serving the observability mux (any bench
// tool started with -metrics-addr, reading the /debug/spash JSON
// feeds), or runs a self-hosted demo database with background load:
//
//	spash-top -addr 127.0.0.1:8080
//	spash-top -demo -shards 4
//	spash-top -demo -once           # one frame, no screen control
//
// All durations are virtual nanoseconds from the performance model's
// clock except the repl_ship phase, which is wall-clock (the transport
// is outside the virtual clock).
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"spash"
	"spash/internal/core"
	"spash/internal/obs"
	"spash/internal/repl"
)

func main() {
	var (
		addr     = flag.String("addr", "", "attach to a /debug/spash exporter at this host:port")
		demo     = flag.Bool("demo", false, "run a self-hosted demo DB with background load")
		once     = flag.Bool("once", false, "print one frame and exit (no screen control)")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		shards   = flag.Int("shards", 4, "demo DB shard count")
		slowN    = flag.Int("n", 8, "slow-op rows shown")
	)
	flag.Parse()

	var f feed
	switch {
	case *demo:
		d, stop, err := startDemo(*shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, spash.DescribeError(err))
			os.Exit(1)
		}
		defer stop()
		f = d
	case *addr != "":
		f = &httpFeed{base: "http://" + strings.TrimPrefix(*addr, "http://")}
	default:
		fmt.Fprintln(os.Stderr, "spash-top: need -addr host:port or -demo")
		os.Exit(2)
	}

	if *once {
		// Give a demo DB a beat of load so the frame has content.
		if *demo {
			time.Sleep(300 * time.Millisecond)
		}
		frame, err := capture(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spash-top: %v\n", err)
			os.Exit(1)
		}
		render(os.Stdout, frame, nil, *interval, *slowN)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	var prev *frame
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		cur, err := capture(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spash-top: %v\n", err)
			os.Exit(1)
		}
		var b strings.Builder
		b.WriteString("\x1b[2J\x1b[H") // clear, home
		render(&b, cur, prev, *interval, *slowN)
		os.Stdout.WriteString(b.String())
		prev = cur
		select {
		case <-sig:
			return
		case <-tick.C:
		}
	}
}

// frame is one captured set of feeds.
type frame struct {
	agg    obs.Snapshot
	shards []obs.Snapshot
	slow   []obs.SlowOp
	health obs.Health
	at     time.Time
}

// feed abstracts the two backends (HTTP attach, in-process demo).
type feed interface {
	snapshot() (obs.Snapshot, error)
	perShard() ([]obs.Snapshot, error)
	slowOps(n int) ([]obs.SlowOp, error)
	healthNow() (obs.Health, error)
}

func capture(f feed) (*frame, error) {
	agg, err := f.snapshot()
	if err != nil {
		return nil, err
	}
	sh, err := f.perShard()
	if err != nil {
		return nil, err
	}
	slow, err := f.slowOps(64)
	if err != nil {
		return nil, err
	}
	h, err := f.healthNow()
	if err != nil {
		return nil, err
	}
	return &frame{agg: agg, shards: sh, slow: slow, health: h, at: time.Now()}, nil
}

// ---- rendering ----

func render(w interface{ WriteString(string) (int, error) }, cur, prev *frame, interval time.Duration, slowN int) {
	var b strings.Builder

	// Interval view: rates come from the diff when a previous frame
	// exists, cumulative totals otherwise.
	view := cur.agg
	viewShards := cur.shards
	secs := 0.0
	if prev != nil {
		view = cur.agg.Sub(prev.agg)
		secs = cur.at.Sub(prev.at).Seconds()
		if len(prev.shards) == len(cur.shards) {
			viewShards = make([]obs.Snapshot, len(cur.shards))
			for i := range cur.shards {
				viewShards[i] = cur.shards[i].Sub(prev.shards[i])
			}
		}
	}

	h := cur.health
	fmt.Fprintf(&b, "spash-top  %d shard(s)  %s\n", len(cur.shards), cur.at.Format("15:04:05"))
	fmt.Fprintf(&b, "health: %s", h.Status)
	if len(h.Reasons) > 0 {
		fmt.Fprintf(&b, "  (%s)", strings.Join(h.Reasons, "; "))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "quarantines %d  repl lag %d recs / %s  abort rate %.3f/commit  scrub passes %d\n",
		h.Quarantines, h.ReplLagRecords, fmtBytes(h.ReplLagBytes), h.AbortRate, h.ScrubPasses)
	// Delivery hardening: breaker state and spill depth are levels from
	// the health verdict; retry/resync counters are cumulative (not
	// interval-diffed) so a glance shows whether the transport has ever
	// struggled.
	fmt.Fprintf(&b, "repl: breaker %s  spill %d frame(s)  retries %d  resyncs %d (replays %d, reseeds %d)\n",
		repl.BreakerState(h.BreakerState), h.SpillDepth,
		cur.agg.Counters[obs.CounterNames[obs.CReplRetries]],
		cur.agg.Counters[obs.CounterNames[obs.CReplResyncs]],
		cur.agg.Counters[obs.CounterNames[obs.CReplReplays]],
		cur.agg.Counters[obs.CounterNames[obs.CReplReseeds]])

	// RESP front end (spash-serve): shown only when the feed's process
	// has ever accepted a connection, so library-only exporters keep
	// their old frame layout. Connection/inflight are levels; commands
	// and batch shape come from the interval view.
	if _, serving := cur.agg.Counters[obs.CounterNames[obs.CServeAccepts]]; serving {
		cmds := view.Counters[obs.CounterNames[obs.CServeCmds]]
		batch := view.Hists[obs.HistNames[obs.HServeBatch]]
		if secs > 0 {
			fmt.Fprintf(&b, "serve: conns %d  inflight %d  %s cmds/s",
				cur.agg.Gauges[obs.GaugeNames[obs.GServeConns]],
				cur.agg.Gauges[obs.GaugeNames[obs.GServeInflight]],
				fmtCount(int64(float64(cmds)/secs)))
		} else {
			fmt.Fprintf(&b, "serve: conns %d  inflight %d  %s cmds",
				cur.agg.Gauges[obs.GaugeNames[obs.GServeConns]],
				cur.agg.Gauges[obs.GaugeNames[obs.GServeInflight]],
				fmtCount(cmds))
		}
		fmt.Fprintf(&b, "  batch p50/p99 %d/%d  get/set/del/other %s/%s/%s/%s  errors %d\n",
			batch.Percentile(50), batch.Percentile(99),
			fmtCount(view.Counters[obs.CounterNames[obs.CServeCmdGet]]),
			fmtCount(view.Counters[obs.CounterNames[obs.CServeCmdSet]]),
			fmtCount(view.Counters[obs.CounterNames[obs.CServeCmdDel]]),
			fmtCount(view.Counters[obs.CounterNames[obs.CServeCmdOther]]),
			cur.agg.Counters[obs.CounterNames[obs.CServeErrors]])
	}
	b.WriteString("\n")

	commits := view.HTM.Commits
	aborts := view.HTM.Conflicts + view.HTM.Capacities + view.HTM.Explicits
	if secs > 0 {
		fmt.Fprintf(&b, "throughput %s commits/s", fmtCount(int64(float64(commits)/secs)))
	} else {
		fmt.Fprintf(&b, "total %s commits", fmtCount(commits))
	}
	rate := 0.0
	if commits > 0 {
		rate = float64(aborts) / float64(commits)
	}
	fmt.Fprintf(&b, "  aborts/commit %.3f  media %s read / %s written\n\n",
		rate, fmtBytes(int64(view.Mem.MediaReadBytes())), fmtBytes(int64(view.Mem.MediaWriteBytes())))

	// Per-shard table.
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "shard\tcommits\taborts/c\tprobe p99\tpublish p99\tflush p99\tlag recs\t")
	for i, s := range viewShards {
		c := s.HTM.Commits
		a := s.HTM.Conflicts + s.HTM.Capacities + s.HTM.Explicits
		ar := 0.0
		if c > 0 {
			ar = float64(a) / float64(c)
		}
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%s\t%s\t%s\t%d\t\n",
			i, fmtCount(c), ar,
			fmtDur(s.Phases[obs.PhaseNames[obs.PhaseProbe]].PercentileNS(99)),
			fmtDur(s.Phases[obs.PhaseNames[obs.PhasePublish]].PercentileNS(99)),
			fmtDur(s.Phases[obs.PhaseNames[obs.PhaseMediaFlush]].PercentileNS(99)),
			s.Gauges[obs.GaugeNames[obs.GReplLagRecords]])
	}
	tw.Flush()
	b.WriteString("\n")

	// Phase-latency table (sampled spans).
	tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tp50\tp99\tsamples")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		name := obs.PhaseNames[p]
		d, ok := view.Phases[name]
		if !ok || d.Count() == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\n", name,
			fmtDur(d.PercentileNS(50)), fmtDur(d.PercentileNS(99)), d.Count())
	}
	tw.Flush()
	b.WriteString("\n")

	// Slow-op log (cumulative worst-N, not interval-diffed).
	slow := cur.slow
	if len(slow) > slowN {
		slow = slow[:slowN]
	}
	fmt.Fprintf(&b, "slowest sampled ops (worst %d retained)\n", len(slow))
	tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "op\tshard\ttotal\taborts\tkey\tphases")
	for _, op := range slow {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%016x\t%s\n",
			op.Op, op.Shard, fmtDur(op.TotalNS), op.Aborts, op.Key, fmtPhases(op.Phases))
	}
	tw.Flush()

	w.WriteString(b.String())
}

// fmtPhases renders a slow op's phase map compactly, largest first.
func fmtPhases(m map[string]int64) string {
	type kv struct {
		k string
		v int64
	}
	var parts []kv
	for k, v := range m {
		parts = append(parts, kv{k, v})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].v > parts[j].v })
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%s", p.k, fmtDur(p.v))
	}
	return sb.String()
}

func fmtDur(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ---- HTTP attach backend ----

type httpFeed struct {
	base   string
	client http.Client
}

func (h *httpFeed) get(path string, v any) error {
	resp, err := h.client.Get(h.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (h *httpFeed) snapshot() (obs.Snapshot, error) {
	var s obs.Snapshot
	err := h.get("/debug/spash/snapshot", &s)
	return s, err
}

func (h *httpFeed) perShard() ([]obs.Snapshot, error) {
	var s []obs.Snapshot
	// Optional feed: a single-index exporter serves 503 here.
	if err := h.get("/debug/spash/shards", &s); err != nil {
		return nil, nil
	}
	return s, nil
}

func (h *httpFeed) slowOps(n int) ([]obs.SlowOp, error) {
	var s []obs.SlowOp
	if err := h.get(fmt.Sprintf("/debug/spash/slowlog?n=%d", n), &s); err != nil {
		return nil, nil
	}
	return s, nil
}

func (h *httpFeed) healthNow() (obs.Health, error) {
	var hh obs.Health
	err := h.get("/debug/spash/health", &hh)
	return hh, err
}

// ---- self-hosted demo backend ----

type demoFeed struct {
	db *spash.DB
}

func (d *demoFeed) snapshot() (obs.Snapshot, error)     { return d.db.ObsSnapshot(), nil }
func (d *demoFeed) perShard() ([]obs.Snapshot, error)   { return d.db.ObsSnapshots(), nil }
func (d *demoFeed) slowOps(n int) ([]obs.SlowOp, error) { return d.db.SlowOps(n), nil }
func (d *demoFeed) healthNow() (obs.Health, error)      { return d.db.Health(), nil }

// startDemo opens an n-shard DB with aggressive span sampling and
// runs background mixed load until stop is called.
func startDemo(n int) (*demoFeed, func(), error) {
	db, err := spash.Open(spash.Options{
		Shards: n,
		Index:  core.Config{SpanSample: 4},
	})
	if err != nil {
		return nil, nil, err
	}
	var stopped atomic.Bool
	workers := 2
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			s := db.Session()
			defer s.Close()
			rng := rand.New(rand.NewSource(seed))
			key := make([]byte, 8)
			val := make([]byte, 32)
			for !stopped.Load() {
				binary.LittleEndian.PutUint64(key, uint64(rng.Intn(200000)))
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					if _, _, err := s.Get(key, nil); err != nil {
						return
					}
				case 4, 5, 6:
					if err := s.Insert(key, val); err != nil {
						return
					}
				case 7, 8:
					if _, err := s.Update(key, val); err != nil {
						return
					}
				default:
					if _, err := s.Delete(key); err != nil {
						return
					}
				}
			}
		}(int64(w) + 1)
	}
	stop := func() {
		stopped.Store(true)
		for w := 0; w < workers; w++ {
			<-done
		}
		db.Close()
	}
	return &demoFeed{db: db}, stop, nil
}
