// Command spash-vet runs the spash invariant analyzers over the tree.
//
// Standalone:
//
//	go run ./cmd/spash-vet ./...            # whole module
//	go run ./cmd/spash-vet -summary ./...   # + suppressions & annotations
//	go run ./cmd/spash-vet -json ./...      # machine-readable findings
//
// As a vet tool (one package per invocation, driven by the go command):
//
//	go build -o /tmp/spash-vet ./cmd/spash-vet
//	go vet -vettool=/tmp/spash-vet ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"spash/internal/analysis"
	"spash/internal/analysis/framework"
)

const version = "spash-vet version 1 (spash invariant suite)"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes the tool's identity with -V=full and its flag set
	// with -flags before use.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Println(version)
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	// A single *.cfg argument means the go command is driving us as a
	// vet tool, one package per invocation.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0])
	}
	return runStandalone(args)
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("spash-vet", flag.ExitOnError)
	summary := fs.Bool("summary", false, "print //spash:allow suppressions and //spash:guarded annotations after the findings")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := analysis.Suite()
	if *disable != "" {
		off := map[string]bool{}
		for _, name := range strings.Split(*disable, ",") {
			off[strings.TrimSpace(name)] = true
		}
		var kept []*framework.Analyzer
		for _, a := range suite {
			if !off[a.Name] {
				kept = append(kept, a)
			}
		}
		suite = kept
	}

	loader := &framework.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	diags, supp, err := framework.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}

	if *asJSON {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := struct {
			Findings    []finding               `json:"findings"`
			Suppressed  []framework.Suppression `json:"suppressed"`
			Annotations []framework.Annotation  `json:"annotations"`
		}{Findings: []finding{}, Suppressed: supp}
		for _, d := range diags {
			out.Findings = append(out.Findings, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, pkg := range pkgs {
			out.Annotations = append(out.Annotations, framework.Annotations(pkg)...)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
		if *summary {
			printSummary(pkgs, supp)
		}
	}

	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "spash-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func printSummary(pkgs []*framework.Package, supp []framework.Suppression) {
	fmt.Printf("\n== suppressions (//spash:allow) ==\n")
	if len(supp) == 0 {
		fmt.Println("  (none)")
	}
	for _, s := range supp {
		fmt.Printf("  %s: [%s] %s\n      reason: %s\n", s.Pos, s.Analyzer, s.Message, s.Reason)
	}
	fmt.Printf("\n== guarded functions (//spash:guarded) ==\n")
	n := 0
	for _, pkg := range pkgs {
		for _, a := range framework.Annotations(pkg) {
			fmt.Printf("  %s: %s\n      reason: %s\n", a.Pos, a.Func, a.Reason)
			n++
		}
	}
	if n == 0 {
		fmt.Println("  (none)")
	}
}

// vetConfig is the JSON the go command passes to a -vettool per
// package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// analyzable reports whether this unit is production code the suite
// should check. Dependency units (VetxOnly — the suite exchanges no
// facts) and test-binary packages are skipped: tests deliberately
// violate the invariants to inject faults.
func (cfg *vetConfig) analyzable() bool {
	if cfg.VetxOnly {
		return false
	}
	return !strings.Contains(cfg.ImportPath, " [") &&
		!strings.HasSuffix(cfg.ImportPath, ".test") &&
		!strings.HasSuffix(cfg.ImportPath, "_test")
}

// productionFiles drops _test.go files from the unit: the go command
// hands vet the test variant of each package, and the invariants apply
// to production code only. The remaining files always type-check on
// their own (test files cannot be referenced by non-test files).
func productionFiles(files []string) []string {
	var out []string
	for _, f := range files {
		if !strings.HasSuffix(f, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if !cfg.analyzable() {
		return writeVetx(cfg)
	}
	goFiles := productionFiles(cfg.GoFiles)
	if len(goFiles) == 0 {
		return writeVetx(cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range goFiles {
		af, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
			return 2
		}
		files = append(files, af)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, err := framework.CheckFiles(fset, cfg.ImportPath, goFiles, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	diags, _, err := framework.Run([]*framework.Package{pkg}, analysis.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	if rc := writeVetx(cfg); rc != 0 {
		return rc
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
		}
		return 2 // unitchecker protocol: nonzero means findings
	}
	return 0
}

// writeVetx writes the (empty) facts file the go command expects; the
// suite does not exchange facts between packages.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	return 0
}
