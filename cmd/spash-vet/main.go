// Command spash-vet runs the spash invariant analyzers over the tree.
//
// Standalone:
//
//	go run ./cmd/spash-vet ./...            # whole module
//	go run ./cmd/spash-vet -summary ./...   # + suppressions & annotations
//	go run ./cmd/spash-vet -json ./...      # machine-readable findings
//	go run ./cmd/spash-vet -sarif ./...     # SARIF 2.1.0 (code scanning)
//	go run ./cmd/spash-vet -baseline .spash-vet-baseline ./...
//	go run ./cmd/spash-vet -write-baseline .spash-vet-baseline ./...
//
// A baseline file lists findings that do not fail the run
// (path:analyzer:message, sorted, deduplicated). Baselines only
// shrink: entries matching no current finding fail the run as stale.
//
// As a vet tool (one package per invocation, driven by the go command):
//
//	go build -o /tmp/spash-vet ./cmd/spash-vet
//	go vet -vettool=/tmp/spash-vet ./...
//
// In vettool mode the units exchange analyzer facts through the go
// command's .vetx files, so cross-package analyzers (respalias,
// golifetime, epochgate, wireerr) see their dependencies' facts just
// as the standalone driver does — with per-package caching from the
// build cache for free.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"spash/internal/analysis"
	"spash/internal/analysis/framework"
)

const version = "spash-vet version 2 (spash invariant suite)"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes the tool's identity with -V=full and its flag set
	// with -flags before use.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Println(version)
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	// A single *.cfg argument means the go command is driving us as a
	// vet tool, one package per invocation.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0])
	}
	return runStandalone(args)
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("spash-vet", flag.ExitOnError)
	summary := fs.Bool("summary", false, "print //spash:allow suppressions and //spash:guarded annotations after the findings")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	asSARIF := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for code scanning upload)")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings; covered findings pass, stale entries fail")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this baseline file and exit clean")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := analysis.Suite()
	if *disable != "" {
		off := map[string]bool{}
		for _, name := range strings.Split(*disable, ",") {
			off[strings.TrimSpace(name)] = true
		}
		var kept []*framework.Analyzer
		for _, a := range suite {
			if !off[a.Name] {
				kept = append(kept, a)
			}
		}
		suite = kept
	}

	loader := &framework.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	diags, supp, err := framework.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}

	// Baseline keys and SARIF URIs are relative to the module root the
	// loader ran in (the working directory).
	root, err := os.Getwd()
	if err != nil {
		root = ""
	}

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, framework.FormatBaseline(root, diags), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "spash-vet: wrote baseline with %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	var stale []string
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
			return 2
		}
		entries, err := framework.ParseBaseline(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spash-vet: %s: %v\n", *baselinePath, err)
			return 2
		}
		diags, stale = framework.ApplyBaseline(entries, root, diags)
	}

	if *asSARIF {
		out, err := framework.SARIF(root, version, suite, diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
			return 2
		}
		os.Stdout.Write(out)
		fmt.Println()
	} else if *asJSON {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := struct {
			Findings    []finding               `json:"findings"`
			Suppressed  []framework.Suppression `json:"suppressed"`
			Annotations []framework.Annotation  `json:"annotations"`
		}{Findings: []finding{}, Suppressed: supp}
		for _, d := range diags {
			out.Findings = append(out.Findings, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, pkg := range pkgs {
			out.Annotations = append(out.Annotations, framework.Annotations(pkg)...)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
		if *summary {
			printSummary(pkgs, supp)
		}
	}

	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "spash-vet: stale baseline entry (no matching finding): %s\n", s)
	}
	if len(diags) > 0 || len(stale) > 0 {
		if !*asJSON && !*asSARIF && len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "spash-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func printSummary(pkgs []*framework.Package, supp []framework.Suppression) {
	fmt.Printf("\n== suppressions (//spash:allow) ==\n")
	if len(supp) == 0 {
		fmt.Println("  (none)")
	}
	for _, s := range supp {
		fmt.Printf("  %s: [%s] %s\n      reason: %s\n", s.Pos, s.Analyzer, s.Message, s.Reason)
	}
	fmt.Printf("\n== guarded functions (//spash:guarded) ==\n")
	n := 0
	for _, pkg := range pkgs {
		for _, a := range framework.Annotations(pkg) {
			fmt.Printf("  %s: %s\n      reason: %s\n", a.Pos, a.Func, a.Reason)
			n++
		}
	}
	if n == 0 {
		fmt.Println("  (none)")
	}
}

// vetConfig is the JSON the go command passes to a -vettool per
// package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// spashPath reports whether an import path belongs to this module —
// the only packages whose facts the suite consumes.
func spashPath(p string) bool {
	return p == "spash" || strings.HasPrefix(p, "spash/")
}

// analyzable reports whether this unit should run the suite at all.
// VetxOnly units of this module still run (facts-only — their exported
// facts feed dependents through the .vetx exchange); VetxOnly units of
// other modules contribute nothing and are skipped. Test-binary
// packages are skipped: tests deliberately violate the invariants to
// inject faults.
func (cfg *vetConfig) analyzable() bool {
	if cfg.VetxOnly && !spashPath(cfg.ImportPath) {
		return false
	}
	return !strings.Contains(cfg.ImportPath, " [") &&
		!strings.HasSuffix(cfg.ImportPath, ".test") &&
		!strings.HasSuffix(cfg.ImportPath, "_test")
}

// productionFiles drops _test.go files from the unit: the go command
// hands vet the test variant of each package, and the invariants apply
// to production code only. The remaining files always type-check on
// their own (test files cannot be referenced by non-test files).
func productionFiles(files []string) []string {
	var out []string
	for _, f := range files {
		if !strings.HasSuffix(f, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if !cfg.analyzable() {
		return writeVetx(cfg, nil)
	}
	goFiles := productionFiles(cfg.GoFiles)
	if len(goFiles) == 0 {
		return writeVetx(cfg, nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range goFiles {
		af, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg, nil)
			}
			fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
			return 2
		}
		files = append(files, af)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, err := framework.CheckFiles(fset, cfg.ImportPath, goFiles, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, nil)
		}
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	// A VetxOnly unit runs for its exported facts alone; its own
	// diagnostics belong to the go vet invocation that targets it.
	pkg.FactsOnly = cfg.VetxOnly

	suite := analysis.Suite()
	facts := framework.NewFactStore()
	registry := framework.FactTypes(suite)
	for dep, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			// A dependency with no readable vetx simply contributed
			// no facts (e.g. it was built by an older tool).
			continue
		}
		if err := facts.DecodeFacts(data, registry); err != nil {
			fmt.Fprintf(os.Stderr, "spash-vet: facts of %s: %v\n", dep, err)
			return 2
		}
	}

	diags, _, err := framework.RunWithFacts([]*framework.Package{pkg}, suite, facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	vetx, err := facts.EncodePackageFacts(cfg.ImportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	if rc := writeVetx(cfg, vetx); rc != 0 {
		return rc
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
		}
		return 2 // unitchecker protocol: nonzero means findings
	}
	return 0
}

// writeVetx writes the unit's facts file (possibly empty) where the go
// command expects it; dependents read it back through PackageVetx.
func writeVetx(cfg vetConfig, facts []byte) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "spash-vet: %v\n", err)
		return 2
	}
	return 0
}
