// Command spash-ycsb is a standalone YCSB-style workload driver: pick
// an index, a distribution, a mixture and a value size, and get a
// load/run report with throughput (virtual time), PM media traffic and
// the binding bottleneck.
//
// Examples:
//
//	spash-ycsb -index spash -workload balanced -records 200000 -ops 200000
//	spash-ycsb -index level -workload write-intensive -dist zipfian -threads 56
//	spash-ycsb -index all -valuesize 256
//	spash-ycsb -index spash -shards 4 -threads 224
//	spash-ycsb -index spash -json BENCH_ycsb_a.json -metrics-addr 127.0.0.1:8080
//
// With -json the run phase executes sequentially (per worker) so
// per-operation latencies can be sampled, and the results, latency
// percentiles and the unified observability snapshot (media traffic,
// HTM counters, splits/merges/doublings, probe-length percentiles) are
// written to the given path as one JSON document. With -metrics-addr
// the process serves /metrics (Prometheus text), /debug/vars (expvar),
// /debug/obs/trace (structural events) and /debug/pprof during the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"spash"
	"spash/internal/harness"
	"spash/internal/ixapi"
	"spash/internal/obs"
	"spash/internal/ycsb"
)

func main() {
	var (
		index       = flag.String("index", "spash", "index to drive (spash, cceh, dash, level, clevel, plush, halo, all)")
		workload    = flag.String("workload", "balanced", "run mixture (read-intensive, balanced, write-intensive, search-only, update-only)")
		dist        = flag.String("dist", "zipfian", "request distribution (zipfian, uniform)")
		records     = flag.Int("records", 200000, "records loaded")
		ops         = flag.Int("ops", 200000, "run-phase operations")
		threads     = flag.Int("threads", 56, "worker count")
		valSize     = flag.Int("valuesize", 8, "value size in bytes (8 = inline)")
		theta       = flag.Float64("theta", ycsb.DefaultTheta, "zipfian skew")
		jsonPath    = flag.String("json", "", "write a machine-readable artifact (results + latency + obs snapshot) to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/obs/trace and /debug/pprof on this address (off when empty)")
		shards      = flag.Int("shards", 1, "partition Spash into N shards (independent devices + HTM domains; Spash only)")
		netAddr     = flag.String("net", "", "drive a running spash-serve at host:port over loopback instead of an in-process index")
		connections = flag.String("connections", "1,4,16,64", "net mode: comma-separated connection counts to scan")
		window      = flag.Int("window", 128, "net mode: pipelined commands in flight per connection")
	)
	flag.Parse()

	var mix ycsb.Mix
	switch *workload {
	case "read-intensive":
		mix = ycsb.ReadIntensive
	case "balanced":
		mix = ycsb.Balanced
	case "write-intensive":
		mix = ycsb.WriteIntensive
	case "search-only":
		mix = ycsb.SearchOnly
	case "update-only":
		mix = ycsb.UpdateOnly
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	th := *theta
	if *dist == "uniform" {
		th = 0 // signalled below
	}

	if *netAddr != "" {
		scan, err := parseConnScan(*connections)
		if err != nil {
			fatalNet(err)
		}
		if err := runNet(netConfig{
			addr: *netAddr, mix: mix, mixName: *workload,
			records: *records, ops: *ops, valSize: *valSize, theta: th,
			shards: *shards, window: *window, connScan: scan,
			jsonPath: *jsonPath,
		}); err != nil {
			fatalNet(err)
		}
		return
	}

	scale := harness.Scale{
		YCSBLoad: *records, YCSBOps: *ops,
		MicroLoad: *records, MicroOps: *ops,
		MaxThreads: *threads,
		CacheBytes: 1 << 20,
	}

	entries := harness.MacroRoster()
	if *index != "all" {
		found := false
		for _, e := range entries {
			if strings.EqualFold(e.Name, *index) || strings.EqualFold(strings.ReplaceAll(e.Name, "-", ""), *index) {
				entries = []harness.Entry{e}
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown index %q\n", *index)
			os.Exit(2)
		}
	}
	if *shards > 1 {
		// Only Spash has a sharded build; other roster entries keep
		// their monolithic form for comparison.
		replaced := false
		for i, e := range entries {
			if e.Name == "Spash" {
				entries[i] = harness.NewShardedEntry(fmt.Sprintf("Spash-%dsh", *shards), *shards)
				replaced = true
			}
		}
		if !replaced {
			fmt.Fprintf(os.Stderr, "-shards applies to the Spash entry only (selected %q)\n", *index)
			os.Exit(2)
		}
	}

	var rec *harness.Recorder
	if *jsonPath != "" {
		rec = harness.NewRecorder("ycsb_"+strings.ReplaceAll(*workload, "-", "_"), map[string]string{
			"index": *index, "workload": *workload, "dist": *dist,
			"records": strconv.Itoa(*records), "ops": strconv.Itoa(*ops),
			"threads": strconv.Itoa(*threads), "valuesize": strconv.Itoa(*valSize),
			"theta": fmt.Sprintf("%g", th), "shards": strconv.Itoa(*shards),
		})
		harness.SetRecorder(rec)
		defer harness.SetRecorder(nil)
	}
	if *metricsAddr != "" {
		// The metrics server intentionally lives until process exit.
		addr, _, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics (also /debug/vars, /debug/obs/trace, /debug/pprof)\n", addr)
	}

	fmt.Printf("spash-ycsb: %d records, %d ops, %s %s, %dB values, %d workers\n\n",
		*records, *ops, *dist, mix.Name(), *valSize, *threads)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "index\tload Mops/s\trun Mops/s\tbound\tXP-reads/op\tXP-writes/op")
	fmt.Fprintln(tw, "-----\t-----------\t----------\t-----\t-----------\t------------")
	exported := false
	for _, e := range entries {
		ix, err := e.New(scale.Platform())
		if err != nil {
			fmt.Fprintln(os.Stderr, spash.DescribeError(err))
			os.Exit(1)
		}
		if !exported {
			if reg := harness.ObsRegistryOf(ix); reg != nil {
				// First obs-capable index feeds the HTTP export surface:
				// /metrics plus the /debug/spash snapshot, per-shard,
				// slowlog and health JSON feeds.
				obs.SetSources(obsSources(ix, reg))
				exported = true
			}
		}
		load := harness.LoadIndex(ix, *threads, *records, *valSize, false)
		pre, hasObs := harness.ObsSnapshotOf(ix)
		run := runMix(ix, e, scale, mix, th, *valSize, rec != nil)
		if rec != nil && hasObs {
			// The artifact carries the run phase's obs delta (load
			// excluded) so derived per-op rates describe the workload.
			post, _ := harness.ObsSnapshotOf(ix)
			d := post.Sub(pre)
			d.Ops = run.Ops
			d.Finalize()
			rec.SetObs(d)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%s\t%.2f\t%.2f\n",
			e.Name, load.Throughput(), run.Throughput(), run.Bound,
			run.PerOp(run.Mem.XPLineReads), run.PerOp(run.Mem.XPLineWrites))
	}
	tw.Flush()

	if rec != nil {
		if err := rec.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nartifact: %s\n", *jsonPath)
	}
}

func obsSource(ix ixapi.Index) obs.Source {
	return func() obs.Snapshot {
		s, _ := harness.ObsSnapshotOf(ix)
		s.Finalize()
		return s
	}
}

// obsSources assembles the full export bundle the index under test can
// offer: the aggregate snapshot always, per-shard snapshots, the
// slow-op log and a default-watermark health verdict when available.
func obsSources(ix ixapi.Index, reg *obs.Registry) obs.Sources {
	src := obsSource(ix)
	srcs := obs.Sources{Snapshot: src, Registry: reg}
	if _, ok := harness.ObsSnapshotsOf(ix); ok {
		srcs.Shards = func() []obs.Snapshot {
			snaps, _ := harness.ObsSnapshotsOf(ix)
			return snaps
		}
	}
	if slow, ok := harness.SlowOpsOf(ix); ok {
		srcs.SlowOps = slow
	}
	srcs.Health = func() obs.Health {
		return obs.EvalHealth(src(), obs.HealthWatermarks{})
	}
	return srcs
}

func runMix(ix ixapi.Index, e harness.Entry, s harness.Scale, mix ycsb.Mix, theta float64, valSize int, withLatency bool) harness.Result {
	per := s.YCSBOps / s.MaxThreads
	if per == 0 {
		per = 1
	}
	src := harness.MixSourceFor(mix, uint64(s.YCSBLoad), theta, valSize, 12345)
	if withLatency {
		// Sequential per-worker execution so every operation's virtual
		// latency is sampled into the artifact.
		res, _ := harness.RunWithLatency(mix.Name(), ix, s.MaxThreads, per, src)
		return res
	}
	return harness.RunWorkload(mix.Name(), ix, s.MaxThreads, per, e.Pipeline, src)
}
