// Command spash-ycsb is a standalone YCSB-style workload driver: pick
// an index, a distribution, a mixture and a value size, and get a
// load/run report with throughput (virtual time), PM media traffic and
// the binding bottleneck.
//
// Examples:
//
//	spash-ycsb -index spash -workload balanced -records 200000 -ops 200000
//	spash-ycsb -index level -workload write-intensive -dist zipfian -threads 56
//	spash-ycsb -index all -valuesize 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"spash/internal/harness"
	"spash/internal/ixapi"
	"spash/internal/ycsb"
)

func main() {
	var (
		index    = flag.String("index", "spash", "index to drive (spash, cceh, dash, level, clevel, plush, halo, all)")
		workload = flag.String("workload", "balanced", "run mixture (read-intensive, balanced, write-intensive, search-only, update-only)")
		dist     = flag.String("dist", "zipfian", "request distribution (zipfian, uniform)")
		records  = flag.Int("records", 200000, "records loaded")
		ops      = flag.Int("ops", 200000, "run-phase operations")
		threads  = flag.Int("threads", 56, "worker count")
		valSize  = flag.Int("valuesize", 8, "value size in bytes (8 = inline)")
		theta    = flag.Float64("theta", ycsb.DefaultTheta, "zipfian skew")
	)
	flag.Parse()

	var mix ycsb.Mix
	switch *workload {
	case "read-intensive":
		mix = ycsb.ReadIntensive
	case "balanced":
		mix = ycsb.Balanced
	case "write-intensive":
		mix = ycsb.WriteIntensive
	case "search-only":
		mix = ycsb.SearchOnly
	case "update-only":
		mix = ycsb.UpdateOnly
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	th := *theta
	if *dist == "uniform" {
		th = 0 // signalled below
	}

	scale := harness.Scale{
		YCSBLoad: *records, YCSBOps: *ops,
		MicroLoad: *records, MicroOps: *ops,
		MaxThreads: *threads,
		CacheBytes: 1 << 20,
	}

	entries := harness.MacroRoster()
	if *index != "all" {
		found := false
		for _, e := range entries {
			if strings.EqualFold(e.Name, *index) || strings.EqualFold(strings.ReplaceAll(e.Name, "-", ""), *index) {
				entries = []harness.Entry{e}
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown index %q\n", *index)
			os.Exit(2)
		}
	}

	fmt.Printf("spash-ycsb: %d records, %d ops, %s %s, %dB values, %d workers\n\n",
		*records, *ops, *dist, mix.Name(), *valSize, *threads)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "index\tload Mops/s\trun Mops/s\tbound\tXP-reads/op\tXP-writes/op")
	fmt.Fprintln(tw, "-----\t-----------\t----------\t-----\t-----------\t------------")
	for _, e := range entries {
		ix, err := e.New(scale.Platform())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		load := harness.LoadIndex(ix, *threads, *records, *valSize, false)
		run := runMix(ix, e, scale, mix, th, *valSize)
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%s\t%.2f\t%.2f\n",
			e.Name, load.Throughput(), run.Throughput(), run.Bound,
			run.PerOp(run.Mem.XPLineReads), run.PerOp(run.Mem.XPLineWrites))
	}
	tw.Flush()
}

func runMix(ix ixapi.Index, e harness.Entry, s harness.Scale, mix ycsb.Mix, theta float64, valSize int) harness.Result {
	per := s.YCSBOps / s.MaxThreads
	if per == 0 {
		per = 1
	}
	return harness.RunWorkload(mix.Name(), ix, s.MaxThreads, per, e.Pipeline,
		harness.MixSourceFor(mix, uint64(s.YCSBLoad), theta, valSize, 12345))
}
