package spash_test

import (
	"fmt"
	"log"

	"spash"
)

// The basic lifecycle: open a simulated eADR device, store data,
// survive a power failure.
func Example() {
	db, err := spash.Open(spash.Options{Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Session()
	if err := s.Insert([]byte("hello"), []byte("world")); err != nil {
		log.Fatal(err)
	}

	platform := db.Platform()
	lost := db.Crash() // power failure; eADR cache is persistent
	db2, err := spash.Recover(platform, spash.Options{})
	if err != nil {
		log.Fatal(err)
	}
	val, ok, _ := db2.Session().Get([]byte("hello"), nil)
	fmt.Printf("lost=%d found=%v value=%s\n", lost, ok, val)
	// Output: lost=0 found=true value=world
}

// Pipelined batches overlap PM read latency (the paper's §III-D).
func ExampleSession_ExecBatch() {
	db, _ := spash.Open(spash.Options{})
	s := db.Session()
	s.Insert([]byte("a"), []byte("1"))
	s.Insert([]byte("b"), []byte("2"))

	ops := []spash.Op{
		{Kind: spash.OpGet, Key: []byte("a")},
		{Kind: spash.OpGet, Key: []byte("b")},
		{Kind: spash.OpGet, Key: []byte("missing")},
	}
	s.ExecBatch(ops)
	fmt.Printf("%s %s found=%v\n", ops[0].Result, ops[1].Result, ops[2].Found)
	// Output: 1 2 found=false
}

// The ablation knobs reproduce the paper's Fig 12 variants.
func ExampleOptions() {
	db, err := spash.Open(spash.Options{
		Shards: 1, // single shard: db.Index() addresses the one index
		Index: spash.IndexOptions{
			Concurrency:   spash.ModeWriteLock,    // Fig 12(c) variant
			Update:        spash.UpdateNeverFlush, // Fig 12(a) variant
			PipelineDepth: 1,                      // Fig 12(d): no pipelining
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(db.Index().Config().Concurrency)
	// Output: write-lock
}
