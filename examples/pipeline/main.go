// Pipeline example: the batched, pipelined execution of §III-D.
//
// An analytics-style job performs bulk point lookups over a table far
// larger than the CPU cache, so nearly every lookup pays a PM read.
// Issued one at a time, the reads serialise on PM latency; issued
// through ExecBatch, the index prefetches the target buckets of the
// next PipelineDepth requests so their latencies overlap.
//
// The effect is measured in virtual time (the simulated platform's
// clock), so the numbers are independent of the host machine.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"spash"
)

const (
	tableSize = 300000
	lookups   = 100000
)

func key(buf []byte, id uint64) []byte {
	binary.LittleEndian.PutUint64(buf, id)
	return buf[:8]
}

func run(depth int) (virtualMS float64) {
	platform := spash.DefaultPlatform()
	platform.PoolSize = 512 << 20
	platform.CacheSize = 1 << 20 // table ≫ cache: lookups miss
	db, err := spash.Open(spash.Options{
		Platform: platform,
		Index:    spash.IndexOptions{PipelineDepth: depth},
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Session()
	defer s.Close()

	kb := make([]byte, 8)
	for i := uint64(0); i < tableSize; i++ {
		if err := s.Insert(key(kb, i), key(kb, i)); err != nil {
			log.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	ops := make([]spash.Op, lookups)
	for i := range ops {
		k := make([]byte, 8)
		ops[i] = spash.Op{Kind: spash.OpGet, Key: key(k, rng.Uint64()%tableSize)}
	}

	s.Ctx().ResetClock()
	s.ExecBatch(ops)
	for i := range ops {
		if !ops[i].Found {
			log.Fatalf("lookup %d missed", i)
		}
	}
	return float64(s.Ctx().Clock()) / 1e6
}

func main() {
	fmt.Printf("%d point lookups over a %d-key table (virtual time):\n\n", lookups, tableSize)
	base := run(1)
	fmt.Printf("  PD=1 (no pipelining): %7.1f ms\n", base)
	for _, pd := range []int{2, 4, 8} {
		ms := run(pd)
		fmt.Printf("  PD=%d:                %7.1f ms  (%.2fx)\n", pd, ms, base/ms)
	}
	fmt.Println("\nPD=4 captures most of the available overlap — the paper's choice (Fig 12d).")
}
