// Quickstart: open a Spash index on a simulated eADR persistent-memory
// device, store and retrieve some data, survive a power failure, and
// look at what the hardware did.
package main

import (
	"fmt"
	"log"

	"spash"
)

func main() {
	// Open a fresh index. The zero Options give a 256 MB simulated PM
	// device with an 8 MB persistent CPU cache (eADR) and the paper's
	// default index configuration: HTM concurrency, adaptive in-place
	// updates, compacted-flush insertion, pipeline depth 4.
	db, err := spash.Open(spash.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Each worker goroutine gets its own Session (per-worker virtual
	// clock, allocator cache, pipeline state).
	s := db.Session()
	defer s.Close()

	// Basic operations. Keys and values are arbitrary bytes up to
	// spash.MaxKVLen; 8-byte keys and values are stored inline in the
	// index's compound slots, larger ones behind out-of-line records.
	if err := s.Insert([]byte("language"), []byte("Go")); err != nil {
		log.Fatal(err)
	}
	if err := s.Insert([]byte("paper"), []byte("ICDE'24 Spash")); err != nil {
		log.Fatal(err)
	}

	val, found, err := s.Get([]byte("language"), nil)
	fmt.Printf("language = %q (found=%v, err=%v)\n", val, found, err)

	// Updates are adaptive in-place: hot entries stay in the
	// persistent CPU cache, cold large entries get an async flush.
	if _, err := s.Update([]byte("language"), []byte("Go 1.23")); err != nil {
		log.Fatal(err)
	}

	// Batched operations run in a pipelined manner, overlapping PM
	// read latencies (§III-D of the paper).
	batch := []spash.Op{
		{Kind: spash.OpGet, Key: []byte("language")},
		{Kind: spash.OpGet, Key: []byte("paper")},
		{Kind: spash.OpInsert, Key: []byte("venue"), Value: []byte("ICDE")},
	}
	s.ExecBatch(batch)
	fmt.Printf("pipelined gets: %q, %q\n", batch[0].Result, batch[1].Result)

	// Power failure. Under eADR the persistent CPU cache is flushed by
	// the reserve energy: nothing that completed is lost. The DB is
	// partitioned over GOMAXPROCS shards by default, each on its own
	// device, so the crash hits every device and recovery fans out in
	// parallel.
	platforms := db.Platforms()
	lost := db.Crash()
	fmt.Printf("power failure! cachelines lost: %d (eADR)\n", lost)

	db2, err := spash.RecoverAll(platforms, spash.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s2 := db2.Session()
	val, found, _ = s2.Get([]byte("language"), nil)
	fmt.Printf("after recovery: language = %q (found=%v), %d entries\n", val, found, db2.Len())

	// The simulated hardware meters every PM access.
	st := db2.Stats()
	fmt.Printf("PM media traffic: %d XPLine reads, %d XPLine writes, cache hits %d / misses %d\n",
		st.Memory.XPLineReads, st.Memory.XPLineWrites, st.Memory.CacheHits, st.Memory.CacheMisses)
}
