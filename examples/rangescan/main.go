// Range-scan example: the §V generality extension. The paper argues
// its techniques (volatile routing over PM, HTM concurrency, adaptive
// in-place updates, compacted-flush insertion) transfer to other
// persistent indexes; internal/btree applies them to a persistent
// B-link tree, which adds the one operation a hash index cannot offer:
// ordered range scans.
//
// The scenario: a time-series event store. Events are keyed by
// timestamp, appended concurrently, and queried by time window — while
// a power failure strikes in the middle.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"spash/internal/alloc"
	"spash/internal/btree"
	"spash/internal/pmem"
)

const rootSlot = 8

func main() {
	pool := pmem.New(pmem.Config{PoolSize: 256 << 20})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := btree.New(c, pool, al, rootSlot)
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent appenders: 4 sensors, interleaved timestamps.
	const sensors, events = 4, 25000
	fmt.Printf("ingesting %d events from %d concurrent sensors...\n", sensors*events, sensors)
	var wg sync.WaitGroup
	for sensor := 0; sensor < sensors; sensor++ {
		wg.Add(1)
		go func(sensor int) {
			defer wg.Done()
			w := tree.NewWorker(nil)
			defer w.Close()
			payload := make([]byte, 48)
			for i := 0; i < events; i++ {
				ts := uint64(i*sensors + sensor) // interleaved "timestamps"
				binary.LittleEndian.PutUint64(payload, ts)
				payload[8] = byte(sensor)
				if err := w.Insert(ts, payload); err != nil {
					log.Fatal(err)
				}
			}
		}(sensor)
	}
	wg.Wait()
	fmt.Printf("ingested: %d events in %d PM leaves (%d splits, %d routing hops)\n",
		tree.Len(), tree.Leaves(), tree.Splits(), tree.Hops())

	// A time-window query.
	w := tree.NewWorker(c)
	count, first, last := 0, uint64(0), uint64(0)
	w.Scan(5000, 5999, func(ts uint64, val []byte) bool {
		if count == 0 {
			first = ts
		}
		last = ts
		count++
		return true
	})
	fmt.Printf("window [5000,5999]: %d events, first=%d last=%d\n", count, first, last)

	// Power failure mid-life, then recovery from the leaf chain.
	if lost := pool.Crash(); lost != 0 {
		log.Fatalf("eADR lost %d lines", lost)
	}
	c2 := pool.NewCtx()
	al2, err := alloc.Attach(c2, pool)
	if err != nil {
		log.Fatal(err)
	}
	tree2, err := btree.Recover(c2, pool, al2, rootSlot)
	if err != nil {
		log.Fatal(err)
	}
	if err := al2.FinishRecovery(c2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after power failure: recovered %d events across %d leaves\n", tree2.Len(), tree2.Leaves())

	w2 := tree2.NewWorker(c2)
	count2 := 0
	w2.Scan(5000, 5999, func(uint64, []byte) bool { count2++; return true })
	fmt.Printf("window [5000,5999] after recovery: %d events (same answer: %v)\n", count2, count2 == count)
}
