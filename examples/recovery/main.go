// Recovery example: demonstrates durable linearizability under eADR
// (§II-C) and its violation on an ADR platform without flushes.
//
// Part 1 (eADR): concurrent workers apply writes, the machine loses
// power at a random point, and after recovery every operation that had
// completed is verified present — visibility implied durability.
//
// Part 2 (ADR, flushes removed): the same experiment on a platform
// whose CPU cache is volatile shows completed-but-unflushed writes
// vanishing — the inconsistency window the paper's target hardware
// eliminates.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"spash"
)

func k64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func main() {
	fmt.Println("=== Part 1: eADR — durable linearizability ===")
	eadr()
	fmt.Println("\n=== Part 2: ADR without flushes — data loss ===")
	adr()
}

func eadr() {
	db, err := spash.Open(spash.Options{})
	if err != nil {
		log.Fatal(err)
	}
	const workers, opsEach = 6, 5000
	completed := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		completed[w] = make(map[uint64]uint64)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			base := uint64(w) * 1_000_000
			for i := uint64(0); i < opsEach; i++ {
				k, v := base+i%2000, i
				if err := s.Insert(k64(k), k64(v)); err != nil {
					log.Fatal(err)
				}
				completed[w][k] = v // this op has returned: it must survive
			}
		}(w)
	}
	wg.Wait()

	platforms := db.Platforms()
	lost := db.Crash()
	fmt.Printf("power failure: %d cachelines lost across %d shard devices\n", lost, len(platforms))

	db2, err := spash.RecoverAll(platforms, spash.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := db2.Session()
	checked, bad := 0, 0
	for w := 0; w < workers; w++ {
		for k, v := range completed[w] {
			got, ok, _ := s.Get(k64(k), nil)
			checked++
			if !ok || binary.LittleEndian.Uint64(got) != v {
				bad++
			}
		}
	}
	fmt.Printf("verified %d completed operations after recovery: %d violations\n", checked, bad)
	if bad == 0 {
		fmt.Println("durable linearizability holds: everything that completed survived")
	}
}

func adr() {
	// Same store, but the platform's CPU cache is volatile (ADR) and
	// the index is configured to never flush — the paper's premise for
	// why removing flushes is only safe with eADR.
	platformCfg := spash.DefaultPlatform()
	platformCfg.Mode = spash.ADR
	db, err := spash.Open(spash.Options{
		Platform: platformCfg,
		Shards:   1, // one device keeps the lost-line count simple
		Index: spash.IndexOptions{
			Update: spash.UpdateNeverFlush,
			Insert: spash.InsertCompactNoFlush,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Session()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if err := s.Insert(k64(i), k64(i)); err != nil {
			log.Fatal(err)
		}
	}
	platform := db.Platform()
	lost := db.Crash()
	fmt.Printf("power failure: %d dirty cachelines rolled back (volatile cache!)\n", lost)

	db2, err := spash.Recover(platform, spash.Options{})
	if err != nil {
		fmt.Printf("recovery failed outright: %v\n", err)
		fmt.Println("(the index's own metadata was among the lost lines)")
		return
	}
	s2 := db2.Session()
	missing := 0
	for i := uint64(0); i < n; i++ {
		if _, ok, _ := s2.Get(k64(i), nil); !ok {
			missing++
		}
	}
	fmt.Printf("%d of %d completed inserts are GONE — visibility without durability\n", missing, n)
}
