// Session-store example: the workload the paper's introduction
// motivates — a persistent key-value layer under a web service with
// heavily skewed access (a few hot sessions take most of the traffic)
// and variable-sized values.
//
// It demonstrates how the adaptive in-place update policy (§III-B)
// absorbs hot-session updates in the persistent CPU cache: the hotspot
// detector classifies the hot sessions after a few accesses, and the
// PM media write counter grows far slower than the number of updates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"spash"
	"spash/internal/ycsb"
)

const (
	sessions = 100000
	ops      = 400000
	workers  = 8
)

func sessionKey(buf []byte, id uint64) []byte {
	return append(buf[:0], ycsb.KeyBytes(buf, id)...)
}

func main() {
	db, err := spash.Open(spash.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load: one 256-byte session blob per user.
	fmt.Printf("loading %d sessions...\n", sessions)
	s := db.Session()
	blob := make([]byte, 256)
	kb := make([]byte, 16)
	for i := uint64(0); i < sessions; i++ {
		ycsb.FillValue(blob, i)
		if err := s.Insert(sessionKey(kb, i), blob); err != nil {
			log.Fatal(err)
		}
	}
	s.Close()

	before := db.Stats()

	// Run: concurrent workers update sessions with a zipfian skew —
	// a few hot sessions receive most writes.
	fmt.Printf("running %d skewed session updates on %d workers...\n", ops, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			gen := ycsb.NewScrambled(sessions, ycsb.DefaultTheta, int64(w+1))
			rng := rand.New(rand.NewSource(int64(w)))
			blob := make([]byte, 256)
			kb := make([]byte, 16)
			for i := 0; i < ops/workers; i++ {
				id := gen.Next()
				ycsb.FillValue(blob, id^rng.Uint64())
				if _, err := sess.Update(sessionKey(kb, id), blob); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	after := db.Stats()
	mediaWrites := after.Memory.XPLineWrites - before.Memory.XPLineWrites
	naive := uint64(ops) * 2 // a 256B blob + record header spans ~2 XPLines
	fmt.Printf("\n%d updates performed\n", ops)
	fmt.Printf("hotspot detector hits: %d (%.0f%% of updates served hot)\n",
		after.Index.HotHits-before.Index.HotHits,
		100*float64(after.Index.HotHits-before.Index.HotHits)/float64(ops))
	fmt.Printf("PM media writes: %d XPLines — vs ~%d if every update reached media\n",
		mediaWrites, naive)
	fmt.Printf("the persistent CPU cache absorbed %.0f%% of the update traffic\n",
		100*(1-float64(mediaWrites)/float64(naive)))
}
