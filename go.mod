module spash

go 1.23
