module spash

go 1.23

// No requirements, deliberately. The spash-vet analyzer suite
// (internal/analysis) is built on the standard library alone (go/ast,
// go/types, go/parser, export data via `go list -export`) rather than
// golang.org/x/tools, so the module builds and vets itself offline with
// nothing but a Go toolchain. External linters (staticcheck,
// govulncheck) are therefore not go.mod dependencies either: their
// versions are pinned in the Makefile and .github/workflows/ci.yml
// (STATICCHECK_VERSION / GOVULNCHECK_VERSION) and installed on demand.
// If x/tools is ever vendored in, keep it pinned to the version the
// toolchain's own cmd/vet was built against.
