// Package adapters exposes Spash through the common ixapi interface
// used by the conformance suite and the benchmark harness, with
// factories for the ablation variants of §VI-D.
package adapters

import (
	"spash/internal/alloc"
	"spash/internal/core"
	"spash/internal/ixapi"
	"spash/internal/obs"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

// Spash adapts core.Index to ixapi.Index.
type Spash struct {
	ix   *core.Index
	name string
}

// NewSpashFactory returns a factory building a Spash index with the
// given configuration. name labels the variant in benchmark output
// (e.g. "Spash", "Spash-noPipe", "Spash(w/ write lock)").
func NewSpashFactory(name string, cfg core.Config) ixapi.Factory {
	return func(platform pmem.Config) (ixapi.Index, error) {
		pool := pmem.New(platform)
		c := pool.NewCtx()
		al, err := alloc.New(c, pool)
		if err != nil {
			return nil, err
		}
		ix, err := core.Open(c, pool, al, cfg)
		if err != nil {
			return nil, err
		}
		return &Spash{ix: ix, name: name}, nil
	}
}

// Name implements ixapi.Index.
func (s *Spash) Name() string { return s.name }

// NewWorker implements ixapi.Index.
func (s *Spash) NewWorker() ixapi.Worker { return &spashWorker{h: s.ix.NewHandle(nil)} }

// Len implements ixapi.Index.
func (s *Spash) Len() int { return s.ix.Len() }

// LoadFactor implements ixapi.Index.
func (s *Spash) LoadFactor() float64 { return s.ix.LoadFactor() }

// Pool implements ixapi.Index.
func (s *Spash) Pool() *pmem.Pool { return s.ix.Pool() }

// Group implements ixapi.Index.
func (s *Spash) Group() *vsync.Group { return s.ix.Group() }

// Core returns the wrapped index (harness ablation hooks).
func (s *Spash) Core() *core.Index { return s.ix }

// Obs returns the index's observability registry (nil when disabled).
func (s *Spash) Obs() *obs.Registry { return s.ix.Obs() }

// ObsSnapshot captures a unified observability snapshot; the harness
// discovers it through the optional interface assertion
// `interface{ ObsSnapshot() obs.Snapshot }` on ixapi.Index.
func (s *Spash) ObsSnapshot() obs.Snapshot { return s.ix.ObsSnapshot() }

// SlowOps returns the worst-n sampled operations retained by the
// slow-op log, slowest first.
func (s *Spash) SlowOps(n int) []obs.SlowOp { return s.ix.Obs().SlowOps(n) }

type spashWorker struct {
	h *core.Handle
}

func (w *spashWorker) Insert(key, val []byte) error { return w.h.Insert(key, val) }
func (w *spashWorker) Search(key, dst []byte) ([]byte, bool, error) {
	return w.h.Search(key, dst)
}
func (w *spashWorker) Update(key, val []byte) (bool, error) { return w.h.Update(key, val) }
func (w *spashWorker) Delete(key []byte) (bool, error)      { return w.h.Delete(key) }
func (w *spashWorker) Ctx() *pmem.Ctx                       { return w.h.Ctx() }
func (w *spashWorker) Close()                               { w.h.Close() }

// Handle exposes the core handle (for pipelined batches).
func (w *spashWorker) Handle() *core.Handle { return w.h }

// BatchWorker is implemented by workers that support pipelined batch
// execution (the harness uses it for Spash's pipeline).
type BatchWorker interface {
	ExecBatch(ops []core.BatchOp)
}

// ExecBatch implements BatchWorker.
func (w *spashWorker) ExecBatch(ops []core.BatchOp) { w.h.ExecBatch(ops) }
