package adapters

import (
	"testing"

	"spash/internal/core"
	"spash/internal/indextest"
)

func TestSpashConformance(t *testing.T) {
	indextest.Run(t, NewSpashFactory("Spash", core.Config{}))
}

func TestSpashWriteLockConformance(t *testing.T) {
	indextest.Run(t, NewSpashFactory("Spash(w/ write lock)",
		core.Config{Concurrency: core.ModeWriteLock, LockStripeBits: 4}))
}

func TestSpashRWLockConformance(t *testing.T) {
	indextest.Run(t, NewSpashFactory("Spash(w/ write & read lock)",
		core.Config{Concurrency: core.ModeRWLock, LockStripeBits: 4}))
}
