package adapters

import (
	"fmt"

	"spash/internal/core"
	"spash/internal/ixapi"
	"spash/internal/obs"
	"spash/internal/pmem"
	"spash/internal/shard"
	"spash/internal/vsync"
)

// Sharded adapts an N-way partitioned Spash (one device, allocator,
// index, and HTM domain per shard; see internal/shard) to ixapi.Index.
// It implements the harness's optional MultiPool/MultiGroup probes, so
// media traffic is metered per device and serial time bounded by the
// hottest shard's commit domain.
type Sharded struct {
	units []*shard.Unit
	name  string
}

// NewShardedFactory returns a factory building an n-shard Spash with
// the given per-shard configuration. The platform handed to the
// factory describes the whole database; it is divided among the shards
// (shard.SplitPlatform), so the n-shard index consumes the same total
// pool and cache a monolithic one would.
func NewShardedFactory(name string, n int, cfg core.Config) ixapi.Factory {
	return func(platform pmem.Config) (ixapi.Index, error) {
		units, err := shard.OpenAll(n, platform, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return &Sharded{units: units, name: name}, nil
	}
}

// Name implements ixapi.Index.
func (s *Sharded) Name() string { return s.name }

// NewWorker implements ixapi.Index: the worker holds one handle per
// shard and routes by the low bits of the key hash.
func (s *Sharded) NewWorker() ixapi.Worker {
	hs := make([]*core.Handle, len(s.units))
	for i, u := range s.units {
		hs[i] = u.Ix.NewHandle(nil)
	}
	return &shardedWorker{hs: hs}
}

// Len implements ixapi.Index.
func (s *Sharded) Len() int {
	n := 0
	for _, u := range s.units {
		n += u.Ix.Len()
	}
	return n
}

// LoadFactor implements ixapi.Index (aggregate entries over aggregate
// capacity).
func (s *Sharded) LoadFactor() float64 {
	var entries, segs int64
	for _, u := range s.units {
		st := u.Ix.Stats()
		entries += st.Entries
		segs += st.Segments
	}
	if segs == 0 {
		return 0
	}
	return float64(entries) / float64(segs*core.SlotsPerSegment)
}

// Pool implements ixapi.Index with the representative shard-0 device;
// the harness discovers the full set through Pools.
func (s *Sharded) Pool() *pmem.Pool { return s.units[0].Pool }

// Pools implements ixapi.MultiPool.
func (s *Sharded) Pools() []*pmem.Pool {
	out := make([]*pmem.Pool, len(s.units))
	for i, u := range s.units {
		out[i] = u.Pool
	}
	return out
}

// Group implements ixapi.Index with the shard-0 serialisation group;
// the harness discovers the full set through Groups.
func (s *Sharded) Group() *vsync.Group { return s.units[0].Ix.Group() }

// Groups implements ixapi.MultiGroup.
func (s *Sharded) Groups() []*vsync.Group {
	out := make([]*vsync.Group, len(s.units))
	for i, u := range s.units {
		out[i] = u.Ix.Group()
	}
	return out
}

// Obs returns the shard-0 registry (nil when disabled): the trace-ring
// endpoint and the export wiring discover obs capability through it.
func (s *Sharded) Obs() *obs.Registry { return s.units[0].Ix.Obs() }

// ObsSnapshot aggregates the per-shard snapshots (the harness probes
// this to fill bench artifacts).
func (s *Sharded) ObsSnapshot() obs.Snapshot {
	agg := s.units[0].Ix.ObsSnapshot()
	for _, u := range s.units[1:] {
		agg = agg.Add(u.Ix.ObsSnapshot())
	}
	return agg
}

// ObsSnapshots returns one snapshot per shard, in shard order (the
// harness probes this to fill the artifact's per-shard breakdown).
func (s *Sharded) ObsSnapshots() []obs.Snapshot {
	out := make([]obs.Snapshot, len(s.units))
	for i, u := range s.units {
		out[i] = u.Ix.ObsSnapshot()
	}
	return out
}

// SlowOps merges the per-shard slow-op logs into one worst-n list,
// slowest first.
func (s *Sharded) SlowOps(n int) []obs.SlowOp {
	lists := make([][]obs.SlowOp, 0, len(s.units))
	for _, u := range s.units {
		lists = append(lists, u.Ix.Obs().SlowOps(0))
	}
	return obs.MergeSlowOps(lists, n)
}

type shardedWorker struct {
	hs []*core.Handle
}

func (w *shardedWorker) route(key []byte) *core.Handle {
	return w.hs[shard.Of(core.KeyHash(key), len(w.hs))]
}

func (w *shardedWorker) Insert(key, val []byte) error { return w.route(key).Insert(key, val) }
func (w *shardedWorker) Search(key, dst []byte) ([]byte, bool, error) {
	return w.route(key).Search(key, dst)
}
func (w *shardedWorker) Update(key, val []byte) (bool, error) { return w.route(key).Update(key, val) }
func (w *shardedWorker) Delete(key []byte) (bool, error)      { return w.route(key).Delete(key) }

// Ctx returns the shard-0 context; the harness totals virtual time
// through the MultiCtxWorker probe.
func (w *shardedWorker) Ctx() *pmem.Ctx { return w.hs[0].Ctx() }

// ResetClocks implements ixapi.MultiCtxWorker.
func (w *shardedWorker) ResetClocks() {
	for _, h := range w.hs {
		h.Ctx().ResetClock()
	}
}

// TotalClock implements ixapi.MultiCtxWorker: one thread executes its
// operations serially whichever shard they land on, so its virtual
// time is the sum of the per-shard clocks.
func (w *shardedWorker) TotalClock() int64 {
	var total int64
	for _, h := range w.hs {
		total += h.Ctx().Clock()
	}
	return total
}

func (w *shardedWorker) Close() {
	for _, h := range w.hs {
		h.Close()
	}
}

// ExecBatch implements BatchWorker: the batch is partitioned by key
// and each shard's sub-batch runs through that shard's pipelined path.
func (w *shardedWorker) ExecBatch(ops []core.BatchOp) { shard.SplitBatch(w.hs, ops) }
