// Package alloc is a persistent-memory allocator modelled on DCMM
// (the allocator the Spash paper adopts, §III-C): per-thread caches,
// size-class free lists, and — crucially for compacted-flush insertion
// — small classes (≤128 bytes) carved out of XPLine-sized chunks so
// that consecutive small allocations are physically adjacent and can
// be flushed to media in one XPLine-granular write-back.
//
// Persistence model. Like DCMM, the allocator keeps its free lists in
// DRAM so that allocation and free touch no PM metadata on the fast
// path (the paper's per-insert PM write counts leave no budget for
// bitmap updates). The only persistent metadata is an append-only
// arena directory written once per arena (or raw span) creation.
// After a crash, Attach rebuilds the arena table from the directory;
// the owner of the pool then reports every live block via MarkLive
// (indexes know their reachable records), and FinishRecovery rebuilds
// the free lists as the complement — the offline mark phase DCMM-style
// allocators rely on.
package alloc

import (
	"errors"
	"fmt"
	"sync"

	"spash/internal/pmem"
)

// ErrOutOfMemory is returned when the pool is exhausted.
var ErrOutOfMemory = errors.New("alloc: pool exhausted")

// arenaBytes is the size of one arena; every arena serves one class.
const arenaBytes = 64 << 10

// Classes are the supported block sizes. Classes up to smallClassMax
// are carved from XPLine chunks (they divide 256, so no block crosses
// an XPLine boundary).
var classSizes = [numClasses]int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

const (
	numClasses    = 9
	smallClassMax = 128
)

// classFor returns the class index for a request of n bytes, or -1 if
// n exceeds the largest class.
func classFor(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// ClassSize returns the usable size of the block that a request of n
// bytes receives (allocation granularity for capacity planning).
func ClassSize(n int) int {
	if i := classFor(n); i >= 0 {
		return classSizes[i]
	}
	return int((uint64(n) + pmem.XPLineSize - 1) &^ uint64(pmem.XPLineSize-1))
}

// Directory entry encoding: bits 63..32 = class size (0 for a raw
// span), bits 31..0 = span length in XPLines.
func dirEntry(classSize, xplines uint64) uint64 { return classSize<<32 | xplines }

const (
	// headerAddr is where the allocator's superblock lives; the first
	// 64 bytes of the pool stay zero so address 0 can be the nil
	// pointer.
	headerAddr = 64
	magic      = 0x53504153484D4D31 // "SPASHMM1"
)

type classState struct {
	mu sync.Mutex
	// free is the global free list (block addresses).
	free []uint64
	// arena is the current arena for this class; bump is the offset
	// of the next unissued byte within it. arena == 0 means none.
	arena uint64
	bump  uint64
}

// Allocator manages a pmem pool. All indexes sharing a pool must share
// the Allocator.
type Allocator struct {
	pool *pmem.Pool

	mu        sync.Mutex // guards watermark and directory append
	watermark uint64     // next unassigned pool byte
	dirBase   uint64
	dirCap    uint64 // max entries
	dirLen    uint64
	dataBase  uint64

	classes [numClasses]classState

	// recovery state
	recovering bool
	liveMu     sync.Mutex
	live       map[uint64]struct{}
}

// New formats the pool and returns a fresh allocator. The pool must be
// zeroed (as returned by pmem.New).
//
//spash:guarded formats a virgin pool before any worker or HTM domain exists; single-threaded by contract
func New(c *pmem.Ctx, pool *pmem.Pool) (*Allocator, error) {
	a := &Allocator{pool: pool}
	a.layout()
	if pool.Load64(c, headerAddr) != 0 {
		return nil, errors.New("alloc: pool already formatted; use Attach")
	}
	pool.Store64(c, headerAddr, magic)
	pool.Flush(c, headerAddr, 8)
	pool.Fence(c)
	return a, nil
}

// Attach opens an already-formatted pool (e.g. after a crash) and
// rebuilds the arena table from the persistent directory. All blocks
// are initially considered live; call MarkLive for every reachable
// block and then FinishRecovery to reconstruct the free lists.
//
// Attach is a total function over arbitrary pool contents: a corrupted
// or truncated image yields a descriptive error, never a panic. Every
// directory entry is validated — the class size must be a supported
// class (or 0 for a raw span), the span non-empty and class-aligned,
// and the running watermark must stay inside the pool.
func Attach(c *pmem.Ctx, pool *pmem.Pool) (_ *Allocator, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pmem.IsInjectedCrash(r) {
				panic(r)
			}
			err = fmt.Errorf("alloc: attach failed on corrupted pool: %v", r)
		}
	}()
	a := &Allocator{pool: pool}
	a.layout()
	if a.dataBase >= pool.Size() {
		return nil, fmt.Errorf("alloc: pool of %d bytes too small for metadata layout", pool.Size())
	}
	if pool.Load64(c, headerAddr) != magic {
		return nil, errors.New("alloc: pool not formatted")
	}
	a.recovering = true
	a.live = make(map[uint64]struct{})
	// Replay the directory to restore the watermark. Arenas become
	// fully-bumped (their free space is recovered by the mark phase).
	avail := pool.Size() - a.dataBase
	for i := uint64(0); i < a.dirCap; i++ {
		e := pool.Load64(c, a.dirBase+i*8)
		if e == 0 {
			break
		}
		classSize := e >> 32
		span := (e & 0xFFFFFFFF) * pmem.XPLineSize
		if classSize != 0 {
			if classFor(int(classSize)) < 0 || uint64(ClassSize(int(classSize))) != classSize {
				return nil, fmt.Errorf("alloc: directory entry %d has unsupported class size %d", i, classSize)
			}
			if span%classSize != 0 {
				return nil, fmt.Errorf("alloc: directory entry %d: span %d not a multiple of class size %d", i, span, classSize)
			}
		}
		if span == 0 {
			return nil, fmt.Errorf("alloc: directory entry %d has empty span", i)
		}
		if span > avail-a.watermark {
			return nil, fmt.Errorf("alloc: directory entry %d overflows the pool (watermark %d + span %d > %d data bytes)",
				i, a.watermark, span, avail)
		}
		a.dirLen++
		a.watermark += span
	}
	return a, nil
}

// DataBase returns the pool address where carved data begins. Pool
// owners use it (with CarvedEnd) to bounds-check persistent pointers
// during recovery.
func (a *Allocator) DataBase() uint64 { return a.dataBase }

// CarvedEnd returns the pool address one past the last carved byte:
// every block the allocator has ever issued lies in
// [DataBase, CarvedEnd).
func (a *Allocator) CarvedEnd() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dataBase + a.watermark
}

// layout computes the directory and data regions from the pool size.
func (a *Allocator) layout() {
	size := a.pool.Size()
	a.dirCap = size / arenaBytes * 2 // arenas + generous raw spans
	a.dirBase = 256
	dataBase := a.dirBase + a.dirCap*8
	a.dataBase = (dataBase + pmem.XPLineSize - 1) &^ uint64(pmem.XPLineSize-1)
	a.watermark = 0 // offset relative to dataBase
}

// carve takes xplines XPLines from the pool watermark and records the
// span in the persistent directory.
//
//spash:guarded directory append serialised by a.mu and published by the flush+fence below; the entry is invisible to the index until the carved span is handed out
func (a *Allocator) carve(c *pmem.Ctx, classSize, xplines uint64) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dirLen == a.dirCap {
		return 0, ErrOutOfMemory
	}
	addr := a.dataBase + a.watermark
	if addr+xplines*pmem.XPLineSize > a.pool.Size() {
		return 0, ErrOutOfMemory
	}
	a.watermark += xplines * pmem.XPLineSize
	entry := a.dirBase + a.dirLen*8
	a.pool.Store64(c, entry, dirEntry(classSize, xplines))
	a.pool.Flush(c, entry, 8)
	a.pool.Fence(c)
	a.dirLen++
	return addr, nil
}

// AllocRaw carves a never-freed span of at least size bytes, aligned
// to XPLineSize. Baseline indexes use it for their table arrays.
func (a *Allocator) AllocRaw(c *pmem.Ctx, size uint64) (uint64, error) {
	xpl := (size + pmem.XPLineSize - 1) / pmem.XPLineSize
	return a.carve(c, 0, xpl)
}

// popFree moves up to want recycled blocks of class ci into dst.
func (a *Allocator) popFree(ci int, dst []uint64, want int) []uint64 {
	cs := &a.classes[ci]
	cs.mu.Lock()
	if n := len(cs.free); n > 0 {
		take := want
		if take > n {
			take = n
		}
		dst = append(dst, cs.free[n-take:]...)
		cs.free = cs.free[:n-take]
	}
	cs.mu.Unlock()
	return dst
}

// refillChunk issues one physically contiguous XPLine chunk of class
// ci blocks from the class arena (carving a new arena if dry). Small
// classes divide XPLineSize, so the chunk never crosses an XPLine
// boundary — the property compacted-flush insertion relies on.
func (a *Allocator) refillChunk(c *pmem.Ctx, ci int) (base uint64, count int, err error) {
	cs := &a.classes[ci]
	size := uint64(classSizes[ci])
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.arena == 0 || cs.bump == arenaBytes {
		addr, err := a.carve(c, size, arenaBytes/pmem.XPLineSize)
		if err != nil {
			return 0, 0, err
		}
		cs.arena, cs.bump = addr, 0
	}
	base = cs.arena + cs.bump
	cs.bump += pmem.XPLineSize
	return base, pmem.XPLineSize / int(size), nil
}

// refill moves a batch of blocks of class ci to dst, preferring
// recycled blocks and carving fresh arena space otherwise. Used for
// classes larger than smallClassMax, where contiguity does not matter.
func (a *Allocator) refill(c *pmem.Ctx, ci int, dst []uint64, want int) ([]uint64, error) {
	dst = a.popFree(ci, dst, want)
	cs := &a.classes[ci]
	size := uint64(classSizes[ci])
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for len(dst) < want {
		if cs.arena == 0 || cs.bump == arenaBytes {
			addr, err := a.carve(c, size, arenaBytes/pmem.XPLineSize)
			if err != nil {
				if len(dst) > 0 {
					return dst, nil
				}
				return dst, err
			}
			cs.arena, cs.bump = addr, 0
		}
		dst = append(dst, cs.arena+cs.bump)
		cs.bump += size
	}
	return dst, nil
}

// freeBatch returns blocks to the global class list.
func (a *Allocator) freeBatch(ci int, blocks []uint64) {
	cs := &a.classes[ci]
	cs.mu.Lock()
	cs.free = append(cs.free, blocks...)
	cs.mu.Unlock()
}

// RootWords is the number of application root slots the allocator
// reserves between its superblock and its directory. Applications
// (the index) store their persistent entry points there so recovery
// can find them at a fixed address.
const RootWords = 23

// RootAddr returns the pool address of application root word i.
func RootAddr(i int) uint64 {
	if i < 0 || i >= RootWords {
		panic("alloc: root word index out of range")
	}
	return headerAddr + 8 + uint64(i)*8
}

// Stats reports allocator occupancy.
type Stats struct {
	// WatermarkBytes is the total PM carved from the pool.
	WatermarkBytes uint64
	// Arenas is the number of directory entries (arenas + raw spans).
	Arenas uint64
	// FreeBlocks is the number of recycled blocks sitting on the
	// global class free lists (signed so phase deltas can go negative
	// when a phase consumes more than it frees).
	FreeBlocks int64
}

// Stats returns occupancy counters.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	s := Stats{WatermarkBytes: a.watermark, Arenas: a.dirLen}
	a.mu.Unlock()
	for i := range a.classes {
		cs := &a.classes[i]
		cs.mu.Lock()
		s.FreeBlocks += int64(len(cs.free))
		cs.mu.Unlock()
	}
	return s
}
