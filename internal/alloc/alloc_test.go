package alloc

import (
	"math/rand"
	"sync"
	"testing"

	"spash/internal/pmem"
)

func newTestAlloc(t *testing.T) (*Allocator, *pmem.Pool, *pmem.Ctx) {
	t.Helper()
	pool := pmem.New(pmem.Config{PoolSize: 32 << 20})
	c := pool.NewCtx()
	a, err := New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	return a, pool, c
}

func TestClassSizes(t *testing.T) {
	cases := []struct{ req, want int }{
		{1, 16}, {16, 16}, {17, 32}, {64, 64}, {65, 128},
		{128, 128}, {129, 256}, {1024, 1024}, {1025, 2048},
		{4096, 4096}, {5000, 5120},
	}
	for _, c := range cases {
		if got := ClassSize(c.req); got != c.want {
			t.Errorf("ClassSize(%d) = %d, want %d", c.req, got, c.want)
		}
	}
}

func TestAllocReturnsDistinctAlignedBlocks(t *testing.T) {
	a, _, c := newTestAlloc(t)
	h := a.NewHandle()
	seen := map[uint64]bool{}
	for _, size := range []int{16, 64, 128, 256, 1024} {
		for i := 0; i < 100; i++ {
			addr, _, err := h.Alloc(c, size)
			if err != nil {
				t.Fatal(err)
			}
			if addr == 0 || addr%8 != 0 {
				t.Fatalf("bad address %#x for size %d", addr, size)
			}
			if seen[addr] {
				t.Fatalf("address %#x handed out twice", addr)
			}
			seen[addr] = true
		}
	}
}

// Small-class allocations must be physically contiguous within an
// XPLine chunk and signal exactly when the chunk fills — the contract
// compacted-flush insertion depends on.
func TestSmallClassChunkCompaction(t *testing.T) {
	a, _, c := newTestAlloc(t)
	h := a.NewHandle()
	const size = 64
	perChunk := pmem.XPLineSize / size
	var prev uint64
	for i := 0; i < perChunk*3; i++ {
		addr, filled, err := h.Alloc(c, size)
		if err != nil {
			t.Fatal(err)
		}
		if i%perChunk == 0 {
			if addr%pmem.XPLineSize != 0 {
				t.Fatalf("chunk start %#x not XPLine-aligned", addr)
			}
		} else if addr != prev+size {
			t.Fatalf("alloc %d at %#x, want contiguous %#x", i, addr, prev+size)
		}
		wantFilled := i%perChunk == perChunk-1
		if (filled != 0) != wantFilled {
			t.Fatalf("alloc %d: filledChunk=%#x, want filled=%v", i, filled, wantFilled)
		}
		if filled != 0 && filled != addr-uint64(size)*(uint64(perChunk)-1) {
			t.Fatalf("filled chunk base %#x inconsistent with last block %#x", filled, addr)
		}
		prev = addr
	}
}

func TestLargeClassBlocksDoNotOverlap(t *testing.T) {
	a, _, c := newTestAlloc(t)
	h := a.NewHandle()
	addrs := make([]uint64, 0, 64)
	for i := 0; i < 64; i++ {
		addr, _, err := h.Alloc(c, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	for i, x := range addrs {
		for j, y := range addrs {
			if i != j && x < y+1024 && y < x+1024 {
				t.Fatalf("blocks %#x and %#x overlap", x, y)
			}
		}
	}
}

func TestFreeReuses(t *testing.T) {
	a, _, c := newTestAlloc(t)
	h := a.NewHandle()
	addr, _, err := h.Alloc(c, 256)
	if err != nil {
		t.Fatal(err)
	}
	h.Free(c, addr, 256)
	again, _, err := h.Alloc(c, 256)
	if err != nil {
		t.Fatal(err)
	}
	if again != addr {
		t.Fatalf("freed block not reused: got %#x, want %#x", again, addr)
	}
}

func TestFreeSpillsToGlobalList(t *testing.T) {
	a, _, c := newTestAlloc(t)
	h1 := a.NewHandle()
	addrs := make([]uint64, 0, 200)
	for i := 0; i < 200; i++ {
		addr, _, err := h1.Alloc(c, 256)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	for _, addr := range addrs {
		h1.Free(c, addr, 256)
	}
	h1.Close()
	// A different handle must be able to drain the recycled blocks.
	h2 := a.NewHandle()
	before := a.Stats().WatermarkBytes
	for i := 0; i < 200; i++ {
		if _, _, err := h2.Alloc(c, 256); err != nil {
			t.Fatal(err)
		}
	}
	if after := a.Stats().WatermarkBytes; after != before {
		t.Fatalf("allocations carved new space (%d -> %d) despite free list", before, after)
	}
}

func TestAllocRawAlignedAndExclusive(t *testing.T) {
	a, _, c := newTestAlloc(t)
	r1, err := a.AllocRaw(c, 10000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.AllocRaw(c, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if r1%pmem.XPLineSize != 0 || r2%pmem.XPLineSize != 0 {
		t.Fatalf("raw spans not aligned: %#x %#x", r1, r2)
	}
	if r2 < r1+10000 {
		t.Fatalf("raw spans overlap: %#x %#x", r1, r2)
	}
}

func TestOutOfMemory(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 1 << 20})
	c := pool.NewCtx()
	a, err := New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocRaw(c, 2<<20); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestConcurrentHandles(t *testing.T) {
	a, _, _ := newTestAlloc(t)
	pool := a.pool
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := pool.NewCtx()
			h := a.NewHandle()
			local := make([]uint64, 0, 500)
			for i := 0; i < 500; i++ {
				size := []int{16, 64, 256, 1024}[i%4]
				addr, _, err := h.Alloc(c, size)
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, addr)
			}
			mu.Lock()
			for _, addr := range local {
				if seen[addr] {
					t.Errorf("address %#x handed out twice", addr)
				}
				seen[addr] = true
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
}

func TestAttachRecoversWatermarkAndFreeLists(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 32 << 20})
	c := pool.NewCtx()
	a, err := New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	h := a.NewHandle()
	live := make([]uint64, 0, 10)
	dead := make([]uint64, 0, 10)
	for i := 0; i < 20; i++ {
		addr, _, err := h.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			live = append(live, addr)
		} else {
			dead = append(dead, addr)
		}
	}
	wm := a.Stats().WatermarkBytes

	pool.Crash()
	a2, err := Attach(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	if got := a2.Stats().WatermarkBytes; got != wm {
		t.Fatalf("recovered watermark %d, want %d", got, wm)
	}
	for _, addr := range live {
		a2.MarkLive(addr)
	}
	if err := a2.FinishRecovery(c); err != nil {
		t.Fatal(err)
	}
	// New allocations must reuse dead blocks and never collide with
	// live ones.
	h2 := a2.NewHandle()
	liveSet := map[uint64]bool{}
	for _, addr := range live {
		liveSet[addr] = true
	}
	deadSet := map[uint64]bool{}
	for _, addr := range dead {
		deadSet[addr] = true
	}
	reusedDead := 0
	for i := 0; i < len(dead); i++ {
		addr, _, err := h2.Alloc(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if liveSet[addr] {
			t.Fatalf("recovery reissued live block %#x", addr)
		}
		if deadSet[addr] {
			reusedDead++
		}
	}
	if reusedDead == 0 {
		t.Fatal("recovery reclaimed no dead blocks")
	}
}

func TestAttachUnformattedFails(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 1 << 20})
	c := pool.NewCtx()
	if _, err := Attach(c, pool); err == nil {
		t.Fatal("Attach on unformatted pool succeeded")
	}
}

func TestNewOnFormattedFails(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 1 << 20})
	c := pool.NewCtx()
	if _, err := New(c, pool); err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, pool); err == nil {
		t.Fatal("double format succeeded")
	}
}

// Property: any interleaving of allocations and frees never hands out
// overlapping blocks among the live set.
func TestAllocFreePropertyNoOverlap(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 64 << 20})
	c := pool.NewCtx()
	a, err := New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	h := a.NewHandle()
	type block struct{ addr, size uint64 }
	var live []block
	rng := rand.New(rand.NewSource(321))
	sizes := []int{16, 32, 64, 128, 256, 512, 1024}
	for step := 0; step < 20000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			h.Free(c, live[i].addr, int(live[i].size))
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := sizes[rng.Intn(len(sizes))]
		addr, _, err := h.Alloc(c, size)
		if err != nil {
			t.Fatal(err)
		}
		cs := uint64(ClassSize(size))
		for _, b := range live {
			if addr < b.addr+b.size && b.addr < addr+cs {
				t.Fatalf("step %d: block [%#x,%#x) overlaps live [%#x,%#x)",
					step, addr, addr+cs, b.addr, b.addr+b.size)
			}
		}
		live = append(live, block{addr, cs})
	}
}
