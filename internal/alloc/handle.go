package alloc

import (
	"fmt"

	"spash/internal/pmem"
)

// refillCounts is how many blocks a handle pulls from the global class
// state at once, per class. Small classes refill in whole XPLine
// chunks so the handle's allocations stay physically contiguous.
func refillCount(ci int) int {
	size := classSizes[ci]
	if size <= smallClassMax {
		return pmem.XPLineSize / size // one XPLine chunk
	}
	return 8
}

// Handle is a per-worker allocation cache (DCMM's thread-local free
// block lists). A Handle must not be used concurrently.
type Handle struct {
	a     *Allocator
	cache [numClasses][]uint64

	// chunk tracking for compacted-flush: for each small class, the
	// base of the XPLine chunk currently being handed out and how
	// many of its blocks remain.
	chunkBase [numClasses]uint64
	chunkLeft [numClasses]int
}

// NewHandle returns a fresh per-worker handle.
func (a *Allocator) NewHandle() *Handle {
	return &Handle{a: a}
}

// Alloc returns a block of at least size bytes. For small classes
// (≤128 B) blocks are handed out in ascending address order within an
// XPLine chunk; when an allocation consumes the last block of a chunk,
// filledChunk is the chunk's base address — the caller implementing
// compacted-flush insertion (paper §III-C) should issue one XPLine
// flush for [filledChunk, filledChunk+256).
//
// Requests larger than the biggest class are served as raw spans and
// cannot be freed.
func (h *Handle) Alloc(c *pmem.Ctx, size int) (addr uint64, filledChunk uint64, err error) {
	ci := classFor(size)
	if ci < 0 {
		addr, err = h.a.AllocRaw(c, uint64(size))
		return addr, 0, err
	}
	cs := classSizes[ci]
	if cs <= smallClassMax {
		return h.allocSmall(c, ci)
	}
	if len(h.cache[ci]) == 0 {
		h.cache[ci], err = h.a.refill(c, ci, h.cache[ci][:0], refillCount(ci))
		if err != nil {
			return 0, 0, err
		}
	}
	n := len(h.cache[ci]) - 1
	addr = h.cache[ci][n]
	h.cache[ci] = h.cache[ci][:n]
	return addr, 0, nil
}

// allocSmall serves small classes. Recycled blocks (from Free) are
// preferred; otherwise blocks come from the handle's current XPLine
// chunk in ascending address order so consecutive insertions compact.
func (h *Handle) allocSmall(c *pmem.Ctx, ci int) (uint64, uint64, error) {
	if len(h.cache[ci]) == 0 {
		h.cache[ci] = h.a.popFree(ci, h.cache[ci][:0], refillCount(ci))
	}
	if n := len(h.cache[ci]); n > 0 {
		addr := h.cache[ci][n-1]
		h.cache[ci] = h.cache[ci][:n-1]
		return addr, 0, nil
	}
	size := uint64(classSizes[ci])
	if h.chunkLeft[ci] == 0 {
		base, count, err := h.a.refillChunk(c, ci)
		if err != nil {
			return 0, 0, err
		}
		h.chunkBase[ci] = base
		h.chunkLeft[ci] = count
	}
	idx := refillCount(ci) - h.chunkLeft[ci]
	addr := h.chunkBase[ci] + uint64(idx)*size
	h.chunkLeft[ci]--
	if h.chunkLeft[ci] == 0 {
		return addr, h.chunkBase[ci], nil
	}
	return addr, 0, nil
}

// Free returns a block allocated with size to the handle's cache.
// Oversized caches spill to the global class list.
func (h *Handle) Free(c *pmem.Ctx, addr uint64, size int) {
	ci := classFor(size)
	if ci < 0 {
		panic(fmt.Sprintf("alloc: Free of raw span (%d bytes)", size))
	}
	h.cache[ci] = append(h.cache[ci], addr)
	if len(h.cache[ci]) > 4*refillCount(ci) {
		spill := len(h.cache[ci]) / 2
		h.a.freeBatch(ci, h.cache[ci][:spill])
		h.cache[ci] = append(h.cache[ci][:0], h.cache[ci][spill:]...)
	}
}

// Close spills the handle's caches back to the allocator.
func (h *Handle) Close() {
	for ci := range h.cache {
		if len(h.cache[ci]) > 0 {
			h.a.freeBatch(ci, h.cache[ci])
			h.cache[ci] = nil
		}
		// Unissued blocks of a partially consumed chunk go back too.
		size := uint64(classSizes[ci])
		for h.chunkLeft[ci] > 0 {
			idx := refillCount(ci) - h.chunkLeft[ci]
			h.a.freeBatch(ci, []uint64{h.chunkBase[ci] + uint64(idx)*size})
			h.chunkLeft[ci]--
		}
	}
}
