package alloc

import (
	"errors"
	"fmt"

	"spash/internal/pmem"
)

// MarkLive records, during recovery, that the block starting at addr
// is reachable from an index and must not be reused. Safe for
// concurrent use (recovery scans may be parallel).
func (a *Allocator) MarkLive(addr uint64) {
	a.liveMu.Lock()
	a.live[addr] = struct{}{}
	a.liveMu.Unlock()
}

// FinishRecovery completes an Attach: it sweeps every class arena
// recorded in the persistent directory and rebuilds the global free
// lists from the blocks not marked live. After it returns the
// allocator is fully usable and the recovery mark set is dropped.
func (a *Allocator) FinishRecovery(c *pmem.Ctx) error {
	if !a.recovering {
		return errors.New("alloc: FinishRecovery without Attach")
	}
	addr := a.dataBase
	for i := uint64(0); i < a.dirLen; i++ {
		e := a.pool.Load64(c, a.dirBase+i*8)
		classSize := e >> 32
		span := (e & 0xFFFFFFFF) * pmem.XPLineSize
		// Attach validated every entry; re-check the class here so a
		// directory mutated between Attach and FinishRecovery cannot
		// index classes out of range.
		if classSize != 0 && (classFor(int(classSize)) < 0 || span%classSize != 0) {
			return fmt.Errorf("alloc: directory entry %d corrupted during recovery (class %d, span %d)", i, classSize, span)
		}
		if classSize != 0 {
			// Sweep in descending address order: free lists pop from
			// the tail, so reclaimed low-address blocks are reused
			// before fresh high-address ones (better locality).
			for b := addr + span - classSize; ; b -= classSize {
				if _, ok := a.live[b]; !ok {
					ci := classFor(int(classSize))
					a.classes[ci].free = append(a.classes[ci].free, b)
				}
				if b == addr {
					break
				}
			}
		}
		addr += span
	}
	a.recovering = false
	a.live = nil
	return nil
}
