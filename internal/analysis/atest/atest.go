// Package atest is a small analysistest-style harness for the
// spash-vet analyzers: fixture files under
// internal/analysis/testdata/src/<name>/ carry
//
//	expr // want `regex`
//
// comments, and Check asserts that the analyzer reports exactly the
// expected diagnostics — every want matched on its line, nothing
// unexpected anywhere, and suppressed (//spash:allow) findings
// reported as suppressions rather than diagnostics.
package atest

import (
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"spash/internal/analysis/framework"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// Fixture loads testdata/src/<name> as import path <name>, resolving
// the listed dependency packages (plus their transitive closure) from
// the build cache.
func Fixture(t *testing.T, name string, deps ...string) *framework.Package {
	t.Helper()
	return Fixtures(t, []string{name}, deps...)[0]
}

// Fixtures loads several fixture directories as one multi-package
// fixture, listed dependency-first: testdata/src/<name> becomes import
// path <name>, and later fixtures may import earlier ones by that path
// (so a facts-producing package can be consumed by a second fixture,
// exercising cross-package propagation).
func Fixtures(t *testing.T, names []string, deps ...string) []*framework.Package {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate atest source directory")
	}
	base := filepath.Join(filepath.Dir(thisFile), "..", "testdata", "src")
	fixtures := make([]framework.FixtureDir, 0, len(names))
	for _, name := range names {
		fixtures = append(fixtures, framework.FixtureDir{
			Dir:        filepath.Join(base, filepath.FromSlash(name)),
			ImportPath: name,
		})
	}
	loader := &framework.Loader{Dir: filepath.Dir(thisFile)}
	pkgs, err := loader.LoadDirs(fixtures, deps...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", names, err)
	}
	return pkgs
}

// Check runs the analyzers over the fixture package and compares the
// diagnostics against the fixture's // want comments.
func Check(t *testing.T, pkg *framework.Package, analyzers ...*framework.Analyzer) {
	t.Helper()
	CheckPkgs(t, []*framework.Package{pkg}, analyzers...)
}

// CheckPkgs runs the analyzers over a multi-package fixture in one
// shared-facts run and compares the merged diagnostics against every
// package's // want comments — each want matched on its line, nothing
// unexpected anywhere.
func CheckPkgs(t *testing.T, pkgs []*framework.Package, analyzers ...*framework.Analyzer) {
	t.Helper()
	diags, _, err := framework.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
						}
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		if !consume(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func consume(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Suppressions runs the analyzers and returns only the suppressions,
// for fixtures asserting that //spash:allow works.
func Suppressions(t *testing.T, pkg *framework.Package, analyzers ...*framework.Analyzer) []framework.Suppression {
	t.Helper()
	return SuppressionsPkgs(t, []*framework.Package{pkg}, analyzers...)
}

// SuppressionsPkgs is Suppressions over a multi-package fixture.
func SuppressionsPkgs(t *testing.T, pkgs []*framework.Package, analyzers ...*framework.Analyzer) []framework.Suppression {
	t.Helper()
	_, supp, err := framework.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return supp
}

// MustContainSuppression asserts one of the suppressions carries the
// given analyzer name and a reason containing substr.
func MustContainSuppression(t *testing.T, supp []framework.Suppression, analyzer, substr string) {
	t.Helper()
	for _, s := range supp {
		if s.Analyzer == analyzer && strings.Contains(s.Reason, substr) {
			return
		}
	}
	t.Errorf("no %s suppression with reason containing %q (have %d suppressions)", analyzer, substr, len(supp))
}
