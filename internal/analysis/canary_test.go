package analysis_test

// Canary tests for the v2 analyzers: each one deletes (in a parse-time
// overlay, never in the tree) the exact line of product code whose
// absence the analyzer exists to catch, and asserts the finding
// appears — proof the suite guards the invariant, not just the current
// source text.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spash/internal/analysis"
	"spash/internal/analysis/framework"
)

// mutateSource reads path, asserts it still contains old (so needle
// drift fails loudly), and returns the content with old replaced by new.
func mutateSource(t *testing.T, path, old, new string) []byte {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), old) {
		t.Fatalf("%s no longer contains the expected needle; update this test", path)
	}
	return []byte(strings.Replace(string(src), old, new, 1))
}

// runSuite loads the packages matching pattern (with overlay applied)
// and returns the suite's unsuppressed diagnostics.
func runSuite(t *testing.T, root, pattern string, overlay map[string][]byte) []framework.Diagnostic {
	t.Helper()
	loader := &framework.Loader{Dir: root, Overlay: overlay}
	pkgs, err := loader.Load(pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	diags, _, err := framework.Run(pkgs, analysis.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	return diags
}

// expectOnly asserts diags contains at least one finding from analyzer
// whose message matches substr, and nothing else.
func expectOnly(t *testing.T, diags []framework.Diagnostic, analyzer, substr string) {
	t.Helper()
	var hit bool
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			hit = true
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !hit {
		t.Errorf("no %s diagnostic matching %q", analyzer, substr)
	}
}

// TestDeletedProberShutdownEdgeIsCaught: reverting proberLoop to a
// sleep-loop with no done-channel select (and no WaitGroup join) makes
// golifetime flag the spawn again.
func TestDeletedProberShutdownEdgeIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/repl twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "repl", "breaker.go")
	const edge = `	defer p.proberWG.Done()
	ticker := time.NewTicker(p.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			p.mu.Lock()
			p.proberOn = false
			p.mu.Unlock()
			return
		case <-ticker.C:
		}
`
	const polling = `	for {
		time.Sleep(p.opts.ProbeInterval)
`
	mutated := mutateSource(t, path, edge, polling)
	if diags := runSuite(t, root, "./internal/repl", nil); len(diags) != 0 {
		t.Fatalf("pristine internal/repl should be clean, got %v", diags)
	}
	diags := runSuite(t, root, "./internal/repl", map[string][]byte{path: mutated})
	expectOnly(t, diags, "golifetime", "proberLoop")
}

// TestDeletedShardBoundsCheckIsCaught: removing applyLocked's shard
// validation leaves Indexes()[f.Shard] unguarded — epochgate E3.
func TestDeletedShardBoundsCheckIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/repl twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "repl", "repl.go")
	const guard = `	if f.Shard < 0 || f.Shard >= r.db.Shards() {
		// Apply refuses out-of-range shards on entry; this guards the
		// indexing below against frames resurfacing from the reorder
		// window or pause buffer of an older process image.
		return &spash.ReplicationError{Op: "apply", Shard: f.Shard,
			Epoch: r.db.Epoch(),
			Err:   fmt.Errorf("no such shard (have %d)", r.db.Shards())}
	}
	ix := r.db.Indexes()[f.Shard]
`
	mutated := mutateSource(t, path, guard, "\tix := r.db.Indexes()[f.Shard]\n")
	diags := runSuite(t, root, "./internal/repl", map[string][]byte{path: mutated})
	expectOnly(t, diags, "epochgate", "applyLocked indexes by a frame's Shard field without bounds-checking")
}

// TestDeletedCursorFlushIsCaught: dropping the Flush between the
// applied-cursor Store64 and the Fence breaks the E2 discipline.
func TestDeletedCursorFlushIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/core twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "core", "index.go")
	const sequence = `	ix.pool.Store64(c, alloc.RootAddr(rootApplied), seq)
	ix.pool.Flush(c, alloc.RootAddr(rootApplied), 8)
	ix.pool.Fence(c)
`
	const noFlush = `	ix.pool.Store64(c, alloc.RootAddr(rootApplied), seq)
	ix.pool.Fence(c)
`
	mutated := mutateSource(t, path, sequence, noFlush)
	diags := runSuite(t, root, "./internal/core", map[string][]byte{path: mutated})
	expectOnly(t, diags, "epochgate", "SetAppliedSeq stores a durable epoch/cursor word without flushing")
}

// TestDeletedDecodeCaseIsCaught: removing the LAG decode case makes
// the encode map's LAG entry a one-way translation — wireerr.
func TestDeletedDecodeCaseIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/server twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "server", "wire.go")
	const lagCase = `	case "LAG":
		sentinel = spash.ErrReplicaLag
`
	mutated := mutateSource(t, path, lagCase, "")
	if diags := runSuite(t, root, "./internal/server", nil); len(diags) != 0 {
		t.Fatalf("pristine internal/server should be clean, got %v", diags)
	}
	diags := runSuite(t, root, "./internal/server", map[string][]byte{path: mutated})
	expectOnly(t, diags, "wireerr", `wire code "LAG" (encoding spash.ErrReplicaLag) is never decoded`)
}

// TestDeletedGuardAnnotationIsCaught: stripping SetAppliedSeq's
// //spash:guarded justification exposes its raw applied-cursor
// Store64 to pmstore.
func TestDeletedGuardAnnotationIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/core twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "core", "index.go")
	const guard = "//spash:guarded the applied-cursor word is owned by the single replication applier under the replica mutex; no concurrent HTM domain activity touches it\n"
	mutated := mutateSource(t, path, guard, "")
	diags := runSuite(t, root, "./internal/core", map[string][]byte{path: mutated})
	expectOnly(t, diags, "pmstore", "SetAppliedSeq is reachable outside an htm.Txn body")
}

// TestInjectedCtxEscapeIsCaught: a goroutine capturing the per-worker
// *pmem.Ctx is flagged by ctxescape.
func TestInjectedCtxEscapeIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/core twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "core", "index.go")
	const fence = "	ix.pool.Fence(c)\n	ix.applied.Store(seq)\n"
	const leaked = "	ix.pool.Fence(c)\n	go func() { ix.pool.Fence(c) }()\n	ix.applied.Store(seq)\n"
	mutated := mutateSource(t, path, fence, leaked)
	diags := runSuite(t, root, "./internal/core", map[string][]byte{path: mutated})
	expectOnly(t, diags, "ctxescape", `goroutine captures *pmem.Ctx "c"`)
}

// TestInjectedRecoveryPanicIsCaught: turning Recover's typed magic
// check into a panic violates panicfree.
func TestInjectedRecoveryPanicIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/core twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "core", "recover.go")
	const typed = `		return nil, nil, errors.New("core: pool does not contain an index")
`
	const panics = `		panic("core: pool does not contain an index")
`
	mutated := mutateSource(t, path, typed, panics)
	diags := runSuite(t, root, "./internal/core", map[string][]byte{path: mutated})
	expectOnly(t, diags, "panicfree", "panic in recovery path")
}

// TestDeletedErrorsIsIsCaught: demoting writeOpError's errors.Is to a
// == comparison breaks matching under %w wrapping — errtype.
func TestDeletedErrorsIsIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/server twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "server", "conn.go")
	const wrapped = "	case errors.Is(err, spash.ErrNotPrimary):\n"
	const bare = "	case err == spash.ErrNotPrimary:\n"
	mutated := mutateSource(t, path, wrapped, bare)
	diags := runSuite(t, root, "./internal/server", map[string][]byte{path: mutated})
	expectOnly(t, diags, "errtype", "use errors.Is(err, spash.ErrNotPrimary)")
}

// TestDeletedAliasJustificationIsCaught: stripping the //spash:aliased
// directive off queueOp's batch append resurfaces the respalias
// finding — justifications suppress, they don't blind the analyzer.
func TestDeletedAliasJustificationIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/server twice")
	}
	root := moduleRoot(t)
	path := filepath.Join(root, "internal", "server", "conn.go")
	const directive = "\t//spash:aliased -- the batch executes and its replies flush before the reader's Release; ops is truncated each burst\n"
	mutated := mutateSource(t, path, directive, "")
	diags := runSuite(t, root, "./internal/server", map[string][]byte{path: mutated})
	expectOnly(t, diags, "respalias", "escapes into caller-visible state through c")
}
