// Package ctxescape enforces the per-worker contract of pmem.Ctx: a
// context carries a worker-private virtual clock, so sharing one
// across goroutines silently corrupts the timing model. The analyzer
// flags three escape routes:
//
//   - storing a *pmem.Ctx into a struct field whose owner type is not
//     on the allowlist of audited single-worker owners,
//   - capturing or receiving a *pmem.Ctx in a `go` statement,
//   - sending a *pmem.Ctx over a channel.
package ctxescape

import (
	"go/ast"
	"go/types"
	"strings"

	"spash/internal/analysis/framework"
	"spash/internal/analysis/sym"
)

var Analyzer = &framework.Analyzer{
	Name: "ctxescape",
	Doc:  "*pmem.Ctx must stay with its owning worker: no struct-field escape outside allowlisted owners, no capture by go statements, no channel sends",
	Run:  run,
}

// AllowedOwners lists struct types (matched by package-path suffix and
// type name) audited to respect the per-worker contract: core.Handle
// and core.rawMem are strictly per-session, and shard.Unit holds the
// bootstrap context used only by single-goroutine maintenance.
var AllowedOwners = []string{
	"internal/core.Handle",
	"internal/core.rawMem",
	"internal/shard.Unit",
}

// ExemptPkgs: pmem owns the type; htm transactions are confined by
// construction; the baselines predate the contract and are exercised
// only by the single-threaded harness.
var ExemptPkgs = []string{
	"internal/pmem",
	"internal/htm",
	"internal/baselines/",
	"internal/btree",
}

func run(pass *framework.Pass) error {
	if sym.PkgMatches(pass.Pkg.Path(), ExemptPkgs) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				checkCompositeLit(pass, node)
			case *ast.AssignStmt:
				checkAssign(pass, node)
			case *ast.GoStmt:
				checkGo(pass, node)
				return false // checkGo inspects the whole statement
			case *ast.SendStmt:
				if sym.IsCtxPtr(pass.Info.Types[node.Value].Type) {
					pass.Reportf(node.Pos(),
						"*pmem.Ctx sent over a channel: contexts are per-worker and must not change goroutines; create a fresh ctx with pool.NewCtx on the receiving side")
				}
			}
			return true
		})
	}
	return nil
}

// ownerName renders a named struct type as "pkgpath.Name" for
// allowlist matching.
func ownerAllowed(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "?", false
	}
	obj := n.Obj()
	name := obj.Name()
	if obj.Pkg() != nil {
		name = obj.Pkg().Path() + "." + name
	}
	for _, allowed := range AllowedOwners {
		if name == allowed || strings.HasSuffix(name, "/"+allowed) {
			return name, true
		}
	}
	return name, false
}

func checkCompositeLit(pass *framework.Pass, lit *ast.CompositeLit) {
	t := pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if !sym.IsCtxPtr(pass.Info.Types[val].Type) {
			continue
		}
		if name, ok := ownerAllowed(t); !ok {
			pass.Reportf(val.Pos(),
				"*pmem.Ctx stored into a field of %s, which is not an allowlisted per-worker owner (%s); contexts must not outlive their worker",
				name, strings.Join(AllowedOwners, ", "))
		}
	}
}

func checkAssign(pass *framework.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			continue
		}
		if !sym.IsCtxPtr(pass.Info.Types[as.Rhs[i]].Type) {
			continue
		}
		if name, ok := ownerAllowed(selection.Recv()); !ok {
			pass.Reportf(as.Rhs[i].Pos(),
				"*pmem.Ctx assigned to field %s of %s, which is not an allowlisted per-worker owner (%s)",
				sel.Sel.Name, name, strings.Join(AllowedOwners, ", "))
		}
	}
}

// checkGo flags a *pmem.Ctx crossing into a new goroutine, either as a
// call argument or as a variable captured by the goroutine's literal.
func checkGo(pass *framework.Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if sym.IsCtxPtr(pass.Info.Types[arg].Type) {
			pass.Reportf(arg.Pos(),
				"*pmem.Ctx passed to a new goroutine: contexts are per-worker; create one inside the goroutine with pool.NewCtx")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		// Still inspect a non-literal callee's nested args (handled
		// above); nothing further to check.
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !sym.IsCtxPtr(obj.Type()) {
			return true
		}
		// Defined inside the literal (e.g. c := pool.NewCtx()) is fine;
		// only variables from the enclosing scope are captures.
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return true
		}
		pass.Reportf(id.Pos(),
			"goroutine captures *pmem.Ctx %q from its enclosing scope: contexts are per-worker; create one inside the goroutine with pool.NewCtx",
			id.Name)
		return true
	})
}
