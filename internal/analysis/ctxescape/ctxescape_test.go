package ctxescape_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/ctxescape"
)

func TestCtxescapeFixture(t *testing.T) {
	pkg := atest.Fixture(t, "ctxescape", "spash/internal/pmem", "spash/internal/shard")
	atest.Check(t, pkg, ctxescape.Analyzer)
}

func TestCtxescapeSuppressionRecorded(t *testing.T) {
	pkg := atest.Fixture(t, "ctxescape", "spash/internal/pmem", "spash/internal/shard")
	supp := atest.Suppressions(t, pkg, ctxescape.Analyzer)
	atest.MustContainSuppression(t, supp, "ctxescape", "confined to a single goroutine")
}
