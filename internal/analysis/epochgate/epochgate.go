// Package epochgate checks the split-brain fences of the replication
// apply and promote paths. Three rules:
//
// E1 — epoch gate. An exported function that accepts a replication
// frame (a struct with Epoch, Seq and Shard fields) and reaches a
// mutating call (Insert/Delete/SetAppliedSeq/Store64/...) must compare
// the frame's Epoch field against the durable epoch first. A deposed
// primary keeps shipping frames after a promotion; without the gate
// the replica would install writes from the old regime. Traversal
// stops at callees that contain their own epoch comparison — and, via
// the EpochGated fact, at cross-package callees whose own package's
// run proved them gated.
//
// E2 — durable epoch words. A function whose name speaks of the epoch
// or applied cursor (Epoch, Applied, Cursor, Promote) and that stores
// a root word with pmem.Pool.Store64 must Flush the line and Fence
// before returning. flushfence guards the published-data path; this
// rule extends the same Store64→Flush→Fence discipline to the root
// words replication correctness hangs off (the epoch and the applied
// cursor must never run ahead of their visibility).
//
// E3 — shard bounds. Indexing with a frame's Shard field
// (db.Indexes()[f.Shard]) requires a same-function bounds check on
// that field. Frames arrive from the wire; a hostile or corrupt Shard
// must fence with a typed error, not panic the replica.
package epochgate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spash/internal/analysis/framework"
	"spash/internal/analysis/sym"
)

// EpochGated marks an exported function that compares its frame
// parameter's Epoch against the durable epoch before mutating, so
// cross-package callers may delegate to it without their own gate.
type EpochGated struct{}

func (*EpochGated) AFact() {}

var Analyzer = &framework.Analyzer{
	Name:      "epochgate",
	Doc:       "replication apply/promote paths must fence on the frame epoch, persist epoch words with flush+fence, and bound frame shard indexes",
	Run:       run,
	FactTypes: []framework.Fact{(*EpochGated)(nil)},
}

var scope = []string{"internal/repl", "internal/core", "internal/server", "epochgate"}

// mutatingNames are the callee names E1 treats as pool or index
// mutations when reached from a frame-accepting entry point.
var mutatingNames = map[string]bool{
	"Insert": true, "Update": true, "Delete": true,
	"SetAppliedSeq": true, "BumpEpoch": true, "Promote": true,
	"Store64": true, "CAS64": true, "Write": true, "NTStore": true,
}

func run(pass *framework.Pass) error {
	if !sym.PkgMatches(pass.ImportPath, scope) && !sym.PkgMatches(pass.Pkg.Path(), scope) {
		return nil
	}
	c := &checker{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
					c.decls[fn] = fd
				}
			}
		}
	}
	for fn, fd := range c.decls {
		c.checkE2(fd)
		c.checkE3(fd)
		if param := c.frameParam(fd); param != nil {
			gated := hasEpochCompare(fd.Body)
			if gated && ast.IsExported(fn.Name()) {
				pass.ExportObjectFact(fn, &EpochGated{})
			}
			if !gated && ast.IsExported(fn.Name()) {
				if pos, callee := c.findUngatedMutation(fd, map[*types.Func]bool{}); pos.IsValid() {
					pass.Reportf(pos,
						"%s mutates through %s without fencing on the frame epoch: compare %s.Epoch against the durable epoch first (a deposed primary's frames must be refused, not applied)",
						fn.Name(), callee, param.Name())
				}
			}
		}
	}
	return nil
}

type checker struct {
	pass  *framework.Pass
	decls map[*types.Func]*ast.FuncDecl
}

// frameShaped reports whether t (after pointer stripping) is a
// replication-frame-shaped struct: fields Epoch, Seq and Shard.
func frameShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	need := map[string]bool{"Epoch": true, "Seq": true, "Shard": true}
	for i := 0; i < s.NumFields(); i++ {
		delete(need, s.Field(i).Name())
	}
	return len(need) == 0
}

// frameParam returns fd's first frame-shaped parameter, if any.
func (c *checker) frameParam(fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := c.pass.Info.Defs[name].(*types.Var)
			if ok && frameShaped(v.Type()) {
				return v
			}
		}
	}
	return nil
}

// hasEpochCompare reports whether body contains a comparison involving
// a .Epoch field selector — the gate shape.
func hasEpochCompare(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			if selectorNamed(be.X, "Epoch") || selectorNamed(be.Y, "Epoch") {
				found = true
			}
		}
		return !found
	})
	return found
}

func selectorNamed(e ast.Expr, name string) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// findUngatedMutation walks fd's body (transitively through
// same-package callees that lack their own epoch compare) for the
// first mutating call, returning its position and display name.
func (c *checker) findUngatedMutation(fd *ast.FuncDecl, visiting map[*types.Func]bool) (token.Pos, string) {
	var pos token.Pos
	var callee string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, fn := c.calleeOf(call)
		if name == "" {
			return true
		}
		if mutatingNames[name] {
			// A cross-package callee that proved itself gated is fine.
			if fn != nil && fn.Pkg() != c.pass.Pkg && c.pass.ImportObjectFact(fn, &EpochGated{}) {
				return true
			}
			pos, callee = call.Pos(), name
			return false
		}
		// Recurse into same-package callees; a callee with its own
		// epoch compare is a gate, and a cross-package callee with the
		// EpochGated fact likewise.
		if fn == nil {
			return true
		}
		if fn.Pkg() != c.pass.Pkg {
			return true
		}
		nfd, ok := c.decls[fn]
		if !ok || visiting[fn] {
			return true
		}
		if hasEpochCompare(nfd.Body) {
			return true
		}
		visiting[fn] = true
		if p, cn := c.findUngatedMutation(nfd, visiting); p.IsValid() {
			pos, callee = call.Pos(), fn.Name()+" -> "+cn
			return false
		}
		return true
	})
	return pos, callee
}

func (c *checker) calleeOf(call *ast.CallExpr) (string, *types.Func) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.Info.Uses[f].(*types.Func)
		if fn == nil {
			return "", nil
		}
		return f.Name, fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.Info.Uses[f.Sel].(*types.Func)
		if fn == nil {
			return "", nil
		}
		return f.Sel.Name, fn
	}
	return "", nil
}

// checkE2 enforces Store64→Flush→Fence on epoch/cursor functions: each
// pool.Store64 must be followed (in source order, same function) by a
// pool.Flush and then a pool.Fence.
func (c *checker) checkE2(fd *ast.FuncDecl) {
	name := strings.ToLower(fd.Name.Name)
	if !strings.Contains(name, "epoch") && !strings.Contains(name, "applied") &&
		!strings.Contains(name, "cursor") && !strings.Contains(name, "promote") {
		return
	}
	var stores, flushes, fences []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m, ok := sym.PoolMethod(c.pass.Info, call); ok {
			switch m {
			case "Store64", "NTStore":
				stores = append(stores, call.Pos())
			case "Flush":
				flushes = append(flushes, call.Pos())
			case "Fence":
				fences = append(fences, call.Pos())
			}
		}
		return true
	})
	for _, s := range stores {
		var flushAt token.Pos
		for _, f := range flushes {
			if f > s {
				flushAt = f
				break
			}
		}
		if !flushAt.IsValid() {
			c.pass.Reportf(s,
				"%s stores a durable epoch/cursor word without flushing the line: the word may outrun its data after a crash — follow the store with Flush and Fence", fd.Name.Name)
			continue
		}
		fenced := false
		for _, f := range fences {
			if f > flushAt {
				fenced = true
				break
			}
		}
		if !fenced {
			c.pass.Reportf(s,
				"%s flushes the epoch/cursor word but never fences: the flush may still be in flight at the next dependent store — add Fence after Flush", fd.Name.Name)
		}
	}
}

// checkE3 flags indexing by a frame parameter's Shard field without a
// same-function bounds check on a .Shard selector.
func (c *checker) checkE3(fd *ast.FuncDecl) {
	var sites []*ast.IndexExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(ix.Index).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Shard" {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.Info.Uses[base]
		v, ok := obj.(*types.Var)
		if !ok || !c.isParam(fd, v) {
			return true
		}
		if _, isStruct := deref(v.Type()).Underlying().(*types.Struct); !isStruct {
			return true
		}
		sites = append(sites, ix)
		return true
	})
	if len(sites) == 0 {
		return
	}
	if hasShardBoundsCheck(fd) {
		return
	}
	for _, ix := range sites {
		c.pass.Reportf(ix.Pos(),
			"%s indexes by a frame's Shard field without bounds-checking it: a hostile or corrupt frame panics the replica — validate the shard (typed refusal) before indexing", fd.Name.Name)
	}
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isParam reports whether v is a parameter of fd or of a function
// literal inside it.
func (c *checker) isParam(fd *ast.FuncDecl, v *types.Var) bool {
	found := false
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if c.pass.Info.Defs[name] == v {
					found = true
				}
			}
		}
	}
	collect(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			collect(lit.Type.Params)
		}
		return !found
	})
	return found
}

// hasShardBoundsCheck reports whether fd contains a comparison (or a
// clamp-style call) involving a .Shard selector.
func hasShardBoundsCheck(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.BinaryExpr:
			switch node.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				if selectorNamed(node.X, "Shard") || selectorNamed(node.Y, "Shard") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
