package epochgate_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/epochgate"
)

func TestEpochgateFixture(t *testing.T) {
	pkg := atest.Fixture(t, "epochgate", "spash/internal/pmem")
	atest.Check(t, pkg, epochgate.Analyzer)
}

func TestEpochgateSuppressionRecorded(t *testing.T) {
	pkg := atest.Fixture(t, "epochgate", "spash/internal/pmem")
	supp := atest.Suppressions(t, pkg, epochgate.Analyzer)
	atest.MustContainSuppression(t, supp, "epochgate", "authoritative image")
}
