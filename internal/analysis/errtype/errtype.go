// Package errtype enforces the typed-error contract: the repo's typed
// errors (core.CorruptionError, core.GeometryError, pmem.AccessError)
// and Err* sentinels must flow through the errors package —
//
//   - wrap with fmt.Errorf("...: %w", err), never %v/%s, so callers
//     can still match the cause after wrapping;
//   - match sentinels with errors.Is, never == / != (wrapping breaks
//     identity comparison);
//   - match typed errors with errors.As, never a type assertion or
//     type switch on the error value.
//
// Comparisons inside an Is(error) bool method are exempt: that is
// where identity comparison is the implementation of errors.Is.
package errtype

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"spash/internal/analysis/framework"
	"spash/internal/analysis/sym"
)

var Analyzer = &framework.Analyzer{
	Name: "errtype",
	Doc:  "typed errors and sentinels must be wrapped with %w and matched with errors.Is/errors.As",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			inIsMethod := isFunc && fd.Name.Name == "Is" && fd.Recv != nil
			ast.Inspect(decl, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.BinaryExpr:
					if !inIsMethod {
						checkCompare(pass, node)
					}
				case *ast.TypeAssertExpr:
					checkAssert(pass, node)
				case *ast.TypeSwitchStmt:
					checkTypeSwitch(pass, node)
					// The clauses were handled; still descend for
					// nested expressions in case bodies.
				case *ast.CallExpr:
					checkErrorf(pass, node)
				}
				return true
			})
		}
	}
	return nil
}

// sentinelUse resolves e to a package-level Err* sentinel of the spash
// module, returning its display name.
func sentinelUse(pass *framework.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !sym.SentinelError(obj) {
		return "", false
	}
	name := obj.Name()
	if obj.Pkg() != nil && obj.Pkg() != pass.Pkg {
		name = obj.Pkg().Name() + "." + name
	}
	return name, true
}

func isNilLit(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// checkCompare flags err == ErrX / err != ErrX on module sentinels.
func checkCompare(pass *framework.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		sentinel, other := pair[0], pair[1]
		name, ok := sentinelUse(pass, sentinel)
		if !ok || isNilLit(pass, other) {
			continue
		}
		pass.Reportf(be.OpPos,
			"sentinel compared with %s: use errors.Is(err, %s) so the match survives %%w wrapping",
			be.Op, name)
		return
	}
}

// assertedTypedError reports whether the asserted type is one of the
// protected typed errors.
func assertedTypedError(pass *framework.Pass, typ ast.Expr) (string, bool) {
	t := pass.Info.Types[typ].Type
	if t == nil {
		return "", false
	}
	return sym.TypedError(t)
}

func checkAssert(pass *framework.Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil { // x.(type) inside a type switch; handled there
		return
	}
	if !sym.IsErrorInterface(pass.Info.Types[ta.X].Type) {
		return
	}
	if name, ok := assertedTypedError(pass, ta.Type); ok {
		pass.Reportf(ta.Pos(),
			"type assertion on error value for %s: use errors.As so the match survives %%w wrapping",
			name)
	}
}

func checkTypeSwitch(pass *framework.Pass, ts *ast.TypeSwitchStmt) {
	// Extract the switched expression: `switch v := err.(type)` or
	// `switch err.(type)`.
	var x ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil || !sym.IsErrorInterface(pass.Info.Types[x].Type) {
		return
	}
	for _, stmt := range ts.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, typ := range cc.List {
			if name, ok := assertedTypedError(pass, typ); ok {
				pass.Reportf(typ.Pos(),
					"type switch on error value matches %s: use errors.As so the match survives %%w wrapping",
					name)
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls that pass a typed error or
// sentinel to a verb other than %w.
func checkErrorf(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	fnObj, ok := obj.(*types.Func)
	if !ok || fnObj.Pkg() == nil || fnObj.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		t := pass.Info.Types[arg].Type
		name, typed := sym.TypedError(t)
		if !typed {
			var ok bool
			name, ok = sentinelUse(pass, arg)
			if !ok {
				// A plain error variable is fine under %v unless it is
				// one of the protected kinds; nothing to check.
				continue
			}
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"%s formatted with %%%c: wrap with %%w so callers can still match it with errors.Is/errors.As",
				name, verbs[i])
		}
	}
}

// formatVerbs returns the verb letter consuming each successive
// argument of a Printf-style format string. Width/precision stars and
// argument indexes are rare in this codebase and not modelled.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '%' { // literal %%
				break
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}
