package errtype_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/errtype"
)

func TestErrtypeFixture(t *testing.T) {
	pkg := atest.Fixture(t, "errtype", "errors", "fmt", "spash", "spash/internal/pmem", "spash/internal/core", "spash/internal/resp")
	atest.Check(t, pkg, errtype.Analyzer)
}

func TestErrtypeSuppressionRecorded(t *testing.T) {
	pkg := atest.Fixture(t, "errtype", "errors", "fmt", "spash", "spash/internal/pmem", "spash/internal/core", "spash/internal/resp")
	supp := atest.Suppressions(t, pkg, errtype.Analyzer)
	atest.MustContainSuppression(t, supp, "errtype", "pointer identity")
}
