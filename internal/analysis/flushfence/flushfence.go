// Package flushfence enforces the paper's flush-ordered durability
// observation on ADR-reachable code: a cached PM store that is
// followed, in the same function, by a publish (pool.CAS64 or
// htm.Txn.BumpStore64) must have an intervening Flush, and a Flush
// (or non-temporal store) must be drained by a Fence before the
// publish makes the data reachable.
//
// Two rules:
//
//	R1 (straight-line): scan each function body in source order for
//	STORE / NTSTORE / FLUSH / FENCE / PUBLISH events. A publish while
//	a cached store is unflushed, or while a flush is unfenced, is a
//	violation.
//
//	R2 (policy switch): in a switch dispatching on a policy enum
//	declared in the analyzed package, where at least one case flushes,
//	a case that neither flushes nor is covered by a flush after the
//	switch leaves its path un-flushed. Deliberate cache-absorbed paths
//	(the paper's eADR mode, Table I) carry an //spash:allow flushfence
//	justification. Switches on foreign types (e.g. the htm.Code
//	transaction outcome) are exempt: an aborted path has no
//	durability obligation.
package flushfence

import (
	"go/ast"
	"go/types"

	"spash/internal/analysis/framework"
	"spash/internal/analysis/sym"
)

var Analyzer = &framework.Analyzer{
	Name: "flushfence",
	Doc:  "PM stores must be flushed and fenced before a publish on ADR-reachable paths",
	Run:  run,
}

// ExemptPkgs: the pool and HTM domain implement the ordering protocol
// itself; the baselines reproduce other papers' durability models.
var ExemptPkgs = []string{
	"internal/pmem",
	"internal/htm",
	"internal/baselines/",
	"internal/btree",
}

type eventKind int

const (
	evStore eventKind = iota // pool.Store64 / pool.Write (cached)
	evNTStore                // pool.NTStore (bypasses cache, needs fence)
	evFlush                  // pool.Flush
	evFence                  // pool.Fence
	evPublish                // pool.CAS64, txn.BumpStore64
)

type event struct {
	kind eventKind
	call *ast.CallExpr
	what string
}

func run(pass *framework.Pass) error {
	if sym.PkgMatches(pass.Pkg.Path(), ExemptPkgs) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Body != nil {
					checkFunc(pass, node.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// checkFunc applies R1 and R2 to one function body, then recurses into
// nested literals as independent functions (their bodies run at a
// different time than the enclosing straight-line code).
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	events := collect(pass, body)
	straightLine(pass, events)
	policySwitches(pass, body, events)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, lit.Body)
			return false
		}
		return true
	})
}

// collect gathers the durability events of one function body in source
// order, not descending into nested function literals.
func collect(pass *framework.Pass, body *ast.BlockStmt) []event {
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m, ok := sym.PoolMethod(pass.Info, call); ok {
			switch m {
			case "Store64", "Write":
				events = append(events, event{evStore, call, "pmem.Pool." + m})
			case "NTStore":
				events = append(events, event{evNTStore, call, "pmem.Pool.NTStore"})
			case "Flush":
				events = append(events, event{evFlush, call, "pmem.Pool.Flush"})
			case "Fence":
				events = append(events, event{evFence, call, "pmem.Pool.Fence"})
			case "CAS64":
				events = append(events, event{evPublish, call, "pmem.Pool.CAS64"})
			}
			return true
		}
		if m, ok := sym.TMMethod(pass.Info, call); ok && m == "BumpStore64" {
			events = append(events, event{evPublish, call, "htm.TM.BumpStore64"})
		}
		return true
	})
	return events
}

// straightLine applies R1: in source order, a publish must not see an
// unflushed cached store or an unfenced flush.
func straightLine(pass *framework.Pass, events []event) {
	var unflushed, unfenced *event
	for i := range events {
		e := &events[i]
		switch e.kind {
		case evStore:
			unflushed = e
		case evNTStore:
			unfenced = e
		case evFlush:
			if unflushed != nil {
				unflushed = nil
				unfenced = e
			}
		case evFence:
			unfenced = nil
		case evPublish:
			if unflushed != nil {
				pass.Reportf(e.call.Pos(),
					"%s publishes while the %s at line %d is unflushed; Flush the store (and Fence) before publishing",
					e.what, unflushed.what, pass.Fset.Position(unflushed.call.Pos()).Line)
				unflushed = nil
			} else if unfenced != nil {
				pass.Reportf(e.call.Pos(),
					"%s publishes while the %s at line %d is not drained by a Fence; Fence before publishing",
					e.what, unfenced.what, pass.Fset.Position(unfenced.call.Pos()).Line)
				unfenced = nil
			}
		}
	}
}

// policySwitches applies R2: a switch in which some case flushes but
// another case neither flushes nor falls through to a post-switch
// flush has an inconsistent durability policy on that case.
func policySwitches(pass *framework.Pass, body *ast.BlockStmt, events []event) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		if !policyTag(pass, sw.Tag) {
			return true
		}
		type caseInfo struct {
			clause  *ast.CaseClause
			flushes bool
			returns bool
		}
		var cases []caseInfo
		anyFlush := false
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			ci := caseInfo{clause: cc}
			for _, s := range cc.Body {
				ast.Inspect(s, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					switch mm := m.(type) {
					case *ast.CallExpr:
						if name, ok := sym.PoolMethod(pass.Info, mm); ok && name == "Flush" {
							ci.flushes = true
						}
					case *ast.ReturnStmt:
						ci.returns = true
					}
					return true
				})
			}
			anyFlush = anyFlush || ci.flushes
			cases = append(cases, ci)
		}
		if !anyFlush {
			return true
		}
		// Is there a flush after the switch in the same function body?
		postFlush := false
		for _, e := range events {
			if e.kind == evFlush && e.call.Pos() > sw.End() {
				postFlush = true
				break
			}
		}
		for _, ci := range cases {
			if ci.flushes {
				continue
			}
			if ci.returns || !postFlush {
				label := "default"
				if len(ci.clause.List) > 0 {
					label = exprString(ci.clause.List[0])
				}
				pass.Reportf(ci.clause.Pos(),
					"case %s of this flush-policy switch leaves its PM writes unflushed while sibling cases flush; flush here or justify with //spash:allow flushfence",
					label)
			}
		}
		return true
	})
}

// policyTag reports whether the switch tag's type is a named type
// declared in the analyzed package — a policy enum whose branches
// choose a durability strategy. Tagless switches and switches on
// foreign types (transaction outcomes, error kinds) are not policy
// dispatches.
func policyTag(pass *framework.Pass, tag ast.Expr) bool {
	if tag == nil {
		return false
	}
	t := pass.Info.Types[tag].Type
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() == pass.Pkg
}

func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprString(t.X) + "." + t.Sel.Name
	case *ast.BasicLit:
		return t.Value
	default:
		return "?"
	}
}
