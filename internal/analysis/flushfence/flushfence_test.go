package flushfence_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/flushfence"
)

func TestFlushfenceFixture(t *testing.T) {
	pkg := atest.Fixture(t, "flushfence", "spash/internal/pmem", "spash/internal/htm")
	atest.Check(t, pkg, flushfence.Analyzer)
}

func TestFlushfenceSuppressionRecorded(t *testing.T) {
	pkg := atest.Fixture(t, "flushfence", "spash/internal/pmem", "spash/internal/htm")
	supp := atest.Suppressions(t, pkg, flushfence.Analyzer)
	atest.MustContainSuppression(t, supp, "flushfence", "cache-absorbed mode")
}
