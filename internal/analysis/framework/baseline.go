// Baseline: the list of findings a tree is allowed to carry. The file
// holds one "path:analyzer:message" key per line (paths repo-relative,
// forward slashes), sorted and deduplicated — both enforced at parse
// time so the committed file never drifts into a state a regenerate
// would rewrite. '#' comments and blank lines are ignored. A baseline
// may only shrink: entries that no longer match a finding are reported
// as stale, mirroring the stale //spash:allow rule.
package framework

import (
	"fmt"
	"sort"
	"strings"
)

// BaselineKey is the stable identity of one diagnostic in a baseline
// file. Line numbers are deliberately excluded: unrelated edits above
// a finding must not invalidate its baseline entry.
func BaselineKey(root string, d Diagnostic) string {
	return sarifRelURI(root, d.Pos.Filename) + ":" + d.Analyzer + ":" + d.Message
}

// ParseBaseline reads a baseline file's entries. Malformed lines,
// out-of-order lines, and duplicates are errors.
func ParseBaseline(data []byte) (map[string]bool, error) {
	entries := map[string]bool{}
	prev := ""
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, ":") < 2 {
			return nil, fmt.Errorf("baseline line %d: want path:analyzer:message, got %q", i+1, line)
		}
		if entries[line] {
			return nil, fmt.Errorf("baseline line %d: duplicate entry %q", i+1, line)
		}
		if prev != "" && line < prev {
			return nil, fmt.Errorf("baseline line %d: entries not sorted (%q after %q)", i+1, line, prev)
		}
		prev = line
		entries[line] = true
	}
	return entries, nil
}

// FormatBaseline renders diags as a baseline file body: header comment,
// then sorted, deduplicated keys.
func FormatBaseline(root string, diags []Diagnostic) []byte {
	keys := map[string]bool{}
	for _, d := range diags {
		keys[BaselineKey(root, d)] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var b strings.Builder
	b.WriteString("# spash-vet baseline: findings exempted from failing the run.\n")
	b.WriteString("# One path:analyzer:message per line, sorted and deduplicated\n")
	b.WriteString("# (regenerate with spash-vet -write-baseline). May only shrink:\n")
	b.WriteString("# entries matching no current finding are reported as stale.\n")
	for _, k := range sorted {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ApplyBaseline splits diags into findings not covered by the baseline
// (kept) and baseline entries that matched nothing (stale). Covered
// findings are dropped.
func ApplyBaseline(entries map[string]bool, root string, diags []Diagnostic) (kept []Diagnostic, stale []string) {
	matched := map[string]bool{}
	for _, d := range diags {
		k := BaselineKey(root, d)
		if entries[k] {
			matched[k] = true
			continue
		}
		kept = append(kept, d)
	}
	for k := range entries {
		if !matched[k] {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return kept, stale
}
