package framework

import (
	"go/token"
	"strings"
	"testing"
)

func baselineDiag(file, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: 3, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		baselineDiag("/repo/internal/server/wire.go", "wireerr", "code never decoded"),
		baselineDiag("/repo/internal/core/index.go", "epochgate", "stores without flushing"),
	}
	body := FormatBaseline("/repo", diags)
	entries, err := ParseBaseline(body)
	if err != nil {
		t.Fatalf("formatted baseline does not reparse: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if !entries["internal/core/index.go:epochgate:stores without flushing"] {
		t.Errorf("missing expected key; got %v", entries)
	}

	kept, stale := ApplyBaseline(entries, "/repo", diags)
	if len(kept) != 0 || len(stale) != 0 {
		t.Errorf("full coverage: kept=%v stale=%v, want none of either", kept, stale)
	}
}

func TestBaselineKeyIgnoresLine(t *testing.T) {
	a := baselineDiag("/repo/a.go", "wireerr", "m")
	b := a
	b.Pos.Line = 999
	if BaselineKey("/repo", a) != BaselineKey("/repo", b) {
		t.Error("baseline keys must not depend on line numbers")
	}
}

func TestBaselineRejectsUnsorted(t *testing.T) {
	_, err := ParseBaseline([]byte("b.go:x:m\na.go:x:m\n"))
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("want not-sorted error, got %v", err)
	}
}

func TestBaselineRejectsDuplicate(t *testing.T) {
	_, err := ParseBaseline([]byte("a.go:x:m\na.go:x:m\n"))
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestBaselineRejectsMalformed(t *testing.T) {
	_, err := ParseBaseline([]byte("no separators here\n"))
	if err == nil || !strings.Contains(err.Error(), "path:analyzer:message") {
		t.Fatalf("want malformed error, got %v", err)
	}
}

func TestBaselineCommentsAndBlanksIgnored(t *testing.T) {
	entries, err := ParseBaseline([]byte("# header\n\n# more\na.go:x:m\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries["a.go:x:m"] {
		t.Errorf("got %v", entries)
	}
}

func TestBaselineStaleEntriesSurface(t *testing.T) {
	entries := map[string]bool{
		"gone.go:wireerr:fixed long ago": true,
		"internal/a.go:epochgate:live":   true,
	}
	diags := []Diagnostic{
		baselineDiag("/repo/internal/a.go", "epochgate", "live"),
		baselineDiag("/repo/internal/b.go", "respalias", "new finding"),
	}
	kept, stale := ApplyBaseline(entries, "/repo", diags)
	if len(kept) != 1 || kept[0].Analyzer != "respalias" {
		t.Errorf("kept = %v, want only the uncovered respalias finding", kept)
	}
	if len(stale) != 1 || stale[0] != "gone.go:wireerr:fixed long ago" {
		t.Errorf("stale = %v", stale)
	}
}
