// Facts: the cross-package half of the framework. An analyzer running
// over one package can export a fact about one of its package-level
// objects (or about the package itself); an analyzer running over a
// downstream package imports that fact through the object it sees —
// even though the downstream pass resolved the dependency from export
// data and therefore holds a *different* types.Object for it. Keys are
// therefore stable strings (import path + a receiver-qualified name),
// never object identity.
//
// Facts live in a FactStore that is filled in dependency order: Run
// processes packages topologically, so by the time a consumer package
// runs, every fact of its dependencies is present — Go's acyclic
// import graph makes one topological pass the cross-package fixpoint.
// The store serialises to a gob stream, which is how the vettool mode
// of cmd/spash-vet exchanges facts between `go vet` units: each unit
// writes its package's facts to the .vetx output and the go command
// hands dependents the dep's .vetx files back (the build cache then
// gives per-package caching of facts across runs for free).
package framework

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a typed datum an analyzer attaches to a package-level
// object or a package. Concrete fact types must be gob-encodable and
// listed in their analyzer's FactTypes so the vettool mode can decode
// them.
type Fact interface {
	AFact() // marker
}

// factKey names one fact: the owning package, the object's stable key
// ("" for package facts), and the concrete fact type's name.
type factKey struct {
	pkg string
	obj string
	typ string
}

// FactStore holds every fact exported so far in a run. Safe for
// concurrent use (package loading is parallel; analysis is ordered,
// but keeping the store locked costs nothing).
type FactStore struct {
	mu sync.Mutex
	m  map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: map[factKey]Fact{}} }

// factTypeName names f's concrete type, pointer-stripped: facts are
// handled as pointers, named by their element type.
func factTypeName(f Fact) string {
	rt := reflect.TypeOf(f)
	if rt.Kind() == reflect.Pointer {
		rt = rt.Elem()
	}
	return rt.String()
}

// ObjectKey derives the stable cross-package key for a package-level
// object: "Name" for functions/vars/consts, "(Recv).Name" for methods,
// "type Name" for type names. Objects without a package (universe,
// locals) have no key.
func ObjectKey(obj types.Object) (pkgPath, key string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	pkgPath = obj.Pkg().Path()
	switch o := obj.(type) {
	case *types.Func:
		sig, _ := o.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, isPtr := rt.(*types.Pointer); isPtr {
				rt = p.Elem()
			}
			named, isNamed := rt.(*types.Named)
			if !isNamed {
				return "", "", false
			}
			return pkgPath, "(" + named.Obj().Name() + ")." + o.Name(), true
		}
		return pkgPath, o.Name(), true
	case *types.TypeName:
		return pkgPath, "type " + o.Name(), true
	default:
		// Only package-scope objects have stable keys.
		if obj.Parent() != obj.Pkg().Scope() {
			return "", "", false
		}
		return pkgPath, obj.Name(), true
	}
}

func (s *FactStore) put(k factKey, f Fact) {
	s.mu.Lock()
	s.m[k] = f
	s.mu.Unlock()
}

func (s *FactStore) get(k factKey) (Fact, bool) {
	s.mu.Lock()
	f, ok := s.m[k]
	s.mu.Unlock()
	return f, ok
}

// exportObject records f for obj. Objects without a stable key are
// silently ignored (facts on locals are meaningless across packages).
func (s *FactStore) exportObject(obj types.Object, f Fact) {
	pkg, key, ok := ObjectKey(obj)
	if !ok {
		return
	}
	s.put(factKey{pkg: pkg, obj: key, typ: factTypeName(f)}, f)
}

// importObject copies the stored fact of f's concrete type for obj
// into f, reporting whether one was found.
func (s *FactStore) importObject(obj types.Object, f Fact) bool {
	pkg, key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return s.fill(factKey{pkg: pkg, obj: key, typ: factTypeName(f)}, f)
}

func (s *FactStore) exportPackage(pkgPath string, f Fact) {
	s.put(factKey{pkg: pkgPath, typ: factTypeName(f)}, f)
}

func (s *FactStore) importPackage(pkgPath string, f Fact) bool {
	return s.fill(factKey{pkg: pkgPath, typ: factTypeName(f)}, f)
}

// fill copies the stored fact at k into dst via reflection (dst must
// be a pointer to the same concrete type, which the typ component of
// the key guarantees).
func (s *FactStore) fill(k factKey, dst Fact) bool {
	src, ok := s.get(k)
	if !ok {
		return false
	}
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// wireFact is the serialised form of one fact.
type wireFact struct {
	Pkg  string
	Obj  string
	Type string
	Data []byte
}

// EncodePackageFacts serialises every fact owned by pkgPath (the form
// a vettool unit writes to its .vetx output).
func (s *FactStore) EncodePackageFacts(pkgPath string) ([]byte, error) {
	s.mu.Lock()
	var keys []factKey
	for k := range s.m {
		if k.pkg == pkgPath {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.obj != b.obj {
			return a.obj < b.obj
		}
		return a.typ < b.typ
	})
	var wire []wireFact
	for _, k := range keys {
		f, _ := s.get(k)
		var data bytes.Buffer
		if err := gob.NewEncoder(&data).EncodeValue(reflect.ValueOf(f).Elem()); err != nil {
			return nil, fmt.Errorf("encoding fact %s.%s (%s): %v", k.pkg, k.obj, k.typ, err)
		}
		wire = append(wire, wireFact{Pkg: k.pkg, Obj: k.obj, Type: k.typ, Data: data.Bytes()})
	}
	if len(wire) == 0 {
		return nil, nil
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(wire); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// DecodeFacts merges a serialised fact stream into the store. types
// maps concrete fact type names to their reflect types (built by
// FactTypes from the analyzer list); facts of unknown types are
// skipped — an older tool's vetx simply contributes nothing.
func (s *FactStore) DecodeFacts(data []byte, types map[string]reflect.Type) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("decoding facts: %v", err)
	}
	for _, w := range wire {
		rt, ok := types[w.Type]
		if !ok {
			continue
		}
		fv := reflect.New(rt)
		if err := gob.NewDecoder(bytes.NewReader(w.Data)).DecodeValue(fv.Elem()); err != nil {
			return fmt.Errorf("decoding fact %s.%s (%s): %v", w.Pkg, w.Obj, w.Type, err)
		}
		f, ok := fv.Interface().(Fact)
		if !ok {
			continue
		}
		s.put(factKey{pkg: w.Pkg, obj: w.Obj, typ: w.Type}, f)
	}
	return nil
}

// FactTypes builds the fact-type registry of an analyzer list (for
// DecodeFacts). Each analyzer declares its concrete fact types in
// Analyzer.FactTypes.
func FactTypes(analyzers []*Analyzer) map[string]reflect.Type {
	out := map[string]reflect.Type{}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			rt := reflect.TypeOf(f)
			if rt.Kind() == reflect.Pointer {
				rt = rt.Elem()
			}
			out[rt.String()] = rt
		}
	}
	return out
}
