// Package framework is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface the spash-vet suite
// needs: an Analyzer/Pass pair over type-checked packages, plus the
// repo's two source directives:
//
//	//spash:guarded <justification>
//	    on a function declaration's doc comment: the function's raw
//	    persistent-memory mutations are reviewed and justified (e.g.
//	    the target is unpublished memory, or the caller holds the
//	    fallback lock). The justification is mandatory; annotations on
//	    functions that mutate nothing are reported as stale.
//
//	//spash:allow <analyzer> -- <justification>
//	    on (or immediately above) a flagged line: suppresses that
//	    analyzer's diagnostic there. Suppressions are collected and
//	    printed by `spash-vet -summary` so they stay auditable.
//
// The package mirrors go/analysis closely enough that the analyzers
// can be ported to the real framework by swapping imports once the
// module is allowed to vendor golang.org/x/tools.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Suppression records a diagnostic that an //spash:allow directive
// silenced, together with the directive's justification.
type Suppression struct {
	Pos       token.Position
	Analyzer  string
	Reason    string
	Message   string
	Directive token.Position
}

// allowDirective is one parsed //spash:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// A Pass carries one analyzer's run over one package. Report applies
// the package's //spash:allow directives, so Diagnostics holds only
// unsuppressed findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	Diagnostics []Diagnostic
	Suppressed  []Suppression

	// allow maps filename -> line -> directives covering that line.
	allow map[string]map[int][]*allowDirective
}

// NewPass prepares a pass of a over pkg, indexing the package's
// //spash:allow directives.
func NewPass(a *Analyzer, pkg *Package) *Pass {
	p := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		allow:    map[string]map[int][]*allowDirective{},
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d.pos = pos
				byLine := p.allow[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*allowDirective{}
					p.allow[pos.Filename] = byLine
				}
				// A directive covers its own line and the next one, so
				// it works both trailing a statement and standing on
				// the line above it.
				byLine[pos.Line] = append(byLine[pos.Line], &d)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], &d)
			}
		}
	}
	return p
}

// parseAllow parses one "//spash:allow <analyzer> -- <reason>" comment.
func parseAllow(text string) (allowDirective, bool) {
	rest, ok := strings.CutPrefix(text, "//spash:allow")
	if !ok {
		return allowDirective{}, false
	}
	rest = strings.TrimSpace(rest)
	name, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(reason), "--"))
	return allowDirective{analyzer: name, reason: strings.TrimSpace(reason)}, true
}

// GuardReason returns the justification of a //spash:guarded directive
// in the declaration's doc comment, and whether one is present.
func GuardReason(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//spash:guarded"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "--")), true
		}
	}
	return "", false
}

// Reportf records a diagnostic at pos unless an //spash:allow
// directive for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	msg := fmt.Sprintf(format, args...)
	for _, d := range p.allow[position.Filename][position.Line] {
		if d.analyzer == p.Analyzer.Name {
			d.used = true
			p.Suppressed = append(p.Suppressed, Suppression{
				Pos:       position,
				Analyzer:  p.Analyzer.Name,
				Reason:    d.reason,
				Message:   msg,
				Directive: d.pos,
			})
			return
		}
	}
	p.Diagnostics = append(p.Diagnostics, Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: msg})
}

// Run executes every analyzer over every package, returning the merged
// unsuppressed diagnostics (sorted by position) and the suppressions.
// Malformed or unknown directives are reported under the pseudo-
// analyzer "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Suppression, error) {
	var diags []Diagnostic
	var supp []Suppression
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for _, pkg := range pkgs {
		diags = append(diags, checkDirectives(pkg, names)...)
		for _, a := range analyzers {
			pass := NewPass(a, pkg)
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, pass.Diagnostics...)
			supp = append(supp, pass.Suppressed...)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return lessPosition(diags[i].Pos, diags[j].Pos) })
	sort.Slice(supp, func(i, j int) bool { return lessPosition(supp[i].Pos, supp[j].Pos) })
	return diags, supp, nil
}

func lessPosition(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// checkDirectives validates every spash: directive in the package: the
// verb must be known, //spash:allow must name a known analyzer, and
// both directives must carry a justification.
func checkDirectives(pkg *Package, analyzers map[string]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "directive",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case strings.HasPrefix(c.Text, "//spash:allow"):
					d, _ := parseAllow(c.Text)
					if !analyzers[d.analyzer] {
						report(c.Pos(), "//spash:allow names unknown analyzer %q", d.analyzer)
					}
					if d.reason == "" {
						report(c.Pos(), "//spash:allow %s needs a justification (\"//spash:allow %s -- why\")", d.analyzer, d.analyzer)
					}
				case strings.HasPrefix(c.Text, "//spash:guarded"):
					if reason, _ := GuardReason(&ast.CommentGroup{List: []*ast.Comment{c}}); reason == "" {
						report(c.Pos(), "//spash:guarded needs a justification (\"//spash:guarded -- why\")")
					}
				case strings.HasPrefix(c.Text, "//spash:"):
					report(c.Pos(), "unknown directive %q", strings.SplitN(c.Text, " ", 2)[0])
				}
			}
		}
	}
	return diags
}

// Annotation is one //spash:guarded annotation found in a package
// (collected for the driver's -summary listing).
type Annotation struct {
	Pos    token.Position
	Func   string
	Reason string
}

// Annotations lists every //spash:guarded annotation in pkg.
func Annotations(pkg *Package) []Annotation {
	var out []Annotation
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if reason, ok := GuardReason(fd.Doc); ok {
				out = append(out, Annotation{
					Pos:    pkg.Fset.Position(fd.Pos()),
					Func:   FuncDisplayName(fd),
					Reason: reason,
				})
			}
		}
	}
	return out
}

// FuncDisplayName renders a function declaration's name including any
// receiver type ("(*Pool).Store64" or "Recover").
func FuncDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	writeTypeExpr(&b, fd.Recv.List[0].Type)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch t := e.(type) {
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr:
		writeTypeExpr(b, t.X)
	case *ast.IndexListExpr:
		writeTypeExpr(b, t.X)
	default:
		b.WriteString("?")
	}
}
