// Package framework is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface the spash-vet suite
// needs: an Analyzer/Pass pair over type-checked packages, exported
// facts that propagate across package boundaries in dependency order,
// plus the repo's source directives:
//
//	//spash:guarded <justification>
//	    on a function declaration's doc comment: the function's raw
//	    persistent-memory mutations are reviewed and justified (e.g.
//	    the target is unpublished memory, or the caller holds the
//	    fallback lock). The justification is mandatory; annotations on
//	    functions that mutate nothing are reported as stale.
//
//	//spash:allow <analyzer> -- <justification>
//	    on (or immediately above) a flagged line: suppresses that
//	    analyzer's diagnostic there. Suppressions are collected and
//	    printed by `spash-vet -summary` so they stay auditable. A
//	    directive that suppresses nothing is itself reported as stale —
//	    justifications must not outlive the finding they justify.
//
//	//spash:aliased -- <justification>
//	    sugar for "//spash:allow respalias": marks a deliberate
//	    retention of a buffer that aliases a resp.Reader's arena (the
//	    zero-copy contract: valid until Release).
//
// The package mirrors go/analysis closely enough that the analyzers
// can be ported to the real framework by swapping imports once the
// module is allowed to vendor golang.org/x/tools.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Analyzers that export or
// import facts list their concrete fact types in FactTypes (as nil
// pointers, e.g. (*ReturnsAlias)(nil)) so the vettool mode can decode
// them from dependency .vetx files.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	FactTypes []Fact
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Suppression records a diagnostic that an //spash:allow directive
// silenced, together with the directive's justification.
type Suppression struct {
	Pos       token.Position
	Analyzer  string
	Reason    string
	Message   string
	Directive token.Position
}

// allowDirective is one parsed //spash:allow (or //spash:aliased)
// comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// directiveSet is a package's parsed allow directives, shared by every
// pass over the package so a directive's used flag survives across
// analyzers (stale-allow detection needs the union).
type directiveSet struct {
	// allow maps filename -> line -> directives covering that line.
	allow map[string]map[int][]*allowDirective
	all   []*allowDirective
}

// directivesOf returns pkg's directive set, building it on first use.
func directivesOf(pkg *Package) *directiveSet {
	if pkg.dirs != nil {
		return pkg.dirs
	}
	ds := &directiveSet{allow: map[string]map[int][]*allowDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				dp := &d
				dp.pos = pos
				byLine := ds.allow[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*allowDirective{}
					ds.allow[pos.Filename] = byLine
				}
				// A directive covers its own line and the next one, so
				// it works both trailing a statement and standing on
				// the line above it.
				byLine[pos.Line] = append(byLine[pos.Line], dp)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], dp)
				ds.all = append(ds.all, dp)
			}
		}
	}
	pkg.dirs = ds
	return ds
}

// A Pass carries one analyzer's run over one package. Report applies
// the package's //spash:allow directives, so Diagnostics holds only
// unsuppressed findings. The fact methods exchange facts with passes
// over other packages (Run orders packages so dependencies' facts are
// already present).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ImportPath is the package's import path as the loader saw it
	// (Pkg.Path() matches for real packages; fixtures may differ).
	ImportPath string

	Diagnostics []Diagnostic
	Suppressed  []Suppression

	dirs  *directiveSet
	facts *FactStore
}

// NewPass prepares a pass of a over pkg with an empty fact store
// (callers that need cross-package facts use Run, which shares one
// store across the ordered packages).
func NewPass(a *Analyzer, pkg *Package) *Pass {
	return newPass(a, pkg, NewFactStore())
}

func newPass(a *Analyzer, pkg *Package, facts *FactStore) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		ImportPath: pkg.ImportPath,
		dirs:       directivesOf(pkg),
		facts:      facts,
	}
}

// ExportObjectFact records fact for obj (a package-level object of
// this pass's package) so downstream packages can import it.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.exportObject(obj, fact)
}

// ImportObjectFact copies the stored fact of fact's concrete type for
// obj into fact, reporting whether one was found. obj may belong to
// any package (typically an import resolved from export data).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.importObject(obj, fact)
}

// ExportPackageFact records fact for this pass's package.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Pkg.Path(), fact)
}

// ImportPackageFact copies the stored package fact of fact's concrete
// type for pkg into fact, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	return p.facts.importPackage(pkg.Path(), fact)
}

// parseDirective parses one allow-shaped directive comment:
// //spash:allow, or its respalias sugar //spash:aliased.
func parseDirective(text string) (allowDirective, bool) {
	if rest, ok := strings.CutPrefix(text, "//spash:aliased"); ok {
		reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "--"))
		return allowDirective{analyzer: "respalias", reason: reason}, true
	}
	return parseAllow(text)
}

// parseAllow parses one "//spash:allow <analyzer> -- <reason>" comment.
func parseAllow(text string) (allowDirective, bool) {
	rest, ok := strings.CutPrefix(text, "//spash:allow")
	if !ok {
		return allowDirective{}, false
	}
	rest = strings.TrimSpace(rest)
	name, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(reason), "--"))
	return allowDirective{analyzer: name, reason: strings.TrimSpace(reason)}, true
}

// GuardReason returns the justification of a //spash:guarded directive
// in the declaration's doc comment, and whether one is present.
func GuardReason(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//spash:guarded"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "--")), true
		}
	}
	return "", false
}

// Reportf records a diagnostic at pos unless an //spash:allow
// directive for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	msg := fmt.Sprintf(format, args...)
	for _, d := range p.dirs.allow[position.Filename][position.Line] {
		if d.analyzer == p.Analyzer.Name {
			d.used = true
			p.Suppressed = append(p.Suppressed, Suppression{
				Pos:       position,
				Analyzer:  p.Analyzer.Name,
				Reason:    d.reason,
				Message:   msg,
				Directive: d.pos,
			})
			return
		}
	}
	p.Diagnostics = append(p.Diagnostics, Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: msg})
}

// Run executes every analyzer over every package in dependency order
// (so exported facts are visible to importing packages), returning the
// merged unsuppressed diagnostics (sorted by position) and the
// suppressions. Packages marked FactsOnly contribute facts but no
// diagnostics. Malformed, unknown, and stale directives are reported
// under the pseudo-analyzer "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Suppression, error) {
	return RunWithFacts(pkgs, analyzers, NewFactStore())
}

// RunWithFacts is Run with a caller-supplied fact store (the vettool
// mode pre-fills it with dependency facts decoded from .vetx files).
func RunWithFacts(pkgs []*Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, []Suppression, error) {
	var diags []Diagnostic
	var supp []Suppression
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for _, pkg := range topoOrder(pkgs) {
		pd, ps, err := runPackage(pkg, analyzers, facts, names)
		if err != nil {
			return nil, nil, err
		}
		if pkg.FactsOnly {
			continue // dependency loaded for facts only; findings are the owner's business
		}
		diags = append(diags, pd...)
		supp = append(supp, ps...)
	}
	sort.Slice(diags, func(i, j int) bool { return lessPosition(diags[i].Pos, diags[j].Pos) })
	sort.Slice(supp, func(i, j int) bool { return lessPosition(supp[i].Pos, supp[j].Pos) })
	return diags, supp, nil
}

func runPackage(pkg *Package, analyzers []*Analyzer, facts *FactStore, names map[string]bool) ([]Diagnostic, []Suppression, error) {
	diags := checkDirectives(pkg, names)
	var supp []Suppression
	ds := directivesOf(pkg)
	for _, d := range ds.all {
		d.used = false // a fresh run re-earns every suppression
	}
	for _, a := range analyzers {
		pass := newPass(a, pkg, facts)
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		diags = append(diags, pass.Diagnostics...)
		supp = append(supp, pass.Suppressed...)
	}
	// Stale-allow detection: a directive for an analyzer that ran but
	// suppressed nothing no longer attaches to a real finding.
	for _, d := range ds.all {
		if !d.used && names[d.analyzer] {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message: fmt.Sprintf("stale //spash:allow %s: the %s analyzer reports nothing here — remove the directive",
					d.analyzer, d.analyzer),
			})
		}
	}
	return diags, supp, nil
}

// topoOrder sorts the packages so that every package follows the
// packages it imports (only edges inside the given set matter; facts
// from outside arrive via the pre-filled store). Go's import graph is
// acyclic, so one pass is the cross-package fixpoint; ties keep the
// deterministic by-path order.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	out := make([]*Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.ImportPath] {
		case 1, 2:
			return // a cycle cannot occur in a valid import graph; be safe anyway
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	for _, p := range sorted {
		visit(p)
	}
	return out
}

func lessPosition(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// checkDirectives validates every spash: directive in the package: the
// verb must be known, //spash:allow must name a known analyzer, and
// every directive must carry a justification.
func checkDirectives(pkg *Package, analyzers map[string]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "directive",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case strings.HasPrefix(c.Text, "//spash:allow"):
					d, _ := parseAllow(c.Text)
					if !analyzers[d.analyzer] {
						report(c.Pos(), "//spash:allow names unknown analyzer %q", d.analyzer)
					}
					if d.reason == "" {
						report(c.Pos(), "//spash:allow %s needs a justification (\"//spash:allow %s -- why\")", d.analyzer, d.analyzer)
					}
				case strings.HasPrefix(c.Text, "//spash:aliased"):
					if d, _ := parseDirective(c.Text); d.reason == "" {
						report(c.Pos(), "//spash:aliased needs a justification (\"//spash:aliased -- why\")")
					}
				case strings.HasPrefix(c.Text, "//spash:guarded"):
					if reason, _ := GuardReason(&ast.CommentGroup{List: []*ast.Comment{c}}); reason == "" {
						report(c.Pos(), "//spash:guarded needs a justification (\"//spash:guarded -- why\")")
					}
				case strings.HasPrefix(c.Text, "//spash:"):
					report(c.Pos(), "unknown directive %q", strings.SplitN(c.Text, " ", 2)[0])
				}
			}
		}
	}
	return diags
}

// Annotation is one //spash:guarded annotation found in a package
// (collected for the driver's -summary listing).
type Annotation struct {
	Pos    token.Position
	Func   string
	Reason string
}

// Annotations lists every //spash:guarded annotation in pkg.
func Annotations(pkg *Package) []Annotation {
	var out []Annotation
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if reason, ok := GuardReason(fd.Doc); ok {
				out = append(out, Annotation{
					Pos:    pkg.Fset.Position(fd.Pos()),
					Func:   FuncDisplayName(fd),
					Reason: reason,
				})
			}
		}
	}
	return out
}

// FuncDisplayName renders a function declaration's name including any
// receiver type ("(*Pool).Store64" or "Recover").
func FuncDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	writeTypeExpr(&b, fd.Recv.List[0].Type)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch t := e.(type) {
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr:
		writeTypeExpr(b, t.X)
	case *ast.IndexListExpr:
		writeTypeExpr(b, t.X)
	default:
		b.WriteString("?")
	}
}
