package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis: the parsed
// files of the package itself plus full type information, with every
// dependency (including the standard library) resolved from the build
// cache's export data rather than re-checked from source.
type Package struct {
	ImportPath string
	Dir        string
	Imports    []string
	Fset       *token.FileSet
	Files      []*ast.File
	Filenames  []string
	Types      *types.Package
	Info       *types.Info
	// FactsOnly marks a dependency loaded from source solely so the
	// fact-producing analyzers can run over it; its diagnostics are
	// not reported (they belong to a run that targets it).
	FactsOnly bool

	dirs *directiveSet
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// Loader loads module packages for analysis. It shells out to the go
// tool for package metadata and export data (the same information a
// `go vet` unit receives), then parses and type-checks the target
// packages — and, for cross-package facts, the module-local
// dependencies — from source, in parallel. A Loader is not safe for
// concurrent use (the packages it returns are).
type Loader struct {
	// Dir is the directory go list runs in (the module root). Empty
	// means the current directory.
	Dir string
	// Overlay replaces the content of the named files (absolute paths)
	// at parse time. Used by tests to analyse a mutated copy of a real
	// source file without touching the tree.
	Overlay map[string][]byte

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// Fset returns the loader's file set (shared by all loaded packages).
func (l *Loader) Fset() *token.FileSet {
	if l.fset == nil {
		l.fset = token.NewFileSet()
	}
	return l.fset
}

func (l *Loader) goList(args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,Standard,DepOnly"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// lockedImporter serialises Import calls: the gc export-data importer
// keeps an internal package cache that is not safe for the loader's
// parallel type-checking.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (li *lockedImporter) Import(path string) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.imp.Import(path)
}

// ensureImporter records export data for every package in entries and
// (once) builds the shared gc-export-data importer.
func (l *Loader) ensureImporter(entries []listEntry) {
	if l.exports == nil {
		l.exports = make(map[string]string)
	}
	for _, e := range entries {
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}
	if l.imp == nil {
		lookup := func(path string) (io.ReadCloser, error) {
			f, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}
		l.imp = &lockedImporter{imp: importer.ForCompiler(l.Fset(), "gc", lookup)}
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func (l *Loader) parseFile(filename string) (*ast.File, error) {
	var src any
	if content, ok := l.Overlay[filename]; ok {
		src = content
	}
	return parser.ParseFile(l.Fset(), filename, src, parser.ParseComments)
}

// Load loads the packages matching the go list patterns, type-checking
// each target from source with dependencies resolved from export data.
// Module-local dependencies outside the patterns are loaded from
// source too, marked FactsOnly, so cross-package facts are complete no
// matter how narrow the pattern; standard-library dependencies stay on
// export data. Packages are parsed and type-checked in parallel.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	entries, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	l.ensureImporter(entries)
	l.Fset() // materialise before the parallel phase
	var targets []listEntry
	for _, e := range entries {
		if e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		targets = append(targets, e)
	}
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pkgs[i], errs[i] = l.check(targets[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func (l *Loader) check(e listEntry) (*Package, error) {
	var files []*ast.File
	var names []string
	for _, f := range e.GoFiles {
		fn := filepath.Join(e.Dir, f)
		af, err := l.parseFile(fn)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.ImportPath, err)
		}
		files = append(files, af)
		names = append(names, fn)
	}
	info := newInfo()
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(e.ImportPath, l.Fset(), files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
	}
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Imports:    e.Imports,
		Fset:       l.Fset(),
		Files:      files,
		Filenames:  names,
		Types:      tpkg,
		Info:       info,
		FactsOnly:  e.DepOnly,
	}, nil
}

// CheckFiles type-checks already-parsed files as one package using the
// given importer. Used by the vettool mode of cmd/spash-vet, where the
// go vet driver supplies the file list and export-data map.
func CheckFiles(fset *token.FileSet, importPath string, filenames []string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	dir := ""
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Imports:    astImports(files),
		Fset:       fset,
		Files:      files,
		Filenames:  filenames,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// astImports collects the distinct import paths of the files.
func astImports(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// FixtureDir names one loose directory of Go files to check under an
// import path (an analysistest fixture package).
type FixtureDir struct {
	Dir        string
	ImportPath string
}

// LoadDir type-checks a loose directory of Go files (an analysistest
// fixture) under the given import path. deps lists go packages the
// fixture may import (transitive closures are resolved automatically);
// the spash module packages and any std package reachable from them
// are available.
func (l *Loader) LoadDir(dir, importPath string, deps ...string) (*Package, error) {
	pkgs, err := l.LoadDirs([]FixtureDir{{Dir: dir, ImportPath: importPath}}, deps...)
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// LoadDirs type-checks several fixture directories as one multi-package
// fixture: later fixtures may import earlier ones by their fixture
// import path (so a facts-producing "reader" package can be consumed
// by a "user" package, exercising cross-package propagation). Fixtures
// must be listed dependency-first.
func (l *Loader) LoadDirs(fixtures []FixtureDir, deps ...string) ([]*Package, error) {
	if len(deps) > 0 {
		entries, err := l.goList(deps...)
		if err != nil {
			return nil, err
		}
		l.ensureImporter(entries)
	} else {
		l.ensureImporter(nil)
	}
	checked := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if fp, ok := checked[path]; ok {
			return fp, nil
		}
		return l.imp.Import(path)
	})
	var out []*Package
	for _, fx := range fixtures {
		matches, err := filepath.Glob(filepath.Join(fx.Dir, "*.go"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("no Go files in %s", fx.Dir)
		}
		sort.Strings(matches)
		var files []*ast.File
		for _, fn := range matches {
			af, err := l.parseFile(fn)
			if err != nil {
				return nil, err
			}
			files = append(files, af)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(fx.ImportPath, l.Fset(), files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking fixture %s: %v", fx.Dir, err)
		}
		checked[fx.ImportPath] = tpkg
		out = append(out, &Package{
			ImportPath: fx.ImportPath,
			Dir:        fx.Dir,
			Imports:    astImports(files),
			Fset:       l.Fset(),
			Files:      files,
			Filenames:  matches,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
