// SARIF output: the suite's findings in the interchange format GitHub
// code scanning ingests (SARIF 2.1.0). One run, one driver ("spash-vet"),
// one reportingDescriptor per analyzer, one result per diagnostic.
// Artifact URIs are repo-relative with uriBaseId %SRCROOT% so the same
// log resolves on any checkout.
package framework

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
	DefaultConfig    sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifRelURI turns a diagnostic's filename into a repo-relative,
// forward-slash URI. Paths outside root (or when relativizing fails)
// fall back to the cleaned original so the result is still a valid URI.
func sarifRelURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filepath.Clean(filename))
}

// SARIF renders diags as a SARIF 2.1.0 log. Every analyzer in the
// suite appears as a rule (so code scanning knows the full invariant
// set even when the tree is clean); root anchors the repo-relative
// artifact URIs; version is the driver's version string.
func SARIF(root, version string, analyzers []*Analyzer, diags []Diagnostic) ([]byte, error) {
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		short := a.Doc
		if i := strings.IndexByte(short, '\n'); i >= 0 {
			short = short[:i]
		}
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: strings.TrimSpace(short)},
			FullDescription:  sarifMessage{Text: strings.TrimSpace(a.Doc)},
			DefaultConfig:    sarifConfig{Level: "error"},
		})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			return nil, fmt.Errorf("diagnostic from analyzer %q not in the rule set", d.Analyzer)
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{
					URI:       sarifRelURI(root, d.Pos.Filename),
					URIBaseID: "%SRCROOT%",
				},
				Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	// Deterministic output regardless of analyzer scheduling.
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.Locations[0].PhysicalLocation.ArtifactLocation.URI != b.Locations[0].PhysicalLocation.ArtifactLocation.URI {
			return a.Locations[0].PhysicalLocation.ArtifactLocation.URI < b.Locations[0].PhysicalLocation.ArtifactLocation.URI
		}
		if a.Locations[0].PhysicalLocation.Region.StartLine != b.Locations[0].PhysicalLocation.Region.StartLine {
			return a.Locations[0].PhysicalLocation.Region.StartLine < b.Locations[0].PhysicalLocation.Region.StartLine
		}
		return a.RuleID < b.RuleID
	})

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "spash-vet", Version: version, Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
