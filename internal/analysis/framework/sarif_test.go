package framework

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sarifFixtureDiags() ([]*Analyzer, []Diagnostic) {
	analyzers := []*Analyzer{
		{Name: "epochgate", Doc: "epoch fencing\n\nLong form."},
		{Name: "wireerr", Doc: "wire error maps"},
	}
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "/repo/internal/repl/repl.go", Line: 42, Column: 7},
			Analyzer: "wireerr",
			Message:  `wire code "LAG" is never decoded`,
		},
		{
			Pos:      token.Position{Filename: "/repo/internal/core/index.go", Line: 9, Column: 2},
			Analyzer: "epochgate",
			Message:  "stores without flushing",
		},
	}
	return analyzers, diags
}

// TestSARIFStructure decodes the emitted log generically and checks
// the exact shape GitHub code scanning requires of a 2.1.0 log.
func TestSARIFStructure(t *testing.T) {
	analyzers, diags := sarifFixtureDiags()
	out, err := SARIF("/repo", "spash-vet version 2", analyzers, diags)
	if err != nil {
		t.Fatal(err)
	}

	var log map[string]any
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got := log["version"]; got != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", got)
	}
	if got, _ := log["$schema"].(string); !strings.Contains(got, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a 2.1.0 schema URI", got)
	}
	runs, _ := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	run := runs[0].(map[string]any)

	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "spash-vet" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) != len(analyzers) {
		t.Fatalf("got %d rules, want %d (every analyzer is a rule)", len(rules), len(analyzers))
	}
	rule0 := rules[0].(map[string]any)
	if rule0["id"] != "epochgate" {
		t.Errorf("rule 0 id = %v", rule0["id"])
	}
	if short := rule0["shortDescription"].(map[string]any)["text"]; short != "epoch fencing" {
		t.Errorf("shortDescription = %v, want the doc's first line", short)
	}

	results, _ := run["results"].([]any)
	if len(results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(results), len(diags))
	}
	// Results are sorted by URI: core/index.go before repl/repl.go.
	first := results[0].(map[string]any)
	if first["ruleId"] != "epochgate" {
		t.Errorf("first result ruleId = %v, want epochgate (sorted by path)", first["ruleId"])
	}
	if lvl := first["level"]; lvl != "error" {
		t.Errorf("level = %v, want error", lvl)
	}
	if idx, ok := first["ruleIndex"].(float64); !ok || int(idx) != 0 {
		t.Errorf("ruleIndex = %v, want 0", first["ruleIndex"])
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	art := loc["artifactLocation"].(map[string]any)
	if art["uri"] != "internal/core/index.go" {
		t.Errorf("artifact uri = %v, want repo-relative internal/core/index.go", art["uri"])
	}
	if art["uriBaseId"] != "%SRCROOT%" {
		t.Errorf("uriBaseId = %v, want %%SRCROOT%%", art["uriBaseId"])
	}
	region := loc["region"].(map[string]any)
	if line, _ := region["startLine"].(float64); int(line) != 9 {
		t.Errorf("startLine = %v, want 9", region["startLine"])
	}
}

func TestSARIFCleanTreeStillListsRules(t *testing.T) {
	analyzers, _ := sarifFixtureDiags()
	out, err := SARIF("/repo", "v2", analyzers, nil)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != 2 {
		t.Errorf("clean tree must still publish the rule set, got %d rules", len(log.Runs[0].Tool.Driver.Rules))
	}
	if log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean tree wants an empty (non-null) results array, got %#v", log.Runs[0].Results)
	}
}

func TestSARIFRejectsUnknownAnalyzer(t *testing.T) {
	_, diags := sarifFixtureDiags()
	if _, err := SARIF("/repo", "v2", nil, diags); err == nil {
		t.Fatal("want an error for a diagnostic with no matching rule")
	}
}

func TestSARIFRelURIOutsideRoot(t *testing.T) {
	if got := sarifRelURI("/repo", "/elsewhere/x.go"); got != "/elsewhere/x.go" {
		t.Errorf("outside-root path mangled: %q", got)
	}
}
