// Package golifetime checks that every goroutine spawned in the
// serving layers (internal/server, internal/repl, internal/obs) has a
// reachable shutdown edge — some structural evidence that the
// goroutine terminates or is joined when its owner shuts down:
//
//   - a sync.WaitGroup.Done call (typically deferred) — the owner
//     joins the goroutine in Close;
//   - a channel receive or a select with a receive case — the
//     goroutine blocks on (or polls) a signal that close/send can
//     deliver;
//   - a completion send on a channel made with a nonzero buffer in the
//     spawning function — the goroutine runs one bounded errand and
//     exits even if the waiter abandoned it;
//   - a deferred close of a captured channel — a join handle the owner
//     can wait on.
//
// A goroutine with none of these — a loop that polls a boolean under a
// mutex and sleeps, say — cannot be woken or joined: Close returns
// while it still runs, and a test that owns the process sees it leak.
// The check looks for the edge in the spawned function's own body and
// its directly-called same-package functions — no deeper: a channel op
// buried three calls down a work path (a per-frame deadline select,
// say) does work, it does not wait for shutdown, and crediting it
// would hide exactly the polling-loop leaks this check exists to
// catch. A cross-package callee must carry a HasShutdownEdge fact
// exported by the analyzer run over its package, so the check composes
// across internal/server -> internal/repl boundaries without reading
// the callee's source twice.
package golifetime

import (
	"go/ast"
	"go/types"

	"spash/internal/analysis/framework"
	"spash/internal/analysis/sym"
)

// HasShutdownEdge marks a function whose body (transitively, within
// its package) contains a shutdown edge, so cross-package spawns of it
// are accepted.
type HasShutdownEdge struct{}

func (*HasShutdownEdge) AFact() {}

var Analyzer = &framework.Analyzer{
	Name:      "golifetime",
	Doc:       "goroutines in the serving layers must have a reachable shutdown edge (join, signal channel, or bounded errand)",
	Run:       run,
	FactTypes: []framework.Fact{(*HasShutdownEdge)(nil)},
}

// scope lists the package-path suffixes the check applies to: the
// layers that own long-lived goroutines and promise clean Close, plus
// the fixture package.
var scope = []string{"internal/server", "internal/repl", "internal/obs", "golifetime"}

func run(pass *framework.Pass) error {
	if !sym.PkgMatches(pass.ImportPath, scope) && !sym.PkgMatches(pass.Pkg.Path(), scope) {
		return nil
	}
	c := &checker{pass: pass, edge: map[*types.Func]int{}, decls: map[*types.Func]*ast.FuncDecl{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
					c.decls[fn] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.buffered = bufferedChans(pass.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					c.checkGo(g)
				}
				return true
			})
		}
	}
	// Export facts for every package function with a shutdown edge, so
	// importing packages can spawn it directly.
	for fn := range c.decls {
		if c.fnHasEdge(fn, nil) {
			pass.ExportObjectFact(fn, &HasShutdownEdge{})
		}
	}
	return nil
}

type checker struct {
	pass  *framework.Pass
	decls map[*types.Func]*ast.FuncDecl
	// edge memoizes fnHasEdge: 0 unknown, 1 computing/no, 2 yes.
	edge map[*types.Func]int
	// buffered holds the channels of the function currently being
	// walked that were made with a nonzero buffer.
	buffered map[types.Object]bool
}

// bufferedChans finds channels created in fd with make(chan T, n),
// n nonzero: a send on one is a bounded errand, not a blocking leak.
func bufferedChans(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				continue
			}
			if tv, ok := info.Types[call.Args[0]]; !ok || tv.Type == nil {
				continue
			} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				continue
			}
			// A zero-valued constant buffer is unbuffered; anything else
			// (a nonzero literal or a computed size) counts as buffered.
			if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				continue
			}
			if lid, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := info.Defs[lid]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[lid]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func (c *checker) checkGo(g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if !c.bodyHasEdge(fun.Body, map[*types.Func]bool{}, 0) {
			c.pass.Reportf(g.Go,
				"goroutine has no reachable shutdown edge (WaitGroup.Done, channel receive/select, bounded completion send, or deferred close): it outlives Close — add one or justify with //spash:allow golifetime")
		}
	default:
		fn := c.calleeFunc(g.Call)
		if fn == nil {
			c.pass.Reportf(g.Go,
				"goroutine spawns an unresolvable function: its shutdown behaviour cannot be checked — spawn a named function or justify with //spash:allow golifetime")
			return
		}
		if fn.Pkg() == c.pass.Pkg {
			if !c.fnHasEdge(fn, map[*types.Func]bool{}) {
				c.pass.Reportf(g.Go,
					"goroutine runs %s, which has no reachable shutdown edge (WaitGroup.Done, channel receive/select, bounded completion send, or deferred close): it outlives Close — add one or justify with //spash:allow golifetime", fn.Name())
			}
			return
		}
		if !c.pass.ImportObjectFact(fn, &HasShutdownEdge{}) {
			c.pass.Reportf(g.Go,
				"goroutine runs %s.%s, which exports no shutdown-edge fact: wrap the spawn so this package owns the lifetime (join handle or signal channel) or justify with //spash:allow golifetime",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// fnHasEdge reports whether fn's own body (or a directly-called
// same-package function's) contains a shutdown edge.
func (c *checker) fnHasEdge(fn *types.Func, visiting map[*types.Func]bool) bool {
	switch c.edge[fn] {
	case 1:
		return false
	case 2:
		return true
	}
	if visiting == nil {
		visiting = map[*types.Func]bool{}
	}
	if visiting[fn] {
		return false
	}
	visiting[fn] = true
	fd, ok := c.decls[fn]
	if !ok {
		return false
	}
	has := c.bodyHasEdge(fd.Body, visiting, 0)
	if has {
		c.edge[fn] = 2
	} else {
		c.edge[fn] = 1
	}
	return has
}

// bodyHasEdge scans one function body for a shutdown edge. depth 0 is
// the spawned body itself; same-package callees are scanned at depth 1
// and the search stops there — an edge deeper down a work path does
// not pace the goroutine's shutdown.
func (c *checker) bodyHasEdge(body *ast.BlockStmt, visiting map[*types.Func]bool, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			// <-ch: the goroutine blocks on (or drains) a signal.
			if node.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			for _, cl := range node.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					found = true
				}
			}
		case *ast.SendStmt:
			// A completion send is bounded only if the channel cannot
			// block forever: made buffered in the spawning function.
			if id, ok := ast.Unparen(node.Chan).(*ast.Ident); ok {
				if obj := c.pass.Info.Uses[id]; obj != nil && c.buffered[obj] {
					found = true
				}
			}
		case *ast.DeferStmt:
			if c.isClose(node.Call) || c.isWaitGroupDone(node.Call) {
				found = true
			}
		case *ast.CallExpr:
			if c.isWaitGroupDone(node) {
				found = true
				return false
			}
			if depth < 1 {
				if fn := c.calleeFunc(node); fn != nil && fn.Pkg() == c.pass.Pkg {
					if fd, ok := c.decls[fn]; ok && !visiting[fn] {
						visiting[fn] = true
						if c.bodyHasEdge(fd.Body, visiting, depth+1) {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

func (c *checker) isClose(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

func (c *checker) isWaitGroupDone(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	selection, ok := c.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	rt := selection.Recv()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
