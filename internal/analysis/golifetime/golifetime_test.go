package golifetime_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/golifetime"
)

func TestGolifetimeFixture(t *testing.T) {
	pkg := atest.Fixture(t, "golifetime", "fmt", "sync")
	atest.Check(t, pkg, golifetime.Analyzer)
}

func TestGolifetimeSuppressionRecorded(t *testing.T) {
	pkg := atest.Fixture(t, "golifetime", "fmt", "sync")
	supp := atest.Suppressions(t, pkg, golifetime.Analyzer)
	atest.MustContainSuppression(t, supp, "golifetime", "process-lifetime by design")
}
