// Package panicfree enforces PR 3's recovery contract: recovery,
// scrub, fsck, and dump paths report damage as typed errors and never
// panic. The only allowed panic is the re-raise idiom
//
//	if r := recover(); r != nil {
//	        ... inspect for pmem.AccessError ...
//	        panic(r) // not ours, re-raise
//	}
//
// i.e. panic(x) where x was assigned from the recover() builtin in the
// same package.
package panicfree

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"regexp"

	"spash/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "panicfree",
	Doc:  "no panic in recovery/scrub/fsck paths except re-raising a recover()ed value",
	Run:  run,
}

// ScopeFiles are file basenames that hold recovery-path code wholesale.
var ScopeFiles = map[string]bool{
	"recover.go":   true,
	"scrub.go":     true,
	"check.go":     true,
	"dump.go":      true,
	"integrity.go": true,
}

// scopeFunc matches top-level functions that are recovery paths even
// when they live in other files.
var scopeFunc = regexp.MustCompile(`(?i)^(recover|attach|fsck|verify|scrub|salvage|quarantine|repair|checkinvariants)`)

func run(pass *framework.Pass) error {
	// Objects assigned from the recover() builtin anywhere in the
	// package; panic(x) on one of these is the re-raise idiom.
	recovered := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "recover" {
				return true
			}
			if lhs, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := pass.Info.Defs[lhs]; obj != nil {
					recovered[obj] = true
				} else if obj := pass.Info.Uses[lhs]; obj != nil {
					recovered[obj] = true
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		inScopeFile := ScopeFiles[filepath.Base(pass.Fset.Position(file.Pos()).Filename)]
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !inScopeFile && !scopeFunc.MatchString(fd.Name.Name) {
				continue
			}
			checkBody(pass, fd, recovered)
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, fd *ast.FuncDecl, recovered map[types.Object]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			// A local function shadowing the builtin is not a panic.
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return true
			}
		}
		if len(call.Args) == 1 {
			if arg, ok := call.Args[0].(*ast.Ident); ok {
				if obj := pass.Info.Uses[arg]; obj != nil && recovered[obj] {
					return true // re-raise idiom
				}
			}
		}
		pass.Reportf(call.Pos(),
			"panic in recovery path %s: recovery, scrub, and fsck code must return typed errors (the only allowed panic is re-raising a recover()ed value)",
			framework.FuncDisplayName(fd))
		return true
	})
}
