package panicfree_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/panicfree"
)

func TestPanicfreeFixture(t *testing.T) {
	pkg := atest.Fixture(t, "panicfree", "errors")
	atest.Check(t, pkg, panicfree.Analyzer)
}

func TestPanicfreeSuppressionRecorded(t *testing.T) {
	pkg := atest.Fixture(t, "panicfree", "errors")
	supp := atest.Suppressions(t, pkg, panicfree.Analyzer)
	atest.MustContainSuppression(t, supp, "panicfree", "justified suppression")
}
