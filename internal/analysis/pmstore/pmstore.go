// Package pmstore enforces the two-phase HTM protocol's write
// discipline: a mutating pmem.Pool call (Store64, CAS64, Write,
// NTStore) outside internal/pmem and internal/htm must be reachable
// only from an htm transaction body, a recovery/format path, or a
// function annotated //spash:guarded with a justification.
//
// The annotation is checked, not trusted blindly: it must carry a
// justification (enforced by the directive checker) and an annotated
// function that performs no PM mutation — directly, through a nested
// literal, or through a callee that does — is reported as stale so
// annotations cannot outlive the code they excuse.
package pmstore

import (
	"go/ast"
	"go/types"
	"regexp"

	"spash/internal/analysis/framework"
	"spash/internal/analysis/sym"
)

var Analyzer = &framework.Analyzer{
	Name: "pmstore",
	Doc:  "mutating pmem.Pool calls must be inside an htm.Txn body, a recovery path, or a //spash:guarded function",
	Run:  run,
}

// ExemptPkgs are package-path suffixes where raw PM mutation is the
// point: the pool and HTM domain themselves, and the baseline indexes,
// which deliberately reproduce other papers' (unguarded) protocols.
var ExemptPkgs = []string{
	"internal/pmem",
	"internal/htm",
	"internal/baselines/", // whole tree
	"internal/btree",
}

// recoveryName matches functions that run before the index goes live:
// single-threaded open/format/recovery/fsck paths where the HTM domain
// is not yet (or deliberately not) in force.
var recoveryName = regexp.MustCompile(`^(Recover|recover|Attach|Open|open|Format|format|Create|Fsck|fsck|Quarantine|quarantine|Rebuild|rebuild|Repair|repair|Salvage|salvage)`)

// fn is one function body (declaration or literal) in the package.
type fn struct {
	decl     *ast.FuncDecl // nil for literals
	parent   *fn           // enclosing function, for literals
	name     string        // display name
	guarded  bool          // annotated, recovery-named, or a txn body
	exported bool          // callable from outside the package
	stores   []*ast.CallExpr
	// storish is true when the function calls something that may
	// mutate PM but cannot be resolved statically (an interface method
	// named like a store). Used only by the stale-annotation check.
	storish bool
	callees map[*fn]bool
	callers map[*fn]bool
	ok      bool
}

type state struct {
	pass    *framework.Pass
	byObj   map[types.Object]*fn
	fns     []*fn
	txnBody map[*ast.FuncLit]bool
	// deferred callee edges: callee object may be declared later in the
	// package than its caller, so edges resolve after enumeration.
	edges []edge
}

type edge struct {
	from *fn
	obj  types.Object
}

func run(pass *framework.Pass) error {
	if sym.PkgMatches(pass.Pkg.Path(), ExemptPkgs) {
		return nil
	}
	st := &state{
		pass:    pass,
		byObj:   map[types.Object]*fn{},
		txnBody: map[*ast.FuncLit]bool{},
	}

	// Mark transaction-body literals (literals passed directly to
	// htm.TM.Run or htm.TM.Irrevocable) before walking bodies.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, ok := sym.TMMethod(pass.Info, call); ok && (m == "Run" || m == "Irrevocable") {
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						st.txnBody[lit] = true
					}
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				f := &fn{
					decl: d, name: framework.FuncDisplayName(d),
					exported: d.Name.IsExported(),
					callees:  map[*fn]bool{}, callers: map[*fn]bool{},
				}
				_, annotated := framework.GuardReason(d.Doc)
				f.guarded = annotated || recoveryName.MatchString(d.Name.Name)
				if obj := pass.Info.Defs[d.Name]; obj != nil {
					st.byObj[obj] = f
				}
				st.fns = append(st.fns, f)
				if d.Body != nil {
					st.walkBody(d.Body, f)
				}
			case *ast.GenDecl:
				// Function literals in package-level var initializers
				// have no runtime caller context; treat each as its own
				// unguarded root.
				st.walkBody(d, nil)
			}
		}
	}

	st.resolveEdges()
	st.fixpoint()
	st.report()
	return nil
}

// walkBody walks the statements of cur's body, recording mutating pool
// calls and callee edges, and descending into nested literals with
// correct parentage.
func (st *state) walkBody(body ast.Node, cur *fn) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			name := "func literal"
			if cur != nil {
				name = "func literal in " + cur.name
			}
			lit := &fn{
				parent: cur, name: name,
				callees: map[*fn]bool{}, callers: map[*fn]bool{},
			}
			if st.txnBody[node] {
				lit.guarded = true
			} else if cur != nil {
				// A plain nested literal runs on behalf of its
				// enclosing function (defer, callback, loop body):
				// model it as called by the parent.
				lit.callers[cur] = true
				cur.callees[lit] = true
			}
			st.fns = append(st.fns, lit)
			st.walkBody(node.Body, lit)
			return false
		case *ast.CallExpr:
			if cur != nil {
				st.recordCall(node, cur)
			}
		}
		return true
	})
}

// recordCall notes a mutating pool call or an intra-package callee
// edge on cur.
func (st *state) recordCall(call *ast.CallExpr, cur *fn) {
	if m, ok := sym.PoolMethod(st.pass.Info, call); ok {
		if sym.MutatingPoolMethods[m] {
			cur.stores = append(cur.stores, call)
		}
		return
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	obj := st.pass.Info.Uses[id]
	if obj == nil {
		return
	}
	fnObj, ok := obj.(*types.Func)
	if !ok {
		return
	}
	if fnObj.Pkg() == st.pass.Pkg {
		st.edges = append(st.edges, edge{from: cur, obj: obj})
	}
	// An unresolvable store-shaped call (an interface method such as
	// the record arena's mem.store) may mutate PM; remember that for
	// the staleness check.
	switch fnObj.Name() {
	case "store", "store64", "Store64", "CAS64", "Write", "NTStore":
		cur.storish = true
	}
}

func (st *state) resolveEdges() {
	for _, e := range st.edges {
		if callee, ok := st.byObj[e.obj]; ok {
			e.from.callees[callee] = true
			callee.callers[e.from] = true
		}
	}
}

// fixpoint: a function is OK when it is guarded, or when it has at
// least one intra-package caller and every caller is OK. Exported
// declarations cannot be promoted through callers — external callers
// are invisible, so they must carry their own guard.
func (st *state) fixpoint() {
	for _, f := range st.fns {
		f.ok = f.guarded
	}
	for changed := true; changed; {
		changed = false
		for _, f := range st.fns {
			if f.ok || (f.exported && f.decl != nil) {
				continue
			}
			if len(f.callers) == 0 {
				continue
			}
			all := true
			for c := range f.callers {
				if !c.ok {
					all = false
					break
				}
			}
			if all {
				f.ok = true
				changed = true
			}
		}
	}
}

func (st *state) report() {
	for _, f := range st.fns {
		if !f.ok {
			for _, call := range f.stores {
				m, _ := sym.PoolMethod(st.pass.Info, call)
				st.pass.Reportf(call.Pos(),
					"raw pmem.Pool.%s in %s is reachable outside an htm.Txn body; run it under htm.TM.Run, move it to a recovery path, or annotate the function //spash:guarded with a justification",
					m, f.name)
			}
		}
		if f.decl == nil {
			continue
		}
		if _, annotated := framework.GuardReason(f.decl.Doc); !annotated {
			continue
		}
		if !reachesStore(f, map[*fn]bool{}) {
			st.pass.Reportf(f.decl.Pos(),
				"stale //spash:guarded on %s: the function performs no pmem.Pool mutation directly or through its callees; remove the annotation",
				f.name)
		}
	}
}

// reachesStore reports whether f reaches a pmem mutation (or a
// store-shaped interface call) through itself or its intra-package
// callees.
func reachesStore(f *fn, seen map[*fn]bool) bool {
	if seen[f] {
		return false
	}
	seen[f] = true
	if len(f.stores) > 0 || f.storish {
		return true
	}
	for c := range f.callees {
		if reachesStore(c, seen) {
			return true
		}
	}
	return false
}
