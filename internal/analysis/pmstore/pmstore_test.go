package pmstore_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/pmstore"
)

func TestPmstoreFixture(t *testing.T) {
	pkg := atest.Fixture(t, "pmstore", "spash/internal/pmem", "spash/internal/htm")
	atest.Check(t, pkg, pmstore.Analyzer)
}

func TestPmstoreSuppressionRecorded(t *testing.T) {
	pkg := atest.Fixture(t, "pmstore", "spash/internal/pmem", "spash/internal/htm")
	supp := atest.Suppressions(t, pkg, pmstore.Analyzer)
	atest.MustContainSuppression(t, supp, "pmstore", "deliberate raw write")
}
