// Package respalias enforces the zero-copy RESP aliasing contract:
// a []byte (or Reply) handed out by a resp.Reader aliases the reader's
// internal buffer and is valid only until Release. Such a value must
// not escape the request scope — into a struct field, a channel send,
// or a goroutine capture — without an explicit copy
// (append([]byte(nil), b...) or a string conversion) or a
// //spash:aliased justification.
//
// The analyzer is cross-package, which is the point: the arena lives
// in internal/resp, the escapes happen in internal/server. Packages
// that derive aliasing values export facts —
//
//   - AliasArena on a named type with a Release method and a []byte
//     buffer field (resp.Reader);
//   - ReturnsAlias on every function whose results (transitively)
//     alias an arena's buffer (Reader.ReadCommand, Client.Next, ...);
//   - AliasCarrier on struct types whose byte-carrying fields alias
//     the buffer (resp.Reply);
//
// and consumer packages taint values obtained through those facts. The
// taint is flow-insensitive and monotone: assignments, slicing,
// indexing, composite literals, range, and intra-package calls
// propagate it; append onto an untainted base and conversions to
// string (both copy) break it. A tainted value stored into a field
// reachable from a receiver, parameter, or package-level variable —
// or sent on a channel, or captured by a go statement — is an escape.
// Stores into the arena's own fields are the arena managing its
// buffers and stay exempt.
package respalias

import (
	"go/ast"
	"go/types"

	"spash/internal/analysis/framework"
)

// ReturnsAlias marks a function at least one of whose results aliases
// a resp arena buffer.
type ReturnsAlias struct{}

func (*ReturnsAlias) AFact() {}

// AliasCarrier marks a named struct type whose byte-carrying fields
// alias an arena buffer (reading such a field yields an alias).
type AliasCarrier struct{}

func (*AliasCarrier) AFact() {}

// AliasArena marks a named type that owns a reusable read buffer with
// a Release lifecycle; its byte-slice fields are the aliased arena.
type AliasArena struct{}

func (*AliasArena) AFact() {}

var Analyzer = &framework.Analyzer{
	Name:      "respalias",
	Doc:       "values aliasing a resp.Reader buffer must not escape their Release window without a copy",
	Run:       run,
	FactTypes: []framework.Fact{(*ReturnsAlias)(nil), (*AliasCarrier)(nil), (*AliasArena)(nil)},
}

const maxRounds = 32

type state struct {
	pass *framework.Pass

	arenas   map[*types.TypeName]bool // declared in this package
	carriers map[*types.TypeName]bool
	aliased  map[*types.Func]bool
	tainted  map[types.Object]bool

	changed bool
	report  bool
}

func run(pass *framework.Pass) error {
	st := &state{
		pass:     pass,
		arenas:   map[*types.TypeName]bool{},
		carriers: map[*types.TypeName]bool{},
		aliased:  map[*types.Func]bool{},
		tainted:  map[types.Object]bool{},
	}
	st.findArenas()
	for round := 0; round < maxRounds; round++ {
		st.changed = false
		st.walk()
		if !st.changed {
			break
		}
	}
	st.report = true
	st.walk()
	st.exportFacts()
	return nil
}

// findArenas marks this package's arena types: a named struct with a
// Release method and at least one []byte (or [][]byte) field.
func (st *state) findArenas() {
	scope := st.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		strct, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		hasRelease := false
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == "Release" {
				hasRelease = true
			}
		}
		if !hasRelease {
			continue
		}
		for i := 0; i < strct.NumFields(); i++ {
			if isByteSliceish(strct.Field(i).Type()) {
				st.arenas[tn] = true
				break
			}
		}
	}
}

func (st *state) exportFacts() {
	for tn := range st.arenas {
		st.pass.ExportObjectFact(tn, &AliasArena{})
	}
	for tn := range st.carriers {
		st.pass.ExportObjectFact(tn, &AliasCarrier{})
	}
	for fn := range st.aliased {
		st.pass.ExportObjectFact(fn, &ReturnsAlias{})
	}
}

func isByteSliceish(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
		return true
	}
	return isByteSliceish(s.Elem())
}

// taintable reports whether a value of type t can reference arena
// memory: slices, pointers to taintables, and structs with taintable
// fields. Basics, strings (immutable copies), arrays (value copies),
// maps, channels, funcs and interfaces are not tracked.
func taintable(t types.Type) bool {
	return taintableDepth(t, 0)
}

func taintableDepth(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Pointer:
		return taintableDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if taintableDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// namedOf strips pointers and returns t's type name, if named.
func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

func (st *state) isArena(tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	if st.arenas[tn] {
		return true
	}
	return st.pass.ImportObjectFact(tn, &AliasArena{})
}

func (st *state) isCarrier(tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	if st.carriers[tn] {
		return true
	}
	return st.pass.ImportObjectFact(tn, &AliasCarrier{})
}

func (st *state) fnAliases(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if st.aliased[fn] {
		return true
	}
	return st.pass.ImportObjectFact(fn, &ReturnsAlias{})
}

func (st *state) taint(obj types.Object) {
	if obj == nil || st.tainted[obj] || !taintable(obj.Type()) {
		return
	}
	st.tainted[obj] = true
	st.changed = true
}

func (st *state) markAliased(fn *types.Func) {
	if fn == nil || st.aliased[fn] {
		return
	}
	st.aliased[fn] = true
	st.changed = true
}

func (st *state) markCarrier(tn *types.TypeName) {
	if tn == nil || st.carriers[tn] {
		return
	}
	// Only this package's types become carriers here; imported ones
	// carry their own fact.
	if tn.Pkg() != st.pass.Pkg {
		return
	}
	st.carriers[tn] = true
	st.changed = true
}

// exprTainted reports whether evaluating e can yield a value aliasing
// an arena buffer.
func (st *state) exprTainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return st.tainted[st.pass.Info.Uses[x]] || st.tainted[st.pass.Info.Defs[x]]
	case *ast.ParenExpr:
		return st.exprTainted(x.X)
	case *ast.SelectorExpr:
		// Arena field access (rd.buf) and carrier field access
		// (rep.Str) are primary taint sources.
		if sel, ok := st.pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			base := namedOf(sel.Recv())
			fieldT := sel.Obj().Type()
			if isByteSliceish(fieldT) && (st.isArena(base) || st.isCarrier(base)) {
				return true
			}
			if st.exprTainted(x.X) && taintable(fieldT) {
				return true
			}
			return false
		}
		return false
	case *ast.IndexExpr:
		return st.exprTainted(x.X)
	case *ast.SliceExpr:
		return st.exprTainted(x.X)
	case *ast.StarExpr:
		return st.exprTainted(x.X)
	case *ast.UnaryExpr:
		return st.exprTainted(x.X)
	case *ast.TypeAssertExpr:
		return st.exprTainted(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if st.exprTainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return st.callTainted(x)
	}
	return false
}

// callTainted handles calls, conversions and the copy-breaking idioms.
func (st *state) callTainted(call *ast.CallExpr) bool {
	// T(x) conversions: string(x) and []byte(s) copy; identity-shaped
	// conversions (Reply(x)) keep the operand's taint.
	if tv, ok := st.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type.Underlying()
		if b, ok := target.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return false
		}
		if isByteSliceish(tv.Type) {
			if at, ok := st.pass.Info.Types[call.Args[0]]; ok {
				if ab, ok := at.Type.Underlying().(*types.Basic); ok && ab.Info()&types.IsString != 0 {
					return false // []byte(string) copies
				}
			}
		}
		return st.exprTainted(call.Args[0])
	}
	if id := calleeIdent(call); id != nil {
		if obj := st.pass.Info.Uses[id]; obj != nil {
			if b, ok := obj.(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					return st.appendTainted(call)
				case "make", "new", "len", "cap", "copy", "delete", "min", "max":
					return false
				}
			}
		}
	}
	if fn := st.callee(call); fn != nil {
		return st.fnAliases(fn)
	}
	return false
}

// appendTainted decides what an append result aliases. The base's
// aliases are kept. Appended ELEMENTS are copied — but a copy of a
// slice header (appending a []byte into a [][]byte, or a Reply into a
// []Reply) still points at the arena, while spreading bytes with
// append(dst, b...) copies the bytes themselves and breaks the alias.
// So: an appended element taints the result only if the element type
// is itself taintable.
func (st *state) appendTainted(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	if st.exprTainted(call.Args[0]) {
		return true
	}
	for i, arg := range call.Args[1:] {
		if !st.exprTainted(arg) {
			continue
		}
		elemT := st.pass.Info.Types[arg].Type
		if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
			// append(dst, src...): the elements of src are copied in.
			if s, ok := elemT.Underlying().(*types.Slice); ok {
				elemT = s.Elem()
			}
		}
		if taintable(elemT) {
			return true
		}
	}
	return false
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	}
	return nil
}

func (st *state) callee(call *ast.CallExpr) *types.Func {
	id := calleeIdent(call)
	if id == nil {
		return nil
	}
	fn, _ := st.pass.Info.Uses[id].(*types.Func)
	return fn
}

// walk makes one monotone pass over every function body: propagate
// taint through assignments, ranges, returns and intra-package call
// sites; when report is set, also flag the escapes.
func (st *state) walk() {
	for _, file := range st.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := st.pass.Info.Defs[fd.Name].(*types.Func)
			st.walkBody(fd, fn)
		}
	}
}

func (st *state) walkBody(fd *ast.FuncDecl, fn *types.Func) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			st.handleAssign(node, fd)
		case *ast.RangeStmt:
			if st.exprTainted(node.X) {
				st.taintLHS(node.Key)
				st.taintLHS(node.Value)
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if st.exprTainted(res) {
					st.markAliased(fn)
					// A returned composite of a local struct type makes
					// that type an alias carrier for consumers.
					if lit, ok := ast.Unparen(res).(*ast.CompositeLit); ok {
						if tv, ok := st.pass.Info.Types[lit]; ok {
							st.markCarrier(namedOf(tv.Type))
						}
					} else if tv, ok := st.pass.Info.Types[res]; ok {
						if _, isStruct := tv.Type.Underlying().(*types.Struct); isStruct {
							st.markCarrier(namedOf(tv.Type))
						}
					}
				}
			}
		case *ast.CallExpr:
			st.taintCalleeParams(node)
		case *ast.SendStmt:
			if st.report && st.exprTainted(node.Value) {
				st.pass.Reportf(node.Arrow,
					"aliased resp buffer sent on a channel: the value is valid only until Release — copy it (append([]byte(nil), b...)) or justify with //spash:aliased")
			}
		case *ast.GoStmt:
			if st.report {
				st.checkGo(node)
			}
		}
		return true
	})
}

func (st *state) taintLHS(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := st.pass.Info.Defs[id]; obj != nil {
		st.taint(obj)
		return
	}
	st.taint(st.pass.Info.Uses[id])
}

// handleAssign propagates taint across an assignment and reports
// escaping stores.
func (st *state) handleAssign(as *ast.AssignStmt, fd *ast.FuncDecl) {
	// Tuple forms: x, y := call() / range handled elsewhere.
	tainted := func(i int) bool {
		if len(as.Rhs) == len(as.Lhs) {
			return st.exprTainted(as.Rhs[i])
		}
		if len(as.Rhs) == 1 {
			return st.exprTainted(as.Rhs[0])
		}
		return false
	}
	for i, lhs := range as.Lhs {
		if !tainted(i) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			// Package-level variables outlive every Release window.
			obj := st.pass.Info.Uses[l]
			if obj == nil {
				obj = st.pass.Info.Defs[l]
			}
			if st.report && obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				st.pass.Reportf(as.Pos(),
					"aliased resp buffer stored in package-level variable %s: the value is valid only until Release — copy it or justify with //spash:aliased", l.Name)
				continue
			}
			st.taintLHS(l)
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			st.checkEscapingStore(as, lhs, fd)
		}
	}
}

// checkEscapingStore flags a tainted store whose base resolves to a
// receiver, parameter or package-level variable — state that outlives
// the statement and therefore the Release window. Stores into the
// arena's own fields (the reader managing its buffers) are exempt, as
// are stores rooted at short-lived locals.
func (st *state) checkEscapingStore(as *ast.AssignStmt, lhs ast.Expr, fd *ast.FuncDecl) {
	if !st.report {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := st.pass.Info.Uses[root]
	if obj == nil {
		obj = st.pass.Info.Defs[root]
	}
	if obj == nil {
		return
	}
	if st.isArena(namedOf(obj.Type())) {
		return
	}
	longLived := false
	where := ""
	switch {
	case obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope():
		longLived, where = true, "package-level state"
	case isParamOrRecv(fd, st.pass.Info, obj):
		longLived, where = true, "caller-visible state"
	}
	if !longLived {
		return
	}
	st.pass.Reportf(as.Pos(),
		"aliased resp buffer escapes into %s through %s: the value is valid only until Release — copy it (append([]byte(nil), b...)) or justify with //spash:aliased",
		where, root.Name)
}

// rootIdent walks selector/index/star chains to the leftmost ident.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isParamOrRecv reports whether obj is fd's receiver or one of its
// parameters (including pointer receivers: a store through either is
// visible to the caller after return).
func isParamOrRecv(fd *ast.FuncDecl, info *types.Info, obj types.Object) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if info.Defs[name] == obj {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

// taintCalleeParams propagates argument taint into a same-package
// callee's parameters (the intra-package half of the fixpoint; the
// cross-package half travels as ReturnsAlias facts).
func (st *state) taintCalleeParams(call *ast.CallExpr) {
	fn := st.callee(call)
	if fn == nil || fn.Pkg() != st.pass.Pkg {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		if !st.exprTainted(arg) {
			continue
		}
		pi := i
		if pi >= params.Len() {
			pi = params.Len() - 1 // variadic tail
		}
		if pi < 0 {
			continue
		}
		st.taint(params.At(pi))
	}
}

// checkGo flags goroutines launched with aliased arguments or
// capturing aliased locals: the goroutine's lifetime is unbounded by
// the Release window.
func (st *state) checkGo(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if st.exprTainted(arg) {
			st.pass.Reportf(g.Go,
				"aliased resp buffer passed to a goroutine: the value is valid only until Release — copy it or justify with //spash:aliased")
			return
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	defined := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.pass.Info.Defs[id]; obj != nil {
				defined[obj] = true
			}
		}
		return true
	})
	var hit bool
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || hit {
			return !hit
		}
		if obj := st.pass.Info.Uses[id]; obj != nil && st.tainted[obj] && !defined[obj] {
			hit = true
		}
		return true
	})
	if hit {
		st.pass.Reportf(g.Go,
			"goroutine captures a buffer aliasing the resp read arena: the value is valid only until Release — copy it or justify with //spash:aliased")
	}
}
