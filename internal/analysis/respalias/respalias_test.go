package respalias_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/respalias"
)

// The fixture is deliberately two packages: the arena and its facts
// live in respalias/reader, every escape lives in respalias/user, so
// each diagnostic proves ReturnsAlias/AliasCarrier propagation across
// the package boundary.
func TestRespaliasFixture(t *testing.T) {
	pkgs := atest.Fixtures(t, []string{"respalias/reader", "respalias/user"})
	atest.CheckPkgs(t, pkgs, respalias.Analyzer)
}

func TestRespaliasSuppressionRecorded(t *testing.T) {
	pkgs := atest.Fixtures(t, []string{"respalias/reader", "respalias/user"})
	supp := atest.SuppressionsPkgs(t, pkgs, respalias.Analyzer)
	atest.MustContainSuppression(t, supp, "respalias", "flushes before Release")
}
