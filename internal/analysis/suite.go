// Package analysis assembles the spash-vet analyzer suite. The five
// analyzers mechanically enforce the invariants DESIGN.md states in
// prose: PM mutation discipline (pmstore), flush-ordered durability
// (flushfence), per-worker context confinement (ctxescape), panic-free
// recovery (panicfree), and wrappable typed errors (errtype).
package analysis

import (
	"spash/internal/analysis/ctxescape"
	"spash/internal/analysis/errtype"
	"spash/internal/analysis/flushfence"
	"spash/internal/analysis/framework"
	"spash/internal/analysis/panicfree"
	"spash/internal/analysis/pmstore"
)

// Suite returns the full analyzer suite in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		pmstore.Analyzer,
		flushfence.Analyzer,
		ctxescape.Analyzer,
		panicfree.Analyzer,
		errtype.Analyzer,
	}
}
