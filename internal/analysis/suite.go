// Package analysis assembles the spash-vet analyzer suite. The nine
// analyzers mechanically enforce the invariants DESIGN.md states in
// prose: PM mutation discipline (pmstore), flush-ordered durability
// (flushfence), per-worker context confinement (ctxescape), panic-free
// recovery (panicfree), wrappable typed errors (errtype), the
// zero-copy RESP aliasing contract (respalias), goroutine shutdown
// edges in the serving layers (golifetime), replication epoch fencing
// and durable-word ordering (epochgate), and wire error round-tripping
// (wireerr). The last four are cross-package: they exchange facts
// through the framework's topological run (or, under `go vet`,
// through .vetx files).
package analysis

import (
	"spash/internal/analysis/ctxescape"
	"spash/internal/analysis/epochgate"
	"spash/internal/analysis/errtype"
	"spash/internal/analysis/flushfence"
	"spash/internal/analysis/framework"
	"spash/internal/analysis/golifetime"
	"spash/internal/analysis/panicfree"
	"spash/internal/analysis/pmstore"
	"spash/internal/analysis/respalias"
	"spash/internal/analysis/wireerr"
)

// Suite returns the full analyzer suite in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		pmstore.Analyzer,
		flushfence.Analyzer,
		ctxescape.Analyzer,
		panicfree.Analyzer,
		errtype.Analyzer,
		respalias.Analyzer,
		golifetime.Analyzer,
		epochgate.Analyzer,
		wireerr.Analyzer,
	}
}
