package analysis_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"spash/internal/analysis"
	"spash/internal/analysis/framework"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source directory")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
}

// TestTreeClean is the enforcement test: the whole module must have
// zero unsuppressed spash-vet diagnostics. A failure here means a new
// invariant violation (or a missing justification) was introduced.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := &framework.Loader{Dir: moduleRoot(t)}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, _, err := framework.Run(pkgs, analysis.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDeletedFlushIsCaught demonstrates the acceptance criterion:
// deleting the InsertNoCompact flush in internal/core/ops.go makes
// flushfence fail. The deletion happens in a parse-time overlay, not
// in the tree.
func TestDeletedFlushIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/core twice")
	}
	root := moduleRoot(t)
	opsPath := filepath.Join(root, "internal", "core", "ops.go")
	src, err := os.ReadFile(opsPath)
	if err != nil {
		t.Fatal(err)
	}
	const flushLine = "\tcase InsertNoCompact:\n\t\tfs := h.spanLap()\n\t\th.ix.pool.Flush(h.c, addr, uint64(recordSpace(len(data))))\n\t\th.spanAdd(obs.PhaseMediaFlush, fs)\n"
	if !strings.Contains(string(src), flushLine) {
		t.Fatalf("ops.go no longer contains the InsertNoCompact flush; update this test's needle")
	}
	mutated := strings.Replace(string(src), flushLine, "\tcase InsertNoCompact:\n", 1)

	check := func(overlay map[string][]byte) []framework.Diagnostic {
		loader := &framework.Loader{Dir: root, Overlay: overlay}
		pkgs, err := loader.Load("./internal/core")
		if err != nil {
			t.Fatalf("loading internal/core: %v", err)
		}
		diags, _, err := framework.Run(pkgs, analysis.Suite())
		if err != nil {
			t.Fatalf("running suite: %v", err)
		}
		return diags
	}

	if diags := check(nil); len(diags) != 0 {
		t.Fatalf("pristine internal/core should be clean, got %v", diags)
	}
	var hit bool
	for _, d := range check(map[string][]byte{opsPath: []byte(mutated)}) {
		if d.Analyzer == "flushfence" && strings.Contains(d.Message, "InsertNoCompact") {
			hit = true
		} else {
			t.Errorf("unexpected diagnostic on mutated ops.go: %s", d)
		}
	}
	if !hit {
		t.Error("deleting the InsertNoCompact flush was not caught by flushfence")
	}
}
