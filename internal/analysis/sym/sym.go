// Package sym recognises the spash symbols the analyzers key on:
// methods of the simulated PM pool, the HTM domain, and the per-worker
// context. Matching is by package-path suffix so the checks also apply
// to fixture packages and would survive a module rename.
package sym

import (
	"go/ast"
	"go/types"
	"strings"
)

// Package-path suffixes of the packages that own the checked symbols.
const (
	PmemPath = "internal/pmem"
	HTMPath  = "internal/htm"
	CorePath = "internal/core"
	RespPath = "internal/resp"
	RootPath = "spash"
)

// isNamed reports whether t (after pointer stripping) is the named
// type pkgSuffix.name.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pkgPathMatches(obj.Pkg().Path(), pkgSuffix)
}

func pkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PkgMatches reports whether the import path is, or ends with, one of
// the given package-path suffixes (a trailing "/" on a suffix matches
// any package under that tree).
func PkgMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if tree, ok := strings.CutSuffix(s, "/"); ok {
			if strings.Contains(path+"/", "/"+tree+"/") || strings.HasPrefix(path+"/", tree+"/") {
				return true
			}
			continue
		}
		if pkgPathMatches(path, s) {
			return true
		}
	}
	return false
}

// IsCtxPtr reports whether t is *pmem.Ctx.
func IsCtxPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(p.Elem(), PmemPath, "Ctx")
}

// methodOn resolves call to a method selector on the named receiver
// type, returning the method name.
func methodOn(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	if !isNamed(selection.Recv(), pkgSuffix, typeName) {
		return "", false
	}
	return sel.Sel.Name, true
}

// PoolMethod returns the method name if call invokes a method on
// *pmem.Pool (or pmem.Pool).
func PoolMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	return methodOn(info, call, PmemPath, "Pool")
}

// TMMethod returns the method name if call invokes a method on
// *htm.TM.
func TMMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	return methodOn(info, call, HTMPath, "TM")
}

// TxnMethod returns the method name if call invokes a method on
// *htm.Txn or *htm.ITxn.
func TxnMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	if n, ok := methodOn(info, call, HTMPath, "Txn"); ok {
		return n, true
	}
	return methodOn(info, call, HTMPath, "ITxn")
}

// MutatingPoolMethods are the pmem.Pool methods that change PM
// contents. Load64/Read/Flush/Fence/Prefetch are not mutations.
var MutatingPoolMethods = map[string]bool{
	"Store64": true,
	"CAS64":   true,
	"Write":   true,
	"NTStore": true,
}

// ErrorType returns the universe error interface.
func ErrorType() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// IsErrorInterface reports whether t's static type is exactly the
// error interface (not a concrete implementation).
func IsErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil {
		return true
	}
	i, ok := t.Underlying().(*types.Interface)
	return ok && types.Identical(i, ErrorType())
}

// TypedError reports whether t (after pointer stripping) is one of the
// repo's typed errors that must be matched with errors.Is/errors.As:
// core.CorruptionError, core.GeometryError, pmem.AccessError,
// spash.ReplicationError, resp.Error (fatal/recoverable protocol
// classification goes through resp.IsFatal, which is errors.As
// underneath — never a type switch on the error value).
func TypedError(t types.Type) (string, bool) {
	for _, te := range []struct{ pkg, name string }{
		{CorePath, "CorruptionError"},
		{CorePath, "GeometryError"},
		{PmemPath, "AccessError"},
		{RootPath, "ReplicationError"},
		{RespPath, "Error"},
	} {
		if isNamed(t, te.pkg, te.name) {
			return te.name, true
		}
	}
	return "", false
}

// SentinelError reports whether obj is a package-level Err* sentinel
// of the spash module (e.g. pmem.ErrPoisoned, core.ErrCorrupted,
// spash.ErrClosed).
func SentinelError(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	path := v.Pkg().Path()
	if path != "spash" && !strings.HasPrefix(path, "spash/") {
		return false
	}
	return types.Implements(v.Type(), ErrorType()) || IsErrorInterface(v.Type())
}
