// Fixture for the ctxescape analyzer: *pmem.Ctx must stay with its
// owning worker.
package ctxescape

import (
	"spash/internal/pmem"
	"spash/internal/shard"
)

// box is not an allowlisted owner.
type box struct {
	c *pmem.Ctx
}

// Flagged: storing a ctx into a non-allowlisted struct via composite
// literal.
func BadLiteral(c *pmem.Ctx) *box {
	return &box{c: c} // want `stored into a field of .*\.box`
}

// Flagged: same escape via field assignment.
func BadAssign(b *box, c *pmem.Ctx) {
	b.c = c // want `assigned to field c of .*\.box`
}

// Flagged: a goroutine capturing the enclosing worker's ctx.
func BadCapture(c *pmem.Ctx, p *pmem.Pool) {
	go func() {
		p.Load64(c, 0) // want `goroutine captures \*pmem\.Ctx "c"`
	}()
}

// Flagged: handing the ctx to a new goroutine as an argument.
func BadGoArg(c *pmem.Ctx) {
	go worker(c) // want `\*pmem\.Ctx passed to a new goroutine`
}

func worker(c *pmem.Ctx) {}

// Flagged: sending a ctx across goroutines over a channel.
func BadSend(ch chan *pmem.Ctx, c *pmem.Ctx) {
	ch <- c // want `\*pmem\.Ctx sent over a channel`
}

// Allowed: shard.Unit is an audited owner (bootstrap context).
func GoodUnit(u *shard.Unit, c *pmem.Ctx) {
	u.Ctx = c
}

// Allowed: a goroutine creating its own ctx.
func GoodOwnCtx(p *pmem.Pool) {
	go func() {
		c := p.NewCtx()
		defer c.Release()
		p.Load64(c, 0)
	}()
}

// Allowed: a justified suppression.
func SuppressedLiteral(c *pmem.Ctx) *box {
	//spash:allow ctxescape -- fixture: box is confined to a single goroutine in this test
	return &box{c: c}
}
