// Fixture for the epochgate analyzer: epoch fencing before mutation
// (E1), Store64→Flush→Fence on durable epoch/cursor words (E2), and
// bounds checks before frame-Shard indexing (E3).
package epochgate

import "spash/internal/pmem"

// Frame is frame-shaped: Epoch, Seq and Shard fields.
type Frame struct {
	Epoch uint64
	Seq   uint64
	Shard int
	Key   []byte
}

type index struct{ epoch uint64 }

func (ix *index) Insert(key []byte) {}
func (ix *index) Delete(key []byte) {}

type node struct {
	ix     *index
	shards []*index
}

// E1 flagged: an exported frame entry point reaching a mutation with
// no epoch comparison anywhere on the path.
func (n *node) Apply(f *Frame) {
	n.ix.Insert(f.Key) // want `Apply mutates through Insert without fencing on the frame epoch`
}

// E1 flagged: the mutation may hide behind a same-package helper.
func (n *node) ApplyIndirect(f *Frame) {
	n.install(f) // want `ApplyIndirect mutates through install -> Delete without fencing on the frame epoch`
}

func (n *node) install(f *Frame) {
	n.ix.Delete(f.Key)
}

// E1 allowed: the epoch gate fences before the mutation.
func (n *node) ApplyGated(f *Frame) {
	if f.Epoch < n.ix.epoch {
		return
	}
	n.ix.Insert(f.Key)
}

// E1 allowed: delegating to a helper that carries its own gate.
func (n *node) ApplyDelegated(f *Frame) {
	n.gatedInstall(f)
}

func (n *node) gatedInstall(f *Frame) {
	if f.Epoch < n.ix.epoch {
		return
	}
	n.ix.Insert(f.Key)
}

// E1 allowed (suppressed): a justified ungated path is recorded.
func (n *node) Reseed(f *Frame) {
	//spash:allow epochgate -- fixture: reseed installs an authoritative image; the caller fenced
	n.ix.Insert(f.Key)
}

// E2 flagged: the epoch word is stored but the line is never flushed.
func persistEpochBad(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 0, 7) // want `persistEpochBad stores a durable epoch/cursor word without flushing the line`
	p.Fence(c)
}

// E2 flagged: flushed but never fenced after the flush.
func persistCursorHalf(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 8, 9) // want `persistCursorHalf flushes the epoch/cursor word but never fences`
	p.Flush(c, 8, 8)
}

// E2 allowed: Store64 → Flush → Fence in source order.
func persistEpochGood(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 16, 1)
	p.Flush(c, 16, 8)
	p.Fence(c)
}

// E2 not applicable: the name does not speak of epoch or cursor words
// (the ordinary data path belongs to flushfence).
func storePayload(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 24, 2)
}

// E3 flagged: indexing by the frame's Shard without a bounds check —
// a hostile frame panics instead of being refused.
func (n *node) Route(f *Frame) *index {
	return n.shards[f.Shard] // want `Route indexes by a frame's Shard field without bounds-checking it`
}

// E3 allowed: a same-function bounds check fences the index.
func (n *node) RouteChecked(f *Frame) *index {
	if f.Shard < 0 || f.Shard >= len(n.shards) {
		return nil
	}
	return n.shards[f.Shard]
}
