// Fixture for the errtype analyzer: typed errors and sentinels must
// be wrapped with %w and matched with errors.Is / errors.As.
package errtype

import (
	"errors"
	"fmt"

	"spash"
	"spash/internal/core"
	"spash/internal/pmem"
	"spash/internal/resp"
)

// Flagged: identity comparison with a module sentinel.
func BadCompare(err error) bool {
	return err == pmem.ErrPoisoned // want `use errors\.Is\(err, pmem\.ErrPoisoned\)`
}

// Flagged: != is the same mistake.
func BadCompareNeq(err error) bool {
	return err != pmem.ErrPoisoned // want `use errors\.Is\(err, pmem\.ErrPoisoned\)`
}

// Allowed: errors.Is survives wrapping.
func GoodCompare(err error) bool {
	return errors.Is(err, pmem.ErrPoisoned)
}

// Allowed: nil checks are not sentinel comparisons.
func NilCheck(err error) bool {
	return err == nil
}

// Flagged: type assertion on an error value for a protected type.
func BadAssert(err error) bool {
	_, ok := err.(*core.CorruptionError) // want `type assertion on error value for CorruptionError`
	return ok
}

// Allowed: errors.As matches through wrapping.
func GoodAssert(err error) bool {
	var ce *core.CorruptionError
	return errors.As(err, &ce)
}

// Flagged: type switch on an error value matching a protected type.
func BadSwitch(err error) string {
	switch err.(type) {
	case *core.GeometryError: // want `type switch on error value matches GeometryError`
		return "geometry"
	default:
		return ""
	}
}

// Flagged: wrapping a typed error with %v severs the errors.Is chain.
func BadWrap(ae pmem.AccessError) error {
	return fmt.Errorf("scan: %v", ae) // want `AccessError formatted with %v: wrap with %w`
}

// Allowed: %w preserves the chain.
func GoodWrap(ae pmem.AccessError) error {
	return fmt.Errorf("scan: %w", ae)
}

// Allowed: identity comparison inside an Is method is the
// implementation of errors.Is itself.
type myErr struct{}

func (myErr) Error() string { return "my error" }

func (myErr) Is(target error) bool {
	return target == pmem.ErrPoisoned
}

// Flagged: the replication sentinels are module sentinels too — a
// deposed primary's retry loop must match through the
// *ReplicationError wrapper.
func BadReplCompare(err error) bool {
	return err == spash.ErrNotPrimary // want `use errors\.Is\(err, spash\.ErrNotPrimary\)`
}

// Allowed: errors.Is reaches the sentinel through the wrapper.
func GoodReplCompare(err error) bool {
	return errors.Is(err, spash.ErrReplicaLag)
}

// Flagged: %v severs the chain to a *ReplicationError (and to the
// sentinel inside it).
func BadReplWrap(re *spash.ReplicationError) error {
	return fmt.Errorf("ship: %v", re) // want `ReplicationError formatted with %v: wrap with %w`
}

// Allowed: %w keeps ErrNotPrimary / ErrReplicaLag matchable.
func GoodReplWrap(re *spash.ReplicationError) error {
	return fmt.Errorf("ship: %w", re)
}

// Flagged: type assertion on the replication error type.
func BadReplAssert(err error) bool {
	_, ok := err.(*spash.ReplicationError) // want `type assertion on error value for ReplicationError`
	return ok
}

// Flagged: fatal/recoverable classification of protocol errors must go
// through resp.IsFatal (errors.As underneath), never a type switch.
func BadRespSwitch(err error) bool {
	switch err.(type) {
	case *resp.Error: // want `type switch on error value matches Error`
		return true
	}
	return false
}

// Flagged: %v severs the chain to a *resp.Error.
func BadRespWrap(pe *resp.Error) error {
	return fmt.Errorf("conn: %v", pe) // want `Error formatted with %v: wrap with %w`
}

// Allowed: the classification helper and %w keep the chain intact.
func GoodResp(err error) (bool, error) {
	return resp.IsFatal(err), fmt.Errorf("conn: %w", err)
}

// Allowed: a justified suppression.
func Suppressed(err error) bool {
	//spash:allow errtype -- fixture: pointer identity intentionally under test here
	return err == pmem.ErrPoisoned
}
