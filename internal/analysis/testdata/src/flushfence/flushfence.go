// Fixture for the flushfence analyzer: a cached PM store must be
// flushed and fenced before a publish in the same function, and
// flush-policy switches must not silently skip the flush on one case.
package flushfence

import (
	"spash/internal/htm"
	"spash/internal/pmem"
)

// Flagged: publish with the preceding store still unflushed.
func BadUnflushedPublish(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 0, 1)
	p.CAS64(c, 64, 0, 1) // want `publishes while the pmem\.Pool\.Store64 at line \d+ is unflushed`
}

// Flagged: flushed but the write-back was never drained by a Fence.
func BadUnfencedPublish(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 0, 1)
	p.Flush(c, 0, 8)
	p.CAS64(c, 64, 0, 1) // want `not drained by a Fence`
}

// Flagged: non-temporal stores bypass the cache but still need a
// fence before the publish.
func BadNTStore(c *pmem.Ctx, p *pmem.Pool, buf []byte) {
	p.NTStore(c, 0, buf)
	p.CAS64(c, 64, 0, 1) // want `not drained by a Fence`
}

// Flagged: a bulk Write is a cached store too.
func BadBulkWrite(c *pmem.Ctx, p *pmem.Pool, buf []byte, tm *htm.TM) {
	p.Write(c, 0, buf)
	tm.BumpStore64(c, p, 64, 1) // want `htm\.TM\.BumpStore64 publishes while the pmem\.Pool\.Write at line \d+ is unflushed`
}

// Allowed: the full store -> Flush -> Fence -> publish protocol.
func GoodProtocol(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 0, 1)
	p.Flush(c, 0, 8)
	p.Fence(c)
	p.CAS64(c, 64, 0, 1)
}

// Allowed: a publish with no preceding store has nothing to flush.
func GoodBarePublish(c *pmem.Ctx, p *pmem.Pool) {
	p.CAS64(c, 64, 0, 1)
}

// policy is a durability-policy enum declared in this package, so R2
// applies to switches dispatching on it.
type policy int

const (
	flushAlways policy = iota
	flushNever
	flushJustified
	flushAfter
)

// Flagged (one case): sibling cases flush, flushNever returns without
// flushing and without a justification.
func PolicySwitch(c *pmem.Ctx, p *pmem.Pool, pol policy) {
	p.Store64(c, 0, 1)
	switch pol {
	case flushAlways:
		p.Flush(c, 0, 8)
	case flushNever: // want `case flushNever of this flush-policy switch leaves its PM writes unflushed`
		return
	//spash:allow flushfence -- fixture: cache-absorbed mode, write-back on eviction is acceptable here
	case flushJustified:
		return
	}
	p.Fence(c)
}

// Allowed: a case without a flush is fine when the fall-through path
// below the switch flushes for it.
func PolicyFallthroughFlush(c *pmem.Ctx, p *pmem.Pool, pol policy) {
	p.Store64(c, 0, 1)
	switch pol {
	case flushAlways:
		p.Flush(c, 0, 8)
	case flushAfter:
		// covered by the post-switch flush
	}
	p.Flush(c, 0, 8)
	p.Fence(c)
}
