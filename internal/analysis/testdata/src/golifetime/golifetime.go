// Fixture for the golifetime analyzer: every goroutine spawned here
// either carries a reachable shutdown edge (join, signal channel,
// bounded errand, deferred close) or is flagged.
package golifetime

import (
	"fmt"
	"sync"
)

type owner struct {
	mu   sync.Mutex
	stop bool
	wg   sync.WaitGroup
	done chan struct{}
}

func work()        {}
func work2() error { return nil }

// Flagged: a polling loop with no channel or join edge — Close cannot
// wake or join it.
func (o *owner) BadPoll() {
	go func() { // want `goroutine has no reachable shutdown edge`
		for {
			o.mu.Lock()
			s := o.stop
			o.mu.Unlock()
			if s {
				return
			}
		}
	}()
}

// Flagged: a named same-package function without an edge.
func (o *owner) BadNamed() {
	go o.spin() // want `goroutine runs spin, which has no reachable shutdown edge`
}

func (o *owner) spin() {
	for {
		o.mu.Lock()
		o.mu.Unlock()
	}
}

// Flagged: a cross-package spawn whose callee exports no
// HasShutdownEdge fact — this package cannot prove its lifetime.
func BadCross() {
	go fmt.Println("leak") // want `goroutine runs fmt\.Println, which exports no shutdown-edge fact`
}

// Flagged: a function value cannot be resolved, so its shutdown
// behaviour cannot be checked.
func BadDynamic(fns []func()) {
	go fns[0]() // want `goroutine spawns an unresolvable function`
}

// Flagged: an edge two calls down a work path does not pace shutdown —
// the depth-limited search must not credit it (the prober-loop shape).
func (o *owner) BadDeep() {
	go func() { // want `goroutine has no reachable shutdown edge`
		for {
			o.outer()
		}
	}()
}

func (o *owner) outer() { o.inner() }
func (o *owner) inner() { <-o.done }

// Allowed: deferred WaitGroup.Done — the owner joins in Close.
func (o *owner) GoodJoin() {
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		work()
	}()
}

// Allowed: blocks on the done channel.
func (o *owner) GoodSignal() {
	go func() {
		<-o.done
	}()
}

// Allowed: a select with a receive case polls the signal every lap.
func (o *owner) GoodSelect(tick chan int) {
	go func() {
		for {
			select {
			case <-o.done:
				return
			case <-tick:
				work()
			}
		}
	}()
}

// Allowed: one bounded errand completing on a channel made buffered in
// the spawning function — the goroutine exits even if abandoned.
func GoodErrand() chan error {
	res := make(chan error, 1)
	go func() {
		res <- work2()
	}()
	return res
}

// Allowed: a deferred close is a join handle the owner can wait on.
func GoodHandle() chan struct{} {
	served := make(chan struct{})
	go func() {
		defer close(served)
		work()
	}()
	return served
}

// Allowed: the edge may sit one call down in the same package.
func (o *owner) GoodIndirect() {
	go o.inner()
}

// Allowed: a justified suppression is recorded, not reported.
func BadJustified() {
	//spash:allow golifetime -- fixture: the loop is process-lifetime by design
	go func() {
		for {
			work()
		}
	}()
}
