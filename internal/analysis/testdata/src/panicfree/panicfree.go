// Fixture for the panicfree analyzer: recovery/scrub/fsck paths must
// return typed errors; the only allowed panic is re-raising a
// recover()ed value.
package panicfree

import "errors"

var errDamaged = errors.New("damaged")

// Allowed: the re-raise idiom — panic(r) where r came from recover().
func RecoverIndex() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errDamaged
			panic(r)
		}
	}()
	return nil
}

// Flagged: a recovery-scoped function panicking on damage.
func FsckAll() error {
	panic("fsck cannot continue") // want `panic in recovery path FsckAll`
}

// Flagged: scope matching is case-insensitive on the recovery verbs.
func verifySegment(ok bool) error {
	if !ok {
		panic(errDamaged) // want `panic in recovery path verifySegment`
	}
	return nil
}

// Allowed: a justified suppression.
func ScrubAll() error {
	//spash:allow panicfree -- fixture: demonstrating a justified suppression
	panic("unreachable by construction")
}

// Allowed: functions outside the recovery scope may panic.
func Insert() {
	panic("not a recovery path")
}
