// Fixture for the pmstore analyzer: raw pmem.Pool mutations must be
// inside an htm.Txn body, a recovery-named function, or a
// //spash:guarded function.
package pmstore

import (
	"spash/internal/htm"
	"spash/internal/pmem"
)

// Flagged: a raw store in an ordinary exported function.
func BadDirect(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 0, 1) // want `raw pmem\.Pool\.Store64 in BadDirect`
}

// Flagged: every mutating method is covered.
func BadCAS(c *pmem.Ctx, p *pmem.Pool) {
	p.CAS64(c, 0, 1, 2) // want `raw pmem\.Pool\.CAS64 in BadCAS`
}

// Flagged: an unguarded helper whose only caller is also unguarded.
func badHelper(c *pmem.Ctx, p *pmem.Pool) {
	p.Write(c, 0, nil) // want `raw pmem\.Pool\.Write in badHelper`
}

func BadCaller(c *pmem.Ctx, p *pmem.Pool) {
	badHelper(c, p)
}

// Allowed: a store inside a transaction body literal.
func GoodTxn(tm *htm.TM, c *pmem.Ctx, p *pmem.Pool) error {
	_, err := tm.Run(c, p, func(tx *htm.Txn) error {
		p.Store64(c, 0, 1)
		return nil
	})
	return err
}

// Allowed: an irrevocable fallback body is also a transaction body.
func GoodIrrevocable(tm *htm.TM, c *pmem.Ctx, p *pmem.Pool) error {
	return tm.Irrevocable(c, p, func(it *htm.ITxn) error {
		p.Store64(c, 8, 2)
		return nil
	})
}

// Allowed: recovery-named functions run before the HTM domain exists.
func RecoverState(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 16, 3)
}

// Allowed: an annotated function with a justification.
//
//spash:guarded fixture: writes a private scratch region invisible to readers
func guardedWriter(c *pmem.Ctx, p *pmem.Pool) {
	p.Store64(c, 24, 4)
	goodHelper(c, p)
}

// Allowed: an unguarded helper is fine when every caller is guarded.
func goodHelper(c *pmem.Ctx, p *pmem.Pool) {
	p.NTStore(c, 32, nil)
}

// Allowed: an //spash:allow suppression on the store line.
func SuppressedWriter(c *pmem.Ctx, p *pmem.Pool) {
	//spash:allow pmstore -- fixture: deliberate raw write demonstrating a justified suppression
	p.Store64(c, 40, 5)
}

// Flagged: the annotation is checked, not trusted — a guarded function
// that mutates nothing is stale.
//
//spash:guarded fixture: nothing is stored here any more
func staleGuard() {} // want `stale //spash:guarded on staleGuard`

// Allowed: reads are not mutations.
func ReadsOnly(c *pmem.Ctx, p *pmem.Pool) uint64 {
	return p.Load64(c, 0)
}
