// Fixture arena package for the respalias analyzer: the shape the
// analyzer recognises structurally — a named struct with a Release
// method and byte-slice buffer fields. Functions returning aliases of
// the buffer export ReturnsAlias facts; struct types carrying aliased
// bytes out export AliasCarrier facts; the consuming fixture package
// (respalias/user) imports both.
package reader

// Reader is the arena: Release recycles buf, so anything aliasing it
// is valid only until then.
type Reader struct {
	buf  []byte
	args [][]byte
}

// Release recycles the buffer. Stores into the arena's own fields are
// the arena managing itself and are exempt.
func (r *Reader) Release() {
	r.args = r.args[:0]
}

// Next hands out a window into the arena buffer (exports ReturnsAlias).
func (r *Reader) Next() []byte {
	return r.buf[1:4]
}

// Reply carries an aliased payload (exports AliasCarrier via the
// tainted composite return below).
type Reply struct {
	Str []byte
}

// ReadReply returns a carrier holding arena bytes (ReturnsAlias).
func (r *Reader) ReadReply() Reply {
	return Reply{Str: r.buf}
}

var last []byte

// Flagged: even inside the arena's package, parking an alias in
// package-level state outlives every Release window.
func (r *Reader) Remember() {
	last = r.buf // want `aliased resp buffer stored in package-level variable last`
}
