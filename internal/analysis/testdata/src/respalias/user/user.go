// Fixture consumer package for the respalias analyzer: every aliasing
// value here is obtained through the reader package's facts
// (ReturnsAlias on Next/ReadReply, AliasCarrier on Reply), so each
// diagnostic below proves cross-package fact propagation.
package user

import "respalias/reader"

type Conn struct {
	rd   *reader.Reader
	args [][]byte
	name string
	out  chan []byte
}

// Flagged: the fact-tainted slice escapes into a receiver field (the
// slice header copied by append still points at the arena).
func (c *Conn) Queue() {
	b := c.rd.Next()
	c.args = append(c.args, b) // want `aliased resp buffer escapes into caller-visible state through c`
}

// Flagged: the carrier fact makes rep.Str an alias.
func (c *Conn) Hold(rep reader.Reply) {
	c.args = append(c.args, rep.Str) // want `aliased resp buffer escapes into caller-visible state through c`
}

// Flagged: a channel send outlives the Release window.
func (c *Conn) Publish() {
	b := c.rd.Next()
	c.out <- b // want `aliased resp buffer sent on a channel`
}

// Flagged: a goroutine capturing an alias runs unbounded by Release.
func (c *Conn) Spawn() {
	b := c.rd.Next()
	go func() { // want `goroutine captures a buffer aliasing the resp read arena`
		_ = b[0]
	}()
}

// Flagged: handing the alias to a goroutine as an argument.
func (c *Conn) SpawnArg() {
	b := c.rd.Next()
	go sink(b) // want `aliased resp buffer passed to a goroutine`
}

func sink(b []byte) {}

// Allowed: the blessed copy idiom and the string conversion both
// duplicate the bytes and break the alias.
func (c *Conn) Copy() {
	b := c.rd.Next()
	c.args = append(c.args, append([]byte(nil), b...))
	c.name = string(b)
}

// Allowed: stores rooted at short-lived locals stay in the window.
func (c *Conn) Local() int {
	b := c.rd.Next()
	var scratch [][]byte
	scratch = append(scratch, b)
	return len(scratch)
}

// Allowed: a justified retention is a suppression, not a diagnostic.
func (c *Conn) Justified() {
	b := c.rd.Next()
	//spash:aliased -- fixture: the batch flushes before Release in this request cycle
	c.args = append(c.args, b)
}
