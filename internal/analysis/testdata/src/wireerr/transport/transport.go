// Fixture transport package for the wireerr analyzer: declares the
// Ship interface seam and references module sentinels in its refusal
// paths, so the analyzer exports a WireSentinels package fact for the
// consuming wire fixture to diff against.
package transport

import (
	"fmt"

	"spash"
)

// Carrier is the transport seam (an interface with a Ship method).
type Carrier interface {
	Ship(payload []byte) error
}

// Refuse stands in for the refusal paths of a real transport: the
// sentinels referenced here land in the WireSentinels fact.
func Refuse(kind int) error {
	switch kind {
	case 0:
		return spash.ErrNotPrimary
	case 1:
		return spash.ErrReplicaLag
	case 2:
		return fmt.Errorf("ship: %w", spash.ErrTransportTimeout)
	}
	return nil
}
