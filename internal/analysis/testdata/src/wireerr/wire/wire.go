// Fixture wire package for the wireerr analyzer: an encode/decode map
// pair with deliberate drift in every direction the analyzer diffs —
// encoded-but-never-decoded, decoded-but-never-encoded, the same code
// translating to different sentinels, and (via the transport fixture's
// WireSentinels fact) a transport sentinel with no encoding at all.
package wire

import (
	"errors"

	"spash"
	"wireerr/transport"
)

var _ transport.Carrier = nil

// encode renders a refusal as a wire code. The fact diff reports at
// the switch below: the transport references spash.ErrTransportTimeout
// but no case here encodes it.
func encode(err error) string {
	code := "ERR"
	switch { // want `transport sentinel spash\.ErrTransportTimeout has no wire encoding`
	case errors.Is(err, spash.ErrNotPrimary):
		code = "NOTPRIMARY"
	case errors.Is(err, spash.ErrReplicaLag):
		code = "LAG" // want `wire code "LAG" \(encoding spash\.ErrReplicaLag\) is never decoded`
	case errors.Is(err, spash.ErrClosed):
		code = "CLOSED" // want `wire code "CLOSED" encodes spash\.ErrClosed but decodes to spash\.ErrRetryExhausted`
	case errors.Is(err, spash.ErrNeedsReseed):
		//spash:allow wireerr -- fixture: reseed refusals stay in-process by design
		code = "RESEED"
	}
	return code
}

// decode maps a wire code back to a sentinel.
func decode(code string) error {
	var err error
	switch code {
	case "NOTPRIMARY":
		err = spash.ErrNotPrimary
	case "CLOSED":
		err = spash.ErrRetryExhausted
	case "STALE": // want `wire code "STALE" is decoded but never encoded`
		err = spash.ErrNeedsReseed
	}
	return err
}
