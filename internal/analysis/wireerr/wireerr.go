// Package wireerr keeps the typed replication errors round-trippable
// across the wire. The contract: every "-REPL <CODE>" the server
// encodes must decode back to the same sentinel on the client, so
// errors.Is(err, spash.ErrNotPrimary) and friends hold on both sides
// of a TCP hop exactly as in-process.
//
// The check is a symbol-table diff, fed by a cross-package fact. The
// package that declares the replication transport (an interface with a
// Ship method — internal/repl) exports a WireSentinels package fact
// listing the module sentinels its refusal paths reference. The
// package that owns the wire mapping (internal/server's wire.go)
// declares two switches: an encode map (tagless switch of errors.Is
// cases assigning code literals) and a decode map (switch on the code
// string assigning sentinels back). wireerr diffs the three:
//
//   - a code the encoder emits but the decoder never maps back turns a
//     typed refusal into an untyped error on the client — retry/breaker
//     policy silently degrades;
//   - a code the decoder accepts but the encoder never emits is dead
//     or drifted vocabulary;
//   - the same code mapping to different sentinels on the two sides is
//     a silent mistranslation;
//   - a transport sentinel (from the fact) with no encode case falls
//     through to the generic ERR code and loses its identity crossing
//     the wire.
package wireerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"spash/internal/analysis/framework"
	"spash/internal/analysis/sym"
)

// WireSentinels is a package fact listing the fully-qualified names of
// the module sentinels a transport-declaring package references in its
// refusal paths.
type WireSentinels struct {
	Names []string
}

func (*WireSentinels) AFact() {}

var Analyzer = &framework.Analyzer{
	Name:      "wireerr",
	Doc:       "every -REPL <CODE> wire error must round-trip encode/decode to the same registered sentinel",
	Run:       run,
	FactTypes: []framework.Fact{(*WireSentinels)(nil)},
}

// entry is one side of a code<->sentinel mapping.
type entry struct {
	sentinel string // qualified sentinel name, e.g. "spash.ErrNotPrimary"
	pos      token.Pos
}

// codeMap is one recognised mapping switch.
type codeMap struct {
	codes map[string]entry
	pos   token.Pos
}

func run(pass *framework.Pass) error {
	if declaresTransport(pass.Pkg) {
		if names := referencedSentinels(pass); len(names) > 0 {
			pass.ExportPackageFact(&WireSentinels{Names: names})
		}
	}
	enc := findEncodeMap(pass)
	dec := findDecodeMap(pass)
	if enc == nil || dec == nil {
		// Half a mapping in a package would be odd, but encode and
		// decode legitimately live together (wire.go); nothing to diff
		// until both exist.
		return nil
	}
	for _, code := range sortedKeys(enc.codes) {
		e := enc.codes[code]
		d, ok := dec.codes[code]
		if !ok {
			pass.Reportf(e.pos,
				"wire code %q (encoding %s) is never decoded: the client gets an untyped error and errors.Is breaks across the wire — add the case to the decode map", code, e.sentinel)
			continue
		}
		if d.sentinel != e.sentinel {
			pass.Reportf(e.pos,
				"wire code %q encodes %s but decodes to %s: the sentinel is mistranslated crossing the wire", code, e.sentinel, d.sentinel)
		}
	}
	for _, code := range sortedKeys(dec.codes) {
		if _, ok := enc.codes[code]; !ok {
			pass.Reportf(dec.codes[code].pos,
				"wire code %q is decoded but never encoded: dead or drifted vocabulary — remove the case or add the matching encode entry", code)
		}
	}
	encoded := map[string]bool{}
	for _, e := range enc.codes {
		encoded[e.sentinel] = true
	}
	for _, imp := range pass.Pkg.Imports() {
		var ws WireSentinels
		if !pass.ImportPackageFact(imp, &ws) {
			continue
		}
		for _, name := range ws.Names {
			if !encoded[name] {
				pass.Reportf(enc.pos,
					"transport sentinel %s has no wire encoding: refusals carrying it degrade to a generic ERR across the wire — add an encode/decode pair", name)
			}
		}
	}
	return nil
}

// declaresTransport reports whether pkg declares an interface with a
// Ship method (the replication transport seam).
func declaresTransport(pkg *types.Package) bool {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Ship" {
				return true
			}
		}
	}
	return false
}

// referencedSentinels lists the module sentinels the package's source
// references, qualified as pkgpath.Name, sorted.
func referencedSentinels(pass *framework.Pass) []string {
	seen := map[string]bool{}
	for _, obj := range pass.Info.Uses {
		if sym.SentinelError(obj) {
			seen[obj.Pkg().Path()+"."+obj.Name()] = true
		}
	}
	var out []string
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// findEncodeMap finds the package's encode switch: a tagless switch
// whose cases test errors.Is(err, <sentinel>) and assign a string
// literal code. At least two such cases make it the encode map.
func findEncodeMap(pass *framework.Pass) *codeMap {
	var found *codeMap
	eachSwitch(pass, func(sw *ast.SwitchStmt) {
		if sw.Tag != nil || found != nil {
			return
		}
		cm := &codeMap{codes: map[string]entry{}, pos: sw.Pos()}
		for _, cl := range sw.Body.List {
			cc, ok := cl.(*ast.CaseClause)
			if !ok || len(cc.List) == 0 {
				continue
			}
			sentinel := ""
			for _, cond := range cc.List {
				if s, ok := errorsIsSentinel(pass, cond); ok {
					sentinel = s
					break
				}
			}
			if sentinel == "" {
				continue
			}
			code, pos, ok := assignedStringLit(cc.Body)
			if !ok {
				continue
			}
			cm.codes[code] = entry{sentinel: sentinel, pos: pos}
		}
		if len(cm.codes) >= 2 {
			found = cm
		}
	})
	return found
}

// findDecodeMap finds the package's decode switch: a tagged switch
// whose cases are string literals and whose bodies assign a sentinel.
func findDecodeMap(pass *framework.Pass) *codeMap {
	var found *codeMap
	eachSwitch(pass, func(sw *ast.SwitchStmt) {
		if sw.Tag == nil || found != nil {
			return
		}
		cm := &codeMap{codes: map[string]entry{}, pos: sw.Pos()}
		for _, cl := range sw.Body.List {
			cc, ok := cl.(*ast.CaseClause)
			if !ok || len(cc.List) == 0 {
				continue
			}
			sentinel, ok := assignedSentinel(pass, cc.Body)
			if !ok {
				continue
			}
			for _, cond := range cc.List {
				lit, ok := ast.Unparen(cond).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				code, err := strconv.Unquote(lit.Value)
				if err != nil {
					continue
				}
				cm.codes[code] = entry{sentinel: sentinel, pos: lit.Pos()}
			}
		}
		if len(cm.codes) >= 2 {
			found = cm
		}
	})
	return found
}

func eachSwitch(pass *framework.Pass, fn func(*ast.SwitchStmt)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				fn(sw)
			}
			return true
		})
	}
}

// errorsIsSentinel matches errors.Is(err, <sentinel>) and returns the
// sentinel's qualified name.
func errorsIsSentinel(pass *framework.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Is" {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "errors" {
		return "", false
	}
	return sentinelName(pass, call.Args[1])
}

// sentinelName resolves e to a module sentinel's qualified name.
func sentinelName(pass *framework.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !sym.SentinelError(obj) {
		return "", false
	}
	return obj.Pkg().Path() + "." + obj.Name(), true
}

// assignedStringLit finds `x = "CODE"` in a case body.
func assignedStringLit(body []ast.Stmt) (string, token.Pos, bool) {
	for _, stmt := range body {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			continue
		}
		lit, ok := ast.Unparen(as.Rhs[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		code, err := strconv.Unquote(lit.Value)
		if err != nil {
			continue
		}
		return code, as.Pos(), true
	}
	return "", token.NoPos, false
}

// assignedSentinel finds `x = <sentinel>` in a case body.
func assignedSentinel(pass *framework.Pass, body []ast.Stmt) (string, bool) {
	for _, stmt := range body {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			continue
		}
		if name, ok := sentinelName(pass, as.Rhs[0]); ok {
			return name, true
		}
	}
	return "", false
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
