package wireerr_test

import (
	"testing"

	"spash/internal/analysis/atest"
	"spash/internal/analysis/wireerr"
)

// The fixture splits the contract the way the real tree does: the
// transport seam (and so the WireSentinels fact) lives in
// wireerr/transport, the encode/decode maps live in wireerr/wire. The
// no-encoding diagnostic only exists if the package fact crossed the
// boundary.
func TestWireerrFixture(t *testing.T) {
	pkgs := atest.Fixtures(t, []string{"wireerr/transport", "wireerr/wire"},
		"spash", "errors", "fmt")
	atest.CheckPkgs(t, pkgs, wireerr.Analyzer)
}

func TestWireerrSuppressionRecorded(t *testing.T) {
	pkgs := atest.Fixtures(t, []string{"wireerr/transport", "wireerr/wire"},
		"spash", "errors", "fmt")
	supp := atest.SuppressionsPkgs(t, pkgs, wireerr.Analyzer)
	atest.MustContainSuppression(t, supp, "wireerr", "stay in-process")
}
