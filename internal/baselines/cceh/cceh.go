// Package cceh reimplements CCEH (Nam et al., FAST'19), the
// cacheline-conscious extendible hashing baseline: a persistent MSB
// directory over large (16 KB) segments of cacheline-sized buckets
// with bounded linear probing, per-segment reader-writer locks, lazy
// deletion, and copy-based segment splits.
//
// The aspects that drive the paper's comparison are kept faithfully:
//
//   - the directory lives in PM, so step 1 of every operation is a PM
//     read (Spash keeps its directory in DRAM);
//   - the local depth lives in the segment header, adding PM reads on
//     the split path;
//   - read-write locks are taken for reads AND writes, and the lock
//     words live in PM, so even searches generate PM write traffic
//     (§VI-B: "Level hashing and CCEH produce PM writes to maintain
//     read locks");
//   - the bounded probe window (4 cachelines) forces early splits,
//     giving CCEH its characteristically low load factor (Fig 9);
//   - per the paper's methodology, flush instructions are removed.
package cceh

import (
	"errors"
	"sync"
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/baselines/common"
	"spash/internal/hash"
	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

const (
	slotsPerBucket  = 4
	bucketsPerSeg   = 256
	slotsPerSeg     = bucketsPerSeg * slotsPerBucket // 1024
	slotBytes       = 16
	headerBytes     = 256 // one XPLine: [depth][lock word][pad]
	segBytes        = headerBytes + slotsPerSeg*slotBytes
	probeBuckets    = 4 // bounded linear probing window
	segLockStripes  = 1024
	initGlobalDepth = 2
)

// dirMeta is the published directory descriptor: readers resolve it
// lock-free (as the original does, via its persistent directory) and
// revalidate after taking the segment lock.
type dirMeta struct {
	addr  uint64
	depth uint
}

// CCEH is the index.
type CCEH struct {
	pool *pmem.Pool
	al   *alloc.Allocator
	grp  *vsync.Group

	// meta is the current directory descriptor (lock-free reads).
	meta atomic.Pointer[dirMeta]
	// structMu coordinates splits (shared) with directory doubling
	// (exclusive). It is deliberately NOT a vsync lock: base
	// operations never take it, so it contributes no per-op
	// serialisation — matching the original, whose directory reads
	// are unsynchronised.
	structMu sync.RWMutex

	segLocks [segLockStripes]vsync.RWMutex

	entries  atomic.Int64
	segments atomic.Int64
}

// New creates a CCEH index on a fresh pool (the allocator must already
// be formatted).
func New(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator) (*CCEH, error) {
	t := &CCEH{pool: pool, al: al, grp: &vsync.Group{}}
	for i := range t.segLocks {
		t.segLocks[i].G = t.grp
	}
	dir, err := al.AllocRaw(c, (8 << initGlobalDepth))
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < 1<<initGlobalDepth; i++ {
		seg, err := t.newSegment(c, initGlobalDepth)
		if err != nil {
			return nil, err
		}
		pool.Store64(c, dir+i*8, seg)
	}
	t.meta.Store(&dirMeta{addr: dir, depth: initGlobalDepth})
	return t, nil
}

// NewFactory returns an ixapi factory for the harness.
func NewFactory() ixapi.Factory {
	return func(platform pmem.Config) (ixapi.Index, error) {
		pool := pmem.New(platform)
		c := pool.NewCtx()
		al, err := alloc.New(c, pool)
		if err != nil {
			return nil, err
		}
		return New(c, pool, al)
	}
}

func (t *CCEH) newSegment(c *pmem.Ctx, depth uint) (uint64, error) {
	seg, err := t.al.AllocRaw(c, segBytes)
	if err != nil {
		return 0, err
	}
	t.pool.Store64(c, seg, uint64(depth))
	// Fresh raw spans are zero; no further initialisation needed.
	t.segments.Add(1)
	return seg, nil
}

// Name implements ixapi.Index.
func (t *CCEH) Name() string { return "CCEH" }

// Len implements ixapi.Index.
func (t *CCEH) Len() int { return int(t.entries.Load()) }

// LoadFactor implements ixapi.Index.
func (t *CCEH) LoadFactor() float64 {
	segs := t.segments.Load()
	if segs == 0 {
		return 0
	}
	return float64(t.entries.Load()) / float64(segs*slotsPerSeg)
}

// Pool implements ixapi.Index.
func (t *CCEH) Pool() *pmem.Pool { return t.pool }

// Group implements ixapi.Index.
func (t *CCEH) Group() *vsync.Group { return t.grp }

func (t *CCEH) segLock(seg uint64) *vsync.RWMutex {
	return &t.segLocks[(seg/segBytes)%segLockStripes]
}

func slotAddr(seg uint64, slot int) uint64 {
	return seg + headerBytes + uint64(slot)*slotBytes
}

// Worker is the per-goroutine handle.
type Worker struct {
	t  *CCEH
	c  *pmem.Ctx
	ah *alloc.Handle
}

// NewWorker implements ixapi.Index.
func (t *CCEH) NewWorker() ixapi.Worker {
	return &Worker{t: t, c: t.pool.NewCtx(), ah: t.al.NewHandle()}
}

// Ctx implements ixapi.Worker.
func (w *Worker) Ctx() *pmem.Ctx { return w.c }

// Close implements ixapi.Worker.
func (w *Worker) Close() { w.ah.Close() }

// lookupSeg resolves the segment for h through the given directory
// descriptor. The directory read is a PM access, as in the original.
func (w *Worker) lookupSeg(m *dirMeta, h uint64) uint64 {
	return w.t.pool.Load64(w.c, m.addr+hash.Prefix(h, m.depth)*8)
}

// probe scans the bounded probe window for key; returns the slot index
// and key word, or -1.
func (w *Worker) probe(seg uint64, h uint64, key []byte) (int, uint64) {
	t := w.t
	b := int(h % bucketsPerSeg)
	for off := 0; off < probeBuckets; off++ {
		bb := (b + off) % bucketsPerSeg
		for s := bb * slotsPerBucket; s < (bb+1)*slotsPerBucket; s++ {
			kw := t.pool.Load64(w.c, slotAddr(seg, s))
			if common.IsOccupied(kw) && common.KeyWordMatches(w.c, t.pool, kw, key) {
				return s, kw
			}
		}
	}
	return -1, 0
}

// freeSlot finds a free slot in the probe window, or -1.
func (w *Worker) freeSlot(seg uint64, h uint64) int {
	t := w.t
	b := int(h % bucketsPerSeg)
	for off := 0; off < probeBuckets; off++ {
		bb := (b + off) % bucketsPerSeg
		for s := bb * slotsPerBucket; s < (bb+1)*slotsPerBucket; s++ {
			if !common.IsOccupied(t.pool.Load64(w.c, slotAddr(seg, s))) {
				return s
			}
		}
	}
	return -1
}

// withSeg runs fn with the segment for h locked (shared or exclusive),
// revalidating the directory entry after acquiring the lock. fn may
// return errRetry to restart.
var errRetry = errors.New("cceh: retry")

func (w *Worker) withSeg(h uint64, exclusive bool, fn func(seg uint64) error) error {
	t := w.t
	for {
		m := t.meta.Load()
		seg := w.lookupSeg(m, h)
		lk := t.segLock(seg)
		if exclusive {
			lk.Lock(w.c)
		} else {
			lk.RLock(w.c)
		}
		// Lock maintenance writes hit PM (lock word in the header).
		common.PMLockTraffic(w.c, t.pool, seg+8)
		err := errRetry
		// Revalidate under the lock: the directory may have doubled
		// (stale descriptor) or the segment may have split.
		if t.meta.Load() == m && w.lookupSeg(m, h) == seg {
			err = fn(seg)
		}
		common.PMLockTraffic(w.c, t.pool, seg+8)
		if exclusive {
			lk.Unlock(w.c)
		} else {
			lk.RUnlock(w.c)
		}
		if err == errRetry {
			continue
		}
		return err
	}
}

// Search implements ixapi.Worker.
func (w *Worker) Search(key, dst []byte) ([]byte, bool, error) {
	h := common.HashKey(key)
	var out []byte
	found := false
	err := w.withSeg(h, false, func(seg uint64) error {
		found = false
		s, _ := w.probe(seg, h, key)
		if s < 0 {
			return nil
		}
		vw := w.t.pool.Load64(w.c, slotAddr(seg, s)+8)
		out = common.LoadValueWord(w.c, w.t.pool, vw, dst)
		found = true
		return nil
	})
	if err != nil || !found {
		return dst, false, err
	}
	return out, true, nil
}

// Insert implements ixapi.Worker (upsert, like the extended baseline).
func (w *Worker) Insert(key, val []byte) error {
	t := w.t
	h := common.HashKey(key)
	kw, vw, _, _, err := common.EncodeKV(w.c, t.pool, w.ah, key, val)
	if err != nil {
		return err
	}
	for {
		full := false
		err := w.withSeg(h, true, func(seg uint64) error {
			if s, _ := w.probe(seg, h, key); s >= 0 {
				t.pool.Store64(w.c, slotAddr(seg, s)+8, vw)
				return nil
			}
			s := w.freeSlot(seg, h)
			if s < 0 {
				full = true
				return nil
			}
			t.pool.Store64(w.c, slotAddr(seg, s)+8, vw)
			t.pool.Store64(w.c, slotAddr(seg, s), kw)
			t.entries.Add(1)
			return nil
		})
		if err != nil {
			return err
		}
		if !full {
			return nil
		}
		if err := w.split(h); err != nil {
			return err
		}
	}
}

// Update implements ixapi.Worker (out-of-place value replacement, as
// in the paper's extended baselines).
func (w *Worker) Update(key, val []byte) (bool, error) {
	t := w.t
	h := common.HashKey(key)
	vp, vi := common.InlinePayload(val)
	var vrec uint64
	if !vi {
		var err error
		vrec, err = common.WriteRecord(w.c, t.pool, w.ah, val)
		if err != nil {
			return false, err
		}
		vp = vrec
	}
	vw := common.MakeWord(vi, vp)
	found := false
	err := w.withSeg(h, true, func(seg uint64) error {
		found = false
		s, _ := w.probe(seg, h, key)
		if s < 0 {
			return nil
		}
		found = true
		t.pool.Store64(w.c, slotAddr(seg, s)+8, vw)
		return nil
	})
	if err == nil && !found && vrec != 0 {
		common.FreeRecord(w.c, w.ah, vrec, len(val))
	}
	return found, err
}

// Delete implements ixapi.Worker (lazy deletion: the slot is cleared,
// segments are never merged).
func (w *Worker) Delete(key []byte) (bool, error) {
	t := w.t
	h := common.HashKey(key)
	found := false
	err := w.withSeg(h, true, func(seg uint64) error {
		found = false
		s, _ := w.probe(seg, h, key)
		if s < 0 {
			return nil
		}
		found = true
		t.pool.Store64(w.c, slotAddr(seg, s), 0)
		return nil
	})
	if err == nil && found {
		t.entries.Add(-1)
	}
	return found, err
}

// split divides the segment for h, copying entries whose next prefix
// bit is set into a new segment and updating the PM directory.
func (w *Worker) split(h uint64) error {
	t := w.t
	for {
		t.structMu.RLock()
		m := t.meta.Load()
		seg := w.lookupSeg(m, h)
		lk := t.segLock(seg)
		lk.Lock(w.c)
		common.PMLockTraffic(w.c, t.pool, seg+8)
		if t.meta.Load() != m || w.lookupSeg(m, h) != seg {
			common.PMLockTraffic(w.c, t.pool, seg+8)
			lk.Unlock(w.c)
			t.structMu.RUnlock()
			continue // another thread split or doubled first
		}
		depth := uint(t.pool.Load64(w.c, seg))
		if depth == m.depth {
			common.PMLockTraffic(w.c, t.pool, seg+8)
			lk.Unlock(w.c)
			t.structMu.RUnlock()
			t.double(w)
			continue
		}
		newSeg, err := t.newSegment(w.c, depth+1)
		if err != nil {
			common.PMLockTraffic(w.c, t.pool, seg+8)
			lk.Unlock(w.c)
			t.structMu.RUnlock()
			return err
		}
		// Move entries whose next prefix bit is 1 (re-hashing inline
		// keys; dereferencing key records, extra PM reads as in the
		// original).
		for s := 0; s < slotsPerSeg; s++ {
			kw := t.pool.Load64(w.c, slotAddr(seg, s))
			if !common.IsOccupied(kw) {
				continue
			}
			var kh uint64
			if common.IsInline(kw) {
				var b [8]byte
				putLE64(b[:], common.PayloadOf(kw))
				kh = common.HashKey(b[:])
			} else {
				buf := common.ReadRecord(w.c, t.pool, common.PayloadOf(kw), nil)
				kh = common.HashKey(buf)
			}
			if kh>>(63-depth)&1 == 1 {
				vw := t.pool.Load64(w.c, slotAddr(seg, s)+8)
				t.pool.Store64(w.c, slotAddr(newSeg, s)+8, vw)
				t.pool.Store64(w.c, slotAddr(newSeg, s), kw)
				t.pool.Store64(w.c, slotAddr(seg, s), 0)
			}
		}
		t.pool.Store64(w.c, seg, uint64(depth+1))
		// Repoint the upper half of the covering directory range.
		prefix := hash.Prefix(h, depth)
		base := prefix << (m.depth - depth)
		n := uint64(1) << (m.depth - depth)
		for j := n / 2; j < n; j++ {
			t.pool.Store64(w.c, m.addr+(base+j)*8, newSeg)
		}
		common.PMLockTraffic(w.c, t.pool, seg+8)
		lk.Unlock(w.c)
		t.structMu.RUnlock()
		return nil
	}
}

// double doubles the PM directory, excluding splits (which write
// directory entries) while the copy runs.
func (t *CCEH) double(w *Worker) {
	t.structMu.Lock()
	defer t.structMu.Unlock()
	m := t.meta.Load()
	if m.depth >= 44 {
		return
	}
	nd, err := t.al.AllocRaw(w.c, uint64(8)<<(m.depth+1))
	if err != nil {
		return
	}
	for i := uint64(0); i < 1<<m.depth; i++ {
		e := t.pool.Load64(w.c, m.addr+i*8)
		t.pool.Store64(w.c, nd+2*i*8, e)
		t.pool.Store64(w.c, nd+(2*i+1)*8, e)
	}
	t.meta.Store(&dirMeta{addr: nd, depth: m.depth + 1})
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
