package cceh

import (
	"testing"

	"spash/internal/indextest"
)

func TestCCEHConformance(t *testing.T) {
	indextest.Run(t, NewFactory())
}
