// Package clevel reimplements CLevel hashing (Chen et al., ATC'20):
// lock-free concurrent level hashing. Slots hold 8-byte pointers to
// immutable key-value records; all mutations are CAS operations on
// slot words (insert CASes a pointer into an empty slot, update CASes
// old→new record, delete CASes to zero), and growth publishes a new
// level list while entries migrate from the drained bottom level.
//
// What drives the paper's comparison:
//
//   - every key-value entry is out-of-place behind a pointer, so even
//     8-byte updates allocate and write a fresh record and every read
//     dereferences (more PM reads and writes than Spash, Fig 8, and no
//     CPU-cache absorption of hot updates, Fig 10);
//   - lookups probe up to four buckets across non-contiguous levels;
//   - like the original, semantics during a migration are relaxed:
//     concurrent duplicate inserts may briefly coexist (resolved by
//     delete/update passes);
//   - flush instructions are removed per the paper's methodology.
package clevel

import (
	"runtime"
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/baselines/common"
	"spash/internal/hash"
	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

const (
	slotsPerBucket = 4
	bucketBytes    = slotsPerBucket * 8 // 8-byte pointer slots
	initLevelBits  = 6
)

type level struct {
	addr    uint64
	buckets uint64
}

// ctab is the published level list, newest (insert target) first. Two
// levels normally; three while the old bottom drains.
type ctab struct {
	levels []level
}

// CLevel is the index.
type CLevel struct {
	pool *pmem.Pool
	al   *alloc.Allocator
	grp  *vsync.Group

	tab      atomic.Pointer[ctab]
	resizing atomic.Int32

	entries atomic.Int64
}

// New creates a CLevel index.
func New(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator) (*CLevel, error) {
	t := &CLevel{pool: pool, al: al, grp: &vsync.Group{}}
	top, err := t.newLevel(c, 1<<initLevelBits)
	if err != nil {
		return nil, err
	}
	bottom, err := t.newLevel(c, 1<<(initLevelBits-1))
	if err != nil {
		return nil, err
	}
	t.tab.Store(&ctab{levels: []level{top, bottom}})
	return t, nil
}

// NewFactory returns an ixapi factory.
func NewFactory() ixapi.Factory {
	return func(platform pmem.Config) (ixapi.Index, error) {
		pool := pmem.New(platform)
		c := pool.NewCtx()
		al, err := alloc.New(c, pool)
		if err != nil {
			return nil, err
		}
		return New(c, pool, al)
	}
}

func (t *CLevel) newLevel(c *pmem.Ctx, buckets uint64) (level, error) {
	addr, err := t.al.AllocRaw(c, buckets*bucketBytes)
	if err != nil {
		return level{}, err
	}
	return level{addr: addr, buckets: buckets}, nil
}

// Name implements ixapi.Index.
func (t *CLevel) Name() string { return "CLevel" }

// Len implements ixapi.Index.
func (t *CLevel) Len() int { return int(t.entries.Load()) }

// LoadFactor implements ixapi.Index.
func (t *CLevel) LoadFactor() float64 {
	var cap uint64
	for _, l := range t.tab.Load().levels {
		cap += l.buckets * slotsPerBucket
	}
	return float64(t.entries.Load()) / float64(cap)
}

// Pool implements ixapi.Index.
func (t *CLevel) Pool() *pmem.Pool { return t.pool }

// Group implements ixapi.Index.
func (t *CLevel) Group() *vsync.Group { return t.grp }

// Record layout: [u64 klen<<32|vlen][key, word-padded][val].
func pad8(n int) int { return (n + 7) &^ 7 }

func (t *CLevel) writeRecord(c *pmem.Ctx, ah *alloc.Handle, key, val []byte) (uint64, error) {
	size := 8 + pad8(len(key)) + pad8(len(val))
	addr, _, err := ah.Alloc(c, size)
	if err != nil {
		return 0, err
	}
	t.pool.Store64(c, addr, uint64(len(key))<<32|uint64(len(val)))
	t.pool.Write(c, addr+8, key)
	t.pool.Write(c, addr+8+uint64(pad8(len(key))), val)
	return addr, nil
}

func (t *CLevel) recordKeyMatches(c *pmem.Ctx, addr uint64, key []byte) bool {
	hdr := t.pool.Load64(c, addr)
	if int(hdr>>32) != len(key) {
		return false
	}
	buf := make([]byte, len(key))
	t.pool.Read(c, addr+8, buf)
	for i := range key {
		if buf[i] != key[i] {
			return false
		}
	}
	return true
}

func (t *CLevel) recordValue(c *pmem.Ctx, addr uint64, dst []byte) []byte {
	hdr := t.pool.Load64(c, addr)
	klen, vlen := int(hdr>>32), int(hdr&0xFFFFFFFF)
	if klen < 0 || klen > common.MaxKVLen || vlen < 0 || vlen > common.MaxKVLen {
		return dst
	}
	buf := make([]byte, vlen)
	t.pool.Read(c, addr+8+uint64(pad8(klen)), buf)
	return append(dst, buf...)
}

// Worker is the per-goroutine handle.
type Worker struct {
	t  *CLevel
	c  *pmem.Ctx
	ah *alloc.Handle
}

// NewWorker implements ixapi.Index.
func (t *CLevel) NewWorker() ixapi.Worker {
	return &Worker{t: t, c: t.pool.NewCtx(), ah: t.al.NewHandle()}
}

// Ctx implements ixapi.Worker.
func (w *Worker) Ctx() *pmem.Ctx { return w.c }

// Close implements ixapi.Worker.
func (w *Worker) Close() { w.ah.Close() }

func hashes(key []byte) (uint64, uint64) {
	h1 := common.HashKey(key)
	return h1, hash.Sum64Uint64(h1 ^ 0xc3a5c85c97cb3127)
}

func slotAddr(l level, b uint64, s int) uint64 {
	return l.addr + b*bucketBytes + uint64(s)*8
}

// findSlot locates key anywhere in the level list; returns the slot
// address and the record pointer.
func (w *Worker) findSlot(tab *ctab, h1, h2 uint64, key []byte) (uint64, uint64, bool) {
	t := w.t
	for _, l := range tab.levels {
		for _, b := range [2]uint64{h1 % l.buckets, h2 % l.buckets} {
			for s := 0; s < slotsPerBucket; s++ {
				sa := slotAddr(l, b, s)
				p := t.pool.Load64(w.c, sa)
				if p != 0 && t.recordKeyMatches(w.c, p, key) {
					return sa, p, true
				}
			}
		}
	}
	return 0, 0, false
}

// Search implements ixapi.Worker (lock-free; retries while a migration
// is in flight and the key is transiently unfindable).
func (w *Worker) Search(key, dst []byte) ([]byte, bool, error) {
	h1, h2 := hashes(key)
	for attempt := 0; ; attempt++ {
		tab := w.t.tab.Load()
		if _, p, ok := w.findSlot(tab, h1, h2, key); ok {
			return w.t.recordValue(w.c, p, dst), true, nil
		}
		if w.t.resizing.Load() == 0 || attempt > 3 {
			return dst, false, nil
		}
		runtime.Gosched()
	}
}

// Insert implements ixapi.Worker (upsert; CAS-based, lock-free).
func (w *Worker) Insert(key, val []byte) error {
	t := w.t
	h1, h2 := hashes(key)
	rec, err := t.writeRecord(w.c, w.ah, key, val)
	if err != nil {
		return err
	}
	for {
		tab := t.tab.Load()
		if sa, p, ok := w.findSlot(tab, h1, h2, key); ok {
			if t.pool.CAS64(w.c, sa, p, rec) {
				return nil
			}
			continue // raced; rescan
		}
		// Insert into the newest level only: the draining bottom
		// level must not receive new entries.
		l := tab.levels[0]
		var placedAt uint64
		for _, b := range [2]uint64{h1 % l.buckets, h2 % l.buckets} {
			for s := 0; s < slotsPerBucket && placedAt == 0; s++ {
				sa := slotAddr(l, b, s)
				if t.pool.Load64(w.c, sa) == 0 && t.pool.CAS64(w.c, sa, 0, rec) {
					placedAt = sa
				}
			}
			if placedAt != 0 {
				break
			}
		}
		if placedAt != 0 {
			// Re-check the published context: if our target level has
			// become (or is about to be dropped as) the draining
			// bottom, the migration cursor may already have passed our
			// slot. Undo and retry in that case; a failed undo means a
			// migration or update has taken responsibility for the
			// entry.
			tab2 := t.tab.Load()
			safe := false
			for i, l2 := range tab2.levels {
				if l2.addr == l.addr && !(len(tab2.levels) == 3 && i == len(tab2.levels)-1) {
					safe = true
				}
			}
			if !safe && t.pool.CAS64(w.c, placedAt, rec, 0) {
				continue
			}
			t.entries.Add(1)
			return nil
		}
		t.resize(w)
	}
}

// Update implements ixapi.Worker (out-of-place: a fresh record is
// CASed over the old pointer — CLevel's defining write behaviour).
func (w *Worker) Update(key, val []byte) (bool, error) {
	t := w.t
	h1, h2 := hashes(key)
	rec, err := t.writeRecord(w.c, w.ah, key, val)
	if err != nil {
		return false, err
	}
	for {
		tab := t.tab.Load()
		sa, p, ok := w.findSlot(tab, h1, h2, key)
		if !ok {
			return false, nil
		}
		if t.pool.CAS64(w.c, sa, p, rec) {
			return true, nil
		}
	}
}

// Delete implements ixapi.Worker (removes every replica, since
// migrations and races may briefly duplicate an entry).
func (w *Worker) Delete(key []byte) (bool, error) {
	t := w.t
	h1, h2 := hashes(key)
	found := false
	for {
		tab := t.tab.Load()
		sa, p, ok := w.findSlot(tab, h1, h2, key)
		if !ok {
			if found {
				t.entries.Add(-1)
			}
			return found, nil
		}
		if t.pool.CAS64(w.c, sa, p, 0) {
			found = true
		}
	}
}

// resize grows the table: a doubled top level is published (so
// concurrent inserts immediately find space), then the old bottom is
// drained into the new top, then the shortened list is published.
func (t *CLevel) resize(w *Worker) {
	if !t.resizing.CompareAndSwap(0, 1) {
		// Another thread is resizing; wait for the new top to appear.
		for t.resizing.Load() != 0 {
			runtime.Gosched()
		}
		return
	}
	defer t.resizing.Store(0)
	old := t.tab.Load()
	top := old.levels[0]
	bottom := old.levels[len(old.levels)-1]
	newTop, err := t.newLevel(w.c, top.buckets*2)
	if err != nil {
		return
	}
	mid := &ctab{levels: append([]level{newTop}, old.levels...)}
	t.tab.Store(mid)

	// Drain the bottom level into the new top.
	drained := true
	for b := uint64(0); b < bottom.buckets; b++ {
		for s := 0; s < slotsPerBucket; s++ {
			sa := slotAddr(bottom, b, s)
			for {
				p := t.pool.Load64(w.c, sa)
				if p == 0 {
					break
				}
				copyAt := t.migrate(w, newTop, p)
				if copyAt == 0 {
					// No room in the new top (pathological): leave the
					// entry in place and keep the bottom level alive.
					drained = false
					break
				}
				if t.pool.CAS64(w.c, sa, p, 0) {
					break
				}
				// The slot changed under us (an update raced): undo
				// the copy and retry with the fresh pointer.
				t.pool.CAS64(w.c, copyAt, p, 0)
			}
		}
	}
	if drained {
		t.tab.Store(&ctab{levels: mid.levels[:len(mid.levels)-1]})
	}
}

// migrate CASes record p into a free new-top slot, returning the slot
// address (0 if no space — the entry then simply stays reachable via
// its record until a later resize; extremely unlikely with a doubled
// level).
func (t *CLevel) migrate(w *Worker, l level, p uint64) uint64 {
	hdr := t.pool.Load64(w.c, p)
	klen := int(hdr >> 32)
	if klen < 0 || klen > common.MaxKVLen {
		return 0
	}
	key := make([]byte, klen)
	t.pool.Read(w.c, p+8, key)
	h1, h2 := hashes(key)
	for _, b := range [2]uint64{h1 % l.buckets, h2 % l.buckets} {
		for s := 0; s < slotsPerBucket; s++ {
			sa := slotAddr(l, b, s)
			if t.pool.Load64(w.c, sa) == 0 && t.pool.CAS64(w.c, sa, 0, p) {
				return sa
			}
		}
	}
	return 0
}
