package clevel

import (
	"testing"

	"spash/internal/indextest"
)

func TestCLevelConformance(t *testing.T) {
	indextest.Run(t, NewFactory())
}
