// Package common holds the pieces shared by the reimplemented
// baseline indexes (CCEH, Dash, Level hashing, CLevel, Plush, Halo):
// the 16-byte slot encoding for inline/pointer keys and values, the
// out-of-line record format, and a PM-resident lock-word helper that
// models the PM traffic of locks kept in persistent memory.
//
// Following the paper's methodology (§VI-A), the baselines run with
// cacheline flush instructions and persistence barriers removed — the
// eADR platform makes them unnecessary — so these helpers never flush;
// the baselines' PM write traffic comes from cache evictions, exactly
// as in the paper's "extended implementations".
package common

import (
	"encoding/binary"

	"spash/internal/alloc"
	"spash/internal/hash"
	"spash/internal/pmem"
)

// Slot word encoding (no fingerprints — that is a Spash refinement):
//
//	[63 occupied][62 inline][47..0 payload]
const (
	Occupied   = uint64(1) << 63
	Inline     = uint64(1) << 62
	PayloadMax = uint64(1) << 48
	Payload    = PayloadMax - 1
)

// MaxKVLen mirrors the core limit.
const MaxKVLen = 64 << 10

// HashKey hashes a request key (fast path for 8-byte keys).
func HashKey(key []byte) uint64 {
	if len(key) == 8 {
		return hash.Sum64Uint64(binary.LittleEndian.Uint64(key))
	}
	return hash.Sum64(key)
}

// InlinePayload returns the inline encoding of an 8-byte datum when it
// fits 48 bits.
func InlinePayload(b []byte) (uint64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(b)
	if v >= PayloadMax {
		return 0, false
	}
	return v, true
}

// MakeWord builds an occupied slot word.
func MakeWord(inline bool, payload uint64) uint64 {
	w := Occupied | payload&Payload
	if inline {
		w |= Inline
	}
	return w
}

// IsOccupied, IsInline and PayloadOf decode a slot word.
func IsOccupied(w uint64) bool  { return w&Occupied != 0 }
func IsInline(w uint64) bool    { return w&Inline != 0 }
func PayloadOf(w uint64) uint64 { return w & Payload }

// Record layout: [u64 len][payload, word-padded].
const RecordHeader = 8

// WriteRecord allocates and writes an out-of-line record (no flush).
func WriteRecord(c *pmem.Ctx, pool *pmem.Pool, h *alloc.Handle, data []byte) (uint64, error) {
	addr, _, err := h.Alloc(c, RecordHeader+len(data))
	if err != nil {
		return 0, err
	}
	pool.Store64(c, addr, uint64(len(data)))
	pool.Write(c, addr+RecordHeader, data)
	return addr, nil
}

// ReadRecord appends a record's payload to dst, clamping garbage
// lengths (a doomed optimistic reader may see a reused block).
func ReadRecord(c *pmem.Ctx, pool *pmem.Pool, addr uint64, dst []byte) []byte {
	n := int(pool.Load64(c, addr))
	if n < 0 || n > MaxKVLen {
		n = 0
	}
	buf := make([]byte, n)
	pool.Read(c, addr+RecordHeader, buf)
	return append(dst, buf...)
}

// RecordLen returns a record's payload length (clamped).
func RecordLen(c *pmem.Ctx, pool *pmem.Pool, addr uint64) int {
	n := int(pool.Load64(c, addr))
	if n < 0 || n > MaxKVLen {
		return 0
	}
	return n
}

// RecordEquals compares a record's payload with key.
func RecordEquals(c *pmem.Ctx, pool *pmem.Pool, addr uint64, key []byte) bool {
	if RecordLen(c, pool, addr) != len(key) {
		return false
	}
	for off := 0; off < len(key); off += 8 {
		w := pool.Load64(c, addr+RecordHeader+uint64(off))
		var b [8]byte
		copy(b[:], key[off:])
		if n := len(key) - off; n < 8 {
			mask := uint64(1)<<(8*uint(n)) - 1
			if w&mask != binary.LittleEndian.Uint64(b[:])&mask {
				return false
			}
		} else if w != binary.LittleEndian.Uint64(b[:]) {
			return false
		}
	}
	return true
}

// FreeRecord returns a record's block to the allocator cache.
func FreeRecord(c *pmem.Ctx, h *alloc.Handle, addr uint64, payloadLen int) {
	h.Free(c, addr, alloc.ClassSize(RecordHeader+payloadLen))
}

// EncodeKV encodes a key and value into slot words, allocating records
// for out-of-line data. Returns the words plus the record addresses (0
// when inline).
func EncodeKV(c *pmem.Ctx, pool *pmem.Pool, h *alloc.Handle, key, val []byte) (kw, vw, krec, vrec uint64, err error) {
	kp, ki := InlinePayload(key)
	if !ki {
		krec, err = WriteRecord(c, pool, h, key)
		if err != nil {
			return
		}
		kp = krec
	}
	kw = MakeWord(ki, kp)
	vp, vi := InlinePayload(val)
	if !vi {
		vrec, err = WriteRecord(c, pool, h, val)
		if err != nil {
			return
		}
		vp = vrec
	}
	vw = MakeWord(vi, vp)
	return
}

// KeyWordMatches reports whether an occupied key word identifies key.
func KeyWordMatches(c *pmem.Ctx, pool *pmem.Pool, kw uint64, key []byte) bool {
	if IsInline(kw) {
		p, ok := InlinePayload(key)
		return ok && PayloadOf(kw) == p
	}
	return RecordEquals(c, pool, PayloadOf(kw), key)
}

// LoadValueWord appends the value identified by vw to dst.
func LoadValueWord(c *pmem.Ctx, pool *pmem.Pool, vw uint64, dst []byte) []byte {
	if IsInline(vw) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], PayloadOf(vw))
		return append(dst, b[:]...)
	}
	return ReadRecord(c, pool, PayloadOf(vw), dst)
}

// PMLockTraffic issues the PM store that a lock word kept in
// persistent memory costs per acquire or release. The paper attributes
// part of CCEH's and Level hashing's slowness to exactly this traffic
// ("produce PM writes to maintain read locks", §VI-B).
func PMLockTraffic(c *pmem.Ctx, pool *pmem.Pool, lockAddr uint64) {
	pool.Store64(c, lockAddr, pool.Load64(c, lockAddr)+1)
}
