package common

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"spash/internal/alloc"
	"spash/internal/pmem"
)

func setup(t *testing.T) (*pmem.Pool, *pmem.Ctx, *alloc.Handle) {
	t.Helper()
	pool := pmem.New(pmem.Config{PoolSize: 64 << 20})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	return pool, c, al.NewHandle()
}

func TestWordCodecProperty(t *testing.T) {
	f := func(p uint64, inline bool) bool {
		p &= Payload
		w := MakeWord(inline, p)
		return IsOccupied(w) && IsInline(w) == inline && PayloadOf(w) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInlinePayload(t *testing.T) {
	small := make([]byte, 8)
	binary.LittleEndian.PutUint64(small, 12345)
	if p, ok := InlinePayload(small); !ok || p != 12345 {
		t.Fatalf("small: %d %v", p, ok)
	}
	big := make([]byte, 8)
	binary.LittleEndian.PutUint64(big, 1<<48)
	if _, ok := InlinePayload(big); ok {
		t.Fatal("48-bit overflow accepted")
	}
	if _, ok := InlinePayload([]byte("seven77")); ok {
		t.Fatal("non-8-byte accepted")
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	pool, c, h := setup(t)
	f := func(data []byte) bool {
		if len(data) > 4000 {
			data = data[:4000]
		}
		addr, err := WriteRecord(c, pool, h, data)
		if err != nil {
			return false
		}
		if RecordLen(c, pool, addr) != len(data) {
			return false
		}
		if !RecordEquals(c, pool, addr, data) {
			return false
		}
		got := ReadRecord(c, pool, addr, nil)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordEqualsRejectsDifferent(t *testing.T) {
	pool, c, h := setup(t)
	addr, err := WriteRecord(c, pool, h, []byte("hello-world-0123"))
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range [][]byte{
		[]byte("hello-world-0124"), // last byte differs
		[]byte("hello-world-012"),  // shorter
		[]byte("hello-world-01234"),
		[]byte(""),
		[]byte("Hello-world-0123"), // first byte differs
	} {
		if RecordEquals(c, pool, addr, other) {
			t.Fatalf("matched %q", other)
		}
	}
}

func TestEncodeKVAndKeyWordMatches(t *testing.T) {
	pool, c, h := setup(t)
	inlineKey := make([]byte, 8)
	binary.LittleEndian.PutUint64(inlineKey, 7)
	bigKey := []byte("a-sixteen-byte-k")
	bigVal := bytes.Repeat([]byte{9}, 300)

	kw, vw, krec, vrec, err := EncodeKV(c, pool, h, inlineKey, inlineKey)
	if err != nil || krec != 0 || vrec != 0 {
		t.Fatalf("inline KV allocated records: %v %v %v", krec, vrec, err)
	}
	if !KeyWordMatches(c, pool, kw, inlineKey) {
		t.Fatal("inline key word mismatch")
	}
	if got := LoadValueWord(c, pool, vw, nil); !bytes.Equal(got, inlineKey) {
		t.Fatalf("inline value: %v", got)
	}

	kw2, vw2, krec2, vrec2, err := EncodeKV(c, pool, h, bigKey, bigVal)
	if err != nil || krec2 == 0 || vrec2 == 0 {
		t.Fatalf("big KV: %v %v %v", krec2, vrec2, err)
	}
	if !KeyWordMatches(c, pool, kw2, bigKey) {
		t.Fatal("big key word mismatch")
	}
	if KeyWordMatches(c, pool, kw2, []byte("a-sixteen-byte-K")) {
		t.Fatal("big key false match")
	}
	if got := LoadValueWord(c, pool, vw2, nil); !bytes.Equal(got, bigVal) {
		t.Fatal("big value mismatch")
	}
}

func TestHashKeyConsistency(t *testing.T) {
	k := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, 99)
	if HashKey(k) != HashKey(k) {
		t.Fatal("non-deterministic")
	}
	if HashKey(k) == HashKey([]byte("different-key-xx")) {
		t.Fatal("suspicious collision")
	}
}

func TestPMLockTrafficTouchesPM(t *testing.T) {
	pool, c, h := setup(t)
	addr, _, err := h.Alloc(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := pool.Stats()
	PMLockTraffic(c, pool, addr)
	after := pool.Stats()
	if after.CacheHits+after.CacheMisses == before.CacheHits+before.CacheMisses {
		t.Fatal("lock traffic produced no PM accesses")
	}
}
