// Package dash reimplements Dash (Lu et al., VLDB'20), the
// state-of-the-art extendible hash baseline: 16 KB segments of 256-
// byte buckets with in-bucket metadata (allocation bitmap, one-byte
// fingerprints, a version word), balanced inserts across a target and
// a probing bucket, displacement, stash buckets for overflow, and
// optimistic lock-free reads with lock-based writes.
//
// What drives the paper's comparison:
//
//   - every operation reads 256-byte buckets and their metadata, so
//     searches cost multiple XPLine accesses (Fig 8a);
//   - inserts update bitmap + fingerprint + version metadata in
//     addition to the slot, costing extra PM writes (Fig 8b);
//   - reads are lock-free (seqlock-validated) but writes serialise on
//     per-segment locks, hurting write-intensive workloads (Fig 10);
//   - the persistent directory adds a PM read to every operation;
//   - flush instructions are removed per the paper's methodology.
package dash

import (
	"errors"
	"sync"
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/baselines/common"
	"spash/internal/hash"
	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

const (
	slotsPerBucket = 14
	bucketBytes    = 256 // [version][bitmap|flags][fp x14 + pad][14 slots]
	normalBuckets  = 60
	stashBuckets   = 4
	totalBuckets   = normalBuckets + stashBuckets
	headerBytes    = 256
	segBytes       = headerBytes + totalBuckets*bucketBytes
	segLockStripes = 1024
	initDepth      = 2

	offVersion = 0
	offBitmap  = 8
	offFP      = 16 // 14 fingerprint bytes in two words
	offSlots   = 32
	// overflowFlag in the bitmap word marks that entries homing in
	// this bucket live in the stash.
	overflowFlag = uint64(1) << 32
)

// dirMeta is the published directory descriptor; resolved lock-free
// and revalidated under the segment lock (or the bucket seqlock for
// reads), like the original's persistent directory.
type dirMeta struct {
	addr  uint64
	depth uint
}

// Dash is the index.
type Dash struct {
	pool *pmem.Pool
	al   *alloc.Allocator
	grp  *vsync.Group

	meta atomic.Pointer[dirMeta]
	// structMu coordinates splits (shared) with doubling (exclusive);
	// base operations never touch it.
	structMu sync.RWMutex

	segLocks [segLockStripes]vsync.Mutex

	entries  atomic.Int64
	segments atomic.Int64
}

// New creates a Dash index.
func New(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator) (*Dash, error) {
	t := &Dash{pool: pool, al: al, grp: &vsync.Group{}}
	for i := range t.segLocks {
		t.segLocks[i].G = t.grp
	}
	dir, err := al.AllocRaw(c, 8<<initDepth)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < 1<<initDepth; i++ {
		seg, err := t.newSegment(c, initDepth)
		if err != nil {
			return nil, err
		}
		pool.Store64(c, dir+i*8, seg)
	}
	t.meta.Store(&dirMeta{addr: dir, depth: initDepth})
	return t, nil
}

// NewFactory returns an ixapi factory.
func NewFactory() ixapi.Factory {
	return func(platform pmem.Config) (ixapi.Index, error) {
		pool := pmem.New(platform)
		c := pool.NewCtx()
		al, err := alloc.New(c, pool)
		if err != nil {
			return nil, err
		}
		return New(c, pool, al)
	}
}

func (t *Dash) newSegment(c *pmem.Ctx, depth uint) (uint64, error) {
	seg, err := t.al.AllocRaw(c, segBytes)
	if err != nil {
		return 0, err
	}
	t.pool.Store64(c, seg, uint64(depth))
	t.segments.Add(1)
	return seg, nil
}

// Name implements ixapi.Index.
func (t *Dash) Name() string { return "Dash" }

// Len implements ixapi.Index.
func (t *Dash) Len() int { return int(t.entries.Load()) }

// LoadFactor implements ixapi.Index.
func (t *Dash) LoadFactor() float64 {
	segs := t.segments.Load()
	if segs == 0 {
		return 0
	}
	return float64(t.entries.Load()) / float64(segs*totalBuckets*slotsPerBucket)
}

// Pool implements ixapi.Index.
func (t *Dash) Pool() *pmem.Pool { return t.pool }

// Group implements ixapi.Index.
func (t *Dash) Group() *vsync.Group { return t.grp }

func (t *Dash) segLock(seg uint64) *vsync.Mutex {
	return &t.segLocks[(seg/segBytes)%segLockStripes]
}

func bucketAddr(seg uint64, b int) uint64 {
	return seg + headerBytes + uint64(b)*bucketBytes
}

func slotAddr(seg uint64, b, s int) uint64 {
	return bucketAddr(seg, b) + offSlots + uint64(s)*16
}

// fingerprint of a hash (one byte, never zero so stored bytes are
// comparable without the bitmap).
func fingerprint(h uint64) byte {
	f := byte(h >> 48)
	if f == 0 {
		f = 1
	}
	return f
}

// Worker is the per-goroutine handle.
type Worker struct {
	t  *Dash
	c  *pmem.Ctx
	ah *alloc.Handle
}

// NewWorker implements ixapi.Index.
func (t *Dash) NewWorker() ixapi.Worker {
	return &Worker{t: t, c: t.pool.NewCtx(), ah: t.al.NewHandle()}
}

// Ctx implements ixapi.Worker.
func (w *Worker) Ctx() *pmem.Ctx { return w.c }

// Close implements ixapi.Worker.
func (w *Worker) Close() { w.ah.Close() }

func (w *Worker) lookupSeg(m *dirMeta, h uint64) uint64 {
	return w.t.pool.Load64(w.c, m.addr+hash.Prefix(h, m.depth)*8)
}

// bucketFP reads the fingerprint byte of slot s.
func (w *Worker) bucketFP(seg uint64, b, s int) byte {
	word := w.t.pool.Load64(w.c, bucketAddr(seg, b)+offFP+uint64(s/8)*8)
	return byte(word >> (8 * uint(s%8)))
}

func (w *Worker) setFP(seg uint64, b, s int, fp byte) {
	addr := bucketAddr(seg, b) + offFP + uint64(s/8)*8
	word := w.t.pool.Load64(w.c, addr)
	sh := 8 * uint(s%8)
	word = word&^(0xFF<<sh) | uint64(fp)<<sh
	w.t.pool.Store64(w.c, addr, word)
}

// findInBucket scans a bucket for key via fingerprints + bitmap.
func (w *Worker) findInBucket(seg uint64, b int, fp byte, key []byte) int {
	t := w.t
	bm := t.pool.Load64(w.c, bucketAddr(seg, b)+offBitmap)
	for s := 0; s < slotsPerBucket; s++ {
		if bm&(1<<uint(s)) == 0 || w.bucketFP(seg, b, s) != fp {
			continue
		}
		kw := t.pool.Load64(w.c, slotAddr(seg, b, s))
		if common.IsOccupied(kw) && common.KeyWordMatches(w.c, t.pool, kw, key) {
			return s
		}
	}
	return -1
}

// targetBuckets returns the target and probing bucket for h.
func targetBuckets(h uint64) (int, int) {
	b := int(h >> 16 % normalBuckets)
	return b, (b + 1) % normalBuckets
}

// searchOnce performs one optimistic (seqlock-validated) lookup
// attempt; ok=false means a concurrent writer interfered.
func (w *Worker) searchOnce(seg uint64, h uint64, key []byte, dst []byte) (val []byte, found, ok bool) {
	t := w.t
	b1, b2 := targetBuckets(h)
	fp := fingerprint(h)
	v1 := t.pool.Load64(w.c, bucketAddr(seg, b1)+offVersion)
	if v1&1 == 1 {
		return nil, false, false
	}
	scan := func(b int) (val []byte, found bool) {
		if s := w.findInBucket(seg, b, fp, key); s >= 0 {
			vw := t.pool.Load64(w.c, slotAddr(seg, b, s)+8)
			return common.LoadValueWord(w.c, t.pool, vw, dst), true
		}
		return nil, false
	}
	if val, found = scan(b1); !found {
		if val, found = scan(b2); !found {
			// Stash scan only when the target advertises overflow.
			if t.pool.Load64(w.c, bucketAddr(seg, b1)+offBitmap)&overflowFlag != 0 {
				for sb := normalBuckets; sb < totalBuckets && !found; sb++ {
					val, found = scan(sb)
				}
			}
		}
	}
	if t.pool.Load64(w.c, bucketAddr(seg, b1)+offVersion) != v1 {
		return nil, false, false
	}
	return val, found, true
}

// Search implements ixapi.Worker (lock-free: directory descriptor +
// bucket seqlock validation; splits leave bucket versions odd, so a
// reader racing a split retries and re-resolves).
func (w *Worker) Search(key, dst []byte) ([]byte, bool, error) {
	h := common.HashKey(key)
	for {
		m := w.t.meta.Load()
		seg := w.lookupSeg(m, h)
		val, found, ok := w.searchOnce(seg, h, key, dst)
		if ok && w.t.meta.Load() == m {
			if !found {
				return dst, false, nil
			}
			return val, true, nil
		}
	}
}

// bumpVersion makes concurrent optimistic readers of the target bucket
// retry; called with the segment lock held, around mutations.
func (w *Worker) bumpVersion(seg uint64, b int) {
	a := bucketAddr(seg, b) + offVersion
	w.t.pool.Store64(w.c, a, w.t.pool.Load64(w.c, a)+1)
}

// withSegW runs fn with the segment for h write-locked, revalidating
// the directory entry.
var errRetry = errors.New("dash: retry")

func (w *Worker) withSegW(h uint64, fn func(seg uint64) error) error {
	t := w.t
	for {
		m := t.meta.Load()
		seg := w.lookupSeg(m, h)
		lk := t.segLock(seg)
		lk.Lock(w.c)
		err := errRetry
		if t.meta.Load() == m && w.lookupSeg(m, h) == seg {
			err = fn(seg)
		}
		lk.Unlock(w.c)
		if err == errRetry {
			continue
		}
		return err
	}
}

// locate finds key anywhere in the segment (target, probe, stash).
// Caller holds the segment lock.
func (w *Worker) locate(seg uint64, h uint64, key []byte) (int, int) {
	b1, b2 := targetBuckets(h)
	fp := fingerprint(h)
	if s := w.findInBucket(seg, b1, fp, key); s >= 0 {
		return b1, s
	}
	if s := w.findInBucket(seg, b2, fp, key); s >= 0 {
		return b2, s
	}
	if w.t.pool.Load64(w.c, bucketAddr(seg, b1)+offBitmap)&overflowFlag != 0 {
		for sb := normalBuckets; sb < totalBuckets; sb++ {
			if s := w.findInBucket(seg, sb, fp, key); s >= 0 {
				return sb, s
			}
		}
	}
	return -1, -1
}

// putSlot installs an entry into bucket b, updating slot, fingerprint
// and bitmap (the metadata writes Dash pays per insert).
func (w *Worker) putSlot(seg uint64, b, s int, fp byte, kw, vw uint64) {
	t := w.t
	t.pool.Store64(w.c, slotAddr(seg, b, s)+8, vw)
	t.pool.Store64(w.c, slotAddr(seg, b, s), kw)
	w.setFP(seg, b, s, fp)
	bmAddr := bucketAddr(seg, b) + offBitmap
	t.pool.Store64(w.c, bmAddr, t.pool.Load64(w.c, bmAddr)|1<<uint(s))
}

// freeIn returns a free slot index in bucket b, or -1.
func (w *Worker) freeIn(seg uint64, b int) int {
	bm := w.t.pool.Load64(w.c, bucketAddr(seg, b)+offBitmap)
	for s := 0; s < slotsPerBucket; s++ {
		if bm&(1<<uint(s)) == 0 {
			return s
		}
	}
	return -1
}

func (w *Worker) loadCount(seg uint64, b int) int {
	bm := w.t.pool.Load64(w.c, bucketAddr(seg, b)+offBitmap)
	n := 0
	for s := 0; s < slotsPerBucket; s++ {
		if bm&(1<<uint(s)) != 0 {
			n++
		}
	}
	return n
}

// Insert implements ixapi.Worker (upsert; balanced insert across the
// target pair, then stash, then split).
func (w *Worker) Insert(key, val []byte) error {
	t := w.t
	h := common.HashKey(key)
	fp := fingerprint(h)
	kw, vw, _, _, err := common.EncodeKV(w.c, t.pool, w.ah, key, val)
	if err != nil {
		return err
	}
	for {
		full := false
		err := w.withSegW(h, func(seg uint64) error {
			b1, b2 := targetBuckets(h)
			if b, s := w.locate(seg, h, key); b >= 0 {
				w.bumpVersion(seg, b1)
				t.pool.Store64(w.c, slotAddr(seg, b, s)+8, vw)
				w.bumpVersion(seg, b1)
				return nil
			}
			// Balanced insert: less-loaded of target/probing bucket.
			cand := b1
			if w.loadCount(seg, b2) < w.loadCount(seg, b1) {
				cand = b2
			}
			s := w.freeIn(seg, cand)
			if s < 0 {
				cand = b1 ^ b2 ^ cand // the other one
				s = w.freeIn(seg, cand)
			}
			if s >= 0 {
				w.bumpVersion(seg, b1)
				w.putSlot(seg, cand, s, fp, kw, vw)
				w.bumpVersion(seg, b1)
				t.entries.Add(1)
				return nil
			}
			// Stash.
			for sb := normalBuckets; sb < totalBuckets; sb++ {
				if s := w.freeIn(seg, sb); s >= 0 {
					w.bumpVersion(seg, b1)
					w.putSlot(seg, sb, s, fp, kw, vw)
					bmAddr := bucketAddr(seg, b1) + offBitmap
					t.pool.Store64(w.c, bmAddr, t.pool.Load64(w.c, bmAddr)|overflowFlag)
					w.bumpVersion(seg, b1)
					t.entries.Add(1)
					return nil
				}
			}
			full = true
			return nil
		})
		if err != nil {
			return err
		}
		if !full {
			return nil
		}
		if err := w.split(h); err != nil {
			return err
		}
	}
}

// Update implements ixapi.Worker (out-of-place value replacement).
func (w *Worker) Update(key, val []byte) (bool, error) {
	t := w.t
	h := common.HashKey(key)
	vp, vi := common.InlinePayload(val)
	if !vi {
		rec, err := common.WriteRecord(w.c, t.pool, w.ah, val)
		if err != nil {
			return false, err
		}
		vp = rec
	}
	vw := common.MakeWord(vi, vp)
	found := false
	err := w.withSegW(h, func(seg uint64) error {
		found = false
		b, s := w.locate(seg, h, key)
		if b < 0 {
			return nil
		}
		found = true
		b1, _ := targetBuckets(h)
		w.bumpVersion(seg, b1)
		t.pool.Store64(w.c, slotAddr(seg, b, s)+8, vw)
		w.bumpVersion(seg, b1)
		return nil
	})
	return found, err
}

// Delete implements ixapi.Worker.
func (w *Worker) Delete(key []byte) (bool, error) {
	t := w.t
	h := common.HashKey(key)
	found := false
	err := w.withSegW(h, func(seg uint64) error {
		found = false
		b, s := w.locate(seg, h, key)
		if b < 0 {
			return nil
		}
		found = true
		b1, _ := targetBuckets(h)
		w.bumpVersion(seg, b1)
		t.pool.Store64(w.c, slotAddr(seg, b, s), 0)
		bmAddr := bucketAddr(seg, b) + offBitmap
		t.pool.Store64(w.c, bmAddr, t.pool.Load64(w.c, bmAddr)&^(1<<uint(s)))
		w.bumpVersion(seg, b1)
		return nil
	})
	if err == nil && found {
		t.entries.Add(-1)
	}
	return found, err
}

// split divides the segment for h (copy-based, like CCEH but keeping
// Dash's per-bucket layout). All bucket versions are left odd for the
// duration so optimistic readers retry.
func (w *Worker) split(h uint64) error {
	t := w.t
	for {
		t.structMu.RLock()
		m := t.meta.Load()
		seg := w.lookupSeg(m, h)
		lk := t.segLock(seg)
		lk.Lock(w.c)
		if t.meta.Load() != m || w.lookupSeg(m, h) != seg {
			lk.Unlock(w.c)
			t.structMu.RUnlock()
			continue
		}
		depth := uint(t.pool.Load64(w.c, seg))
		if depth == m.depth {
			lk.Unlock(w.c)
			t.structMu.RUnlock()
			t.double(w)
			continue
		}
		newSeg, err := t.newSegment(w.c, depth+1)
		if err != nil {
			lk.Unlock(w.c)
			t.structMu.RUnlock()
			return err
		}
		for b := 0; b < totalBuckets; b++ {
			w.bumpVersion(seg, b) // odd: readers retry
		}
		for b := 0; b < totalBuckets; b++ {
			bm := t.pool.Load64(w.c, bucketAddr(seg, b)+offBitmap)
			for s := 0; s < slotsPerBucket; s++ {
				if bm&(1<<uint(s)) == 0 {
					continue
				}
				kw := t.pool.Load64(w.c, slotAddr(seg, b, s))
				var kh uint64
				if common.IsInline(kw) {
					var kb [8]byte
					for i := 0; i < 8; i++ {
						kb[i] = byte(common.PayloadOf(kw) >> (8 * i))
					}
					kh = common.HashKey(kb[:])
				} else {
					buf := common.ReadRecord(w.c, t.pool, common.PayloadOf(kw), nil)
					kh = common.HashKey(buf)
				}
				if kh>>(63-depth)&1 == 0 {
					continue
				}
				vw := t.pool.Load64(w.c, slotAddr(seg, b, s)+8)
				fp := fingerprint(kh)
				if !w.placeDuringSplit(newSeg, kh, fp, kw, vw) {
					// Should not happen (same load, double space).
					lk.Unlock(w.c)
					t.structMu.RUnlock()
					return errors.New("dash: split overflow")
				}
				t.pool.Store64(w.c, slotAddr(seg, b, s), 0)
				bmAddr := bucketAddr(seg, b) + offBitmap
				bm = t.pool.Load64(w.c, bmAddr) &^ (1 << uint(s))
				t.pool.Store64(w.c, bmAddr, bm)
			}
		}
		t.pool.Store64(w.c, seg, uint64(depth+1))
		prefix := hash.Prefix(h, depth)
		base := prefix << (m.depth - depth)
		n := uint64(1) << (m.depth - depth)
		for j := n / 2; j < n; j++ {
			t.pool.Store64(w.c, m.addr+(base+j)*8, newSeg)
		}
		for b := 0; b < totalBuckets; b++ {
			w.bumpVersion(seg, b) // even again
		}
		lk.Unlock(w.c)
		t.structMu.RUnlock()
		return nil
	}
}

// placeDuringSplit inserts into a private (not yet published) segment.
func (w *Worker) placeDuringSplit(seg uint64, h uint64, fp byte, kw, vw uint64) bool {
	b1, b2 := targetBuckets(h)
	for _, b := range [2]int{b1, b2} {
		if s := w.freeIn(seg, b); s >= 0 {
			w.putSlot(seg, b, s, fp, kw, vw)
			return true
		}
	}
	for sb := normalBuckets; sb < totalBuckets; sb++ {
		if s := w.freeIn(seg, sb); s >= 0 {
			w.putSlot(seg, sb, s, fp, kw, vw)
			bmAddr := bucketAddr(seg, b1) + offBitmap
			w.t.pool.Store64(w.c, bmAddr, w.t.pool.Load64(w.c, bmAddr)|overflowFlag)
			return true
		}
	}
	return false
}

// double doubles the persistent directory, excluding splits while the
// copy runs.
func (t *Dash) double(w *Worker) {
	t.structMu.Lock()
	defer t.structMu.Unlock()
	m := t.meta.Load()
	if m.depth >= 44 {
		return
	}
	nd, err := t.al.AllocRaw(w.c, 8<<(m.depth+1))
	if err != nil {
		return
	}
	for i := uint64(0); i < 1<<m.depth; i++ {
		e := t.pool.Load64(w.c, m.addr+i*8)
		t.pool.Store64(w.c, nd+2*i*8, e)
		t.pool.Store64(w.c, nd+(2*i+1)*8, e)
	}
	t.meta.Store(&dirMeta{addr: nd, depth: m.depth + 1})
}
