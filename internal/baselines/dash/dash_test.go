package dash

import (
	"testing"

	"spash/internal/indextest"
)

func TestDashConformance(t *testing.T) {
	indextest.Run(t, NewFactory())
}
