// Package halo reimplements Halo (Hu et al., SIGMOD'22): a hybrid
// PMem-DRAM hash index that keeps the entire hash table in DRAM and
// manages key-value entries in log-structured PM.
//
// What drives the paper's comparison:
//
//   - index traversal is pure DRAM (fast reads), but every write
//     appends a PM log record AND invalidates the previous version in
//     place, and periodic snapshots plus log compaction rewrite live
//     records — "notable PM writes for snapshot creations, as well as
//     the creation, invalidation, and reclamation of log entries";
//   - writes serialise on per-shard locks ("its concurrent performance
//     is constrained by its lock-based protocol");
//   - the full DRAM table is why the paper excludes Halo from the
//     large micro-benchmark (DRAM exhaustion) — mirrored here by its
//     Go-map-resident directory;
//   - flush instructions are removed per the paper's methodology.
package halo

import (
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/baselines/common"
	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

const (
	shards = 64
	// logBlockBytes is the allocation unit of the per-shard logs.
	logBlockBytes = 64 << 10
	// snapshotEvery triggers a shard snapshot after this many writes.
	snapshotEvery = 8192
	// validBit marks a live log record; invalidation clears it.
	validBit = uint64(1) << 63
)

type shard struct {
	mu  vsync.RWMutex
	dir map[string]uint64 // key -> record address (DRAM-resident)

	logAddr uint64 // current log block
	logOff  uint64
	live    uint64 // live bytes in this shard's logs
	dead    uint64 // invalidated bytes
	writes  uint64 // since last snapshot
}

// Halo is the index.
type Halo struct {
	pool *pmem.Pool
	al   *alloc.Allocator
	grp  *vsync.Group

	shards [shards]shard

	entries atomic.Int64
}

// New creates a Halo index.
func New(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator) (*Halo, error) {
	t := &Halo{pool: pool, al: al, grp: &vsync.Group{}}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.G = t.grp
		s.dir = make(map[string]uint64)
	}
	return t, nil
}

// NewFactory returns an ixapi factory.
func NewFactory() ixapi.Factory {
	return func(platform pmem.Config) (ixapi.Index, error) {
		pool := pmem.New(platform)
		c := pool.NewCtx()
		al, err := alloc.New(c, pool)
		if err != nil {
			return nil, err
		}
		return New(c, pool, al)
	}
}

// Name implements ixapi.Index.
func (t *Halo) Name() string { return "Halo" }

// Len implements ixapi.Index.
func (t *Halo) Len() int { return int(t.entries.Load()) }

// LoadFactor is not meaningful for a DRAM-resident directory (the
// paper's Fig 9 excludes Halo); reported as 1.
func (t *Halo) LoadFactor() float64 { return 1 }

// Pool implements ixapi.Index.
func (t *Halo) Pool() *pmem.Pool { return t.pool }

// Group implements ixapi.Index.
func (t *Halo) Group() *vsync.Group { return t.grp }

// dramDirCost is the virtual cost of one operation on the full
// DRAM-resident directory: the table is far larger than any cache, so
// a lookup or insert costs a couple of DRAM misses (~80 ns each).
// (Halo's defining trade-off: it buys fast traversal with a DRAM table
// the paper's large datasets eventually exhaust.)
const dramDirCost = 160

// Worker is the per-goroutine handle.
type Worker struct {
	t  *Halo
	c  *pmem.Ctx
	ah *alloc.Handle
}

// NewWorker implements ixapi.Index.
func (t *Halo) NewWorker() ixapi.Worker {
	return &Worker{t: t, c: t.pool.NewCtx(), ah: t.al.NewHandle()}
}

// Ctx implements ixapi.Worker.
func (w *Worker) Ctx() *pmem.Ctx { return w.c }

// Close implements ixapi.Worker.
func (w *Worker) Close() { w.ah.Close() }

func (t *Halo) shardOf(h uint64) *shard { return &t.shards[h>>(64-6)] }

func pad8(n int) int { return (n + 7) &^ 7 }

func recBytes(klen, vlen int) uint64 {
	return uint64(8 + pad8(klen) + pad8(vlen))
}

// appendLog writes a log record [hdr][key][val] and returns its
// address. Caller holds the shard write lock.
func (w *Worker) appendLog(s *shard, key, val []byte) (uint64, error) {
	t := w.t
	n := recBytes(len(key), len(val))
	if s.logAddr == 0 || s.logOff+n > logBlockBytes {
		blk, err := t.al.AllocRaw(w.c, logBlockBytes)
		if err != nil {
			return 0, err
		}
		s.logAddr, s.logOff = blk, 0
	}
	a := s.logAddr + s.logOff
	t.pool.Store64(w.c, a, validBit|uint64(len(key))<<32|uint64(len(val)))
	t.pool.Write(w.c, a+8, key)
	if len(val) > 0 {
		t.pool.Write(w.c, a+8+uint64(pad8(len(key))), val)
	}
	s.logOff += n
	s.live += n
	return a, nil
}

// invalidate clears a record's valid bit — the in-place PM write Halo
// pays on every overwrite and delete.
func (w *Worker) invalidate(s *shard, addr uint64) {
	hdr := w.t.pool.Load64(w.c, addr)
	w.t.pool.Store64(w.c, addr, hdr&^validBit)
	klen, vlen := int(hdr>>32&0x7FFFFFFF), int(hdr&0xFFFFFFFF)
	n := recBytes(klen, vlen)
	s.dead += n
	if s.live >= n {
		s.live -= n
	}
}

// maintain runs snapshotting and compaction policies after a write.
// Caller holds the shard write lock.
func (w *Worker) maintain(s *shard) error {
	s.writes++
	if s.writes >= snapshotEvery {
		s.writes = 0
		w.snapshot(s)
	}
	if s.dead > logBlockBytes && s.dead > s.live {
		return w.compact(s)
	}
	return nil
}

// snapshot persists the DRAM directory to PM (16 bytes per entry) —
// Halo's recovery mechanism and one of its write-amplification
// sources.
func (w *Worker) snapshot(s *shard) {
	t := w.t
	size := uint64(len(s.dir))*16 + 8
	blk, err := t.al.AllocRaw(w.c, size)
	if err != nil {
		return // snapshots are best-effort under memory pressure
	}
	t.pool.Store64(w.c, blk, uint64(len(s.dir)))
	off := uint64(8)
	for k, addr := range s.dir {
		t.pool.Store64(w.c, blk+off, common.HashKey([]byte(k)))
		t.pool.Store64(w.c, blk+off+8, addr)
		off += 16
	}
}

// compact rewrites every live record into fresh log blocks and drops
// the dead space (the log reclamation writes the paper calls out).
func (w *Worker) compact(s *shard) error {
	t := w.t
	old := s.dir
	s.dir = make(map[string]uint64, len(old))
	s.logAddr, s.logOff, s.live, s.dead = 0, 0, 0, 0
	for k, addr := range old {
		hdr := t.pool.Load64(w.c, addr)
		klen, vlen := int(hdr>>32&0x7FFFFFFF), int(hdr&0xFFFFFFFF)
		val := make([]byte, vlen)
		t.pool.Read(w.c, addr+8+uint64(pad8(klen)), val)
		na, err := w.appendLog(s, []byte(k), val)
		if err != nil {
			return err
		}
		s.dir[k] = na
	}
	return nil
}

// Insert implements ixapi.Worker.
func (w *Worker) Insert(key, val []byte) error {
	h := common.HashKey(key)
	s := w.t.shardOf(h)
	s.mu.Lock(w.c)
	defer s.mu.Unlock(w.c)
	w.c.Charge(dramDirCost)
	addr, err := w.appendLog(s, key, val)
	if err != nil {
		return err
	}
	if old, ok := s.dir[string(key)]; ok {
		w.invalidate(s, old)
	} else {
		w.t.entries.Add(1)
	}
	s.dir[string(key)] = addr
	return w.maintain(s)
}

// Update implements ixapi.Worker.
func (w *Worker) Update(key, val []byte) (bool, error) {
	h := common.HashKey(key)
	s := w.t.shardOf(h)
	s.mu.Lock(w.c)
	defer s.mu.Unlock(w.c)
	w.c.Charge(dramDirCost)
	old, ok := s.dir[string(key)]
	if !ok {
		return false, nil
	}
	addr, err := w.appendLog(s, key, val)
	if err != nil {
		return false, err
	}
	w.invalidate(s, old)
	s.dir[string(key)] = addr
	return true, w.maintain(s)
}

// Delete implements ixapi.Worker.
func (w *Worker) Delete(key []byte) (bool, error) {
	h := common.HashKey(key)
	s := w.t.shardOf(h)
	s.mu.Lock(w.c)
	defer s.mu.Unlock(w.c)
	w.c.Charge(dramDirCost)
	old, ok := s.dir[string(key)]
	if !ok {
		return false, nil
	}
	w.invalidate(s, old)
	delete(s.dir, string(key))
	w.t.entries.Add(-1)
	return true, w.maintain(s)
}

// Search implements ixapi.Worker: a DRAM directory hit plus one PM
// record read.
func (w *Worker) Search(key, dst []byte) ([]byte, bool, error) {
	h := common.HashKey(key)
	s := w.t.shardOf(h)
	s.mu.RLock(w.c)
	defer s.mu.RUnlock(w.c)
	w.c.Charge(dramDirCost)
	addr, ok := s.dir[string(key)]
	if !ok {
		return dst, false, nil
	}
	hdr := w.t.pool.Load64(w.c, addr)
	klen, vlen := int(hdr>>32&0x7FFFFFFF), int(hdr&0xFFFFFFFF)
	if vlen < 0 || vlen > common.MaxKVLen {
		return dst, false, nil
	}
	buf := make([]byte, vlen)
	w.t.pool.Read(w.c, addr+8+uint64(pad8(klen)), buf)
	return append(dst, buf...), true, nil
}
