package halo

import (
	"testing"

	"spash/internal/indextest"
)

func TestHaloConformance(t *testing.T) {
	indextest.Run(t, NewFactory())
}
