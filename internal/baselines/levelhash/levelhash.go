// Package levelhash reimplements Level hashing (Zuo et al., OSDI'18):
// a two-level bucketised hash in PM where every key has two candidate
// buckets per level (two hash functions), inserts may displace one
// entry to its alternate bucket, and growth is a full-table rehash
// that turns the old top level into the new bottom level and rehashes
// the old bottom.
//
// The properties that drive the paper's comparison:
//
//   - locks are taken for reads AND writes (the paper's Fig 12c
//     "w/ write & read lock" protocol) and lock words live in PM;
//   - a search may probe up to four buckets spread over two
//     non-contiguous arrays (many XPLine touches, Fig 8);
//   - full-table rehashing makes inserts stall badly (Fig 7b);
//   - flush instructions are removed per the paper's methodology.
package levelhash

import (
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/baselines/common"
	"spash/internal/hash"
	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

const (
	slotsPerBucket = 4
	bucketBytes    = slotsPerBucket * 16
	initLevelBits  = 6 // top starts at 64 buckets
	lockStripes    = 1024
)

// level is one bucket array in PM.
type level struct {
	addr    uint64
	buckets uint64
}

// table is the two-level structure; replaced wholesale on resize.
type table struct {
	top, bottom level
}

// Level is the index.
type Level struct {
	pool *pmem.Pool
	al   *alloc.Allocator
	grp  *vsync.Group

	tab atomic.Pointer[table]

	// locks serialise per key-stripe (Level hashing locks reads and
	// writes alike); the full-table rehash takes every stripe,
	// stalling all operations for its whole duration — exactly the
	// behaviour the paper criticises. lockArr is the PM region whose
	// words absorb the lock-maintenance traffic.
	locks   [lockStripes]vsync.Mutex
	lockArr uint64

	entries atomic.Int64
}

// New creates a Level hashing index.
func New(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator) (*Level, error) {
	t := &Level{pool: pool, al: al, grp: &vsync.Group{}}
	for i := range t.locks {
		t.locks[i].G = t.grp
	}
	la, err := al.AllocRaw(c, lockStripes*8)
	if err != nil {
		return nil, err
	}
	t.lockArr = la
	top, err := t.newLevel(c, 1<<initLevelBits)
	if err != nil {
		return nil, err
	}
	bottom, err := t.newLevel(c, 1<<(initLevelBits-1))
	if err != nil {
		return nil, err
	}
	t.tab.Store(&table{top: top, bottom: bottom})
	return t, nil
}

// NewFactory returns an ixapi factory.
func NewFactory() ixapi.Factory {
	return func(platform pmem.Config) (ixapi.Index, error) {
		pool := pmem.New(platform)
		c := pool.NewCtx()
		al, err := alloc.New(c, pool)
		if err != nil {
			return nil, err
		}
		return New(c, pool, al)
	}
}

func (t *Level) newLevel(c *pmem.Ctx, buckets uint64) (level, error) {
	addr, err := t.al.AllocRaw(c, buckets*bucketBytes)
	if err != nil {
		return level{}, err
	}
	return level{addr: addr, buckets: buckets}, nil
}

// Name implements ixapi.Index.
func (t *Level) Name() string { return "Level" }

// Len implements ixapi.Index.
func (t *Level) Len() int { return int(t.entries.Load()) }

// LoadFactor implements ixapi.Index.
func (t *Level) LoadFactor() float64 {
	tab := t.tab.Load()
	cap := (tab.top.buckets + tab.bottom.buckets) * slotsPerBucket
	return float64(t.entries.Load()) / float64(cap)
}

// Pool implements ixapi.Index.
func (t *Level) Pool() *pmem.Pool { return t.pool }

// Group implements ixapi.Index.
func (t *Level) Group() *vsync.Group { return t.grp }

// Worker is the per-goroutine handle.
type Worker struct {
	t  *Level
	c  *pmem.Ctx
	ah *alloc.Handle
}

// NewWorker implements ixapi.Index.
func (t *Level) NewWorker() ixapi.Worker {
	return &Worker{t: t, c: t.pool.NewCtx(), ah: t.al.NewHandle()}
}

// Ctx implements ixapi.Worker.
func (w *Worker) Ctx() *pmem.Ctx { return w.c }

// Close implements ixapi.Worker.
func (w *Worker) Close() { w.ah.Close() }

// hashes returns the two independent hash values of a key.
func hashes(key []byte) (uint64, uint64) {
	h1 := common.HashKey(key)
	return h1, hash.Sum64Uint64(h1 ^ 0x5bd1e9955bd1e995)
}

func slotAddr(l level, bucket uint64, slot int) uint64 {
	return l.addr + bucket*bucketBytes + uint64(slot)*16
}

// candidates lists the four candidate buckets of a key, top first.
func candidates(tab *table, h1, h2 uint64) [4]struct {
	l level
	b uint64
} {
	return [4]struct {
		l level
		b uint64
	}{
		{tab.top, h1 % tab.top.buckets},
		{tab.top, h2 % tab.top.buckets},
		{tab.bottom, h1 % tab.bottom.buckets},
		{tab.bottom, h2 % tab.bottom.buckets},
	}
}

// locked runs fn with the key's stripe lock held (Level hashing locks
// reads and writes alike). The table pointer is read under the stripe
// lock; the full-table rehash holds every stripe, so fn never observes
// a table mid-rehash.
func (w *Worker) locked(h1 uint64, fn func(tab *table) error) error {
	t := w.t
	lk := &t.locks[h1%lockStripes]
	lk.Lock(w.c)
	common.PMLockTraffic(w.c, t.pool, t.lockArr+h1%lockStripes*8)
	err := fn(t.tab.Load())
	common.PMLockTraffic(w.c, t.pool, t.lockArr+h1%lockStripes*8)
	lk.Unlock(w.c)
	return err
}

// find scans the four candidate buckets for key.
func (w *Worker) find(tab *table, h1, h2 uint64, key []byte) (level, uint64, int, bool) {
	for _, c := range candidates(tab, h1, h2) {
		for s := 0; s < slotsPerBucket; s++ {
			kw := w.t.pool.Load64(w.c, slotAddr(c.l, c.b, s))
			if common.IsOccupied(kw) && common.KeyWordMatches(w.c, w.t.pool, kw, key) {
				return c.l, c.b, s, true
			}
		}
	}
	return level{}, 0, 0, false
}

// Search implements ixapi.Worker.
func (w *Worker) Search(key, dst []byte) ([]byte, bool, error) {
	h1, h2 := hashes(key)
	var out []byte
	found := false
	err := w.locked(h1, func(tab *table) error {
		l, b, s, ok := w.find(tab, h1, h2, key)
		found = ok
		if ok {
			vw := w.t.pool.Load64(w.c, slotAddr(l, b, s)+8)
			out = common.LoadValueWord(w.c, w.t.pool, vw, dst)
		}
		return nil
	})
	if err != nil || !found {
		return dst, false, err
	}
	return out, true, nil
}

// Update implements ixapi.Worker (out-of-place, as in the original).
func (w *Worker) Update(key, val []byte) (bool, error) {
	h1, h2 := hashes(key)
	vp, vi := common.InlinePayload(val)
	if !vi {
		rec, err := common.WriteRecord(w.c, w.t.pool, w.ah, val)
		if err != nil {
			return false, err
		}
		vp = rec
	}
	vw := common.MakeWord(vi, vp)
	found := false
	err := w.locked(h1, func(tab *table) error {
		l, b, s, ok := w.find(tab, h1, h2, key)
		found = ok
		if ok {
			w.t.pool.Store64(w.c, slotAddr(l, b, s)+8, vw)
		}
		return nil
	})
	return found, err
}

// Delete implements ixapi.Worker.
func (w *Worker) Delete(key []byte) (bool, error) {
	h1, h2 := hashes(key)
	found := false
	err := w.locked(h1, func(tab *table) error {
		l, b, s, ok := w.find(tab, h1, h2, key)
		found = ok
		if ok {
			w.t.pool.Store64(w.c, slotAddr(l, b, s), 0)
		}
		return nil
	})
	if err == nil && found {
		w.t.entries.Add(-1)
	}
	return found, err
}

// Insert implements ixapi.Worker (upsert).
func (w *Worker) Insert(key, val []byte) error {
	t := w.t
	h1, h2 := hashes(key)
	kw, vw, _, _, err := common.EncodeKV(w.c, t.pool, w.ah, key, val)
	if err != nil {
		return err
	}
	for {
		inserted := false
		err := w.locked(h1, func(tab *table) error {
			if l, b, s, ok := w.find(tab, h1, h2, key); ok {
				t.pool.Store64(w.c, slotAddr(l, b, s)+8, vw)
				inserted = true
				return nil
			}
			if w.insertAt(tab, h1, h2, kw, vw) {
				t.entries.Add(1)
				inserted = true
			}
			return nil
		})
		if err != nil {
			return err
		}
		if inserted {
			return nil
		}
		if err := t.resize(w, h1); err != nil {
			return err
		}
	}
}

// claimSentinel is an occupied key word that matches no real key (a
// pointer to address 0): it reserves a slot between the claiming CAS
// and the final publication.
const claimSentinel = common.Occupied

// claimSlot atomically claims a free slot: the key word is CASed from
// empty to a reserved sentinel (arbitrating racing inserts of
// different keys, like the original's slot tokens), then the value
// word is written, then the real key word is published. Readers skip
// the sentinel because it matches no key.
func (w *Worker) claimSlot(l level, b uint64, s int, kw, vw uint64) bool {
	t := w.t
	if !t.pool.CAS64(w.c, slotAddr(l, b, s), 0, claimSentinel) {
		return false
	}
	t.pool.Store64(w.c, slotAddr(l, b, s)+8, vw)
	t.pool.Store64(w.c, slotAddr(l, b, s), kw)
	return true
}

// insertAt places (kw, vw) in a free candidate slot, trying one-step
// displacement when all four buckets are full.
func (w *Worker) insertAt(tab *table, h1, h2 uint64, kw, vw uint64) bool {
	t := w.t
	cands := candidates(tab, h1, h2)
	for _, c := range cands {
		for s := 0; s < slotsPerBucket; s++ {
			if !common.IsOccupied(t.pool.Load64(w.c, slotAddr(c.l, c.b, s))) &&
				w.claimSlot(c.l, c.b, s, kw, vw) {
				return true
			}
		}
	}
	// Movement: try to evict one resident of a candidate bucket to its
	// own alternate bucket.
	for _, c := range cands {
		for s := 0; s < slotsPerBucket; s++ {
			okw := t.pool.Load64(w.c, slotAddr(c.l, c.b, s))
			if !common.IsOccupied(okw) || okw == claimSentinel {
				continue // free, or another insert is mid-claim
			}
			ovw := t.pool.Load64(w.c, slotAddr(c.l, c.b, s)+8)
			oh1, oh2 := w.rehashWord(okw)
			// The entry's alternate bucket within the same level.
			alt := oh1 % c.l.buckets
			if alt == c.b {
				alt = oh2 % c.l.buckets
			}
			if alt == c.b {
				continue
			}
			for as := 0; as < slotsPerBucket; as++ {
				if !common.IsOccupied(t.pool.Load64(w.c, slotAddr(c.l, alt, as))) &&
					w.claimSlot(c.l, alt, as, okw, ovw) {
					// The victim now lives in its alternate bucket;
					// its old slot can be repurposed for the new key.
					t.pool.Store64(w.c, slotAddr(c.l, c.b, s)+8, vw)
					t.pool.Store64(w.c, slotAddr(c.l, c.b, s), kw)
					return true
				}
			}
		}
	}
	return false
}

// rehashWord recovers both hashes of a stored key word.
func (w *Worker) rehashWord(kw uint64) (uint64, uint64) {
	var h1 uint64
	if common.IsInline(kw) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(common.PayloadOf(kw) >> (8 * i))
		}
		h1 = common.HashKey(b[:])
	} else {
		buf := common.ReadRecord(w.c, w.t.pool, common.PayloadOf(kw), nil)
		h1 = common.HashKey(buf)
	}
	return h1, hash.Sum64Uint64(h1 ^ 0x5bd1e9955bd1e995)
}

// resize performs the full-table rehash: the old top becomes the new
// bottom and every old-bottom entry is reinserted. It holds the
// structure lock exclusively — the stall the paper attributes to
// level-based resizing.
func (t *Level) resize(w *Worker, h1 uint64) error {
	before := t.tab.Load()
	// Stall the whole table: every stripe lock is held for the full
	// rehash. The caller must not hold its stripe (locked() released
	// it before calling).
	for i := range t.locks {
		t.locks[i].Lock(w.c)
	}
	defer func() {
		for i := range t.locks {
			t.locks[i].Unlock(w.c)
		}
	}()
	old := t.tab.Load()
	if old != before {
		return nil // another thread resized while we waited
	}
	for factor := uint64(2); ; factor *= 2 {
		newTop, err := t.newLevel(w.c, old.top.buckets*factor)
		if err != nil {
			return err
		}
		if t.rehashInto(w, old.bottom, newTop) {
			t.tab.Store(&table{top: newTop, bottom: old.top})
			return nil
		}
		// A bottom entry did not fit even in the doubled top
		// (pathological skew): discard the attempt — the old table is
		// untouched because rehashing writes only into newTop — and
		// retry with a larger top.
	}
}

// rehashInto reinserts every old-bottom entry into the new top level
// (both hash locations land in the new top, as in the original
// algorithm). Returns false if some entry did not fit.
func (t *Level) rehashInto(w *Worker, bottom, newTop level) bool {
	for b := uint64(0); b < bottom.buckets; b++ {
		for s := 0; s < slotsPerBucket; s++ {
			kw := t.pool.Load64(w.c, slotAddr(bottom, b, s))
			if !common.IsOccupied(kw) {
				continue
			}
			vw := t.pool.Load64(w.c, slotAddr(bottom, b, s)+8)
			h1, h2 := w.rehashWord(kw)
			placed := false
			for _, bb := range [2]uint64{h1 % newTop.buckets, h2 % newTop.buckets} {
				for ns := 0; ns < slotsPerBucket && !placed; ns++ {
					if !common.IsOccupied(t.pool.Load64(w.c, slotAddr(newTop, bb, ns))) {
						t.pool.Store64(w.c, slotAddr(newTop, bb, ns)+8, vw)
						t.pool.Store64(w.c, slotAddr(newTop, bb, ns), kw)
						placed = true
					}
				}
				if placed {
					break
				}
			}
			if !placed {
				return false
			}
		}
	}
	return true
}
