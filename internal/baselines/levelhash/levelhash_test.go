package levelhash

import (
	"testing"

	"spash/internal/indextest"
)

func TestLevelConformance(t *testing.T) {
	indextest.Run(t, NewFactory())
}
