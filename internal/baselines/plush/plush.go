// Package plush reimplements Plush (Vogel et al., VLDB'22), the
// write-optimised LSM-style persistent hash table: writes land in a
// DRAM buffer backed by a PM write-ahead log and are flushed in bulk
// into a hierarchy of PM hash-table levels with fanout 16; full levels
// merge downward.
//
// What drives the paper's comparison:
//
//   - inserts are buffered and sequential (fast load phase, Fig 10/11)
//     but every flush and merge rewrites entries, so total PM writes
//     exceed Spash's (Fig 8b);
//   - a lookup walks the buffer and then O(log N) levels, newest
//     first — the worst search cost of all compared systems (Fig 7a);
//   - writes serialise on per-partition locks and the WAL;
//   - deletes are tombstones that persist until they reach the deepest
//     level, so the live-entry count is only settled by merges (Len is
//     approximate, as in any LSM);
//   - flush instructions are removed per the paper's methodology.
package plush

import (
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/baselines/common"
	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

const (
	partitions     = 64
	bufCap         = 512
	walBytes       = 1 << 20
	slotsPerBucket = 4
	bucketBytes    = slotsPerBucket * 16
	level0Buckets  = 256
	fanout         = 16

	// tombstone marks a buffered/stored delete.
	tombstone = uint64(1) << 61
)

type plevel struct {
	addr    uint64
	buckets uint64
}

type bufEnt struct {
	key  []byte
	kw   uint64 // encoded key word (records already written)
	vw   uint64 // value word; ignored when dead
	dead bool
}

type partition struct {
	mu      vsync.RWMutex
	buf     map[string]bufEnt
	walAddr uint64
	walOff  uint64
	levels  []plevel
}

// Plush is the index.
type Plush struct {
	pool *pmem.Pool
	al   *alloc.Allocator
	grp  *vsync.Group

	parts [partitions]partition

	entries atomic.Int64 // approximate (see package doc)
	slots   atomic.Int64 // total level slots, for LoadFactor
}

// New creates a Plush index.
func New(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator) (*Plush, error) {
	t := &Plush{pool: pool, al: al, grp: &vsync.Group{}}
	for i := range t.parts {
		p := &t.parts[i]
		p.mu.G = t.grp
		p.buf = make(map[string]bufEnt, bufCap)
		wal, err := al.AllocRaw(c, walBytes)
		if err != nil {
			return nil, err
		}
		p.walAddr = wal
		l0, err := t.newLevel(c, level0Buckets)
		if err != nil {
			return nil, err
		}
		p.levels = []plevel{l0}
	}
	return t, nil
}

// NewFactory returns an ixapi factory.
func NewFactory() ixapi.Factory {
	return func(platform pmem.Config) (ixapi.Index, error) {
		pool := pmem.New(platform)
		c := pool.NewCtx()
		al, err := alloc.New(c, pool)
		if err != nil {
			return nil, err
		}
		return New(c, pool, al)
	}
}

func (t *Plush) newLevel(c *pmem.Ctx, buckets uint64) (plevel, error) {
	addr, err := t.al.AllocRaw(c, buckets*bucketBytes)
	if err != nil {
		return plevel{}, err
	}
	t.slots.Add(int64(buckets * slotsPerBucket))
	return plevel{addr: addr, buckets: buckets}, nil
}

// Name implements ixapi.Index.
func (t *Plush) Name() string { return "Plush" }

// Len implements ixapi.Index (approximate: tombstones and cross-level
// duplicates settle at merge time).
func (t *Plush) Len() int { return int(t.entries.Load()) }

// LenIsExact reports that Plush's count is approximate; the
// conformance suite skips exact-count assertions.
func (t *Plush) LenIsExact() bool { return false }

// LoadFactor implements ixapi.Index.
func (t *Plush) LoadFactor() float64 {
	s := t.slots.Load()
	if s == 0 {
		return 0
	}
	n := t.entries.Load()
	if n < 0 {
		n = 0
	}
	return float64(n) / float64(s)
}

// Pool implements ixapi.Index.
func (t *Plush) Pool() *pmem.Pool { return t.pool }

// Group implements ixapi.Index.
func (t *Plush) Group() *vsync.Group { return t.grp }

// Worker is the per-goroutine handle.
type Worker struct {
	t  *Plush
	c  *pmem.Ctx
	ah *alloc.Handle
}

// NewWorker implements ixapi.Index.
func (t *Plush) NewWorker() ixapi.Worker {
	return &Worker{t: t, c: t.pool.NewCtx(), ah: t.al.NewHandle()}
}

// Ctx implements ixapi.Worker.
func (w *Worker) Ctx() *pmem.Ctx { return w.c }

// Close implements ixapi.Worker.
func (w *Worker) Close() { w.ah.Close() }

func partOf(h uint64) int { return int(h >> (64 - 6)) }

func slotAddr(l plevel, b uint64, s int) uint64 {
	return l.addr + b*bucketBytes + uint64(s)*16
}

// walAppend logs a write-ahead record for the buffered mutation.
func (w *Worker) walAppend(p *partition, key, val []byte) {
	n := uint64(8 + len(key) + len(val))
	n = (n + 7) &^ 7
	if p.walOff+n > walBytes {
		p.walOff = 0 // wrap: the buffer is flushed long before this in practice
	}
	a := p.walAddr + p.walOff
	w.t.pool.Store64(w.c, a, uint64(len(key))<<32|uint64(len(val)))
	w.t.pool.Write(w.c, a+8, key)
	if len(val) > 0 {
		w.t.pool.Write(w.c, a+8+uint64(len(key)), val)
	}
	p.walOff += n
}

// bufferWrite applies one mutation to the partition buffer, flushing
// it to level 0 when full. Caller holds the partition write lock.
func (w *Worker) bufferWrite(p *partition, key []byte, e bufEnt) error {
	w.c.ChargeDRAM(2)
	p.buf[string(key)] = e
	if len(p.buf) >= bufCap {
		return w.flush(p)
	}
	return nil
}

// Insert implements ixapi.Worker.
func (w *Worker) Insert(key, val []byte) error {
	h := common.HashKey(key)
	p := &w.t.parts[partOf(h)]
	kw, vw, _, _, err := common.EncodeKV(w.c, w.t.pool, w.ah, key, val)
	if err != nil {
		return err
	}
	p.mu.Lock(w.c)
	defer p.mu.Unlock(w.c)
	w.walAppend(p, key, val)
	w.t.entries.Add(1) // approximate: duplicates settle at merges
	if old, ok := p.buf[string(key)]; ok && !old.dead {
		w.t.entries.Add(-1)
	}
	return w.bufferWrite(p, key, bufEnt{key: append([]byte(nil), key...), kw: kw, vw: vw})
}

// Update implements ixapi.Worker (Plush updates are out-of-place
// buffered writes; absent keys are detected by a lookup first).
func (w *Worker) Update(key, val []byte) (bool, error) {
	h := common.HashKey(key)
	p := &w.t.parts[partOf(h)]
	p.mu.Lock(w.c)
	defer p.mu.Unlock(w.c)
	if _, ok := w.lookupLocked(p, h, key, nil); !ok {
		return false, nil
	}
	kw, vw, _, _, err := common.EncodeKV(w.c, w.t.pool, w.ah, key, val)
	if err != nil {
		return false, err
	}
	w.walAppend(p, key, val)
	return true, w.bufferWrite(p, key, bufEnt{key: append([]byte(nil), key...), kw: kw, vw: vw})
}

// Delete implements ixapi.Worker (tombstone).
func (w *Worker) Delete(key []byte) (bool, error) {
	h := common.HashKey(key)
	p := &w.t.parts[partOf(h)]
	p.mu.Lock(w.c)
	defer p.mu.Unlock(w.c)
	if _, ok := w.lookupLocked(p, h, key, nil); !ok {
		return false, nil
	}
	kp, ki := common.InlinePayload(key)
	if !ki {
		rec, err := common.WriteRecord(w.c, w.t.pool, w.ah, key)
		if err != nil {
			return false, err
		}
		kp = rec
	}
	w.walAppend(p, key, nil)
	w.t.entries.Add(-1)
	return true, w.bufferWrite(p, key, bufEnt{key: append([]byte(nil), key...), kw: common.MakeWord(ki, kp) | tombstone, dead: true})
}

// Search implements ixapi.Worker.
func (w *Worker) Search(key, dst []byte) ([]byte, bool, error) {
	h := common.HashKey(key)
	p := &w.t.parts[partOf(h)]
	p.mu.RLock(w.c)
	defer p.mu.RUnlock(w.c)
	out, ok := w.lookupLocked(p, h, key, dst)
	if !ok {
		return dst, false, nil
	}
	return out, true, nil
}

// lookupLocked resolves key under the partition lock: buffer first,
// then every level newest-first (the O(levels) traversal the paper
// highlights).
func (w *Worker) lookupLocked(p *partition, h uint64, key, dst []byte) ([]byte, bool) {
	w.c.ChargeDRAM(2)
	if e, ok := p.buf[string(key)]; ok {
		if e.dead {
			return nil, false
		}
		return common.LoadValueWord(w.c, w.t.pool, e.vw, dst), true
	}
	for _, l := range p.levels {
		b := h % l.buckets
		for s := 0; s < slotsPerBucket; s++ {
			kw := w.t.pool.Load64(w.c, slotAddr(l, b, s))
			if !common.IsOccupied(kw) {
				continue
			}
			if common.KeyWordMatches(w.c, w.t.pool, kw&^tombstone, key) {
				if kw&tombstone != 0 {
					return nil, false
				}
				vw := w.t.pool.Load64(w.c, slotAddr(l, b, s)+8)
				return common.LoadValueWord(w.c, w.t.pool, vw, dst), true
			}
		}
	}
	return nil, false
}

// flush moves the buffer into level 0, cascading merges when levels
// fill, then resets the buffer and the WAL.
func (w *Worker) flush(p *partition) error {
	for _, e := range p.buf {
		if err := w.insertLevel(p, 0, common.HashKey(e.key), e.kw, e.vw); err != nil {
			return err
		}
	}
	p.buf = make(map[string]bufEnt, bufCap)
	p.walOff = 0
	return nil
}

// insertLevel places an entry into level li, replacing an existing
// version of the same key in the target bucket, merging downward when
// the bucket is full. Tombstones are dropped when they reach the
// deepest level with no older version beneath.
func (w *Worker) insertLevel(p *partition, li int, h uint64, kw, vw uint64) error {
	t := w.t
	for {
		l := p.levels[li]
		b := h % l.buckets
		key := w.keyOf(kw)
		free := -1
		for s := 0; s < slotsPerBucket; s++ {
			cur := t.pool.Load64(w.c, slotAddr(l, b, s))
			if !common.IsOccupied(cur) {
				if free < 0 {
					free = s
				}
				continue
			}
			if common.KeyWordMatches(w.c, t.pool, cur&^tombstone, key) {
				// Newer version wins; a tombstone replaces (and keeps
				// shadowing deeper copies).
				t.pool.Store64(w.c, slotAddr(l, b, s)+8, vw)
				t.pool.Store64(w.c, slotAddr(l, b, s), kw)
				return nil
			}
		}
		if kw&tombstone != 0 && li == len(p.levels)-1 {
			// Deepest level and nothing to shadow: drop the tombstone.
			return nil
		}
		if free >= 0 {
			t.pool.Store64(w.c, slotAddr(l, b, free)+8, vw)
			t.pool.Store64(w.c, slotAddr(l, b, free), kw)
			return nil
		}
		// Bucket full: merge this whole level downward, then retry.
		if err := w.mergeDown(p, li); err != nil {
			return err
		}
	}
}

// keyOf materialises the key bytes of a key word.
func (w *Worker) keyOf(kw uint64) []byte {
	kw &^= tombstone
	if common.IsInline(kw) {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(common.PayloadOf(kw) >> (8 * i))
		}
		return b
	}
	return common.ReadRecord(w.c, w.t.pool, common.PayloadOf(kw), nil)
}

// mergeDown rewrites every entry of level li into level li+1 (growing
// the hierarchy when needed) — the bulk PM writes that dominate
// Plush's write amplification.
func (w *Worker) mergeDown(p *partition, li int) error {
	t := w.t
	if li+1 == len(p.levels) {
		nl, err := t.newLevel(w.c, p.levels[li].buckets*fanout)
		if err != nil {
			return err
		}
		p.levels = append(p.levels, nl)
	}
	l := p.levels[li]
	for b := uint64(0); b < l.buckets; b++ {
		for s := 0; s < slotsPerBucket; s++ {
			kw := t.pool.Load64(w.c, slotAddr(l, b, s))
			if !common.IsOccupied(kw) {
				continue
			}
			vw := t.pool.Load64(w.c, slotAddr(l, b, s)+8)
			h := common.HashKey(w.keyOf(kw))
			if err := w.insertLevel(p, li+1, h, kw, vw); err != nil {
				return err
			}
			t.pool.Store64(w.c, slotAddr(l, b, s), 0)
		}
	}
	return nil
}
