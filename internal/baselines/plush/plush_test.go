package plush

import (
	"testing"

	"spash/internal/indextest"
)

func TestPlushConformance(t *testing.T) {
	indextest.Run(t, NewFactory())
}
