// Package btree demonstrates the paper's §V generality claim: "most
// of the design of Spash can be applied to other PM-based indexes
// (e.g., B+-Tree)". It is a persistent B-link tree for the same
// simulated eADR platform, built from the same ingredients as the
// hash index:
//
//   - volatile routing over PM data: a DRAM leaf directory (sorted
//     separator array, in the spirit of NBTree's DRAM inner nodes)
//     over XPLine-sized PM leaves. The directory is only a hint:
//     leaves carry a high key and a next pointer (Lehman/Yao), so an
//     operation that lands left of its target simply hops right inside
//     its transaction — no atomic directory/leaf coupling needed;
//   - HTM-based concurrency: every leaf mutation (including the
//     sorted-shift insert and the leaf split) is one transaction; the
//     transaction's read set covers the words that determine the
//     decision, so conflicting mutations abort and retry — no locks;
//   - adaptive in-place updates: the hash index's Table-I policy,
//     driven by the same hotspot-detector shape;
//   - compacted-flush insertion: small out-of-line value records come
//     from the allocator's XPLine chunks, flushed once per chunk;
//   - crash recovery: the leaf chain starts at a persistent root word,
//     so one chain walk rebuilds the directory and the allocator's
//     live set.
//
// Keys are uint64 in sorted order (range scans — the operation the
// hash index cannot provide); values are arbitrary bytes, inline when
// they fit 48 bits.
package btree

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/baselines/common"
	"spash/internal/htm"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

// Leaf layout (one XPLine):
//
//	word 0: count
//	word 1: next-leaf address (0 = rightmost)
//	word 2: high key (exclusive upper bound; MaxUint64 = unbounded)
//	word 3: reserved
//	words 4..31: 14 slots of [key][value word]
//
// Keys within a leaf are sorted; the value word uses the common
// inline/pointer encoding. No lock, bitmap, or fingerprint metadata:
// durable linearizability comes from the transactions, as in the hash
// index.
const (
	leafBytes = 256
	leafSlots = 14
	offCount  = 0
	offNext   = 8
	offHigh   = 16
	offSlots  = 32
)

const unbounded = ^uint64(0)

// MaxValueLen bounds values.
const MaxValueLen = common.MaxKVLen

// dir is the immutable DRAM leaf directory (a routing hint): seps[i]
// is a lower bound of leaves[i]'s key range.
type dir struct {
	seps   []uint64
	leaves []uint64
}

func (d *dir) find(key uint64) int {
	i := sort.Search(len(d.seps), func(i int) bool { return d.seps[i] > key })
	return i - 1
}

// Tree is the persistent B-link tree.
type Tree struct {
	pool *pmem.Pool
	al   *alloc.Allocator
	tm   *htm.TM
	grp  *vsync.Group

	dir   atomic.Pointer[dir]
	dirMu sync.Mutex // serialises directory-hint rebuilds

	headLeaf uint64

	hot     *hotspot
	entries atomic.Int64
	leaves  atomic.Int64
	splits  atomic.Int64
	hops    atomic.Int64
}

// hotspot is the hash index's detector shape (§III-B), keyed by the
// integer key: 2^12 partitions of two LRU slots.
type hotspot struct {
	parts []uint64
}

const hotParts = 1 << 12

func newHotspot() *hotspot { return &hotspot{parts: make([]uint64, 2*hotParts)} }

func (hs *hotspot) touch(key uint64) bool {
	p := (key * 0x9E3779B97F4A7C15 >> 52) % hotParts * 2
	if atomic.LoadUint64(&hs.parts[p]) == key {
		return true
	}
	if atomic.LoadUint64(&hs.parts[p+1]) == key {
		atomic.StoreUint64(&hs.parts[p+1], atomic.LoadUint64(&hs.parts[p]))
		atomic.StoreUint64(&hs.parts[p], key)
		return true
	}
	atomic.StoreUint64(&hs.parts[p+1], atomic.LoadUint64(&hs.parts[p]))
	atomic.StoreUint64(&hs.parts[p], key)
	return false
}

// New creates a tree on a formatted pool. rootSlot selects the
// allocator root word holding the persistent head-leaf pointer.
func New(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator, rootSlot int) (*Tree, error) {
	t := newTree(pool, al)
	h := al.NewHandle()
	defer h.Close()
	leaf, _, err := h.Alloc(c, leafBytes)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < leafBytes/8; i++ {
		pool.Store64(c, leaf+i*8, 0)
	}
	pool.Store64(c, leaf+offHigh, unbounded)
	t.headLeaf = leaf
	pool.Store64(c, alloc.RootAddr(rootSlot), leaf)
	pool.Flush(c, alloc.RootAddr(rootSlot), 8)
	pool.Fence(c)
	t.dir.Store(&dir{seps: []uint64{0}, leaves: []uint64{leaf}})
	t.leaves.Store(1)
	return t, nil
}

// Recover rebuilds a tree from the persistent leaf chain (and reports
// live blocks to the allocator's mark phase).
func Recover(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator, rootSlot int) (*Tree, error) {
	head := pool.Load64(c, alloc.RootAddr(rootSlot))
	if head == 0 {
		return nil, errors.New("btree: no tree at root slot")
	}
	t := newTree(pool, al)
	t.headLeaf = head
	d := &dir{}
	entries := int64(0)
	for leaf := head; leaf != 0; leaf = pool.Load64(c, leaf+offNext) {
		al.MarkLive(leaf)
		count := int(pool.Load64(c, leaf+offCount))
		sep := uint64(0)
		if len(d.leaves) > 0 && count > 0 {
			sep = pool.Load64(c, leaf+offSlots)
		} else if len(d.leaves) > 0 {
			sep = pool.Load64(c, leaf+offHigh) // empty leaf: use bound
		}
		for s := 0; s < count; s++ {
			vw := pool.Load64(c, slotAddr(leaf, s)+8)
			if !common.IsInline(vw) {
				al.MarkLive(common.PayloadOf(vw))
			}
		}
		d.seps = append(d.seps, sep)
		d.leaves = append(d.leaves, leaf)
		entries += int64(count)
		t.leaves.Add(1)
	}
	d.seps[0] = 0
	t.entries.Store(entries)
	t.dir.Store(d)
	return t, nil
}

func newTree(pool *pmem.Pool, al *alloc.Allocator) *Tree {
	t := &Tree{pool: pool, al: al, grp: &vsync.Group{}, hot: newHotspot()}
	t.tm = htm.New(htm.Config{})
	t.tm.Group = t.grp
	return t
}

// Len returns the number of live keys.
func (t *Tree) Len() int { return int(t.entries.Load()) }

// Leaves returns the leaf count.
func (t *Tree) Leaves() int { return int(t.leaves.Load()) }

// Splits returns the number of leaf splits.
func (t *Tree) Splits() int { return int(t.splits.Load()) }

// Hops returns the number of right-hops taken (directory staleness).
func (t *Tree) Hops() int { return int(t.hops.Load()) }

// Group exposes the serialisation group.
func (t *Tree) Group() *vsync.Group { return t.grp }

func slotAddr(leaf uint64, s int) uint64 { return leaf + offSlots + uint64(s)*16 }
