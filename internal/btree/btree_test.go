package btree

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"spash/internal/alloc"
	"spash/internal/pmem"
)

const testRootSlot = 8

func newTestTree(t testing.TB) (*pmem.Pool, *Tree, *Worker) {
	t.Helper()
	pool := pmem.New(pmem.Config{PoolSize: 128 << 20, CacheSize: 1 << 20})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(c, pool, al, testRootSlot)
	if err != nil {
		t.Fatal(err)
	}
	return pool, tr, tr.NewWorker(c)
}

func v64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestBasicCRUD(t *testing.T) {
	_, tr, w := newTestTree(t)
	if err := w.Insert(42, v64(1)); err != nil {
		t.Fatal(err)
	}
	val, ok, err := w.Get(42, nil)
	if err != nil || !ok || binary.LittleEndian.Uint64(val) != 1 {
		t.Fatalf("get: %v %v %v", val, ok, err)
	}
	if found, err := w.Update(42, v64(2)); err != nil || !found {
		t.Fatalf("update: %v %v", found, err)
	}
	val, _, _ = w.Get(42, nil)
	if binary.LittleEndian.Uint64(val) != 2 {
		t.Fatal("update not visible")
	}
	if found, _ := w.Update(99, v64(0)); found {
		t.Fatal("updated absent key")
	}
	if found, err := w.Delete(42); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, ok, _ := w.Get(42, nil); ok {
		t.Fatal("present after delete")
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestGrowthAndOrder(t *testing.T) {
	_, tr, w := newTestTree(t)
	const n = 30000
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, k := range perm {
		if err := w.Insert(uint64(k), v64(uint64(k*3))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Splits() == 0 {
		t.Fatal("no splits")
	}
	for k := uint64(0); k < n; k++ {
		val, ok, err := w.Get(k, nil)
		if err != nil || !ok || binary.LittleEndian.Uint64(val) != k*3 {
			t.Fatalf("key %d: ok=%v err=%v", k, ok, err)
		}
	}
	// Full ordered scan.
	prev := int64(-1)
	count := 0
	err := w.Scan(0, ^uint64(0), func(k uint64, val []byte) bool {
		if int64(k) <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = int64(k)
		count++
		return true
	})
	if err != nil || count != n {
		t.Fatalf("scan: count=%d err=%v", count, err)
	}
}

func TestRangeScan(t *testing.T) {
	_, _, w := newTestTree(t)
	for k := uint64(0); k < 1000; k += 2 { // even keys
		if err := w.Insert(k, v64(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	w.Scan(101, 199, func(k uint64, val []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 49 || got[0] != 102 || got[len(got)-1] != 198 {
		t.Fatalf("scan [101,199]: %d keys, first %d last %d", len(got), got[0], got[len(got)-1])
	}
	// Early stop.
	n := 0
	w.Scan(0, ^uint64(0), func(k uint64, val []byte) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestVariableValuesAndInPlaceUpdate(t *testing.T) {
	_, _, w := newTestTree(t)
	rng := rand.New(rand.NewSource(2))
	vals := map[uint64][]byte{}
	for k := uint64(0); k < 2000; k++ {
		v := make([]byte, 1+rng.Intn(512))
		rng.Read(v)
		vals[k] = v
		if err := w.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range vals {
		got, ok, _ := w.Get(k, nil)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %d mismatch", k)
		}
	}
	// Updates crossing size classes and in place.
	for k := range vals {
		v := make([]byte, 1+rng.Intn(512))
		rng.Read(v)
		vals[k] = v
		if found, err := w.Update(k, v); err != nil || !found {
			t.Fatalf("update %d: %v %v", k, found, err)
		}
	}
	for k, v := range vals {
		got, ok, _ := w.Get(k, nil)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("after update key %d mismatch", k)
		}
	}
}

func TestConcurrentDisjointInserts(t *testing.T) {
	_, tr, _ := newTestTree(t)
	const workers, per = 6, 4000
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := tr.NewWorker(nil)
			defer w.Close()
			// Interleaved ranges stress the same leaves.
			for i := 0; i < per; i++ {
				k := uint64(i*workers + id)
				if err := w.Insert(k, v64(k)); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("len = %d, want %d", tr.Len(), workers*per)
	}
	w := tr.NewWorker(nil)
	for k := uint64(0); k < workers*per; k++ {
		if _, ok, _ := w.Get(k, nil); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
	// Order survives concurrency.
	prev := int64(-1)
	w.Scan(0, ^uint64(0), func(k uint64, _ []byte) bool {
		if int64(k) <= prev {
			t.Fatalf("out of order after concurrent inserts")
		}
		prev = int64(k)
		return true
	})
}

func TestConcurrentMixed(t *testing.T) {
	_, tr, w0 := newTestTree(t)
	for k := uint64(0); k < 2000; k++ {
		if err := w0.Insert(k, v64(k)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for id := 0; id < 6; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := tr.NewWorker(nil)
			defer w.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(2000))
				switch rng.Intn(3) {
				case 0:
					if _, _, err := w.Get(k, nil); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := w.Update(k, v64(uint64(i))); err != nil {
						t.Error(err)
						return
					}
				default:
					w.Scan(k, k+50, func(uint64, []byte) bool { return true })
				}
			}
		}(id)
	}
	wg.Wait()
}

func TestCrashRecovery(t *testing.T) {
	pool, tr, w := newTestTree(t)
	const n = 15000
	rng := rand.New(rand.NewSource(3))
	for _, k := range rng.Perm(n) {
		var v []byte
		if k%3 == 0 {
			v = bytes.Repeat([]byte{byte(k)}, 100)
		} else {
			v = v64(uint64(k) * 7)
		}
		if err := w.Insert(uint64(k), v); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k += 5 {
		w.Delete(k)
	}
	wantLen := tr.Len()

	if lost := pool.Crash(); lost != 0 {
		t.Fatalf("eADR crash lost %d lines", lost)
	}
	c := pool.NewCtx()
	al, err := alloc.Attach(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Recover(c, pool, al, testRootSlot)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.FinishRecovery(c); err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != wantLen {
		t.Fatalf("recovered len %d, want %d", tr2.Len(), wantLen)
	}
	w2 := tr2.NewWorker(c)
	for k := uint64(0); k < n; k++ {
		val, ok, err := w2.Get(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := k%5 != 0
		if ok != want {
			t.Fatalf("key %d: present=%v want=%v", k, ok, want)
		}
		if ok {
			if k%3 == 0 {
				if len(val) != 100 || val[0] != byte(k) {
					t.Fatalf("key %d: bad value", k)
				}
			} else if binary.LittleEndian.Uint64(val) != k*7 {
				t.Fatalf("key %d: bad inline value", k)
			}
		}
	}
	// Scans work after recovery, and the tree keeps growing.
	count := 0
	w2.Scan(0, ^uint64(0), func(uint64, []byte) bool { count++; return true })
	if count != wantLen {
		t.Fatalf("scan after recovery: %d, want %d", count, wantLen)
	}
	for k := uint64(n); k < n+2000; k++ {
		if err := w2.Insert(k, v64(k)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDirectoryHintStaleness(t *testing.T) {
	_, tr, w := newTestTree(t)
	for k := uint64(0); k < 5000; k++ {
		if err := w.Insert(k, v64(k)); err != nil {
			t.Fatal(err)
		}
	}
	// The hint-based routing with right-hops must have been exercised
	// and settled: lookups remain correct.
	for k := uint64(0); k < 5000; k++ {
		if _, ok, _ := w.Get(k, nil); !ok {
			t.Fatalf("key %d", k)
		}
	}
	t.Logf("splits=%d hops=%d leaves=%d", tr.Splits(), tr.Hops(), tr.Leaves())
}
