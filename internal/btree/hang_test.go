package btree

import (
	"sync"
	"testing"
)

// Regression test: concurrent splits publish their directory hints in
// arbitrary order; an earlier version keyed the hint insert on finding
// the splitting leaf in the directory, so one out-of-order publication
// froze the hint at the growing edge and lookups degraded into
// unbounded right-hop walks. Interleaved sorted inserts from several
// workers reproduce that pattern deterministically.
func TestHintKeepsUpUnderConcurrentSortedInserts(t *testing.T) {
	_, tr, _ := newTestTree(t)
	const sensors, events = 4, 25000
	var wg sync.WaitGroup
	for sensor := 0; sensor < sensors; sensor++ {
		wg.Add(1)
		go func(sensor int) {
			defer wg.Done()
			w := tr.NewWorker(nil)
			defer w.Close()
			payload := make([]byte, 48)
			for i := 0; i < events; i++ {
				ts := uint64(i*sensors + sensor)
				if err := w.Insert(ts, payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(sensor)
	}
	wg.Wait()
	if tr.Len() != sensors*events {
		t.Fatalf("len = %d, want %d", tr.Len(), sensors*events)
	}
	// The routing hint must track the growing edge: hops should be a
	// tiny fraction of splits, not a multiple.
	if tr.Hops() > tr.Splits() {
		t.Fatalf("routing degraded: %d hops for %d splits", tr.Hops(), tr.Splits())
	}
}
