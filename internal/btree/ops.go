package btree

import (
	"errors"

	"spash/internal/alloc"
	"spash/internal/baselines/common"
	"spash/internal/htm"
	"spash/internal/pmem"
)

// Worker is a per-goroutine handle (virtual clock, allocator cache).
type Worker struct {
	t  *Tree
	c  *pmem.Ctx
	ah *alloc.Handle
}

// NewWorker returns a worker handle (nil ctx = fresh context).
func (t *Tree) NewWorker(c *pmem.Ctx) *Worker {
	if c == nil {
		c = t.pool.NewCtx()
	}
	return &Worker{t: t, c: c, ah: t.al.NewHandle()}
}

// Ctx returns the worker's pmem context.
func (w *Worker) Ctx() *pmem.Ctx { return w.c }

// Close releases the worker's caches.
func (w *Worker) Close() { w.ah.Close() }

var errNeedSplit = errors.New("btree: leaf full")

// locate hops right from the directory hint until the leaf whose
// range contains key, all inside the transaction: the traversed count,
// next and high-key words join the read set, so a racing split aborts
// this transaction rather than letting it act on a stale leaf.
func (w *Worker) locate(tx *htm.Txn, key uint64) (leaf uint64, count int) {
	d := w.t.dir.Load()
	leaf = d.leaves[d.find(key)]
	for {
		high := tx.Load(leaf + offHigh)
		if key < high {
			break
		}
		leaf = tx.Load(leaf + offNext)
		w.t.hops.Add(1)
	}
	return leaf, int(tx.Load(leaf + offCount))
}

// findSlot locates key in a sorted leaf; returns the slot, or the
// insertion position with found=false.
func (w *Worker) findSlot(tx *htm.Txn, leaf uint64, key uint64, count int) (int, bool) {
	for s := 0; s < count; s++ {
		k := tx.Load(slotAddr(leaf, s))
		if k == key {
			return s, true
		}
		if k > key {
			return s, false
		}
	}
	return count, false
}

// run retries body until it commits, splitting when it reports a full
// leaf.
func (w *Worker) run(key uint64, body func(tx *htm.Txn) error) error {
	for {
		code, err := w.t.tm.Run(w.c, w.t.pool, body)
		switch code {
		case htm.Committed:
			return nil
		case htm.Explicit:
			if err == errNeedSplit {
				if serr := w.split(key); serr != nil {
					return serr
				}
				continue
			}
			return err
		}
		// Conflict/capacity: retry.
	}
}

// Get returns the value stored under key.
func (w *Worker) Get(key uint64, dst []byte) (val []byte, found bool, err error) {
	err = w.run(key, func(tx *htm.Txn) error {
		found, val = false, dst
		leaf, count := w.locate(tx, key)
		s, ok := w.findSlot(tx, leaf, key, count)
		if !ok {
			return nil
		}
		found = true
		val = loadValue(tx, tx.Load(slotAddr(leaf, s)+8), dst)
		return nil
	})
	return val, found, err
}

// loadValue reads a value word transactionally (in-place updates of
// records are transactional, so the read set protects the bytes).
func loadValue(tx *htm.Txn, vw uint64, dst []byte) []byte {
	if common.IsInline(vw) {
		p := common.PayloadOf(vw)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(p>>(8*i)))
		}
		return dst
	}
	addr := common.PayloadOf(vw)
	n := int(tx.Load(addr))
	if n < 0 || n > MaxValueLen {
		n = 0
	}
	for off := 0; off < n; off += 8 {
		word := tx.Load(addr + 8 + uint64(off))
		for i := 0; i < 8 && off+i < n; i++ {
			dst = append(dst, byte(word>>(8*i)))
		}
	}
	return dst
}

// encodeValue prepares a value word, allocating a record under the
// compacted-flush policy for out-of-line values.
func (w *Worker) encodeValue(val []byte) (uint64, error) {
	if p, ok := common.InlinePayload(val); ok {
		return common.MakeWord(true, p), nil
	}
	addr, filled, err := w.ah.Alloc(w.c, 8+len(val))
	if err != nil {
		return 0, err
	}
	w.t.pool.Store64(w.c, addr, uint64(len(val)))
	w.t.pool.Write(w.c, addr+8, val)
	if filled != 0 {
		w.t.pool.Flush(w.c, filled, pmem.XPLineSize) // compacted-flush
	} else if 8+len(val) > 128 {
		w.t.pool.Flush(w.c, addr, uint64(8+len(val))) // large cold record
	}
	return common.MakeWord(false, addr), nil
}

// Insert stores key→val (upsert), keeping the leaf sorted.
func (w *Worker) Insert(key uint64, val []byte) error {
	if len(val) > MaxValueLen {
		return errors.New("btree: value too large")
	}
	vw, err := w.encodeValue(val)
	if err != nil {
		return err
	}
	inserted := false
	err = w.run(key, func(tx *htm.Txn) error {
		inserted = false
		leaf, count := w.locate(tx, key)
		s, ok := w.findSlot(tx, leaf, key, count)
		if ok {
			tx.Store(slotAddr(leaf, s)+8, vw)
			return nil
		}
		if count == leafSlots {
			return errNeedSplit
		}
		// Shift the tail right to keep the leaf sorted.
		for i := count; i > s; i-- {
			tx.Store(slotAddr(leaf, i), tx.Load(slotAddr(leaf, i-1)))
			tx.Store(slotAddr(leaf, i)+8, tx.Load(slotAddr(leaf, i-1)+8))
		}
		tx.Store(slotAddr(leaf, s), key)
		tx.Store(slotAddr(leaf, s)+8, vw)
		tx.Store(leaf+offCount, uint64(count+1))
		inserted = true
		return nil
	})
	if err != nil {
		return err
	}
	if inserted {
		w.t.entries.Add(1)
	}
	return nil
}

// Update replaces an existing key's value with the adaptive in-place
// policy: same-class records are rewritten in place inside the
// transaction; the flush decision follows Table I.
func (w *Worker) Update(key uint64, val []byte) (bool, error) {
	if len(val) > MaxValueLen {
		return false, errors.New("btree: value too large")
	}
	found := false
	var flushAddr uint64
	var newVW uint64 // lazily allocated replacement record
	err := w.run(key, func(tx *htm.Txn) error {
		found, flushAddr = false, 0
		leaf, count := w.locate(tx, key)
		s, ok := w.findSlot(tx, leaf, key, count)
		if !ok {
			return nil
		}
		found = true
		va := slotAddr(leaf, s) + 8
		vw := tx.Load(va)
		if p, inline := common.InlinePayload(val); inline {
			tx.Store(va, common.MakeWord(true, p))
			return nil
		}
		if !common.IsInline(vw) {
			old := common.PayloadOf(vw)
			oldLen := int(tx.Load(old))
			if oldLen >= 0 && oldLen <= MaxValueLen &&
				alloc.ClassSize(8+oldLen) == alloc.ClassSize(8+len(val)) {
				// In-place, transactional (atomic + durable, §III-B).
				tx.Store(old, uint64(len(val)))
				for off := 0; off < len(val); off += 8 {
					var word uint64
					for i := 0; i < 8 && off+i < len(val); i++ {
						word |= uint64(val[off+i]) << (8 * i)
					}
					tx.Store(old+8+uint64(off), word)
				}
				flushAddr = old
				return nil
			}
		}
		if newVW == 0 {
			v, err := w.encodeValue(val)
			if err != nil {
				return err
			}
			newVW = v
		}
		tx.Store(va, newVW)
		return nil
	})
	if err != nil || !found {
		return false, err
	}
	// Table I: hot or ≤64B → no flush; cold large → async flush.
	if flushAddr != 0 && len(val) > pmem.CachelineSize && !w.t.hot.touch(key) {
		w.t.pool.Flush(w.c, flushAddr, uint64(8+len(val)))
	} else {
		w.t.hot.touch(key)
	}
	return true, nil
}

// Delete removes key, reporting whether it was present. Leaves are
// never merged (like most persistent B+-Trees, deletion leaves slack
// for future inserts).
func (w *Worker) Delete(key uint64) (bool, error) {
	found := false
	err := w.run(key, func(tx *htm.Txn) error {
		found = false
		leaf, count := w.locate(tx, key)
		s, ok := w.findSlot(tx, leaf, key, count)
		if !ok {
			return nil
		}
		found = true
		for i := s; i < count-1; i++ {
			tx.Store(slotAddr(leaf, i), tx.Load(slotAddr(leaf, i+1)))
			tx.Store(slotAddr(leaf, i)+8, tx.Load(slotAddr(leaf, i+1)+8))
		}
		tx.Store(slotAddr(leaf, count-1), 0)
		tx.Store(slotAddr(leaf, count-1)+8, 0)
		tx.Store(leaf+offCount, uint64(count-1))
		return nil
	})
	if err == nil && found {
		w.t.entries.Add(-1)
	}
	return found, err
}

// split divides the full leaf covering key: the upper half moves to a
// fresh right sibling (written privately before the transaction), and
// one transaction rewrites the left leaf's count/high/next — the
// B-link publication point. The directory hint is refreshed afterwards.
func (w *Worker) split(key uint64) error {
	t := w.t
	for {
		// Snapshot the target leaf raw (prep phase).
		var snap [leafBytes / 8]uint64
		d := t.dir.Load()
		leaf := d.leaves[d.find(key)]
		for {
			high := t.pool.Load64(w.c, leaf+offHigh)
			if key < high {
				break
			}
			leaf = t.pool.Load64(w.c, leaf+offNext)
		}
		for i := range snap {
			snap[i] = t.pool.Load64(w.c, leaf+uint64(i)*8)
		}
		count := int(snap[offCount/8])
		if count < leafSlots {
			return nil // someone else split it first
		}
		mid := count / 2
		sepKey := snap[offSlots/8+2*mid]

		right, _, err := w.ah.Alloc(w.c, leafBytes)
		if err != nil {
			return err
		}
		t.pool.Store64(w.c, right+offCount, uint64(count-mid))
		t.pool.Store64(w.c, right+offNext, snap[offNext/8])
		t.pool.Store64(w.c, right+offHigh, snap[offHigh/8])
		t.pool.Store64(w.c, right+24, 0)
		for s := mid; s < count; s++ {
			t.pool.Store64(w.c, slotAddr(right, s-mid), snap[offSlots/8+2*s])
			t.pool.Store64(w.c, slotAddr(right, s-mid)+8, snap[offSlots/8+2*s+1])
		}
		for s := count - mid; s < leafSlots; s++ {
			t.pool.Store64(w.c, slotAddr(right, s), 0)
			t.pool.Store64(w.c, slotAddr(right, s)+8, 0)
		}

		code, _ := t.tm.Run(w.c, t.pool, func(tx *htm.Txn) error {
			for i := range snap {
				if tx.Load(leaf+uint64(i)*8) != snap[i] {
					return errors.New("btree: leaf changed")
				}
			}
			tx.Store(leaf+offCount, uint64(mid))
			tx.Store(leaf+offNext, right)
			tx.Store(leaf+offHigh, sepKey)
			for s := mid; s < count; s++ {
				tx.Store(slotAddr(leaf, s), 0)
				tx.Store(slotAddr(leaf, s)+8, 0)
			}
			return nil
		})
		switch code {
		case htm.Committed:
			// DP2: both leaves are cold XPLine-sized writes.
			t.pool.Flush(w.c, leaf, leafBytes)
			t.pool.Flush(w.c, right, leafBytes)
			t.leaves.Add(1)
			t.splits.Add(1)
			t.refreshDir(sepKey, right)
			return nil
		case htm.Explicit:
			w.ah.Free(w.c, right, leafBytes)
			// Leaf changed: re-examine (it may no longer be full).
		default:
			w.ah.Free(w.c, right, leafBytes)
		}
	}
}

// refreshDir inserts the new (separator, leaf) hint into a
// copy-on-write directory, positioned purely by separator order.
// Keying on the separator (rather than on the splitting leaf) matters:
// concurrent splits publish their hints in arbitrary order, and a hint
// whose left neighbour has not been published yet must still land in
// the right place, or the directory would stop tracking the growing
// edge and lookups would degrade into long right-hop walks.
func (t *Tree) refreshDir(sep uint64, right uint64) {
	t.dirMu.Lock()
	defer t.dirMu.Unlock()
	old := t.dir.Load()
	i := old.find(sep)
	if i >= 0 && old.seps[i] == sep {
		return // already hinted (idempotent)
	}
	nd := &dir{
		seps:   make([]uint64, 0, len(old.seps)+1),
		leaves: make([]uint64, 0, len(old.leaves)+1),
	}
	nd.seps = append(nd.seps, old.seps[:i+1]...)
	nd.leaves = append(nd.leaves, old.leaves[:i+1]...)
	nd.seps = append(nd.seps, sep)
	nd.leaves = append(nd.leaves, right)
	nd.seps = append(nd.seps, old.seps[i+1:]...)
	nd.leaves = append(nd.leaves, old.leaves[i+1:]...)
	t.dir.Store(nd)
}

// Scan visits keys in [from, to] in ascending order, calling fn until
// it returns false. Each leaf is read in its own transaction; the
// B-link chain makes the walk safe against concurrent splits.
func (w *Worker) Scan(from, to uint64, fn func(key uint64, val []byte) bool) error {
	t := w.t
	cur := from
	for {
		type kvPair struct {
			k uint64
			v []byte
		}
		var batch []kvPair
		var next uint64
		var high uint64
		code, _ := t.tm.Run(w.c, t.pool, func(tx *htm.Txn) error {
			batch = batch[:0]
			leaf, count := w.locate(tx, cur)
			next = tx.Load(leaf + offNext)
			high = tx.Load(leaf + offHigh)
			for s := 0; s < count; s++ {
				k := tx.Load(slotAddr(leaf, s))
				if k < cur || k > to {
					continue
				}
				batch = append(batch, kvPair{k, loadValue(tx, tx.Load(slotAddr(leaf, s)+8), nil)})
			}
			return nil
		})
		if code != htm.Committed {
			continue // retry this leaf
		}
		for _, kv := range batch {
			if !fn(kv.k, kv.v) {
				return nil
			}
		}
		if high > to || next == 0 {
			return nil
		}
		cur = high
	}
}
