package core

import (
	"encoding/binary"
	"fmt"

	"spash/internal/hash"
	"spash/internal/pmem"
)

// CheckInvariants scans the whole index and verifies its structural
// invariants. It is meant for tests and debugging; the index must be
// quiescent. Checked:
//
//   - directory well-formedness: every segment is referenced by a
//     contiguous, aligned covering range of 2^(G-depth) entries whose
//     position matches the segment's hash prefix;
//   - registry agreement: each segment's persistent registry entry
//     records exactly that prefix and depth (so recovery would rebuild
//     this directory);
//   - slot placement: every occupied entry hashes to this segment and,
//     if it sits outside its main bucket, a hint in the main bucket
//     points at it with the right overflow fingerprint;
//   - hint hygiene: every valid hint points at an occupied overflow
//     slot homed in that bucket;
//   - the live-entry counter equals the number of occupied slots.
func (ix *Index) CheckInvariants(c *pmem.Ctx) (err error) {
	// Backstop: a poisoned XPLine or CRC-failing key record reached by
	// the scan is an invariant violation to report, not a panic.
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(pmem.AccessError); ok {
				err = fmt.Errorf("unreadable media reached by scan: %w", ae)
				return
			}
			if rf, ok := r.(recordFault); ok {
				err = fmt.Errorf("key record %#x fails its CRC", rf.addr)
				return
			}
			panic(r)
		}
	}()
	d := ix.dir.Load()
	g := d.depth
	m := rawMem{ix.pool, c}

	type segInfo struct {
		first uint64
		count uint64
		depth uint
	}
	segs := map[uint64]*segInfo{}
	for i, e := range d.entries {
		seg := entrySeg(e)
		if seg == 0 {
			return fmt.Errorf("directory entry %#x is nil", i)
		}
		si, ok := segs[seg]
		if !ok {
			segs[seg] = &segInfo{first: uint64(i), count: 1, depth: entryDepth(e)}
			continue
		}
		if entryDepth(e) != si.depth {
			return fmt.Errorf("segment %#x has mixed depths in directory", seg)
		}
		if uint64(i) != si.first+si.count {
			return fmt.Errorf("segment %#x covering range not contiguous", seg)
		}
		si.count++
	}

	total := int64(0)
	for seg, si := range segs {
		want := uint64(1) << (g - si.depth)
		if si.count != want {
			return fmt.Errorf("segment %#x covered by %d entries, want %d", seg, si.count, want)
		}
		if si.first%want != 0 {
			return fmt.Errorf("segment %#x covering range misaligned", seg)
		}
		prefix := si.first >> (g - si.depth)
		re := ix.pool.Load64(c, ix.regAddrOf(seg))
		if re&regValid == 0 {
			return fmt.Errorf("segment %#x missing registry entry", seg)
		}
		if regPrefix(re) != prefix || regDepth(re) != si.depth {
			return fmt.Errorf("segment %#x registry (prefix %#x depth %d) disagrees with directory (prefix %#x depth %d)",
				seg, regPrefix(re), regDepth(re), prefix, si.depth)
		}

		if ix.sealAddr != 0 {
			if bad := ix.verifySeal(m, seg); bad != 0 {
				return fmt.Errorf("segment %#x seal mismatch (bucket mask %#x)", seg, bad)
			}
		}
		n, err := ix.checkSegment(c, m, seg, prefix, si.depth)
		if err != nil {
			return err
		}
		total += n
	}
	if got := ix.entries.Load(); got != total {
		if ix.entriesApprox.Swap(false) {
			// An unreadable segment was quarantined online: its
			// pre-loss occupancy was undiscoverable, so the counter is
			// an estimate by design. This quiescent scan just computed
			// the truth — adopt it.
			ix.entries.Store(total)
		} else {
			return fmt.Errorf("entry counter %d != %d occupied slots", got, total)
		}
	}
	return nil
}

// checkSegment validates one segment's slots and hints, returning the
// occupied-slot count.
func (ix *Index) checkSegment(c *pmem.Ctx, m mem, seg, prefix uint64, depth uint) (int64, error) {
	var kb [8]byte
	count := int64(0)
	for s := 0; s < SlotsPerSegment; s++ {
		kw := m.load(slotAddr(seg, s))
		if !keyOccupied(kw) {
			continue
		}
		count++
		var key []byte
		if keyIsInline(kw) {
			binary.LittleEndian.PutUint64(kb[:], wordPayload(kw))
			key = kb[:]
		} else {
			key = readRecord(m, wordPayload(kw), nil)
		}
		h := hashKey(key)
		if hash.Prefix(h, depth) != prefix {
			return 0, fmt.Errorf("segment %#x slot %d: key routes to prefix %#x, segment owns %#x",
				seg, s, hash.Prefix(h, depth), prefix)
		}
		if keyFP(kw) != hash.KeyFingerprint(h) {
			return 0, fmt.Errorf("segment %#x slot %d: stored fingerprint mismatch", seg, s)
		}
		b := mainBucket(h)
		if bucketOf(s) != b {
			// Overflow entry: a hint in the main bucket must identify it.
			found := false
			for hs := b * SlotsPerBucket; hs < (b+1)*SlotsPerBucket; hs++ {
				hv := m.load(slotAddr(seg, hs) + 8)
				if hintValid(hv) && hintIdx(hv) == s {
					if hintFP(hv) != hash.OverflowFingerprint(h) {
						return 0, fmt.Errorf("segment %#x slot %d: hint fingerprint mismatch", seg, s)
					}
					found = true
				}
			}
			if !found {
				return 0, fmt.Errorf("segment %#x slot %d: overflow entry without hint", seg, s)
			}
		}
		// The entry must be locatable through the public read path.
		r := makeReq(key)
		if idx, _, _, _ := ix.locate(m, c, seg, &r); idx != s {
			return 0, fmt.Errorf("segment %#x slot %d: locate found %d", seg, s, idx)
		}
	}
	// Hint hygiene: every valid hint points at a live overflow entry
	// of its bucket.
	for b := 0; b < BucketsPerSegment; b++ {
		for hs := b * SlotsPerBucket; hs < (b+1)*SlotsPerBucket; hs++ {
			hv := m.load(slotAddr(seg, hs) + 8)
			if !hintValid(hv) {
				continue
			}
			oi := hintIdx(hv)
			okw := m.load(slotAddr(seg, oi))
			if !keyOccupied(okw) {
				return 0, fmt.Errorf("segment %#x bucket %d: dangling hint to slot %d", seg, b, oi)
			}
			if bucketOf(oi) == b {
				return 0, fmt.Errorf("segment %#x bucket %d: hint to non-overflow slot %d", seg, b, oi)
			}
		}
	}
	return count, nil
}
