package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The invariant checker must pass after every kind of structural
// churn: growth through splits and doublings, deletes with merges,
// shrink, and a random mixed history.
func TestInvariantsAfterGrowth(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2})
	for i := uint64(0); i < 30000; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(h.c); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterMixedHistory(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2})
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 40000; step++ {
		id := uint64(rng.Intn(4000))
		var key []byte
		if id%2 == 0 {
			key = k64(id)
		} else {
			key = []byte(fmt.Sprintf("key-%d-%d", id, id%13))
		}
		switch rng.Intn(3) {
		case 0:
			val := make([]byte, 8+rng.Intn(200))
			rng.Read(val)
			if err := h.Insert(key, val); err != nil {
				t.Fatal(err)
			}
		case 1:
			val := make([]byte, 8+rng.Intn(200))
			rng.Read(val)
			if _, err := h.Update(key, val); err != nil {
				t.Fatal(err)
			}
		case 2:
			if _, err := h.Delete(key); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ix.CheckInvariants(h.c); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterMergeAndShrink(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2})
	for i := uint64(0); i < 20000; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 20000; i++ {
		h.Delete(k64(i))
	}
	for i := uint64(0); i < 20000; i += 2 {
		h.TryMerge(k64(i))
	}
	for ix.TryShrink(h.c) {
	}
	if err := ix.CheckInvariants(h.c); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterConcurrentChurn(t *testing.T) {
	ix, h0 := newTestIndex(t, Config{InitialDepth: 1, MaxTxRetries: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := ix.NewHandle(nil)
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint64(w * 10000)
			for i := 0; i < 6000; i++ {
				k := base + uint64(rng.Intn(2000))
				switch rng.Intn(3) {
				case 0, 1:
					if err := h.Insert(k64(k), k64(k)); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := h.Delete(k64(k)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ix.CheckInvariants(h0.c); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterRecovery(t *testing.T) {
	pool, ix, h := openFresh(t, 0, Config{InitialDepth: 2})
	for i := uint64(0); i < 15000; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 15000; i += 3 {
		h.Delete(k64(i))
	}
	if err := ix.CheckInvariants(h.c); err != nil {
		t.Fatalf("pre-crash: %v", err)
	}
	pool.Crash()
	ix2, _, err := Recover(pool.NewCtx(), pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix2.CheckInvariants(ix2.pool.NewCtx()); err != nil {
		t.Fatalf("post-recovery: %v", err)
	}
}
