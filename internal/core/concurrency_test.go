package core

import (
	"encoding/binary"
	"sync"
	"testing"

	"spash/internal/alloc"
	"spash/internal/pmem"
)

// Concurrent disjoint inserts followed by a full verification: no lost
// inserts, no duplicates, across all concurrency modes.
func TestConcurrentDisjointInserts(t *testing.T) {
	for _, mode := range []ConcurrencyMode{ModeHTM, ModeWriteLock, ModeRWLock} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, h0 := newTestIndex(t, Config{Concurrency: mode, InitialDepth: 2, LockStripeBits: 4})
			const workers, per = 8, 3000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := ix.NewHandle(nil)
					defer h.Close()
					for i := 0; i < per; i++ {
						key := uint64(w*per + i)
						if err := h.Insert(k64(key), k64(key*2)); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if got := ix.Len(); got != workers*per {
				t.Fatalf("len = %d, want %d", got, workers*per)
			}
			for i := uint64(0); i < workers*per; i++ {
				v, ok, err := h0.Search(k64(i), nil)
				if err != nil || !ok || binary.LittleEndian.Uint64(v) != i*2 {
					t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
				}
			}
		})
	}
}

// Concurrent updates of a single hot key: the final value must be one
// of the written values and reads must never observe a torn mix
// (values are out-of-line multi-word records, so atomicity is real).
func TestConcurrentHotKeyUpdates(t *testing.T) {
	for _, mode := range []ConcurrencyMode{ModeHTM, ModeWriteLock, ModeRWLock} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, h0 := newTestIndex(t, Config{Concurrency: mode, LockStripeBits: 4})
			key := []byte("the-one-hot-key!")
			mkval := func(tag byte) []byte {
				v := make([]byte, 256)
				for i := range v {
					v[i] = tag
				}
				return v
			}
			if err := h0.Insert(key, mkval(0)); err != nil {
				t.Fatal(err)
			}
			const writers, readers, iters = 4, 3, 1500
			var wwg, rwg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < writers; w++ {
				wwg.Add(1)
				go func(w int) {
					defer wwg.Done()
					h := ix.NewHandle(nil)
					defer h.Close()
					for i := 0; i < iters; i++ {
						if found, err := h.Update(key, mkval(byte(w+1))); err != nil || !found {
							t.Errorf("update: found=%v err=%v", found, err)
							return
						}
					}
				}(w)
			}
			for rd := 0; rd < readers; rd++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					h := ix.NewHandle(nil)
					defer h.Close()
					buf := make([]byte, 0, 256)
					for {
						select {
						case <-stop:
							return
						default:
						}
						v, ok, err := h.Search(key, buf[:0])
						if err != nil || !ok {
							t.Errorf("search: ok=%v err=%v", ok, err)
							return
						}
						if len(v) != 256 {
							t.Errorf("torn read: %d bytes", len(v))
							return
						}
						for i := 1; i < len(v); i++ {
							if v[i] != v[0] {
								t.Errorf("torn read: mixed tags %d/%d", v[0], v[i])
								return
							}
						}
					}
				}()
			}
			wwg.Wait()
			close(stop)
			rwg.Wait()
		})
	}
}

// Mixed concurrent workload over a shared key space with per-worker
// verification of the worker's own last write (monotonic tags).
func TestConcurrentMixedWorkload(t *testing.T) {
	ix, _ := newTestIndex(t, Config{InitialDepth: 2})
	const workers, keys, iters = 6, 500, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := ix.NewHandle(nil)
			defer h.Close()
			rng := uint64(w)*2654435761 + 1
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				key := k64(rng % keys)
				switch rng >> 60 & 3 {
				case 0:
					if err := h.Insert(key, k64(rng)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := h.Update(key, k64(rng)); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := h.Delete(key); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, _, err := h.Search(key, nil); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// The index must still be internally consistent: every present
	// key is findable and Len matches a full enumeration via deletes.
	h := ix.NewHandle(nil)
	defer h.Close()
	count := 0
	for i := uint64(0); i < keys; i++ {
		if _, ok, err := h.Search(k64(i), nil); err != nil {
			t.Fatal(err)
		} else if ok {
			count++
		}
	}
	if count != ix.Len() {
		t.Fatalf("enumerated %d keys, Len() = %d", count, ix.Len())
	}
}

// Concurrent inserts that force splits and directory doublings while
// readers run: exercises collaborative staged doubling.
func TestConcurrentGrowthWithDoubling(t *testing.T) {
	ix, _ := newTestIndex(t, Config{InitialDepth: 1})
	const workers, per = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := ix.NewHandle(nil)
			defer h.Close()
			for i := 0; i < per; i++ {
				key := uint64(w*per + i)
				if err := h.Insert(k64(key), k64(key)); err != nil {
					t.Error(err)
					return
				}
				// Interleave reads of already-inserted keys.
				if i%7 == 0 && i > 0 {
					back := uint64(w*per + i/2)
					if _, ok, err := h.Search(k64(back), nil); err != nil || !ok {
						t.Errorf("readback %d: ok=%v err=%v", back, ok, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := ix.Stats()
	if st.Doubles == 0 {
		t.Fatal("no doubling happened")
	}
	if st.Entries != workers*per {
		t.Fatalf("entries = %d, want %d", st.Entries, workers*per)
	}
	h := ix.NewHandle(nil)
	defer h.Close()
	for i := uint64(0); i < workers*per; i++ {
		if _, ok, _ := h.Search(k64(i), nil); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

// Force the fallback-lock path with a tiny retry budget and heavy
// contention; correctness must hold and fallbacks must be taken.
func TestFallbackPathUnderContention(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 64 << 20})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(c, pool, al, Config{MaxTxRetries: 1, InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := ix.NewHandle(nil)
			defer h.Close()
			for i := 0; i < iters; i++ {
				key := uint64(i % 50) // heavy contention on few keys
				if err := h.Insert(k64(key), k64(uint64(w))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 50 {
		t.Fatalf("len = %d, want 50", ix.Len())
	}
	h := ix.NewHandle(nil)
	for i := uint64(0); i < 50; i++ {
		if _, ok, _ := h.Search(k64(i), nil); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
}

func TestConcurrentDeleteInsertChurn(t *testing.T) {
	ix, _ := newTestIndex(t, Config{InitialDepth: 2})
	const workers, keysPerWorker, rounds = 6, 300, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := ix.NewHandle(nil)
			defer h.Close()
			base := uint64(w * keysPerWorker)
			for r := 0; r < rounds; r++ {
				for i := uint64(0); i < keysPerWorker; i++ {
					if err := h.Insert(k64(base+i), k64(uint64(r))); err != nil {
						t.Error(err)
						return
					}
				}
				for i := uint64(0); i < keysPerWorker; i++ {
					if ok, err := h.Delete(k64(base + i)); err != nil || !ok {
						t.Errorf("round %d delete %d: ok=%v err=%v", r, base+i, ok, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 0 {
		t.Fatalf("len = %d after churn, want 0", ix.Len())
	}
}

var _ = alloc.ClassSize // keep import when tests shrink
