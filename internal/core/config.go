package core

import "spash/internal/obs"

// ConcurrencyMode selects the concurrency-control protocol. The
// default HTM mode is the paper's contribution; the lock modes are the
// ablation variants of Fig 12(c), mirroring the protocols of Dash
// (lock-free reads, per-segment write locks) and Level hashing
// (per-segment locks for reads and writes).
type ConcurrencyMode int

const (
	// ModeHTM is the two-phase HTM protocol with fallback locks.
	ModeHTM ConcurrencyMode = iota
	// ModeWriteLock serialises writers on per-segment-group locks and
	// keeps reads lock-free (optimistic, seqlock-validated).
	ModeWriteLock
	// ModeRWLock takes per-segment-group read-write locks for both
	// reads and writes.
	ModeRWLock
)

func (m ConcurrencyMode) String() string {
	switch m {
	case ModeWriteLock:
		return "write-lock"
	case ModeRWLock:
		return "rw-lock"
	default:
		return "htm"
	}
}

// UpdatePolicy selects the flush strategy for updates (Table I and
// the Fig 12(a) ablations).
type UpdatePolicy int

const (
	// UpdateAdaptive is the paper's policy: no flush for hot entries
	// and for entries ≤ 64 B; an asynchronous flush for cold entries
	// larger than 64 B.
	UpdateAdaptive UpdatePolicy = iota
	// UpdateAlwaysFlush flushes after every update ("in-place update
	// w/ flush" in Fig 12a).
	UpdateAlwaysFlush
	// UpdateNeverFlush never flushes ("in-place update w/o flush").
	UpdateNeverFlush
	// UpdateOracle is UpdateAdaptive with hotness decided by the
	// workload-provided oracle instead of the hotspot detector.
	UpdateOracle
)

func (p UpdatePolicy) String() string {
	switch p {
	case UpdateAlwaysFlush:
		return "in-place w/ flush"
	case UpdateNeverFlush:
		return "in-place w/o flush"
	case UpdateOracle:
		return "adaptive (oracle)"
	default:
		return "adaptive"
	}
}

// InsertPolicy selects how small out-of-line records are placed and
// flushed (§III-C and the Fig 12(b) ablations).
type InsertPolicy int

const (
	// InsertCompactedFlush is the paper's policy: small records
	// (≤128 B) are bump-allocated from per-handle XPLine chunks and
	// each chunk is flushed once, when it fills.
	InsertCompactedFlush InsertPolicy = iota
	// InsertNoCompact models a conventional allocator: every small
	// record occupies its own XPLine-class block and is flushed
	// individually.
	InsertNoCompact
	// InsertCompactNoFlush compacts records into chunks but never
	// flushes them, leaving write-back to random cache eviction.
	InsertCompactNoFlush
)

func (p InsertPolicy) String() string {
	switch p {
	case InsertNoCompact:
		return "no-compaction"
	case InsertCompactNoFlush:
		return "compacted w/o flush"
	default:
		return "compacted-flush"
	}
}

// Config parameterises an index.
type Config struct {
	// InitialDepth is the initial directory depth (2^depth entries,
	// one fine-grained segment each).
	InitialDepth uint

	// Concurrency selects the protocol (default ModeHTM).
	Concurrency ConcurrencyMode

	// Update selects the update flush policy (default UpdateAdaptive).
	Update UpdatePolicy
	// Insert selects the insertion placement policy (default
	// InsertCompactedFlush).
	Insert InsertPolicy

	// PipelineDepth is the number of requests one worker executes in
	// a pipelined manner in batch operations (default 4, the paper's
	// recommended depth; 1 disables pipelining).
	PipelineDepth int

	// HotspotPartitionBits (p) and HotKeysPerPartition (q) size the
	// hotspot detector: 2^p partitions with q LRU keys each. The
	// defaults (12, 2) give the paper's 8K-entry hot-key list.
	HotspotPartitionBits int
	HotKeysPerPartition  int

	// OracleHot, used with UpdateOracle, reports whether a key hash
	// belongs to the workload's true hot set.
	OracleHot func(h uint64) bool

	// MaxTxRetries is the number of HTM conflict aborts tolerated for
	// one operation before taking the per-segment fallback lock.
	MaxTxRetries int

	// PersistBarrier (lock modes only) appends the classic ADR
	// persistence discipline to every write operation: flush the
	// modified bucket's cacheline and fence before returning. Together
	// with ModeWriteLock/ModeRWLock, UpdateAlwaysFlush and
	// InsertNoCompact this approximates how Spash would have to run on
	// a platform without a persistent CPU cache — the configuration
	// the paper's introduction argues against.
	PersistBarrier bool

	// MonolithicResize disables collaborative staged doubling: the
	// directory is doubled stop-the-world (concurrent operations wait
	// out the resize). Ablation knob contrasting the paper's §IV-B
	// design with the traditional approach it replaces.
	MonolithicResize bool

	// LockStripeBits sizes the lock table of the lock-based modes:
	// 2^bits per-segment-group locks.
	LockStripeBits uint

	// Checksums enables self-verifying layout maintenance: a
	// per-segment seal word (four per-bucket CRC32Cs) kept up to date on
	// every write path and validated on every operation, so media
	// corruption (bit rot, torn lines, poison) surfaces as a typed
	// *CorruptionError instead of a wrong answer. Off by default; the
	// write-path overhead is measured by the ext_integrity benchmark.
	// The setting is persistent: Recover adopts it from the pool.
	Checksums bool

	// SpanSample gates per-operation latency-attribution spans: one in
	// every SpanSample operations per worker is traced through the
	// route/probe/htm-retry/media-flush/publish phases and offered to
	// the slow-op log. 0 selects the default (32); negative disables
	// sampling entirely (the unsampled path is allocation-free either
	// way). Ignored when the registry is disabled.
	SpanSample int

	// Obs supplies an externally owned observability registry (shared
	// across indexes, exported over HTTP). Nil with DisableObs false
	// (the default) creates a private registry; see internal/obs.
	Obs *obs.Registry
	// DisableObs turns structural-event accounting off entirely: the
	// index runs with a nil registry and every instrumentation site
	// reduces to a nil check (the overhead baseline of
	// BenchmarkObsOverhead).
	DisableObs bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.InitialDepth == 0 {
		c.InitialDepth = 4
	}
	if c.PipelineDepth == 0 {
		c.PipelineDepth = 4
	}
	if c.HotspotPartitionBits == 0 {
		c.HotspotPartitionBits = 12
	}
	if c.HotKeysPerPartition == 0 {
		c.HotKeysPerPartition = 2
	}
	if c.HotKeysPerPartition > maxHotKeys {
		c.HotKeysPerPartition = maxHotKeys
	}
	if c.MaxTxRetries == 0 {
		c.MaxTxRetries = 8
	}
	if c.SpanSample == 0 {
		c.SpanSample = 32
	}
	if c.LockStripeBits == 0 {
		c.LockStripeBits = 8
	}
	if c.Concurrency != ModeHTM && c.InitialDepth < c.LockStripeBits {
		// Lock-based modes require every lock stripe to cover whole
		// segments (stripe = hash prefix), so the directory must be
		// at least as deep as the stripe table.
		c.InitialDepth = c.LockStripeBits
	}
	return c
}
