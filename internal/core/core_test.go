package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spash/internal/alloc"
	"spash/internal/pmem"
)

func newTestIndex(t testing.TB, cfg Config) (*Index, *Handle) {
	t.Helper()
	pool := pmem.New(pmem.Config{PoolSize: 128 << 20, CacheSize: 1 << 20})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(c, pool, al, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ix.NewHandle(c)
}

func k64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestSlotCodecRoundTrip(t *testing.T) {
	f := func(fp uint16, p uint64, inline bool) bool {
		fp &= 0x1FFF
		p &= payload
		kw := makeKeyWord(inline, fp, p)
		return keyOccupied(kw) && keyIsInline(kw) == inline &&
			keyFP(kw) == fp && wordPayload(kw) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHintCodecRoundTrip(t *testing.T) {
	f := func(ofp uint16, idx uint8, vp uint64, inline bool) bool {
		ofp &= 0x3FF
		slot := int(idx) % SlotsPerSegment
		vp &= payload
		vw := makeValueWord(inline, vp) | makeHint(ofp, slot)
		return hintValid(vw) && hintFP(vw) == ofp && hintIdx(vw) == slot &&
			valueIsInline(vw) == inline && wordPayload(vw) == vp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntryCodec(t *testing.T) {
	e := makeEntry(0x123400, 7)
	if entrySeg(e) != 0x123400 || entryDepth(e) != 7 || entryLocked(e) {
		t.Fatalf("entry decode: seg=%#x depth=%d locked=%v", entrySeg(e), entryDepth(e), entryLocked(e))
	}
	l := e | entryLock
	if !entryLocked(l) || entryUnlock(l) != e {
		t.Fatal("lock bit handling")
	}
}

func TestRegistryCodec(t *testing.T) {
	e := makeRegEntry(0xABC, 12)
	if e&regValid == 0 || regPrefix(e) != 0xABC || regDepth(e) != 12 {
		t.Fatalf("registry decode: %#x", e)
	}
}

func TestInsertSearchInline(t *testing.T) {
	_, h := newTestIndex(t, Config{})
	for i := uint64(0); i < 100; i++ {
		if err := h.Insert(k64(i), k64(i*7)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		v, ok, err := h.Search(k64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		if got := binary.LittleEndian.Uint64(v); got != i*7 {
			t.Fatalf("key %d = %d, want %d", i, got, i*7)
		}
	}
	if _, ok, _ := h.Search(k64(9999), nil); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertGrowsThroughSplitsAndDoubling(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2})
	const n = 50000
	for i := uint64(0); i < n; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.Stats()
	if st.Splits == 0 || st.Doubles == 0 {
		t.Fatalf("expected splits and doublings: %+v", st)
	}
	if st.Entries != n {
		t.Fatalf("entries = %d, want %d", st.Entries, n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := h.Search(k64(i), nil)
		if err != nil || !ok || binary.LittleEndian.Uint64(v) != i {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
	if lf := ix.LoadFactor(); lf < 0.4 {
		t.Fatalf("load factor %.2f too low", lf)
	}
}

func TestUpsertReplaces(t *testing.T) {
	ix, h := newTestIndex(t, Config{})
	key := k64(1)
	if err := h.Insert(key, k64(10)); err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(key, k64(20)); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := h.Search(key, nil)
	if !ok || binary.LittleEndian.Uint64(v) != 20 {
		t.Fatalf("v=%v ok=%v", v, ok)
	}
	if ix.Len() != 1 {
		t.Fatalf("len = %d, want 1", ix.Len())
	}
}

func TestUpdate(t *testing.T) {
	_, h := newTestIndex(t, Config{})
	if found, err := h.Update(k64(5), k64(50)); err != nil || found {
		t.Fatalf("update absent: found=%v err=%v", found, err)
	}
	if err := h.Insert(k64(5), k64(50)); err != nil {
		t.Fatal(err)
	}
	if found, err := h.Update(k64(5), k64(51)); err != nil || !found {
		t.Fatalf("update present: found=%v err=%v", found, err)
	}
	v, ok, _ := h.Search(k64(5), nil)
	if !ok || binary.LittleEndian.Uint64(v) != 51 {
		t.Fatal("update not visible")
	}
}

func TestDelete(t *testing.T) {
	ix, h := newTestIndex(t, Config{})
	for i := uint64(0); i < 1000; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 1000; i += 2 {
		ok, err := h.Delete(k64(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if ok, _ := h.Delete(k64(0)); ok {
		t.Fatal("double delete succeeded")
	}
	for i := uint64(0); i < 1000; i++ {
		_, ok, _ := h.Search(k64(i), nil)
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d: present=%v, want %v", i, ok, want)
		}
	}
	if ix.Len() != 500 {
		t.Fatalf("len = %d", ix.Len())
	}
}

func TestDeleteReinsert(t *testing.T) {
	_, h := newTestIndex(t, Config{})
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 500; i++ {
			if err := h.Insert(k64(i), k64(uint64(round)*1000+i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < 500; i++ {
			if ok, _ := h.Delete(k64(i)); !ok {
				t.Fatalf("round %d: delete %d failed", round, i)
			}
		}
	}
	for i := uint64(0); i < 500; i++ {
		if _, ok, _ := h.Search(k64(i), nil); ok {
			t.Fatalf("key %d present after final delete", i)
		}
	}
}

func TestVariableSizedKV(t *testing.T) {
	_, h := newTestIndex(t, Config{})
	rng := rand.New(rand.NewSource(1))
	type kv struct{ k, v []byte }
	var kvs []kv
	for i := 0; i < 2000; i++ {
		k := make([]byte, 16)
		binary.LittleEndian.PutUint64(k, uint64(i))
		copy(k[8:], "keysuffx")
		v := make([]byte, 1+rng.Intn(1024))
		rng.Read(v)
		kvs = append(kvs, kv{k, v})
		if err := h.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range kvs {
		got, ok, err := h.Search(e.k, nil)
		if err != nil || !ok {
			t.Fatalf("search: ok=%v err=%v", ok, err)
		}
		if !bytes.Equal(got, e.v) {
			t.Fatalf("value mismatch: %d vs %d bytes", len(got), len(e.v))
		}
	}
}

func TestUpdateVariableSizes(t *testing.T) {
	_, h := newTestIndex(t, Config{})
	key := []byte("a-sixteen-b-key!")
	sizes := []int{16, 100, 16, 700, 700, 64, 1024, 8}
	for i, n := range sizes {
		v := bytes.Repeat([]byte{byte(i + 1)}, n)
		if i == 0 {
			if err := h.Insert(key, v); err != nil {
				t.Fatal(err)
			}
		} else if found, err := h.Update(key, v); err != nil || !found {
			t.Fatalf("update %d: found=%v err=%v", i, found, err)
		}
		got, ok, _ := h.Search(key, nil)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("size %d: got %d bytes ok=%v", n, len(got), ok)
		}
	}
}

func TestLargeUint64KeysGoOutOfLine(t *testing.T) {
	_, h := newTestIndex(t, Config{})
	// Keys with the top 16 bits set cannot inline.
	for i := uint64(0); i < 200; i++ {
		k := k64(i | 0xFFFF<<48)
		if err := h.Insert(k, k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		k := k64(i | 0xFFFF<<48)
		v, ok, _ := h.Search(k, nil)
		if !ok || binary.LittleEndian.Uint64(v) != i {
			t.Fatalf("key %d", i)
		}
	}
}

// Model check: a random operation sequence must behave exactly like a
// map.
func TestModelEquivalence(t *testing.T) {
	_, h := newTestIndex(t, Config{InitialDepth: 2})
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 30000; step++ {
		id := uint64(rng.Intn(2000))
		var key []byte
		if id%3 == 0 {
			key = k64(id)
		} else {
			key = []byte(fmt.Sprintf("key-%08d-%d", id, id%7))
		}
		switch rng.Intn(4) {
		case 0:
			val := make([]byte, 8+rng.Intn(120))
			rng.Read(val)
			if err := h.Insert(key, val); err != nil {
				t.Fatal(err)
			}
			model[string(key)] = append([]byte(nil), val...)
		case 1:
			val := make([]byte, 8+rng.Intn(120))
			rng.Read(val)
			found, err := h.Update(key, val)
			if err != nil {
				t.Fatal(err)
			}
			_, want := model[string(key)]
			if found != want {
				t.Fatalf("step %d: update found=%v want %v", step, found, want)
			}
			if found {
				model[string(key)] = append([]byte(nil), val...)
			}
		case 2:
			found, err := h.Delete(key)
			if err != nil {
				t.Fatal(err)
			}
			_, want := model[string(key)]
			if found != want {
				t.Fatalf("step %d: delete found=%v want %v", step, found, want)
			}
			delete(model, string(key))
		case 3:
			got, found, err := h.Search(key, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, wantFound := model[string(key)]
			if found != wantFound || (found && !bytes.Equal(got, want)) {
				t.Fatalf("step %d: search mismatch", step)
			}
		}
	}
	if h.ix.Len() != len(model) {
		t.Fatalf("len %d vs model %d", h.ix.Len(), len(model))
	}
}

func TestLayoutSegmentProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(SlotsPerSegment + 1)
		entries := make([]segEntry, n)
		perBucket := map[int]int{}
		for i := range entries {
			hv := rng.Uint64()
			entries[i] = segEntry{
				kw: makeKeyWord(true, uint16(hv>>3)&0x1FFF, uint64(i)),
				vw: makeValueWord(true, uint64(i)),
				h:  hv,
			}
			perBucket[mainBucket(hv)]++
		}
		img, ok := layoutSegment(entries)
		fits := true
		for _, cnt := range perBucket {
			if cnt > SlotsPerBucket+SlotsPerBucket {
				fits = false
			}
		}
		if !fits {
			if ok {
				t.Fatalf("trial %d: layout accepted overfull bucket", trial)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: layout rejected feasible set (n=%d)", trial, n)
		}
		// Every entry must be present exactly once, and overflow
		// entries must have hints.
		placed := 0
		for s := 0; s < SlotsPerSegment; s++ {
			kw := img[s*2]
			if kw == 0 {
				continue
			}
			placed++
			i := int(wordPayload(kw))
			e := entries[i]
			b := mainBucket(e.h)
			if bucketOf(s) != b {
				hinted := false
				for hs := b * SlotsPerBucket; hs < (b+1)*SlotsPerBucket; hs++ {
					hv := img[hs*2+1]
					if hintValid(hv) && hintIdx(hv) == s {
						hinted = true
					}
				}
				if !hinted {
					t.Fatalf("trial %d: overflow entry without hint", trial)
				}
			}
		}
		if placed != n {
			t.Fatalf("trial %d: placed %d of %d", trial, placed, n)
		}
	}
}

func TestHotspotDetector(t *testing.T) {
	hs := newHotspot(4, 2)
	if hs.touch(42) {
		t.Fatal("first touch reported hot")
	}
	if !hs.touch(42) {
		t.Fatal("second touch not hot")
	}
	if !hs.peek(42) {
		t.Fatal("peek after touches")
	}
	// Evict by churning other keys in the same partition.
	part := uint64(42) >> 60
	churn := 0
	for i := uint64(1); churn < 4; i++ {
		k := i
		if k>>60 == part && k != 42 {
			hs.touch(k)
			churn++
		}
	}
	if hs.peek(42) {
		t.Fatal("key survived LRU eviction")
	}
}

func TestMergeAfterMassDelete(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2})
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := ix.Stats().Segments
	for i := uint64(0); i < n; i++ {
		if ok, _ := h.Delete(k64(i)); !ok {
			t.Fatalf("delete %d", i)
		}
	}
	// Deletions sample merges; sweep explicitly for determinism.
	for i := uint64(0); i < n; i += 4 {
		h.TryMerge(k64(i))
	}
	st := ix.Stats()
	if st.Merges == 0 {
		t.Fatal("no merges happened")
	}
	if st.Segments >= segsBefore {
		t.Fatalf("segments %d did not shrink from %d", st.Segments, segsBefore)
	}
	// Index still behaves.
	for i := uint64(0); i < 100; i++ {
		if err := h.Insert(k64(i), k64(i+1)); err != nil {
			t.Fatal(err)
		}
		v, ok, _ := h.Search(k64(i), nil)
		if !ok || binary.LittleEndian.Uint64(v) != i+1 {
			t.Fatalf("post-merge key %d", i)
		}
	}
}

func TestTryShrink(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2})
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		h.Delete(k64(i))
	}
	for i := uint64(0); i < n; i += 2 {
		h.TryMerge(k64(i))
	}
	before := ix.Depth()
	shrunk := false
	for ix.TryShrink(h.c) {
		shrunk = true
	}
	if !shrunk {
		t.Skip("no shrink possible (all segments still at max depth)")
	}
	if ix.Depth() >= before {
		t.Fatalf("depth %d did not shrink from %d", ix.Depth(), before)
	}
	for i := uint64(0); i < 100; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := h.Search(k64(i), nil); !ok {
			t.Fatalf("post-shrink key %d", i)
		}
	}
}

func TestExecBatchMatchesSequential(t *testing.T) {
	_, h := newTestIndex(t, Config{PipelineDepth: 4})
	const n = 5000
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i] = BatchOp{Kind: OpInsert, Key: k64(uint64(i)), Value: k64(uint64(i * 3))}
	}
	h.ExecBatch(ops)
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatal(ops[i].Err)
		}
	}
	reads := make([]BatchOp, n)
	for i := range reads {
		reads[i] = BatchOp{Kind: OpSearch, Key: k64(uint64(i))}
	}
	h.ExecBatch(reads)
	for i := range reads {
		if !reads[i].Found {
			t.Fatalf("batch search %d not found", i)
		}
		if got := binary.LittleEndian.Uint64(reads[i].Result); got != uint64(i*3) {
			t.Fatalf("batch search %d = %d", i, got)
		}
	}
}

// Pipelined searches must overlap PM read latency. The index is sized
// well beyond the simulated cache so the searched buckets are cold.
func TestPipelineReducesVirtualTime(t *testing.T) {
	run := func(pd int) int64 {
		pool := pmem.New(pmem.Config{PoolSize: 128 << 20, CacheSize: 64 << 10})
		c := pool.NewCtx()
		al, err := alloc.New(c, pool)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Open(c, pool, al, Config{PipelineDepth: pd})
		if err != nil {
			t.Fatal(err)
		}
		h := ix.NewHandle(c)
		const n = 20000
		for i := uint64(0); i < n; i++ {
			if err := h.Insert(k64(i), k64(i)); err != nil {
				t.Fatal(err)
			}
		}
		ops := make([]BatchOp, 3000)
		rng := rand.New(rand.NewSource(11))
		for i := range ops {
			ops[i] = BatchOp{Kind: OpSearch, Key: k64(uint64(rng.Intn(n)))}
		}
		c.ResetClock()
		h.ExecBatch(ops)
		return c.Clock()
	}
	serial := run(1)
	pipelined := run(4)
	if pipelined >= serial {
		t.Fatalf("PD=4 virtual time %d >= PD=1 %d", pipelined, serial)
	}
	if pipelined > serial*3/4 {
		t.Fatalf("pipelining saved too little: %d vs %d", pipelined, serial)
	}
}

func TestLockModesCRUD(t *testing.T) {
	for _, mode := range []ConcurrencyMode{ModeWriteLock, ModeRWLock} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, h := newTestIndex(t, Config{Concurrency: mode, LockStripeBits: 4})
			const n = 20000
			for i := uint64(0); i < n; i++ {
				if err := h.Insert(k64(i), k64(i*2)); err != nil {
					t.Fatal(err)
				}
			}
			if ix.Stats().Splits == 0 {
				t.Fatal("no splits in lock mode")
			}
			for i := uint64(0); i < n; i++ {
				v, ok, err := h.Search(k64(i), nil)
				if err != nil || !ok || binary.LittleEndian.Uint64(v) != i*2 {
					t.Fatalf("key %d: ok=%v", i, ok)
				}
			}
			for i := uint64(0); i < n; i += 2 {
				if found, err := h.Update(k64(i), k64(i*3)); err != nil || !found {
					t.Fatalf("update %d", i)
				}
			}
			for i := uint64(0); i < n; i += 3 {
				h.Delete(k64(i))
			}
			for i := uint64(0); i < n; i++ {
				_, ok, _ := h.Search(k64(i), nil)
				if want := i%3 != 0; ok != want {
					t.Fatalf("key %d: present=%v want=%v", i, ok, want)
				}
			}
		})
	}
}

func TestOpenTwiceFails(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 32 << 20})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(c, pool, al, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(c, pool, al, Config{}); err == nil {
		t.Fatal("second Open succeeded")
	}
}

// Data-carrying merges: buddies with few remaining entries combine
// into one segment, and every surviving key stays reachable.
func TestDataCarryingMerge(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2})
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete 90%, keeping a sparse survivor set spread over segments.
	for i := uint64(0); i < n; i++ {
		if i%10 != 0 {
			h.Delete(k64(i))
		}
	}
	segsBefore := ix.Stats().Segments
	for i := uint64(0); i < n; i += 2 {
		h.TryMerge(k64(i))
	}
	st := ix.Stats()
	if st.Merges == 0 {
		t.Fatal("no data-carrying merges happened")
	}
	if st.Segments >= segsBefore {
		t.Fatalf("segments %d did not shrink from %d", st.Segments, segsBefore)
	}
	for i := uint64(0); i < n; i += 10 {
		v, ok, err := h.Search(k64(i), nil)
		if err != nil || !ok || binary.LittleEndian.Uint64(v) != i {
			t.Fatalf("survivor %d lost after merges (ok=%v)", i, ok)
		}
	}
	if err := ix.CheckInvariants(h.c); err != nil {
		t.Fatal(err)
	}
	if got := ix.Len(); got != n/10 {
		t.Fatalf("len = %d, want %d", got, n/10)
	}
}

// segmentEmpty helper still used by tests and future callers.
func TestSegmentEmptyHelper(t *testing.T) {
	ix, h := newTestIndex(t, Config{})
	m := rawMem{ix.pool, h.c}
	d := ix.dir.Load()
	seg := entrySeg(d.entries[0])
	if !segmentEmpty(m, seg) {
		t.Fatal("fresh segment not empty")
	}
}

// PersistBarrier (legacy-ADR discipline) must actually persist: in
// lock modes on an ADR platform, committed writes survive a crash.
func TestPersistBarrierSurvivesADRCrash(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 128 << 20, CacheSize: 1 << 20, Mode: pmem.ADR})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(c, pool, al, Config{
		Concurrency:    ModeWriteLock,
		Update:         UpdateAlwaysFlush,
		Insert:         InsertNoCompact,
		PersistBarrier: true,
		LockStripeBits: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := ix.NewHandle(c)
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lost := pool.Crash()
	t.Logf("ADR crash rolled back %d unflushed lines", lost)
	ix2, _, err := Recover(pool.NewCtx(), pool, Config{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	h2 := ix2.NewHandle(nil)
	missing := 0
	for i := uint64(0); i < n; i++ {
		if _, ok, _ := h2.Search(k64(i), nil); !ok {
			missing++
		}
	}
	// The barrier persists the slot line; structural metadata
	// (registry, directory roots) is flushed by their own paths. A
	// handful of entries may sit in split-restructured segments whose
	// transactional rewrite was unflushed — the residue that full ADR
	// support would have to log. The bulk must survive.
	if missing > n/10 {
		t.Fatalf("%d/%d inserts lost despite persist barrier", missing, n)
	}
}
