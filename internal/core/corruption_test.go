package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"spash/internal/alloc"
	"spash/internal/pmem"
)

// buildCorruptible formats a pool, populates an index with enough data
// to have several segments and out-of-line records, and returns the
// quiesced pool (eADR, so everything visible is in the backing words).
func buildCorruptible(t *testing.T) *pmem.Pool {
	t.Helper()
	pool := pmem.New(pmem.Config{PoolSize: 16 << 20, CacheSize: 1 << 20, Mode: pmem.EADR})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(c, pool, al, Config{InitialDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := ix.NewHandle(c)
	for i := uint64(0); i < 600; i++ {
		val := k64(i * 3)
		if i%7 == 0 {
			val = bytes.Repeat([]byte{byte(i)}, 90)
		}
		if err := h.Insert(k64(i), val); err != nil {
			t.Fatal(err)
		}
	}
	return pool
}

// regScan returns the indices of valid registry entries.
func regScan(t *testing.T, pool *pmem.Pool) (regAddr uint64, valid []uint64) {
	t.Helper()
	c := pool.NewCtx()
	regAddr = pool.Load64(c, alloc.RootAddr(rootRegistry))
	capEntries := pool.Size() / SegmentSize
	for i := uint64(0); i < capEntries; i++ {
		if pool.Load64(c, regAddr+i*8)&regValid != 0 {
			valid = append(valid, i)
		}
	}
	if len(valid) < 4 {
		t.Fatalf("want several segments to corrupt, have %d", len(valid))
	}
	return regAddr, valid
}

// TestRecoverCorruptedImages is the corruption table: every entry
// mutates a healthy image in a way recovery must diagnose with a
// descriptive error — and must never panic (a panic fails the test
// process outright).
func TestRecoverCorruptedImages(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx)
		wantSub string // substring expected in the error
	}{
		{
			name: "index magic flipped",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				pool.Store64(c, alloc.RootAddr(rootMagic), indexMagic^0xFF)
			},
			wantSub: "does not contain an index",
		},
		{
			name: "allocator magic flipped",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				pool.Store64(c, 64, ^pool.Load64(c, 64))
			},
			wantSub: "not formatted",
		},
		{
			name: "registry pointer nil",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				pool.Store64(c, alloc.RootAddr(rootRegistry), 0)
			},
			wantSub: "registry root pointer is nil",
		},
		{
			name: "registry pointer misaligned",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				p := pool.Load64(c, alloc.RootAddr(rootRegistry))
				pool.Store64(c, alloc.RootAddr(rootRegistry), p|3)
			},
			wantSub: "misaligned",
		},
		{
			name: "registry pointer out of bounds",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				pool.Store64(c, alloc.RootAddr(rootRegistry), pool.Size())
			},
			wantSub: "outside pool data region",
		},
		{
			name: "registry entry with impossible depth",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				regAddr, valid := regScan(t, pool)
				e := pool.Load64(c, regAddr+valid[0]*8)
				pool.Store64(c, regAddr+valid[0]*8, e|uint64(60)<<regDepthShift)
			},
			wantSub: "depth",
		},
		{
			name: "registry entry with prefix beyond its depth",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				regAddr, valid := regScan(t, pool)
				e := pool.Load64(c, regAddr+valid[0]*8)
				d := regDepth(e)
				pool.Store64(c, regAddr+valid[0]*8, makeRegEntry(uint64(1)<<d, d))
			},
			wantSub: "prefix",
		},
		{
			name: "registry entry for segment outside carved space",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				regAddr, valid := regScan(t, pool)
				e := pool.Load64(c, regAddr+valid[0]*8)
				// Re-register the same prefix at the last registry slot,
				// whose segment address is far past the carved region.
				last := pool.Size()/SegmentSize - 1
				pool.Store64(c, regAddr+last*8, e)
			},
			wantSub: "outside carved data",
		},
		{
			name: "duplicate registry entries",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				regAddr, valid := regScan(t, pool)
				e := pool.Load64(c, regAddr+valid[0]*8)
				pool.Store64(c, regAddr+valid[1]*8, e)
			},
			wantSub: "overlap",
		},
		{
			name: "registry coverage gap",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				regAddr, valid := regScan(t, pool)
				pool.Store64(c, regAddr+valid[0]*8, 0)
			},
			wantSub: "gap",
		},
		{
			name: "registry wiped",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				regAddr, valid := regScan(t, pool)
				for _, i := range valid {
					pool.Store64(c, regAddr+i*8, 0)
				}
			},
			wantSub: "registry empty",
		},
		{
			name: "lone impossibly deep entry",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				regAddr, valid := regScan(t, pool)
				for _, i := range valid[1:] {
					pool.Store64(c, regAddr+i*8, 0)
				}
				pool.Store64(c, regAddr+valid[0]*8, makeRegEntry(0, 40))
			},
			wantSub: "impossible",
		},
		{
			name: "allocator directory bogus class size",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				// Directory entries start at 256; entry 0 is the registry
				// raw span. Give it a class size no allocator issues.
				e := pool.Load64(c, 256)
				pool.Store64(c, 256, e|uint64(24)<<32)
			},
			wantSub: "class size",
		},
		{
			name: "allocator directory span overflow",
			corrupt: func(t *testing.T, pool *pmem.Pool, c *pmem.Ctx) {
				e := pool.Load64(c, 256)
				pool.Store64(c, 256, e&^uint64(0xFFFFFFFF)|0xFFFFFFF)
			},
			wantSub: "overflows the pool",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pool := buildCorruptible(t)
			tc.corrupt(t, pool, pool.NewCtx())
			_, _, err := Recover(pool.NewCtx(), pool, Config{})
			if err == nil {
				t.Fatal("Recover accepted a corrupted image")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			t.Logf("diagnosed: %v", err)
		})
	}
}

// TestRecoverTruncatedPool copies a healthy image's prefix into a much
// smaller pool — the recovery-time view of a truncated device file —
// and requires a diagnosis, not a panic.
func TestRecoverTruncatedPool(t *testing.T) {
	pool := buildCorruptible(t)
	small := pmem.New(pmem.Config{PoolSize: 256 << 10, Mode: pmem.EADR})
	c, cs := pool.NewCtx(), small.NewCtx()
	buf := make([]byte, 64<<10)
	for off := uint64(0); off < small.Size(); off += uint64(len(buf)) {
		pool.Read(c, off, buf)
		small.Write(cs, off, buf)
	}
	if _, _, err := Recover(small.NewCtx(), small, Config{}); err == nil {
		t.Fatal("Recover accepted a truncated pool")
	} else {
		t.Logf("diagnosed: %v", err)
	}
}

// TestRecoverRandomCorruption flips random metadata words and asserts
// Recover is total: any outcome is acceptable except a panic or a
// recovered index that fails its own invariant check.
func TestRecoverRandomCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		pool := buildCorruptible(t)
		c := pool.NewCtx()
		// Flip a handful of words across the metadata-heavy low region.
		for i := 0; i < 8; i++ {
			addr := uint64(rng.Intn(1<<20)) &^ 7
			w := pool.Load64(c, addr)
			pool.Store64(c, addr, w^1<<uint(rng.Intn(64)))
		}
		ix, _, err := Recover(pool.NewCtx(), pool, Config{})
		if err != nil {
			continue // diagnosed — fine
		}
		c2 := pool.NewCtx()
		if ierr := ix.CheckInvariants(c2); ierr != nil {
			// A flipped data word recovery cannot see is acceptable as
			// long as the structure itself held together; structural
			// breakage must have been caught above. Only registry/
			// directory-level breakage reaching here is a failure.
			t.Logf("trial %d: recovered with invariant damage: %v", trial, ierr)
		}
	}
}
