package core

import (
	"sync/atomic"

	"spash/internal/hash"
)

// Directory entry encoding (volatile, one uint64 per entry):
//
//	[63 fallback lock][62..56 unused][55..48 local depth][47..8 | 7..0 of segment address]
//
// Segments are 256-byte aligned, so the low 8 bits of the address are
// zero and the local depth is stored there instead; the address
// occupies bits 47..8. Bit 63 is the per-segment fallback lock of the
// two-phase protocol (§IV-A).
const (
	entryLock      = uint64(1) << 63
	entryDepthMask = uint64(0xFF)
	entryAddrMask  = payload &^ entryDepthMask
)

func makeEntry(seg uint64, depth uint) uint64 {
	return seg | uint64(depth)
}

func entrySeg(e uint64) uint64    { return e & entryAddrMask }
func entryDepth(e uint64) uint    { return uint(e & entryDepthMask) }
func entryLocked(e uint64) bool   { return e&entryLock != 0 }
func entryUnlock(e uint64) uint64 { return e &^ entryLock }

// directory is one immutable-size snapshot of the volatile directory.
// Entries are mutated in place (transactionally or under locks); the
// slice itself is replaced only by doubling/halving.
type directory struct {
	entries []uint64
	depth   uint
}

func newDirectory(depth uint) *directory {
	return &directory{entries: make([]uint64, uint64(1)<<depth), depth: depth}
}

// index returns the directory slot for a key hash.
func (d *directory) index(h uint64) uint64 {
	return hash.Prefix(h, d.depth)
}

// entriesPerPartition is the number of directory entries per doubling
// stage: one cacheline worth (§IV-B).
const entriesPerPartition = 8

// doublingState tracks one in-progress collaborative staged doubling.
type doublingState struct {
	old *directory
	new *directory
	// partDone has one word per partition of the old directory:
	// 0 = pending, 1 = copied. Read/written transactionally.
	partDone []uint64
	// next is the next stage the doubling thread will claim;
	// collaborators take specific stages out of order.
	next atomic.Int64
	// halving marks a stop-the-world maintenance resize (TryShrink);
	// concurrent operations wait instead of collaborating.
	halving bool
}

func (ds *doublingState) partitions() int {
	return (len(ds.old.entries) + entriesPerPartition - 1) / entriesPerPartition
}

func (ds *doublingState) partOf(oldIdx uint64) int {
	return int(oldIdx / entriesPerPartition)
}

func (ds *doublingState) partDonePtr(p int) *uint64 { return &ds.partDone[p] }

// resolveRaw returns the authoritative directory entry pointer and its
// current value for hash h — the preparation-phase lookup (step 1).
// During a doubling it follows the paper's rule: partitions already
// copied are served from the new directory, pending ones from the old.
// The result may be stale by the time it is used; the transaction
// phase re-resolves and validates.
func (ix *Index) resolveRaw(h uint64) (*uint64, uint64) {
	for {
		if p, e, ok := ix.resolveRawNoWait(h); ok {
			return p, e
		}
		ix.waitResize()
	}
}

// resolveRawNoWait is resolveRaw except that during a halving it
// reports ok=false instead of blocking — callers that hold a fallback
// lock must use it (and release their lock before waiting) to avoid
// deadlocking against the halving thread's lock-drain phase.
func (ix *Index) resolveRawNoWait(h uint64) (*uint64, uint64, bool) {
	for {
		gen := atomic.LoadUint64(&ix.dirGen)
		if gen&1 == 0 {
			d := ix.dir.Load()
			p := &d.entries[d.index(h)]
			e := atomic.LoadUint64(p)
			if atomic.LoadUint64(&ix.dirGen) != gen {
				continue // resize raced; retry
			}
			return p, e, true
		}
		ds := ix.doubling.Load()
		if ds == nil {
			continue // raced with completion
		}
		if ds.halving {
			return nil, 0, false
		}
		oldIdx := ds.old.index(h)
		var p *uint64
		if atomic.LoadUint64(ds.partDonePtr(ds.partOf(oldIdx))) == 1 {
			p = &ds.new.entries[ds.new.index(h)]
		} else {
			p = &ds.old.entries[oldIdx]
		}
		return p, atomic.LoadUint64(p), true
	}
}

// resolveCanonicalNoWait returns the canonical lock entry (see
// resolveTx) for hash h: the pointer to lock, its current value, and
// the segment address. ok=false during a halving.
func (ix *Index) resolveCanonicalNoWait(h uint64) (cPtr *uint64, centry uint64, seg uint64, ok bool) {
	for {
		gen := atomic.LoadUint64(&ix.dirGen)
		if gen&1 == 0 {
			d := ix.dir.Load()
			idx := d.index(h)
			e := atomic.LoadUint64(&d.entries[idx])
			depth := entryDepth(e)
			if depth > d.depth {
				continue // torn with a resize; retry
			}
			base := idx &^ (uint64(1)<<(d.depth-depth) - 1)
			cPtr = &d.entries[base]
			centry = atomic.LoadUint64(cPtr)
			if atomic.LoadUint64(&ix.dirGen) != gen || entrySeg(centry) != entrySeg(e) {
				continue // raced with a resize or split; retry
			}
			return cPtr, centry, entrySeg(e), true
		}
		ds := ix.doubling.Load()
		if ds == nil {
			continue
		}
		if ds.halving {
			return nil, 0, 0, false
		}
		oldIdx := ds.old.index(h)
		var ptr *uint64
		if atomic.LoadUint64(ds.partDonePtr(ds.partOf(oldIdx))) == 1 {
			ptr = &ds.new.entries[ds.new.index(h)]
		} else {
			ptr = &ds.old.entries[oldIdx]
		}
		e := atomic.LoadUint64(ptr)
		depth := entryDepth(e)
		if depth > ds.old.depth {
			return ptr, e, entrySeg(e), true // own entry is canonical
		}
		cOld := oldIdx &^ (uint64(1)<<(ds.old.depth-depth) - 1)
		if atomic.LoadUint64(ds.partDonePtr(ds.partOf(cOld))) == 1 {
			cPtr = &ds.new.entries[cOld<<1]
		} else {
			cPtr = &ds.old.entries[cOld]
		}
		centry = atomic.LoadUint64(cPtr)
		if entrySeg(centry) != entrySeg(e) {
			continue // raced with a split; retry
		}
		return cPtr, centry, entrySeg(e), true
	}
}

// errRetry signals the caller to restart the operation from the
// preparation phase (the "actively abort and retry" of §IV-A).
type retryError struct{ reason string }

func (e retryError) Error() string { return "core: retry: " + e.reason }

var (
	errSegMoved  = retryError{"segment changed"}
	errLocked    = retryError{"segment fallback-locked"}
	errNeedSplit = retryError{"segment full, split needed"}
	errResizing  = retryError{"directory resize in progress"}
)
