package core

import (
	"runtime"
	"sync/atomic"

	"spash/internal/htm"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// triggerDouble grows the directory via collaborative staged doubling
// (§IV-B). One thread claims the doubling role; the old directory is
// divided into cacheline-sized partitions and each partition is copied
// into the doubled directory by its own small HTM transaction, so no
// transaction approaches the HTM capacity limit. Concurrent operations
// are never blocked: reads consult the partition-progress words to
// pick the old or new directory, and splits copy their own partitions
// (collaborating) before modifying the new directory. Threads that
// lose the race to claim the role simply wait for the resize.
func (ix *Index) triggerDouble(c *pmem.Ctx) {
	if !ix.resizeFlag.CompareAndSwap(0, 1) {
		ix.waitResize()
		return
	}
	if ix.cfg.MonolithicResize {
		// Ablation: traditional stop-the-world doubling. Concurrent
		// operations wait out the whole copy — the blocking the
		// paper's staged design eliminates (§IV-B).
		ix.stopWorldResize(c, func(old *directory) *directory {
			if old.depth >= maxDepth {
				return nil
			}
			nd := newDirectory(old.depth + 1)
			for j := range old.entries {
				// Atomic: late HTM commits may still be storing entries
				// while the resize drains (same as TryShrink's copy).
				e := atomic.LoadUint64(&old.entries[j])
				nd.entries[2*j] = e
				nd.entries[2*j+1] = e
			}
			return nd
		})
		ix.doubles.Add(1)
		ix.reg.Inc(obs.CDoubles)
		return
	}
	old := ix.dir.Load()
	if old.depth >= maxDepth {
		ix.resizeFlag.Store(0)
		return
	}
	ix.reg.Trace(obs.EvDoubleStart, c.Clock(), int64(old.depth), 0)
	ds := &doublingState{
		old: old,
		new: newDirectory(old.depth + 1),
	}
	ds.partDone = make([]uint64, ds.partitions())
	ix.doubling.Store(ds)
	gen := atomic.LoadUint64(&ix.dirGen)
	ix.tm.BumpStoreVol(c, &ix.dirGen, gen+1) // odd: doubling visible

	// The doubling role runs as its own virtual worker: the stage
	// copies execute concurrently with every operation thread (the
	// whole point of §IV-B), so their cost must not land on the
	// triggering operation's clock — it lives on a dedicated context
	// whose clock participates in the run's elapsed time like any
	// other worker's.
	dc := ix.pool.NewCtx()
	parts := int64(ds.partitions())
	for {
		s := ds.next.Add(1) - 1
		if s >= parts {
			break
		}
		ix.copyStage(dc, ds, int(s), false)
	}
	// Collaborators may still be completing stages they claimed.
	for p := 0; p < int(parts); p++ {
		for atomic.LoadUint64(ds.partDonePtr(p)) != 1 {
			ix.pool.CheckLive()
			runtime.Gosched()
		}
	}

	ix.dir.Store(ds.new)
	ix.tm.BumpStoreVol(dc, &ix.dirGen, gen+2) // even: doubling done
	ix.reg.Trace(obs.EvDoubleDone, dc.Clock(), int64(ds.new.depth), parts)
	dc.Release()
	ix.doubling.Store(nil)
	ix.resizeFlag.Store(0)
	ix.doubles.Add(1)
	ix.reg.Inc(obs.CDoubles)
}

// copyStage copies one directory partition from the old to the new
// directory in a single small HTM transaction. Idempotent: concurrent
// helpers racing on the same partition conflict and the losers observe
// partDone. Stages skip (and spin on) fallback-locked entries so a
// lock holder's entry is never silently relocated.
func (ix *Index) copyStage(c *pmem.Ctx, ds *doublingState, part int, collab bool) {
	for {
		code, _ := ix.tm.Run(c, ix.pool, func(tx *htm.Txn) error {
			if tx.LoadVol(ds.partDonePtr(part)) == 1 {
				return nil
			}
			base := part * entriesPerPartition
			end := base + entriesPerPartition
			if end > len(ds.old.entries) {
				end = len(ds.old.entries)
			}
			for j := base; j < end; j++ {
				e := tx.LoadVol(&ds.old.entries[j])
				if entryLocked(e) {
					return errLocked
				}
				tx.StoreVol(&ds.new.entries[2*j], e)
				tx.StoreVol(&ds.new.entries[2*j+1], e)
			}
			tx.StoreVol(ds.partDonePtr(part), 1)
			return nil
		})
		switch code {
		case htm.Committed:
			ix.reg.Inc(obs.CDoublingStages)
			if collab {
				ix.collabStages.Add(1)
				ix.reg.Inc(obs.CCollabStages)
			}
			return
		case htm.Conflict, htm.Capacity:
			if atomic.LoadUint64(ds.partDonePtr(part)) == 1 {
				return
			}
		case htm.Explicit: // errLocked: wait for the fallback holder
			ix.pool.CheckLive()
			runtime.Gosched()
		}
	}
}

// TryShrink halves the directory when every segment's local depth is
// below the global depth. Unlike doubling — which the paper engineers
// to be fully concurrent because it sits on the insert path — halving
// is a maintenance operation here: it briefly quiesces the index
// (concurrent operations wait out the resize) and swaps in the halved
// directory. Returns whether a halving was performed.
func (ix *Index) TryShrink(c *pmem.Ctx) bool {
	if ix.cfg.Concurrency != ModeHTM {
		return ix.tryShrinkLocked(c)
	}
	if !ix.resizeFlag.CompareAndSwap(0, 1) {
		return false
	}
	return ix.stopWorldResize(c, func(old *directory) *directory {
		if old.depth <= 1 {
			return nil
		}
		for i := range old.entries {
			if entryDepth(atomic.LoadUint64(&old.entries[i])) >= old.depth {
				return nil
			}
		}
		nd := newDirectory(old.depth - 1)
		for j := range nd.entries {
			nd.entries[j] = atomic.LoadUint64(&old.entries[2*j])
		}
		return nd
	})
}

// stopWorldResize quiesces the index (in-flight transactions abort on
// the generation word, new operations wait, fallback-lock holders
// drain) and swaps in the directory returned by build (nil = abort the
// resize). The caller must hold resizeFlag; it is released here.
func (ix *Index) stopWorldResize(c *pmem.Ctx, build func(old *directory) *directory) bool {
	start := c.Clock()
	old := ix.dir.Load()
	ds := &doublingState{old: old, new: nil, halving: true}
	ix.doubling.Store(ds)
	gen := atomic.LoadUint64(&ix.dirGen)
	ix.tm.BumpStoreVol(c, &ix.dirGen, gen+1)

	// Wait for fallback-lock holders to drain.
	for {
		clean := true
		for i := range old.entries {
			if entryLocked(atomic.LoadUint64(&old.entries[i])) {
				clean = false
				break
			}
		}
		if clean {
			break
		}
		ix.pool.CheckLive()
		runtime.Gosched()
	}

	nd := build(old)
	if nd != nil {
		// The copy is DRAM work; charge it so the resize has a
		// virtual duration.
		c.ChargeDRAM(len(old.entries) + len(nd.entries))
		ix.dir.Store(nd)
	}
	cost := c.Clock() - start
	ix.lastResizeCost.Store(cost)
	ix.reg.Add(obs.CResizeStallNS, cost)
	newDepth := int64(-1)
	if nd != nil {
		newDepth = int64(nd.depth)
	}
	ix.reg.Trace(obs.EvStopWorld, c.Clock(), newDepth, cost)
	ix.resizeEpoch.Add(1)
	ix.tm.BumpStoreVol(c, &ix.dirGen, gen+2)
	ix.doubling.Store(nil)
	ix.resizeFlag.Store(0)
	return nd != nil
}
