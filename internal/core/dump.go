package core

import (
	"encoding/binary"

	"spash/internal/htm"
	"spash/internal/pmem"
)

// DumpInfo is a structural snapshot of the index, for introspection
// and debugging tools (cmd/spash-dump). Collecting it scans every
// segment; the index should be quiescent.
type DumpInfo struct {
	GlobalDepth uint
	// DepthHistogram[d] is the number of segments with local depth d.
	DepthHistogram []int
	// OccupancyHistogram[k] is the number of segments holding exactly
	// k entries (0..SlotsPerSegment).
	OccupancyHistogram []int
	// OverflowEntries counts entries living outside their main bucket
	// (each carries a hint; the paper reports ~9% of searches touch
	// an overflow bucket).
	OverflowEntries int64
	// KeyRecords/ValueRecords count out-of-line keys and values.
	KeyRecords, ValueRecords int64
	// MaxDepthCount / MaxOccupancyCount are the histogram maxima
	// (rendering convenience).
	MaxDepthCount, MaxOccupancyCount int
	// PoisonedSegments counts segments that could not be scanned
	// because their media is poisoned (uncorrectable); their entries
	// are missing from every other statistic.
	PoisonedSegments int
}

// Dump collects a DumpInfo.
func (ix *Index) Dump(c *pmem.Ctx) DumpInfo {
	d := ix.dir.Load()
	info := DumpInfo{
		GlobalDepth:        d.depth,
		DepthHistogram:     make([]int, d.depth+1),
		OccupancyHistogram: make([]int, SlotsPerSegment+1),
	}
	m := rawMem{ix.pool, c}
	seen := make(map[uint64]bool)
	for _, e := range d.entries {
		seg := entrySeg(e)
		if seen[seg] {
			continue
		}
		seen[seg] = true
		depth := entryDepth(e)
		if int(depth) < len(info.DepthHistogram) {
			info.DepthHistogram[depth]++
		}
		if !dumpSegment(m, seg, &info) {
			info.PoisonedSegments++
		}
	}
	for _, n := range info.DepthHistogram {
		if n > info.MaxDepthCount {
			info.MaxDepthCount = n
		}
	}
	for _, n := range info.OccupancyHistogram {
		if n > info.MaxOccupancyCount {
			info.MaxOccupancyCount = n
		}
	}
	return info
}

// dumpSegment accumulates one segment's statistics, reporting false
// (and counting nothing) when its media is poisoned.
func dumpSegment(m mem, seg uint64, info *DumpInfo) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if ae, pok := r.(pmem.AccessError); pok && ae.Poisoned {
				ok = false
				return
			}
			panic(r)
		}
	}()
	occ := 0
	for s := 0; s < SlotsPerSegment; s++ {
		kw := m.load(slotAddr(seg, s))
		if !keyOccupied(kw) {
			continue
		}
		occ++
		if !keyIsInline(kw) {
			info.KeyRecords++
		}
		vw := m.load(slotAddr(seg, s) + 8)
		if !valueIsInline(vw) {
			info.ValueRecords++
		}
	}
	info.OccupancyHistogram[occ]++
	// Overflow entries: occupied slots referenced by a hint.
	for s := 0; s < SlotsPerSegment; s++ {
		hv := m.load(slotAddr(seg, s) + 8)
		if hintValid(hv) && keyOccupied(m.load(slotAddr(seg, hintIdx(hv)))) {
			info.OverflowEntries++
		}
	}
	return true
}

// ForEach visits every live entry once, calling fn with the key and
// value bytes (valid only during the call). Each segment is read in
// its own transaction, so the visit of one segment is atomic, but the
// iteration as a whole is not a snapshot — concurrent writers may be
// seen or missed, like iterating any live hash table. Returns early if
// fn returns false.
func (ix *Index) ForEach(h *Handle, fn func(key, val []byte) bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(pmem.AccessError); ok && ae.Poisoned {
				err = &CorruptionError{Seg: ae.Addr &^ (SegmentSize - 1), Bucket: -1, Cause: ae}
				return
			}
			panic(r)
		}
	}()
	d := ix.dir.Load()
	seen := make(map[uint64]bool)
	var kb [8]byte
	for _, e := range d.entries {
		seg := entrySeg(e)
		if seen[seg] {
			continue
		}
		seen[seg] = true
		type kvPair struct{ k, v []byte }
		var batch []kvPair
		for {
			code, _ := ix.tm.Run(h.c, ix.pool, func(tx *htm.Txn) error {
				batch = batch[:0]
				m := txMem{tx}
				for s := 0; s < SlotsPerSegment; s++ {
					kw := m.load(slotAddr(seg, s))
					if !keyOccupied(kw) {
						continue
					}
					var key []byte
					if keyIsInline(kw) {
						binary.LittleEndian.PutUint64(kb[:], wordPayload(kw))
						key = append([]byte(nil), kb[:]...)
					} else {
						key = readRecord(m, wordPayload(kw), nil)
					}
					vw := m.load(slotAddr(seg, s) + 8)
					batch = append(batch, kvPair{key, loadValue(m, vw, nil)})
				}
				return nil
			})
			if code == htm.Committed {
				break
			}
			// Conflict/resize: retry this segment. If the directory
			// changed structurally, stale segments abort their reads
			// and re-resolve below.
			if ix.dir.Load() != d {
				// Segment may have been merged away; skip if its
				// registry entry is gone.
				if ix.pool.Load64(h.c, ix.regAddrOf(seg))&regValid == 0 {
					batch = nil
					break
				}
			}
		}
		for _, kv := range batch {
			if !fn(kv.k, kv.v) {
				return nil
			}
		}
	}
	return nil
}
