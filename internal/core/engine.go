package core

import (
	"encoding/binary"

	"spash/internal/hash"
	"spash/internal/pmem"
)

// req is a normalised request key: its hash, the fingerprints derived
// from it, and the inline encoding when the key fits a slot.
type req struct {
	key []byte
	h   uint64
	fp  uint16 // key fingerprint (13 bits)
	ofp uint16 // overflow fingerprint (10 bits)
	// kpay/kInline: the inline payload if the key inlines.
	kpay    uint64
	kInline bool
}

func makeReq(key []byte) req {
	h := hashKey(key)
	r := req{
		key: key,
		h:   h,
		fp:  hash.KeyFingerprint(h),
		ofp: hash.OverflowFingerprint(h),
	}
	r.kpay, r.kInline = inlineKeyPayload(key)
	return r
}

// keyMatches checks whether an occupied key word identifies r's key.
// Fingerprint filtering happens first, so out-of-line key records are
// dereferenced only on a 13-bit fingerprint match (§III-A).
func (ix *Index) keyMatches(c *pmem.Ctx, kw uint64, r *req) bool {
	if keyFP(kw) != r.fp {
		return false
	}
	if keyIsInline(kw) {
		return r.kInline && wordPayload(kw) == r.kpay
	}
	if keyRecordEquals(c, ix.pool, wordPayload(kw), r.key) {
		return true
	}
	if ix.sealAddr != 0 && !recordCRCOK(rawMem{ix.pool, c}, wordPayload(kw)) {
		// The fingerprint matched but the key record neither equals the
		// probe key nor passes its own CRC: the record is rotten, and a
		// plain "no match" could silently turn a present key into
		// not-found. The operation guard converts this to a typed
		// *CorruptionError. (A doomed optimistic reader can also land
		// here via a freed-and-reused record; exec retries conflicts
		// before surfacing errors, so only real corruption persists.)
		panic(recordFault{addr: wordPayload(kw)})
	}
	return false
}

// locate finds r's slot in the segment: the main bucket first, then
// the overflow entries advertised by the bucket's hints. Thanks to the
// every-overflow-entry-has-a-hint invariant, a miss here proves
// absence. Returns the slot index with its current words, or idx = -1,
// plus the number of slot words probed (the probe-length observable).
func (ix *Index) locate(m mem, c *pmem.Ctx, seg uint64, r *req) (idx int, kw, vw uint64, probes int) {
	b := mainBucket(r.h)
	base := b * SlotsPerBucket
	// Main bucket scan.
	for s := base; s < base+SlotsPerBucket; s++ {
		w := m.load(slotAddr(seg, s))
		probes++
		if keyOccupied(w) && ix.keyMatches(c, w, r) {
			return s, w, m.load(slotAddr(seg, s) + 8), probes
		}
	}
	// Hint scan: every overflow entry homed in this bucket has a hint
	// in one of the bucket's four value words.
	for s := base; s < base+SlotsPerBucket; s++ {
		hv := m.load(slotAddr(seg, s) + 8)
		if !hintValid(hv) || hintFP(hv) != r.ofp {
			continue
		}
		oi := hintIdx(hv)
		w := m.load(slotAddr(seg, oi))
		probes++
		if keyOccupied(w) && ix.keyMatches(c, w, r) {
			return oi, w, m.load(slotAddr(seg, oi) + 8), probes
		}
	}
	return -1, 0, 0, probes
}

// findFree picks the slot for a new entry following circular probing
// (§III-A): the main bucket's first free slot, else the first free
// slot of the overflow buckets in circular order — which additionally
// requires a free hint word in the main bucket. It returns the slot
// index, the hint-word slot (-1 when none is needed) and ok=false when
// the segment cannot take the entry (split required).
func findFree(m mem, seg uint64, h uint64) (idx, hintSlot int, ok bool) {
	b := mainBucket(h)
	base := b * SlotsPerBucket
	for s := base; s < base+SlotsPerBucket; s++ {
		if !keyOccupied(m.load(slotAddr(seg, s))) {
			return s, -1, true
		}
	}
	// Main bucket full: find a hint word first.
	hintSlot = -1
	for s := base; s < base+SlotsPerBucket; s++ {
		if !hintValid(m.load(slotAddr(seg, s) + 8)) {
			hintSlot = s
			break
		}
	}
	if hintSlot < 0 {
		return 0, 0, false
	}
	for off := 1; off < BucketsPerSegment; off++ {
		ob := (b + off) % BucketsPerSegment
		for s := ob * SlotsPerBucket; s < (ob+1)*SlotsPerBucket; s++ {
			if !keyOccupied(m.load(slotAddr(seg, s))) {
				return s, hintSlot, true
			}
		}
	}
	return 0, 0, false
}

// placeEntry writes a new entry into slot idx, preserving the target
// value word's hint bits and installing the overflow hint when idx is
// outside the main bucket.
func placeEntry(m mem, seg uint64, idx, hintSlot int, r *req, kw, vwBase uint64) {
	va := slotAddr(seg, idx) + 8
	m.store(va, m.load(va)&hintMask|vwBase)
	m.store(slotAddr(seg, idx), kw)
	if hintSlot >= 0 {
		ha := slotAddr(seg, hintSlot) + 8
		m.store(ha, m.load(ha)&^hintMask|makeHint(r.ofp, idx))
	}
}

// clearEntry removes the entry at slot idx: the key word is zeroed and
// the value word keeps only its hint bits (which belong to the bucket,
// not to this entry). If the entry lived in an overflow bucket, its
// hint in the main bucket is cleared as well.
func clearEntry(m mem, seg uint64, idx int, h uint64) {
	m.store(slotAddr(seg, idx), 0)
	va := slotAddr(seg, idx) + 8
	m.store(va, m.load(va)&hintMask)
	b := mainBucket(h)
	if bucketOf(idx) == b {
		return
	}
	base := b * SlotsPerBucket
	for s := base; s < base+SlotsPerBucket; s++ {
		ha := slotAddr(seg, s) + 8
		hv := m.load(ha)
		if hintValid(hv) && hintIdx(hv) == idx {
			m.store(ha, hv&^hintMask)
			return
		}
	}
}

// segmentEmpty reports whether no slot of the segment is occupied.
func segmentEmpty(m mem, seg uint64) bool {
	for s := 0; s < SlotsPerSegment; s++ {
		if keyOccupied(m.load(slotAddr(seg, s))) {
			return false
		}
	}
	return true
}

// loadValue appends the value identified by vw to dst through m.
func loadValue(m mem, vw uint64, dst []byte) []byte {
	if valueIsInline(vw) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], wordPayload(vw))
		return append(dst, b[:]...)
	}
	return readRecord(m, wordPayload(vw), dst)
}

// segEntry is one decoded live entry of a segment, used by split,
// merge and recovery.
type segEntry struct {
	kw, vw uint64
	h      uint64
}

// decodeSegment collects the live entries of a segment with their key
// hashes (re-hashing inline keys, reading key records raw for
// out-of-line ones).
func (ix *Index) decodeSegment(c *pmem.Ctx, m mem, seg uint64) []segEntry {
	entries := make([]segEntry, 0, SlotsPerSegment)
	var kb [8]byte
	for s := 0; s < SlotsPerSegment; s++ {
		kw := m.load(slotAddr(seg, s))
		if !keyOccupied(kw) {
			continue
		}
		vw := m.load(slotAddr(seg, s) + 8)
		var h uint64
		if keyIsInline(kw) {
			binary.LittleEndian.PutUint64(kb[:], wordPayload(kw))
			h = hashKey(kb[:])
		} else {
			buf := readRecord(rawMem{ix.pool, c}, wordPayload(kw), nil)
			h = hashKey(buf)
		}
		entries = append(entries, segEntry{kw: kw, vw: vw &^ hintMask, h: h})
	}
	return entries
}

// layoutSegment arranges entries into a fresh segment image: each
// entry in its main bucket when possible, overflow entries placed by
// circular probing with hints installed. ok=false when the entries do
// not fit (more than 4+4 entries homed in one bucket, or more than 16
// total).
func layoutSegment(entries []segEntry) (img [SegmentSize / 8]uint64, ok bool) {
	if len(entries) > SlotsPerSegment {
		return img, false
	}
	kwAt := func(i int) *uint64 { return &img[i*2] }
	vwAt := func(i int) *uint64 { return &img[i*2+1] }
	var overflow []segEntry
	for _, e := range entries {
		b := mainBucket(e.h)
		placed := false
		for s := b * SlotsPerBucket; s < (b+1)*SlotsPerBucket; s++ {
			if *kwAt(s) == 0 {
				*kwAt(s) = e.kw
				*vwAt(s) |= e.vw
				placed = true
				break
			}
		}
		if !placed {
			overflow = append(overflow, e)
		}
	}
	for _, e := range overflow {
		b := mainBucket(e.h)
		hintSlot := -1
		for s := b * SlotsPerBucket; s < (b+1)*SlotsPerBucket; s++ {
			if !hintValid(*vwAt(s)) {
				hintSlot = s
				break
			}
		}
		if hintSlot < 0 {
			return img, false
		}
		placed := false
		for off := 1; off < BucketsPerSegment && !placed; off++ {
			ob := (b + off) % BucketsPerSegment
			for s := ob * SlotsPerBucket; s < (ob+1)*SlotsPerBucket; s++ {
				if *kwAt(s) == 0 {
					*kwAt(s) = e.kw
					*vwAt(s) |= e.vw
					*vwAt(hintSlot) |= makeHint(hash.OverflowFingerprint(e.h), s)
					placed = true
					break
				}
			}
		}
		if !placed {
			return img, false
		}
	}
	return img, true
}
