package core

import (
	"fmt"

	"spash/internal/hash"
	"spash/internal/pmem"
)

// Sealed-segment export: the read side of replication shipping
// (internal/repl). A primary ships whole hash ranges — a fresh
// replica's full sync, or the authoritative copy of a range a peer
// quarantined — and the export contract is the same trust rule the
// salvage path enforces: a segment's records leave the device only
// after the segment verifies against its seal, so a replica can never
// be seeded from silently rotten data.

// rangeIntersects reports whether the hash ranges (p1,d1) and (p2,d2)
// — each "all hashes whose top d bits equal p" — overlap. Extendible
// ranges are nested or disjoint: they overlap iff the shallower prefix
// is a prefix of the deeper one.
func rangeIntersects(p1 uint64, d1 uint, p2 uint64, d2 uint) bool {
	if d1 > d2 {
		return p1>>(d1-d2) == p2
	}
	return p2>>(d2-d1) == p1
}

// ExportRange streams every live key-value pair whose hash prefix at
// the given depth equals prefix, in segment order. Every contributing
// segment is verified (seal, routing, record CRCs) before any of its
// records are decoded; a segment that fails verification aborts the
// export with a *CorruptionError — damaged ranges must be repaired
// (Quarantine) before they can ship, never forwarded. depth 0 exports
// the whole index. The index must be quiescent (same contract as
// Fsck); fn's slices are only valid during the callback.
func (ix *Index) ExportRange(c *pmem.Ctx, prefix uint64, depth uint, fn func(key, val []byte) error) error {
	m := rawMem{ix.pool, c}
	for i := uint64(0); i < ix.registryCap; i++ {
		e, rok := loadTolerant(ix, c, ix.registryAddr+i*8)
		if !rok {
			return &CorruptionError{Seg: i * SegmentSize, Bucket: -1,
				Cause: fmt.Errorf("registry frame unreadable: %w", pmem.ErrPoisoned)}
		}
		if e&regValid == 0 {
			continue
		}
		seg, p, d := i*SegmentSize, regPrefix(e), regDepth(e)
		if !rangeIntersects(p, d, prefix, depth) {
			continue
		}
		if f := ix.verifySegment(c, seg, p, d); f != nil {
			return &CorruptionError{Seg: seg, Bucket: firstBadBucket(f.BadBuckets),
				Cause: fmt.Errorf("refusing to export unverified segment: %s", f.Cause)}
		}
		if err := exportSegment(m, seg, prefix, depth, fn); err != nil {
			return err
		}
	}
	return nil
}

// exportSegment decodes one seal-verified segment's live slots and
// feeds the pairs inside the requested range to fn. Verification has
// already proven every occupied slot decodable and CRC-clean, so a
// residual access fault here (a racing writer would violate the
// quiescence contract) surfaces as a CorruptionError via the caller's
// verify pass on the next attempt rather than a panic: reads go
// through the tolerant decoders.
func exportSegment(m mem, seg uint64, prefix uint64, depth uint, fn func(key, val []byte) error) error {
	for s := 0; s < SlotsPerSegment; s++ {
		kw := m.load(slotAddr(seg, s))
		if !keyOccupied(kw) {
			continue
		}
		key, ok := decodeSlotKeyTolerant(m, kw)
		if !ok {
			return &CorruptionError{Seg: seg, Bucket: bucketOf(s), Cause: ErrRecordChecksum}
		}
		if hash.Prefix(hashKey(key), depth) != prefix {
			continue
		}
		vw := m.load(slotAddr(seg, s)+8) &^ hintMask
		if !valueIsInline(vw) && !recordCRCOKTolerant(m, wordPayload(vw)) {
			return &CorruptionError{Seg: seg, Bucket: bucketOf(s), Cause: ErrRecordChecksum}
		}
		if err := fn(key, loadValue(m, vw, nil)); err != nil {
			return err
		}
	}
	return nil
}
