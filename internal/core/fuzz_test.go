package core

import (
	"bytes"
	"testing"

	"spash/internal/alloc"
	"spash/internal/pmem"
)

// FuzzInsertSearchDelete drives the index with arbitrary key/value
// bytes; the seed corpus runs in every normal `go test`, and
// `go test -fuzz=FuzzInsertSearchDelete ./internal/core` explores
// further.
func FuzzInsertSearchDelete(f *testing.F) {
	f.Add([]byte("key"), []byte("value"))
	f.Add([]byte{0}, []byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xFF}, 8), bytes.Repeat([]byte{0xAA}, 200))
	f.Add(bytes.Repeat([]byte{7}, 100), bytes.Repeat([]byte{9}, 1024))

	pool := pmem.New(pmem.Config{PoolSize: 256 << 20})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		f.Fatal(err)
	}
	ix, err := Open(c, pool, al, Config{InitialDepth: 2})
	if err != nil {
		f.Fatal(err)
	}
	h := ix.NewHandle(c)
	f.Fuzz(func(t *testing.T, key, val []byte) {
		if len(key) == 0 || len(key) > MaxKVLen || len(val) > MaxKVLen {
			if err := h.Insert(key, val); err == nil && (len(key) == 0 || len(key) > MaxKVLen || len(val) > MaxKVLen) {
				t.Fatal("oversized/empty key accepted")
			}
			return
		}
		if err := h.Insert(key, val); err != nil {
			t.Fatal(err)
		}
		got, ok, err := h.Search(key, nil)
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("round trip: ok=%v err=%v", ok, err)
		}
		if ok, _ := h.Delete(key); !ok {
			t.Fatal("delete missed")
		}
		if _, ok, _ := h.Search(key, nil); ok {
			t.Fatal("present after delete")
		}
	})
}

// FuzzSlotCodec checks the compound-slot bit packing against arbitrary
// inputs.
func FuzzSlotCodec(f *testing.F) {
	f.Add(uint16(0), uint64(0), true)
	f.Add(uint16(0x1FFF), uint64(1)<<47, false)
	f.Fuzz(func(t *testing.T, fp uint16, p uint64, inline bool) {
		fp &= 0x1FFF
		p &= payload
		kw := makeKeyWord(inline, fp, p)
		if !keyOccupied(kw) || keyIsInline(kw) != inline || keyFP(kw) != fp || wordPayload(kw) != p {
			t.Fatalf("key word round trip: %#x", kw)
		}
		ofp := fp & 0x3FF
		idx := int(p % SlotsPerSegment)
		vw := makeValueWord(inline, p) | makeHint(ofp, idx)
		if !hintValid(vw) || hintFP(vw) != ofp || hintIdx(vw) != idx ||
			valueIsInline(vw) != inline || wordPayload(vw) != p {
			t.Fatalf("value word round trip: %#x", vw)
		}
	})
}
