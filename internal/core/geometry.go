package core

import (
	"errors"
	"fmt"
)

// The geometry root word stamps the on-device layout parameters an
// index image was built with, so Recover can reject a configuration
// that disagrees with the device instead of misreading the pool: a
// registry walk with the wrong segment size decodes garbage prefixes,
// and a recovery that silently dropped checksum maintenance would make
// every later seal verification fail.
//
// Layout: [63..32 segment size][31..16 slots per segment][15..0 format
// version].
const (
	geomFormatV1 = 1
)

func geometryWord() uint64 {
	return uint64(SegmentSize)<<32 | uint64(SlotsPerSegment)<<16 | geomFormatV1
}

// ErrGeometry matches (errors.Is) every GeometryError.
var ErrGeometry = errors.New("core: on-device geometry mismatch")

// GeometryError reports a mismatch between the recovering Config (or
// this build's layout constants) and the geometry stamped on the
// device. It is returned by Recover before any structural state is
// trusted.
type GeometryError struct {
	// Field names the mismatching parameter: "segment-size",
	// "slots-per-segment", "format", "checksums", or "epoch" (shards
	// recovered together carrying different promotion epochs).
	Field string
	// Device and Requested are the conflicting values (for
	// "checksums": 0 = off, 1 = on; for "epoch", Requested is shard
	// 0's epoch).
	Device    uint64
	Requested uint64
}

func (e *GeometryError) Error() string {
	return fmt.Sprintf("core: on-device geometry mismatch: %s is %d on the device, %d requested",
		e.Field, e.Device, e.Requested)
}

// Is makes every GeometryError match ErrGeometry.
func (e *GeometryError) Is(target error) bool { return target == ErrGeometry }

// validateGeometry checks the device's geometry stamp against this
// build's layout constants.
func validateGeometry(geom uint64) error {
	if geom == geometryWord() {
		return nil
	}
	switch {
	case geom&0xFFFF != geomFormatV1:
		return &GeometryError{Field: "format", Device: geom & 0xFFFF, Requested: geomFormatV1}
	case geom>>32 != SegmentSize:
		return &GeometryError{Field: "segment-size", Device: geom >> 32, Requested: SegmentSize}
	default:
		return &GeometryError{Field: "slots-per-segment", Device: geom >> 16 & 0xFFFF, Requested: SlotsPerSegment}
	}
}
