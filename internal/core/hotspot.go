package core

import "sync/atomic"

// maxHotKeys bounds q, the per-partition hot-key list length.
const maxHotKeys = 4

// hotspot is the lightweight hotspot detector of §III-B: the hash
// space is divided into 2^bits partitions by the highest bits of the
// key hash; each partition keeps a tiny LRU list of the q most
// recently re-accessed keys (identified by their full 64-bit hash).
// Because the hash is uniform, the union of the per-partition lists
// tracks the global hot set, and a lookup touches only one partition —
// a handful of DRAM words that stay cache-resident.
//
// The lists are updated with racy atomics: the detector is a
// heuristic, and an occasionally lost promotion only costs one flush
// decision, never correctness.
type hotspot struct {
	bits  uint
	q     int
	parts []hotPart
	hits  atomic.Int64
}

type hotPart struct {
	keys [maxHotKeys]uint64
}

func newHotspot(bits, q int) *hotspot {
	return &hotspot{
		bits:  uint(bits),
		q:     q,
		parts: make([]hotPart, 1<<uint(bits)),
	}
}

// touch records an access to key hash h and reports whether the key
// was already on the hot list (i.e. is hot). A miss promotes the key
// to the front of its partition's LRU list, evicting the list's tail.
func (hs *hotspot) touch(h uint64) bool {
	p := &hs.parts[h>>(64-hs.bits)]
	for i := 0; i < hs.q; i++ {
		if atomic.LoadUint64(&p.keys[i]) == h {
			if i > 0 {
				// Move to front (racy swap: acceptable for an LRU
				// heuristic).
				atomic.StoreUint64(&p.keys[i], atomic.LoadUint64(&p.keys[0]))
				atomic.StoreUint64(&p.keys[0], h)
			}
			hs.hits.Add(1)
			return true
		}
	}
	for i := hs.q - 1; i > 0; i-- {
		atomic.StoreUint64(&p.keys[i], atomic.LoadUint64(&p.keys[i-1]))
	}
	atomic.StoreUint64(&p.keys[0], h)
	return false
}

// peek reports hotness without recording an access (used by tests).
func (hs *hotspot) peek(h uint64) bool {
	p := &hs.parts[h>>(64-hs.bits)]
	for i := 0; i < hs.q; i++ {
		if atomic.LoadUint64(&p.keys[i]) == h {
			return true
		}
	}
	return false
}
