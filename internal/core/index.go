package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/htm"
	"spash/internal/obs"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

// Registry entry encoding (persistent, 8 bytes per pool XPLine):
//
//	[63 valid][55..48 local depth][47..0 hash prefix]
//
// The registry is the one deliberate extension over the paper's
// metadata-free design: base operations never touch it — only segment
// allocate/split/merge transactions update it — but it makes the
// volatile directory reconstructible after a crash (the paper does not
// specify its recovery path). One entry exists per XPLine of the pool,
// indexed by segment address.
const (
	regValid      = uint64(1) << 63
	regDepthShift = 48
)

func makeRegEntry(prefix uint64, depth uint) uint64 {
	return regValid | uint64(depth)<<regDepthShift | prefix&payload
}

func regPrefix(e uint64) uint64 { return e & payload }
func regDepth(e uint64) uint    { return uint(e >> regDepthShift & 0xFF) }

// Root-word layout inside the allocator's root area.
const (
	rootMagic    = 0
	rootRegistry = 1
	// rootSeal holds the base address of the per-segment seal table
	// when checksum maintenance (Config.Checksums) is enabled, 0
	// otherwise. The setting is thereby persistent: Recover adopts it
	// from this word regardless of the passed Config.
	rootSeal = 2
	// rootGeom stamps the layout geometry the image was built with
	// (geometry.go); Recover validates it before trusting anything
	// else on the device.
	rootGeom = 3
	// rootEpoch holds the replication promotion epoch (replication
	// protocol, internal/repl): stamped 1 at format time, advanced
	// durably by BumpEpoch when a replica is promoted to primary.
	// Pre-epoch images read 0, which compares below every stamped
	// epoch, so promotion fencing degrades safely.
	rootEpoch = 4
	// rootApplied holds a replica's durable applied-sequence cursor
	// (replication protocol, internal/repl): the highest frame
	// sequence whose apply is on the device, advanced by
	// SetAppliedSeq after each apply. Only shard 0 of a replica uses
	// it; on a primary (and on pre-cursor images) it reads 0.
	rootApplied = 5
	indexMagic  = 0x5350415348494458 // "SPASHIDX"
	maxDepth    = 44
)

// Stats are the index's operational counters (all cumulative).
type Stats struct {
	Entries  int64
	Segments int64
	Splits   int64
	Merges   int64
	Doubles  int64
	// TxConflicts/TxCapacity count HTM aborts by cause; Fallbacks
	// counts operations that ended up on the per-segment lock path.
	TxConflicts int64
	TxCapacity  int64
	Fallbacks   int64
	// HotHits counts updates classified hot by the detector.
	HotHits int64
	// CollabStages counts doubling stages completed by concurrent
	// operations rather than the doubling thread.
	CollabStages int64
}

// Index is a Spash instance over a simulated PM pool.
type Index struct {
	pool  *pmem.Pool
	alloc *alloc.Allocator
	tm    *htm.TM
	cfg   Config
	// group aggregates lock and HTM-commit serialisation for the
	// virtual-time model.
	group *vsync.Group
	// reg is the observability registry (nil when DisableObs): striped
	// structural-event counters, histograms and the trace ring.
	reg *obs.Registry
	// shardID identifies this index within a sharded DB (0 when
	// unsharded); stamped onto sampled spans for slow-op attribution.
	shardID atomic.Int32

	// dirGen is odd while a resize (doubling or halving) is in
	// progress; every transaction reads it. dir is the current stable
	// directory; doubling the in-progress resize state.
	dirGen     uint64
	dir        atomic.Pointer[directory]
	doubling   atomic.Pointer[doublingState]
	resizeFlag atomic.Int32

	registryAddr uint64
	registryCap  uint64 // entries
	// sealAddr is the base of the per-segment seal table (one word per
	// pool XPLine, like the registry); 0 when checksums are off. Each
	// seal word packs the four per-bucket CRC32Cs of its segment
	// (integrity.go).
	sealAddr uint64

	hot *hotspot

	// Lock-mode state: one lock (and seqlock word) per hash-prefix
	// stripe.
	locks   []vsync.Mutex
	rwlocks []vsync.RWMutex
	seqs    []uint64

	// lastResizeCost is the virtual duration of the most recent
	// stop-the-world resize; operations that waited it out charge it
	// to their clocks (blocked time is otherwise invisible to the
	// per-worker virtual-time model). resizeEpoch counts completed
	// stop-the-world resizes: every worker that lived through one
	// charges the expected overlap, since a stop-the-world resize
	// stalls the whole index regardless of who observes it in real
	// time.
	lastResizeCost atomic.Int64
	resizeEpoch    atomic.Int64

	// epoch mirrors the rootEpoch word (promotion fencing; see
	// Epoch/BumpEpoch); applied mirrors the rootApplied word (the
	// replica's durable applied-sequence cursor; see
	// AppliedSeq/SetAppliedSeq).
	epoch   atomic.Uint64
	applied atomic.Uint64

	entries atomic.Int64
	// entriesApprox is set when a quarantine dropped an unreadable
	// (poisoned) segment: its pre-loss occupancy was undiscoverable, so
	// entries is an estimate until the next quiescent full scan
	// (CheckInvariants or Fsck) recomputes the truth.
	entriesApprox atomic.Bool

	segments     atomic.Int64
	splits       atomic.Int64
	merges       atomic.Int64
	doubles      atomic.Int64
	txConflicts  atomic.Int64
	txCapacity   atomic.Int64
	fallbacks    atomic.Int64
	collabStages atomic.Int64
}

// Open creates a new index on a freshly formatted pool.
func Open(c *pmem.Ctx, pool *pmem.Pool, al *alloc.Allocator, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if pool.Load64(c, alloc.RootAddr(rootMagic)) != 0 {
		return nil, errors.New("core: pool already contains an index; use Recover")
	}
	ix := newIndex(pool, al, cfg)

	// The registry has one word per XPLine of the pool.
	ix.registryCap = pool.Size() / SegmentSize
	regAddr, err := al.AllocRaw(c, ix.registryCap*8)
	if err != nil {
		return nil, fmt.Errorf("core: allocating segment registry: %w", err)
	}
	ix.registryAddr = regAddr
	if cfg.Checksums {
		sa, err := al.AllocRaw(c, ix.registryCap*8)
		if err != nil {
			return nil, fmt.Errorf("core: allocating seal table: %w", err)
		}
		ix.sealAddr = sa
	}

	// Initial directory: one fresh segment per entry. The initial
	// structure is flushed so even an ADR-mode pool starts from a
	// durable skeleton.
	var zeroImg [SegmentSize / 8]uint64
	zeroSeal := sealOfImage(&zeroImg)
	d := newDirectory(cfg.InitialDepth)
	h := al.NewHandle()
	for i := range d.entries {
		seg, err := ix.newSegment(c, h)
		if err != nil {
			return nil, err
		}
		d.entries[i] = makeEntry(seg, cfg.InitialDepth)
		ix.regStoreRaw(c, seg, uint64(i), cfg.InitialDepth, true)
		pool.Flush(c, seg, SegmentSize)
		pool.Flush(c, ix.regAddrOf(seg), 8)
		if ix.sealAddr != 0 {
			pool.Store64(c, ix.sealAddrOf(seg), zeroSeal)
			pool.Flush(c, ix.sealAddrOf(seg), 8)
		}
		ix.segments.Add(1)
	}
	pool.Fence(c)
	h.Close()
	ix.reg.Add(obs.CSegAlloc, int64(len(d.entries)))
	ix.dir.Store(d)

	pool.Store64(c, alloc.RootAddr(rootRegistry), regAddr)
	pool.Store64(c, alloc.RootAddr(rootSeal), ix.sealAddr)
	pool.Store64(c, alloc.RootAddr(rootGeom), geometryWord())
	pool.Store64(c, alloc.RootAddr(rootEpoch), 1)
	pool.Store64(c, alloc.RootAddr(rootApplied), 0)
	pool.Store64(c, alloc.RootAddr(rootMagic), indexMagic)
	pool.Flush(c, alloc.RootAddr(0), alloc.RootWords*8)
	pool.Fence(c)
	ix.epoch.Store(1)
	return ix, nil
}

func newIndex(pool *pmem.Pool, al *alloc.Allocator, cfg Config) *Index {
	ix := &Index{
		pool:  pool,
		alloc: al,
		cfg:   cfg,
		group: &vsync.Group{},
	}
	ix.tm = htm.New(htm.Config{})
	ix.tm.Group = ix.group
	ix.reg = cfg.Obs
	if ix.reg == nil && !cfg.DisableObs {
		ix.reg = obs.NewRegistry()
	}
	ix.hot = newHotspot(cfg.HotspotPartitionBits, cfg.HotKeysPerPartition)
	if cfg.Concurrency != ModeHTM {
		n := 1 << cfg.LockStripeBits
		ix.locks = make([]vsync.Mutex, n)
		ix.rwlocks = make([]vsync.RWMutex, n)
		ix.seqs = make([]uint64, n)
		for i := 0; i < n; i++ {
			ix.locks[i].G = ix.group
			ix.rwlocks[i].G = ix.group
		}
	}
	return ix
}

// Config returns the effective configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Pool returns the underlying simulated PM pool.
func (ix *Index) Pool() *pmem.Pool { return ix.pool }

// Group returns the serialisation group for the virtual-time model.
func (ix *Index) Group() *vsync.Group { return ix.group }

// Obs returns the observability registry (nil when disabled).
func (ix *Index) Obs() *obs.Registry { return ix.reg }

// SetShard stamps the index's shard id (spans carry it into the
// slow-op log). Called by the sharded DB at open/recover time.
func (ix *Index) SetShard(id int) { ix.shardID.Store(int32(id)) }

// Shard returns the stamped shard id (0 when unsharded).
func (ix *Index) Shard() int { return int(ix.shardID.Load()) }

// ObsSnapshot captures the unified observability snapshot: pool
// memory events, HTM outcomes, allocator occupancy and the registry's
// structural counters and histograms, in one diffable document.
func (ix *Index) ObsSnapshot() obs.Snapshot {
	return obs.Capture(ix.pool.Stats(), ix.tm.Stats(), ix.alloc.Stats(), ix.reg)
}

// newSegment allocates and zeroes one segment.
func (ix *Index) newSegment(c *pmem.Ctx, h *alloc.Handle) (uint64, error) {
	seg, _, err := h.Alloc(c, SegmentSize)
	if err != nil {
		return 0, err
	}
	for i := 0; i < SegmentSize/8; i++ {
		ix.pool.Store64(c, seg+uint64(i)*8, 0)
	}
	return seg, nil
}

// regAddrOf returns the registry word for a segment address.
func (ix *Index) regAddrOf(seg uint64) uint64 {
	return ix.registryAddr + seg/SegmentSize*8
}

// sealAddrOf returns the seal word for a segment address. Only valid
// when sealAddr != 0 (checksums on).
func (ix *Index) sealAddrOf(seg uint64) uint64 {
	return ix.sealAddr + seg/SegmentSize*8
}

// SegmentAddrs returns the PM address of every live segment, read from
// the persistent registry. The index must be quiescent. Used by fault-
// injection harnesses (to aim media damage at index frames) and tests.
func (ix *Index) SegmentAddrs(c *pmem.Ctx) []uint64 {
	var out []uint64
	for i := uint64(0); i < ix.registryCap; i++ {
		if ix.pool.Load64(c, ix.registryAddr+i*8)&regValid != 0 {
			out = append(out, i*SegmentSize)
		}
	}
	return out
}

// regStoreRaw writes a registry entry outside any transaction (index
// construction only).
func (ix *Index) regStoreRaw(c *pmem.Ctx, seg, prefix uint64, depth uint, valid bool) {
	var e uint64
	if valid {
		e = makeRegEntry(prefix, depth)
	}
	ix.pool.Store64(c, ix.regAddrOf(seg), e)
}

// Len returns the number of live key-value entries.
func (ix *Index) Len() int { return int(ix.entries.Load()) }

// LoadFactor returns entries / capacity, the memory-utilisation metric
// of Fig 9.
func (ix *Index) LoadFactor() float64 {
	segs := ix.segments.Load()
	if segs == 0 {
		return 0
	}
	return float64(ix.entries.Load()) / float64(segs*SlotsPerSegment)
}

// Depth returns the current global directory depth.
func (ix *Index) Depth() uint { return ix.dir.Load().depth }

// Epoch returns the promotion epoch stamped on the device: 1 on a
// freshly formatted pool, advanced by BumpEpoch at every promotion,
// 0 on images formatted before the epoch word existed.
func (ix *Index) Epoch() uint64 { return ix.epoch.Load() }

// BumpEpoch durably advances the promotion epoch and returns the new
// value. Replication frames are stamped with the shipping primary's
// epoch; a replica promoted to primary bumps its epoch first, so any
// frame a deposed primary still ships afterwards carries a stale
// epoch and is rejected (split-brain fencing). The index must be
// quiescent: promotion runs right after recovery, before any worker
// session exists.
//
//spash:guarded promotion mutates one root word on a quiescent, freshly recovered index; no concurrent HTM domain activity exists
func (ix *Index) BumpEpoch(c *pmem.Ctx) uint64 {
	e := ix.epoch.Load() + 1
	ix.pool.Store64(c, alloc.RootAddr(rootEpoch), e)
	ix.pool.Flush(c, alloc.RootAddr(rootEpoch), 8)
	ix.pool.Fence(c)
	ix.epoch.Store(e)
	return e
}

// AppliedSeq returns the durable applied-sequence cursor stamped on
// the device: 0 on a fresh pool (and on a primary), advanced by
// SetAppliedSeq after every replication apply. Recover reloads it, so
// a rejoined replica knows exactly which frames its image holds.
func (ix *Index) AppliedSeq() uint64 { return ix.applied.Load() }

// SetAppliedSeq durably records that every replication frame up to
// and including seq has been applied. The replica calls it after each
// apply completes (the apply itself is failure-atomic through the
// ordinary operation paths); flush+fence ordering means the cursor
// never runs ahead of visibility — under ADR a crash can roll back
// applies the cursor already covers, which the rejoin path detects
// via the device's lost-line count and reports as a reseed condition.
//
//spash:guarded the applied-cursor word is owned by the single replication applier under the replica mutex; no concurrent HTM domain activity touches it
func (ix *Index) SetAppliedSeq(c *pmem.Ctx, seq uint64) {
	ix.pool.Store64(c, alloc.RootAddr(rootApplied), seq)
	ix.pool.Flush(c, alloc.RootAddr(rootApplied), 8)
	ix.pool.Fence(c)
	ix.applied.Store(seq)
}

// Stats returns the operational counters.
func (ix *Index) Stats() Stats {
	return Stats{
		Entries:      ix.entries.Load(),
		Segments:     ix.segments.Load(),
		Splits:       ix.splits.Load(),
		Merges:       ix.merges.Load(),
		Doubles:      ix.doubles.Load(),
		TxConflicts:  ix.txConflicts.Load(),
		TxCapacity:   ix.txCapacity.Load(),
		Fallbacks:    ix.fallbacks.Load(),
		HotHits:      ix.hot.hits.Load(),
		CollabStages: ix.collabStages.Load(),
	}
}

// Add returns s + o counter-wise, aggregating the stats of sharded
// indexes into one database-level view.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Entries:      s.Entries + o.Entries,
		Segments:     s.Segments + o.Segments,
		Splits:       s.Splits + o.Splits,
		Merges:       s.Merges + o.Merges,
		Doubles:      s.Doubles + o.Doubles,
		TxConflicts:  s.TxConflicts + o.TxConflicts,
		TxCapacity:   s.TxCapacity + o.TxCapacity,
		Fallbacks:    s.Fallbacks + o.Fallbacks,
		HotHits:      s.HotHits + o.HotHits,
		CollabStages: s.CollabStages + o.CollabStages,
	}
}

// waitResize spins until the in-progress resize completes.
func (ix *Index) waitResize() {
	for atomic.LoadUint64(&ix.dirGen)&1 != 0 {
		// The resizer may have unwound at an injected power cut with
		// the generation bit still odd; die with it instead of
		// spinning on a resize that will never finish.
		ix.pool.CheckLive()
		runtime.Gosched()
	}
}

// waitResizeCtx is waitResize for a worker with a clock: if a resize
// was actually in progress, the worker charges its virtual duration —
// the blocking that stop-the-world resizing inflicts and collaborative
// staged doubling avoids.
func (ix *Index) waitResizeCtx(c *pmem.Ctx) {
	if atomic.LoadUint64(&ix.dirGen)&1 == 0 {
		return
	}
	ix.waitResize()
	c.Charge(ix.lastResizeCost.Load())
}

// resolveTx resolves the authoritative directory entry inside a
// transaction (the transaction-phase validation of §IV-A): the
// generation word, the partition-progress words (during doubling), the
// entry itself AND the segment's canonical lock entry all join the
// read set, so any concurrent split, doubling stage, or fallback-lock
// acquisition aborts this transaction. Returns errLocked if the
// segment's fallback lock is held, errResizing during a halving.
//
// The per-segment fallback lock lives on the canonical covering entry
// — the first directory entry of the segment's covering range. A
// segment whose local depth is below the global depth is covered by
// many entries; locking only the operation's own entry would let
// transactions arriving through sibling entries run concurrently with
// the raw fallback body and break the segment's multi-word invariants
// (e.g. the hint words shared by all keys of a bucket).
func (ix *Index) resolveTx(tx *htm.Txn, h uint64) (ptr *uint64, entry uint64, err error) {
	gen := tx.LoadVol(&ix.dirGen)
	if gen&1 == 0 {
		d := ix.dir.Load()
		idx := d.index(h)
		ptr = &d.entries[idx]
		entry = tx.LoadVol(ptr)
		if entryLocked(entry) {
			return nil, 0, errLocked
		}
		if depth := entryDepth(entry); depth < d.depth {
			base := idx &^ (uint64(1)<<(d.depth-depth) - 1)
			if base != idx && entryLocked(tx.LoadVol(&d.entries[base])) {
				return nil, 0, errLocked
			}
		}
		return ptr, entry, nil
	}
	ds := ix.doubling.Load()
	if ds == nil || ds.halving {
		return nil, 0, errResizing
	}
	oldIdx := ds.old.index(h)
	if tx.LoadVol(ds.partDonePtr(ds.partOf(oldIdx))) == 1 {
		ptr = &ds.new.entries[ds.new.index(h)]
	} else {
		ptr = &ds.old.entries[oldIdx]
	}
	entry = tx.LoadVol(ptr)
	if entryLocked(entry) {
		return nil, 0, errLocked
	}
	if cPtr := ix.canonicalPtrTx(tx, ds, oldIdx, entryDepth(entry)); cPtr != ptr &&
		cPtr != nil && entryLocked(tx.LoadVol(cPtr)) {
		return nil, 0, errLocked
	}
	return ptr, entry, nil
}

// canonicalPtrTx locates, inside a transaction during a doubling, the
// canonical lock entry for a segment of the given local depth whose
// keys map to oldIdx in the old directory. The canonical partition's
// progress word joins the read set.
func (ix *Index) canonicalPtrTx(tx *htm.Txn, ds *doublingState, oldIdx uint64, depth uint) *uint64 {
	if depth > ds.old.depth {
		// The segment was created during this doubling; its covering
		// range in the new directory starts at its own (single) entry.
		return nil
	}
	cOld := oldIdx &^ (uint64(1)<<(ds.old.depth-depth) - 1)
	if tx.LoadVol(ds.partDonePtr(ds.partOf(cOld))) == 1 {
		return &ds.new.entries[cOld<<1]
	}
	return &ds.old.entries[cOld]
}
