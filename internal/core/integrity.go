package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync/atomic"

	"spash/internal/hash"
	"spash/internal/htm"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// This file makes the layout self-verifying and repairable. The
// mechanism is a seal table parallel to the registry: one word per
// pool XPLine, packing the four per-bucket CRC32Cs of the segment in
// that frame (16 bits per 64-byte bucket). Seals are maintained inside
// the same atomic sections that mutate segments, validated on every
// operation when Config.Checksums is on, and checked offline by Fsck
// and online by the scrubber. A segment that fails validation is
// quarantined: its directory range is repointed at a freshly rebuilt
// segment holding the entries that survive salvage, and the keys that
// did not are reported — wrong answers are never returned.

// ErrCorrupted matches (via errors.Is) every *CorruptionError.
var ErrCorrupted = errors.New("core: data corruption detected")

// ErrChecksum is the cause of a seal (per-bucket CRC) mismatch.
var ErrChecksum = errors.New("core: segment checksum mismatch")

// ErrRecordChecksum is the cause of an out-of-line record whose
// payload does not match its header CRC.
var ErrRecordChecksum = errors.New("core: record checksum mismatch")

// CorruptionError is returned (never panicked) by operations that hit
// damaged media: a poisoned XPLine, a segment whose seal does not
// match its contents, or a record failing its CRC. Bucket is -1 when
// the damage cannot be attributed to one bucket.
type CorruptionError struct {
	Seg    uint64
	Bucket int
	Cause  error
}

func (e *CorruptionError) Error() string {
	if e.Bucket >= 0 {
		return fmt.Sprintf("core: corruption in segment %#x bucket %d: %v", e.Seg, e.Bucket, e.Cause)
	}
	return fmt.Sprintf("core: corruption in segment %#x: %v", e.Seg, e.Cause)
}

func (e *CorruptionError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrCorrupted) match any CorruptionError.
func (e *CorruptionError) Is(target error) bool { return target == ErrCorrupted }

// recordFault is the panic value raised deep in the probe path
// (keyMatches) when a key record fails its CRC; the operation guard
// converts it to a *CorruptionError return. It never escapes exec.
type recordFault struct{ addr uint64 }

// Seal encoding: bucket b's CRC32C (truncated to 16 bits) occupies
// bits [16b, 16b+16) of the seal word.

// bucketCRC computes the 16-bit CRC lane of one bucket's 8 words.
func bucketCRC(ws []uint64) uint64 {
	var b [pmem.CachelineSize]byte
	for i := 0; i < SlotsPerBucket*2; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], ws[i])
	}
	return uint64(crc32.Checksum(b[:], crcTable) & 0xFFFF)
}

// sealOfImage computes the seal word of an in-memory segment image.
func sealOfImage(img *[SegmentSize / 8]uint64) uint64 {
	var s uint64
	for b := 0; b < BucketsPerSegment; b++ {
		s |= bucketCRC(img[b*SlotsPerBucket*2:(b+1)*SlotsPerBucket*2]) << (16 * b)
	}
	return s
}

// sealOfMem computes the seal word of a segment read through m (32
// loads; inside a transaction they join the read set, so the seal is
// consistent with the image the transaction commits against).
func sealOfMem(m mem, seg uint64) uint64 {
	var img [SegmentSize / 8]uint64
	for i := range img {
		img[i] = m.load(seg + uint64(i)*8)
	}
	return sealOfImage(&img)
}

// reseal recomputes and stores the segment's seal through m. Called
// after a mutating operation body succeeds, inside the same atomic
// section, so seal and segment can never be observed out of step
// (except by an ADR power cut, which fsck repairs).
func (ix *Index) reseal(m mem, seg uint64) {
	m.store(ix.sealAddrOf(seg), sealOfMem(m, seg))
}

// verifySeal compares the segment's stored seal with its contents and
// returns the mismatching buckets as a 4-bit mask (0 = clean).
func (ix *Index) verifySeal(m mem, seg uint64) (badMask int) {
	want := m.load(ix.sealAddrOf(seg))
	got := sealOfMem(m, seg)
	for b := 0; b < BucketsPerSegment; b++ {
		if (want^got)>>(16*b)&0xFFFF != 0 {
			badMask |= 1 << b
		}
	}
	return badMask
}

func firstBadBucket(badMask int) int {
	for b := 0; b < BucketsPerSegment; b++ {
		if badMask>>b&1 == 1 {
			return b
		}
	}
	return -1
}

// guardBody wraps an operation body with the corruption boundary:
//
//   - a poisoned-media machine check (pmem.AccessError panic) or a
//     key-record CRC failure (recordFault panic) raised by any access
//     inside the body becomes a *CorruptionError return value, so it
//     unwinds through the protocol paths — which must run their
//     unlock/release code — instead of through the stack;
//   - when checksums are on, the segment's seal is validated before
//     the body runs (damaged segments fail fast instead of answering)
//     and recomputed after a mutating body succeeds.
//
// The wrapper preserves the body contract: it is idempotent and
// resets nothing the body does not reset itself.
func (h *Handle) guardBody(readonly bool, body func(m mem, seg uint64) error) func(m mem, seg uint64) error {
	ix := h.ix
	return func(m mem, seg uint64) (err error) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if ae, ok := r.(pmem.AccessError); ok {
				// Poisoned media, or — on a checksum-off pool where no
				// seal guards the pointers — a corrupted slot pointing
				// at a misaligned/out-of-range record. Either way the
				// operation fails typed instead of panicking.
				err = &CorruptionError{Seg: seg, Bucket: -1, Cause: ae}
				return
			}
			if rf, ok := r.(recordFault); ok {
				// A doomed optimistic reader can catch a freed-and-reused
				// record mid-rewrite and fail its CRC transiently. Give
				// the writer a moment and re-check raw: a record that
				// heals was a race (retry the operation via the protocol's
				// segment-moved path); one that stays rotten is corrupt.
				raw := rawMem{ix.pool, h.c}
				for i := 0; i < 3; i++ {
					if recordCRCOK(raw, rf.addr) {
						err = errSegMoved
						return
					}
					runtime.Gosched()
				}
				err = &CorruptionError{Seg: seg, Bucket: -1,
					Cause: fmt.Errorf("key record %#x: %w", rf.addr, ErrRecordChecksum)}
				return
			}
			panic(r)
		}()
		if ix.sealAddr != 0 {
			if bad := ix.verifySeal(m, seg); bad != 0 {
				return &CorruptionError{Seg: seg, Bucket: firstBadBucket(bad), Cause: ErrChecksum}
			}
		}
		if err := body(m, seg); err != nil {
			return err
		}
		if ix.sealAddr != 0 && !readonly {
			ix.reseal(m, seg)
		}
		return nil
	}
}

// poisonAsCorruption is a defer helper for paths that read PM outside
// a guarded operation body (split preparation): a poisoned-media panic
// becomes a *CorruptionError assigned to *err; other panics propagate.
func poisonAsCorruption(seg *uint64, err *error) {
	if r := recover(); r != nil {
		if ae, ok := r.(pmem.AccessError); ok && ae.Poisoned {
			*err = &CorruptionError{Seg: *seg, Bucket: -1, Cause: ae}
			return
		}
		panic(r)
	}
}

// SegmentFault describes one damaged segment found by verification.
type SegmentFault struct {
	Seg    uint64 `json:"seg"`
	Prefix uint64 `json:"prefix"`
	Depth  uint   `json:"depth"`
	// Shard is the owning shard in a sharded database (stamped by
	// spash.Session.Fsck; 0 on a bare core index). Replica read-repair
	// needs it to fetch the authoritative range from the right peer
	// shard.
	Shard int `json:"shard,omitempty"`
	// Poisoned marks an uncorrectable-media segment (or registry/seal
	// frame); BadBuckets is the seal-mismatch mask; BadSlots counts
	// slots failing semantic validation (routing, fingerprint, record
	// CRC, missing overflow hint).
	Poisoned   bool   `json:"poisoned,omitempty"`
	BadBuckets int    `json:"bad_buckets,omitempty"`
	BadSlots   int    `json:"bad_slots,omitempty"`
	Cause      string `json:"cause"`
}

// verifySegment checks one segment against its registry claim and
// returns a fault description, or nil when clean. It never panics:
// poison is reported as a fault. Read-only; usable on a live index
// only when the segment is quiesced (Fsck) — the online path is the
// scrubber, which verifies transactionally.
func (ix *Index) verifySegment(c *pmem.Ctx, seg, prefix uint64, depth uint) (f *SegmentFault) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(pmem.AccessError); ok {
				f = &SegmentFault{Seg: seg, Prefix: prefix, Depth: depth,
					Poisoned: ae.Poisoned, Cause: ae.Error()}
				return
			}
			panic(r)
		}
	}()
	m := rawMem{ix.pool, c}
	var snap [SegmentSize / 8]uint64
	for i := range snap {
		snap[i] = m.load(seg + uint64(i)*8)
	}
	fault := SegmentFault{Seg: seg, Prefix: prefix, Depth: depth}
	if ix.sealAddr != 0 {
		want := m.load(ix.sealAddrOf(seg))
		got := sealOfImage(&snap)
		for b := 0; b < BucketsPerSegment; b++ {
			if (want^got)>>(16*b)&0xFFFF != 0 {
				fault.BadBuckets |= 1 << b
			}
		}
	}
	for s := 0; s < SlotsPerSegment; s++ {
		if !slotValid(m, &snap, seg, s, prefix, depth) {
			fault.BadSlots++
		}
	}
	if fault.BadBuckets == 0 && fault.BadSlots == 0 {
		return nil
	}
	fault.Cause = fmt.Sprintf("seal mask %#x, %d invalid slots", fault.BadBuckets, fault.BadSlots)
	return &fault
}

// slotValid performs the semantic validation of one occupied slot
// against its segment's hash range: decodable key (record CRC for
// out-of-line keys), correct routing prefix, matching fingerprint, a
// CRC-clean out-of-line value, and — for overflow entries — a hint in
// the main bucket. Free slots are trivially valid. Panics on poison
// (callers guard).
func slotValid(m mem, snap *[SegmentSize / 8]uint64, seg uint64, s int, prefix uint64, depth uint) bool {
	kw := snap[s*2]
	if !keyOccupied(kw) {
		return true
	}
	key, ok := decodeSlotKeyTolerant(m, kw)
	if !ok {
		return false
	}
	h := hashKey(key)
	if hash.Prefix(h, depth) != prefix || keyFP(kw) != hash.KeyFingerprint(h) {
		return false
	}
	vw := snap[s*2+1]
	if !valueIsInline(vw) && !recordCRCOKTolerant(m, wordPayload(vw)) {
		return false
	}
	if b := mainBucket(h); bucketOf(s) != b {
		found := false
		for hs := b * SlotsPerBucket; hs < (b+1)*SlotsPerBucket; hs++ {
			hv := snap[hs*2+1]
			if hintValid(hv) && hintIdx(hv) == s && hintFP(hv) == hash.OverflowFingerprint(h) {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// decodeSlotKey extracts the key bytes of an occupied key word: the
// inline payload, or the out-of-line record if its CRC matches.
func decodeSlotKey(m mem, kw uint64) ([]byte, bool) {
	if keyIsInline(kw) {
		var kb [8]byte
		binary.LittleEndian.PutUint64(kb[:], wordPayload(kw))
		return kb[:], true
	}
	addr := wordPayload(kw)
	if !recordCRCOK(m, addr) {
		return nil, false
	}
	return readRecord(m, addr, nil), true
}

// QuarantineReport records one segment rebuild: which frame was
// dropped, where its survivors went, and which keys were lost. Keys
// whose bytes could not be recovered from the damaged image are not
// listed; they are covered by the segment's hash range (Prefix/Depth),
// which oracles use to excuse unattributable misses.
type QuarantineReport struct {
	Seg    uint64 `json:"seg"`
	NewSeg uint64 `json:"new_seg"`
	Prefix uint64 `json:"prefix"`
	Depth  uint   `json:"depth"`
	// Shard is the owning shard in a sharded database (stamped by
	// spash.Session.Fsck; 0 on a bare core index).
	Shard int `json:"shard,omitempty"`
	// Salvaged entries moved to the new segment; Dropped were
	// discarded (LostKeys lists the ones whose key bytes survived).
	Salvaged int      `json:"salvaged"`
	Dropped  int      `json:"dropped"`
	LostKeys [][]byte `json:"lost_keys,omitempty"`
}

// Covers reports whether a key's hash falls in the quarantined range.
func (q *QuarantineReport) Covers(h uint64) bool {
	return hash.Prefix(h, q.Depth) == q.Prefix
}

// Quarantine drops the damaged segment owning hash hh and rebuilds its
// directory range from the survivors of salvage. expectSeg, when
// non-zero, aborts the quarantine (nil report, nil error) if the range
// is no longer served by that segment — a concurrent split, merge or
// earlier repair already replaced the damaged frame.
//
// Locking follows splitFallback: every covering directory entry is
// fallback-locked, excluding transactions and fallbacks on the whole
// segment, then the rebuild runs irrevocably.
func (h *Handle) Quarantine(hh uint64, expectSeg uint64) (*QuarantineReport, error) {
	ix := h.ix
	c := h.c
	for {
		if atomic.LoadUint64(&ix.dirGen)&1 == 1 {
			ix.waitResize()
			continue
		}
		d := ix.dir.Load()
		_, e := ix.resolveRaw(hh)
		if entryLocked(e) {
			ix.pool.CheckLive()
			runtime.Gosched()
			continue
		}
		seg, depth := entrySeg(e), entryDepth(e)
		if expectSeg != 0 && seg != expectSeg {
			return nil, nil
		}
		prefix := hash.Prefix(hh, depth)
		base := prefix << (d.depth - depth)
		n := uint64(1) << (d.depth - depth)

		locked := uint64(0)
		ok := true
		for j := uint64(0); j < n; j++ {
			ptr := &d.entries[base+j]
			cur := atomic.LoadUint64(ptr)
			if entryLocked(cur) || entrySeg(cur) != seg || entryDepth(cur) != depth ||
				!ix.tm.BumpCASVol(c, ptr, cur, cur|entryLock) {
				ok = false
				break
			}
			locked++
		}
		if !ok || ix.dir.Load() != d {
			for j := uint64(0); j < locked; j++ {
				ptr := &d.entries[base+j]
				ix.tm.BumpStoreVol(c, ptr, entryUnlock(atomic.LoadUint64(ptr)))
			}
			ix.pool.CheckLive()
			runtime.Gosched()
			continue
		}

		var report *QuarantineReport
		err := ix.tm.Irrevocable(c, ix.pool, func(it *htm.ITxn) error {
			m := iMem{it}
			snap, poisoned := readSegmentTolerant(m, seg)
			occupied := 0
			if !poisoned {
				for s := 0; s < SlotsPerSegment; s++ {
					if keyOccupied(snap[s*2]) {
						occupied++
					}
				}
			}
			keep, lost, dropped := ix.salvageSegment(m, &snap, seg, poisoned, prefix, depth)
			img, lok := layoutSegment(keep)
			if !lok {
				// Salvage produced an unlayoutable set (corrupt hints
				// skewed the decode); drop everything, report what we can.
				for _, en := range keep {
					if k, ok := decodeSlotKey(m, en.kw); ok {
						lost = append(lost, append([]byte(nil), k...))
					}
					dropped++
				}
				keep = nil
				img = [SegmentSize / 8]uint64{}
			}
			newSeg, _, aerr := h.ah.Alloc(c, SegmentSize)
			if aerr != nil {
				return aerr
			}
			// Raw stores: the frame is fresh (or healing a poisoned
			// reuse); nothing reads it until the directory repoints.
			for i, w := range img {
				ix.pool.Store64(c, newSeg+uint64(i)*8, w)
			}
			m.store(ix.regAddrOf(seg), 0)
			m.store(ix.regAddrOf(newSeg), makeRegEntry(prefix, depth))
			if ix.sealAddr != 0 {
				m.store(ix.sealAddrOf(newSeg), sealOfImage(&img))
				m.store(ix.sealAddrOf(seg), 0)
			}
			// Heal the damaged frame before it returns to the free pool
			// (stores clear poison): a freed frame must never machine-
			// check a later reader. Through the irrevocable txn, so
			// optimistic readers still scanning it conflict and retry.
			for i := uint64(0); i < SegmentSize/8; i++ {
				m.store(seg+i*8, 0)
			}
			for j := uint64(0); j < n; j++ {
				it.StoreVol(&d.entries[base+j], makeEntry(newSeg, depth))
			}
			ix.entries.Add(int64(len(keep)) - int64(occupied))
			if poisoned {
				// The frame was unreadable: its occupancy (and with it
				// the exact counter delta) is lost. Flag the counter as
				// approximate; the next quiescent scan resyncs it.
				ix.entriesApprox.Store(true)
			}
			report = &QuarantineReport{
				Seg: seg, NewSeg: newSeg, Prefix: prefix, Depth: depth,
				Salvaged: len(keep), Dropped: dropped, LostKeys: lost,
			}
			return nil
		})
		if err != nil {
			for j := uint64(0); j < n; j++ {
				ptr := &d.entries[base+j]
				ix.tm.BumpStoreVol(c, ptr, entryUnlock(atomic.LoadUint64(ptr)))
			}
			return nil, err
		}
		// Drain the replacement segment's write-back before freeing the
		// quarantined one: once the old segment is reusable, the new
		// image must already be ADR-durable.
		ix.pool.Flush(c, report.NewSeg, SegmentSize)
		ix.pool.Fence(c)
		h.ah.Free(c, seg, SegmentSize)
		ix.reg.Inc(obs.CQuarantines)
		ix.reg.Trace(obs.EvQuarantine, c.Clock(), int64(seg), int64(report.Salvaged))
		return report, nil
	}
}

// readSegmentTolerant snapshots a segment through m, reporting (zero
// image, true) when the frame is poisoned.
func readSegmentTolerant(m mem, seg uint64) (snap [SegmentSize / 8]uint64, poisoned bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.AccessError); ok {
				snap = [SegmentSize / 8]uint64{}
				poisoned = true
				return
			}
			panic(r)
		}
	}()
	for i := range snap {
		snap[i] = m.load(seg + uint64(i)*8)
	}
	return snap, false
}

// salvageSegment decides, slot by slot, what survives a quarantine.
// The trust rule is strict — wrong values must be impossible:
//
//   - a poisoned frame salvages nothing (its keys are covered by the
//     range excusal);
//   - with checksums on, a bucket whose seal lane mismatches is
//     dropped whole: the damaged word cannot be attributed, so neither
//     key words nor value words (inline values included) of that
//     bucket can be trusted. Decodable keys are reported lost;
//   - everything else passes the full semantic validation (key CRC,
//     routing, fingerprint, value-record CRC) or is dropped and — when
//     the key bytes survive — reported.
func (ix *Index) salvageSegment(m mem, snap *[SegmentSize / 8]uint64, seg uint64, poisoned bool, prefix uint64, depth uint) (keep []segEntry, lost [][]byte, dropped int) {
	if poisoned {
		return nil, nil, 0
	}
	badMask := 0
	if ix.sealAddr != 0 {
		want := m.load(ix.sealAddrOf(seg))
		got := sealOfImage(snap)
		for b := 0; b < BucketsPerSegment; b++ {
			if (want^got)>>(16*b)&0xFFFF != 0 {
				badMask |= 1 << b
			}
		}
	}
	for s := 0; s < SlotsPerSegment; s++ {
		kw := snap[s*2]
		if !keyOccupied(kw) {
			continue
		}
		key, keyOK := decodeSlotKeyTolerant(m, kw)
		var hh uint64
		routeOK := false
		if keyOK {
			hh = hashKey(key)
			routeOK = hash.Prefix(hh, depth) == prefix && keyFP(kw) == hash.KeyFingerprint(hh)
		}
		vw := snap[s*2+1]
		valueOK := valueIsInline(vw) || recordCRCOKTolerant(m, wordPayload(vw))
		if badMask>>bucketOf(s)&1 == 1 || !keyOK || !routeOK || !valueOK {
			dropped++
			if keyOK && routeOK {
				lost = append(lost, append([]byte(nil), key...))
			}
			continue
		}
		keep = append(keep, segEntry{kw: kw, vw: vw &^ hintMask, h: hh})
	}
	return keep, lost, dropped
}

// decodeSlotKeyTolerant is decodeSlotKey with any access fault —
// poison, or the misaligned/out-of-range pointers a corrupted key
// word produces — treated as an undecodable key instead of a panic.
func decodeSlotKeyTolerant(m mem, kw uint64) (key []byte, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, pok := r.(pmem.AccessError); pok {
				key, ok = nil, false
				return
			}
			panic(r)
		}
	}()
	return decodeSlotKey(m, kw)
}

// recordCRCOKTolerant is recordCRCOK with any access fault (poison,
// or a garbage pointer from a corrupted value word) treated as a
// failed check instead of a panic.
func recordCRCOKTolerant(m mem, addr uint64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, pok := r.(pmem.AccessError); pok {
				ok = false
				return
			}
			panic(r)
		}
	}()
	return recordCRCOK(m, addr)
}

// FsckReport is the result of one verification (and optional repair)
// pass over the whole pool.
type FsckReport struct {
	// Segments is the number of live segments walked; Faults the
	// damaged ones found. Repairs records successful quarantines;
	// Failed the faults that could not be repaired (repair disabled,
	// or the rebuild itself failed).
	Segments int                `json:"segments"`
	Faults   []SegmentFault     `json:"faults,omitempty"`
	Repairs  []QuarantineReport `json:"repairs,omitempty"`
	Failed   []SegmentFault     `json:"failed,omitempty"`
}

// Clean reports whether no damage was found.
func (r *FsckReport) Clean() bool { return len(r.Faults) == 0 }

// Merge folds another report into r, aggregating per-shard checks into
// one database-level report. Clean/ExitCode/LostKeys on the merged
// report behave as if a single walk had covered every shard.
func (r *FsckReport) Merge(o *FsckReport) {
	if o == nil {
		return
	}
	r.Segments += o.Segments
	r.Faults = append(r.Faults, o.Faults...)
	r.Repairs = append(r.Repairs, o.Repairs...)
	r.Failed = append(r.Failed, o.Failed...)
}

// ExitCode maps the report to the documented spash-fsck exit codes:
// 0 = clean, 1 = damage found and fully repaired, 2 = damage remains
// (repair disabled or failed).
func (r *FsckReport) ExitCode() int {
	switch {
	case len(r.Faults) == 0:
		return 0
	case len(r.Failed) == 0 && len(r.Repairs) == len(r.Faults):
		return 1
	default:
		return 2
	}
}

// LostKeys flattens every repair's lost-key list.
func (r *FsckReport) LostKeys() [][]byte {
	var out [][]byte
	for i := range r.Repairs {
		out = append(out, r.Repairs[i].LostKeys...)
	}
	return out
}

// Fsck walks the persistent registry, verifies every live segment and
// — when repair is set — quarantines and rebuilds the damaged ones.
// The index should be quiescent (it is the offline spash-fsck path;
// online re-verification is StartScrub's job).
func (h *Handle) Fsck(repair bool) (*FsckReport, error) {
	ix := h.ix
	c := h.c
	rep := &FsckReport{}
	var repairing int64
	if repair {
		repairing = 1
	}
	ix.reg.Trace(obs.EvFsckStart, c.Clock(), repairing, 0)
	for i := uint64(0); i < ix.registryCap; i++ {
		e, rok := loadTolerant(ix, c, ix.registryAddr+i*8)
		if !rok {
			rep.Faults = append(rep.Faults, SegmentFault{Seg: i * SegmentSize,
				Poisoned: true, Cause: "registry frame unreadable (poisoned)"})
			rep.Failed = append(rep.Failed, rep.Faults[len(rep.Faults)-1])
			continue
		}
		if e&regValid == 0 {
			continue
		}
		rep.Segments++
		seg, prefix, depth := i*SegmentSize, regPrefix(e), regDepth(e)
		f := ix.verifySegment(c, seg, prefix, depth)
		if f == nil {
			continue
		}
		rep.Faults = append(rep.Faults, *f)
		if !repair {
			continue
		}
		hh := prefix << (64 - depth)
		qr, err := h.Quarantine(hh, seg)
		if err != nil || qr == nil {
			f2 := *f
			if err != nil {
				f2.Cause = fmt.Sprintf("repair failed: %v", err)
			} else {
				f2.Cause = "repair skipped: segment restructured concurrently"
			}
			rep.Failed = append(rep.Failed, f2)
			continue
		}
		rep.Repairs = append(rep.Repairs, *qr)
	}
	if len(rep.Repairs) > 0 {
		// Corruption can destroy occupancy information (a flipped
		// occupied bit), so the live-entry counter delta applied by
		// Quarantine is only an estimate. Fsck runs quiescent: resync
		// the counter against the post-repair truth.
		ix.entries.Store(ix.countOccupied(c))
		ix.entriesApprox.Store(false)
	}
	ix.reg.Trace(obs.EvFsckDone, c.Clock(), int64(len(rep.Faults)), int64(len(rep.Failed)))
	ix.reg.SetGauge(obs.GFsckUnrecoverable, int64(len(rep.Failed)))
	return rep, nil
}

// countOccupied walks every live segment and counts occupied slots,
// skipping unreadable frames.
func (ix *Index) countOccupied(c *pmem.Ctx) int64 {
	total := int64(0)
	for i := uint64(0); i < ix.registryCap; i++ {
		e, rok := loadTolerant(ix, c, ix.registryAddr+i*8)
		if !rok || e&regValid == 0 {
			continue
		}
		seg := i * SegmentSize
		for s := 0; s < SlotsPerSegment; s++ {
			if kw, kok := loadTolerant(ix, c, slotAddr(seg, s)); kok && keyOccupied(kw) {
				total++
			}
		}
	}
	return total
}

// loadTolerant reads one PM word, reporting ok=false on poison.
func loadTolerant(ix *Index, c *pmem.Ctx, addr uint64) (v uint64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, pok := r.(pmem.AccessError); pok {
				v, ok = 0, false
				return
			}
			panic(r)
		}
	}()
	return ix.pool.Load64(c, addr), true
}

// KeyHash exposes the index's key-hash function so external oracles
// (internal/crashtest) can match keys against QuarantineReport.Covers
// and repair-report prefix ranges.
func KeyHash(key []byte) uint64 { return hashKey(key) }

// CheckPlacement scans every live segment and counts occupied slots
// whose key decodes cleanly (inline, or an out-of-line record with a
// matching CRC) but routes to a different segment. This is the silent-
// misplacement shape a value-comparison oracle cannot see: the record
// looks intact, yet lookups for its key go elsewhere and miss it.
// Undecodable or poisoned slots are not counted — they are corruption,
// reported through the verification paths. The index must be
// quiescent.
func (ix *Index) CheckPlacement(c *pmem.Ctx) (misplaced int) {
	m := rawMem{ix.pool, c}
	for i := uint64(0); i < ix.registryCap; i++ {
		e, rok := loadTolerant(ix, c, ix.registryAddr+i*8)
		if !rok || e&regValid == 0 {
			continue
		}
		seg, prefix, depth := i*SegmentSize, regPrefix(e), regDepth(e)
		for s := 0; s < SlotsPerSegment; s++ {
			kw, kok := loadTolerant(ix, c, slotAddr(seg, s))
			if !kok || !keyOccupied(kw) {
				continue
			}
			key, ok := decodeSlotKeyTolerant(m, kw)
			if !ok {
				continue
			}
			if hash.Prefix(hashKey(key), depth) != prefix {
				misplaced++
			}
		}
	}
	return misplaced
}
