package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"spash/internal/alloc"
	"spash/internal/pmem"
)

// integrityKey returns a deterministic key: even i inline (8 bytes),
// odd i out-of-line (longer than a slot payload).
func integrityKey(i int) []byte {
	if i%2 == 0 {
		return k64(uint64(i) | 1<<40)
	}
	return []byte(fmt.Sprintf("integrity-key-%06d-out-of-line", i))
}

func integrityVal(i int) []byte {
	if i%3 == 0 {
		return k64(uint64(i) ^ 0xABCD)
	}
	return bytes.Repeat([]byte{byte(i)}, 40+i%50)
}

func fillIntegrity(t *testing.T, h *Handle, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := h.Insert(integrityKey(i), integrityVal(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

// checkSurvivors verifies the post-repair oracle: every key is either
// intact (right value), reported lost, or hash-covered by a repair
// range. Silent wrong values and unexcused misses fail.
func checkSurvivors(t *testing.T, h *Handle, n int, rep *FsckReport) (lostSeen int) {
	t.Helper()
	lost := map[string]bool{}
	for _, k := range rep.LostKeys() {
		lost[string(k)] = true
	}
	covered := func(hh uint64) bool {
		for i := range rep.Repairs {
			if rep.Repairs[i].Covers(hh) {
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		key := integrityKey(i)
		got, found, err := h.Search(key, nil)
		if err != nil {
			t.Fatalf("post-repair Search(%d): %v", i, err)
		}
		if found {
			if !bytes.Equal(got, integrityVal(i)) {
				t.Fatalf("key %d: silent wrong value after repair", i)
			}
			continue
		}
		lostSeen++
		if !lost[string(key)] && !covered(hashKey(key)) {
			t.Fatalf("key %d: missing but neither reported lost nor in a repaired range", i)
		}
	}
	return lostSeen
}

func TestChecksumsRoundTripAndRecoverAdoption(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 32 << 20, CacheSize: 1 << 20})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(c, pool, al, Config{InitialDepth: 2, Checksums: true})
	if err != nil {
		t.Fatal(err)
	}
	h := ix.NewHandle(c)
	const n = 3000
	fillIntegrity(t, h, n)
	for i := 0; i < n; i += 7 {
		if _, err := h.Update(integrityKey(i), integrityVal(i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 11 {
		if _, err := h.Delete(integrityKey(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if err := h.Insert(integrityKey(i), integrityVal(i)); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	if err := ix.CheckInvariants(c); err != nil {
		t.Fatalf("invariants with checksums on: %v", err)
	}
	if rep, err := h.Fsck(false); err != nil || rep.ExitCode() != 0 {
		t.Fatalf("fsck of healthy pool: err=%v report=%+v", err, rep)
	}

	// Recover must adopt the persistent checksum setting even when the
	// passed Config says off.
	pool.Crash()
	c2 := pool.NewCtx()
	ix2, _, err := Recover(c2, pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !ix2.cfg.Checksums || ix2.sealAddr == 0 {
		t.Fatal("Recover did not adopt persistent checksum setting")
	}
	h2 := ix2.NewHandle(c2)
	for i := 0; i < n; i++ {
		got, found, err := h2.Search(integrityKey(i), nil)
		if err != nil || !found || !bytes.Equal(got, integrityVal(i)) {
			t.Fatalf("key %d after recover: found=%v err=%v", i, found, err)
		}
	}
	if err := ix2.CheckInvariants(c2); err != nil {
		t.Fatalf("invariants after recover: %v", err)
	}
}

func TestSealDetectsBitFlipAndFsckRepairs(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2, Checksums: true})
	c := h.c
	const n = 2000
	fillIntegrity(t, h, n)

	// Flip one bit in a word of the segment owning key 42.
	victim := integrityKey(42)
	r := makeReq(victim)
	_, e := ix.resolveRaw(r.h)
	seg := entrySeg(e)
	rng := rand.New(rand.NewSource(7))
	addr := seg + uint64(rng.Intn(SegmentSize/8))*8
	ix.pool.Store64(c, addr, ix.pool.Load64(c, addr)^(1<<uint(rng.Intn(64))))

	if err := ix.CheckInvariants(c); err == nil {
		t.Fatal("CheckInvariants missed the flipped segment")
	}

	// Every operation touching the segment must fail typed, not lie.
	_, _, err := h.Search(victim, nil)
	if err == nil {
		t.Fatal("Search on corrupt segment returned no error")
	}
	if !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Search error %v does not match ErrCorrupted", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) || ce.Seg != seg {
		t.Fatalf("errors.As gave %+v, want seg %#x", ce, seg)
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("cause of %v is not ErrChecksum", err)
	}
	if err := h.Insert(victim, []byte("x")); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Insert on corrupt segment: %v", err)
	}

	rep, err := h.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExitCode() != 1 {
		t.Fatalf("fsck exit code %d, want 1 (repaired); report %+v", rep.ExitCode(), rep)
	}
	if len(rep.Repairs) == 0 || rep.Repairs[0].Seg != seg {
		t.Fatalf("fsck repaired %+v, want seg %#x", rep.Repairs, seg)
	}
	if err := ix.CheckInvariants(c); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
	lost := checkSurvivors(t, h, n, rep)
	if lost > SlotsPerSegment {
		t.Fatalf("%d keys lost from a single-segment flip", lost)
	}
	// The index must be fully writable again.
	for i := 0; i < n; i += 13 {
		if err := h.Insert(integrityKey(i), integrityVal(i)); err != nil {
			t.Fatalf("post-repair insert: %v", err)
		}
	}
}

func TestPoisonedSegmentQuarantine(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2, Checksums: true})
	c := h.c
	const n = 1500
	fillIntegrity(t, h, n)

	victim := integrityKey(99)
	r := makeReq(victim)
	_, e := ix.resolveRaw(r.h)
	seg := entrySeg(e)
	ix.pool.PoisonLine(seg)

	_, _, err := h.Search(victim, nil)
	if !errors.Is(err, ErrCorrupted) || !errors.Is(err, pmem.ErrPoisoned) {
		t.Fatalf("Search on poisoned segment: %v", err)
	}

	rep, ferr := h.Fsck(true)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if rep.ExitCode() != 1 {
		t.Fatalf("fsck exit %d, report %+v", rep.ExitCode(), rep)
	}
	if len(rep.Faults) != 1 || !rep.Faults[0].Poisoned {
		t.Fatalf("faults: %+v", rep.Faults)
	}
	if len(rep.Repairs) != 1 || rep.Repairs[0].Salvaged != 0 {
		t.Fatalf("poisoned frame must salvage nothing: %+v", rep.Repairs)
	}
	if ix.pool.PoisonedLines() != 0 {
		t.Fatalf("%d poisoned lines survive repair (rebuild must heal)", ix.pool.PoisonedLines())
	}
	if err := ix.CheckInvariants(c); err != nil {
		t.Fatalf("invariants after poison repair: %v", err)
	}
	checkSurvivors(t, h, n, rep)
}

func TestFsckWithoutRepairReportsExit2(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2, Checksums: true})
	fillIntegrity(t, h, 800)
	segs := ix.SegmentAddrs(h.c)
	ix.pool.PoisonLine(segs[len(segs)/2])
	rep, err := h.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExitCode() != 2 || rep.Clean() {
		t.Fatalf("verify-only fsck of damaged pool: exit %d", rep.ExitCode())
	}
}

func TestCheckPlacementFlagsMisroutedKey(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 4})
	c := h.c
	fillIntegrity(t, h, 500)
	if got := ix.CheckPlacement(c); got != 0 {
		t.Fatalf("healthy pool reports %d misplaced", got)
	}
	// Plant an occupied inline key in a free slot of a segment that
	// does not own it: checksum-clean, CheckInvariants-visible, and —
	// crucially — invisible to any value-comparison oracle.
	key := k64(0xDEAD_BEEF)
	r := makeReq(key)
	_, e := ix.resolveRaw(r.h)
	home := entrySeg(e)
	var alien uint64
	for _, s := range ix.SegmentAddrs(c) {
		if s != home {
			alien = s
			break
		}
	}
	planted := false
	for s := 0; s < SlotsPerSegment && !planted; s++ {
		if !keyOccupied(ix.pool.Load64(c, slotAddr(alien, s))) {
			ix.pool.Store64(c, slotAddr(alien, s), makeKeyWord(true, r.fp, r.kpay))
			planted = true
		}
	}
	if !planted {
		t.Skip("no free slot in alien segment")
	}
	if got := ix.CheckPlacement(c); got != 1 {
		t.Fatalf("CheckPlacement = %d, want 1", got)
	}
}

func TestCorruptionErrorMatching(t *testing.T) {
	ce := &CorruptionError{Seg: 0x100, Bucket: 2, Cause: ErrChecksum}
	if !errors.Is(ce, ErrCorrupted) || !errors.Is(ce, ErrChecksum) {
		t.Fatal("CorruptionError Is-chain broken")
	}
	var out *CorruptionError
	if !errors.As(fmt.Errorf("wrapped: %w", ce), &out) || out.Bucket != 2 {
		t.Fatal("CorruptionError As-chain broken")
	}
	ae := pmem.AccessError{Addr: 0x40, Size: 256, Poisoned: true}
	if !errors.Is(error(ae), pmem.ErrPoisoned) {
		t.Fatal("poisoned AccessError must match ErrPoisoned")
	}
	if errors.Is(error(pmem.AccessError{Addr: 1}), pmem.ErrPoisoned) {
		t.Fatal("plain AccessError must not match ErrPoisoned")
	}
}

func TestSealMaintainedAcrossSplitsAndMerges(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 1, Checksums: true})
	c := h.c
	const n = 4000
	fillIntegrity(t, h, n) // forces many splits
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			if _, err := h.Delete(integrityKey(i)); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
	}
	for i := 0; i < 64; i++ {
		h.TryMerge(integrityKey(i)) // exercise merge seal stores
	}
	if err := ix.CheckInvariants(c); err != nil {
		t.Fatalf("seals out of step after splits/merges: %v", err)
	}
	if rep, err := h.Fsck(false); err != nil || !rep.Clean() {
		t.Fatalf("fsck after churn: err=%v faults=%+v", err, rep.Faults)
	}
}

// TestCheckInvariantsPoisonWrapsErrPoisoned guards the %w fix in
// CheckInvariants' AccessError backstop: the wrapped scan error must
// still match pmem.ErrPoisoned through errors.Is, so fsck callers can
// distinguish damaged media from structural corruption.
func TestCheckInvariantsPoisonWrapsErrPoisoned(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2, Checksums: true})
	c := h.c
	fillIntegrity(t, h, 500)

	victim := integrityKey(42)
	r := makeReq(victim)
	_, e := ix.resolveRaw(r.h)
	ix.pool.PoisonLine(entrySeg(e))

	err := ix.CheckInvariants(c)
	if err == nil {
		t.Fatal("CheckInvariants did not report the poisoned segment")
	}
	if !errors.Is(err, pmem.ErrPoisoned) {
		t.Fatalf("CheckInvariants error lost its cause (want errors.Is ErrPoisoned): %v", err)
	}
}
