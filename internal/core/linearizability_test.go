package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
)

// Register-style linearizability check on one hot key: writers stamp
// globally unique values and record [start,end] logical intervals;
// readers record what they saw. A read is a *stale-read violation* if
// the value it returned was definitively superseded before the read
// began — i.e. there exists a write W' such that
//
//	write(v).end < W'.start  and  W'.end < read.start
//
// (W' started after v's write finished and finished before the read
// started, so no linearisation order can place the read before W').
// This is the classic sound (if partial) register check, and the
// property the paper's HTM protocol must provide where CAS-based or
// seqlock designs can leak stale values.
func TestRegisterLinearizability(t *testing.T) {
	for _, mode := range []ConcurrencyMode{ModeHTM, ModeWriteLock, ModeRWLock} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, h0 := newTestIndex(t, Config{Concurrency: mode, LockStripeBits: 4})
			key := []byte("linearizable-key")
			if err := h0.Insert(key, k64(0)); err != nil {
				t.Fatal(err)
			}

			var clock atomic.Int64
			type span struct{ start, end int64 }
			type read struct {
				span
				val uint64
			}
			const writers, readers, wOps, rOps = 3, 3, 2000, 4000
			writes := make([]map[uint64]span, writers)
			reads := make([][]read, readers)

			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				writes[w] = make(map[uint64]span, wOps)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := ix.NewHandle(nil)
					defer h.Close()
					for i := 0; i < wOps; i++ {
						v := uint64(w)<<32 | uint64(i) + 1
						start := clock.Add(1)
						if found, err := h.Update(key, k64(v)); err != nil || !found {
							t.Errorf("update: %v %v", found, err)
							return
						}
						writes[w][v] = span{start, clock.Add(1)}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				reads[r] = make([]read, 0, rOps)
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					h := ix.NewHandle(nil)
					defer h.Close()
					for i := 0; i < rOps; i++ {
						start := clock.Add(1)
						val, ok, err := h.Search(key, nil)
						if err != nil || !ok {
							t.Errorf("search: %v %v", ok, err)
							return
						}
						reads[r] = append(reads[r], read{
							span{start, clock.Add(1)},
							binary.LittleEndian.Uint64(val),
						})
					}
				}(r)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Merge write history.
			hist := map[uint64]span{0: {0, 0}} // initial value
			for w := 0; w < writers; w++ {
				for v, s := range writes[w] {
					hist[v] = s
				}
			}
			// Sort write spans by end time for the supersession scan.
			type wrec struct {
				span
				v uint64
			}
			var ws []wrec
			for v, s := range hist {
				ws = append(ws, wrec{s, v})
			}

			violations := 0
			for r := 0; r < readers; r++ {
				for _, rd := range reads[r] {
					wspan, known := hist[rd.val]
					if !known {
						t.Fatalf("read returned never-written value %#x", rd.val)
					}
					// Stale iff some write begins after wspan.end and
					// ends before rd.start.
					for _, o := range ws {
						if o.start > wspan.end && o.end < rd.start {
							violations++
							break
						}
					}
				}
			}
			if violations > 0 {
				t.Fatalf("%d stale reads detected under %v", violations, mode)
			}
		})
	}
}
