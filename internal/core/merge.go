package core

import (
	"sync/atomic"

	"spash/internal/hash"
	"spash/internal/htm"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// mergeAttempts bounds transactional merge retries; merging is
// opportunistic, so contention simply cancels it.
const mergeAttempts = 4

// mergeThreshold is the maximum combined entry count for which two
// buddy segments are merged back into one (half a segment, leaving
// slack for subsequent inserts).
const mergeThreshold = SlotsPerSegment / 2

// TryMerge merges the (empty) segment responsible for key into its
// buddy segment, undoing a split (§III-A: "segment merging is the
// reverse process of segment splitting"). It is called automatically
// on a sample of deletions and may be called explicitly after bulk
// deletes. Returns whether a merge happened.
func (h *Handle) TryMerge(key []byte) (merged bool) {
	h.c.BeginOp()
	defer h.c.EndOp()
	// Merging decodes both buddies' key records; on poisoned media the
	// merge is simply abandoned (the scrubber/fsck will quarantine).
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(pmem.AccessError); ok && ae.Poisoned {
				merged = false
				return
			}
			panic(r)
		}
	}()
	r := makeReq(key)
	if h.ix.cfg.Concurrency != ModeHTM {
		return h.ix.mergeLocked(h, &r)
	}
	ix := h.ix
	var freedSeg uint64
	liveAfter := 0
	mergedDepth := uint(0)
	for attempt := 0; attempt < mergeAttempts; attempt++ {
		code, _ := ix.tm.Run(h.c, ix.pool, func(tx *htm.Txn) error {
			freedSeg = 0
			if tx.LoadVol(&ix.dirGen)&1 == 1 {
				return nil // skip during resizes
			}
			d := ix.dir.Load()
			e := tx.LoadVol(&d.entries[d.index(r.h)])
			if entryLocked(e) {
				return nil
			}
			seg, depth := entrySeg(e), entryDepth(e)
			if depth == 0 {
				return nil
			}
			p := hash.Prefix(r.h, depth)
			buddyBase := (p ^ 1) << (d.depth - depth)
			be := tx.LoadVol(&d.entries[buddyBase])
			if entryLocked(be) || entryDepth(be) != depth {
				return nil
			}
			buddySeg := entrySeg(be)
			lo := p >> 1 << (d.depth - depth + 1)
			n := uint64(1) << (d.depth - depth + 1)
			// Validate every covering entry of both buddies before
			// rewriting them (see the matching check in split).
			for j := uint64(0); j < n; j++ {
				cur := tx.LoadVol(&d.entries[lo+j])
				if entryLocked(cur) || entryDepth(cur) != depth {
					return nil
				}
				if s := entrySeg(cur); s != seg && s != buddySeg {
					return nil
				}
			}
			// Merge carries data: both segments' live entries must fit
			// comfortably in one (the reverse of a split, §III-A).
			m := txMem{tx}
			if ix.sealAddr != 0 && (ix.verifySeal(m, seg) != 0 || ix.verifySeal(m, buddySeg) != 0) {
				// Relayouting a damaged buddy would launder corrupt
				// words under a fresh seal; leave it for scrub/fsck.
				return nil
			}
			entsA := ix.decodeSegment(h.c, m, seg)
			entsB := ix.decodeSegment(h.c, m, buddySeg)
			if len(entsA)+len(entsB) > mergeThreshold {
				return nil
			}
			liveAfter, mergedDepth = len(entsA)+len(entsB), depth-1
			img, ok := layoutSegment(append(entsA, entsB...))
			if !ok {
				return nil // pathological bucket skew; keep both
			}
			for i, w := range img {
				addr := buddySeg + uint64(i)*8
				if tx.Load(addr) != w {
					tx.Store(addr, w)
				}
			}
			for j := uint64(0); j < n; j++ {
				tx.StoreVol(&d.entries[lo+j], makeEntry(buddySeg, depth-1))
			}
			tx.Store(ix.regAddrOf(seg), 0)
			tx.Store(ix.regAddrOf(buddySeg), makeRegEntry(p>>1, depth-1))
			if ix.sealAddr != 0 {
				tx.Store(ix.sealAddrOf(buddySeg), sealOfImage(&img))
				tx.Store(ix.sealAddrOf(seg), 0)
			}
			freedSeg = seg
			return nil
		})
		switch code {
		case htm.Committed:
			if freedSeg == 0 {
				return false
			}
			h.ah.Free(h.c, freedSeg, SegmentSize)
			ix.segments.Add(-1)
			ix.merges.Add(1)
			h.lane.Inc(obs.CMerges)
			h.lane.Inc(obs.CSegFree)
			ix.reg.Trace(obs.EvMerge, h.c.Clock(), int64(mergedDepth), int64(liveAfter))
			ix.reg.ObserveKeyed(obs.HSegOccupancy, r.h, liveAfter)
			return true
		case htm.Conflict:
			ix.txConflicts.Add(1)
			h.lane.Inc(obs.CHTMConflicts)
		case htm.Capacity:
			ix.txCapacity.Add(1)
			h.lane.Inc(obs.CHTMCapacity)
			return false // covering range too wide; not worth forcing
		case htm.Explicit:
			return false
		}
	}
	return false
}

// mergeLocked is the lock-mode merge: it requires the buddy pair to
// fall inside one lock stripe (depth-1 ≥ LockStripeBits), which the
// stripe-covers-whole-segments invariant guarantees for all but the
// shallowest segments — those simply stay unmerged.
func (ix *Index) mergeLocked(h *Handle, r *req) bool {
	stripe := ix.stripeOf(r.h)
	ix.lockStripe(h.c, stripe)
	defer ix.unlockStripe(h.c, stripe)
	d := ix.dir.Load()
	_, e := ix.resolveRaw(r.h)
	seg, depth := entrySeg(e), entryDepth(e)
	if depth == 0 || depth-1 < ix.cfg.LockStripeBits {
		return false
	}
	m := rawMem{ix.pool, h.c}
	p := hash.Prefix(r.h, depth)
	buddyBase := (p ^ 1) << (d.depth - depth)
	be := atomic.LoadUint64(&d.entries[buddyBase])
	if entryDepth(be) != depth {
		return false
	}
	buddySeg := entrySeg(be)
	if ix.sealAddr != 0 && (ix.verifySeal(m, seg) != 0 || ix.verifySeal(m, buddySeg) != 0) {
		return false
	}
	entsA := ix.decodeSegment(h.c, m, seg)
	entsB := ix.decodeSegment(h.c, m, buddySeg)
	if len(entsA)+len(entsB) > mergeThreshold {
		return false
	}
	img, ok := layoutSegment(append(entsA, entsB...))
	if !ok {
		return false
	}
	for i, w := range img {
		m.store(buddySeg+uint64(i)*8, w)
	}
	lo := p >> 1 << (d.depth - depth + 1)
	n := uint64(1) << (d.depth - depth + 1)
	for j := uint64(0); j < n; j++ {
		atomic.StoreUint64(&d.entries[lo+j], makeEntry(buddySeg, depth-1))
	}
	m.store(ix.regAddrOf(seg), 0)
	m.store(ix.regAddrOf(buddySeg), makeRegEntry(p>>1, depth-1))
	if ix.sealAddr != 0 {
		m.store(ix.sealAddrOf(buddySeg), sealOfImage(&img))
		m.store(ix.sealAddrOf(seg), 0)
	}
	h.ah.Free(h.c, seg, SegmentSize)
	ix.segments.Add(-1)
	ix.merges.Add(1)
	h.lane.Inc(obs.CMerges)
	h.lane.Inc(obs.CSegFree)
	ix.reg.Trace(obs.EvMerge, h.c.Clock(), int64(depth-1), int64(len(entsA)+len(entsB)))
	ix.reg.ObserveKeyed(obs.HSegOccupancy, r.h, len(entsA)+len(entsB))
	return true
}
