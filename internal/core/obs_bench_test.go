package core

import (
	"encoding/binary"
	"testing"
)

// BenchmarkObsOverhead measures the cost of the observability
// instrumentation on the index hot path: the same insert+search mix
// with the registry enabled (default Config) and disabled
// (Config.DisableObs, nil registry, every site reduces to a nil
// check). The acceptance bar for the obs layer is ≤2% between the two.
func BenchmarkObsOverhead(b *testing.B) {
	for _, bc := range []struct {
		name string
		cfg  Config
	}{
		{"enabled", Config{}},
		{"disabled", Config{DisableObs: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			_, h := newTestIndex(b, bc.cfg)
			defer h.Close()
			key := make([]byte, 8)
			val := make([]byte, 8)
			const keySpace = 1 << 16
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i%keySpace))
				binary.LittleEndian.PutUint64(val, uint64(i))
				if i%4 == 0 {
					if err := h.Insert(key, val); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, _, err := h.Search(key, val[:0]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
