package core

import (
	"errors"
	"runtime"

	"spash/internal/alloc"
	"spash/internal/htm"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// errKVTooLarge rejects empty keys and oversized keys/values.
var errKVTooLarge = errors.New("core: key/value empty or exceeds MaxKVLen")

// Handle is a per-worker execution context: the worker's pmem context
// (virtual clock and counters), its allocator cache (thread-local free
// lists and the compacted-flush chunk) and scratch buffers. A Handle
// must not be used concurrently.
type Handle struct {
	ix *Index
	c  *pmem.Ctx
	ah *alloc.Handle
	// lane is this worker's private observability stripe (nil when
	// the registry is disabled; all methods nil-safe).
	lane *obs.Lane

	// span is the in-flight latency-attribution span, held by value so
	// the unsampled path never allocates (span.go). spanEvery is the
	// sampling period (0 = disabled); opSeq the per-worker op counter
	// driving the 1-in-spanEvery election.
	span      obs.Span
	spanEvery uint64
	opSeq     uint64

	// resizeEpoch is the last stop-the-world resize this worker
	// accounted for.
	resizeEpoch int64

	// batch is the pipeline scratch state (pipeline.go).
	batch batchState
}

// NewHandle returns a worker handle bound to ctx. Passing nil creates
// a fresh pmem context.
func (ix *Index) NewHandle(c *pmem.Ctx) *Handle {
	if c == nil {
		c = ix.pool.NewCtx()
	}
	h := &Handle{ix: ix, c: c, ah: ix.alloc.NewHandle(), lane: ix.reg.Lane()}
	if ix.reg != nil && ix.cfg.SpanSample > 0 {
		h.spanEvery = uint64(ix.cfg.SpanSample)
	}
	return h
}

// Ctx returns the handle's pmem context.
func (h *Handle) Ctx() *pmem.Ctx { return h.c }

// Index returns the handle's index.
func (h *Handle) Index() *Index { return h.ix }

// Close returns the handle's cached resources.
func (h *Handle) Close() {
	h.ah.Close()
}

// exec runs body atomically against the authoritative segment for r,
// dispatching on the concurrency mode. body must be idempotent (it can
// run several times) and reset its captured outputs on entry; it
// performs all shared-memory access through m. readonly enables the
// lock-free/read-lock read paths of the lock modes.
func (h *Handle) exec(r *req, readonly bool, body func(m mem, seg uint64) error) error {
	// The corruption boundary wraps every mode's body: poisoned-media
	// and record-CRC panics become *CorruptionError returns, and (with
	// checksums on) the segment seal is verified before / recomputed
	// after the body (integrity.go).
	body = h.guardBody(readonly, body)
	if h.ix.cfg.Concurrency != ModeHTM {
		return h.execLocked(r, readonly, body)
	}
	ix := h.ix
	// A completed stop-the-world resize stalled every worker for its
	// duration; charge the expected overlap (half) once per epoch.
	if e := ix.resizeEpoch.Load(); e != h.resizeEpoch {
		h.c.Charge((e - h.resizeEpoch) * ix.lastResizeCost.Load() / 2)
		h.resizeEpoch = e
	}
	conflicts := 0
	for {
		attempt := h.spanAttempt()
		code, err := ix.tm.Run(h.c, ix.pool, func(tx *htm.Txn) error {
			_, entry, rerr := ix.resolveTx(tx, r.h)
			if rerr != nil {
				return rerr
			}
			return body(txMem{tx}, entrySeg(entry))
		})
		switch code {
		case htm.Committed:
			h.spanCommit(attempt)
			return nil
		case htm.Conflict:
			h.spanAbort(attempt)
			ix.txConflicts.Add(1)
			h.lane.Inc(obs.CHTMConflicts)
			conflicts++
			if conflicts > ix.cfg.MaxTxRetries {
				return h.execFallback(r, body)
			}
		case htm.Capacity:
			h.spanAbort(attempt)
			ix.txCapacity.Add(1)
			h.lane.Inc(obs.CHTMCapacity)
			ix.reg.Trace(obs.EvHTMCapacity, h.c.Clock(), int64(r.h>>48), 0)
			return h.execFallback(r, body)
		case htm.Explicit:
			h.spanAbort(attempt)
			re, ok := err.(retryError)
			if !ok {
				return err
			}
			wait := h.spanLap()
			switch re {
			case errNeedSplit:
				if serr := ix.split(h, r.h); serr != nil {
					return serr
				}
			case errResizing:
				ix.waitResizeCtx(h.c)
			case errLocked:
				ix.pool.CheckLive()
				runtime.Gosched()
			default:
				// errSegMoved and friends: redo from preparation.
			}
			// Split/resize waits on the way count as retry cost.
			h.spanAdd(obs.PhaseHTMRetry, wait)
		}
	}
}

// execFallback is the two-phase protocol's fallback path (§IV-A): the
// per-segment lock — the lock bit of the segment's canonical covering
// directory entry — is taken, excluding new transactions on the whole
// segment (every transaction checks the canonical entry in resolveTx)
// and aborting in-flight ones (the CAS bumps the entry's stripe
// version).
// The body then runs raw, with bump-stores so optimistic readers of
// the touched lines abort cleanly.
func (h *Handle) execFallback(r *req, body func(m mem, seg uint64) error) error {
	ix := h.ix
	ix.fallbacks.Add(1)
	h.lane.Inc(obs.CLockFallbacks)
	ix.reg.Trace(obs.EvLockFallback, h.c.Clock(), int64(r.h>>48), 0)
	// Everything up to the irrevocable body — lock spins, resize waits
	// — is retry cost; the body itself splits probe/publish like a
	// committed attempt.
	wait := h.spanLap()
	for {
		cPtr, ce, seg, ok := ix.resolveCanonicalNoWait(r.h)
		if !ok {
			ix.waitResize()
			continue
		}
		if entryLocked(ce) {
			ix.pool.CheckLive()
			runtime.Gosched()
			continue
		}
		if !ix.tm.BumpCASVol(h.c, cPtr, ce, ce|entryLock) {
			continue
		}
		// The canonical entry may have stopped being authoritative
		// between the read and the CAS (a doubling stage copied its
		// partition, or a halving started). Never block while holding
		// the lock.
		cPtr2, _, seg2, ok2 := ix.resolveCanonicalNoWait(r.h)
		if !ok2 || cPtr2 != cPtr || seg2 != seg {
			ix.tm.BumpStoreVol(h.c, cPtr, ce)
			ix.waitResize()
			continue
		}
		h.spanAdd(obs.PhaseHTMRetry, wait)
		attempt := h.spanAttempt()
		err := ix.tm.Irrevocable(h.c, ix.pool, func(it *htm.ITxn) error {
			return body(iMem{it}, seg)
		})
		ix.tm.BumpStoreVol(h.c, cPtr, ce) // unlock
		if err == nil {
			h.spanCommit(attempt)
			return nil
		}
		if re, ok := err.(retryError); ok {
			h.spanAbort(attempt)
			wait = h.spanLap()
			if re == errNeedSplit {
				if serr := ix.split(h, r.h); serr != nil {
					return serr
				}
			}
			continue
		}
		return err
	}
}

// Search looks key up and, when found, appends its value to dst.
func (h *Handle) Search(key, dst []byte) ([]byte, bool, error) {
	h.c.BeginOp()
	defer h.c.EndOp()
	r := makeReq(key)
	h.beginSpan(obs.SpanGet, r.h)
	defer h.endSpan()
	found := false
	out := dst
	err := h.exec(&r, true, func(m mem, seg uint64) error {
		found, out = false, dst
		ps := h.spanLap()
		idx, _, vw, pr := h.ix.locate(m, h.c, seg, &r)
		h.spanProbe(ps)
		h.lane.Observe(obs.HProbeLen, pr)
		if idx < 0 {
			return nil
		}
		found = true
		if h.ix.sealAddr != 0 && !valueIsInline(vw) && !recordCRCOK(m, wordPayload(vw)) {
			// The slot is sealed but the out-of-line record it points
			// at is rotten: fail typed rather than return wrong bytes.
			return &CorruptionError{Seg: seg, Bucket: bucketOf(idx),
				Cause: ErrRecordChecksum}
		}
		out = loadValue(m, vw, dst)
		return nil
	})
	if err != nil {
		return dst, false, err
	}
	return out, found, nil
}

// Insert inserts key→val, replacing any existing value (upsert).
// Out-of-line records are prepared before the atomic section: under
// the compacted-flush policy (§III-C) small records are appended to
// the handle's XPLine chunk and flushed once per chunk.
func (h *Handle) Insert(key, val []byte) error {
	if len(key) == 0 || len(key) > MaxKVLen || len(val) > MaxKVLen {
		return errKVTooLarge
	}
	h.c.BeginOp()
	defer h.c.EndOp()
	r := makeReq(key)
	h.beginSpan(obs.SpanInsert, r.h)
	defer h.endSpan()

	kpay, kInline := r.kpay, r.kInline
	if !kInline {
		addr, err := h.allocRecord(key)
		if err != nil {
			return err
		}
		kpay = addr
	}
	kw := makeKeyWord(kInline, r.fp, kpay)

	vpay, vInline := inlineValuePayload(val)
	if !vInline {
		addr, err := h.allocRecord(val)
		if err != nil {
			return err
		}
		vpay = addr
	}
	vwBase := makeValueWord(vInline, vpay)

	replaced := false
	var freeVal uint64
	freeValLen := 0
	err := h.exec(&r, false, func(m mem, seg uint64) error {
		replaced, freeVal, freeValLen = false, 0, 0
		ps := h.spanLap()
		idx, _, oldVW, pr := h.ix.locate(m, h.c, seg, &r)
		h.spanProbe(ps)
		h.lane.Observe(obs.HProbeLen, pr)
		if idx >= 0 {
			va := slotAddr(seg, idx) + 8
			m.store(va, oldVW&hintMask|vwBase)
			replaced = true
			if !valueIsInline(oldVW) {
				freeVal = wordPayload(oldVW)
				freeValLen = recordLen(m, freeVal)
			}
			return nil
		}
		free, hintSlot, ok := findFree(m, seg, r.h)
		if !ok {
			return errNeedSplit
		}
		placeEntry(m, seg, free, hintSlot, &r, kw, vwBase)
		return nil
	})
	if err != nil {
		return err
	}
	if replaced {
		// The existing slot keeps its original key record.
		if !kInline {
			h.freeRecord(kpay, len(key))
		}
		if freeVal != 0 {
			h.freeRecord(freeVal, freeValLen)
		}
	} else {
		h.ix.entries.Add(1)
	}
	return nil
}

// Update replaces the value of an existing key using the adaptive
// in-place strategy (§III-B): same-class out-of-line values are
// overwritten in place inside the atomic section; the flush decision
// afterwards follows the configured policy and the hotspot detector.
// Returns false when the key is absent.
func (h *Handle) Update(key, val []byte) (bool, error) {
	if len(key) == 0 || len(key) > MaxKVLen || len(val) > MaxKVLen {
		return false, errKVTooLarge
	}
	h.c.BeginOp()
	defer h.c.EndOp()
	r := makeReq(key)
	h.beginSpan(obs.SpanUpdate, r.h)
	defer h.endSpan()
	vpay, vInline := inlineValuePayload(val)
	var newAddr uint64
	if !vInline {
		addr, err := h.allocRecord(val)
		if err != nil {
			return false, err
		}
		newAddr = addr
	}

	found, usedNew := false, false
	var freeOld, flushAddr uint64
	freeOldLen := 0
	err := h.exec(&r, false, func(m mem, seg uint64) error {
		found, usedNew, freeOld, freeOldLen, flushAddr = false, false, 0, 0, 0
		ps := h.spanLap()
		idx, _, vw, pr := h.ix.locate(m, h.c, seg, &r)
		h.spanProbe(ps)
		h.lane.Observe(obs.HProbeLen, pr)
		if idx < 0 {
			return nil
		}
		found = true
		va := slotAddr(seg, idx) + 8
		if vInline {
			m.store(va, vw&hintMask|makeValueWord(true, vpay))
			if !valueIsInline(vw) {
				freeOld = wordPayload(vw)
				freeOldLen = recordLen(m, freeOld)
			}
			return nil
		}
		if !valueIsInline(vw) {
			old := wordPayload(vw)
			oldLen := recordLen(m, old)
			if h.recordAllocSize(oldLen) == h.recordAllocSize(len(val)) {
				writeRecordValue(m, old, val)
				flushAddr = old
				return nil
			}
			freeOld = old
			freeOldLen = oldLen
		}
		m.store(va, vw&hintMask|makeValueWord(false, newAddr))
		usedNew = true
		flushAddr = newAddr
		return nil
	})
	if err != nil {
		return false, err
	}
	if newAddr != 0 && (!found || !usedNew) {
		h.freeRecord(newAddr, len(val))
	}
	if !found {
		return false, nil
	}
	if usedNew {
		h.lane.Inc(obs.CUpdateAppend)
	} else {
		h.lane.Inc(obs.CUpdateInPlace)
	}
	if freeOld != 0 {
		h.freeRecord(freeOld, freeOldLen)
	}
	h.updateFlushPolicy(&r, flushAddr, len(val))
	return true, nil
}

// updateFlushPolicy applies Table I after a committed update: hot
// entries and small entries are left to the persistent cache; cold
// entries larger than a cacheline are flushed asynchronously to avoid
// eviction-order write amplification.
func (h *Handle) updateFlushPolicy(r *req, recAddr uint64, size int) {
	ix := h.ix
	switch ix.cfg.Update {
	//spash:allow flushfence -- Table I "w/o flush" mode: durability is deliberately delegated to the persistent cache (eADR)
	case UpdateNeverFlush:
		return
	case UpdateAlwaysFlush:
		if recAddr != 0 {
			fs := h.spanLap()
			ix.pool.Flush(h.c, recAddr, uint64(recordSpace(size)))
			h.spanAdd(obs.PhaseMediaFlush, fs)
			h.lane.Inc(obs.CUpdateFlushes)
		}
		return
	//spash:allow flushfence -- hot entries stay cache-resident by design (Table I); the cold path falls through to the flush below the switch
	case UpdateOracle:
		if ix.cfg.OracleHot != nil && ix.cfg.OracleHot(r.h) {
			ix.hot.hits.Add(1)
			h.lane.Inc(obs.CFlushSkipHot)
			return
		}
	//spash:allow flushfence -- adaptive mode skips the flush only for entries the hot tracker says are cache-resident; cold entries fall through to the flush below
	default: // UpdateAdaptive
		if ix.hot.touch(r.h) {
			h.lane.Inc(obs.CFlushSkipHot)
			return
		}
	}
	// Cold: flush only multi-cacheline entries.
	if recAddr != 0 && size > pmem.CachelineSize {
		fs := h.spanLap()
		ix.pool.Flush(h.c, recAddr, uint64(recordSpace(size)))
		h.spanAdd(obs.PhaseMediaFlush, fs)
		h.lane.Inc(obs.CUpdateFlushes)
	} else {
		h.lane.Inc(obs.CFlushSkipSmall)
	}
}

// Delete removes key, returning whether it was present. Deletes that
// empty a segment (sampled, 1-in-16) attempt a merge with the buddy
// segment.
func (h *Handle) Delete(key []byte) (bool, error) {
	h.c.BeginOp()
	defer h.c.EndOp()
	r := makeReq(key)
	h.beginSpan(obs.SpanDelete, r.h)
	defer h.endSpan()
	found := false
	var freeKey, freeVal uint64
	freeValLen := 0
	err := h.exec(&r, false, func(m mem, seg uint64) error {
		found, freeKey, freeVal, freeValLen = false, 0, 0, 0
		ps := h.spanLap()
		idx, kw, vw, pr := h.ix.locate(m, h.c, seg, &r)
		h.spanProbe(ps)
		h.lane.Observe(obs.HProbeLen, pr)
		if idx < 0 {
			return nil
		}
		found = true
		if !keyIsInline(kw) {
			freeKey = wordPayload(kw)
		}
		if !valueIsInline(vw) {
			freeVal = wordPayload(vw)
			freeValLen = recordLen(m, freeVal)
		}
		clearEntry(m, seg, idx, r.h)
		return nil
	})
	if err != nil || !found {
		return false, err
	}
	if freeKey != 0 {
		h.freeRecord(freeKey, len(key))
	}
	if freeVal != 0 {
		h.freeRecord(freeVal, freeValLen)
	}
	h.ix.entries.Add(-1)
	// Close the span before the sampled merge attempt: structural
	// maintenance is not part of this delete's latency story.
	h.endSpan()
	if r.h>>32&0xF == 0 {
		h.TryMerge(key)
	}
	return true, nil
}

// allocRecord allocates and writes an out-of-line record for data,
// applying the configured insertion policy's placement and flushing.
func (h *Handle) allocRecord(data []byte) (uint64, error) {
	space := h.recordAllocSize(len(data))
	addr, filledChunk, err := h.ah.Alloc(h.c, space)
	if err != nil {
		return 0, err
	}
	writeRecordRaw(h.c, h.ix.pool, addr, data)
	switch h.ix.cfg.Insert {
	case InsertCompactedFlush:
		if filledChunk != 0 {
			// One XPLine write-back for the whole compacted chunk.
			fs := h.spanLap()
			h.ix.pool.Flush(h.c, filledChunk, pmem.XPLineSize)
			h.spanAdd(obs.PhaseMediaFlush, fs)
			h.lane.Inc(obs.CChunkFlushes)
		} else if space > 128 {
			// Large cold record: flush to avoid eviction-order
			// amplification (DP2).
			fs := h.spanLap()
			h.ix.pool.Flush(h.c, addr, uint64(recordSpace(len(data))))
			h.spanAdd(obs.PhaseMediaFlush, fs)
			h.lane.Inc(obs.CRecordFlushes)
		}
	case InsertNoCompact:
		fs := h.spanLap()
		h.ix.pool.Flush(h.c, addr, uint64(recordSpace(len(data))))
		h.spanAdd(obs.PhaseMediaFlush, fs)
		h.lane.Inc(obs.CRecordFlushes)
	//spash:allow flushfence -- §III-C compact-no-flush mode: small records are absorbed by the persistent cache and written back on eviction
	case InsertCompactNoFlush:
		// Leave everything to cache eviction.
	}
	return addr, nil
}

// recordAllocSize is the allocation request for a record of n payload
// bytes under the configured insertion policy (InsertNoCompact denies
// small records the XPLine-chunk classes).
func (h *Handle) recordAllocSize(n int) int {
	space := recordSpace(n)
	if h.ix.cfg.Insert == InsertNoCompact && space <= 128 {
		return pmem.XPLineSize
	}
	return alloc.ClassSize(space)
}

// freeRecord returns a record's block to the allocator.
func (h *Handle) freeRecord(addr uint64, payloadLen int) {
	h.ah.Free(h.c, addr, h.recordAllocSize(payloadLen))
}
