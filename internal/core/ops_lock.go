package core

import (
	"runtime"
	"sync/atomic"

	"spash/internal/hash"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// errNeedDouble is the lock-mode signal that a split requires the
// directory to grow first.
var errNeedDouble = retryError{"directory full"}

// stripeOf maps a key hash to its lock stripe. Because the stripe is a
// hash prefix no longer than any segment's local depth (enforced by
// withDefaults), one stripe always covers whole segments.
func (ix *Index) stripeOf(h uint64) uint64 {
	return h >> (64 - ix.cfg.LockStripeBits)
}

func (ix *Index) lockStripe(c *pmem.Ctx, s uint64) {
	if ix.cfg.Concurrency == ModeWriteLock {
		ix.locks[s].Lock(c)
		atomic.AddUint64(&ix.seqs[s], 1) // odd: readers retry
	} else {
		ix.rwlocks[s].Lock(c)
	}
}

func (ix *Index) unlockStripe(c *pmem.Ctx, s uint64) {
	if ix.cfg.Concurrency == ModeWriteLock {
		atomic.AddUint64(&ix.seqs[s], 1) // even
		ix.locks[s].Unlock(c)
	} else {
		ix.rwlocks[s].Unlock(c)
	}
}

// execLocked runs body under the lock-mode protocols of Fig 12(c):
// ModeWriteLock serialises writers per stripe and lets readers run
// optimistically against a per-stripe seqlock (Dash-style); ModeRWLock
// takes the stripe's read-write lock for every operation (Level-style).
func (h *Handle) execLocked(r *req, readonly bool, body func(m mem, seg uint64) error) error {
	ix := h.ix
	stripe := ix.stripeOf(r.h)
	raw := rawMem{ix.pool, h.c}

	if readonly {
		if ix.cfg.Concurrency == ModeWriteLock {
			for {
				s1 := atomic.LoadUint64(&ix.seqs[stripe])
				if s1&1 == 1 {
					runtime.Gosched()
					continue
				}
				_, e := ix.resolveRaw(r.h)
				err := body(raw, entrySeg(e))
				if atomic.LoadUint64(&ix.seqs[stripe]) == s1 {
					return err
				}
			}
		}
		lk := &ix.rwlocks[stripe]
		lk.RLock(h.c)
		_, e := ix.resolveRaw(r.h)
		err := body(raw, entrySeg(e))
		lk.RUnlock(h.c)
		return err
	}

	for {
		ix.lockStripe(h.c, stripe)
		var err error
		var seg uint64
		fullDir := (*directory)(nil)
		for {
			_, e := ix.resolveRaw(r.h)
			seg = entrySeg(e)
			err = body(raw, seg)
			if re, ok := err.(retryError); ok && re == errNeedSplit {
				fullDir = ix.dir.Load()
				err = ix.splitLocked(h, r.h)
				if err == nil {
					continue // retry the operation under the same lock
				}
			}
			break
		}
		if err == nil && ix.cfg.PersistBarrier {
			// Classic ADR discipline: persist the modified bucket
			// before the operation returns.
			line := seg + uint64(mainBucket(r.h))*pmem.CachelineSize
			ix.pool.Flush(h.c, line, pmem.CachelineSize)
			ix.pool.Fence(h.c)
		}
		ix.unlockStripe(h.c, stripe)
		if re, ok := err.(retryError); ok && re == errNeedDouble {
			ix.doubleLocked(h.c, fullDir)
			continue
		}
		return err
	}
}

// splitLocked splits the segment for hh; the caller holds the
// covering stripe lock, so the split proceeds raw. Readers in
// ModeWriteLock observe the stripe seqlock and retry.
func (ix *Index) splitLocked(h *Handle, hh uint64) error {
	c := h.c
	d := ix.dir.Load()
	_, e := ix.resolveRaw(hh)
	seg, depth := entrySeg(e), entryDepth(e)
	if depth >= maxDepth {
		return errMaxDepth
	}
	if depth == d.depth {
		return errNeedDouble
	}
	var snap [SegmentSize / 8]uint64
	for i := range snap {
		snap[i] = ix.pool.Load64(c, seg+uint64(i)*8)
	}
	prefix := hash.Prefix(hh, depth)
	imgA, imgB, liveA, liveB, err := ix.splitImages(c, seg, &snap, depth)
	if err != nil {
		return err
	}
	newSeg, _, err := h.ah.Alloc(c, SegmentSize)
	if err != nil {
		return err
	}
	m := rawMem{ix.pool, c}
	for i, w := range imgB {
		m.store(newSeg+uint64(i)*8, w)
	}
	for i, w := range imgA {
		if w != snap[i] {
			m.store(seg+uint64(i)*8, w)
		}
	}
	m.store(ix.regAddrOf(seg), makeRegEntry(prefix<<1, depth+1))
	m.store(ix.regAddrOf(newSeg), makeRegEntry(prefix<<1|1, depth+1))
	if ix.sealAddr != 0 {
		m.store(ix.sealAddrOf(seg), sealOfImage(&imgA))
		m.store(ix.sealAddrOf(newSeg), sealOfImage(&imgB))
	}
	base := prefix << (d.depth - depth)
	n := uint64(1) << (d.depth - depth)
	for j := uint64(0); j < n/2; j++ {
		atomic.StoreUint64(&d.entries[base+j], makeEntry(seg, depth+1))
		atomic.StoreUint64(&d.entries[base+n/2+j], makeEntry(newSeg, depth+1))
	}
	ix.pool.Flush(c, seg, SegmentSize)
	ix.pool.Flush(c, newSeg, SegmentSize)
	if ix.cfg.PersistBarrier {
		// Legacy-ADR discipline: the registry entries must be durable
		// before the split is visible to a post-crash recovery.
		ix.pool.Flush(c, ix.regAddrOf(seg), 8)
		ix.pool.Flush(c, ix.regAddrOf(newSeg), 8)
		ix.pool.Fence(c)
	}
	ix.splits.Add(1)
	ix.segments.Add(1)
	h.lane.Inc(obs.CSplits)
	h.lane.Inc(obs.CSegAlloc)
	ix.reg.Trace(obs.EvSplit, c.Clock(), int64(depth+1), int64(liveA+liveB))
	ix.reg.ObserveKeyed(obs.HSegOccupancy, hh, liveA)
	ix.reg.ObserveKeyed(obs.HSegOccupancy, hh^splitOccSalt, liveB)
	return nil
}

// doubleLocked grows the directory under every stripe lock (writers
// excluded; ModeWriteLock readers retry on their stripe seqlocks,
// which are all left odd for the duration). fullDir is the directory
// the caller found insufficient: if another worker already replaced
// it, the doubling is skipped — without this guard, a burst of
// workers hitting the same full directory would double it once each.
func (ix *Index) doubleLocked(c *pmem.Ctx, fullDir *directory) {
	n := uint64(len(ix.seqs))
	for s := uint64(0); s < n; s++ {
		ix.lockStripe(c, s)
	}
	old := ix.dir.Load()
	if (fullDir == nil || old == fullDir) && old.depth < maxDepth {
		nd := newDirectory(old.depth + 1)
		for j, e := range old.entries {
			nd.entries[2*j] = e
			nd.entries[2*j+1] = e
		}
		c.ChargeDRAM(3 * len(old.entries))
		ix.dir.Store(nd)
		ix.doubles.Add(1)
	}
	for s := uint64(0); s < n; s++ {
		ix.unlockStripe(c, s)
	}
}

// tryShrinkLocked halves the directory under every stripe lock.
func (ix *Index) tryShrinkLocked(c *pmem.Ctx) bool {
	n := uint64(len(ix.seqs))
	for s := uint64(0); s < n; s++ {
		ix.lockStripe(c, s)
	}
	defer func() {
		for s := uint64(0); s < n; s++ {
			ix.unlockStripe(c, s)
		}
	}()
	old := ix.dir.Load()
	if old.depth <= ix.cfg.LockStripeBits {
		return false
	}
	for i := range old.entries {
		if entryDepth(old.entries[i]) >= old.depth {
			return false
		}
	}
	nd := newDirectory(old.depth - 1)
	for j := range nd.entries {
		nd.entries[j] = old.entries[2*j]
	}
	ix.dir.Store(nd)
	return true
}
