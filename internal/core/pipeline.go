package core

import (
	"spash/internal/obs"
	"spash/internal/pmem"
)

// OpKind is the operation type of a batched request.
type OpKind uint8

const (
	OpSearch OpKind = iota
	OpUpdate
	OpInsert
	OpDelete
)

// BatchOp is one request of a pipelined batch. After ExecBatch
// returns, Result/Found/Err hold the outcome (Result is valid for
// searches and aliases ResultBuf's backing array when provided).
type BatchOp struct {
	Kind  OpKind
	Key   []byte
	Value []byte
	// ResultBuf, if non-nil, receives the search result (appended).
	ResultBuf []byte

	Result []byte
	Found  bool
	Err    error
}

// batchState is per-handle pipeline scratch.
type batchState struct {
	reqs []req
}

// ExecBatch executes ops with the pipelined execution of §III-D: the
// preparation of request i+PD-1 (hash, directory resolution, and an
// asynchronous prefetch of the target bucket's cacheline) is issued
// before request i executes, so up to PipelineDepth PM reads are in
// flight per worker and their latencies overlap. With PipelineDepth=1
// the batch degenerates to sequential execution.
func (h *Handle) ExecBatch(ops []BatchOp) {
	h.c.BeginOp()
	defer h.c.EndOp()
	pd := h.ix.cfg.PipelineDepth
	if pd < 1 {
		pd = 1
	}
	h.lane.Inc(obs.CPipelineBatches)
	if cap(h.batch.reqs) < len(ops) {
		h.batch.reqs = make([]req, len(ops))
	}
	reqs := h.batch.reqs[:len(ops)]

	warm := pd
	if warm > len(ops) {
		warm = len(ops)
	}
	for j := 0; j < warm; j++ {
		h.prefetchOp(&reqs[j], &ops[j])
	}
	for i := range ops {
		if next := i + pd; next < len(ops) {
			h.prefetchOp(&reqs[next], &ops[next])
		}
		h.execOp(&ops[i])
	}
}

// prefetchOp performs the pipeline's preparation stage for one
// request: normalise the key, resolve the segment through the volatile
// directory (step 1) and start the asynchronous load of the main
// bucket (step 2).
func (h *Handle) prefetchOp(r *req, op *BatchOp) {
	*r = makeReq(op.Key)
	_, e := h.ix.resolveRaw(r.h)
	seg := entrySeg(e)
	h.ix.pool.Prefetch(h.c, seg+uint64(mainBucket(r.h))*pmem.CachelineSize)
}

// execOp completes one batched request.
func (h *Handle) execOp(op *BatchOp) {
	switch op.Kind {
	case OpSearch:
		op.Result, op.Found, op.Err = h.Search(op.Key, op.ResultBuf)
	case OpUpdate:
		op.Found, op.Err = h.Update(op.Key, op.Value)
	case OpInsert:
		op.Err = h.Insert(op.Key, op.Value)
		op.Found = op.Err == nil
	case OpDelete:
		op.Found, op.Err = h.Delete(op.Key)
	}
}
