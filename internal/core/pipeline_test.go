package core

import (
	"encoding/binary"
	"sync"
	"testing"
)

// Pipelined batches from many workers must be as correct as individual
// calls, including batches that mix mutations (splits/doubling happen
// mid-batch).
func TestConcurrentBatches(t *testing.T) {
	ix, _ := newTestIndex(t, Config{InitialDepth: 2, PipelineDepth: 4})
	const workers, batches, batchLen = 6, 40, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := ix.NewHandle(nil)
			defer h.Close()
			base := uint64(w * batches * batchLen)
			keys := make([][]byte, batchLen)
			vals := make([][]byte, batchLen)
			for i := range keys {
				keys[i] = make([]byte, 8)
				vals[i] = make([]byte, 8)
			}
			ops := make([]BatchOp, batchLen)
			for b := 0; b < batches; b++ {
				for i := range ops {
					k := base + uint64(b*batchLen+i)
					binary.LittleEndian.PutUint64(keys[i], k)
					binary.LittleEndian.PutUint64(vals[i], k*3)
					ops[i] = BatchOp{Kind: OpInsert, Key: keys[i], Value: vals[i]}
				}
				h.ExecBatch(ops)
				for i := range ops {
					if ops[i].Err != nil {
						t.Error(ops[i].Err)
						return
					}
				}
				// Read the batch back, pipelined.
				for i := range ops {
					ops[i] = BatchOp{Kind: OpSearch, Key: keys[i]}
				}
				h.ExecBatch(ops)
				for i := range ops {
					if !ops[i].Found {
						t.Errorf("worker %d batch %d op %d not found", w, b, i)
						return
					}
					if got := binary.LittleEndian.Uint64(ops[i].Result); got != (base+uint64(b*batchLen+i))*3 {
						t.Errorf("worker %d: wrong value %d", w, got)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := ix.Len(), workers*batches*batchLen; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
	if err := ix.CheckInvariants(ix.pool.NewCtx()); err != nil {
		t.Fatal(err)
	}
}

// Mixed-kind batches must report per-op outcomes correctly.
func TestBatchMixedKinds(t *testing.T) {
	_, h := newTestIndex(t, Config{})
	for i := uint64(0); i < 100; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ops := []BatchOp{
		{Kind: OpSearch, Key: k64(5)},
		{Kind: OpDelete, Key: k64(5)},
		{Kind: OpSearch, Key: k64(5)},
		{Kind: OpUpdate, Key: k64(6), Value: k64(66)},
		{Kind: OpUpdate, Key: k64(9999), Value: k64(1)},
		{Kind: OpInsert, Key: k64(200), Value: k64(201)},
		{Kind: OpSearch, Key: k64(200)},
	}
	h.ExecBatch(ops)
	if !ops[0].Found || !ops[1].Found || ops[2].Found {
		t.Fatalf("delete sequencing: %v %v %v", ops[0].Found, ops[1].Found, ops[2].Found)
	}
	if !ops[3].Found || ops[4].Found {
		t.Fatalf("update outcomes: %v %v", ops[3].Found, ops[4].Found)
	}
	if ops[5].Err != nil || !ops[6].Found {
		t.Fatalf("insert/search: %v %v", ops[5].Err, ops[6].Found)
	}
	if got := binary.LittleEndian.Uint64(ops[6].Result); got != 201 {
		t.Fatalf("value %d", got)
	}
}

func TestBatchEmptyAndSingle(t *testing.T) {
	_, h := newTestIndex(t, Config{PipelineDepth: 8})
	h.ExecBatch(nil)
	ops := []BatchOp{{Kind: OpInsert, Key: k64(1), Value: k64(2)}}
	h.ExecBatch(ops)
	if ops[0].Err != nil {
		t.Fatal(ops[0].Err)
	}
	v, ok, _ := h.Search(k64(1), nil)
	if !ok || binary.LittleEndian.Uint64(v) != 2 {
		t.Fatal("single-op batch lost")
	}
}
