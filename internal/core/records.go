package core

import (
	"encoding/binary"
	"hash/crc32"

	"spash/internal/htm"
	"spash/internal/pmem"
)

// mem abstracts word access to PM so the slot/record engine can run in
// three modes: inside an HTM transaction (txMem), raw under a lock
// (rawMem), and raw with stripe-version bumps on the fallback path
// (bumpMem), where concurrent optimistic transactions must observe the
// writes as conflicts.
type mem interface {
	load(addr uint64) uint64
	store(addr uint64, v uint64)
}

type txMem struct{ tx *htm.Txn }

func (m txMem) load(addr uint64) uint64     { return m.tx.Load(addr) }
func (m txMem) store(addr uint64, v uint64) { m.tx.Store(addr, v) }

type rawMem struct {
	pool *pmem.Pool
	c    *pmem.Ctx
}

func (m rawMem) load(addr uint64) uint64 { return m.pool.Load64(m.c, addr) }

//spash:guarded rawMem is constructed only on recovery, fsck, and lock-held fallback paths, where raw stores are serialised outside the HTM domain
func (m rawMem) store(addr uint64, v uint64) { m.pool.Store64(m.c, addr, v) }

// iMem adapts an irrevocable transaction (fallback path) to the mem
// interface: every touched word's stripe is locked until the
// irrevocable section ends, so the fallback never observes (or is
// observed at) a half-published optimistic commit.
type iMem struct{ it *htm.ITxn }

func (m iMem) load(addr uint64) uint64     { return m.it.Load(addr) }
func (m iMem) store(addr uint64, v uint64) { m.it.Store(addr, v) }

// Out-of-line record layout: one header word — CRC32C of the payload
// in the high 32 bits, the byte length in the low 32 — followed by the
// payload padded to whole words. The CRC is always written (it rides in
// bits the length never uses), so any pool can later be verified by
// fsck or the scrubber; it is *validated* on the hot read path only
// when Config.Checksums is on. Key records are immutable once a slot
// referencing them is published; value records may be updated in place
// (transactionally), so readers that need linearizable values must
// read them through txMem or under the lock-mode protocols.
const recordHeader = 8

// recordLenMask extracts the byte length from a header word.
const recordLenMask = 0xFFFFFFFF

// crcTable is the Castagnoli polynomial used for every on-media CRC
// (records and segment seals): CRC32C has hardware support on the
// platforms Spash targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordHeaderWord builds a record header for data.
func recordHeaderWord(data []byte) uint64 {
	return uint64(crc32.Checksum(data, crcTable))<<32 | uint64(len(data))
}

// recordSpace returns the allocation request size for n payload bytes.
func recordSpace(n int) int { return recordHeader + n }

// writeRecordRaw writes a fresh (still private) record.
//
//spash:guarded the record is freshly allocated and unreachable until a slot publish inside a transaction makes it visible
func writeRecordRaw(c *pmem.Ctx, pool *pmem.Pool, addr uint64, data []byte) {
	pool.Store64(c, addr, recordHeaderWord(data))
	pool.Write(c, addr+recordHeader, data)
}

// MaxKVLen bounds key and value payload lengths. Besides being a sane
// API limit, it lets doomed readers (transactions about to abort after
// the record they point at was freed and reused) clamp a garbage
// length before walking memory.
const MaxKVLen = 64 << 10

// readRecord appends the record's payload to dst through m. The
// length is clamped: a record being read by a doomed transaction may
// have been freed and rewritten, and the bogus bytes are discarded by
// the transaction's validation anyway.
func readRecord(m mem, addr uint64, dst []byte) []byte {
	n := int(m.load(addr) & recordLenMask)
	if n < 0 || n > MaxKVLen {
		n = 0
	}
	for off := 0; off < n; off += 8 {
		w := m.load(addr + recordHeader + uint64(off))
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		if n-off < 8 {
			dst = append(dst, b[:n-off]...)
		} else {
			dst = append(dst, b[:]...)
		}
	}
	return dst
}

// recordLen returns the record's payload length through m.
func recordLen(m mem, addr uint64) int { return int(m.load(addr) & recordLenMask) }

// recordCRCOK re-reads the record through m and reports whether its
// payload matches the header CRC. Used by the checksummed read path,
// the scrubber, fsck and segment salvage.
func recordCRCOK(m mem, addr uint64) bool {
	hdr := m.load(addr)
	if n := hdr & recordLenMask; n > MaxKVLen {
		return false
	}
	buf := readRecord(m, addr, nil)
	return uint32(hdr>>32) == crc32.Checksum(buf, crcTable)
}

// writeRecordValue updates a record in place through m (the in-place
// update of §III-B; in HTM mode m is transactional, making the
// multi-word update atomic and durable).
func writeRecordValue(m mem, addr uint64, data []byte) {
	m.store(addr, recordHeaderWord(data))
	for off := 0; off < len(data); off += 8 {
		var b [8]byte
		copy(b[:], data[off:])
		m.store(addr+recordHeader+uint64(off), binary.LittleEndian.Uint64(b[:]))
	}
}

// keyRecordEquals compares an immutable key record with key. Key
// records never change after publication, so the comparison reads raw
// regardless of mode; the enclosing transaction's validation of the
// slot's key word makes the result trustworthy at commit time.
func keyRecordEquals(c *pmem.Ctx, pool *pmem.Pool, addr uint64, key []byte) bool {
	if int(pool.Load64(c, addr)&recordLenMask) != len(key) {
		return false
	}
	for off := 0; off < len(key); off += 8 {
		w := pool.Load64(c, addr+recordHeader+uint64(off))
		var b [8]byte
		copy(b[:], key[off:])
		if n := len(key) - off; n < 8 {
			var mask uint64 = 1<<(8*uint(n)) - 1
			if w&mask != binary.LittleEndian.Uint64(b[:])&mask {
				return false
			}
		} else if w != binary.LittleEndian.Uint64(b[:]) {
			return false
		}
	}
	return true
}
