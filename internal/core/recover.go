package core

import (
	"errors"
	"fmt"

	"spash/internal/alloc"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// Recover reopens an index after a crash (or clean shutdown). The
// volatile directory is rebuilt from the persistent segment registry:
// every valid registry entry contributes its segment to the directory
// at the maximum observed local depth. Segment contents are then
// scanned once to restore the entry count and to report every
// reachable block (segments, key records, value records) to the
// allocator's mark phase, after which the allocator's free lists are
// the complement of the live set.
//
// Under eADR every operation that completed before the crash is
// durable by construction (visibility implies durability), so recovery
// is purely a rebuild of volatile state — the property the durable-
// linearizability tests verify.
//
// Recover is a total function over arbitrary pool contents: corrupted
// images (bad magic, out-of-range registry pointer, impossible depths
// or prefixes, overlapping or gapped coverage, segment addresses
// outside the carved data region) produce a descriptive error, never a
// panic. A residual pmem access panic from a corruption shape not
// caught by the explicit checks is converted to an error by the
// backstop; only an injected-crash unwind passes through.
func Recover(c *pmem.Ctx, pool *pmem.Pool, cfg Config) (_ *Index, _ *alloc.Allocator, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pmem.IsInjectedCrash(r) {
				panic(r)
			}
			err = fmt.Errorf("core: recovery failed on corrupted pool: %v", r)
		}
	}()
	al, err := alloc.Attach(c, pool)
	if err != nil {
		return nil, nil, err
	}
	if pool.Load64(c, alloc.RootAddr(rootMagic)) != indexMagic {
		return nil, nil, errors.New("core: pool does not contain an index")
	}
	if err := validateGeometry(pool.Load64(c, alloc.RootAddr(rootGeom))); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	ix := newIndex(pool, al, cfg)
	recoverStart := c.Clock()
	ix.reg.Trace(obs.EvRecoverStart, recoverStart, 0, 0)
	ix.registryAddr = pool.Load64(c, alloc.RootAddr(rootRegistry))
	ix.registryCap = pool.Size() / SegmentSize

	dataBase, carvedEnd := al.DataBase(), al.CarvedEnd()
	switch {
	case ix.registryAddr == 0:
		return nil, nil, errors.New("core: registry root pointer is nil")
	case ix.registryAddr&7 != 0:
		return nil, nil, fmt.Errorf("core: registry root pointer %#x misaligned", ix.registryAddr)
	case ix.registryAddr < dataBase || ix.registryAddr+ix.registryCap*8 > pool.Size():
		return nil, nil, fmt.Errorf("core: registry [%#x,%#x) outside pool data region [%#x,%#x)",
			ix.registryAddr, ix.registryAddr+ix.registryCap*8, dataBase, pool.Size())
	}

	// Checksum maintenance is a persistent property of the pool: adopt
	// it from the seal-table root pointer, whatever the passed Config
	// says (a recovery that silently stopped maintaining seals would
	// make every later verification fail).
	ix.sealAddr = pool.Load64(c, alloc.RootAddr(rootSeal))
	if cfg.Checksums && ix.sealAddr == 0 {
		// The reverse direction (device sealed, Config off) is not an
		// error: maintenance is adopted from the device below.
		return nil, nil, &GeometryError{Field: "checksums", Device: 0, Requested: 1}
	}
	ix.cfg.Checksums = ix.sealAddr != 0
	// The promotion epoch is informational here (RecoverAll checks
	// cross-shard agreement; promotion bumps it): adopt whatever the
	// device carries, including 0 from pre-epoch images.
	ix.epoch.Store(pool.Load64(c, alloc.RootAddr(rootEpoch)))
	// The applied-sequence cursor is likewise adopted as-is: 0 on
	// primaries and pre-cursor images, the durable replication cursor
	// on a rejoining replica (internal/repl re-derives its stream
	// position from it).
	ix.applied.Store(pool.Load64(c, alloc.RootAddr(rootApplied)))
	if ix.sealAddr != 0 {
		switch {
		case ix.sealAddr&7 != 0:
			return nil, nil, fmt.Errorf("core: seal table pointer %#x misaligned", ix.sealAddr)
		case ix.sealAddr < dataBase || ix.sealAddr+ix.registryCap*8 > pool.Size():
			return nil, nil, fmt.Errorf("core: seal table [%#x,%#x) outside pool data region [%#x,%#x)",
				ix.sealAddr, ix.sealAddr+ix.registryCap*8, dataBase, pool.Size())
		}
	}

	type segInfo struct {
		addr, prefix uint64
		depth        uint
	}
	var segs []segInfo
	maxd := uint(0)
	for i := uint64(0); i < ix.registryCap; i++ {
		e := pool.Load64(c, ix.registryAddr+i*8)
		if e&regValid == 0 {
			continue
		}
		si := segInfo{addr: i * SegmentSize, prefix: regPrefix(e), depth: regDepth(e)}
		if si.depth > maxDepth {
			return nil, nil, fmt.Errorf("core: registry entry %d has depth %d > max %d", i, si.depth, maxDepth)
		}
		if si.prefix >= 1<<si.depth {
			return nil, nil, fmt.Errorf("core: registry entry %d has prefix %#x not representable at depth %d",
				i, si.prefix, si.depth)
		}
		if si.addr < dataBase || si.addr+SegmentSize > carvedEnd {
			return nil, nil, fmt.Errorf("core: registry entry %d claims segment %#x outside carved data [%#x,%#x)",
				i, si.addr, dataBase, carvedEnd)
		}
		if si.depth > maxd {
			maxd = si.depth
		}
		segs = append(segs, si)
	}
	if len(segs) == 0 {
		return nil, nil, errors.New("core: registry empty; index corrupt")
	}
	// A complete buddy covering of maximum depth d contains at least
	// d+1 segments (d splits from a single root), and the directory a
	// genuine image needs never exceeds the segment population by more
	// than a few doublings. Reject depths a valid image cannot have
	// before allocating the 1<<maxd-entry directory.
	if uint64(maxd) > uint64(len(segs)-1) || (maxd > 6 && uint64(1)<<maxd > 64*ix.registryCap) {
		return nil, nil, fmt.Errorf("core: registry depth %d impossible for %d segments; index corrupt", maxd, len(segs))
	}

	d := newDirectory(maxd)
	for _, s := range segs {
		base := s.prefix << (maxd - s.depth)
		span := uint64(1) << (maxd - s.depth)
		for j := uint64(0); j < span; j++ {
			if d.entries[base+j] != 0 {
				return nil, nil, fmt.Errorf("core: registry overlap at prefix %#x", base+j)
			}
			d.entries[base+j] = makeEntry(s.addr, s.depth)
		}
	}
	for i, e := range d.entries {
		if e == 0 {
			return nil, nil, fmt.Errorf("core: registry gap at prefix %#x", i)
		}
	}
	ix.dir.Store(d)
	ix.segments.Store(int64(len(segs)))

	// Mark phase: segments and their out-of-line records are live.
	m := rawMem{pool, c}
	live := int64(0)
	for _, s := range segs {
		al.MarkLive(s.addr)
		live += markSegment(al, m, s.addr)
	}
	ix.entries.Store(live)
	if err := al.FinishRecovery(c); err != nil {
		return nil, nil, err
	}
	ix.reg.Trace(obs.EvRecoverDone, c.Clock(), c.Clock()-recoverStart, int64(len(segs)))
	return ix, al, nil
}

// markSegment scans one segment's slots during the mark phase,
// returning its occupied count. A poisoned segment (uncorrectable
// media) is skipped whole — its records stay unmarked and are freed,
// exactly what the later quarantine/repair of that segment assumes —
// so a single bad XPLine cannot fail the entire recovery.
func markSegment(al *alloc.Allocator, m mem, seg uint64) (live int64) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(pmem.AccessError); ok && ae.Poisoned {
				live = 0
				return
			}
			panic(r)
		}
	}()
	for slot := 0; slot < SlotsPerSegment; slot++ {
		kw := m.load(slotAddr(seg, slot))
		if !keyOccupied(kw) {
			continue
		}
		live++
		if !keyIsInline(kw) {
			al.MarkLive(wordPayload(kw))
		}
		vw := m.load(slotAddr(seg, slot) + 8)
		if !valueIsInline(vw) {
			al.MarkLive(wordPayload(vw))
		}
	}
	return live
}
