package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spash/internal/alloc"
	"spash/internal/pmem"
)

func openFresh(t *testing.T, mode pmem.Mode, cfg Config) (*pmem.Pool, *Index, *Handle) {
	t.Helper()
	pool := pmem.New(pmem.Config{PoolSize: 128 << 20, CacheSize: 1 << 20, Mode: mode})
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(c, pool, al, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool, ix, ix.NewHandle(c)
}

func TestRecoverRebuildsIndex(t *testing.T) {
	pool, ix, h := openFresh(t, pmem.EADR, Config{InitialDepth: 2})
	const n = 20000
	for i := uint64(0); i < n; i++ {
		var val []byte
		if i%3 == 0 {
			val = bytes.Repeat([]byte{byte(i)}, 100+int(i%400))
		} else {
			val = k64(i * 7)
		}
		if err := h.Insert(k64(i), val); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i += 5 {
		h.Delete(k64(i))
	}
	wantLen := ix.Len()
	wantDepth := ix.Depth()
	wantSegs := ix.Stats().Segments

	pool.Crash()
	ix2, _, err := Recover(pool.NewCtx(), pool, Config{InitialDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != wantLen {
		t.Fatalf("recovered len %d, want %d", ix2.Len(), wantLen)
	}
	if ix2.Depth() != wantDepth {
		t.Fatalf("recovered depth %d, want %d", ix2.Depth(), wantDepth)
	}
	if got := ix2.Stats().Segments; got != wantSegs {
		t.Fatalf("recovered segments %d, want %d", got, wantSegs)
	}
	h2 := ix2.NewHandle(nil)
	for i := uint64(0); i < n; i++ {
		v, ok, err := h2.Search(k64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := i%5 != 0; ok != want {
			t.Fatalf("key %d: present=%v want=%v", i, ok, want)
		}
		if ok {
			if i%3 == 0 {
				if len(v) != 100+int(i%400) || v[0] != byte(i) {
					t.Fatalf("key %d: bad recovered value", i)
				}
			} else if binary.LittleEndian.Uint64(v) != i*7 {
				t.Fatalf("key %d: bad recovered inline value", i)
			}
		}
	}
	// The recovered index keeps working, including growth, and the
	// recovered allocator does not hand out live blocks.
	for i := uint64(n); i < n+5000; i++ {
		if err := h2.Insert(k64(i), bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n+5000; i++ {
		_, ok, _ := h2.Search(k64(i), nil)
		want := i >= n || i%5 != 0
		if ok != want {
			t.Fatalf("post-recovery key %d: present=%v want=%v", i, ok, want)
		}
	}
}

// Durable linearizability under eADR (§II-C): run concurrent workers,
// crash at a quiescent cut, recover, and verify that every operation a
// worker completed before the crash is visible and correct.
func TestDurableLinearizabilityEADR(t *testing.T) {
	pool, ix, _ := openFresh(t, pmem.EADR, Config{InitialDepth: 2})
	const workers, iters = 6, 3000
	type last struct {
		val     uint64
		present bool
	}
	completed := make([]map[uint64]last, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		completed[w] = make(map[uint64]last)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := ix.NewHandle(nil)
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint64(w * 100000)
			for i := 0; i < iters; i++ {
				k := base + uint64(rng.Intn(800))
				switch rng.Intn(3) {
				case 0, 1:
					v := rng.Uint64() & (1<<47 - 1)
					if err := h.Insert(k64(k), k64(v)); err != nil {
						t.Error(err)
						return
					}
					completed[w][k] = last{v, true}
				case 2:
					if _, err := h.Delete(k64(k)); err != nil {
						t.Error(err)
						return
					}
					completed[w][k] = last{0, false}
				}
			}
		}(w)
	}
	wg.Wait()

	if lost := pool.Crash(); lost != 0 {
		t.Fatalf("eADR crash lost %d lines", lost)
	}
	ix2, _, err := Recover(pool.NewCtx(), pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h2 := ix2.NewHandle(nil)
	for w := 0; w < workers; w++ {
		for k, want := range completed[w] {
			v, ok, err := h2.Search(k64(k), nil)
			if err != nil {
				t.Fatal(err)
			}
			if ok != want.present {
				t.Fatalf("worker %d key %d: present=%v want=%v", w, k, ok, want.present)
			}
			if ok && binary.LittleEndian.Uint64(v) != want.val {
				t.Fatalf("worker %d key %d: stale value", w, k)
			}
		}
	}
}

// Negative control: the same store under ADR with flushes removed (the
// paper's premise for why eADR matters) must lose data on a crash.
func TestADRWithoutFlushesLosesData(t *testing.T) {
	pool, _, h := openFresh(t, pmem.ADR, Config{InitialDepth: 2, Update: UpdateNeverFlush, Insert: InsertCompactNoFlush})
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lost := pool.Crash()
	if lost == 0 {
		t.Fatal("ADR crash lost nothing — simulation broken")
	}
	// Recovery may fail outright (registry lines lost) or succeed
	// with missing keys; either way durability was violated.
	ix2, _, err := Recover(pool.NewCtx(), pool, Config{})
	if err != nil {
		t.Logf("recovery failed as expected: %v", err)
		return
	}
	h2 := ix2.NewHandle(nil)
	missing := 0
	for i := uint64(0); i < n; i++ {
		if _, ok, _ := h2.Search(k64(i), nil); !ok {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("no inserts lost under ADR without flushes")
	}
	t.Logf("ADR without flushes lost %d/%d inserts (crash dropped %d lines)", missing, n, lost)
}

func TestRecoverOnEmptyPoolFails(t *testing.T) {
	pool := pmem.New(pmem.Config{PoolSize: 16 << 20})
	if _, _, err := Recover(pool.NewCtx(), pool, Config{}); err == nil {
		t.Fatal("Recover on empty pool succeeded")
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	pool, _, h := openFresh(t, pmem.EADR, Config{InitialDepth: 2})
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(99))
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(5000))
			if rng.Intn(3) == 0 {
				ok, err := h.Delete(k64(k))
				if err != nil {
					t.Fatal(err)
				}
				_, want := model[k]
				if ok != want {
					t.Fatalf("cycle %d: delete mismatch", cycle)
				}
				delete(model, k)
			} else {
				v := rng.Uint64() & (1<<47 - 1)
				if err := h.Insert(k64(k), k64(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
		}
		pool.Crash()
		ix, _, err := Recover(pool.NewCtx(), pool, Config{})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if ix.Len() != len(model) {
			t.Fatalf("cycle %d: len %d vs model %d", cycle, ix.Len(), len(model))
		}
		h = ix.NewHandle(nil)
		for k, v := range model {
			got, ok, _ := h.Search(k64(k), nil)
			if !ok || binary.LittleEndian.Uint64(got) != v {
				t.Fatalf("cycle %d: key %d wrong (ok=%v)", cycle, k, ok)
			}
		}
	}
}

func TestRecoveredStatsSane(t *testing.T) {
	pool, ix, h := openFresh(t, pmem.EADR, Config{InitialDepth: 3})
	for i := uint64(0); i < 10000; i++ {
		if err := h.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lf := ix.LoadFactor()
	pool.Crash()
	ix2, _, err := Recover(pool.NewCtx(), pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix2.LoadFactor(); got != lf {
		t.Fatalf("recovered load factor %v, want %v", got, lf)
	}
	if fmt.Sprintf("%d", ix2.Len()) != "10000" {
		t.Fatalf("len %d", ix2.Len())
	}
}

// Crash-point torture: replay one scripted workload, crashing after
// every k-th operation and recovering each time. After each crash the
// recovered index must contain exactly the prefix of operations that
// completed — the all-or-nothing half of durable linearizability,
// probed at many structural moments (mid-split, mid-doubling,
// mid-merge).
func TestCrashPointTorture(t *testing.T) {
	const ops = 4000
	const every = 250
	for crashAt := every; crashAt <= ops; crashAt += every {
		pool, _, h := openFresh(t, pmem.EADR, Config{InitialDepth: 1})
		model := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(42)) // same script every time
		for i := 0; i < crashAt; i++ {
			k := uint64(rng.Intn(1200))
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Uint64() & (1<<47 - 1)
				if err := h.Insert(k64(k), k64(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			case 2:
				h.Delete(k64(k))
				delete(model, k)
			default:
				bigV := make([]byte, 200)
				binary.LittleEndian.PutUint64(bigV, k)
				if err := h.Insert(k64(k|1<<20), bigV); err != nil {
					t.Fatal(err)
				}
				model[k|1<<20] = k // sentinel for big values
			}
		}
		if lost := pool.Crash(); lost != 0 {
			t.Fatalf("crashAt=%d: eADR lost %d lines", crashAt, lost)
		}
		ix2, _, err := Recover(pool.NewCtx(), pool, Config{})
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		if ix2.Len() != len(model) {
			t.Fatalf("crashAt=%d: len %d vs model %d", crashAt, ix2.Len(), len(model))
		}
		h2 := ix2.NewHandle(nil)
		for k, v := range model {
			got, ok, err := h2.Search(k64(k), nil)
			if err != nil || !ok {
				t.Fatalf("crashAt=%d key %d: ok=%v err=%v", crashAt, k, ok, err)
			}
			if k>>20 == 1 {
				if len(got) != 200 || binary.LittleEndian.Uint64(got) != v {
					t.Fatalf("crashAt=%d: big value corrupt for key %d", crashAt, k)
				}
			} else if binary.LittleEndian.Uint64(got) != v {
				t.Fatalf("crashAt=%d key %d: wrong value", crashAt, k)
			}
		}
		if err := ix2.CheckInvariants(ix2.pool.NewCtx()); err != nil {
			t.Fatalf("crashAt=%d: invariants: %v", crashAt, err)
		}
	}
}
