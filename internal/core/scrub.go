package core

import (
	"time"

	"spash/internal/hash"
	"spash/internal/htm"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// The online scrubber re-verifies segment seals in the background
// while the index serves traffic, so media rot is found and repaired
// proactively instead of on first access. Each segment is verified in
// its own optimistic transaction through the two-phase protocol: the
// verify joins the HTM read set, so it never blocks writers — a
// concurrent mutation simply aborts the verify, which skips the
// segment until the next pass. A failed verify (seal mismatch or
// poisoned media) triggers the same quarantine-and-rebuild path fsck
// uses.

// ScrubOptions parameterises StartScrub.
type ScrubOptions struct {
	// Rate caps verification at this many segments per second
	// (0 = unthrottled). The cap bounds the scrubber's read bandwidth,
	// the knob a production deployment would tune against foreground
	// interference.
	Rate int
	// Passes stops the scrubber after this many full pool walks
	// (0 = run until Stop).
	Passes int
	// Pause is the idle time between passes (default 10ms).
	Pause time.Duration
	// Repair enables quarantine of corrupt segments; when false the
	// scrubber only counts and traces what it finds.
	Repair bool
}

// ScrubStats summarises a scrubber's lifetime work.
type ScrubStats struct {
	Passes      int64 `json:"passes"`
	Segments    int64 `json:"segments"`
	Corruptions int64 `json:"corruptions"`
	Quarantines int64 `json:"quarantines"`
	// Skipped counts verifies abandoned because of concurrent writer
	// activity (retried on the next pass); Errors counts failed
	// quarantine attempts.
	Skipped int64 `json:"skipped"`
	Errors  int64 `json:"errors"`
}

// Add returns s + o counter-wise, aggregating per-shard scrubbers into
// one database-level view.
func (s ScrubStats) Add(o ScrubStats) ScrubStats {
	return ScrubStats{
		Passes:      s.Passes + o.Passes,
		Segments:    s.Segments + o.Segments,
		Corruptions: s.Corruptions + o.Corruptions,
		Quarantines: s.Quarantines + o.Quarantines,
		Skipped:     s.Skipped + o.Skipped,
		Errors:      s.Errors + o.Errors,
	}
}

// Scrubber is a running background scrub; see Index.StartScrub.
type Scrubber struct {
	ix   *Index
	h    *Handle
	opt  ScrubOptions
	stop chan struct{}
	done chan struct{}
	// stats is owned by the scrub goroutine until done is closed.
	stats ScrubStats
}

// StartScrub launches a background scrubber over the index. The
// scrubber owns a private Handle, so it is safe alongside any number
// of worker handles. Stop must be called before closing the index.
func (ix *Index) StartScrub(opt ScrubOptions) *Scrubber {
	if opt.Pause == 0 {
		opt.Pause = 10 * time.Millisecond
	}
	s := &Scrubber{
		ix:   ix,
		h:    ix.NewHandle(nil),
		opt:  opt,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.run()
	return s
}

// Stop terminates the scrubber and returns its lifetime stats. An
// in-progress pass is abandoned, so a Stop issued right after
// StartScrub may collect before the first pass verified anything; use
// Wait first when the full walk matters.
func (s *Scrubber) Stop() ScrubStats {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	return s.stats
}

// Wait blocks until a bounded scrub (Passes > 0) has completed its
// walks. Stop is still required to collect the stats. Waiting on an
// unbounded scrub blocks until someone calls Stop.
func (s *Scrubber) Wait() {
	<-s.done
}

func (s *Scrubber) run() {
	defer close(s.done)
	defer s.h.Close()
	var gap time.Duration
	if s.opt.Rate > 0 {
		gap = time.Second / time.Duration(s.opt.Rate)
	}
	for pass := 0; s.opt.Passes == 0 || pass < s.opt.Passes; pass++ {
		segs, corr := s.scanPass(gap)
		s.stats.Passes++
		s.ix.reg.Trace(obs.EvScrubPass, s.h.c.Clock(), segs, corr)
		s.ix.reg.SetGauge(obs.GScrubPasses, int64(s.stats.Passes))
		if s.opt.Passes > 0 && pass+1 >= s.opt.Passes {
			return
		}
		select {
		case <-s.stop:
			return
		case <-time.After(s.opt.Pause):
		}
	}
}

// scanPass walks the registry once, verifying every live segment.
func (s *Scrubber) scanPass(gap time.Duration) (segs, corr int64) {
	ix := s.ix
	c := s.h.c
	var next time.Time
	for i := uint64(0); i < ix.registryCap; i++ {
		select {
		case <-s.stop:
			return segs, corr
		default:
		}
		e, rok := loadTolerant(ix, c, ix.registryAddr+i*8)
		if !rok || e&regValid == 0 {
			continue
		}
		if gap > 0 {
			if now := time.Now(); now.Before(next) {
				select {
				case <-s.stop:
					return segs, corr
				case <-time.After(next.Sub(now)):
				}
				next = next.Add(gap)
			} else {
				next = now.Add(gap)
			}
		}
		seg, prefix, depth := i*SegmentSize, regPrefix(e), regDepth(e)
		corrupt, skipped := s.verifyOnline(seg, prefix, depth)
		if skipped {
			s.stats.Skipped++
			continue
		}
		segs++
		s.stats.Segments++
		ix.reg.Inc(obs.CScrubSegments)
		if !corrupt {
			continue
		}
		corr++
		s.stats.Corruptions++
		ix.reg.Inc(obs.CScrubCorruptions)
		if !s.opt.Repair {
			continue
		}
		hh := prefix << (64 - depth)
		qr, err := s.h.Quarantine(hh, seg)
		switch {
		case err != nil:
			s.stats.Errors++
		case qr != nil:
			s.stats.Quarantines++
		}
	}
	return segs, corr
}

// verifyOnline checks one segment's seal inside an optimistic
// transaction. The transaction re-resolves the directory entry, so a
// segment that split, merged or moved since the registry read is
// skipped; a conflicting writer aborts the verify (skipped, not
// blocked — the scrubber never takes locks). With checksums off the
// transaction still touches every word, so poisoned media is detected
// even without seals.
func (s *Scrubber) verifyOnline(seg, prefix uint64, depth uint) (corrupt, skipped bool) {
	ix := s.ix
	c := s.h.c
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(pmem.AccessError); ok && ae.Poisoned {
				corrupt, skipped = true, false
				return
			}
			panic(r)
		}
	}()
	hh := prefix << (64 - depth)
	code, _ := ix.tm.Run(c, ix.pool, func(tx *htm.Txn) error {
		corrupt = false
		if tx.LoadVol(&ix.dirGen)&1 == 1 {
			return errResizing
		}
		d := ix.dir.Load()
		e := tx.LoadVol(&d.entries[d.index(hh)])
		if entryLocked(e) {
			return errLocked
		}
		if entrySeg(e) != seg || entryDepth(e) != depth ||
			hash.Prefix(hh, entryDepth(e)) != prefix {
			return errSegMoved
		}
		m := txMem{tx}
		if ix.sealAddr != 0 {
			corrupt = ix.verifySeal(m, seg) != 0
		} else {
			for i := uint64(0); i < SegmentSize/8; i++ {
				m.load(seg + i*8) // poison probe
			}
		}
		return nil
	})
	if code != htm.Committed {
		return false, true
	}
	return corrupt, false
}
