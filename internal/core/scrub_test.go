package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestScrubRepairsUnderLoad runs the online scrubber against live
// insert/delete traffic, injects a bit flip into a quiet segment, and
// requires the scrubber to find and quarantine it without the writers
// ever observing a silently wrong value.
func TestScrubRepairsUnderLoad(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 4, Checksums: true})
	c := h.c

	// Static population (never churned) — the corruption target lives
	// here.
	const n = 1500
	fillIntegrity(t, h, n)

	var stopWriters atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wh := ix.NewHandle(nil)
			defer wh.Close()
			for i := 0; !stopWriters.Load(); i++ {
				key := []byte(fmt.Sprintf("churn-%d-%06d", g, i%400))
				// Operations racing the quarantined segment may fail
				// typed; that is the contract — never a wrong answer.
				if err := wh.Insert(key, k64(uint64(i))); err != nil && !errors.Is(err, ErrCorrupted) {
					t.Errorf("writer %d insert: %v", g, err)
					return
				}
				if i%3 == 0 {
					if _, err := wh.Delete(key); err != nil && !errors.Is(err, ErrCorrupted) {
						t.Errorf("writer %d delete: %v", g, err)
						return
					}
				}
			}
		}(g)
	}

	s := ix.StartScrub(ScrubOptions{Repair: true, Pause: time.Millisecond})

	// Flip a value-word bit in the segment owning a static key. (A
	// value-word flip keeps occupancy information intact, so the live-
	// entry counter stays exact through the online quarantine.)
	victim := integrityKey(4) // inline key, static range
	r := makeReq(victim)
	_, e := ix.resolveRaw(r.h)
	seg := entrySeg(e)
	idx, _, _, _ := ix.locate(rawMem{ix.pool, c}, c, seg, &r)
	if idx < 0 {
		t.Fatal("victim key not in its segment")
	}
	va := slotAddr(seg, idx) + 8
	ix.pool.Store64(c, va, ix.pool.Load64(c, va)^1)

	// The scrubber must quarantine the segment: the victim's bucket is
	// dropped, so its key transitions corrupt → not-found.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, found, err := h.Search(victim, nil)
		if err == nil && !found {
			break
		}
		if err != nil && !errors.Is(err, ErrCorrupted) {
			t.Fatalf("Search during scrub: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("scrubber did not repair the flipped segment in time")
		}
		time.Sleep(time.Millisecond)
	}

	stopWriters.Store(true)
	wg.Wait()
	stats := s.Stop()
	if stats.Corruptions < 1 || stats.Quarantines < 1 {
		t.Fatalf("scrub stats %+v: expected at least one corruption and quarantine", stats)
	}
	if stats.Segments == 0 || stats.Passes == 0 {
		t.Fatalf("scrub stats %+v: no verification work recorded", stats)
	}

	if err := ix.CheckInvariants(c); err != nil {
		t.Fatalf("invariants after online repair: %v", err)
	}
	// No silent wrong values anywhere in the static range.
	for i := 0; i < n; i++ {
		got, found, err := h.Search(integrityKey(i), nil)
		if err != nil {
			t.Fatalf("post-scrub Search(%d): %v", i, err)
		}
		if found && !bytes.Equal(got, integrityVal(i)) {
			t.Fatalf("key %d: silent wrong value after scrub repair", i)
		}
	}
}

// TestScrubCleanPoolFindsNothing: a healthy index scrubs clean and the
// scrubber terminates by pass count.
func TestScrubCleanPoolFindsNothing(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2, Checksums: true})
	fillIntegrity(t, h, 600)
	s := ix.StartScrub(ScrubOptions{Passes: 2, Rate: 100000, Repair: true})
	s.Wait()
	stats := s.Stop()
	if stats.Corruptions != 0 || stats.Quarantines != 0 {
		t.Fatalf("healthy pool scrub found: %+v", stats)
	}
	if stats.Passes != 2 {
		t.Fatalf("scrub ran %d passes, want 2", stats.Passes)
	}
	if err := ix.CheckInvariants(h.c); err != nil {
		t.Fatal(err)
	}
}

// TestScrubDetectsWithoutChecksums: with seals off the scrubber still
// finds poisoned media (reads machine-check) and repairs it.
func TestScrubDetectsPoisonWithoutChecksums(t *testing.T) {
	ix, h := newTestIndex(t, Config{InitialDepth: 2})
	fillIntegrity(t, h, 400)
	segs := ix.SegmentAddrs(h.c)
	ix.pool.PoisonLine(segs[0])
	s := ix.StartScrub(ScrubOptions{Repair: true, Pause: time.Millisecond})
	deadline := time.Now().Add(10 * time.Second)
	for ix.pool.PoisonedLines() != 0 {
		if time.Now().After(deadline) {
			s.Stop()
			t.Fatal("scrubber did not heal the poisoned segment")
		}
		time.Sleep(time.Millisecond)
	}
	stats := s.Stop()
	if stats.Corruptions < 1 || stats.Quarantines < 1 {
		t.Fatalf("scrub stats %+v", stats)
	}
	if err := ix.CheckInvariants(h.c); err != nil {
		t.Fatal(err)
	}
}
