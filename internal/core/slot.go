// Package core implements Spash, the paper's primary contribution: a
// persistent hash index for platforms with a persistent CPU cache
// (eADR). The index combines
//
//   - a fine-grained extendible hash structure: a volatile (DRAM)
//     directory over XPLine-sized (256 B) metadata-free segments in PM
//     (§III-A),
//   - compound 16-byte key/value slots with fingerprints and overflow
//     hints (§III-A),
//   - adaptive in-place updates steered by a lightweight hotspot
//     detector (§III-B),
//   - compacted-flush insertion of small out-of-line records (§III-C),
//   - pipelined execution hiding PM read latency (§III-D),
//   - an HTM-based two-phase concurrency protocol with a per-segment
//     fallback lock (§IV-A), and
//   - collaborative staged directory doubling (§IV-B).
//
// The public API lives in the root package spash; this package is the
// implementation.
package core

import (
	"encoding/binary"

	"spash/internal/hash"
)

// Layout constants of the metadata-free segment (§III-A): one segment
// is exactly one XPLine; a bucket is exactly one cacheline.
const (
	// SegmentSize is the size of a segment in bytes.
	SegmentSize = 256
	// BucketsPerSegment is the number of cacheline buckets.
	BucketsPerSegment = 4
	// SlotsPerBucket is the number of 16-byte compound slots.
	SlotsPerBucket = 4
	// SlotsPerSegment is the total slot count (and the range of the
	// 4-bit overflow index).
	SlotsPerSegment = BucketsPerSegment * SlotsPerBucket
	// slotSize is the size of a compound slot (key word + value word).
	slotSize = 16
	// bucketBits is the number of low hash bits selecting the main
	// bucket.
	bucketBits = 2
)

// Compound slot encoding (§III-A, Fig 2). Each slot is two 64-bit
// words whose top 16 bits are reserved:
//
//	key word:   [63 occupied][62 inline][61..49 key fp (13b)][48 spare][47..0 payload]
//	value word: [63 inline][62 hint valid][61..52 hint fp (10b)][51..48 hint idx][47..0 payload]
//
// Payloads are either the inline datum (a 64-bit little-endian item
// whose top 16 bits are zero) or a 48-bit pointer to an out-of-line
// record. The hint fields of a value word describe at most one entry
// that overflowed from this main bucket: its 10-bit overflow
// fingerprint and its slot index within the segment. Hint bits belong
// to the bucket, not to the slot's own entry, and are preserved across
// that entry's updates and deletions.
const (
	kOccupied = uint64(1) << 63
	kInline   = uint64(1) << 62
	kFPShift  = 49
	kFPMask   = uint64(0x1FFF) << kFPShift

	vInline    = uint64(1) << 63
	hValid     = uint64(1) << 62
	hFPShift   = 52
	hFPMask    = uint64(0x3FF) << hFPShift
	hIdxShift  = 48
	hIdxMask   = uint64(0xF) << hIdxShift
	hintMask   = hValid | hFPMask | hIdxMask
	payloadMax = uint64(1) << 48
	payload    = payloadMax - 1
)

// makeKeyWord builds an occupied key word.
func makeKeyWord(inline bool, fp uint16, p uint64) uint64 {
	w := kOccupied | uint64(fp)<<kFPShift | p&payload
	if inline {
		w |= kInline
	}
	return w
}

// makeValueWord builds a value word's non-hint bits; or the caller
// with existing hint bits to preserve them.
func makeValueWord(inline bool, p uint64) uint64 {
	w := p & payload
	if inline {
		w |= vInline
	}
	return w
}

// makeHint builds the hint bits for an overflow entry.
func makeHint(ofp uint16, slotIdx int) uint64 {
	return hValid | uint64(ofp)<<hFPShift | uint64(slotIdx)<<hIdxShift
}

func keyOccupied(kw uint64) bool { return kw&kOccupied != 0 }
func keyIsInline(kw uint64) bool { return kw&kInline != 0 }
func keyFP(kw uint64) uint16     { return uint16(kw & kFPMask >> kFPShift) }
func wordPayload(w uint64) uint64 {
	return w & payload
}
func valueIsInline(vw uint64) bool { return vw&vInline != 0 }
func hintValid(vw uint64) bool     { return vw&hValid != 0 }
func hintFP(vw uint64) uint16      { return uint16(vw & hFPMask >> hFPShift) }
func hintIdx(vw uint64) int        { return int(vw & hIdxMask >> hIdxShift) }

// inlineKey converts an 8-byte little-endian key to its inline payload
// if it fits in 48 bits.
func inlineKeyPayload(key []byte) (uint64, bool) {
	if len(key) != 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(key)
	if v >= payloadMax {
		return 0, false
	}
	return v, true
}

// inlineValuePayload converts an 8-byte little-endian value to its
// inline payload if it fits in 48 bits.
func inlineValuePayload(val []byte) (uint64, bool) {
	if len(val) != 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(val)
	if v >= payloadMax {
		return 0, false
	}
	return v, true
}

// hashKey computes the request hash, with the fast path for 8-byte
// keys the micro-benchmarks use.
func hashKey(key []byte) uint64 {
	if len(key) == 8 {
		return hash.Sum64Uint64(binary.LittleEndian.Uint64(key))
	}
	return hash.Sum64(key)
}

// mainBucket returns the main bucket index of a hash (lowest 2 bits).
func mainBucket(h uint64) int {
	return int(hash.BucketSuffix(h, bucketBits))
}

// slotAddr returns the PM address of slot idx (0..15) of a segment.
func slotAddr(seg uint64, idx int) uint64 {
	return seg + uint64(idx)*slotSize
}

// bucketOf returns the bucket index that slot idx belongs to.
func bucketOf(idx int) int { return idx / SlotsPerBucket }
