package core

import "spash/internal/obs"

// Span lifecycle for per-operation latency attribution (obs.Span). The
// span lives by value inside the Handle so the unsampled path touches
// no heap and the sampled path allocates nothing until the span is
// folded into the registry's histograms at endSpan.
//
// Attribution model (all durations virtual ns from the worker's pmem
// clock):
//
//   - probe: locate() call windows, accumulated in span.Pending by the
//     op bodies and consumed by the committing attempt (HTM mode) or
//     folded in at endSpan (lock modes, where exec never sees commit
//     boundaries).
//   - publish: the committed attempt's duration minus its probe time.
//   - htm_retry: every aborted attempt, fallback-lock acquisition, and
//     split/resize wait on the way.
//   - media_flush: pool.Flush windows on the op's own path (record
//     allocation, adaptive update flushes).
//   - route: the remainder — hashing, routing, record preparation,
//     free-list maintenance.

// beginSpan arms the handle's span for this operation if the sampling
// counter elects it. kind is the op kind, hash the key hash.
func (h *Handle) beginSpan(kind obs.SpanKind, hash uint64) {
	h.span.Active = false
	if h.spanEvery == 0 || h.lane == nil {
		return
	}
	h.opSeq++
	if h.opSeq%h.spanEvery != 0 {
		return
	}
	h.span = obs.Span{
		Active: true,
		Kind:   kind,
		Key:    hash,
		Shard:  h.ix.shardID.Load(),
		Start:  h.c.Clock(),
	}
}

// endSpan completes an armed span: leftover probe time (lock modes)
// and the unattributed remainder (route) are folded in, and the span
// is recorded on the worker's lane. Idempotent; a no-op when unarmed.
func (h *Handle) endSpan() {
	if !h.span.Active {
		return
	}
	total := h.c.Clock() - h.span.Start
	h.span.Dur[obs.PhaseProbe] += h.span.Pending
	var attributed int64
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		attributed += h.span.Dur[p]
	}
	if route := total - attributed; route > 0 {
		h.span.Dur[obs.PhaseRoute] += route
	}
	h.lane.RecordSpan(&h.span, total)
	h.span.Active = false
	h.span.Pending = 0
}

// spanLap returns the current clock as a phase start mark, or -1 when
// the span is unarmed (spanAdd/spanProbe ignore -1).
func (h *Handle) spanLap() int64 {
	if !h.span.Active {
		return -1
	}
	return h.c.Clock()
}

// spanAdd charges the window since start to phase p.
func (h *Handle) spanAdd(p obs.Phase, start int64) {
	if start >= 0 {
		h.span.Dur[p] += h.c.Clock() - start
	}
}

// spanProbe accumulates the window since start as pending probe time
// (consumed by the committing attempt's attribution, or folded into
// probe at endSpan).
func (h *Handle) spanProbe(start int64) {
	if start >= 0 {
		h.span.Pending += h.c.Clock() - start
	}
}

// spanAttempt marks an HTM attempt's start: pending probe time from a
// previous aborted attempt is discarded (that attempt was charged
// whole to htm_retry).
func (h *Handle) spanAttempt() int64 {
	if !h.span.Active {
		return -1
	}
	h.span.Pending = 0
	return h.c.Clock()
}

// spanCommit attributes a committed attempt: its accumulated probe
// time to probe, the rest of the window to publish.
func (h *Handle) spanCommit(start int64) {
	if start < 0 {
		return
	}
	d := h.c.Clock() - start
	probe := h.span.Pending
	if probe > d {
		probe = d
	}
	h.span.Dur[obs.PhaseProbe] += probe
	h.span.Dur[obs.PhasePublish] += d - probe
	h.span.Pending = 0
}

// spanAbort attributes an aborted attempt's whole window to htm_retry
// and counts the abort.
func (h *Handle) spanAbort(start int64) {
	if start < 0 {
		return
	}
	h.span.Dur[obs.PhaseHTMRetry] += h.c.Clock() - start
	h.span.Aborts++
	h.span.Pending = 0
}
