package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"spash/internal/hash"
	"spash/internal/htm"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// snapMem serves engine reads from a captured segment snapshot.
type snapMem struct {
	base  uint64
	words *[SegmentSize / 8]uint64
}

func (m snapMem) load(addr uint64) uint64 { return m.words[(addr-m.base)/8] }
func (m snapMem) store(uint64, uint64)    { panic("core: store into snapshot") }

// errMaxDepth is returned when a segment cannot split further; with a
// 44-bit directory limit this indicates pathological hash collisions.
var errMaxDepth = errors.New("core: maximum directory depth reached")

// splitConflictBudget is the number of transactional split attempts
// before falling back to locking every covering directory entry.
const splitConflictBudget = 32

// splitOccSalt decorrelates the observation stripes of the two halves
// of one split when recording their post-split occupancies.
const splitOccSalt = 0x9E3779B97F4A7C15

// split divides the segment holding hash hh into two fine-grained
// segments (§III-A, Fig 3): entries whose next prefix bit is 1 move to
// a freshly allocated segment; the covering directory entries are
// repointed and the persistent registry updated, all in one HTM
// transaction. Returns nil when the split succeeded or when another
// thread changed the segment first (the caller re-runs its operation
// either way).
func (ix *Index) split(h *Handle, hh uint64) (err error) {
	c := h.c
	conflicts := 0
	// Split reads the segment and its key records raw during
	// preparation; a poisoned XPLine must surface as a typed error, not
	// a panic (the caller is outside the guarded operation body).
	var curSeg uint64
	defer poisonAsCorruption(&curSeg, &err)
	for {
		_, e := ix.resolveRaw(hh)
		if entryLocked(e) {
			ix.pool.CheckLive()
			runtime.Gosched()
			continue
		}
		seg, depth := entrySeg(e), entryDepth(e)
		curSeg = seg
		if depth >= maxDepth {
			return errMaxDepth
		}

		// Determine the authoritative global depth; during a doubling
		// help copy the partitions covering this segment first
		// (collaborative staged doubling, §IV-B), then operate on the
		// new directory.
		var ds *doublingState
		var g uint
		if atomic.LoadUint64(&ix.dirGen)&1 == 1 {
			ds = ix.doubling.Load()
			if ds == nil {
				continue
			}
			if ds.halving {
				ix.waitResize()
				continue
			}
			g = ds.new.depth
			if depth < ds.old.depth {
				lo := hash.Prefix(hh, depth) << (ds.old.depth - depth)
				hi := lo + 1<<(ds.old.depth-depth)
				for p := ds.partOf(lo); p <= ds.partOf(hi-1); p++ {
					ix.copyStage(c, ds, p, true)
				}
			} else {
				// depth == old depth: the single covering partition.
				ix.copyStage(c, ds, ds.partOf(ds.old.index(hh)), true)
			}
		} else {
			g = ix.dir.Load().depth
		}
		if depth == g {
			ix.triggerDouble(c)
			continue
		}

		// Snapshot and relayout the segment (preparation phase; the
		// transaction validates the snapshot).
		var snap [SegmentSize / 8]uint64
		for i := range snap {
			snap[i] = ix.pool.Load64(c, seg+uint64(i)*8)
		}
		prefix := hash.Prefix(hh, depth)
		imgA, imgB, liveA, liveB, err := ix.splitImages(c, seg, &snap, depth)
		if err != nil {
			return err
		}
		newSeg, _, err := h.ah.Alloc(c, SegmentSize)
		if err != nil {
			return err
		}
		for i, w := range imgB {
			//spash:allow pmstore -- populates the freshly allocated segment image; the directory pointer to it is published only inside the transaction below
			ix.pool.Store64(c, newSeg+uint64(i)*8, w)
		}

		code, terr := ix.tm.Run(c, ix.pool, func(tx *htm.Txn) error {
			ents, g2, rerr := ix.splitView(tx, hh, depth)
			if rerr != nil {
				return rerr
			}
			base := prefix << (g2 - depth)
			n := uint64(1) << (g2 - depth)
			// Validate every covering entry, not just the first: a
			// fallback holder may have locked any one of them, and
			// overwriting a locked entry would let the holder's
			// unlock restore a stale pre-split pointer.
			for j := uint64(0); j < n; j++ {
				cur := tx.LoadVol(&ents[base+j])
				if entryLocked(cur) {
					return errLocked
				}
				if entrySeg(cur) != seg || entryDepth(cur) != depth {
					return errSegMoved
				}
			}
			for i := range snap {
				if tx.Load(seg+uint64(i)*8) != snap[i] {
					return errSegMoved
				}
			}
			for i, w := range imgA {
				if w != snap[i] {
					tx.Store(seg+uint64(i)*8, w)
				}
			}
			for j := uint64(0); j < n/2; j++ {
				tx.StoreVol(&ents[base+j], makeEntry(seg, depth+1))
				tx.StoreVol(&ents[base+n/2+j], makeEntry(newSeg, depth+1))
			}
			tx.Store(ix.regAddrOf(seg), makeRegEntry(prefix<<1, depth+1))
			tx.Store(ix.regAddrOf(newSeg), makeRegEntry(prefix<<1|1, depth+1))
			if ix.sealAddr != 0 {
				tx.Store(ix.sealAddrOf(seg), sealOfImage(&imgA))
				tx.Store(ix.sealAddrOf(newSeg), sealOfImage(&imgB))
			}
			return nil
		})
		switch code {
		case htm.Committed:
			// DP2: both halves are cold multi-cacheline writes; one
			// sequential flush each writes them back as single
			// XPLines instead of scattered evictions ("the split
			// operations are bandwidth-efficient due to the XPLine
			// granularity", §VI-B).
			ix.pool.Flush(c, seg, SegmentSize)
			ix.pool.Flush(c, newSeg, SegmentSize)
			ix.splits.Add(1)
			ix.segments.Add(1)
			h.lane.Inc(obs.CSplits)
			h.lane.Inc(obs.CSegAlloc)
			ix.reg.Trace(obs.EvSplit, c.Clock(), int64(depth+1), int64(liveA+liveB))
			ix.reg.ObserveKeyed(obs.HSegOccupancy, hh, liveA)
			ix.reg.ObserveKeyed(obs.HSegOccupancy, hh^splitOccSalt, liveB)
			return nil
		case htm.Conflict:
			ix.txConflicts.Add(1)
			h.lane.Inc(obs.CHTMConflicts)
			h.ah.Free(c, newSeg, SegmentSize)
			conflicts++
			if conflicts > splitConflictBudget {
				return ix.splitFallback(h, hh)
			}
		case htm.Capacity:
			ix.txCapacity.Add(1)
			h.lane.Inc(obs.CHTMCapacity)
			h.ah.Free(c, newSeg, SegmentSize)
			return ix.splitFallback(h, hh)
		case htm.Explicit:
			h.ah.Free(c, newSeg, SegmentSize)
			if re, ok := terr.(retryError); ok {
				switch re {
				case errSegMoved:
					// Another thread restructured the segment; the
					// caller's retry will split again if still needed.
					return nil
				case errLocked, errResizing:
					ix.pool.CheckLive()
					runtime.Gosched()
				}
				continue
			}
			return terr
		}
	}
}

// splitImages decodes a segment snapshot and lays out the two child
// images: entries whose bit (63-depth) of the hash is 0 stay, 1 move.
// liveA/liveB are the live-entry counts of the two halves (the
// post-split occupancy observable).
func (ix *Index) splitImages(c *pmem.Ctx, seg uint64, snap *[SegmentSize / 8]uint64, depth uint) (imgA, imgB [SegmentSize / 8]uint64, liveA, liveB int, err error) {
	entries := ix.decodeSegment(c, snapMem{seg, snap}, seg)
	var stay, move []segEntry
	for _, en := range entries {
		if en.h>>(63-depth)&1 == 1 {
			move = append(move, en)
		} else {
			stay = append(stay, en)
		}
	}
	liveA, liveB = len(stay), len(move)
	var ok bool
	if imgA, ok = layoutSegment(stay); !ok {
		return imgA, imgB, liveA, liveB, fmt.Errorf("core: split relayout failed (stay half)")
	}
	if imgB, ok = layoutSegment(move); !ok {
		return imgA, imgB, liveA, liveB, fmt.Errorf("core: split relayout failed (move half)")
	}
	return imgA, imgB, liveA, liveB, nil
}

// splitView returns the authoritative directory slice and depth for a
// split's transaction, validating (in the read set) that every
// partition covering the segment has been copied when a doubling is in
// flight.
func (ix *Index) splitView(tx *htm.Txn, hh uint64, depth uint) ([]uint64, uint, error) {
	gen := tx.LoadVol(&ix.dirGen)
	if gen&1 == 0 {
		d := ix.dir.Load()
		if depth >= d.depth {
			return nil, 0, errSegMoved
		}
		return d.entries, d.depth, nil
	}
	ds := ix.doubling.Load()
	if ds == nil || ds.halving {
		return nil, 0, errResizing
	}
	if depth >= ds.new.depth {
		return nil, 0, errSegMoved
	}
	var lo, hi uint64
	if depth <= ds.old.depth {
		lo = hash.Prefix(hh, depth) << (ds.old.depth - depth)
		hi = lo + 1<<(ds.old.depth-depth)
	} else {
		lo = ds.old.index(hh)
		hi = lo + 1
	}
	for p := ds.partOf(lo); p <= ds.partOf(hi-1); p++ {
		if tx.LoadVol(ds.partDonePtr(p)) != 1 {
			return nil, 0, errSegMoved
		}
	}
	return ds.new.entries, ds.new.depth, nil
}

// splitFallback performs the split non-transactionally after taking
// the fallback lock on every covering directory entry. Used when the
// transactional path keeps aborting (e.g. a very wide covering range
// hitting the HTM capacity limit).
func (ix *Index) splitFallback(h *Handle, hh uint64) error {
	c := h.c
	ix.fallbacks.Add(1)
	h.lane.Inc(obs.CSplitFallbacks)
	ix.reg.Trace(obs.EvSplitFallback, c.Clock(), int64(hh>>48), 0)
	for {
		if atomic.LoadUint64(&ix.dirGen)&1 == 1 {
			ix.waitResize()
			continue
		}
		d := ix.dir.Load()
		_, e := ix.resolveRaw(hh)
		if entryLocked(e) {
			ix.pool.CheckLive()
			runtime.Gosched()
			continue
		}
		seg, depth := entrySeg(e), entryDepth(e)
		if depth >= maxDepth {
			return errMaxDepth
		}
		if depth == d.depth {
			ix.triggerDouble(c)
			continue
		}
		prefix := hash.Prefix(hh, depth)
		base := prefix << (d.depth - depth)
		n := uint64(1) << (d.depth - depth)

		// Lock every covering entry (ascending order, CAS with bump so
		// optimistic transactions conflict).
		locked := uint64(0)
		ok := true
		for j := uint64(0); j < n; j++ {
			ptr := &d.entries[base+j]
			cur := atomic.LoadUint64(ptr)
			if entryLocked(cur) || entrySeg(cur) != seg || entryDepth(cur) != depth ||
				!ix.tm.BumpCASVol(c, ptr, cur, cur|entryLock) {
				ok = false
				break
			}
			locked++
		}
		if !ok || ix.dir.Load() != d {
			for j := uint64(0); j < locked; j++ {
				ptr := &d.entries[base+j]
				ix.tm.BumpStoreVol(c, ptr, entryUnlock(atomic.LoadUint64(ptr)))
			}
			ix.pool.CheckLive()
			runtime.Gosched()
			continue
		}

		// Exclusive: perform the split irrevocably (stripe locks keep
		// half-published optimistic commits out of the snapshot and
		// make our writes conflicting-visible).
		err := ix.tm.Irrevocable(c, ix.pool, func(it *htm.ITxn) error {
			m := iMem{it}
			var snap [SegmentSize / 8]uint64
			for i := range snap {
				snap[i] = m.load(seg + uint64(i)*8)
			}
			imgA, imgB, liveA, liveB, ierr := ix.splitImages(c, seg, &snap, depth)
			if ierr != nil {
				return ierr
			}
			newSeg, _, ierr := h.ah.Alloc(c, SegmentSize)
			if ierr != nil {
				return ierr
			}
			for i, w := range imgB {
				ix.pool.Store64(c, newSeg+uint64(i)*8, w)
			}
			for i, w := range imgA {
				if w != snap[i] {
					m.store(seg+uint64(i)*8, w)
				}
			}
			m.store(ix.regAddrOf(seg), makeRegEntry(prefix<<1, depth+1))
			m.store(ix.regAddrOf(newSeg), makeRegEntry(prefix<<1|1, depth+1))
			if ix.sealAddr != 0 {
				m.store(ix.sealAddrOf(seg), sealOfImage(&imgA))
				m.store(ix.sealAddrOf(newSeg), sealOfImage(&imgB))
			}
			for j := uint64(0); j < n/2; j++ {
				it.StoreVol(&d.entries[base+j], makeEntry(seg, depth+1))
				it.StoreVol(&d.entries[base+n/2+j], makeEntry(newSeg, depth+1))
			}
			ix.splits.Add(1)
			ix.segments.Add(1)
			h.lane.Inc(obs.CSplits)
			h.lane.Inc(obs.CSegAlloc)
			ix.reg.Trace(obs.EvSplit, c.Clock(), int64(depth+1), int64(liveA+liveB))
			ix.reg.ObserveKeyed(obs.HSegOccupancy, hh, liveA)
			ix.reg.ObserveKeyed(obs.HSegOccupancy, hh^splitOccSalt, liveB)
			return nil
		})
		if err != nil {
			// Unlock with original values on failure.
			for j := uint64(0); j < n; j++ {
				ptr := &d.entries[base+j]
				ix.tm.BumpStoreVol(c, ptr, entryUnlock(atomic.LoadUint64(ptr)))
			}
			return err
		}
		return nil
	}
}
