// Chaos drills: replication over a deliberately hostile transport.
// Every arm of the matrix {drop, dup, reorder, partition} × {eADR,
// ADR} × {steady, failover-mid-partition} runs a seeded workload
// through repl.FaultyTransport, power-cycles the replica mid-script
// (driving the cursor-handshake replay under eADR and the automated
// re-seed under ADR), and holds two oracles:
//
//   - Zero lost acknowledged writes. Steady arms must converge on the
//     full acknowledged model after the transport heals; failover arms
//     promote the replica mid-partition and the survivor must hold
//     exactly the synchronously-acknowledged model (writes accepted
//     while the breaker was open are degraded-async by documented
//     contract and excluded — but writes acknowledged while the
//     breaker was closed may never be missing or wrong).
//   - Bounded convergence. The primary never blocks a write
//     indefinitely (every op returns, partition or not), degradation
//     is visible to health while it lasts, and a bounded number of
//     drain passes brings lag to zero, the breaker closed, and health
//     back to OK — with auto-resync doing any replay or re-seeding
//     without operator action.
package crashtest

import (
	"errors"
	"fmt"
	"time"

	"spash"
	"spash/internal/obs"
	"spash/internal/pmem"
	"spash/internal/repl"
)

// ChaosFault names a transport fault family.
type ChaosFault string

const (
	ChaosDrop      ChaosFault = "drop"
	ChaosDup       ChaosFault = "dup"
	ChaosReorder   ChaosFault = "reorder"
	ChaosPartition ChaosFault = "partition"
)

// ChaosArm is one cell of the chaos matrix.
type ChaosArm struct {
	Fault ChaosFault `json:"fault"`
	Mode  pmem.Mode  `json:"mode"`
	// Failover promotes the replica mid-partition instead of letting
	// the transport heal.
	Failover bool  `json:"failover"`
	Seed     int64 `json:"seed"`
}

// Name is the arm's report identifier, e.g. "drop/eadr/steady".
func (a ChaosArm) Name() string {
	mode := "eadr"
	if a.Mode == pmem.ADR {
		mode = "adr"
	}
	phase := "steady"
	if a.Failover {
		phase = "failover"
	}
	return fmt.Sprintf("%s/%s/%s", a.Fault, mode, phase)
}

// spec maps the arm's fault family onto FaultyTransport rates. The
// partition family injects no byzantine rates — its cut is driven
// deterministically at the workload midpoint — while the others keep
// the transport lossy for the entire run, drain included.
func (a ChaosArm) spec() repl.FaultSpec {
	s := repl.FaultSpec{Seed: a.Seed}
	switch a.Fault {
	case ChaosDrop:
		s.Drop = 0.3
	case ChaosDup:
		s.Dup = 0.3
		s.Delay = 0.15 // lost acks: the other way duplicates happen
	case ChaosReorder:
		s.Reorder = 0.25
		s.Drop = 0.05 // stragglers need gaps to land out-of-order into
	case ChaosPartition:
	}
	return s
}

// ChaosArms enumerates the full 16-arm matrix with per-arm seeds
// derived from base.
func ChaosArms(base int64) []ChaosArm {
	var out []ChaosArm
	i := int64(0)
	for _, f := range []ChaosFault{ChaosDrop, ChaosDup, ChaosReorder, ChaosPartition} {
		for _, m := range []pmem.Mode{pmem.EADR, pmem.ADR} {
			for _, fo := range []bool{false, true} {
				out = append(out, ChaosArm{Fault: f, Mode: m, Failover: fo, Seed: base + i})
				i++
			}
		}
	}
	return out
}

// chaosOpts is shardedOpts with the arm's persistence mode.
func chaosOpts(mode pmem.Mode) spash.Options {
	o := shardedOpts(2)
	o.Platform.Mode = mode
	return o
}

// ChaosTrial is the outcome of one chaos-matrix cell.
type ChaosTrial struct {
	Arm ChaosArm `json:"arm"`
	Ops int      `json:"ops"`

	// RejoinReseeded reports that the mid-script replica power-cycle
	// rolled back applied state (possible under ADR only) and the
	// typed reseed path was taken.
	RejoinReseeded bool `json:"rejoin_reseeded"`

	// DegradedSeen: during the partition, the breaker was open and
	// health reported the degradation (checked on partition and
	// failover arms).
	DegradedSeen bool `json:"degraded_seen"`

	// DrainPasses is the number of TryDrain/Resync passes convergence
	// needed; ConvergeErr the last error if it never converged.
	DrainPasses int    `json:"drain_passes"`
	ConvergeErr string `json:"converge_err,omitempty"`

	// Failover-arm outcomes: promotion error, survivor epoch, and the
	// deposed primary's post-promotion drain being fenced typed.
	PromoteErr    string `json:"promote_err,omitempty"`
	Epoch         uint64 `json:"epoch,omitempty"`
	FencedDeposed bool   `json:"fenced_deposed"`

	// Oracle outcomes against the survivor.
	LostAcked    int    `json:"lost_acked"`
	LenMismatch  bool   `json:"len_mismatch"`
	InvariantErr string `json:"invariant_err,omitempty"`
	Misplaced    int    `json:"misplaced"`

	// End-state (steady arms must close the loop completely).
	BreakerEnd string `json:"breaker_end"`
	SpillEnd   int    `json:"spill_end"`
	LagEnd     int    `json:"lag_end"`
	HealthEnd  string `json:"health_end"`

	// Transport and counter evidence (what the chaos actually did).
	Faults   repl.FaultStats `json:"faults"`
	Retries  int64           `json:"retries"`
	Trips    int64           `json:"breaker_trips"`
	Spills   int64           `json:"spills"`
	Resyncs  int64           `json:"resyncs"`
	Replays  int64           `json:"replays"`
	Reseeds  int64           `json:"reseeds"`
	ApplyDup int64           `json:"apply_dupes"`
}

// Failed reports whether the trial violated the chaos contract.
func (tr *ChaosTrial) Failed() bool {
	if tr.LostAcked > 0 || tr.LenMismatch || tr.InvariantErr != "" || tr.Misplaced > 0 {
		return true
	}
	if tr.Arm.Failover {
		return tr.PromoteErr != "" || !tr.FencedDeposed || !tr.DegradedSeen
	}
	if tr.ConvergeErr != "" || tr.BreakerEnd != "closed" || tr.SpillEnd > 0 ||
		tr.LagEnd > 0 || tr.HealthEnd != "OK" {
		return true
	}
	if tr.Arm.Fault == ChaosPartition && !tr.DegradedSeen {
		return true
	}
	return false
}

// Err formats the trial's violation, or nil.
func (tr *ChaosTrial) Err() error {
	switch {
	case tr.LostAcked > 0:
		return fmt.Errorf("%s: %d acknowledged writes lost on survivor", tr.Arm.Name(), tr.LostAcked)
	case tr.LenMismatch:
		return fmt.Errorf("%s: survivor length disagrees with acknowledged model", tr.Arm.Name())
	case tr.InvariantErr != "":
		return fmt.Errorf("%s: survivor invariants: %s", tr.Arm.Name(), tr.InvariantErr)
	case tr.Misplaced > 0:
		return fmt.Errorf("%s: %d misplaced records on survivor", tr.Arm.Name(), tr.Misplaced)
	case tr.Arm.Failover && tr.PromoteErr != "":
		return fmt.Errorf("%s: promotion failed: %s", tr.Arm.Name(), tr.PromoteErr)
	case tr.Arm.Failover && !tr.FencedDeposed:
		return fmt.Errorf("%s: deposed primary's drain was not fenced typed", tr.Arm.Name())
	case (tr.Arm.Failover || tr.Arm.Fault == ChaosPartition) && !tr.DegradedSeen:
		return fmt.Errorf("%s: partition did not surface as DEGRADED health", tr.Arm.Name())
	case tr.ConvergeErr != "":
		return fmt.Errorf("%s: did not converge in %d passes: %s", tr.Arm.Name(), tr.DrainPasses, tr.ConvergeErr)
	case tr.BreakerEnd != "closed" || tr.SpillEnd > 0 || tr.LagEnd > 0:
		return fmt.Errorf("%s: loop not closed (breaker=%s spill=%d lag=%d)",
			tr.Arm.Name(), tr.BreakerEnd, tr.SpillEnd, tr.LagEnd)
	case tr.HealthEnd != "OK":
		return fmt.Errorf("%s: health after convergence = %s", tr.Arm.Name(), tr.HealthEnd)
	}
	return nil
}

// chaosConvergeLimit bounds the drain passes a trial may spend: a
// correct implementation converges in a handful even at the matrix's
// loss rates, so hitting the bound is a liveness failure, not bad
// luck.
const chaosConvergeLimit = 50

// RunChaosTrial executes one matrix cell over ops seeded operations.
func RunChaosTrial(arm ChaosArm, ops int) (ChaosTrial, error) {
	tr := ChaosTrial{Arm: arm, Ops: ops}
	opts := chaosOpts(arm.Mode)

	pdb, err := spash.Open(opts)
	if err != nil {
		return tr, err
	}
	ropts := opts
	ropts.Replica = true
	rdb, err := spash.Open(ropts)
	if err != nil {
		return tr, err
	}
	rep, err := repl.NewReplica(rdb)
	if err != nil {
		return tr, err
	}
	ft := repl.NewFaultyTransport(&repl.InProc{R: rep}, arm.spec())
	prim, err := repl.NewPrimaryWith(pdb, ft, repl.PrimaryOptions{
		// Fail fast, no wall-clock: backoff sleeps are a no-op and the
		// prober is off — convergence is driven by explicit TryDrain
		// passes so the trial is deterministic for its seed.
		Retry: repl.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {},
			Deadline: -1, JitterSeed: arm.Seed + 1},
		SpillLimit:    ops + 16, // overflow shedding is its own drill
		ReplayLog:     64,
		ProbeInterval: -1,
	})
	if err != nil {
		return tr, err
	}
	defer func() {
		prim.Close()
		rep.Close()
		pdb.Close()
		rep.DB().Close()
	}()

	script := SeededScript(arm.Seed, ops)
	model := map[string]string{}
	mid := len(script) / 2
	rejoinAt := len(script) / 4

	run := func(lo, hi int, rejoin bool) error {
		for i := lo; i < hi; i++ {
			if rejoin && i == rejoinAt {
				// Replica node power-cycle mid-stream: under eADR the
				// cursor anchors a handshake replay; under ADR a
				// rollback takes the typed reseed path. Both repair on
				// the next ship with no operator step.
				if rerr := rep.Rejoin(chaosOpts(arm.Mode)); rerr != nil {
					if !errors.Is(rerr, spash.ErrNeedsReseed) {
						return fmt.Errorf("rejoin at op %d: %w", i, rerr)
					}
					tr.RejoinReseeded = true
				}
			}
			if oerr := applyPrimaryOp(prim, &script[i]); oerr != nil {
				return fmt.Errorf("op %d (%v %q): %w", i, script[i].Kind, script[i].Key, oerr)
			}
			applyModel(model, &script[i])
		}
		return nil
	}
	converge := func() error {
		var cerr error
		for pass := 0; pass < chaosConvergeLimit; pass++ {
			tr.DrainPasses++
			if _, cerr = prim.TryDrain(); cerr != nil {
				continue
			}
			if cerr = prim.Resync(); cerr == nil {
				return nil
			}
		}
		return cerr
	}

	if arm.Failover {
		// Phase A ships synchronously (faults and all), then converges:
		// everything acknowledged so far is on the replica — the
		// synchronously-acknowledged model the survivor must hold.
		if err := run(0, mid, true); err != nil {
			return tr, err
		}
		if cerr := converge(); cerr != nil {
			tr.ConvergeErr = cerr.Error()
			return tr, nil
		}
		ackedSync := make(map[string]string, len(model))
		for k, v := range model {
			ackedSync[k] = v
		}
		// The cut: phase B's writes keep succeeding locally (the
		// primary must never block indefinitely) but spill — they are
		// acknowledged degraded-async, visible as DEGRADED health, and
		// are NOT part of the survivor oracle.
		ft.Cut()
		if err := run(mid, len(script), false); err != nil {
			return tr, err
		}
		st, _ := prim.Breaker()
		tr.DegradedSeen = st == repl.BreakerOpen &&
			pdb.Health().Status == obs.HealthDegraded
		// Failover: promote the replica mid-partition.
		epoch, perr := rep.Promote()
		if perr != nil {
			tr.PromoteErr = perr.Error()
		}
		tr.Epoch = epoch
		// The partition heals and the deposed primary tries to drain
		// its spill: every frame must be rejected typed by the
		// promoted node's epoch fence.
		ft.Heal()
		if _, derr := prim.TryDrain(); errors.Is(derr, spash.ErrNotPrimary) && prim.Deposed() {
			tr.FencedDeposed = true
		}
		tr.collectOracle(rep, script, ackedSync)
	} else {
		if err := run(0, mid, true); err != nil {
			return tr, err
		}
		if arm.Fault == ChaosPartition {
			ft.Cut()
		}
		if err := run(mid, len(script), false); err != nil {
			return tr, err
		}
		if arm.Fault == ChaosPartition {
			st, _ := prim.Breaker()
			tr.DegradedSeen = st == repl.BreakerOpen &&
				pdb.Health().Status == obs.HealthDegraded
			ft.Heal()
		}
		if cerr := converge(); cerr != nil {
			tr.ConvergeErr = cerr.Error()
		}
		tr.collectOracle(rep, script, model)
	}

	// End state and evidence.
	st, _ := prim.Breaker()
	tr.BreakerEnd = st.String()
	tr.SpillEnd = prim.SpillDepth()
	tr.LagEnd = rep.Lag()
	if arm.Failover {
		tr.HealthEnd = rep.DB().Health().Status.String()
	} else {
		tr.HealthEnd = pdb.Health().Status.String()
	}
	tr.Faults = ft.Stats()
	snap := pdb.ObsSnapshot()
	tr.Retries = snap.Counters[obs.CounterNames[obs.CReplRetries]]
	tr.Trips = snap.Counters[obs.CounterNames[obs.CReplBreakerTrips]]
	tr.Spills = snap.Counters[obs.CounterNames[obs.CReplSpills]]
	tr.Resyncs = snap.Counters[obs.CounterNames[obs.CReplResyncs]]
	tr.Replays = snap.Counters[obs.CounterNames[obs.CReplReplays]]
	tr.Reseeds = snap.Counters[obs.CounterNames[obs.CReplReseeds]]
	rsnap := rep.DB().ObsSnapshot()
	tr.ApplyDup = rsnap.Counters[obs.CounterNames[obs.CReplApplyDupes]]
	return tr, nil
}

// collectOracle runs the durability oracle and structural checks
// against the surviving replica image.
func (tr *ChaosTrial) collectOracle(rep *repl.Replica, script Script, acked map[string]string) {
	sdb := rep.DB()
	s := sdb.Session()
	defer s.Close()
	lost, _ := checkSessionOracle(s, script, acked, -1)
	tr.LostAcked = lost
	tr.LenMismatch = sdb.Len() != len(acked)
	if ierr := checkShardInvariants(sdb, s); ierr != nil {
		tr.InvariantErr = ierr.Error()
	}
	tr.Misplaced = countMisplaced(sdb, s)
}

// ChaosResult aggregates a matrix sweep.
type ChaosResult struct {
	Ops      int
	Trials   []ChaosTrial
	Failures int
}

// ChaosSweep runs every arm over ops operations.
func ChaosSweep(arms []ChaosArm, ops int) (ChaosResult, error) {
	res := ChaosResult{Ops: ops}
	for _, arm := range arms {
		tr, err := RunChaosTrial(arm, ops)
		if err != nil {
			return res, fmt.Errorf("chaos %s: %w", arm.Name(), err)
		}
		res.Trials = append(res.Trials, tr)
		if tr.Failed() {
			res.Failures++
		}
	}
	return res, nil
}
