package crashtest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeChaosReport drops one trial's JSON into $CHAOS_REPORT_DIR when
// the environment asks for it (the CI chaos-drill job uploads these
// as per-trial convergence reports).
func writeChaosReport(t *testing.T, tr *ChaosTrial) {
	dir := os.Getenv("CHAOS_REPORT_DIR")
	if dir == "" {
		return
	}
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		t.Fatalf("marshal chaos report: %v", err)
	}
	name := strings.ReplaceAll(tr.Arm.Name(), "/", "-") + ".json"
	if err := os.WriteFile(filepath.Join(dir, name), append(b, '\n'), 0o644); err != nil {
		t.Fatalf("write chaos report: %v", err)
	}
}

// TestChaosMatrix sweeps the full {drop,dup,reorder,partition} ×
// {eADR,ADR} × {steady,failover-mid-partition} matrix. In -short mode
// it keeps one arm per fault family, alternating mode and phase.
func TestChaosMatrix(t *testing.T) {
	arms := ChaosArms(1)
	if testing.Short() {
		var subset []ChaosArm
		for i, arm := range arms {
			// 16 arms in blocks of 4 per fault: pick a rotating cell of
			// each block so every fault family, both modes, and both
			// phases stay covered.
			if i%4 == (i/4)%4 {
				subset = append(subset, arm)
			}
		}
		arms = subset
	}
	const ops = 160
	for _, arm := range arms {
		arm := arm
		t.Run(arm.Name(), func(t *testing.T) {
			tr, err := RunChaosTrial(arm, ops)
			if err != nil {
				t.Fatalf("chaos trial: %v", err)
			}
			writeChaosReport(t, &tr)
			if tr.Failed() {
				t.Fatalf("chaos contract violated: %v\n%+v", tr.Err(), tr)
			}
			t.Logf("%s: converged in %d passes (faults %+v, retries %d, trips %d, resyncs %d, replays %d, reseeds %d, dup-acks %d)",
				arm.Name(), tr.DrainPasses, tr.Faults, tr.Retries, tr.Trips,
				tr.Resyncs, tr.Replays, tr.Reseeds, tr.ApplyDup)
		})
	}
}

// TestChaosSweepAggregates exercises the sweep entry point the CI job
// and external harnesses call.
func TestChaosSweepAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix covered per-arm in short mode")
	}
	res, err := ChaosSweep(ChaosArms(7), 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 16 {
		t.Fatalf("sweep ran %d trials, want 16", len(res.Trials))
	}
	for i := range res.Trials {
		if res.Trials[i].Failed() {
			t.Errorf("arm %s failed: %v", res.Trials[i].Arm.Name(), res.Trials[i].Err())
		}
	}
	if res.Failures != 0 {
		t.Fatalf("%d arms failed", res.Failures)
	}
}
