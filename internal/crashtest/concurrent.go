// Multi-writer crash smoke: the single-threaded sweep (crashtest.go)
// proves per-operation atomicity, but recovery after a *concurrent*
// crash is a different path — several workers mid-operation through
// separate Ctxs when the power cuts, so the image holds interleaved
// in-flight damage from all of them. The oracle here is necessarily
// schedule-independent: values are a pure function of the key, so
// after recovery every present key must carry exactly its function
// value (torn or mixed values are the failure), every key a writer
// acknowledged before the cut must be present under eADR, and
// CheckInvariants must hold. ADR trials interpose the documented
// recover-then-fsck flow first: without persist barriers an ADR cut
// leaves line-granular tears (a slot durable while its record rolled
// back) that only quarantine repair can reconcile, at the price of
// the repaired segments' lost keys — which the ADR oracle tolerates.
package crashtest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spash/internal/alloc"
	"spash/internal/core"
	"spash/internal/pmem"
)

// concKey returns writer w's i-th key (disjoint across writers).
func concKey(w, i int) []byte {
	return []byte(fmt.Sprintf("w%02d-%06d", w, i))
}

// concVal is the deterministic value of a key: recovery can recompute
// it without any shared acknowledgment log.
func concVal(w, i int) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(w)*0x9E3779B97F4A7C15+uint64(i))
	binary.LittleEndian.PutUint64(b[8:], uint64(i)*2654435761)
	return b[:]
}

// ConcurrentTrial is the outcome of one multi-writer crash trial.
type ConcurrentTrial struct {
	Fired        bool
	Steps        int64
	RecoverErr   error
	InvariantErr error
	// LostAcked counts keys acknowledged strictly before the cut that
	// are missing after recovery (must be 0 under eADR).
	LostAcked int
	// Torn counts present keys whose value is not the key's function
	// value — a torn or interleaved write leaking through recovery.
	Torn int
	// Present is the total recovered key count (diagnostics).
	Present int
	// FsckFaults/FsckUnrepaired report the post-recovery repair pass
	// that ADR trials run (recover-then-fsck is the documented ADR
	// flow); any unrepaired fault fails the trial.
	FsckFaults     int
	FsckUnrepaired int
}

// Failed reports whether the trial violated the concurrent-crash
// contract for mode.
func (tr *ConcurrentTrial) Failed(mode pmem.Mode) bool {
	if tr.RecoverErr != nil || tr.InvariantErr != nil || tr.Torn > 0 || tr.FsckUnrepaired > 0 {
		return true
	}
	return mode == pmem.EADR && tr.LostAcked > 0
}

// Err formats the trial's violation for mode, or nil.
func (tr *ConcurrentTrial) Err(mode pmem.Mode) error {
	switch {
	case tr.RecoverErr != nil:
		return fmt.Errorf("concurrent crash at step %d: recovery failed: %w", tr.Steps, tr.RecoverErr)
	case tr.InvariantErr != nil:
		return fmt.Errorf("concurrent crash at step %d: invariants violated: %w", tr.Steps, tr.InvariantErr)
	case tr.Torn > 0:
		return fmt.Errorf("concurrent crash at step %d: %d torn values recovered", tr.Steps, tr.Torn)
	case tr.FsckUnrepaired > 0:
		return fmt.Errorf("concurrent crash at step %d: %d segment faults unrepaired after fsck", tr.Steps, tr.FsckUnrepaired)
	case mode == pmem.EADR && tr.LostAcked > 0:
		return fmt.Errorf("concurrent crash at step %d: %d acknowledged inserts lost", tr.Steps, tr.LostAcked)
	}
	return nil
}

// RunConcurrentTrial starts writers goroutines inserting disjoint key
// ranges through separate Ctxs, fires one armed FaultPlan at
// crashStep (a global persistence-primitive step, so the victim and
// the interleaving vary with the schedule), then recovers and checks
// the oracle. Each writer publishes its acknowledged high-water mark
// through an atomic counter *after* each successful insert, so a key
// counted acked was fully acknowledged strictly before the cut.
func RunConcurrentTrial(mode pmem.Mode, writers, perWriter int, crashStep int64) (ConcurrentTrial, error) {
	tr := ConcurrentTrial{}
	pool := poolFor(mode)
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		return tr, err
	}
	cfg := core.Config{InitialDepth: 2, Concurrency: core.ModeHTM}
	ix, err := core.Open(c, pool, al, cfg)
	if err != nil {
		return tr, err
	}

	fp := &pmem.FaultPlan{CrashAtStep: crashStep}
	pool.ArmFault(fp)

	ackedHW := make([]atomic.Int64, writers)
	werrs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			werrs[w] = pmem.CatchCrash(func() error {
				h := ix.NewHandle(nil)
				defer h.Close()
				for i := 0; i < perWriter; i++ {
					if err := h.Insert(concKey(w, i), concVal(w, i)); err != nil {
						return fmt.Errorf("writer %d insert %d: %w", w, i, err)
					}
					ackedHW[w].Store(int64(i + 1))
				}
				return nil
			})
		}(w)
	}
	wg.Wait()
	pool.DisarmFault()
	tr.Fired = fp.Fired()
	tr.Steps = fp.Steps()
	for _, werr := range werrs {
		if werr != nil && !errors.Is(werr, pmem.ErrInjectedCrash) {
			return tr, werr
		}
	}

	c2 := pool.NewCtx()
	ix2, _, rerr := core.Recover(c2, pool, cfg)
	if rerr != nil {
		tr.RecoverErr = rerr
		return tr, nil
	}
	h2 := ix2.NewHandle(c2)
	if mode == pmem.ADR && tr.Fired {
		// ADR without the persist-barrier discipline gives no ordering
		// between a cut's surviving cachelines (the paper's argument
		// for eADR): the image can hold line-granular tears — a slot
		// durable while its out-of-line record rolled back, a split's
		// migration half-applied — that recovery alone cannot
		// reconcile. The documented ADR operational flow is
		// recover-then-fsck; run it, and hold the oracle against the
		// repaired image.
		fr, ferr := h2.Fsck(true)
		if ferr != nil {
			tr.RecoverErr = ferr
			return tr, nil
		}
		tr.FsckFaults = len(fr.Faults)
		tr.FsckUnrepaired = len(fr.Failed)
	}
	tr.InvariantErr = ix2.CheckInvariants(c2)
	for w := 0; w < writers; w++ {
		hw := int(ackedHW[w].Load())
		for i := 0; i < perWriter; i++ {
			got, found, serr := h2.Search(concKey(w, i), nil)
			if serr != nil {
				return tr, fmt.Errorf("writer %d key %d: %w", w, i, serr)
			}
			if found {
				tr.Present++
				if !bytes.Equal(got, concVal(w, i)) {
					tr.Torn++
				}
			} else if i < hw {
				tr.LostAcked++
			}
		}
	}
	return tr, nil
}
