// Package crashtest is the crash-point fault-injection harness: it
// replays a scripted workload against a fresh index, injects a
// simulated power failure at one exact persistence-primitive step
// (pmem.FaultPlan), recovers the pool, and checks both the structural
// invariants (core.CheckInvariants) and a durability oracle. Sweeping
// the crash step across the whole workload enumerates every mid-
// operation crash state a given platform (eADR or ADR) can produce —
// the coverage RECIPE showed is where PM indexes actually break.
//
// The durability oracle is the paper's eADR claim made executable:
// after recovery, every acknowledged operation must be present with
// its exact value, and the single in-flight operation must be atomic —
// the recovered index reflects either its pre-state or its post-state,
// nothing in between. Under ADR the same sweep demonstrates the gap
// the paper predicts: unflushed acknowledged writes sit in the volatile
// cache and roll back, so the oracle (or recovery itself) fails at some
// crash steps.
//
// Scripts run single-threaded in ModeHTM, which makes each sweep fully
// deterministic: trial N and trial N+1 count the same step stream, so
// the sweep terminates exactly when N exceeds the workload's total step
// count. The lock-based ablation modes are deliberately out of scope —
// their raw stores tear mid-operation by design, which is the very
// reason the paper builds on HTM.
package crashtest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"spash/internal/alloc"
	"spash/internal/core"
	"spash/internal/pmem"
)

// OpKind is a scripted operation type.
type OpKind int

const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
)

// Op is one scripted, acknowledged index operation.
type Op struct {
	Kind OpKind
	Key  string
	Val  string
}

// Script is a deterministic workload.
type Script []Op

// key8 builds an 8-byte key whose inline payload fits 48 bits, hitting
// the inline-key slot path.
func key8(i int) string {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return string(b[:])
}

// val8 builds an 8-byte inline-value payload.
func val8(i int) string {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i)*2654435761%1<<47)
	return string(b[:])
}

// pad returns a deterministic printable payload of n bytes.
func pad(seed, n int) string {
	b := make([]byte, n)
	x := uint32(seed)*2654435761 + 12345
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = 'a' + byte(x>>24%26)
	}
	return string(b)
}

// DefaultScript returns the standard workload: it drives every
// structure-changing path of the index — inline and out-of-line
// inserts (small records through the compacted-flush chunk path, large
// multi-XPLine records), adaptive updates (inline overwrite, same-class
// in-place, class-changing reallocation, repeated updates that turn a
// key hot), deletes (including the sampled merge path), segment splits
// and, from InitialDepth 1, staged directory doubling.
func DefaultScript() Script {
	var s Script
	// Phase 1: inline inserts, enough to split segments repeatedly and
	// double the directory several times from depth 1.
	for i := 0; i < 56; i++ {
		s = append(s, Op{OpInsert, key8(i), val8(i)})
	}
	// Phase 2: small out-of-line records exercising the compacted-flush
	// XPLine chunk (fills several 256 B chunks with 24..88 B records).
	for i := 0; i < 20; i++ {
		s = append(s, Op{OpInsert, fmt.Sprintf("okey-%03d", i), pad(i, 24+i*3)})
	}
	// Phase 3: large records (several XPLines) and long keys.
	for i := 0; i < 6; i++ {
		s = append(s, Op{OpInsert, "long-key-" + pad(100+i, 24), pad(200+i, 300+i*90)})
	}
	// Phase 4: updates — inline rewrite, same-class in-place,
	// class-changing, and a hot key hammered repeatedly.
	for i := 0; i < 12; i++ {
		s = append(s, Op{OpUpdate, key8(i), val8(1000 + i)})
	}
	for i := 0; i < 10; i++ {
		s = append(s, Op{OpUpdate, fmt.Sprintf("okey-%03d", i), pad(300+i, 24+i*3)}) // same class
	}
	for i := 0; i < 6; i++ {
		s = append(s, Op{OpUpdate, fmt.Sprintf("okey-%03d", i), pad(400+i, 200)}) // class change
	}
	for r := 0; r < 8; r++ {
		s = append(s, Op{OpUpdate, key8(3), val8(2000 + r)}) // hot
	}
	// Phase 5: deletes (sampled merges) interleaved with re-inserts.
	for i := 40; i < 56; i++ {
		s = append(s, Op{OpDelete, key8(i), ""})
	}
	for i := 0; i < 5; i++ {
		s = append(s, Op{OpDelete, fmt.Sprintf("okey-%03d", 15+i), ""})
	}
	for i := 56; i < 72; i++ {
		s = append(s, Op{OpInsert, key8(i), pad(500+i, 48)})
	}
	return s
}

// Arm is one cell of the crash matrix: a persistence domain crossed
// with the flush policies under test.
type Arm struct {
	Name   string
	Mode   pmem.Mode
	Insert core.InsertPolicy
	Update core.UpdatePolicy
}

// Arms returns the full eADR/ADR × flush-policy matrix.
func Arms() []Arm {
	return []Arm{
		{"eadr-compacted-adaptive", pmem.EADR, core.InsertCompactedFlush, core.UpdateAdaptive},
		{"eadr-nocompact-always", pmem.EADR, core.InsertNoCompact, core.UpdateAlwaysFlush},
		{"eadr-compactnoflush-never", pmem.EADR, core.InsertCompactNoFlush, core.UpdateNeverFlush},
		{"adr-compacted-adaptive", pmem.ADR, core.InsertCompactedFlush, core.UpdateAdaptive},
	}
}

// Trial is the outcome of one crash-point trial.
type Trial struct {
	Step  int64
	Fired bool
	// Steps is the total step count observed (meaningful when !Fired:
	// the workload completed, sizing the sweep).
	Steps int64
	// RecoverErr is the error from core.Recover after the crash.
	RecoverErr error
	// InvariantErr is the CheckInvariants result on the recovered index.
	InvariantErr error
	// LostAcked counts acknowledged operations whose effect is missing
	// or wrong in the recovered index (always 0 on a healthy eADR run).
	LostAcked int
	// InFlightTorn reports that the in-flight operation was neither
	// fully applied nor fully absent.
	InFlightTorn bool
	// Misplaced counts records that decode cleanly but whose key
	// routes to a different segment — silent misplacement a value
	// comparison alone cannot see (the lookup simply misses the key,
	// which under ADR is indistinguishable from legal rollback).
	Misplaced int
}

// Failed reports whether the trial violated the durability contract.
func (tr *Trial) Failed() bool {
	return tr.RecoverErr != nil || tr.InvariantErr != nil || tr.LostAcked > 0 ||
		tr.InFlightTorn || tr.Misplaced > 0
}

// Err formats the trial's violation, or nil.
func (tr *Trial) Err() error {
	switch {
	case tr.RecoverErr != nil:
		return fmt.Errorf("crash at step %d: recovery failed: %w", tr.Step, tr.RecoverErr)
	case tr.InvariantErr != nil:
		return fmt.Errorf("crash at step %d: invariants violated: %w", tr.Step, tr.InvariantErr)
	case tr.InFlightTorn:
		return fmt.Errorf("crash at step %d: in-flight operation torn", tr.Step)
	case tr.Misplaced > 0:
		return fmt.Errorf("crash at step %d: %d records silently misplaced", tr.Step, tr.Misplaced)
	case tr.LostAcked > 0:
		return fmt.Errorf("crash at step %d: %d acknowledged operations lost", tr.Step, tr.LostAcked)
	}
	return nil
}

// Result aggregates a sweep.
type Result struct {
	Arm        Arm
	TotalSteps int64
	Trials     int
	Failures   []Trial // trials violating the durability contract
}

// runCfg builds the index configuration for an arm.
func runCfg(arm Arm) core.Config {
	return core.Config{
		InitialDepth: 1,
		Concurrency:  core.ModeHTM,
		Insert:       arm.Insert,
		Update:       arm.Update,
		// Single-worker scripts never conflict; keep retries minimal so
		// an unexpected fallback shows up as a step-count change.
	}
}

func poolFor(mode pmem.Mode) *pmem.Pool {
	return pmem.New(pmem.Config{
		PoolSize: 4 << 20,
		Mode:     mode,
		// A small cache forces evictions, so ADR runs exhibit the
		// mixed durable/rolled-back images real crashes produce.
		CacheSize: 64 << 10,
	})
}

func applyOp(h *core.Handle, op *Op) error {
	switch op.Kind {
	case OpInsert:
		return h.Insert([]byte(op.Key), []byte(op.Val))
	case OpUpdate:
		_, err := h.Update([]byte(op.Key), []byte(op.Val))
		return err
	case OpDelete:
		_, err := h.Delete([]byte(op.Key))
		return err
	}
	return fmt.Errorf("crashtest: unknown op kind %d", op.Kind)
}

func applyModel(m map[string]string, op *Op) {
	switch op.Kind {
	case OpInsert, OpUpdate:
		if op.Kind == OpUpdate {
			if _, ok := m[op.Key]; !ok {
				return // update of absent key is a no-op
			}
		}
		m[op.Key] = op.Val
	case OpDelete:
		delete(m, op.Key)
	}
}

// RunTrial executes one crash-point trial of script under arm,
// injecting the power cut at crashStep (1-based; a step beyond the
// workload's total completes without firing).
func RunTrial(arm Arm, script Script, crashStep int64) (Trial, error) {
	tr := Trial{Step: crashStep}
	pool := poolFor(arm.Mode)
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		return tr, err
	}
	cfg := runCfg(arm)
	ix, err := core.Open(c, pool, al, cfg)
	if err != nil {
		return tr, err
	}
	h := ix.NewHandle(c)

	// acked is the model of acknowledged state; it trails the index by
	// exactly the in-flight operation.
	acked := make(map[string]string, len(script))
	inFlight := -1
	fp := &pmem.FaultPlan{CrashAtStep: crashStep}
	pool.ArmFault(fp)
	werr := pmem.CatchCrash(func() error {
		for i := range script {
			inFlight = i
			if err := applyOp(h, &script[i]); err != nil {
				return fmt.Errorf("op %d (%v %q): %w", i, script[i].Kind, script[i].Key, err)
			}
			applyModel(acked, &script[i])
			inFlight = -1
		}
		return nil
	})
	pool.DisarmFault()
	tr.Fired = fp.Fired()
	tr.Steps = fp.Steps()
	if werr != nil && !errors.Is(werr, pmem.ErrInjectedCrash) {
		return tr, werr // genuine workload failure, not a crash
	}
	if !tr.Fired {
		// Workload completed; the sweep is done. Sanity: the live index
		// must satisfy the oracle too.
		tr.LostAcked, tr.InFlightTorn = checkOracle(ix, c, script, acked, -1)
		tr.InvariantErr = ix.CheckInvariants(c)
		tr.Misplaced = ix.CheckPlacement(c)
		return tr, nil
	}

	// Power is restored: attach with a fresh context, rebuild, verify.
	c2 := pool.NewCtx()
	ix2, _, rerr := core.Recover(c2, pool, cfg)
	if rerr != nil {
		tr.RecoverErr = rerr
		return tr, nil
	}
	tr.InvariantErr = ix2.CheckInvariants(c2)
	tr.Misplaced = ix2.CheckPlacement(c2)
	tr.LostAcked, tr.InFlightTorn = checkOracle(ix2, c2, script, acked, inFlight)
	if n := ix2.Len(); n != len(acked) && (inFlight < 0 || !lenExplainedByInFlight(n, script, acked, inFlight)) {
		tr.LostAcked++
	}
	return tr, nil
}

// lenExplainedByInFlight reports whether the recovered entry count
// matches the post-state of the in-flight operation.
func lenExplainedByInFlight(n int, script Script, acked map[string]string, inFlight int) bool {
	post := make(map[string]string, len(acked)+1)
	for k, v := range acked {
		post[k] = v
	}
	applyModel(post, &script[inFlight])
	return n == len(post)
}

// checkOracle verifies the durability oracle over the script's key
// universe: every acknowledged key maps to its acknowledged value, keys
// acknowledged deleted (or never inserted) are absent, and the key of
// the in-flight operation may reflect either its pre- or post-state.
// Returns the number of acknowledged violations and whether the
// in-flight key was torn.
func checkOracle(ix *core.Index, c *pmem.Ctx, script Script, acked map[string]string, inFlight int) (lost int, torn bool) {
	h := ix.NewHandle(c)
	universe := make(map[string]struct{}, len(script))
	for i := range script {
		universe[script[i].Key] = struct{}{}
	}
	var inKey string
	var postVal string
	var postPresent bool
	if inFlight >= 0 {
		op := &script[inFlight]
		inKey = op.Key
		post := map[string]string{}
		if v, ok := acked[inKey]; ok {
			post[inKey] = v
		}
		applyModel(post, op)
		postVal, postPresent = post[inKey]
	}
	for k := range universe {
		got, found, err := h.Search([]byte(k), nil)
		if err != nil {
			lost++
			continue
		}
		wantVal, wantPresent := acked[k]
		matches := func(val string, present bool) bool {
			if !present {
				return !found
			}
			return found && bytes.Equal(got, []byte(val))
		}
		if inFlight >= 0 && k == inKey {
			if !matches(wantVal, wantPresent) && !matches(postVal, postPresent) {
				torn = true
			}
			continue
		}
		if !matches(wantVal, wantPresent) {
			lost++
		}
	}
	return lost, torn
}

// Sweep enumerates crash steps 1, 1+stride, 1+2*stride, … of script
// under arm until a trial completes without firing (every step of the
// workload with stride 1). It returns the aggregated result; trial
// infrastructure errors (not durability violations) abort the sweep.
func Sweep(arm Arm, script Script, stride int64) (Result, error) {
	if stride < 1 {
		stride = 1
	}
	res := Result{Arm: arm}
	for step := int64(1); ; step += stride {
		tr, err := RunTrial(arm, script, step)
		if err != nil {
			return res, fmt.Errorf("%s step %d: %w", arm.Name, step, err)
		}
		res.Trials++
		if tr.Failed() {
			res.Failures = append(res.Failures, tr)
		}
		if !tr.Fired {
			res.TotalSteps = tr.Steps
			return res, nil
		}
	}
}
