package crashtest

import (
	"testing"

	"spash/internal/pmem"
)

// TestScriptCompletes checks the workload runs clean end to end (no
// injected crash) and satisfies the oracle and invariants on every arm.
func TestScriptCompletes(t *testing.T) {
	for _, arm := range Arms() {
		tr, err := RunTrial(arm, DefaultScript(), 0)
		if err != nil {
			t.Fatalf("%s: %v", arm.Name, err)
		}
		if tr.Fired {
			t.Fatalf("%s: count-only plan fired", arm.Name)
		}
		if e := tr.Err(); e != nil {
			t.Fatalf("%s: clean run violates oracle: %v", arm.Name, e)
		}
		if tr.Steps < 100 {
			t.Fatalf("%s: workload too small (%d steps) to be a meaningful sweep", arm.Name, tr.Steps)
		}
		t.Logf("%s: %d steps", arm.Name, tr.Steps)
	}
}

// TestExhaustiveEADR is the acceptance sweep: under eADR, a power cut
// at every persistence-primitive step of the scripted workload —
// covering insert, adaptive update, delete, compacted-flush insertion,
// segment split, and staged directory doubling — must recover with
// clean invariants and the durability oracle intact, across the flush
// policies.
func TestExhaustiveEADR(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short")
	}
	script := DefaultScript()
	for _, arm := range Arms() {
		if arm.Mode != pmem.EADR {
			continue
		}
		res, err := Sweep(arm, script, 1)
		if err != nil {
			t.Fatalf("%s: %v", arm.Name, err)
		}
		t.Logf("%s: %d trials over %d steps, %d failures", arm.Name, res.Trials, res.TotalSteps, len(res.Failures))
		for i, tr := range res.Failures {
			if i >= 5 {
				t.Errorf("%s: … and %d more failures", arm.Name, len(res.Failures)-i)
				break
			}
			t.Errorf("%s: %v", arm.Name, tr.Err())
		}
	}
}

// TestADRGap asserts the unflushed-loss gap the paper predicts: under
// ADR the same sweep must hit crash steps where acknowledged
// operations are lost (or the damaged image fails recovery) — and must
// do so without ever panicking.
func TestADRGap(t *testing.T) {
	if testing.Short() {
		t.Skip("ADR sweep skipped in -short")
	}
	script := DefaultScript()
	var arm Arm
	for _, a := range Arms() {
		if a.Name == "adr-compacted-adaptive" {
			arm = a
		}
	}
	res, err := Sweep(arm, script, 1)
	if err != nil {
		t.Fatalf("%s: %v", arm.Name, err)
	}
	t.Logf("%s: %d trials over %d steps, %d lossy crash points", arm.Name, res.Trials, res.TotalSteps, len(res.Failures))
	if len(res.Failures) == 0 {
		t.Fatalf("%s: ADR sweep shows no durability gap; either the cache rollback or the oracle is broken", arm.Name)
	}
}

// TestSmoke is the short-budget CI job: a strided sweep of the default
// eADR arm, cheap enough for every push.
func TestSmoke(t *testing.T) {
	script := DefaultScript()
	arm := Arms()[0]
	res, err := Sweep(arm, script, 37)
	if err != nil {
		t.Fatalf("%v", err)
	}
	for _, tr := range res.Failures {
		t.Errorf("%v", tr.Err())
	}
	t.Logf("smoke: %d trials over %d steps", res.Trials, res.TotalSteps)
}
