// Failover drills: the replication protocol put under the same
// adversarial schedule as the single-node sweeps. A primary ships
// every acknowledged write to an in-process replica; the seeded power
// cut kills the primary mid-operation at every crash point of the
// sweep; the replica is promoted and the durability oracle runs
// against the survivor. The invariant is strict: the primary
// acknowledges a write only after the replica accepted it, and the
// injected crash always fires inside a local persistence primitive —
// before the ship — so the promoted replica must hold *exactly* the
// acknowledged map, with no in-flight ambiguity at all (stronger than
// the single-node oracle, which must tolerate pre/post states).
//
// The second drill family ({bitflip,torn,poison} × read-repair) is
// the media-fault torture of mediafault.go with a replica attached:
// after the damaged primary is recovered and fsck has quarantined the
// rot, replica-backed read-repair fetches the authoritative ranges
// from the peer — and under eADR the keys PR 3's repair path could
// only report as lost must all come back.
package crashtest

import (
	"bytes"
	"errors"
	"fmt"

	"spash"
	"spash/internal/core"
	"spash/internal/pmem"
	"spash/internal/repl"
)

// FailoverTrial is the outcome of one promote-at-crash-point trial.
type FailoverTrial struct {
	Step  int64
	Fired bool
	// Steps is the total step count observed on the primary's shard-0
	// device (meaningful when !Fired, sizing the sweep).
	Steps int64
	// PromoteErr is the promotion failure (must be nil: the replica is
	// caught up by construction when the primary dies).
	PromoteErr error
	// Epoch is the survivor's post-promotion epoch (the primary opened
	// at 1, so 2).
	Epoch uint64
	// LostAcked counts acknowledged writes missing or wrong on the
	// promoted replica; LenMismatch flags a survivor whose live count
	// disagrees with the acknowledged model.
	LostAcked   int
	LenMismatch bool
	// InvariantErr / Misplaced are the structural checks on the
	// survivor.
	InvariantErr error
	Misplaced    int
	// FencedDeposed reports that a frame shipped by the deposed
	// primary after promotion was rejected with ErrNotPrimary (the
	// split-brain fence working; checked on every fired trial).
	FencedDeposed bool
}

// Failed reports whether the trial violated the failover contract.
func (tr *FailoverTrial) Failed() bool {
	if !tr.Fired {
		// The workload completed: the trial still validates that the
		// replica converged on the full acknowledged state.
		return tr.LostAcked > 0 || tr.LenMismatch || tr.InvariantErr != nil || tr.Misplaced > 0
	}
	return tr.PromoteErr != nil || tr.LostAcked > 0 || tr.LenMismatch ||
		tr.InvariantErr != nil || tr.Misplaced > 0 || !tr.FencedDeposed
}

// Err formats the trial's violation, or nil.
func (tr *FailoverTrial) Err() error {
	switch {
	case tr.PromoteErr != nil:
		return fmt.Errorf("step %d: promotion failed: %w", tr.Step, tr.PromoteErr)
	case tr.LostAcked > 0:
		return fmt.Errorf("step %d: %d acknowledged writes lost after promotion", tr.Step, tr.LostAcked)
	case tr.LenMismatch:
		return fmt.Errorf("step %d: survivor length disagrees with acknowledged model", tr.Step)
	case tr.InvariantErr != nil:
		return fmt.Errorf("step %d: survivor invariants: %w", tr.Step, tr.InvariantErr)
	case tr.Misplaced > 0:
		return fmt.Errorf("step %d: %d misplaced records on survivor", tr.Step, tr.Misplaced)
	case tr.Fired && !tr.FencedDeposed:
		return fmt.Errorf("step %d: deposed primary's frame was not fenced", tr.Step)
	}
	return nil
}

// applyPrimaryOp drives one script op through the shipping primary.
func applyPrimaryOp(p *repl.Primary, op *Op) error {
	switch op.Kind {
	case OpInsert:
		return p.Insert([]byte(op.Key), []byte(op.Val))
	case OpUpdate:
		_, err := p.Update([]byte(op.Key), []byte(op.Val))
		return err
	case OpDelete:
		_, err := p.Delete([]byte(op.Key))
		return err
	}
	return fmt.Errorf("crashtest: unknown op kind %d", op.Kind)
}

// RunFailoverTrial executes one crash-point trial: an n-shard primary
// replicating to an n-shard replica, the power cut injected at
// crashStep (1-based, counted on the primary's shard-0 device), then
// promotion and the oracle against the survivor.
func RunFailoverTrial(n int, script Script, crashStep int64) (FailoverTrial, error) {
	tr := FailoverTrial{Step: crashStep}
	opts := shardedOpts(n)

	pdb, err := spash.Open(opts)
	if err != nil {
		return tr, err
	}
	ropts := opts
	ropts.Replica = true
	rdb, err := spash.Open(ropts)
	if err != nil {
		return tr, err
	}
	rep, err := repl.NewReplica(rdb)
	if err != nil {
		return tr, err
	}
	prim, err := repl.NewPrimary(pdb, &repl.InProc{R: rep})
	if err != nil {
		return tr, err
	}

	// acked is maintained only after an op fully returns — local apply
	// AND ship — i.e. exactly the writes a client saw acknowledged.
	acked := make(map[string]string, len(script))
	target := pdb.Platforms()[0]
	fp := &pmem.FaultPlan{CrashAtStep: crashStep}
	target.ArmFault(fp)
	werr := pmem.CatchCrash(func() error {
		for i := range script {
			if err := applyPrimaryOp(prim, &script[i]); err != nil {
				return fmt.Errorf("op %d (%v %q): %w", i, script[i].Kind, script[i].Key, err)
			}
			applyModel(acked, &script[i])
		}
		return nil
	})
	target.DisarmFault()
	tr.Fired = fp.Fired()
	tr.Steps = fp.Steps()
	if werr != nil && !errors.Is(werr, pmem.ErrInjectedCrash) {
		return tr, werr
	}

	if tr.Fired {
		// The primary is dead. Promote the survivor; nothing on the
		// replica's devices was ever touched by the fault plan.
		epoch, perr := rep.Promote()
		if perr != nil {
			tr.PromoteErr = perr
			return tr, nil
		}
		tr.Epoch = epoch
		// The deposed primary limps back and ships one more frame (built
		// by hand — its own pool is dead — carrying its stale epoch 1):
		// the promoted node must reject it with ErrNotPrimary.
		ferr := (&repl.InProc{R: rep}).Ship(&repl.Frame{
			Kind: repl.FrameRecord, Epoch: 1, Seq: uint64(fp.Steps()),
			Shard: 0, Op: repl.RecInsert,
			Key: []byte("deposed"), Val: []byte("write"),
		})
		tr.FencedDeposed = errors.Is(ferr, spash.ErrNotPrimary)
	}

	s := rdb.Session()
	defer s.Close()
	// No in-flight tolerance (inFlight = -1): the cut fired inside a
	// local primitive on the primary, strictly before the ship, so the
	// survivor holds exactly the acknowledged map.
	tr.LostAcked, _ = checkSessionOracle(s, script, acked, -1)
	tr.LenMismatch = rdb.Len() != len(acked)
	tr.InvariantErr = checkShardInvariants(rdb, s)
	tr.Misplaced = countMisplaced(rdb, s)
	return tr, nil
}

// FailoverResult aggregates a failover sweep.
type FailoverResult struct {
	Shards     int
	TotalSteps int64
	Trials     int
	Failures   []FailoverTrial
}

// FailoverSweep enumerates crash steps 1, 1+stride, … killing the
// primary at each, until a trial completes without firing (which
// still validates replica convergence).
func FailoverSweep(n int, script Script, stride int64) (FailoverResult, error) {
	if stride < 1 {
		stride = 1
	}
	res := FailoverResult{Shards: n}
	for step := int64(1); ; step += stride {
		tr, err := RunFailoverTrial(n, script, step)
		if err != nil {
			return res, fmt.Errorf("failover %dsh step %d: %w", n, step, err)
		}
		res.Trials++
		if tr.Failed() {
			res.Failures = append(res.Failures, tr)
		}
		if !tr.Fired {
			res.TotalSteps = tr.Steps
			return res, nil
		}
	}
}

// ReadRepairTrialResult is the outcome of one media-damage +
// replica-backed read-repair trial.
type ReadRepairTrialResult struct {
	Arm  MediaArm
	Seed uint64
	// Injected counts the faults actually applied at the crash.
	Injected pmem.Stats
	// RecoverErr is the typed recovery failure on the damaged primary
	// (tolerated under ADR, a violation under eADR — same contract as
	// the media trials).
	RecoverErr error
	// FsckExit / Unrecoverable / LostListed describe the local repair
	// pass: exit code, segments repair gave up on, and keys the repair
	// report listed as lost (what PR 3 could do alone).
	FsckExit      int
	Unrecoverable int
	LostListed    int
	// RangesFetched / KeysRestored describe the read-repair pass over
	// the transport.
	RangesFetched int
	KeysRestored  int
	// SilentWrong counts Gets returning a value the key never held —
	// unforgivable in every arm. StillLost counts acknowledged keys
	// absent after read-repair: under eADR it must be zero (every
	// quarantine loss is restorable from the peer); under ADR the
	// crash itself legally rolled back unflushed acknowledged writes.
	SilentWrong int
	StillLost   int
	// Structural checks on the repaired primary.
	InvariantErr error
	Misplaced    int
}

// Failed reports whether the trial violated the read-repair contract.
func (tr *ReadRepairTrialResult) Failed() bool {
	if tr.RecoverErr != nil {
		return tr.Arm.Mode == pmem.EADR
	}
	return tr.SilentWrong > 0 || tr.Unrecoverable > 0 || tr.InvariantErr != nil ||
		tr.Misplaced > 0 || (tr.Arm.Mode == pmem.EADR && tr.StillLost > 0)
}

// Err formats the trial's violation, or nil.
func (tr *ReadRepairTrialResult) Err() error {
	switch {
	case tr.RecoverErr != nil && tr.Arm.Mode == pmem.EADR:
		return fmt.Errorf("seed %d: recovery failed: %w", tr.Seed, tr.RecoverErr)
	case tr.SilentWrong > 0:
		return fmt.Errorf("seed %d: %d silently wrong values", tr.Seed, tr.SilentWrong)
	case tr.Unrecoverable > 0:
		return fmt.Errorf("seed %d: %d segments unrecoverable (exit %d)", tr.Seed, tr.Unrecoverable, tr.FsckExit)
	case tr.InvariantErr != nil:
		return fmt.Errorf("seed %d: invariants after read-repair: %w", tr.Seed, tr.InvariantErr)
	case tr.Misplaced > 0:
		return fmt.Errorf("seed %d: %d misplaced records after read-repair", tr.Seed, tr.Misplaced)
	case tr.Arm.Mode == pmem.EADR && tr.StillLost > 0:
		return fmt.Errorf("seed %d: %d acknowledged keys still lost after replica read-repair", tr.Seed, tr.StillLost)
	}
	return nil
}

// readRepairShards is the shard count of the read-repair matrix: two
// shards keep the per-shard report stamping honest without inflating
// trial cost.
const readRepairShards = 2

// readRepairOpts is the trial configuration: checksums on (the oracle
// tests detection) under the arm's persistence mode.
func readRepairOpts(mode pmem.Mode) spash.Options {
	return spash.Options{
		Shards: readRepairShards,
		Platform: pmem.Config{
			PoolSize:  readRepairShards * (4 << 20),
			CacheSize: 64 << 10,
			Mode:      mode,
		},
		Index: core.Config{InitialDepth: 1, Concurrency: core.ModeHTM, Checksums: true},
	}
}

// RunReadRepairTrial runs one cell of the {bitflip,torn,poison} ×
// read-repair matrix: seed a replica with a sealed-segment full sync
// partway through the script, ship the rest as records, crash the
// primary with the arm's media plan armed on shard 0, recover, fsck
// -repair locally, then heal the quarantine losses from the replica
// over the transport and hold the oracle.
func RunReadRepairTrial(arm MediaArm, script Script, seed uint64) (ReadRepairTrialResult, error) {
	tr := ReadRepairTrialResult{Arm: arm, Seed: seed}
	opts := readRepairOpts(arm.Mode)

	pdb, err := spash.Open(opts)
	if err != nil {
		return tr, err
	}
	ropts := opts
	ropts.Replica = true
	// The replica models a healthy peer in its own fault domain: it
	// takes no crash in this trial, so its contents are exactly the
	// acknowledged stream regardless of mode.
	rdb, err := spash.Open(ropts)
	if err != nil {
		return tr, err
	}
	rep, err := repl.NewReplica(rdb)
	if err != nil {
		return tr, err
	}
	prim, err := repl.NewPrimary(pdb, &repl.InProc{R: rep})
	if err != nil {
		return tr, err
	}

	acked := make(map[string]string, len(script))
	history := make(map[string][]string, len(script))
	track := func(op *Op) {
		applyModel(acked, op)
		if v, ok := acked[op.Key]; ok {
			history[op.Key] = append(history[op.Key], v)
		}
	}

	// Phase A: the first quarter of the script runs unshipped, then a
	// sealed-segment full sync seeds the replica — the bulk-shipping
	// path. Phase B ships record by record.
	cut := len(script) / 4
	s := prim.Session()
	for i := 0; i < cut; i++ {
		if err := applySessionOp(s, &script[i]); err != nil {
			return tr, fmt.Errorf("op %d: %w", i, err)
		}
		track(&script[i])
	}
	if _, err := prim.FullSync(); err != nil {
		return tr, fmt.Errorf("full sync: %w", err)
	}
	for i := cut; i < len(script); i++ {
		if err := applyPrimaryOp(prim, &script[i]); err != nil {
			return tr, fmt.Errorf("op %d: %w", i, err)
		}
		track(&script[i])
	}

	// Crash the primary with the media plan armed on shard 0. The torn
	// arm must not scan frames first (the scan's cache traffic would
	// write back the dirty lines the tear consumes).
	var frames []uint64
	if arm.Fault != FaultTorn {
		frames = pdb.Indexes()[0].SegmentAddrs(s.ShardCtx(0))
	}
	mp := mediaPlan(arm, seed, frames)
	platforms := pdb.Platforms()
	platforms[0].ArmMediaFault(mp)
	pdb.Crash()
	platforms[0].DisarmMediaFault()
	tr.Injected = mp.Injected()

	pdb2, rerr := spash.RecoverAll(platforms, opts)
	if rerr != nil {
		tr.RecoverErr = rerr
		return tr, nil
	}
	s2 := pdb2.Session()
	defer s2.Close()

	universe := make(map[string]struct{}, len(script))
	for i := range script {
		universe[script[i].Key] = struct{}{}
	}
	okValue := func(key string, got []byte) bool {
		if arm.Mode == pmem.EADR {
			want, present := acked[key]
			return present && bytes.Equal(got, []byte(want))
		}
		for _, v := range history[key] {
			if bytes.Equal(got, []byte(v)) {
				return true
			}
		}
		return false
	}

	// Local repair (what PR 3 could do alone), then replica-backed
	// read-repair over the transport.
	frep, ferr := s2.Fsck(true)
	if ferr != nil {
		return tr, fmt.Errorf("seed %d: fsck: %w", seed, ferr)
	}
	tr.FsckExit = frep.ExitCode()
	tr.Unrecoverable = len(frep.Failed)
	tr.LostListed = len(frep.LostKeys())

	prim2, err := repl.NewPrimary(pdb2, &repl.InProc{R: rep})
	if err != nil {
		return tr, err
	}
	defer prim2.Close()
	rr, err := prim2.ReadRepair(frep)
	if err != nil {
		return tr, fmt.Errorf("seed %d: read-repair: %w", seed, err)
	}
	tr.RangesFetched = rr.Ranges
	tr.KeysRestored = rr.Restored

	tr.InvariantErr = checkShardInvariants(pdb2, s2)
	tr.Misplaced = countMisplaced(pdb2, s2)

	for k := range universe {
		got, found, serr := s2.Get([]byte(k), nil)
		switch {
		case serr != nil:
			// Post-repair reads must be clean; surface as still-lost
			// (eADR fails the trial) rather than a separate counter.
			tr.StillLost++
		case found:
			if !okValue(k, got) {
				tr.SilentWrong++
			}
		default:
			if _, present := acked[k]; present {
				tr.StillLost++
			}
		}
	}
	return tr, nil
}

// ReadRepairResult aggregates one arm of the read-repair matrix.
type ReadRepairResult struct {
	Arm           MediaArm
	Trials        int
	Injected      pmem.Stats
	LostListed    int
	RangesFetched int
	KeysRestored  int
	Failures      []ReadRepairTrialResult
}

// ReadRepairSweep runs one read-repair trial per seed under arm.
func ReadRepairSweep(arm MediaArm, script Script, seeds []uint64) (ReadRepairResult, error) {
	res := ReadRepairResult{Arm: arm}
	for _, seed := range seeds {
		tr, err := RunReadRepairTrial(arm, script, seed)
		if err != nil {
			return res, fmt.Errorf("%s seed %d: %w", arm.Name, seed, err)
		}
		res.Trials++
		res.Injected = res.Injected.Add(tr.Injected)
		res.LostListed += tr.LostListed
		res.RangesFetched += tr.RangesFetched
		res.KeysRestored += tr.KeysRestored
		if tr.Failed() {
			res.Failures = append(res.Failures, tr)
		}
	}
	return res, nil
}
