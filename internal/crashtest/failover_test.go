package crashtest

import (
	"testing"

	"spash/internal/pmem"
)

// TestFailoverScriptCompletes: the replicated workload runs clean end
// to end (count-only plan), and the replica converges on exactly the
// acknowledged state — the replication-correctness baseline the crash
// trials build on.
func TestFailoverScriptCompletes(t *testing.T) {
	tr, err := RunFailoverTrial(2, SeededScript(7, 160), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fired {
		t.Fatal("count-only plan fired")
	}
	if e := tr.Err(); e != nil {
		t.Fatalf("clean replicated run violates oracle: %v", e)
	}
	if tr.Steps < 50 {
		t.Fatalf("shard 0 saw only %d steps; workload too small for a meaningful sweep", tr.Steps)
	}
	t.Logf("replicated 2 shards: %d shard-0 steps", tr.Steps)
}

// TestFailoverSweep is the tentpole drill: kill the primary at every
// strided persistence step, promote the replica, and hold the *strict*
// durability oracle (no in-flight tolerance — the primary acknowledges
// only after the replica accepted, and the cut always lands before the
// ship) against the survivor. The split-brain fence is checked on
// every fired trial.
func TestFailoverSweep(t *testing.T) {
	stride := int64(5)
	if testing.Short() {
		stride = 47
	}
	res, err := FailoverSweep(2, SeededScript(7, 160), stride)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Failures {
		if i >= 5 {
			t.Errorf("… and %d more failures", len(res.Failures)-i)
			break
		}
		t.Errorf("%v", tr.Err())
	}
	t.Logf("failover 2sh: %d trials over %d shard-0 steps, %d failures",
		res.Trials, res.TotalSteps, len(res.Failures))
}

// TestFailoverPromotionEpoch spot-checks one fired trial's promotion
// details: the survivor must land on epoch 2 and fence the deposed
// primary's stale frame.
func TestFailoverPromotionEpoch(t *testing.T) {
	tr, err := RunFailoverTrial(2, SeededScript(7, 160), 25)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Fired {
		t.Fatal("crash at step 25 did not fire")
	}
	if e := tr.Err(); e != nil {
		t.Fatal(e)
	}
	if tr.Epoch != 2 {
		t.Fatalf("survivor epoch = %d, want 2", tr.Epoch)
	}
	if !tr.FencedDeposed {
		t.Fatal("deposed primary's stale frame was not fenced")
	}
}

// TestReadRepairMatrix runs the {bitflip,torn,poison} × read-repair
// matrix in both persistence modes. The contract extends the media
// sweeps: silent wrong values are never tolerated, and under eADR a
// healthy replica must bring back every key the local repair pass
// could only report lost — StillLost must hit zero.
func TestReadRepairMatrix(t *testing.T) {
	script := DefaultScript()
	seeds := mediaSeeds(3)
	if testing.Short() {
		seeds = mediaSeeds(1)
	}
	lostListed := 0
	for _, arm := range MediaArms() {
		res, err := ReadRepairSweep(arm, script, seeds)
		if err != nil {
			t.Fatalf("%s: %v", arm.Name, err)
		}
		lostListed += res.LostListed
		t.Logf("%s: %d trials, injected {flips %d torn %d poison %d}, %d keys listed lost locally, %d ranges fetched, %d keys restored, %d failures",
			arm.Name, res.Trials, res.Injected.MediaBitFlips, res.Injected.MediaTornLines,
			res.Injected.MediaPoisonedLines, res.LostListed, res.RangesFetched, res.KeysRestored, len(res.Failures))
		for i, tr := range res.Failures {
			if i >= 3 {
				t.Errorf("%s: … and %d more failures", arm.Name, len(res.Failures)-i)
				break
			}
			t.Errorf("%s: %v", arm.Name, tr.Err())
		}
	}
	// The matrix must not be vacuous: across all arms and seeds the
	// local repair pass has to have reported real losses for the
	// replica to heal.
	if lostListed == 0 {
		t.Error("no trial listed any locally-lost keys; the read-repair matrix exercised nothing")
	}
}

// TestReadRepairHealsPoisonLosses pins the headline scenario: an eADR
// poisoned-segment trial where keys the local repair path lost come
// back via replica read-repair. Poison destroys the key bytes
// themselves, so the fsck report excuses these losses by quarantine
// *coverage* rather than by name (LostKeys stays empty) — the proof
// the keys were truly lost locally is that read-repair found them
// missing (it restores only absent keys) and StillLost hits zero only
// because the replica supplied them.
func TestReadRepairHealsPoisonLosses(t *testing.T) {
	script := DefaultScript()
	arm := MediaArm{Name: "eadr-poison", Mode: pmem.EADR, Fault: FaultPoison}
	for _, seed := range mediaSeeds(5) {
		tr, err := RunReadRepairTrial(arm, script, seed)
		if err != nil {
			t.Fatal(err)
		}
		if e := tr.Err(); e != nil {
			t.Fatal(e)
		}
		if tr.RangesFetched == 0 || tr.KeysRestored == 0 {
			continue // poison landed on no live keys for this seed
		}
		if tr.StillLost != 0 {
			t.Fatalf("seed %d: %d keys still lost after read-repair", seed, tr.StillLost)
		}
		t.Logf("seed %d: quarantine lost %d live keys (unnamed, excused by coverage); all restored from replica over %d ranges",
			seed, tr.KeysRestored, tr.RangesFetched)
		return
	}
	t.Fatal("no seed produced a quarantine with restorable losses")
}

// TestReadRepairRestoresNamedLosses is the by-name variant: bitflips
// leave key bytes readable, so the quarantine lists the lost keys in
// the report (LostKeys) and every listed key must come back.
func TestReadRepairRestoresNamedLosses(t *testing.T) {
	script := DefaultScript()
	arm := MediaArm{Name: "eadr-bitflip", Mode: pmem.EADR, Fault: FaultBitFlip}
	for _, seed := range mediaSeeds(5) {
		tr, err := RunReadRepairTrial(arm, script, seed)
		if err != nil {
			t.Fatal(err)
		}
		if e := tr.Err(); e != nil {
			t.Fatal(e)
		}
		if tr.LostListed == 0 {
			continue
		}
		if tr.KeysRestored < tr.LostListed {
			t.Fatalf("seed %d: %d keys listed lost but only %d restored", seed, tr.LostListed, tr.KeysRestored)
		}
		if tr.StillLost != 0 {
			t.Fatalf("seed %d: %d keys still lost after read-repair", seed, tr.StillLost)
		}
		t.Logf("seed %d: %d listed-lost keys restored from replica", seed, tr.LostListed)
		return
	}
	t.Fatal("no seed produced listed losses")
}
