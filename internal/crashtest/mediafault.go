// Media-fault torture: where crashtest.go enumerates crash *points*
// under perfect media, this file sweeps seeded media *damage* injected
// at a crash — single-bit rot, torn ADR write-backs, poisoned XPLines —
// and checks the corruption-tolerance contract end to end: workload,
// crash + injection, recovery, read-path detection, fsck repair.
//
// The oracle is deliberately narrow. After recovery every Get over the
// script's key universe must return the committed value, a typed
// core.CorruptionError (or poisoned pmem.AccessError), or not-found
// for a key the repair report either lists as lost or whose hash falls
// in a quarantined range. A silently wrong value — and, under eADR, an
// acknowledged key that vanishes without being excused by the repair
// report — is the only failure. Under ADR the crash itself legally
// rolls back unflushed acknowledged writes, so absence is always
// acceptable there and a found value may be any value the key ever
// held; what stays forbidden is a value the key never had.
package crashtest

import (
	"bytes"
	"errors"
	"fmt"

	"spash/internal/alloc"
	"spash/internal/core"
	"spash/internal/pmem"
)

// FaultKind selects which media failure a sweep injects.
type FaultKind int

const (
	FaultBitFlip FaultKind = iota
	FaultTorn
	FaultPoison
)

func (k FaultKind) String() string {
	switch k {
	case FaultBitFlip:
		return "bitflip"
	case FaultTorn:
		return "torn"
	case FaultPoison:
		return "poison"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// ParseFaultKind maps the CI matrix spelling to a FaultKind.
func ParseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "bitflip":
		return FaultBitFlip, nil
	case "torn":
		return FaultTorn, nil
	case "poison":
		return FaultPoison, nil
	}
	return 0, fmt.Errorf("crashtest: unknown fault kind %q (want bitflip|torn|poison)", s)
}

// MediaArm is one cell of the media-fault matrix: a persistence domain
// crossed with a fault kind. Checksums are always on — the oracle
// tests detection, and without seals bit rot is undetectable by
// construction.
type MediaArm struct {
	Name  string
	Mode  pmem.Mode
	Fault FaultKind
}

// MediaArms returns the full {eADR, ADR} × {bitflip, torn, poison}
// matrix. The eADR torn arm is the paper's persistence claim made
// executable: reserve energy completes every write-back, so the torn
// budget must inject nothing and the trial must come back clean.
func MediaArms() []MediaArm {
	var arms []MediaArm
	for _, m := range []struct {
		name string
		mode pmem.Mode
	}{{"eadr", pmem.EADR}, {"adr", pmem.ADR}} {
		for _, f := range []FaultKind{FaultBitFlip, FaultTorn, FaultPoison} {
			arms = append(arms, MediaArm{
				Name:  m.name + "-" + f.String(),
				Mode:  m.mode,
				Fault: f,
			})
		}
	}
	return arms
}

// MediaTrialResult is the outcome of one seeded media-fault trial.
type MediaTrialResult struct {
	Arm      MediaArm
	Seed     uint64
	Injected pmem.Stats // per-kind counts actually applied at the crash

	// RecoverErr is the typed error from core.Recover on the damaged
	// image. Under eADR it is a contract violation: bit flips and
	// poison are confined to segment frames, so the registry survives
	// and recovery must succeed. Under ADR a torn or rolled-back
	// metadata line can leave the registry itself inconsistent — the
	// documented ADR gap — so a *typed* failure ends the trial
	// tolerated (a panic would still abort the sweep).
	RecoverErr error
	// SilentWrong counts Gets (pre- or post-repair) returning a value
	// the key never legitimately held — the one unforgivable failure.
	SilentWrong int
	// CorruptReads counts pre-repair Gets that surfaced typed
	// corruption (the detection working as designed).
	CorruptReads int
	// FsckExit is the spash-fsck exit code (0 clean, 1 repaired,
	// 2 unrecoverable) and Unrecoverable the segments repair gave up on.
	FsckExit      int
	Unrecoverable int
	// Post-repair: structural invariants, silent misplacement, typed
	// errors that survived repair, and acknowledged keys missing
	// without an excuse from the repair report (eADR only).
	InvariantErr  error
	Misplaced     int
	PostCorrupt   int
	LostExcused   int
	LostUnexcused int
}

// Failed reports whether the trial violated the tolerance contract.
func (tr *MediaTrialResult) Failed() bool {
	if tr.RecoverErr != nil {
		return tr.Arm.Mode == pmem.EADR
	}
	return tr.SilentWrong > 0 || tr.InvariantErr != nil ||
		tr.Misplaced > 0 || tr.PostCorrupt > 0 || tr.LostUnexcused > 0 ||
		tr.Unrecoverable > 0
}

// Err formats the trial's violation, or nil.
func (tr *MediaTrialResult) Err() error {
	switch {
	case tr.RecoverErr != nil && tr.Arm.Mode == pmem.EADR:
		return fmt.Errorf("seed %d: recovery failed: %w", tr.Seed, tr.RecoverErr)
	case tr.SilentWrong > 0:
		return fmt.Errorf("seed %d: %d silently wrong values", tr.Seed, tr.SilentWrong)
	case tr.Unrecoverable > 0:
		return fmt.Errorf("seed %d: fsck left %d segments unrecoverable (exit %d)", tr.Seed, tr.Unrecoverable, tr.FsckExit)
	case tr.InvariantErr != nil:
		return fmt.Errorf("seed %d: invariants after repair: %w", tr.Seed, tr.InvariantErr)
	case tr.Misplaced > 0:
		return fmt.Errorf("seed %d: %d silently misplaced records after repair", tr.Seed, tr.Misplaced)
	case tr.PostCorrupt > 0:
		return fmt.Errorf("seed %d: %d reads still corrupt after repair", tr.Seed, tr.PostCorrupt)
	case tr.LostUnexcused > 0:
		return fmt.Errorf("seed %d: %d acknowledged keys lost without excuse in the repair report", tr.Seed, tr.LostUnexcused)
	}
	return nil
}

// mediaCfg is the index configuration for media trials: HTM mode with
// checksum seals on.
func mediaCfg() core.Config {
	return core.Config{
		InitialDepth: 1,
		Concurrency:  core.ModeHTM,
		Checksums:    true,
	}
}

// mediaPlan builds the fault plan for one arm and seed, targeted at
// the index's live segment frames (ISSUE: the *segment layout* is
// self-verifying; registry and directory hardening is future work).
// Budgets are deliberately multi-fault so one trial exercises several
// quarantines.
func mediaPlan(arm MediaArm, seed uint64, frames []uint64) *pmem.MediaFaultPlan {
	mp := &pmem.MediaFaultPlan{Seed: seed, Frames: frames}
	switch arm.Fault {
	case FaultBitFlip:
		mp.BitFlips = 4
	case FaultTorn:
		// Torn write-backs hit whatever cachelines are dirty at the
		// cut, not chosen frames; the budget is an upper bound and
		// honestly injects zero under eADR.
		mp.TornLines = 6
	case FaultPoison:
		mp.PoisonLines = 2
	}
	return mp
}

// RunMediaTrial runs script to completion, crashes the pool with the
// arm's media-fault plan armed, recovers, sweeps the key universe
// against the tolerance oracle, repairs with Fsck, and re-sweeps.
// The returned error is infrastructure failure only; contract
// violations land in the result.
func RunMediaTrial(arm MediaArm, script Script, seed uint64) (MediaTrialResult, error) {
	tr := MediaTrialResult{Arm: arm, Seed: seed}
	pool := poolFor(arm.Mode)
	c := pool.NewCtx()
	al, err := alloc.New(c, pool)
	if err != nil {
		return tr, err
	}
	cfg := mediaCfg()
	ix, err := core.Open(c, pool, al, cfg)
	if err != nil {
		return tr, err
	}
	h := ix.NewHandle(c)

	// acked is the last acknowledged value per key; history every value
	// a key ever held (ADR rollback can resurface any of them).
	acked := make(map[string]string, len(script))
	history := make(map[string][]string, len(script))
	for i := range script {
		op := &script[i]
		if err := applyOp(h, op); err != nil {
			return tr, fmt.Errorf("op %d (%v %q): %w", i, op.Kind, op.Key, err)
		}
		applyModel(acked, op)
		if v, ok := acked[op.Key]; ok {
			history[op.Key] = append(history[op.Key], v)
		}
	}

	// Crash with the media plan armed: damage is injected into the
	// post-crash image, which is when real bit rot becomes visible.
	// The torn arm must NOT scan the registry for frames first: torn
	// injection consumes the dirty lines still in the cache at the
	// cut, and a registry scan through the (small) cache would evict —
	// and thereby write back — every one of them, leaving nothing to
	// tear.
	var frames []uint64
	if arm.Fault != FaultTorn {
		frames = ix.SegmentAddrs(c)
	}
	mp := mediaPlan(arm, seed, frames)
	pool.ArmMediaFault(mp)
	pool.Crash()
	pool.DisarmMediaFault()
	tr.Injected = mp.Injected()

	c2 := pool.NewCtx()
	ix2, _, rerr := core.Recover(c2, pool, cfg)
	if rerr != nil {
		tr.RecoverErr = rerr
		return tr, nil
	}
	h2 := ix2.NewHandle(c2)

	universe := make(map[string]struct{}, len(script))
	for i := range script {
		universe[script[i].Key] = struct{}{}
	}
	okValue := func(key string, got []byte) bool {
		if arm.Mode == pmem.EADR {
			want, present := acked[key]
			return present && bytes.Equal(got, []byte(want))
		}
		for _, v := range history[key] {
			if bytes.Equal(got, []byte(v)) {
				return true
			}
		}
		return false
	}

	// Pre-repair sweep: detection. Typed corruption is the contract
	// working; a wrong value is the contract broken. Absence is judged
	// after repair, when the report can excuse it.
	for k := range universe {
		got, found, serr := h2.Search([]byte(k), nil)
		switch {
		case serr != nil:
			if !errors.Is(serr, core.ErrCorrupted) && !errors.Is(serr, pmem.ErrPoisoned) {
				return tr, fmt.Errorf("seed %d: untyped Search error: %w", seed, serr)
			}
			tr.CorruptReads++
		case found && !okValue(k, got):
			tr.SilentWrong++
		}
	}

	rep, ferr := h2.Fsck(true)
	if ferr != nil {
		return tr, fmt.Errorf("seed %d: fsck: %w", seed, ferr)
	}
	tr.FsckExit = rep.ExitCode()
	tr.Unrecoverable = len(rep.Failed)

	tr.InvariantErr = ix2.CheckInvariants(c2)
	tr.Misplaced = ix2.CheckPlacement(c2)

	excused := func(key string) bool {
		for _, lk := range rep.LostKeys() {
			if bytes.Equal(lk, []byte(key)) {
				return true
			}
		}
		// Undecodable dropped entries cannot be listed by key; any key
		// hashing into a quarantined range is excusable.
		hh := core.KeyHash([]byte(key))
		for i := range rep.Repairs {
			if rep.Repairs[i].Covers(hh) {
				return true
			}
		}
		return false
	}

	// Post-repair sweep: the pool must be fully readable again, with
	// every loss accounted for.
	for k := range universe {
		got, found, serr := h2.Search([]byte(k), nil)
		switch {
		case serr != nil:
			tr.PostCorrupt++
		case found:
			if !okValue(k, got) {
				tr.SilentWrong++
			}
		default:
			if _, present := acked[k]; !present {
				continue // acknowledged deleted (or never inserted)
			}
			if arm.Mode != pmem.EADR || excused(k) {
				tr.LostExcused++
			} else {
				tr.LostUnexcused++
			}
		}
	}
	return tr, nil
}

// MediaResult aggregates a seeded sweep of one arm.
type MediaResult struct {
	Arm          MediaArm
	Trials       int
	Injected     pmem.Stats
	CorruptReads int
	Repaired     int // trials where fsck performed repairs (exit 1)
	LostExcused  int
	Failures     []MediaTrialResult
}

// MediaSweep runs one trial per seed under arm. Infrastructure errors
// abort the sweep; contract violations accumulate in Failures.
func MediaSweep(arm MediaArm, script Script, seeds []uint64) (MediaResult, error) {
	res := MediaResult{Arm: arm}
	for _, seed := range seeds {
		tr, err := RunMediaTrial(arm, script, seed)
		if err != nil {
			return res, fmt.Errorf("%s seed %d: %w", arm.Name, seed, err)
		}
		res.Trials++
		res.Injected = res.Injected.Add(tr.Injected)
		res.CorruptReads += tr.CorruptReads
		res.LostExcused += tr.LostExcused
		if tr.FsckExit == 1 {
			res.Repaired++
		}
		if tr.Failed() {
			res.Failures = append(res.Failures, tr)
		}
	}
	return res, nil
}
