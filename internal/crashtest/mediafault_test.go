package crashtest

import (
	"testing"

	"spash/internal/pmem"
)

// mediaSeeds are the tier-1 seed set; the CI torture job runs more.
func mediaSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	return seeds
}

// TestMediaSweepAllArms is the acceptance sweep: over the full
// {eADR, ADR} × {bitflip, torn, poison} matrix with seeded injection,
// no Get may ever return a silently wrong value, fsck -repair must
// bring the pool back to CheckInvariants-clean, and every lost key
// must be excused by the repair report.
func TestMediaSweepAllArms(t *testing.T) {
	script := DefaultScript()
	seeds := mediaSeeds(4)
	if testing.Short() {
		seeds = mediaSeeds(1)
	}
	for _, arm := range MediaArms() {
		res, err := MediaSweep(arm, script, seeds)
		if err != nil {
			t.Fatalf("%s: %v", arm.Name, err)
		}
		t.Logf("%s: %d trials, injected {flips %d torn %d poison %d}, %d corrupt reads, %d repaired, %d lost-excused, %d failures",
			arm.Name, res.Trials, res.Injected.MediaBitFlips, res.Injected.MediaTornLines,
			res.Injected.MediaPoisonedLines, res.CorruptReads, res.Repaired, res.LostExcused, len(res.Failures))
		for i, tr := range res.Failures {
			if i >= 3 {
				t.Errorf("%s: … and %d more failures", arm.Name, len(res.Failures)-i)
				break
			}
			t.Errorf("%s: %v", arm.Name, tr.Err())
		}
	}
}

// TestMediaInjectionActuallyDamages guards the sweep against becoming
// vacuous: the damaging arms must inject their budget and the read
// path must actually observe typed corruption across the seed set.
func TestMediaInjectionActuallyDamages(t *testing.T) {
	script := DefaultScript()
	seeds := mediaSeeds(3)
	for _, arm := range MediaArms() {
		if arm.Fault == FaultTorn {
			continue // budget only tears what is dirty; checked below
		}
		res, err := MediaSweep(arm, script, seeds)
		if err != nil {
			t.Fatalf("%s: %v", arm.Name, err)
		}
		if res.Injected.MediaBitFlips == 0 && res.Injected.MediaPoisonedLines == 0 {
			t.Errorf("%s: sweep injected nothing", arm.Name)
		}
		if res.Repaired == 0 {
			t.Errorf("%s: no trial ever needed repair — detection is not being exercised", arm.Name)
		}
	}
}

// TestMediaTornEADRIsNoOp pins the paper's eADR claim: with reserve
// energy completing every write-back, the torn budget must inject
// zero lines and the trial must come back byte-clean (exit 0).
func TestMediaTornEADRIsNoOp(t *testing.T) {
	tr, err := RunMediaTrial(MediaArm{Name: "eadr-torn", Mode: pmem.EADR, Fault: FaultTorn}, DefaultScript(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Injected.MediaTornLines != 0 {
		t.Fatalf("eADR tore %d lines", tr.Injected.MediaTornLines)
	}
	if tr.FsckExit != 0 || tr.CorruptReads != 0 {
		t.Fatalf("eADR torn trial not clean: exit %d, %d corrupt reads", tr.FsckExit, tr.CorruptReads)
	}
	if e := tr.Err(); e != nil {
		t.Fatal(e)
	}
}

// TestMediaTornADRInjects makes the complementary assertion: under
// ADR with a small write-back cache, dirty lines exist at the cut and
// the torn budget must actually tear some across a few seeds.
func TestMediaTornADRInjects(t *testing.T) {
	arm := MediaArm{Name: "adr-torn", Mode: pmem.ADR, Fault: FaultTorn}
	res, err := MediaSweep(arm, DefaultScript(), mediaSeeds(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected.MediaTornLines == 0 {
		t.Fatal("ADR torn sweep never tore a line; the cache rollback hook is dead")
	}
	for _, tr := range res.Failures {
		t.Errorf("%v", tr.Err())
	}
}

// TestConcurrentCrashSmoke is the seeded multi-writer smoke: a few
// crash steps under eADR and ADR, each with 4 writers mid-flight
// through separate Ctxs. Tier-1-fast.
func TestConcurrentCrashSmoke(t *testing.T) {
	for _, mode := range []pmem.Mode{pmem.EADR, pmem.ADR} {
		name := "eadr"
		if mode == pmem.ADR {
			name = "adr"
		}
		for _, step := range []int64{200, 900, 2500} {
			tr, err := RunConcurrentTrial(mode, 4, 250, step)
			if err != nil {
				t.Fatalf("%s step %d: %v", name, step, err)
			}
			if !tr.Fired {
				t.Fatalf("%s step %d: crash never fired (%d steps total)", name, step, tr.Steps)
			}
			if tr.Failed(mode) {
				t.Errorf("%s: %v", name, tr.Err(mode))
			}
			t.Logf("%s step %d: %d present, %d acked-lost", name, step, tr.Present, tr.LostAcked)
		}
	}
}

// TestConcurrentCompletesClean: without a firing crash the concurrent
// workload must land every key exactly.
func TestConcurrentCompletesClean(t *testing.T) {
	tr, err := RunConcurrentTrial(pmem.EADR, 4, 150, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fired {
		t.Fatal("count-only plan fired")
	}
	if tr.Failed(pmem.EADR) || tr.Present != 4*150 || tr.LostAcked != 0 {
		t.Fatalf("clean concurrent run: present %d, lost %d, err %v", tr.Present, tr.LostAcked, tr.Err(pmem.EADR))
	}
}
