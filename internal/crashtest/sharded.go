// Sharded crash-point trials: the same durability oracle as the
// single-index sweep, driven through the public spash API against an
// N-shard database. The fault plan arms on shard 0's device — the
// injected power cut fires mid-operation there while the sibling
// shards are between operations — and recovery goes through
// spash.RecoverAll, so the sweep exercises the parallel fan-out and
// the per-shard geometry checks on every trial. The oracle then runs
// over the full key universe, which routes across all shards: an
// acknowledged operation must survive whichever device it landed on.
package crashtest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"spash"
	"spash/internal/core"
	"spash/internal/pmem"
)

// SeededScript generates a reproducible random workload of ops
// operations over a key universe sized to spread across shards:
// inserts dominate early, then updates and deletes mix in. The same
// seed always yields the same script (and therefore the same step
// stream, which the sweep's termination depends on).
func SeededScript(seed int64, ops int) Script {
	rng := rand.New(rand.NewSource(seed))
	var s Script
	live := make(map[int]bool)
	for len(s) < ops {
		switch {
		case len(live) < 16 || rng.Intn(10) < 5:
			k := rng.Intn(1 << 12)
			s = append(s, Op{OpInsert, key8(k), pad(k, 8+rng.Intn(80))})
			live[k] = true
		case rng.Intn(10) < 7:
			k := anyKey(rng, live)
			s = append(s, Op{OpUpdate, key8(k), pad(1000+k, 8+rng.Intn(120))})
		default:
			k := anyKey(rng, live)
			s = append(s, Op{OpDelete, key8(k), ""})
			delete(live, k)
		}
	}
	return s
}

// anyKey picks a live key deterministically: map iteration order is
// random, so the idx-th key in numeric order is selected instead.
func anyKey(rng *rand.Rand, live map[int]bool) int {
	idx := rng.Intn(len(live))
	ord := 0
	for k := 0; k < 1<<12; k++ {
		if live[k] {
			if ord == idx {
				return k
			}
			ord++
		}
	}
	panic("crashtest: empty live set")
}

// shardedOpts is the trial configuration: an eADR platform sized so
// each of the n shards gets a small pool and cache (evictions keep the
// media image honest), paper defaults plus a shallow initial directory
// so structural growth happens inside the script.
func shardedOpts(n int) spash.Options {
	return spash.Options{
		Shards: n,
		Platform: pmem.Config{
			PoolSize:  uint64(n) * (4 << 20),
			CacheSize: 64 << 10,
			Mode:      pmem.EADR,
		},
		Index: core.Config{InitialDepth: 1, Concurrency: core.ModeHTM},
	}
}

// ShardedTrial executes one crash-point trial of script against an
// n-shard database, injecting the power cut at crashStep (1-based,
// counted on shard 0's device; a step beyond that device's total
// completes without firing).
func ShardedTrial(n int, script Script, crashStep int64) (Trial, error) {
	tr := Trial{Step: crashStep}
	opts := shardedOpts(n)
	db, err := spash.Open(opts)
	if err != nil {
		return tr, err
	}
	s := db.Session()
	target := db.Platforms()[0]

	acked := make(map[string]string, len(script))
	inFlight := -1
	fp := &pmem.FaultPlan{CrashAtStep: crashStep}
	target.ArmFault(fp)
	werr := pmem.CatchCrash(func() error {
		for i := range script {
			inFlight = i
			if err := applySessionOp(s, &script[i]); err != nil {
				return fmt.Errorf("op %d (%v %q): %w", i, script[i].Kind, script[i].Key, err)
			}
			applyModel(acked, &script[i])
			inFlight = -1
		}
		return nil
	})
	target.DisarmFault()
	tr.Fired = fp.Fired()
	tr.Steps = fp.Steps()
	if werr != nil && !errors.Is(werr, pmem.ErrInjectedCrash) {
		return tr, werr
	}
	if !tr.Fired {
		tr.LostAcked, tr.InFlightTorn = checkSessionOracle(s, script, acked, -1)
		tr.InvariantErr = checkShardInvariants(db, s)
		tr.Misplaced = countMisplaced(db, s)
		return tr, nil
	}

	// Power fails on every device at once: the siblings, quiescent at
	// the cut, take a plain power cycle before the parallel recovery.
	platforms := db.Platforms()
	for _, p := range platforms[1:] {
		p.Crash()
	}
	db2, rerr := spash.RecoverAll(platforms, opts)
	if rerr != nil {
		tr.RecoverErr = rerr
		return tr, nil
	}
	s2 := db2.Session()
	tr.InvariantErr = checkShardInvariants(db2, s2)
	tr.Misplaced = countMisplaced(db2, s2)
	tr.LostAcked, tr.InFlightTorn = checkSessionOracle(s2, script, acked, inFlight)
	if n := db2.Len(); n != len(acked) && (inFlight < 0 || !lenExplainedByInFlight(n, script, acked, inFlight)) {
		tr.LostAcked++
	}
	return tr, nil
}

// ShardedSweep enumerates crash steps 1, 1+stride, … against an
// n-shard database until a trial completes without firing.
func ShardedSweep(n int, script Script, stride int64) (Result, error) {
	if stride < 1 {
		stride = 1
	}
	res := Result{Arm: Arm{Name: fmt.Sprintf("eadr-%dsh", n), Mode: pmem.EADR,
		Insert: core.InsertCompactedFlush, Update: core.UpdateAdaptive}}
	for step := int64(1); ; step += stride {
		tr, err := ShardedTrial(n, script, step)
		if err != nil {
			return res, fmt.Errorf("%dsh step %d: %w", n, step, err)
		}
		res.Trials++
		if tr.Failed() {
			res.Failures = append(res.Failures, tr)
		}
		if !tr.Fired {
			res.TotalSteps = tr.Steps
			return res, nil
		}
	}
}

func applySessionOp(s *spash.Session, op *Op) error {
	switch op.Kind {
	case OpInsert:
		return s.Insert([]byte(op.Key), []byte(op.Val))
	case OpUpdate:
		_, err := s.Update([]byte(op.Key), []byte(op.Val))
		return err
	case OpDelete:
		_, err := s.Delete([]byte(op.Key))
		return err
	}
	return fmt.Errorf("crashtest: unknown op kind %d", op.Kind)
}

func checkShardInvariants(db *spash.DB, s *spash.Session) error {
	for i, ix := range db.Indexes() {
		if err := ix.CheckInvariants(s.ShardCtx(i)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

func countMisplaced(db *spash.DB, s *spash.Session) int {
	total := 0
	for i, ix := range db.Indexes() {
		total += ix.CheckPlacement(s.ShardCtx(i))
	}
	return total
}

// checkSessionOracle is checkOracle over the public session API.
func checkSessionOracle(s *spash.Session, script Script, acked map[string]string, inFlight int) (lost int, torn bool) {
	universe := make(map[string]struct{}, len(script))
	for i := range script {
		universe[script[i].Key] = struct{}{}
	}
	var inKey, postVal string
	var postPresent bool
	if inFlight >= 0 {
		op := &script[inFlight]
		inKey = op.Key
		post := map[string]string{}
		if v, ok := acked[inKey]; ok {
			post[inKey] = v
		}
		applyModel(post, op)
		postVal, postPresent = post[inKey]
	}
	for k := range universe {
		got, found, err := s.Get([]byte(k), nil)
		if err != nil {
			lost++
			continue
		}
		wantVal, wantPresent := acked[k]
		matches := func(val string, present bool) bool {
			if !present {
				return !found
			}
			return found && bytes.Equal(got, []byte(val))
		}
		if inFlight >= 0 && k == inKey {
			if !matches(wantVal, wantPresent) && !matches(postVal, postPresent) {
				torn = true
			}
			continue
		}
		if !matches(wantVal, wantPresent) {
			lost++
		}
	}
	return lost, torn
}
