package crashtest

import "testing"

// TestShardedScriptCompletes checks the seeded workload runs clean end
// to end against a 4-shard database and satisfies the oracle, the
// per-shard invariants and the placement check.
func TestShardedScriptCompletes(t *testing.T) {
	tr, err := ShardedTrial(4, SeededScript(7, 160), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fired {
		t.Fatal("count-only plan fired")
	}
	if e := tr.Err(); e != nil {
		t.Fatalf("clean run violates oracle: %v", e)
	}
	if tr.Steps < 50 {
		t.Fatalf("shard 0 saw only %d steps; workload too small for a meaningful sweep", tr.Steps)
	}
	t.Logf("4 shards: %d shard-0 steps", tr.Steps)
}

// TestShardedSeededScriptDeterministic: the sweep's termination
// depends on the same seed producing the same step stream.
func TestShardedSeededScriptDeterministic(t *testing.T) {
	a, b := SeededScript(42, 200), SeededScript(42, 200)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestShardedSweep is the multi-shard power-fault sweep: a power cut
// at strided persistence steps of shard 0's device, siblings cut
// quiescent, parallel recovery through spash.RecoverAll, then the
// oracle over the full cross-shard key universe. Under eADR every
// trial must come back clean.
func TestShardedSweep(t *testing.T) {
	stride := int64(5)
	if testing.Short() {
		stride = 47
	}
	res, err := ShardedSweep(4, SeededScript(7, 160), stride)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Failures {
		if i >= 5 {
			t.Errorf("… and %d more failures", len(res.Failures)-i)
			break
		}
		t.Errorf("%v", tr.Err())
	}
	t.Logf("%s: %d trials over %d shard-0 steps, %d failures",
		res.Arm.Name, res.Trials, res.TotalSteps, len(res.Failures))
}

// TestShardedSweepSingleShard pins the n=1 case to the same oracle:
// one shard must behave exactly like the monolithic database.
func TestShardedSweepSingleShard(t *testing.T) {
	if testing.Short() {
		t.Skip("single-shard sharded sweep skipped in -short")
	}
	res, err := ShardedSweep(1, SeededScript(11, 100), 41)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Failures {
		t.Errorf("%v", tr.Err())
	}
	t.Logf("%d trials over %d steps", res.Trials, res.TotalSteps)
}
