package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"spash/internal/hash"
	"spash/internal/pmem"
	"spash/internal/ycsb"
)

// flushMode is a Fig 1 write strategy.
type flushMode int

const (
	writeF      flushMode = iota // store + flush + fence per chunk
	writeNF                      // store only
	writeHybrid                  // nf for the top-1% hot chunks, f for the rest
)

func (m flushMode) String() string {
	switch m {
	case writeF:
		return "write-f"
	case writeNF:
		return "write-nf"
	default:
		return "nf-hot1%"
	}
}

// fig1Bandwidth measures raw PM write bandwidth (GB/s) for one Fig 1
// configuration on a fresh simulated device.
func fig1Bandwidth(s Scale, zipf bool, mode flushMode, size int) float64 {
	gb, _ := fig1BandwidthDebug(s, zipf, mode, size)
	return gb
}

func fig1BandwidthDebug(s Scale, zipf bool, mode flushMode, size int) (float64, Result) {
	// Fig 1 characterises the hardware model itself, so its platform is
	// fixed rather than scaled with the index workloads: a 256 MB write
	// region against a 16 MB cache, the same cache:working-set ratio as
	// the paper's 42 MB L3 against its hundreds-of-MB test region. The
	// zipfian hot set then fits the cache (Observation 3) while uniform
	// traffic does not (Observation 2).
	cfg := pmem.Config{PoolSize: 512 << 20, CacheSize: 16 << 20}
	pool := pmem.New(cfg)
	region := uint64(256 << 20)
	chunks := region / uint64(size)
	// Fig 1 is defined at 56 threads (§VI-A): PM write bandwidth only
	// becomes the binding constraint — and the flush-strategy effects
	// only appear — once enough workers issue writes in parallel.
	const workers = 56
	// Eviction behaviour (Observation 2) needs the written volume to
	// exceed the cache several times over.
	totalOps := s.MicroOps
	if min := int(4 * cfg.CacheSize / uint64(size)); totalOps < min {
		totalOps = min
	}
	ops := totalOps / workers
	if ops == 0 {
		ops = 1
	}

	clocks := make([]int64, workers)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := pool.NewCtx()
			buf := make([]byte, size)
			rand.New(rand.NewSource(int64(id))).Read(buf)
			var zg *ycsb.Zipfian
			rng := rand.New(rand.NewSource(int64(id)*2654435761 + 3))
			if zipf {
				zg = ycsb.NewZipfian(chunks, ycsb.DefaultTheta, int64(id)*7+1)
			}
			for i := 0; i < ops; i++ {
				var chunk uint64
				hot := false
				if zipf {
					rank := zg.Next()
					hot = rank < chunks/100
					chunk = hash.Sum64Uint64(rank) % chunks
				} else {
					chunk = rng.Uint64() % chunks
				}
				addr := 4096 + chunk*uint64(size)
				//spash:allow pmstore -- raw-bandwidth microbenchmark driving the pool directly; no index invariants are involved
				pool.Write(c, addr, buf)
				if mode == writeF || (mode == writeHybrid && !hot) {
					pool.Flush(c, addr, uint64(size))
					pool.Fence(c)
				}
			}
			clocks[id] = c.Clock()
		}(id)
	}
	wg.Wait()

	res := combine("", pool.Config().Timing, clocks, []pmem.Stats{pool.Stats()}, 0, int64(workers)*int64(ops))
	appBytes := float64(res.Ops) * float64(size)
	return appBytes / float64(res.Elapsed), res // bytes per ns == GB/s
}

// Fig1 reproduces Fig 1: raw PM write bandwidth under different flush
// strategies, access sizes and access distributions (§II-B,
// Observations 2-4). No index is involved: this exercises the cache +
// XPBuffer model directly.
func Fig1(w io.Writer, s Scale) error {
	sizes := []int{16, 64, 256, 1024, 4096}

	ta := newTable("Fig 1(a): PM write bandwidth, uniform (GB/s, 56 workers)",
		"size", "write-f", "write-nf")
	for _, size := range sizes {
		ta.row(fmt.Sprintf("%dB", size),
			f2(fig1Bandwidth(s, false, writeF, size)),
			f2(fig1Bandwidth(s, false, writeNF, size)))
	}
	ta.write(w)

	tb := newTable("Fig 1(b): PM write bandwidth, zipfian 0.99 (GB/s, 56 workers)",
		"size", "write-f", "write-nf", "nf-hot1%")
	for _, size := range sizes {
		tb.row(fmt.Sprintf("%dB", size),
			f2(fig1Bandwidth(s, true, writeF, size)),
			f2(fig1Bandwidth(s, true, writeNF, size)),
			f2(fig1Bandwidth(s, true, writeHybrid, size)))
	}
	tb.write(w)
	return nil
}
