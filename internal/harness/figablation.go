package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"spash/internal/adapters"
	"spash/internal/core"
	"spash/internal/hash"
	"spash/internal/pmem"
	"spash/internal/ycsb"
)

// oracleHotHashes precomputes the key-hash set of the k most popular
// scrambled-zipfian keys, in the key encoding used for valSize.
func oracleHotHashes(n uint64, k int, valSize int) map[uint64]struct{} {
	set := make(map[uint64]struct{}, k)
	kb := make([]byte, 16)
	for rank := uint64(0); int(rank) < k; rank++ {
		kid := hash.Sum64Uint64(rank) % n
		if valSize == 8 {
			set[hash.Sum64Uint64(kid)] = struct{}{}
		} else {
			set[hash.Sum64(ycsb.KeyBytes(kb, kid))] = struct{}{}
		}
	}
	return set
}

// Fig12a reproduces Fig 12(a): the adaptive in-place update ablation —
// adaptive vs always-flush vs never-flush vs oracle-hotness, across
// value sizes, on update-only zipfian workloads.
func Fig12a(w io.Writer, s Scale) error {
	variants := []struct {
		name   string
		policy core.UpdatePolicy
	}{
		{"adaptive", core.UpdateAdaptive},
		{"in-place w/ flush", core.UpdateAlwaysFlush},
		{"in-place w/o flush", core.UpdateNeverFlush},
		{"adaptive (oracle)", core.UpdateOracle},
	}
	sizes := []int{8, 64, 256, 1024}
	cols := []string{"policy"}
	for _, vs := range sizes {
		cols = append(cols, fmt.Sprintf("%dB", vs))
	}
	t := newTable(fmt.Sprintf("Fig 12(a): update-policy ablation (Mops/s, update-only zipf 0.99, %d workers)", s.MaxThreads), cols...)

	for _, v := range variants {
		cells := []string{v.name}
		for _, vs := range sizes {
			cfg := core.Config{Update: v.policy}
			if v.policy == core.UpdateOracle {
				hot := oracleHotHashes(uint64(s.YCSBLoad), 8192, vs)
				cfg.OracleHot = func(h uint64) bool {
					_, ok := hot[h]
					return ok
				}
			}
			ix, err := adapters.NewSpashFactory("Spash", cfg)(s.Platform())
			if err != nil {
				return err
			}
			loadIndex(ix, s.MaxThreads, s.YCSBLoad, vs, false)
			r := RunWorkload("update", ix, s.MaxThreads, s.YCSBOps/s.MaxThreads, false,
				mixSource(ycsb.UpdateOnly, uint64(s.YCSBLoad), ycsb.DefaultTheta, vs, 811))
			cells = append(cells, mops(r))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// Fig12b reproduces Fig 12(b): the compacted-flush insertion ablation
// on insert-only uniform workloads with small out-of-line records.
func Fig12b(w io.Writer, s Scale) error {
	variants := []struct {
		name   string
		policy core.InsertPolicy
	}{
		{"compacted-flush", core.InsertCompactedFlush},
		{"no-compaction", core.InsertNoCompact},
		{"compacted w/o flush", core.InsertCompactNoFlush},
	}
	t := newTable(fmt.Sprintf("Fig 12(b): insertion ablation (insert-only uniform, 16B keys / 64B values, %d workers)", s.MaxThreads),
		"policy", "Mops/s", "XPLine-writes/op")
	for _, v := range variants {
		ix, err := adapters.NewSpashFactory("Spash", core.Config{Insert: v.policy})(s.Platform())
		if err != nil {
			return err
		}
		r := loadIndex(ix, s.MaxThreads, s.YCSBOps, 64, false)
		t.row(v.name, mops(r), f2(r.PerOp(r.Mem.XPLineWrites)))
	}
	t.write(w)
	return nil
}

// Fig12c reproduces Fig 12(c): the concurrency-protocol ablation — the
// HTM two-phase protocol against the per-segment write-lock (Dash
// style) and write+read-lock (Level style) variants.
func Fig12c(w io.Writer, s Scale) error {
	variants := []struct {
		name string
		mode core.ConcurrencyMode
	}{
		{"Spash (HTM)", core.ModeHTM},
		{"Spash (w/ write lock)", core.ModeWriteLock},
		{"Spash (w/ write & read lock)", core.ModeRWLock},
	}
	cols := []string{"variant"}
	for _, m := range ycsbMixes {
		cols = append(cols, m.Name())
	}
	t := newTable(fmt.Sprintf("Fig 12(c): concurrency-protocol ablation (Mops/s, inlined KV, zipf 0.99, %d workers)", s.MaxThreads), cols...)
	for _, v := range variants {
		ix, err := adapters.NewSpashFactory(v.name, core.Config{Concurrency: v.mode})(s.Platform())
		if err != nil {
			return err
		}
		loadIndex(ix, s.MaxThreads, s.YCSBLoad, 8, false)
		cells := []string{v.name}
		for mi, mix := range ycsbMixes {
			r := RunWorkload(mix.Name(), ix, s.MaxThreads, s.YCSBOps/s.MaxThreads, v.mode == core.ModeHTM,
				mixSource(mix, uint64(s.YCSBLoad), ycsb.DefaultTheta, 8, int64(901+mi)))
			cells = append(cells, mops(r))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// Fig12d reproduces Fig 12(d): search throughput under different
// pipeline depths and worker counts.
func Fig12d(w io.Writer, s Scale) error {
	depths := []int{1, 2, 4, 8}
	cols := []string{"pipeline depth"}
	for _, th := range s.Threads {
		cols = append(cols, fmt.Sprintf("%dthr", th))
	}
	t := newTable("Fig 12(d): pipeline depth (search-only Mops/s, uniform)", cols...)
	for _, pd := range depths {
		cells := []string{fmt.Sprintf("PD=%d", pd)}
		for _, th := range s.Threads {
			ix, err := adapters.NewSpashFactory("Spash", core.Config{PipelineDepth: pd})(s.Platform())
			if err != nil {
				return err
			}
			loadIndex(ix, th, s.MicroLoad, 8, true)
			r := RunWorkload("search", ix, th, s.MicroOps/th, true,
				uniformSource(ycsb.OpSearch, uint64(s.MicroLoad), 404))
			cells = append(cells, mops(r))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// Table1 validates the adaptive flush policy matrix (Table I): for
// each (hotness, size) cell it measures PM media writes per update
// under both strategies, confirming the paper's chosen policy.
func Table1(w io.Writer, s Scale) error {
	t := newTable("Table I validation: XPLine writes per update (flush vs no-flush)",
		"hotness/size", "w/ flush", "w/o flush", "paper's choice")

	run := func(hot bool, size int, flush bool) float64 {
		pool := pmem.New(pmem.Config{PoolSize: 256 << 20, CacheSize: s.CacheBytes})
		const workers = 56 // like Fig 1, defined at full parallelism
		ops := s.MicroOps / workers
		regions := uint64(200000) // cold working set ≫ cache
		if hot {
			regions = 64 // hot working set ≪ cache
		}
		stride := uint64((size + 255) &^ 255)
		var wg sync.WaitGroup
		for id := 0; id < workers; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := pool.NewCtx()
				defer c.Release()
				rng := rand.New(rand.NewSource(int64(id)))
				buf := make([]byte, size)
				for i := 0; i < ops; i++ {
					r := rng.Uint64() % regions
					addr := 4096 + r*stride
					//spash:allow pmstore -- raw write-ablation microbenchmark driving the pool directly; no index invariants are involved
					pool.Write(c, addr, buf)
					if flush {
						pool.Flush(c, addr, uint64(size))
						pool.Fence(c)
					}
				}
			}(id)
		}
		wg.Wait()
		st := pool.Stats()
		return float64(st.XPLineWrites) / float64(workers*ops)
	}

	cases := []struct {
		label  string
		hot    bool
		size   int
		choice string
	}{
		{"hot / 8B", true, 8, "w/o flush"},
		{"hot / 256B", true, 256, "w/o flush"},
		{"cold / 8B", false, 8, "w/o flush"},
		{"cold / 256B", false, 256, "w/ flush"},
	}
	for _, cse := range cases {
		t.row(cse.label, f2(run(cse.hot, cse.size, true)), f2(run(cse.hot, cse.size, false)), cse.choice)
	}
	t.write(w)
	return nil
}

// ExtDoublingTail is an extension experiment beyond the paper's
// figures, quantifying the claim of §IV-B that collaborative staged
// doubling "significantly improve[s] the overall throughput and
// reduce[s] the tail latency" compared with a traditional
// stop-the-world directory doubling. An insert-heavy run crosses
// several doublings; per-operation virtual latencies are sampled.
func ExtDoublingTail(w io.Writer, s Scale) error {
	t := newTable(fmt.Sprintf("Extension: staged vs monolithic directory doubling (insert-only, %d workers)", s.MaxThreads),
		"doubling", "Mops/s", "p50", "p99", "p99.9", "max")
	for _, v := range []struct {
		name string
		mono bool
	}{
		{"collaborative staged (paper)", false},
		{"monolithic stop-the-world", true},
	} {
		ix, err := adapters.NewSpashFactory("Spash", core.Config{InitialDepth: 2, MonolithicResize: v.mono})(s.Platform())
		if err != nil {
			return err
		}
		per := s.MicroOps / s.MaxThreads
		res, hist := RunWithLatency("insert", ix, s.MaxThreads, per,
			func(id int) func(i int) Op {
				kb := make([]byte, 8)
				vb := make([]byte, 8)
				start := uint64(id) * uint64(per)
				return func(i int) Op {
					k := start + uint64(i)
					for j := 0; j < 8; j++ {
						kb[j] = byte(k >> (8 * j))
						vb[j] = kb[j]
					}
					return Op{Kind: ycsb.OpInsert, Key: kb, Val: vb}
				}
			})
		t.row(v.name, mops(res),
			fmt.Sprintf("%dns", hist.Percentile(50)),
			fmt.Sprintf("%dns", hist.Percentile(99)),
			fmt.Sprintf("%dns", hist.Percentile(99.9)),
			fmt.Sprintf("%dns", hist.Max()))
	}
	t.write(w)
	return nil
}

// ExtHotspotSweep is an extension experiment: the paper fixes the
// hotspot detector at 8K entries (p=12 partitions bits, q=2 keys per
// partition, §VI-D) and claims a small list suffices. This sweep
// varies both knobs on the update-only zipfian workload.
func ExtHotspotSweep(w io.Writer, s Scale) error {
	qs := []int{1, 2, 4}
	ps := []int{8, 12, 16}
	cols := []string{"q \\ p"}
	for _, p := range ps {
		cols = append(cols, fmt.Sprintf("p=%d (%d entries)", p, (1<<p)*2))
	}
	t := newTable(fmt.Sprintf("Extension: hotspot detector sizing (Mops/s, update-only zipf 0.99, 256B values, %d workers)", s.MaxThreads), cols...)
	for _, q := range qs {
		cells := []string{fmt.Sprintf("q=%d", q)}
		for _, p := range ps {
			ix, err := adapters.NewSpashFactory("Spash", core.Config{
				HotspotPartitionBits: p,
				HotKeysPerPartition:  q,
			})(s.Platform())
			if err != nil {
				return err
			}
			loadIndex(ix, s.MaxThreads, s.YCSBLoad, 256, false)
			r := RunWorkload("update", ix, s.MaxThreads, s.YCSBOps/s.MaxThreads, false,
				mixSource(ycsb.UpdateOnly, uint64(s.YCSBLoad), ycsb.DefaultTheta, 256, 977))
			cells = append(cells, mops(r))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// ExtEADRBenefit is an extension experiment quantifying the paper's
// motivation end to end: Spash on its eADR platform (persistent CPU
// cache + HTM) versus the same index forced into a legacy-ADR
// discipline (per-segment locks, flush + fence after every write,
// out-of-place flushed insertions) — what the index would have to do
// on a platform whose cache is volatile.
func ExtEADRBenefit(w io.Writer, s Scale) error {
	t := newTable(fmt.Sprintf("Extension: eADR+HTM vs legacy-ADR discipline (Mops/s, zipf 0.99, %d workers)", s.MaxThreads),
		"configuration", "Load", "read-int(90/10)", "balanced(50/50)", "write-int(10/90)")
	for _, v := range []struct {
		name string
		cfg  core.Config
	}{
		{"Spash (eADR + HTM)", core.Config{}},
		{"Spash (legacy ADR: locks + flush/fence)", core.Config{
			Concurrency:    core.ModeWriteLock,
			Update:         core.UpdateAlwaysFlush,
			Insert:         core.InsertNoCompact,
			PersistBarrier: true,
		}},
	} {
		ix, err := adapters.NewSpashFactory(v.name, v.cfg)(s.Platform())
		if err != nil {
			return err
		}
		load := loadIndex(ix, s.MaxThreads, s.YCSBLoad, 64, false)
		cells := []string{v.name, mops(load)}
		for mi, mix := range ycsbMixes {
			r := RunWorkload(mix.Name(), ix, s.MaxThreads, s.YCSBOps/s.MaxThreads, v.cfg.Concurrency == core.ModeHTM,
				mixSource(mix, uint64(s.YCSBLoad), ycsb.DefaultTheta, 64, int64(1100+mi)))
			cells = append(cells, mops(r))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// ExtIntegrity is an extension experiment pricing the self-verifying
// segment layout (Config.Checksums, default off): per-segment CRC32C
// seals are verified before every guarded segment access and resealed
// after every mutation, so the insert path pays the full
// read-verify/update/reseal cycle while lookups pay verification only.
// The row pair measures the identical workload with seals off and on;
// the closing row gives the measured relative cost per phase — the
// number an operator trades against detection of silent media
// corruption.
func ExtIntegrity(w io.Writer, s Scale) error {
	phases := []string{"Load(insert)", "read-int(90/10)", "balanced(50/50)", "write-int(10/90)"}
	t := newTable(fmt.Sprintf("Extension: checksum-seal overhead (Mops/s, zipf 0.99, 64B values, %d workers)", s.MaxThreads),
		append([]string{"configuration"}, phases...)...)
	thr := make([][]float64, 2)
	for vi, v := range []struct {
		name string
		tag  string
		cfg  core.Config
	}{
		{"Spash (seals off, default)", "seals-off", core.Config{}},
		{"Spash (seals on)", "seals-on", core.Config{Checksums: true}},
	} {
		ix, err := adapters.NewSpashFactory(v.name, v.cfg)(s.Platform())
		if err != nil {
			return err
		}
		per := s.YCSBLoad / s.MaxThreads
		load := RunWorkload("load-"+v.tag, ix, s.MaxThreads, per, false,
			func(id int) func(i int) Op {
				kb := make([]byte, keyBytes16)
				vb := make([]byte, 64)
				start := uint64(id * per)
				return func(i int) Op {
					kid := start + uint64(i)
					ycsb.FillValue(vb, kid)
					return Op{Kind: ycsb.OpInsert, Key: ycsb.KeyBytes(kb, kid), Val: vb}
				}
			})
		cells := []string{v.name, mops(load)}
		thr[vi] = append(thr[vi], load.Throughput())
		for mi, mix := range ycsbMixes {
			r := RunWorkload(mix.Name()+"-"+v.tag, ix, s.MaxThreads, s.YCSBOps/s.MaxThreads, true,
				mixSource(mix, uint64(s.YCSBLoad), ycsb.DefaultTheta, 64, int64(1300+mi)))
			cells = append(cells, mops(r))
			thr[vi] = append(thr[vi], r.Throughput())
		}
		t.row(cells...)
	}
	cells := []string{"seal overhead"}
	for i := range phases {
		over := 0.0
		if thr[0][i] > 0 {
			over = 100 * (thr[0][i] - thr[1][i]) / thr[0][i]
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", over))
	}
	t.row(cells...)
	t.write(w)
	return nil
}
