package harness

import (
	"fmt"
	"io"

	"spash/internal/ycsb"
)

// ycsbMixes are the run-phase mixtures of §VI-C.
var ycsbMixes = []ycsb.Mix{ycsb.ReadIntensive, ycsb.Balanced, ycsb.WriteIntensive}

// Fig10 reproduces Fig 10: YCSB throughput with inlined 8B key-value
// entries — the load phase plus the three search/update mixtures under
// a zipfian(0.99) distribution.
func Fig10(w io.Writer, s Scale) error {
	t := newTable(fmt.Sprintf("Fig 10: YCSB, inlined KV (Mops/s, zipf 0.99, %d workers)", s.MaxThreads),
		"index", "Load", "read-int(90/10)", "balanced(50/50)", "write-int(10/90)")
	for _, e := range MacroRoster() {
		ix, err := mustOpen(e, s)
		if err != nil {
			return err
		}
		load := loadIndex(ix, s.MaxThreads, s.YCSBLoad, 8, false)
		cells := []string{e.Name, mops(load)}
		per := s.YCSBOps / s.MaxThreads
		for mi, mix := range ycsbMixes {
			r := RunWorkload(mix.Name(), ix, s.MaxThreads, per, e.Pipeline,
				mixSource(mix, uint64(s.YCSBLoad), ycsb.DefaultTheta, 8, int64(303+mi)))
			cells = append(cells, mops(r))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// Fig11 reproduces Fig 11: YCSB with 16-byte keys and variable-sized
// values (compacted-flush insertion and adaptive in-place updates at
// work).
func Fig11(w io.Writer, s Scale) error {
	for _, valSize := range []int{16, 64, 256, 1024} {
		t := newTable(fmt.Sprintf("Fig 11: YCSB, 16B keys / %dB values (Mops/s, zipf 0.99, %d workers)", valSize, s.MaxThreads),
			"index", "Load", "read-int(90/10)", "balanced(50/50)", "write-int(10/90)")
		for _, e := range MacroRoster() {
			ix, err := mustOpen(e, s)
			if err != nil {
				return err
			}
			load := loadIndex(ix, s.MaxThreads, s.YCSBLoad, valSize, false)
			cells := []string{e.Name, mops(load)}
			per := s.YCSBOps / s.MaxThreads
			for mi, mix := range ycsbMixes {
				r := RunWorkload(mix.Name(), ix, s.MaxThreads, per, e.Pipeline,
					mixSource(mix, uint64(s.YCSBLoad), ycsb.DefaultTheta, valSize, int64(707+mi)))
				cells = append(cells, mops(r))
			}
			t.row(cells...)
		}
		t.write(w)
	}
	return nil
}
