package harness

import (
	"encoding/binary"
	"fmt"
	"io"

	"spash/internal/ixapi"
	"spash/internal/ycsb"
)

// microPhases runs the paper's micro-benchmark sequence (§VI-B) on a
// fresh index: preload, then insert / search / update / delete phases,
// returning one Result per phase keyed by op name.
func microPhases(e Entry, s Scale, workers int) (map[string]Result, error) {
	ix, err := mustOpen(e, s)
	if err != nil {
		return nil, err
	}
	loadIndex(ix, workers, s.MicroLoad, 8, e.Pipeline)
	per := s.MicroOps / workers
	if per == 0 {
		per = 1
	}
	out := make(map[string]Result, 4)

	// Insert fresh keys above the preloaded range.
	out["insert"] = RunWorkload("insert", ix, workers, per, false,
		insertSource(uint64(s.MicroLoad), per))
	total := uint64(s.MicroLoad + workers*per)
	out["search"] = RunWorkload("search", ix, workers, per, e.Pipeline,
		uniformSource(ycsb.OpSearch, total, 101))
	out["update"] = RunWorkload("update", ix, workers, per, false,
		uniformSource(ycsb.OpUpdate, total, 202))
	// Delete exactly the keys this phase's workers inserted.
	out["delete"] = RunWorkload("delete", ix, workers, per, false,
		func(id int) func(i int) Op {
			kb := make([]byte, 8)
			start := uint64(s.MicroLoad) + uint64(id)*uint64(per)
			return func(i int) Op {
				binary.LittleEndian.PutUint64(kb, start+uint64(i))
				return Op{Kind: ycsb.OpDelete, Key: kb}
			}
		})
	return out, nil
}

// Fig7 reproduces Fig 7: single-operation throughput versus worker
// count for every index (uniform distribution, inline 8B-8B entries).
func Fig7(w io.Writer, s Scale) error {
	ops := []string{"search", "insert", "update", "delete"}
	roster := MicroRoster()

	// results[op][entry][threads]
	results := make(map[string]map[string]map[int]Result)
	for _, op := range ops {
		results[op] = make(map[string]map[int]Result)
		for _, e := range roster {
			results[op][e.Name] = make(map[int]Result)
		}
	}
	for _, e := range roster {
		for _, th := range s.Threads {
			phases, err := microPhases(e, s, th)
			if err != nil {
				return err
			}
			for _, op := range ops {
				results[op][e.Name][th] = phases[op]
			}
		}
	}

	for fi, op := range ops {
		cols := []string{"index"}
		for _, th := range s.Threads {
			cols = append(cols, fmt.Sprintf("%dthr", th))
		}
		t := newTable(fmt.Sprintf("Fig 7(%c): %s throughput (Mops/s, uniform)", 'a'+fi, op), cols...)
		for _, e := range roster {
			cells := []string{e.Name}
			for _, th := range s.Threads {
				cells = append(cells, mops(results[op][e.Name][th]))
			}
			t.row(cells...)
		}
		t.write(w)
	}
	return nil
}

// Fig8 reproduces Fig 8: the average number of XPLine and cacheline
// accesses to PM per operation (single worker, counting only).
func Fig8(w io.Writer, s Scale) error {
	roster := MicroRoster()
	ta := newTable("Fig 8(a): avg PM reads per operation",
		"index", "search CL-rd", "search XP-rd", "update CL-rd", "update XP-rd")
	tb := newTable("Fig 8(b): avg PM writes per operation",
		"index", "insert CL-wr", "insert XP-wr", "update CL-wr", "update XP-wr", "delete CL-wr", "delete XP-wr")
	for _, e := range roster {
		if e.Name == "Spash-noPipe" {
			continue // identical access counts to Spash
		}
		phases, err := microPhases(e, s, 1)
		if err != nil {
			return err
		}
		se, up, in, de := phases["search"], phases["update"], phases["insert"], phases["delete"]
		ta.row(e.Name,
			f2(se.PerOp(se.Mem.CachelineReads)), f2(se.PerOp(se.Mem.XPLineReads)),
			f2(up.PerOp(up.Mem.CachelineReads)), f2(up.PerOp(up.Mem.XPLineReads)))
		tb.row(e.Name,
			f2(in.PerOp(in.Mem.CachelineWrites)), f2(in.PerOp(in.Mem.XPLineWrites)),
			f2(up.PerOp(up.Mem.CachelineWrites)), f2(up.PerOp(up.Mem.XPLineWrites)),
			f2(de.PerOp(de.Mem.CachelineWrites)), f2(de.PerOp(de.Mem.XPLineWrites)))
	}
	ta.write(w)
	tb.write(w)
	return nil
}

// Fig9 reproduces Fig 9: load factor versus the number of inserted
// entries (insert-only, single worker; Halo is excluded as in the
// paper).
func Fig9(w io.Writer, s Scale) error {
	const checkpoints = 10
	roster := MicroRoster()
	cols := []string{"entries"}
	for _, e := range roster {
		if e.Name == "Spash-noPipe" {
			continue
		}
		cols = append(cols, e.Name)
	}
	t := newTable("Fig 9: load factor vs inserted entries", cols...)

	lfs := make(map[string][]float64)
	for _, e := range roster {
		if e.Name == "Spash-noPipe" {
			continue
		}
		ix, err := mustOpen(e, s)
		if err != nil {
			return err
		}
		wk := ix.NewWorker()
		kb := make([]byte, 8)
		vb := make([]byte, 8)
		step := s.MicroLoad / checkpoints
		for cp := 0; cp < checkpoints; cp++ {
			for i := 0; i < step; i++ {
				id := uint64(cp*step + i)
				binary.LittleEndian.PutUint64(kb, id)
				binary.LittleEndian.PutUint64(vb, id)
				if err := wk.Insert(kb, vb); err != nil {
					return err
				}
			}
			lfs[e.Name] = append(lfs[e.Name], ix.LoadFactor())
		}
		wk.Close()
	}
	for cp := 0; cp < checkpoints; cp++ {
		cells := []string{fmt.Sprintf("%d", (cp+1)*(s.MicroLoad/checkpoints))}
		for _, e := range roster {
			if e.Name == "Spash-noPipe" {
				continue
			}
			cells = append(cells, f2(lfs[e.Name][cp]))
		}
		t.row(cells...)
	}
	t.write(w)
	return nil
}

// avgLF is a helper for EXPERIMENTS.md claims checking.
func avgLF(ix ixapi.Index) float64 { return ix.LoadFactor() }
