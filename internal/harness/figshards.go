package harness

import (
	"fmt"
	"io"

	"spash/internal/adapters"
	"spash/internal/core"
	"spash/internal/ycsb"
)

// shardCounts is the partition-count axis of the shard-scaling figure;
// spash-bench overrides it via -shards.
var shardCounts = []int{1, 2, 4, 8}

// SetShardCounts overrides the shard-count axis of FigShards (the
// -shards flag of spash-bench). An empty list keeps the default.
func SetShardCounts(list []int) {
	if len(list) > 0 {
		shardCounts = list
	}
}

// shardThreads is the thread axis: it extends past Scale.MaxThreads to
// 4× (224 at the default scale, the paper's top thread count), because
// the bounds sharding removes — single-device write bandwidth and
// hottest-stripe commit serialisation — only bind once enough workers
// drive the aggregate.
func shardThreads(s Scale) []int {
	m := s.MaxThreads
	low := m / 4
	if low < 1 {
		low = 1
	}
	return []int{low, m, 2 * m, 4 * m}
}

// FigShards measures the sharding extension: aggregate throughput of
// an N-way partitioned Spash versus shard count and thread count.
//
// Panel (a) is insert-only (fresh keys, compacted-flush path): every
// insert reaches PM media, so a monolithic index saturates its single
// device's write bandwidth as threads grow, while N shards write to N
// devices — the bound is the hottest device, and aggregate throughput
// scales until the next constraint binds. Panel (b) is the balanced
// zipfian mix, where per-shard HTM domains spread warm keys across
// independent version-stripe tables. The HTM-abort and media-write
// tables underneath show the mechanism: per-cell abort counts and
// media traffic behind the throughput numbers.
func FigShards(w io.Writer, s Scale) error {
	type cell struct {
		res    Result
		aborts int64
		wbytes uint64
	}
	threads := shardThreads(s)
	// insert[n][th], mixed[n][th]
	insert := make(map[int]map[int]cell)
	mixed := make(map[int]map[int]cell)

	for _, n := range shardCounts {
		insert[n] = make(map[int]cell)
		mixed[n] = make(map[int]cell)
		for ti, th := range threads {
			name := fmt.Sprintf("Spash-%dsh", n)
			// Fresh index per cell: inserts grow the table, so reuse
			// would skew later cells.
			ix, err := NewShardedEntry(name, n).New(s.Platform())
			if err != nil {
				return fmt.Errorf("building %s: %w", name, err)
			}
			prev, _ := ObsSnapshotOf(ix)
			r := RunWorkload(fmt.Sprintf("insert[s=%d,t=%d]", n, th), ix, th, s.YCSBOps/th, false,
				insertSource(0, s.YCSBOps/th))
			now, _ := ObsSnapshotOf(ix)
			d := now.Sub(prev)
			insert[n][th] = cell{res: r,
				aborts: d.HTM.Conflicts + d.HTM.Capacities + d.HTM.Explicits,
				wbytes: d.Mem.MediaWriteBytes()}

			prev = now
			r = RunWorkload(fmt.Sprintf("balanced[s=%d,t=%d]", n, th), ix, th, s.YCSBOps/th, true,
				mixSource(ycsb.Balanced, uint64(s.YCSBOps), ycsb.DefaultTheta, 8, int64(1109+ti)))
			now, _ = ObsSnapshotOf(ix)
			d = now.Sub(prev)
			mixed[n][th] = cell{res: r,
				aborts: d.HTM.Conflicts + d.HTM.Capacities + d.HTM.Explicits,
				wbytes: d.Mem.MediaWriteBytes()}
		}
	}

	cols := []string{"threads"}
	for _, n := range shardCounts {
		cols = append(cols, fmt.Sprintf("%dsh", n))
	}
	panel := func(title string, cells map[int]map[int]cell, f func(cell) string) {
		t := newTable(title, cols...)
		for _, th := range threads {
			row := []string{fmt.Sprintf("%d", th)}
			for _, n := range shardCounts {
				row = append(row, f(cells[n][th]))
			}
			t.row(row...)
		}
		t.write(w)
	}
	panel("Shard scaling (a): insert-only throughput (Mops/s)", insert,
		func(c cell) string { return mops(c.res) })
	panel(fmt.Sprintf("Shard scaling (b): balanced(50/50) zipf %.2f throughput (Mops/s)", ycsb.DefaultTheta),
		mixed, func(c cell) string { return mops(c.res) })
	panel("Shard scaling: insert bound per cell", insert,
		func(c cell) string { return c.res.Bound })
	panel("Shard scaling: HTM aborts per cell, balanced run", mixed,
		func(c cell) string { return fmt.Sprintf("%d", c.aborts) })
	panel("Shard scaling: PM media writes per cell, insert run (MB, all devices)", insert,
		func(c cell) string { return fmt.Sprintf("%.1f", float64(c.wbytes)/(1<<20)) })
	return nil
}

// NewShardedEntry is the n-shard Spash roster entry (paper defaults
// per shard, pipelined execution).
func NewShardedEntry(name string, n int) Entry {
	return Entry{Name: name, New: adapters.NewShardedFactory(name, n, core.Config{}), Pipeline: true}
}
