package harness

import (
	"bytes"
	"strings"
	"testing"

	"spash/internal/adapters"
	"spash/internal/core"
	"spash/internal/ycsb"
)

// tinyScale keeps the shape tests fast.
var tinyScale = Scale{
	MicroLoad: 10000, MicroOps: 10000,
	YCSBLoad: 10000, YCSBOps: 10000,
	Threads: []int{1, 4}, MaxThreads: 4,
	CacheBytes: 128 << 10,
}

// Observation 2: unflushed multi-cacheline writes to cold memory
// amplify; flushing restores bandwidth.
func TestFig1Observation2(t *testing.T) {
	f := fig1Bandwidth(tinyScale, false, writeF, 1024)
	nf := fig1Bandwidth(tinyScale, false, writeNF, 1024)
	if nf >= f {
		t.Fatalf("cold 1KB: write-nf %.2f GB/s >= write-f %.2f GB/s (no amplification)", nf, f)
	}
}

// Observation 3: under skew, removing flushes wins (hot writes are
// absorbed by the persistent cache).
func TestFig1Observation3(t *testing.T) {
	f := fig1Bandwidth(tinyScale, true, writeF, 256)
	nf := fig1Bandwidth(tinyScale, true, writeNF, 256)
	if nf <= f {
		t.Fatalf("zipf 256B: write-nf %.2f GB/s <= write-f %.2f GB/s", nf, f)
	}
}

// Observation 4: below one cacheline, write-nf is never worse.
func TestFig1Observation4(t *testing.T) {
	f := fig1Bandwidth(tinyScale, false, writeF, 16)
	nf := fig1Bandwidth(tinyScale, false, writeNF, 16)
	if nf < f {
		t.Fatalf("16B: write-nf %.2f GB/s < write-f %.2f GB/s", nf, f)
	}
}

// Fig 8 headline: Spash reads about one XPLine per search and writes
// about one XPLine per update, and its PM traffic per operation is the
// lowest of the roster.
func TestFig8SpashAccessCounts(t *testing.T) {
	phases, err := microPhases(SpashEntry(), tinyScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	se := phases["search"]
	if xp := se.PerOp(se.Mem.XPLineReads); xp > 1.6 {
		t.Fatalf("Spash search reads %.2f XPLines/op, want ~1", xp)
	}
	up := phases["update"]
	if xp := up.PerOp(up.Mem.XPLineWrites); xp > 1.6 {
		t.Fatalf("Spash update writes %.2f XPLines/op, want ~1", xp)
	}
	in := phases["insert"]
	if xp := in.PerOp(in.Mem.XPLineWrites); xp > 2.0 {
		t.Fatalf("Spash insert writes %.2f XPLines/op, want ~1.1-1.5", xp)
	}

	// Dash (bucket-granular metadata) must cost more per search.
	dashPhases, err := microPhases(MicroRoster()[3], tinyScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := dashPhases["search"]
	if ds.PerOp(ds.Mem.CachelineReads) <= se.PerOp(se.Mem.CachelineReads) {
		t.Fatalf("Dash search cacheline reads (%.2f) <= Spash (%.2f)",
			ds.PerOp(ds.Mem.CachelineReads), se.PerOp(se.Mem.CachelineReads))
	}
}

// Fig 10 headline: with many workers under skew, Spash beats the
// lock-based baselines on the balanced mix.
func TestFig10SpashWins(t *testing.T) {
	s := tinyScale
	results := map[string]float64{}
	for _, e := range []Entry{SpashEntry(), {Name: "Level", New: MicroRoster()[4].New}, {Name: "CCEH", New: MicroRoster()[2].New}} {
		ix, err := mustOpen(e, s)
		if err != nil {
			t.Fatal(err)
		}
		loadIndex(ix, s.MaxThreads, s.YCSBLoad, 8, false)
		r := RunWorkload("bal", ix, s.MaxThreads, s.YCSBOps/s.MaxThreads, e.Pipeline,
			mixSource(ycsb.Balanced, uint64(s.YCSBLoad), ycsb.DefaultTheta, 8, 42))
		results[e.Name] = r.Throughput()
	}
	if results["Spash"] <= results["Level"] || results["Spash"] <= results["CCEH"] {
		t.Fatalf("Spash %.2f not above Level %.2f / CCEH %.2f", results["Spash"], results["Level"], results["CCEH"])
	}
}

// The figure runners must produce output without errors at tiny scale.
func TestFigureRunnersProduceOutput(t *testing.T) {
	runners := map[string]func(*bytes.Buffer) error{
		"fig8":   func(b *bytes.Buffer) error { return Fig8(b, tinyScale) },
		"fig9":   func(b *bytes.Buffer) error { return Fig9(b, tinyScale) },
		"fig12b": func(b *bytes.Buffer) error { return Fig12b(b, tinyScale) },
		"table1": func(b *bytes.Buffer) error { return Table1(b, tinyScale) },
	}
	for name, fn := range runners {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "###") {
			t.Fatalf("%s produced no table", name)
		}
	}
}

// Fig 12(b) shape: compacted-flush must write fewer XPLines per insert
// than the no-compaction policy.
func TestFig12bShape(t *testing.T) {
	measure := func(policy core.InsertPolicy) float64 {
		ix, err := adapters.NewSpashFactory("Spash", core.Config{Insert: policy})(tinyScale.Platform())
		if err != nil {
			t.Fatal(err)
		}
		r := loadIndex(ix, tinyScale.MaxThreads, tinyScale.YCSBOps, 64, false)
		return r.PerOp(r.Mem.XPLineWrites)
	}
	compacted := measure(core.InsertCompactedFlush)
	naive := measure(core.InsertNoCompact)
	if compacted >= naive {
		t.Fatalf("compacted-flush %.2f XPLine-writes/op >= no-compaction %.2f", compacted, naive)
	}
}

// The virtual-time model: scaling workers must increase throughput for
// the lock-free Spash search phase (until a bandwidth bound).
func TestScalingImprovesSearchThroughput(t *testing.T) {
	s := tinyScale
	get := func(th int) float64 {
		ix, err := mustOpen(SpashEntry(), s)
		if err != nil {
			t.Fatal(err)
		}
		loadIndex(ix, th, s.MicroLoad, 8, true)
		r := RunWorkload("search", ix, th, s.MicroOps/th, true,
			uniformSource(ycsb.OpSearch, uint64(s.MicroLoad), 7))
		return r.Throughput()
	}
	one := get(1)
	four := get(4)
	if four <= one {
		t.Fatalf("4 workers (%.2f Mops) not faster than 1 (%.2f Mops)", four, one)
	}
}

func TestLatencyHistogram(t *testing.T) {
	ix, err := mustOpen(SpashEntry(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	res, hist := RunWithLatency("insert", ix, 4, 2000, insertSource(0, 2000))
	if res.Ops != 8000 {
		t.Fatalf("ops = %d", res.Ops)
	}
	p50, p99, max := hist.Percentile(50), hist.Percentile(99), hist.Max()
	if !(p50 > 0 && p50 <= p99 && p99 <= max) {
		t.Fatalf("percentiles not monotone: %d %d %d", p50, p99, max)
	}
	if s := hist.String(); !strings.Contains(s, "p99") {
		t.Fatalf("summary: %s", s)
	}
}

// The sharded adapter must run through the multi-pool measure path:
// media traffic is the sum over devices, worker time the sum of
// per-shard clocks, and every op must land and be found again.
func TestShardedAdapterWorkload(t *testing.T) {
	s := tinyScale
	ix, err := NewShardedEntry("Spash-2sh", 2).New(s.Platform())
	if err != nil {
		t.Fatal(err)
	}
	per := s.YCSBOps / s.MaxThreads
	r := RunWorkload("insert", ix, s.MaxThreads, per, false, insertSource(0, per))
	if r.Ops != int64(s.MaxThreads*per) {
		t.Fatalf("ops = %d, want %d", r.Ops, s.MaxThreads*per)
	}
	if ix.Len() != s.MaxThreads*per {
		t.Fatalf("Len = %d, want %d", ix.Len(), s.MaxThreads*per)
	}
	if r.Mem.MediaWriteBytes() == 0 {
		t.Fatal("no media writes metered across shard devices")
	}
	sr := RunWorkload("search", ix, s.MaxThreads, per, true,
		uniformSource(ycsb.OpSearch, uint64(s.MaxThreads*per), 11))
	if sr.Throughput() <= 0 {
		t.Fatalf("search throughput %.2f", sr.Throughput())
	}
}

// The shards figure must run end to end and emit every panel.
func TestFigShardsProducesOutput(t *testing.T) {
	old := shardCounts
	defer func() { shardCounts = old }()
	SetShardCounts([]int{1, 2})
	var buf bytes.Buffer
	if err := FigShards(&buf, tinyScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Shard scaling (a)", "Shard scaling (b)", "HTM aborts", "media writes", "1sh", "2sh"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestMixSourceForUniformAndZipf(t *testing.T) {
	for _, theta := range []float64{0, ycsb.DefaultTheta} {
		src := MixSourceFor(ycsb.Balanced, 1000, theta, 8, 7)
		next := src(0)
		counts := map[ycsb.OpKind]int{}
		for i := 0; i < 2000; i++ {
			op := next(i)
			counts[op.Kind]++
			if len(op.Key) != 8 {
				t.Fatalf("key len %d", len(op.Key))
			}
		}
		if counts[ycsb.OpSearch] == 0 || counts[ycsb.OpUpdate] == 0 {
			t.Fatalf("theta=%v: mix not mixed: %v", theta, counts)
		}
	}
}

// The stop-the-world doubling ablation must degrade the tail of
// concurrent operations relative to staged doubling.
func TestMonolithicDoublingHurtsTail(t *testing.T) {
	run := func(mono bool) (float64, int64) {
		ix, err := adapters.NewSpashFactory("Spash",
			core.Config{InitialDepth: 2, MonolithicResize: mono})(tinyScale.Platform())
		if err != nil {
			t.Fatal(err)
		}
		per := 40000 / tinyScale.MaxThreads
		res, hist := RunWithLatency("insert", ix, tinyScale.MaxThreads, per,
			insertSource(0, per))
		return res.Throughput(), hist.Percentile(99.9)
	}
	_, stagedTail := run(false)
	_, monoTail := run(true)
	// The staged design must not have a worse p99.9 than stop-the-world
	// (the paper's §IV-B claim, modulo noise at tiny scale).
	if stagedTail > monoTail*4 {
		t.Fatalf("staged p99.9 %dns far above monolithic %dns", stagedTail, monoTail)
	}
}
