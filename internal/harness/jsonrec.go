package harness

import (
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"

	"spash/internal/ixapi"
	"spash/internal/obs"
	"spash/internal/pmem"
)

// ResultJSON is the serialisable form of one measured phase.
type ResultJSON struct {
	Name      string     `json:"name"`
	Ops       int64      `json:"ops"`
	ElapsedNS int64      `json:"elapsed_ns"`
	Mops      float64    `json:"mops"`
	Bound     string     `json:"bound"`
	Mem       pmem.Stats `json:"mem"`
}

func resultJSON(r Result) ResultJSON {
	return ResultJSON{
		Name:      r.Name,
		Ops:       r.Ops,
		ElapsedNS: r.Elapsed,
		Mops:      r.Throughput(),
		Bound:     r.Bound,
		Mem:       r.Mem,
	}
}

// Artifact is the machine-readable record of one benchmark invocation
// (one figure, or one YCSB run), written as BENCH_<name>.json so CI
// and analysis scripts consume measurements without parsing tables.
type Artifact struct {
	Schema  string            `json:"schema"`
	Name    string            `json:"name"`
	Config  map[string]string `json:"config,omitempty"`
	Results []ResultJSON      `json:"results"`
	Latency *LatencySummary   `json:"latency,omitempty"`
	// Obs is the unified observability snapshot of the measured phase
	// (media traffic, HTM, structural counters, probe/occupancy
	// histograms, derived rates); ObsTotal is the cumulative snapshot
	// over the index's whole lifetime, including the load phase (this
	// is where splits, doublings and segment churn show up).
	Obs      *obs.Snapshot `json:"obs,omitempty"`
	ObsTotal *obs.Snapshot `json:"obs_total,omitempty"`
	// ObsShards are the per-shard cumulative snapshots (shard order) of
	// a sharded index under test — the per-shard phase-latency and
	// abort breakdown the attribution tooling (spash-top, obs-smoke)
	// reads.
	ObsShards []obs.Snapshot `json:"obs_shards,omitempty"`
}

// ArtifactSchema versions the JSON layout.
const ArtifactSchema = "spash-bench/v1"

// Recorder accumulates the phases of one benchmark invocation into an
// Artifact. Install it with SetRecorder; the run functions
// (RunWorkload, RunPhase, RunWithLatency) then record every measured
// phase, the latest obs snapshot of the index under test, and latency
// summaries automatically.
type Recorder struct {
	mu  sync.Mutex
	art Artifact
}

// NewRecorder starts an artifact named name (e.g. "fig10", "ycsb_a")
// with optional free-form configuration (flag values, scale).
func NewRecorder(name string, config map[string]string) *Recorder {
	return &Recorder{art: Artifact{Schema: ArtifactSchema, Name: name, Config: config}}
}

func (r *Recorder) record(res Result) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.art.Results = append(r.art.Results, resultJSON(res))
	r.mu.Unlock()
}

// AddResult appends an externally measured phase — e.g. a wall-clock
// network run, which never passes through the virtual-time measure
// path — to the artifact.
func (r *Recorder) AddResult(res ResultJSON) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.art.Results = append(r.art.Results, res)
	r.mu.Unlock()
}

// SetObs attaches (or replaces) the artifact's phase obs snapshot.
func (r *Recorder) SetObs(s obs.Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.art.Obs = &s
	r.mu.Unlock()
}

// SetObsTotal attaches (or replaces) the cumulative obs snapshot.
func (r *Recorder) SetObsTotal(s obs.Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.art.ObsTotal = &s
	r.mu.Unlock()
}

// SetObsShards attaches (or replaces) the per-shard snapshots.
func (r *Recorder) SetObsShards(s []obs.Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.art.ObsShards = s
	r.mu.Unlock()
}

// SetLatency attaches the artifact's op-latency summary.
func (r *Recorder) SetLatency(s LatencySummary) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.art.Latency = &s
	r.mu.Unlock()
}

// Obs returns the latest attached snapshot, preferring the cumulative
// one (zero when none); it backs the /metrics source of the bench
// commands.
func (r *Recorder) Obs() obs.Snapshot {
	if r == nil {
		return obs.Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.art.ObsTotal != nil {
		return *r.art.ObsTotal
	}
	if r.art.Obs == nil {
		return obs.Snapshot{}
	}
	return *r.art.Obs
}

// Artifact returns a copy of the accumulated artifact.
func (r *Recorder) Artifact() Artifact {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.art
	a.Results = append([]ResultJSON(nil), r.art.Results...)
	return a
}

// WriteFile writes the artifact as indented JSON.
func (r *Recorder) WriteFile(path string) error {
	a := r.Artifact()
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// activeRec is the process-wide recorder hook; nil disables recording
// (the default, zero overhead beyond one atomic load per phase).
var activeRec atomic.Pointer[Recorder]

// SetRecorder installs (or, with nil, removes) the active recorder.
func SetRecorder(r *Recorder) {
	activeRec.Store(r)
}

func recorder() *Recorder { return activeRec.Load() }

// recordPhase files a phase result plus the index's cumulative obs
// snapshot (when it exposes one) with the active recorder.
func recordPhase(ix ixapi.Index, res Result) {
	rec := recorder()
	if rec == nil {
		return
	}
	rec.record(res)
	if snap, ok := ObsSnapshotOf(ix); ok {
		snap.Ops = res.Ops
		snap.Finalize()
		rec.SetObsTotal(snap)
	}
	if snaps, ok := ObsSnapshotsOf(ix); ok {
		for i := range snaps {
			snaps[i].Finalize()
		}
		rec.SetObsShards(snaps)
	}
}

// ObsSnapshotOf extracts the unified observability snapshot from an
// index that supports it (the Spash adapter does; baselines need not).
func ObsSnapshotOf(ix ixapi.Index) (obs.Snapshot, bool) {
	type snapshotter interface{ ObsSnapshot() obs.Snapshot }
	if s, ok := ix.(snapshotter); ok {
		return s.ObsSnapshot(), true
	}
	return obs.Snapshot{}, false
}

// ObsSnapshotsOf extracts per-shard snapshots from a sharded index
// that exposes them (the sharded adapter does).
func ObsSnapshotsOf(ix ixapi.Index) ([]obs.Snapshot, bool) {
	type sharded interface{ ObsSnapshots() []obs.Snapshot }
	if s, ok := ix.(sharded); ok {
		return s.ObsSnapshots(), true
	}
	return nil, false
}

// SlowOpsOf extracts the slow-op feed from an index that exposes one
// (the Spash and sharded adapters do) — used to wire the slowlog HTTP
// endpoint.
func SlowOpsOf(ix ixapi.Index) (func(n int) []obs.SlowOp, bool) {
	type slowOpser interface{ SlowOps(n int) []obs.SlowOp }
	if s, ok := ix.(slowOpser); ok {
		return s.SlowOps, true
	}
	return nil, false
}

// ObsRegistryOf extracts the obs registry from an index that exposes
// one (nil otherwise) — used to wire the trace-ring HTTP endpoint.
func ObsRegistryOf(ix ixapi.Index) *obs.Registry {
	type regger interface{ Obs() *obs.Registry }
	if s, ok := ix.(regger); ok {
		return s.Obs()
	}
	return nil
}
