package harness

import (
	"fmt"
	"sort"
	"sync"

	"spash/internal/ixapi"
	"spash/internal/ycsb"
)

// LatencyHist collects per-operation virtual latencies (the delta of
// the worker clock across one operation) so tail behaviour can be
// reported — the paper credits collaborative staged doubling with
// "reduc[ing] the tail latency" (§IV-B).
type LatencyHist struct {
	mu      sync.Mutex
	samples []int64
	sorted  []int64 // cached ascending copy, invalidated by add
}

func (h *LatencyHist) add(batch []int64) {
	h.mu.Lock()
	h.samples = append(h.samples, batch...)
	h.sorted = nil
	h.mu.Unlock()
}

// Add records a batch of externally measured latency samples (ns) —
// the wall-clock path of spash-ycsb -net, which never goes through
// the virtual-clock sampling of RunWithLatency.
func (h *LatencyHist) Add(batch []int64) { h.add(batch) }

// sortedSamples returns an ascending copy of the samples, built under
// the lock on first use after a mutation and cached so repeated
// percentile queries sort once. The samples themselves are never
// reordered, so concurrent adders and readers don't race.
func (h *LatencyHist) sortedSamples() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sorted == nil && len(h.samples) > 0 {
		h.sorted = append([]int64(nil), h.samples...)
		sort.Slice(h.sorted, func(i, j int) bool { return h.sorted[i] < h.sorted[j] })
	}
	return h.sorted
}

// Percentile returns the p-th percentile latency in virtual ns.
func (h *LatencyHist) Percentile(p float64) int64 {
	s := h.sortedSamples()
	if len(s) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// LatencySummary is the JSON-artifact form of the distribution
// (virtual ns).
type LatencySummary struct {
	Count int   `json:"count"`
	P50   int64 `json:"p50_ns"`
	P90   int64 `json:"p90_ns"`
	P99   int64 `json:"p99_ns"`
	P999  int64 `json:"p999_ns"`
	Max   int64 `json:"max_ns"`
}

// Summary captures the percentiles reported in the paper's latency
// figures into a serialisable struct.
func (h *LatencyHist) Summary() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

// Max returns the worst-case latency.
func (h *LatencyHist) Max() int64 { return h.Percentile(100) }

// String summarises the distribution.
func (h *LatencyHist) String() string {
	return fmt.Sprintf("p50=%dns p99=%dns p99.9=%dns max=%dns",
		h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.Max())
}

// RunWithLatency is RunWorkload (sequential path only) that also
// samples every operation's virtual latency.
func RunWithLatency(name string, ix ixapi.Index, workers, opsPerWorker int, src OpSource) (Result, *LatencyHist) {
	m := startMeasure(ix)
	clocks := make([]int64, workers)
	hist := &LatencyHist{}

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := ix.NewWorker()
			defer w.Close()
			resetWorkerClock(w)
			next := src(id)
			local := make([]int64, 0, opsPerWorker)
			prev := int64(0)
			for i := 0; i < opsPerWorker; i++ {
				op := next(i)
				switch op.Kind {
				case ycsb.OpSearch:
					w.Search(op.Key, nil)
				case ycsb.OpUpdate:
					w.Update(op.Key, op.Val)
				case ycsb.OpInsert:
					w.Insert(op.Key, op.Val)
				case ycsb.OpDelete:
					w.Delete(op.Key)
				}
				// Per-op sampling reads the worker's total clock (the
				// sum across shard contexts for partitioned workers),
				// so each sample is the full virtual cost of that op.
				now := workerClock(w)
				local = append(local, now-prev)
				prev = now
			}
			clocks[id] = prev
			hist.add(local)
		}(id)
	}
	wg.Wait()

	res := m.finish(name, clocks, int64(workers)*int64(opsPerWorker))
	recorder().SetLatency(hist.Summary())
	return res, hist
}
