package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// table accumulates a labelled grid and renders it aligned.
type table struct {
	title   string
	columns []string
	rows    [][]string
}

func newTable(title string, columns ...string) *table {
	return &table{title: title, columns: columns}
}

func (t *table) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) write(w io.Writer) {
	fmt.Fprintf(w, "\n### %s\n\n", t.title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.columns, "\t"))
	sep := make([]string, len(t.columns))
	for i, c := range t.columns {
		sep[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, r := range t.rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

func mops(r Result) string { return fmt.Sprintf("%.2f", r.Throughput()) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
