package harness

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"spash/internal/baselines/cceh"
	"spash/internal/baselines/clevel"
	"spash/internal/baselines/dash"
	"spash/internal/baselines/halo"
	"spash/internal/baselines/levelhash"
	"spash/internal/baselines/plush"

	"spash/internal/adapters"
	"spash/internal/core"
	"spash/internal/ixapi"
	"spash/internal/ycsb"
)

// Entry is one competitor in a figure.
type Entry struct {
	Name string
	New  ixapi.Factory
	// Pipeline enables Spash's batched pipelined execution for this
	// entry's read paths.
	Pipeline bool
}

// SpashEntry is the full-featured Spash configuration.
func SpashEntry() Entry {
	return Entry{Name: "Spash", New: adapters.NewSpashFactory("Spash", core.Config{}), Pipeline: true}
}

// SpashNoPipeEntry is Spash without pipelined execution (the "Spash
// w/o pipeline" series of Fig 7/10/11).
func SpashNoPipeEntry() Entry {
	return Entry{Name: "Spash-noPipe", New: adapters.NewSpashFactory("Spash-noPipe", core.Config{PipelineDepth: 1})}
}

// MicroRoster is the Fig 7/8/9 competitor set (the paper excludes Halo
// from the micro-benchmarks: its full-DRAM table does not survive the
// large dataset).
func MicroRoster() []Entry {
	return []Entry{
		SpashEntry(),
		SpashNoPipeEntry(),
		{Name: "CCEH", New: cceh.NewFactory()},
		{Name: "Dash", New: dash.NewFactory()},
		{Name: "Level", New: levelhash.NewFactory()},
		{Name: "CLevel", New: clevel.NewFactory()},
		{Name: "Plush", New: plush.NewFactory()},
	}
}

// MacroRoster is the YCSB competitor set (Fig 10/11), including Halo.
func MacroRoster() []Entry {
	return append(MicroRoster(), Entry{Name: "Halo", New: halo.NewFactory()})
}

// --- key/value generation -------------------------------------------

// kbuf/vbuf are per-worker scratch sizes.
const keyBytes16 = 16

// inlineKV generates 8-byte inline keys and values for key id.
func inlineKV(buf []byte, id uint64) []byte {
	binary.LittleEndian.PutUint64(buf[:8], id)
	return buf[:8]
}

// uniformSource returns an OpSource issuing `kind` ops on uniform keys
// in [0, n) with inline 8B KVs.
func uniformSource(kind ycsb.OpKind, n uint64, seed int64) OpSource {
	return func(id int) func(i int) Op {
		rng := rand.New(rand.NewSource(seed + int64(id)*7919))
		kb := make([]byte, 8)
		vb := make([]byte, 8)
		return func(i int) Op {
			k := rng.Uint64() % n
			binary.LittleEndian.PutUint64(kb, k)
			binary.LittleEndian.PutUint64(vb, k^0xABCD)
			return Op{Kind: kind, Key: kb, Val: vb}
		}
	}
}

// insertSource returns an OpSource inserting fresh unique inline keys
// starting at base (per-worker disjoint ranges).
func insertSource(base uint64, perWorker int) OpSource {
	return func(id int) func(i int) Op {
		kb := make([]byte, 8)
		vb := make([]byte, 8)
		start := base + uint64(id)*uint64(perWorker)
		return func(i int) Op {
			k := start + uint64(i)
			binary.LittleEndian.PutUint64(kb, k)
			binary.LittleEndian.PutUint64(vb, k+1)
			return Op{Kind: ycsb.OpInsert, Key: kb, Val: vb}
		}
	}
}

// mixSource returns an OpSource issuing a YCSB mix over a scrambled-
// zipfian key distribution, with values of valSize bytes (8 = inline).
func mixSource(mix ycsb.Mix, n uint64, theta float64, valSize int, seed int64) OpSource {
	base := ycsb.NewScrambled(n, theta, seed)
	return func(id int) func(i int) Op {
		gen := base.Fork(seed + int64(id)*104729)
		rng := rand.New(rand.NewSource(seed + int64(id)*15485863))
		kb := make([]byte, keyBytes16)
		vb := make([]byte, valSize)
		return func(i int) Op {
			kid := gen.Next()
			kind := mix.Pick(rng)
			var key []byte
			if valSize == 8 {
				key = inlineKV(kb, kid)
				binary.LittleEndian.PutUint64(vb, kid^uint64(i))
				return Op{Kind: kind, Key: key, Val: vb[:8]}
			}
			key = ycsb.KeyBytes(kb, kid)
			ycsb.FillValue(vb, kid^uint64(i))
			return Op{Kind: kind, Key: key, Val: vb}
		}
	}
}

// LoadSource is the bulk-load op stream: worker id inserts keys
// [id*per, (id+1)*per) with the standard key/value encoding (8 =
// inline 8-byte keys, otherwise 16-byte keys). Shared by the harness
// load phase and the network load of spash-ycsb -net, so both sides
// of a net-vs-inproc comparison populate an identical keyspace.
func LoadSource(per, valSize int) OpSource {
	return func(id int) func(i int) Op {
		kb := make([]byte, keyBytes16)
		vb := make([]byte, valSize)
		start := uint64(id * per)
		return func(i int) Op {
			kid := start + uint64(i)
			if valSize == 8 {
				binary.LittleEndian.PutUint64(vb, kid+1)
				return Op{Kind: ycsb.OpInsert, Key: inlineKV(kb, kid), Val: vb[:8]}
			}
			ycsb.FillValue(vb, kid)
			return Op{Kind: ycsb.OpInsert, Key: ycsb.KeyBytes(kb, kid), Val: vb}
		}
	}
}

// loadIndex bulk-loads n keys with the given value size (8 = inline
// 8-byte keys, otherwise 16-byte keys). Returns the load-phase result.
func loadIndex(ix ixapi.Index, workers, n, valSize int, pipeline bool) Result {
	per := n / workers
	return RunWorkload("load", ix, workers, per, pipeline, LoadSource(per, valSize))
}

// mustOpen builds an entry's index on the scale's platform.
func mustOpen(e Entry, s Scale) (ixapi.Index, error) {
	ix, err := e.New(s.Platform())
	if err != nil {
		return nil, fmt.Errorf("building %s: %w", e.Name, err)
	}
	return ix, nil
}

// LoadIndex is the exported bulk-load helper (see loadIndex).
func LoadIndex(ix ixapi.Index, workers, n, valSize int, pipeline bool) Result {
	return loadIndex(ix, workers, n, valSize, pipeline)
}

// MixSourceFor returns a run-phase OpSource: scrambled-zipfian with
// the given skew, or uniform when theta <= 0.
func MixSourceFor(mix ycsb.Mix, n uint64, theta float64, valSize int, seed int64) OpSource {
	if theta > 0 {
		return mixSource(mix, n, theta, valSize, seed)
	}
	return func(id int) func(i int) Op {
		gen := ycsb.NewUniform(n, seed+int64(id)*104729)
		rng := rand.New(rand.NewSource(seed + int64(id)*15485863))
		kb := make([]byte, keyBytes16)
		vb := make([]byte, valSize)
		return func(i int) Op {
			kid := gen.Next()
			kind := mix.Pick(rng)
			if valSize == 8 {
				binary.LittleEndian.PutUint64(vb, kid^uint64(i))
				return Op{Kind: kind, Key: inlineKV(kb, kid), Val: vb[:8]}
			}
			ycsb.FillValue(vb, kid^uint64(i))
			return Op{Kind: kind, Key: ycsb.KeyBytes(kb, kid), Val: vb}
		}
	}
}
