// Package harness drives the reproduction of the paper's evaluation
// (§VI): it runs workloads against the indexes through the common
// ixapi interface, measures them in virtual time, and regenerates
// every table and figure (see figures.go and EXPERIMENTS.md).
//
// # The virtual-time elapsed model
//
// Workers are goroutines, but throughput is measured in simulated
// nanoseconds, independent of the host CPU count. Each worker's pmem
// context accumulates the latency of its memory events; locks and HTM
// commits accumulate serial time in a vsync.Group; the pool counts the
// bytes that reach PM media. A phase's elapsed time is the binding
// constraint:
//
//	elapsed = max( max worker clock,            // CPU/latency bound
//	               Δ hottest-lock serial time,  // contention bound
//	               Δ media read bytes  / read bandwidth,
//	               Δ media write bytes / write bandwidth )
//
// which reproduces the paper's bottleneck structure: lock-based
// designs saturate on hot locks under skew, write-heavy designs on PM
// write bandwidth, read-heavy designs on read latency (until
// pipelining hides it).
package harness

import (
	"fmt"
	"sync"

	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/vsync"
)

// Result is one measured phase.
type Result struct {
	Name    string
	Ops     int64
	Elapsed int64 // virtual ns
	// Mem is the phase's memory-event delta.
	Mem pmem.Stats
	// Bound names the binding constraint (cpu, lock, read-bw,
	// write-bw), useful when interpreting shapes.
	Bound string
}

// Throughput returns million operations per (virtual) second.
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Elapsed) * 1e3
}

// PerOp returns a per-operation average of a counter.
func (r Result) PerOp(count uint64) float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(count) / float64(r.Ops)
}

// measure snapshots every device and serialisation group of an index
// at phase start; finish computes the phase's deltas. Partitioned
// indexes (ixapi.MultiPool/MultiGroup) are metered per shard: media
// time is bounded by the hottest device (independent DIMM bandwidth)
// and serial time by the hottest group, while the reported memory
// delta sums all devices. For monolithic indexes this reduces exactly
// to the previous single-pool arithmetic.
type measure struct {
	ix      ixapi.Index
	pools   []*pmem.Pool
	groups  []*vsync.Group
	mem0    []pmem.Stats
	serial0 []int64
}

func startMeasure(ix ixapi.Index) *measure {
	m := &measure{ix: ix}
	if mp, ok := ix.(ixapi.MultiPool); ok {
		m.pools = mp.Pools()
	} else {
		m.pools = []*pmem.Pool{ix.Pool()}
	}
	if mg, ok := ix.(ixapi.MultiGroup); ok {
		m.groups = mg.Groups()
	} else {
		m.groups = []*vsync.Group{ix.Group()}
	}
	m.mem0 = make([]pmem.Stats, len(m.pools))
	for i, p := range m.pools {
		m.mem0[i] = p.Stats()
	}
	m.serial0 = make([]int64, len(m.groups))
	for i, g := range m.groups {
		m.serial0[i] = g.MaxSerialNS()
	}
	return m
}

func (m *measure) finish(name string, clocks []int64, ops int64) Result {
	deltas := make([]pmem.Stats, len(m.pools))
	for i, p := range m.pools {
		deltas[i] = p.Stats().Sub(m.mem0[i])
	}
	serial := int64(0)
	for i, g := range m.groups {
		if d := g.MaxSerialNS() - m.serial0[i]; d > serial {
			serial = d
		}
	}
	res := combine(name, m.pools[0].Config().Timing, clocks, deltas, serial, ops)
	recordPhase(m.ix, res)
	return res
}

// resetWorkerClock and workerClock route through the per-shard clock
// set of a partitioned worker when it has one.
func resetWorkerClock(w ixapi.Worker) {
	if mc, ok := w.(ixapi.MultiCtxWorker); ok {
		mc.ResetClocks()
		return
	}
	w.Ctx().ResetClock()
}

func workerClock(w ixapi.Worker) int64 {
	if mc, ok := w.(ixapi.MultiCtxWorker); ok {
		return mc.TotalClock()
	}
	return w.Ctx().Clock()
}

// RunPhase executes fn(worker, workerID, opIndex) for opsPerWorker
// iterations on each of workers goroutines and measures the phase.
func RunPhase(name string, ix ixapi.Index, workers, opsPerWorker int, fn func(w ixapi.Worker, id, i int)) Result {
	m := startMeasure(ix)
	clocks := make([]int64, workers)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := ix.NewWorker()
			defer w.Close()
			resetWorkerClock(w)
			for i := 0; i < opsPerWorker; i++ {
				fn(w, id, i)
			}
			clocks[id] = workerClock(w)
		}(id)
	}
	wg.Wait()
	return m.finish(name, clocks, int64(workers)*int64(opsPerWorker))
}

// Scale bundles the workload sizes; the paper's 20M/100M-key, 8G-op
// runs are scaled down to fit a laptop-class container, preserving the
// ratios that matter (table ≫ CPU cache, ops ≫ table warmup).
type Scale struct {
	// MicroLoad is the preload size of the micro-benchmarks (paper:
	// 20M).
	MicroLoad int
	// MicroOps is the per-phase operation count (paper: 8G).
	MicroOps int
	// YCSBLoad and YCSBOps size the macro benchmark (paper: 100M +
	// 100M).
	YCSBLoad int
	YCSBOps  int
	// Threads is the worker counts swept in scalability figures
	// (paper: 1..56 step 7).
	Threads []int
	// MaxThreads is the fixed worker count of single-point figures
	// (paper: 56).
	MaxThreads int
	// CacheBytes sizes the simulated CPU cache. It must stay well
	// below the table footprint (the paper's 42 MB L3 is ~3%% of its
	// 100M-key tables) or PM traffic disappears into the cache.
	CacheBytes uint64
}

// ScaleSmall is for tests and quick runs; ScaleMedium is the default
// for regenerating the figures.
var (
	ScaleSmall = Scale{
		MicroLoad: 20000, MicroOps: 20000,
		YCSBLoad: 20000, YCSBOps: 20000,
		Threads: []int{1, 4, 8}, MaxThreads: 8,
		CacheBytes: 256 << 10,
	}
	ScaleMedium = Scale{
		MicroLoad: 200000, MicroOps: 200000,
		YCSBLoad: 200000, YCSBOps: 200000,
		Threads: []int{1, 7, 14, 28, 56}, MaxThreads: 56,
		CacheBytes: 1 << 20,
	}
	ScaleLarge = Scale{
		MicroLoad: 1000000, MicroOps: 1000000,
		YCSBLoad: 1000000, YCSBOps: 1000000,
		Threads: []int{1, 7, 14, 28, 42, 56}, MaxThreads: 56,
		CacheBytes: 4 << 20,
	}
)

// ScaleByName resolves a -scale flag value.
func ScaleByName(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "", "medium":
		return ScaleMedium, nil
	case "large":
		return ScaleLarge, nil
	}
	return Scale{}, fmt.Errorf("unknown scale %q (small|medium|large)", s)
}

// Platform returns the simulated-device configuration used by all
// experiments: pool sized for the workload, an 8 MB cache (scaled-down
// analogue of the testbed's 42 MB L3 against its 100M-key tables).
func (s Scale) Platform() pmem.Config {
	poolSize := uint64(s.YCSBLoad) * 4096
	if poolSize < (512 << 20) {
		poolSize = 512 << 20
	}
	cache := s.CacheBytes
	if cache == 0 {
		cache = 1 << 20
	}
	return pmem.Config{
		PoolSize:  poolSize,
		CacheSize: cache,
		Mode:      pmem.EADR,
	}
}
