package harness

import (
	"sync"

	"spash/internal/adapters"
	"spash/internal/core"
	"spash/internal/ixapi"
	"spash/internal/pmem"
	"spash/internal/ycsb"
)

// Op is one generated request.
type Op struct {
	Kind ycsb.OpKind
	Key  []byte
	Val  []byte
}

// OpSource generates a worker's operation stream; it is called once
// per worker (id) and must return an independent deterministic stream.
type OpSource func(id int) func(i int) Op

// batchSize is the request-queue chunk handed to pipelined execution.
const batchSize = 64

// RunWorkload measures a phase of opsPerWorker requests on each of
// workers goroutines. When pipeline is true and the index supports
// batched execution (Spash), requests are issued through the pipelined
// path (§III-D); otherwise one call per request.
func RunWorkload(name string, ix ixapi.Index, workers, opsPerWorker int, pipeline bool, src OpSource) Result {
	m := startMeasure(ix)
	clocks := make([]int64, workers)

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := ix.NewWorker()
			defer w.Close()
			resetWorkerClock(w)
			next := src(id)
			if bw, ok := w.(adapters.BatchWorker); ok && pipeline {
				runBatched(bw, next, opsPerWorker)
			} else {
				runSequential(w, next, opsPerWorker)
			}
			clocks[id] = workerClock(w)
		}(id)
	}
	wg.Wait()
	return m.finish(name, clocks, int64(workers)*int64(opsPerWorker))
}

func runSequential(w ixapi.Worker, next func(i int) Op, n int) {
	for i := 0; i < n; i++ {
		op := next(i)
		switch op.Kind {
		case ycsb.OpSearch:
			w.Search(op.Key, nil)
		case ycsb.OpUpdate:
			w.Update(op.Key, op.Val)
		case ycsb.OpInsert:
			w.Insert(op.Key, op.Val)
		case ycsb.OpDelete:
			w.Delete(op.Key)
		}
	}
}

func runBatched(bw adapters.BatchWorker, next func(i int) Op, n int) {
	batch := make([]core.BatchOp, 0, batchSize)
	// Keys/values must stay stable for the whole batch: the generator
	// may reuse buffers, so copy into per-slot scratch.
	type scratch struct{ k, v []byte }
	bufs := make([]scratch, batchSize)
	flush := func() {
		if len(batch) > 0 {
			bw.ExecBatch(batch)
			batch = batch[:0]
		}
	}
	for i := 0; i < n; i++ {
		op := next(i)
		s := &bufs[len(batch)]
		s.k = append(s.k[:0], op.Key...)
		s.v = append(s.v[:0], op.Val...)
		var kind core.OpKind
		switch op.Kind {
		case ycsb.OpSearch:
			kind = core.OpSearch
		case ycsb.OpUpdate:
			kind = core.OpUpdate
		case ycsb.OpInsert:
			kind = core.OpInsert
		case ycsb.OpDelete:
			kind = core.OpDelete
		}
		batch = append(batch, core.BatchOp{Kind: kind, Key: s.k, Value: s.v})
		if len(batch) == batchSize {
			flush()
		}
	}
	flush()
}

func combine(name string, t pmem.Timing, clocks []int64, memDeltas []pmem.Stats, serial int64, ops int64) Result {
	var maxClock int64
	for _, c := range clocks {
		if c > maxClock {
			maxClock = c
		}
	}
	// Each device has independent bandwidth: the media-time bound is
	// the hottest device's, while the reported delta sums all of them.
	var mem pmem.Stats
	var readNS, writeNS int64
	for _, d := range memDeltas {
		r := int64(float64(d.MediaReadBytes()) / t.PMReadBandwidth * 1e9)
		w := int64(float64(d.MediaWriteBytes()) / t.PMWriteBandwidth * 1e9)
		if r > readNS {
			readNS = r
		}
		if w > writeNS {
			writeNS = w
		}
		mem = mem.Add(d)
	}
	elapsed, bound := maxClock, "cpu"
	if serial > elapsed {
		elapsed, bound = serial, "lock"
	}
	if readNS > elapsed {
		elapsed, bound = readNS, "read-bw"
	}
	if writeNS > elapsed {
		elapsed, bound = writeNS, "write-bw"
	}
	if elapsed == 0 {
		elapsed = 1
	}
	return Result{Name: name, Ops: ops, Elapsed: elapsed, Mem: mem, Bound: bound}
}
