// Package hash provides the 64-bit hash function used throughout the
// index implementations, together with helpers that carve a hash value
// into the pieces the Spash layout needs: the directory prefix, the
// in-segment bucket suffix, and the key / overflow fingerprints.
//
// The hash is a from-scratch implementation of the public-domain
// XXH64 algorithm, chosen for its speed and its excellent avalanche
// behaviour (extendible hashing relies on uniformly distributed prefix
// bits; fingerprint filtering relies on uniform low bits).
package hash

import "math/bits"

const (
	prime1 = 0x9E3779B185EBCA87
	prime2 = 0xC2B2AE3D27D4EB4F
	prime3 = 0x165667B19E3779F9
	prime4 = 0x85EBCA77C2B2AE63
	prime5 = 0x27D4EB2F165667C5
)

// Sum64 returns the XXH64 hash of b with seed 0.
func Sum64(b []byte) uint64 {
	n := len(b)
	var h uint64
	if n >= 32 {
		var v1, v2, v3, v4 uint64 = prime1, prime2, 0, 0
		v1 += prime2
		v4 -= prime1
		for len(b) >= 32 {
			v1 = round(v1, le64(b[0:8]))
			v2 = round(v2, le64(b[8:16]))
			v3 = round(v3, le64(b[16:24]))
			v4 = round(v4, le64(b[24:32]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = prime5
	}
	h += uint64(n)
	for len(b) >= 8 {
		h ^= round(0, le64(b[0:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(le32(b[0:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	return avalanche(h)
}

// Sum64Uint64 hashes a fixed 8-byte integer key. It is the fast path
// for the paper's inline 8B-8B micro-benchmark keys and is equivalent
// to Sum64 of the key's little-endian encoding.
func Sum64Uint64(k uint64) uint64 {
	h := uint64(prime5) + 8
	h ^= round(0, k)
	h = bits.RotateLeft64(h, 27)*prime1 + prime4
	return avalanche(h)
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime1
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	return acc*prime1 + prime4
}

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Prefix returns the highest depth bits of h, the extendible-hash
// directory index. Prefix(h, 0) is always 0.
func Prefix(h uint64, depth uint) uint64 {
	if depth == 0 {
		return 0
	}
	return h >> (64 - depth)
}

// BucketSuffix returns the lowest bits of h used to pick the main
// bucket within a segment (Spash uses the lowest 2 bits for its 4
// buckets).
func BucketSuffix(h uint64, bits uint) uint64 {
	return h & (1<<bits - 1)
}

// KeyFingerprint returns bits 3..15 of h (13 bits), the fingerprint
// Spash stores in the reserved top bits of a slot's key word to filter
// pointer dereferences during search.
func KeyFingerprint(h uint64) uint16 {
	return uint16(h>>3) & 0x1FFF
}

// OverflowFingerprint returns bits 3..12 of h (10 bits), the hint
// fingerprint stored in main-bucket value words for entries that were
// pushed to an overflow bucket. (10 bits rather than the paper's 12 so
// the value word's 16 reserved bits also fit the inline flag, the
// hint-valid flag and the 4-bit overflow slot index.)
func OverflowFingerprint(h uint64) uint16 {
	return uint16(h>>3) & 0x03FF
}
