package hash

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Known-answer vectors for XXH64 with seed 0, from the reference
// implementation.
func TestSum64KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"abc", 0x44bc2cf5ad770999},
		{"message digest", 0x066ed728fceeb3be},
		{"abcdefghijklmnopqrstuvwxyz", 0xcfe1f278fa89835c},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", 0xaaa46907d3047814},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0xe04a477f19ee145d},
	}
	for _, c := range cases {
		if got := Sum64([]byte(c.in)); got != c.want {
			t.Errorf("Sum64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestSum64Uint64MatchesBytes(t *testing.T) {
	f := func(k uint64) bool {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], k)
		return Sum64Uint64(k) == Sum64(b[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefix(t *testing.T) {
	h := uint64(0xF000000000000001)
	if got := Prefix(h, 0); got != 0 {
		t.Errorf("Prefix depth 0 = %d, want 0", got)
	}
	if got := Prefix(h, 4); got != 0xF {
		t.Errorf("Prefix depth 4 = %#x, want 0xF", got)
	}
	if got := Prefix(h, 64); got != h {
		t.Errorf("Prefix depth 64 = %#x, want %#x", got, h)
	}
}

// Growing the depth by one bit must refine, not scramble, the prefix:
// Prefix(h, d+1) >> 1 == Prefix(h, d). Extendible hashing's split
// correctness depends on this.
func TestPrefixRefines(t *testing.T) {
	f := func(h uint64, d uint8) bool {
		depth := uint(d % 63)
		return Prefix(h, depth+1)>>1 == Prefix(h, depth)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketSuffix(t *testing.T) {
	if got := BucketSuffix(0b1011, 2); got != 0b11 {
		t.Errorf("BucketSuffix = %b, want 11", got)
	}
	if got := BucketSuffix(0b1000, 2); got != 0 {
		t.Errorf("BucketSuffix = %b, want 0", got)
	}
}

func TestFingerprintWidths(t *testing.T) {
	f := func(h uint64) bool {
		return KeyFingerprint(h) < 1<<13 && OverflowFingerprint(h) < 1<<10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The directory distribution should be close to uniform: hashing
// sequential integer keys into 256 prefix buckets should not leave any
// bucket pathologically over- or under-full.
func TestPrefixUniformity(t *testing.T) {
	const n = 1 << 16
	var counts [256]int
	for i := 0; i < n; i++ {
		counts[Prefix(Sum64Uint64(uint64(i)), 8)]++
	}
	want := n / 256
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d has %d keys, want around %d", b, c, want)
		}
	}
}

func BenchmarkSum64Uint64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += Sum64Uint64(uint64(i))
	}
	_ = acc
}

func BenchmarkSum64_16B(b *testing.B) {
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(buf, uint64(i))
		Sum64(buf)
	}
}
