// Package htm emulates Restricted Transactional Memory (Intel TSX) in
// software, providing the programming model the Spash paper builds its
// concurrency control on (§II-C2, §IV).
//
// Real RTM makes the writes of a transaction atomically visible in the
// CPU cache, aborts on data conflicts, and aborts when the read/write
// set exceeds the private cache capacity. On an eADR platform,
// visibility implies durability, which is what lets the paper run a
// persistent index lock-free. Go exposes none of this, so this package
// implements the same contract with a TL2-style software transactional
// memory over the simulated persistent memory (package pmem) and over
// ordinary volatile words (the DRAM directory):
//
//   - word-granularity versioned stripes with a global version clock,
//   - buffered writes applied atomically at commit under striped
//     locks, so concurrent transactions (and raw readers that follow
//     the validation protocol) never observe partial transactions,
//   - Conflict aborts on validation failure or stripe-lock contention,
//   - Capacity aborts when a transaction's footprint exceeds the
//     configured budget (motivating the paper's staged doubling),
//   - Explicit aborts for the two-phase protocol's validation step.
//
// Like hardware transactions, a transaction body may be executed
// several times; it must be free of side effects other than tx.Load*
// and tx.Store*.
//
// Commit serialisation on hot stripes is accounted to a vsync.Group,
// so the virtual-time model sees the (small) coherence cost of many
// cores committing to the same cacheline.
package htm

import (
	"errors"
	"sync"
	"sync/atomic"
	"unsafe"

	"spash/internal/pmem"
	"spash/internal/vsync"
)

// Code classifies the outcome of a transaction attempt, mirroring the
// RTM abort status word.
type Code int

const (
	// Committed: the transaction's writes are visible (and, under
	// eADR, durable).
	Committed Code = iota
	// Conflict: a data conflict with a concurrent transaction or a
	// non-transactional bumping store; retrying may succeed.
	Conflict
	// Capacity: the read or write set exceeded the hardware budget;
	// retrying the same transaction will abort again.
	Capacity
	// Explicit: the body requested an abort (xabort), e.g. because
	// its preparation-phase assumptions no longer hold.
	Explicit
)

func (c Code) String() string {
	switch c {
	case Committed:
		return "committed"
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	default:
		return "explicit"
	}
}

// ErrAbort is returned by a transaction body to request an explicit
// abort. Bodies may also return it wrapped to carry a reason.
var ErrAbort = errors.New("htm: explicit abort")

// Virtual-time costs of the transactional machinery.
const (
	beginCostNS      = 15
	commitBaseNS     = 30
	commitPerWordNS  = 8
	stripeSerialBase = 25
)

// Config sizes the emulated hardware.
type Config struct {
	// Stripes is the number of version stripes (power of two).
	// Distinct words mapping to one stripe conflict falsely, like
	// cacheline-granular HTM tracking.
	Stripes int
	// WriteCapacityWords bounds a transaction's write set, modelling
	// the L1-sized RTM write set (48 KB ≈ 6144 words on the paper's
	// testbed).
	WriteCapacityWords int
	// ReadCapacityWords bounds the read set (RTM tracks reads in L2;
	// the default models 1.25 MB ≈ 160K words).
	ReadCapacityWords int
}

func (c Config) withDefaults() Config {
	if c.Stripes == 0 {
		c.Stripes = 1 << 18
	}
	if c.WriteCapacityWords == 0 {
		c.WriteCapacityWords = 6144
	}
	if c.ReadCapacityWords == 0 {
		c.ReadCapacityWords = 160 << 10
	}
	return c
}

// stripe layout: bit 0 = locked, bits 63..1 = version (shifted left 1).
type stripe struct {
	word   atomic.Uint64
	serial atomic.Int64
	_      [6]uint64 // pad to a cacheline to avoid real false sharing
}

// TM is a transactional memory domain. All transactions that may
// conflict must share one TM.
type TM struct {
	cfg    Config
	clock  atomic.Uint64
	strips []stripe
	mask   uint64
	// irrevMu serialises irrevocable transactions (see irrevocable.go).
	irrevMu sync.Mutex
	// Group receives commit serialisation totals for the virtual-time
	// model; may be nil.
	Group *vsync.Group

	commits     atomic.Int64
	conflicts   atomic.Int64
	capacities  atomic.Int64
	explicits   atomic.Int64
	irrevocable atomic.Int64
}

// Stats are the domain's cumulative transaction counters.
type Stats struct {
	Commits     int64
	Conflicts   int64
	Capacities  int64
	Explicits   int64
	Irrevocable int64
}

// Stats returns the counters.
func (tm *TM) Stats() Stats {
	return Stats{
		Commits:     tm.commits.Load(),
		Conflicts:   tm.conflicts.Load(),
		Capacities:  tm.capacities.Load(),
		Explicits:   tm.explicits.Load(),
		Irrevocable: tm.irrevocable.Load(),
	}
}

// New creates a transactional memory domain.
func New(cfg Config) *TM {
	cfg = cfg.withDefaults()
	n := 1
	for n < cfg.Stripes {
		n <<= 1
	}
	return &TM{
		cfg:    cfg,
		strips: make([]stripe, n),
		mask:   uint64(n - 1),
	}
}

// stripeFor maps a location key to its stripe. PM locations use the
// pool offset; volatile locations use the word's address. Keys are
// hashed so neighbouring words spread across stripes, with deliberate
// aliasing at cacheline granularity (key >> 3 keeps words of a line
// distinct; real HTM conflicts at line granularity, which callers can
// approximate by padding hot structures).
func (tm *TM) stripeFor(key uintptr) *stripe {
	x := uint64(key) >> 3
	x ^= x >> 17
	x *= 0x9E3779B97F4A7C15
	return &tm.strips[(x>>16)&tm.mask]
}

// conflictSignal unwinds a doomed transaction body (the software
// analogue of the hardware jumping back to xbegin).
type conflictSignal struct{}

type wsEntry struct {
	key  uintptr // stripe key
	addr uint64  // PM address (if pm)
	ptr  *uint64 // volatile word (if !pm)
	val  uint64
	pm   bool
}

type rsEntry struct {
	s   *stripe
	ver uint64
}

// Txn is an in-flight transaction. It is valid only inside the body
// passed to TM.Run.
type Txn struct {
	tm   *TM
	ctx  *pmem.Ctx
	pool *pmem.Pool
	rv   uint64
	rs   []rsEntry
	ws   []wsEntry
}

// Run executes body as one transaction attempt on behalf of worker c.
// It returns Committed and body's nil error on success; Conflict or
// Capacity on hardware-style aborts (body effects discarded); Explicit
// (with body's error) when the body returned non-nil. Run does not
// retry: callers implement their retry/fallback policy, as with real
// RTM.
//
// PM access inside body must go through tx.Load/tx.Store (pool
// supplied per call so one TM can span pools); volatile shared words
// through tx.LoadVol/tx.StoreVol. Reading locations written by
// concurrent non-transactional code is safe only if those writers use
// TM.BumpStore64 / TM.BumpCASVol etc., which advance stripe versions.
func (tm *TM) Run(c *pmem.Ctx, pool *pmem.Pool, body func(tx *Txn) error) (code Code, err error) {
	tx := txnPool.Get().(*Txn)
	tx.tm, tx.ctx, tx.pool = tm, c, pool
	tx.rs = tx.rs[:0]
	tx.ws = tx.ws[:0]
	tx.rv = tm.clock.Load()
	c.Charge(beginCostNS)

	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case conflictSignal:
				tm.conflicts.Add(1)
				code, err = Conflict, nil
			case capacitySignal:
				tm.capacities.Add(1)
				code, err = Capacity, nil
			default:
				panic(r)
			}
		}
		tx.tm = nil
		txnPool.Put(tx)
	}()

	if err := body(tx); err != nil {
		tm.explicits.Add(1)
		return Explicit, err
	}
	if !tx.commit() {
		tm.conflicts.Add(1)
		return Conflict, nil
	}
	tm.commits.Add(1)
	return Committed, nil
}

func (tx *Txn) abortConflict() {
	panic(conflictSignal{})
}

// Load reads a 64-bit PM word transactionally.
func (tx *Txn) Load(addr uint64) uint64 {
	return tx.load(uintptr(addr), addr, nil, true)
}

// LoadVol reads a volatile 64-bit word transactionally.
func (tx *Txn) LoadVol(p *uint64) uint64 {
	return tx.load(ptrKey(p), 0, p, false)
}

func (tx *Txn) load(key uintptr, addr uint64, ptr *uint64, pm bool) uint64 {
	// Read-own-writes.
	for i := len(tx.ws) - 1; i >= 0; i-- {
		if tx.ws[i].key == key {
			return tx.ws[i].val
		}
	}
	if len(tx.rs) >= tx.tm.cfg.ReadCapacityWords {
		panic(capacitySignal{})
	}
	s := tx.tm.stripeFor(key)
	v1 := s.word.Load()
	if v1&1 != 0 || v1>>1 > tx.rv {
		tx.abortConflict()
	}
	var val uint64
	if pm {
		val = tx.pool.Load64(tx.ctx, addr)
	} else {
		val = atomic.LoadUint64(ptr)
		tx.ctx.ChargeDRAM(1)
	}
	if s.word.Load() != v1 {
		tx.abortConflict()
	}
	tx.rs = append(tx.rs, rsEntry{s, v1})
	return val
}

// Store buffers a 64-bit PM store; it becomes visible (and durable
// under eADR) only if the transaction commits.
func (tx *Txn) Store(addr uint64, v uint64) {
	tx.store(uintptr(addr), addr, nil, true, v)
}

// StoreVol buffers a volatile 64-bit store.
func (tx *Txn) StoreVol(p *uint64, v uint64) {
	tx.store(ptrKey(p), 0, p, false, v)
}

// capacitySignal distinguishes capacity aborts from conflicts.
type capacitySignal struct{}

func (tx *Txn) store(key uintptr, addr uint64, ptr *uint64, pm bool, v uint64) {
	for i := len(tx.ws) - 1; i >= 0; i-- {
		if tx.ws[i].key == key {
			tx.ws[i].val = v
			return
		}
	}
	if len(tx.ws) >= tx.tm.cfg.WriteCapacityWords {
		panic(capacitySignal{})
	}
	tx.ws = append(tx.ws, wsEntry{key: key, addr: addr, ptr: ptr, val: v, pm: pm})
}

// WriteSetSize returns the current number of buffered writes
// (diagnostic; used by staged-doubling tests).
func (tx *Txn) WriteSetSize() int { return len(tx.ws) }

// commit implements the TL2 commit: lock write stripes, validate the
// read set, publish, bump versions.
func (tx *Txn) commit() bool {
	c := tx.ctx
	if len(tx.ws) == 0 {
		// Read-only: the per-load validation already established a
		// consistent snapshot at rv.
		c.Charge(commitBaseNS)
		return true
	}

	// Acquire stripe locks (try-lock; abort on contention, so no
	// deadlock). Duplicate stripes (two words aliasing one stripe)
	// are locked once.
	locked := make([]*stripe, 0, len(tx.ws))
	lockedSet := func(s *stripe) bool {
		for _, l := range locked {
			if l == s {
				return true
			}
		}
		return false
	}
	release := func(ok bool) {
		var wv uint64
		if ok {
			wv = tx.tm.clock.Add(1)
		}
		for _, s := range locked {
			old := s.word.Load()
			if ok {
				s.word.Store(wv << 1)
			} else {
				s.word.Store(old &^ 1)
			}
			t := s.serial.Add(stripeSerialBase)
			if g := tx.tm.Group; g != nil {
				g.Bump(t)
			}
		}
	}

	for i := range tx.ws {
		s := tx.tm.stripeFor(tx.ws[i].key)
		if lockedSet(s) {
			continue
		}
		v := s.word.Load()
		if v&1 != 0 || v>>1 > tx.rv || !s.word.CompareAndSwap(v, v|1) {
			release(false)
			return false
		}
		locked = append(locked, s)
	}

	// Validate the read set.
	for _, r := range tx.rs {
		v := r.s.word.Load()
		if v != r.ver && !(v == r.ver|1 && lockedSet(r.s)) {
			release(false)
			return false
		}
	}

	// Publish. The PM portion is a failure-atomic section for the
	// crash injector: hardware RTM retires a commit's stores as one
	// all-or-nothing event, so an injected power cut can land before or
	// after the publish but never tear it (a crashSignal raised at the
	// section boundary unwinds through Run's recover, which re-panics
	// unknown types, to the operation's CatchCrash).
	hasPM := false
	for i := range tx.ws {
		if tx.ws[i].pm {
			hasPM = true
			break
		}
	}
	if hasPM {
		tx.pool.BeginAtomic(c)
		defer tx.pool.EndAtomic(c)
	}
	for _, w := range tx.ws {
		if w.pm {
			tx.pool.Store64(c, w.addr, w.val)
		} else {
			atomic.StoreUint64(w.ptr, w.val)
			c.ChargeDRAM(1)
		}
	}
	c.Charge(commitBaseNS + int64(len(tx.ws))*commitPerWordNS)
	release(true)
	return true
}

// BumpStore64 performs a non-transactional PM store that concurrent
// transactions observe as a conflict (the stripe version advances).
// Used for lock words on the fallback path.
func (tm *TM) BumpStore64(c *pmem.Ctx, pool *pmem.Pool, addr uint64, v uint64) {
	s := tm.stripeFor(uintptr(addr))
	tm.lockStripe(s)
	pool.Store64(c, addr, v)
	tm.unlockStripe(s)
}

// BumpStoreVol performs a non-transactional volatile store with
// stripe-version advancement.
func (tm *TM) BumpStoreVol(c *pmem.Ctx, p *uint64, v uint64) {
	s := tm.stripeFor(ptrKey(p))
	tm.lockStripe(s)
	atomic.StoreUint64(p, v)
	c.ChargeDRAM(1)
	tm.unlockStripe(s)
}

// BumpCASVol performs a non-transactional volatile compare-and-swap
// with stripe-version advancement. Returns whether it swapped.
func (tm *TM) BumpCASVol(c *pmem.Ctx, p *uint64, old, new uint64) bool {
	s := tm.stripeFor(ptrKey(p))
	tm.lockStripe(s)
	ok := atomic.CompareAndSwapUint64(p, old, new)
	c.ChargeDRAM(1)
	tm.unlockStripe(s)
	return ok
}

func (tm *TM) lockStripe(s *stripe) {
	for {
		v := s.word.Load()
		if v&1 == 0 && s.word.CompareAndSwap(v, v|1) {
			return
		}
	}
}

func (tm *TM) unlockStripe(s *stripe) {
	wv := tm.clock.Add(1)
	s.word.Store(wv << 1)
}

func ptrKey(p *uint64) uintptr {
	// The word's address is a stable unique key: Go's collector does
	// not move heap objects, and the words we key on (directory
	// entries, lock words) stay reachable for the TM's lifetime.
	return uintptr(unsafe.Pointer(p))
}

// txnPool recycles transaction descriptors (and their read/write set
// backing arrays) across attempts.
var txnPool = sync.Pool{
	New: func() any {
		return &Txn{
			rs: make([]rsEntry, 0, 64),
			ws: make([]wsEntry, 0, 16),
		}
	},
}
