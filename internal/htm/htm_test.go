package htm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spash/internal/pmem"
	"spash/internal/vsync"
)

func newTestTM() (*TM, *pmem.Pool, *pmem.Ctx) {
	tm := New(Config{Stripes: 1 << 12, WriteCapacityWords: 128, ReadCapacityWords: 1024})
	pool := pmem.New(pmem.Config{PoolSize: 4 << 20})
	return tm, pool, pool.NewCtx()
}

func mustCommit(t *testing.T, tm *TM, c *pmem.Ctx, pool *pmem.Pool, body func(tx *Txn) error) {
	t.Helper()
	code, err := tm.Run(c, pool, body)
	if code != Committed || err != nil {
		t.Fatalf("Run = %v, %v; want committed", code, err)
	}
}

func TestCommitPublishesWrites(t *testing.T) {
	tm, pool, c := newTestTM()
	mustCommit(t, tm, c, pool, func(tx *Txn) error {
		tx.Store(64, 7)
		tx.Store(128, 8)
		return nil
	})
	if v := pool.Load64(c, 64); v != 7 {
		t.Fatalf("word 64 = %d", v)
	}
	if v := pool.Load64(c, 128); v != 8 {
		t.Fatalf("word 128 = %d", v)
	}
}

func TestExplicitAbortDiscardsWrites(t *testing.T) {
	tm, pool, c := newTestTM()
	code, err := tm.Run(c, pool, func(tx *Txn) error {
		tx.Store(64, 99)
		return ErrAbort
	})
	if code != Explicit || !errors.Is(err, ErrAbort) {
		t.Fatalf("Run = %v, %v", code, err)
	}
	if v := pool.Load64(c, 64); v != 0 {
		t.Fatalf("aborted write published: %d", v)
	}
}

func TestReadOwnWrites(t *testing.T) {
	tm, pool, c := newTestTM()
	var vol uint64
	mustCommit(t, tm, c, pool, func(tx *Txn) error {
		tx.Store(64, 5)
		if got := tx.Load(64); got != 5 {
			return fmt.Errorf("read-own-write PM = %d", got)
		}
		tx.StoreVol(&vol, 6)
		if got := tx.LoadVol(&vol); got != 6 {
			return fmt.Errorf("read-own-write vol = %d", got)
		}
		tx.Store(64, 7) // overwrite in place
		if got := tx.Load(64); got != 7 {
			return fmt.Errorf("overwrite = %d", got)
		}
		return nil
	})
	if vol != 6 {
		t.Fatalf("vol = %d", vol)
	}
}

func TestCapacityAbort(t *testing.T) {
	tm, pool, c := newTestTM()
	code, _ := tm.Run(c, pool, func(tx *Txn) error {
		for i := 0; i < 1000; i++ {
			tx.Store(uint64(64+8*i), uint64(i))
		}
		return nil
	})
	if code != Capacity {
		t.Fatalf("code = %v, want capacity", code)
	}
	// Nothing leaked.
	if v := pool.Load64(c, 64); v != 0 {
		t.Fatalf("capacity-aborted write published: %d", v)
	}
}

func TestReadCapacityAbort(t *testing.T) {
	tm, pool, c := newTestTM()
	code, _ := tm.Run(c, pool, func(tx *Txn) error {
		for i := 0; i < 5000; i++ {
			tx.Load(uint64(64 + 8*i))
		}
		return nil
	})
	if code != Capacity {
		t.Fatalf("code = %v, want capacity", code)
	}
}

func TestBumpStoreConflictsReaders(t *testing.T) {
	tm, pool, c := newTestTM()
	pool.Store64(c, 64, 1)
	code, _ := tm.Run(c, pool, func(tx *Txn) error {
		if tx.Load(64) != 1 {
			t.Error("stale read")
		}
		// A concurrent non-transactional bumping store lands mid-txn.
		tm.BumpStore64(c, pool, 64, 2)
		tx.Store(128, 42)
		return nil
	})
	if code != Conflict {
		t.Fatalf("code = %v, want conflict", code)
	}
	if v := pool.Load64(c, 128); v != 0 {
		t.Fatalf("conflicting txn published: %d", v)
	}
}

func TestBumpCASVol(t *testing.T) {
	tm, _, c := newTestTM()
	var word uint64 = 3
	if !tm.BumpCASVol(c, &word, 3, 4) {
		t.Fatal("CAS failed")
	}
	if tm.BumpCASVol(c, &word, 3, 5) {
		t.Fatal("stale CAS succeeded")
	}
	if word != 4 {
		t.Fatalf("word = %d", word)
	}
}

// Concurrent increments of one PM counter must all be preserved:
// transactional read-modify-write is atomic.
func TestConcurrentCounterAtomicity(t *testing.T) {
	tm, pool, _ := newTestTM()
	const workers, incs = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := pool.NewCtx()
			for i := 0; i < incs; i++ {
				for {
					code, _ := tm.Run(c, pool, func(tx *Txn) error {
						tx.Store(64, tx.Load(64)+1)
						return nil
					})
					if code == Committed {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	c := pool.NewCtx()
	if v := pool.Load64(c, 64); v != workers*incs {
		t.Fatalf("counter = %d, want %d", v, workers*incs)
	}
}

// Two words must always be observed consistent: writers keep
// words[a] == words[b]; transactional readers must never see them
// differ (multi-word atomicity, the property CAS-based designs lack).
func TestMultiWordInvariantUnderConcurrency(t *testing.T) {
	tm, pool, _ := newTestTM()
	const a, b = 1024, 4096 // distinct cachelines
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := pool.NewCtx()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tm.Run(c, pool, func(tx *Txn) error {
				tx.Store(a, i)
				tx.Store(b, i)
				return nil
			})
		}
	}()
	c := pool.NewCtx()
	for i := 0; i < 5000; i++ {
		var va, vb uint64
		code, _ := tm.Run(c, pool, func(tx *Txn) error {
			va = tx.Load(a)
			vb = tx.Load(b)
			return nil
		})
		if code == Committed && va != vb {
			t.Fatalf("observed torn state: %d != %d", va, vb)
		}
	}
	close(stop)
	wg.Wait()
}

func TestReadOnlyTxnCommitsWithoutLocks(t *testing.T) {
	tm, pool, c := newTestTM()
	pool.Store64(c, 64, 11)
	var got uint64
	mustCommit(t, tm, c, pool, func(tx *Txn) error {
		got = tx.Load(64)
		return nil
	})
	if got != 11 {
		t.Fatalf("got %d", got)
	}
}

func TestVolatileWords(t *testing.T) {
	tm, pool, c := newTestTM()
	dir := make([]uint64, 16)
	mustCommit(t, tm, c, pool, func(tx *Txn) error {
		for i := range dir {
			tx.StoreVol(&dir[i], uint64(i)*10)
		}
		return nil
	})
	for i := range dir {
		if dir[i] != uint64(i)*10 {
			t.Fatalf("dir[%d] = %d", i, dir[i])
		}
	}
}

func TestCommitSerialAccounting(t *testing.T) {
	tm, pool, c := newTestTM()
	var g vsync.Group
	tm.Group = &g
	mustCommit(t, tm, c, pool, func(tx *Txn) error {
		tx.Store(64, 1)
		return nil
	})
	if g.MaxSerialNS() == 0 {
		t.Fatal("commit did not account stripe serialisation")
	}
}

func TestWriteSetSize(t *testing.T) {
	tm, pool, c := newTestTM()
	mustCommit(t, tm, c, pool, func(tx *Txn) error {
		tx.Store(64, 1)
		tx.Store(72, 2)
		tx.Store(64, 3) // dedup
		if tx.WriteSetSize() != 2 {
			return fmt.Errorf("write set = %d", tx.WriteSetSize())
		}
		return nil
	})
}

// A panic raised by the body that is not an abort signal must
// propagate to the caller, not be swallowed.
func TestForeignPanicPropagates(t *testing.T) {
	tm, pool, c := newTestTM()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	tm.Run(c, pool, func(tx *Txn) error { panic("boom") })
}

func TestStatsCounters(t *testing.T) {
	tm, pool, c := newTestTM()
	mustCommit(t, tm, c, pool, func(tx *Txn) error { tx.Store(64, 1); return nil })
	tm.Run(c, pool, func(tx *Txn) error { return ErrAbort })
	tm.Run(c, pool, func(tx *Txn) error {
		for i := 0; i < 1000; i++ {
			tx.Store(uint64(64+8*i), 1)
		}
		return nil
	})
	tm.Irrevocable(c, pool, func(it *ITxn) error { return nil })
	st := tm.Stats()
	if st.Commits < 1 || st.Explicits != 1 || st.Capacities != 1 || st.Irrevocable != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
