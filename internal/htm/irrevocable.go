package htm

import (
	"runtime"
	"sync/atomic"

	"spash/internal/pmem"
)

// ITxn is an irrevocable transaction: instead of optimistic
// validation it takes the stripe lock of every word it touches (reads
// included) and holds them until Done. It therefore never aborts and
// is mutually exclusive, word by word, with committing optimistic
// transactions — the property hardware gets for free from instant
// commits, and which a software TM must provide explicitly for its
// lock-elision fallback path: without it, a fallback's raw reads could
// observe the half-published write set of a transaction that validated
// just before the fallback lock was taken.
//
// Deadlock freedom: optimistic commits only try-lock (they abort and
// release on contention), and irrevocable transactions are serialised
// among themselves by a TM-wide mutex, so an ITxn spinning on a stripe
// always waits on a finite commit.
type ITxn struct {
	tm   *TM
	ctx  *pmem.Ctx
	pool *pmem.Pool
	held []*stripe
	// heldVer/heldDirty record each held stripe's pre-lock version and
	// whether it was written (written stripes release with a bumped
	// version so optimists conflict; read-only stripes restore their
	// version to avoid spurious aborts).
	heldVer   []uint64
	heldDirty []bool
}

// Irrevocable runs body as an irrevocable transaction. body must
// perform all shared-word access through the ITxn.
func (tm *TM) Irrevocable(c *pmem.Ctx, pool *pmem.Pool, body func(it *ITxn) error) error {
	tm.irrevMu.Lock()
	defer tm.irrevMu.Unlock()
	tm.irrevocable.Add(1)
	it := &ITxn{tm: tm, ctx: c, pool: pool}
	// Release on panic too: a body unwinding (e.g. a poisoned-media
	// machine check) must not leave stripe locks held, or every later
	// transaction touching those words would spin forever.
	defer it.releaseAll()
	return body(it)
}

// acquire locks the stripe for key if not already held and returns its
// index in the held set.
func (it *ITxn) acquire(key uintptr) int {
	s := it.tm.stripeFor(key)
	for i, h := range it.held {
		if h == s {
			return i
		}
	}
	var v uint64
	for {
		v = s.word.Load()
		if v&1 == 0 && s.word.CompareAndSwap(v, v|1) {
			break
		}
		// The holder may have unwound at an injected power cut without
		// releasing; observe the cut rather than spinning forever.
		it.pool.CheckLive()
		runtime.Gosched()
	}
	it.held = append(it.held, s)
	it.heldVer = append(it.heldVer, v)
	it.heldDirty = append(it.heldDirty, false)
	return len(it.held) - 1
}

func (it *ITxn) releaseAll() {
	var wv uint64
	for _, d := range it.heldDirty {
		if d {
			wv = it.tm.clock.Add(1)
			break
		}
	}
	for i, s := range it.held {
		if it.heldDirty[i] {
			s.word.Store(wv << 1)
		} else {
			s.word.Store(it.heldVer[i])
		}
	}
	it.held, it.heldVer, it.heldDirty = nil, nil, nil
}

// Load reads a PM word under the stripe lock.
func (it *ITxn) Load(addr uint64) uint64 {
	it.acquire(uintptr(addr))
	return it.pool.Load64(it.ctx, addr)
}

// Store writes a PM word under the stripe lock; the write becomes
// conflicting-visible to optimistic transactions at release.
func (it *ITxn) Store(addr uint64, v uint64) {
	i := it.acquire(uintptr(addr))
	it.heldDirty[i] = true
	it.pool.Store64(it.ctx, addr, v)
}

// LoadVol reads a volatile word under the stripe lock.
func (it *ITxn) LoadVol(p *uint64) uint64 {
	it.acquire(ptrKey(p))
	it.ctx.ChargeDRAM(1)
	return atomic.LoadUint64(p)
}

// StoreVol writes a volatile word under the stripe lock.
func (it *ITxn) StoreVol(p *uint64, v uint64) {
	i := it.acquire(ptrKey(p))
	it.heldDirty[i] = true
	it.ctx.ChargeDRAM(1)
	atomic.StoreUint64(p, v)
}
