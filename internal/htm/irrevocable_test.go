package htm

import (
	"sync"
	"testing"
)

func TestIrrevocableBasic(t *testing.T) {
	tm, pool, c := newTestTM()
	err := tm.Irrevocable(c, pool, func(it *ITxn) error {
		it.Store(64, 5)
		if got := it.Load(64); got != 5 {
			t.Errorf("read-own-write = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := pool.Load64(c, 64); v != 5 {
		t.Fatalf("word = %d", v)
	}
}

// An irrevocable write must conflict optimistic transactions that read
// the word (stripe version advances at release).
func TestIrrevocableConflictsOptimists(t *testing.T) {
	tm, pool, c := newTestTM()
	pool.Store64(c, 64, 1)
	code, _ := tm.Run(c, pool, func(tx *Txn) error {
		if tx.Load(64) != 1 {
			t.Error("stale read")
		}
		tm.Irrevocable(c, pool, func(it *ITxn) error {
			it.Store(64, 2)
			return nil
		})
		tx.Store(128, 9)
		return nil
	})
	if code != Conflict {
		t.Fatalf("code = %v, want conflict", code)
	}
	if v := pool.Load64(c, 128); v != 0 {
		t.Fatalf("conflicting txn published: %d", v)
	}
}

// Read-only stripes must release with their original version: a pure
// irrevocable read does not abort unrelated readers.
func TestIrrevocableReadsDoNotConflict(t *testing.T) {
	tm, pool, c := newTestTM()
	pool.Store64(c, 64, 7)
	code, _ := tm.Run(c, pool, func(tx *Txn) error {
		if tx.Load(64) != 7 {
			t.Error("bad read")
		}
		tm.Irrevocable(c, pool, func(it *ITxn) error {
			_ = it.Load(64) // read only
			return nil
		})
		tx.Store(128, 1)
		return nil
	})
	if code != Committed {
		t.Fatalf("code = %v, want committed (irrevocable read aborted us)", code)
	}
}

// Mixed concurrent increments: half the workers use optimistic
// transactions, half the irrevocable path; no update may be lost.
func TestIrrevocableAtomicityMixed(t *testing.T) {
	tm, pool, _ := newTestTM()
	const workers, incs = 8, 1500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := pool.NewCtx()
			for i := 0; i < incs; i++ {
				if w%2 == 0 {
					tm.Irrevocable(c, pool, func(it *ITxn) error {
						it.Store(64, it.Load(64)+1)
						return nil
					})
				} else {
					for {
						code, _ := tm.Run(c, pool, func(tx *Txn) error {
							tx.Store(64, tx.Load(64)+1)
							return nil
						})
						if code == Committed {
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	c := pool.NewCtx()
	if v := pool.Load64(c, 64); v != workers*incs {
		t.Fatalf("counter = %d, want %d", v, workers*incs)
	}
}

// Multi-word invariant with an irrevocable writer and optimistic
// readers: words must never be observed torn.
func TestIrrevocableMultiWordInvariant(t *testing.T) {
	tm, pool, _ := newTestTM()
	const a, b = 1024, 4096
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := pool.NewCtx()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tm.Irrevocable(c, pool, func(it *ITxn) error {
				it.Store(a, i)
				it.Store(b, i)
				return nil
			})
		}
	}()
	c := pool.NewCtx()
	for i := 0; i < 4000; i++ {
		var va, vb uint64
		code, _ := tm.Run(c, pool, func(tx *Txn) error {
			va = tx.Load(a)
			vb = tx.Load(b)
			return nil
		})
		if code == Committed && va != vb {
			t.Fatalf("torn state observed: %d != %d", va, vb)
		}
	}
	close(stop)
	wg.Wait()
}

func TestIrrevocableVolatileWords(t *testing.T) {
	tm, pool, c := newTestTM()
	var word uint64
	tm.Irrevocable(c, pool, func(it *ITxn) error {
		it.StoreVol(&word, 11)
		if it.LoadVol(&word) != 11 {
			t.Error("read-own-write vol")
		}
		return nil
	})
	if word != 11 {
		t.Fatalf("word = %d", word)
	}
}

func TestIrrevocableErrorPropagates(t *testing.T) {
	tm, pool, c := newTestTM()
	if err := tm.Irrevocable(c, pool, func(it *ITxn) error {
		it.Store(64, 1)
		return ErrAbort
	}); err != ErrAbort {
		t.Fatalf("err = %v", err)
	}
	// Irrevocable writes are not rolled back (callers use errors only
	// to report, not to abort — the name is literal).
	if v := pool.Load64(c, 64); v != 1 {
		t.Fatalf("word = %d", v)
	}
}
