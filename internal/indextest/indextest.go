// Package indextest is a conformance suite run against Spash and
// every baseline: one set of behavioural tests, six implementations.
package indextest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spash/internal/ixapi"
	"spash/internal/pmem"
)

func k64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func defaultPlatform() pmem.Config {
	return pmem.Config{PoolSize: 256 << 20, CacheSize: 1 << 20}
}

// Run executes the whole conformance suite against the factory.
func Run(t *testing.T, factory ixapi.Factory) {
	t.Run("BasicCRUD", func(t *testing.T) { testBasicCRUD(t, factory) })
	t.Run("AbsentKeys", func(t *testing.T) { testAbsentKeys(t, factory) })
	t.Run("Growth", func(t *testing.T) { testGrowth(t, factory) })
	t.Run("VariableKV", func(t *testing.T) { testVariableKV(t, factory) })
	t.Run("DeleteReinsert", func(t *testing.T) { testDeleteReinsert(t, factory) })
	t.Run("ModelCheck", func(t *testing.T) { testModelCheck(t, factory) })
	t.Run("ConcurrentDisjoint", func(t *testing.T) { testConcurrentDisjoint(t, factory) })
	t.Run("ConcurrentSharedUpdates", func(t *testing.T) { testConcurrentShared(t, factory) })
	t.Run("LoadFactorSanity", func(t *testing.T) { testLoadFactor(t, factory) })
}

// exactLen reports whether the index maintains an exact live count
// (LSM-style designs settle counts at merge time and opt out via a
// LenIsExact method).
func exactLen(ix ixapi.Index) bool {
	if e, ok := ix.(interface{ LenIsExact() bool }); ok {
		return e.LenIsExact()
	}
	return true
}

func open(t *testing.T, factory ixapi.Factory) ixapi.Index {
	t.Helper()
	ix, err := factory(defaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func testBasicCRUD(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	w := ix.NewWorker()
	defer w.Close()
	if err := w.Insert([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := w.Search([]byte("alpha"), nil)
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("search: %q %v %v", v, ok, err)
	}
	if found, err := w.Update([]byte("alpha"), []byte("2")); err != nil || !found {
		t.Fatalf("update: %v %v", found, err)
	}
	v, _, _ = w.Search([]byte("alpha"), nil)
	if string(v) != "2" {
		t.Fatalf("after update: %q", v)
	}
	if err := w.Insert([]byte("alpha"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = w.Search([]byte("alpha"), nil)
	if string(v) != "3" {
		t.Fatalf("after upsert: %q", v)
	}
	if exactLen(ix) && ix.Len() != 1 {
		t.Fatalf("len = %d", ix.Len())
	}
	if found, err := w.Delete([]byte("alpha")); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, ok, _ := w.Search([]byte("alpha"), nil); ok {
		t.Fatal("present after delete")
	}
	if exactLen(ix) && ix.Len() != 0 {
		t.Fatalf("len = %d after delete", ix.Len())
	}
}

func testAbsentKeys(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	w := ix.NewWorker()
	defer w.Close()
	for i := uint64(0); i < 100; i++ {
		w.Insert(k64(i), k64(i))
	}
	if _, ok, _ := w.Search(k64(1000), nil); ok {
		t.Fatal("found absent key")
	}
	if found, _ := w.Update(k64(1000), k64(0)); found {
		t.Fatal("updated absent key")
	}
	if found, _ := w.Delete(k64(1000)); found {
		t.Fatal("deleted absent key")
	}
}

func testGrowth(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	w := ix.NewWorker()
	defer w.Close()
	const n = 30000
	for i := uint64(0); i < n; i++ {
		if err := w.Insert(k64(i), k64(i*2)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if exactLen(ix) && ix.Len() != n {
		t.Fatalf("len = %d, want %d", ix.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := w.Search(k64(i), nil)
		if err != nil || !ok || binary.LittleEndian.Uint64(v) != i*2 {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func testVariableKV(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	w := ix.NewWorker()
	defer w.Close()
	rng := rand.New(rand.NewSource(4))
	type kv struct{ k, v []byte }
	var kvs []kv
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("user%012d", i))
		v := make([]byte, 16+rng.Intn(1008))
		rng.Read(v)
		kvs = append(kvs, kv{k, v})
		if err := w.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range kvs {
		got, ok, err := w.Search(e.k, nil)
		if err != nil || !ok || !bytes.Equal(got, e.v) {
			t.Fatalf("kv %d: ok=%v err=%v len=%d/%d", i, ok, err, len(got), len(e.v))
		}
	}
	// Updates with size changes.
	for i, e := range kvs {
		nv := make([]byte, 16+rng.Intn(1008))
		rng.Read(nv)
		if found, err := w.Update(e.k, nv); err != nil || !found {
			t.Fatalf("update %d: %v %v", i, found, err)
		}
		kvs[i].v = nv
	}
	for i, e := range kvs {
		got, ok, _ := w.Search(e.k, nil)
		if !ok || !bytes.Equal(got, e.v) {
			t.Fatalf("after update %d: ok=%v", i, ok)
		}
	}
}

func testDeleteReinsert(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	w := ix.NewWorker()
	defer w.Close()
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < 2000; i++ {
			if err := w.Insert(k64(i), k64(uint64(round))); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < 2000; i++ {
			if ok, err := w.Delete(k64(i)); err != nil || !ok {
				t.Fatalf("round %d delete %d: %v %v", round, i, ok, err)
			}
		}
	}
	if exactLen(ix) && ix.Len() != 0 {
		t.Fatalf("len = %d", ix.Len())
	}
}

func testModelCheck(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	w := ix.NewWorker()
	defer w.Close()
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 20000; step++ {
		key := k64(uint64(rng.Intn(1500)))
		switch rng.Intn(4) {
		case 0:
			val := make([]byte, 8+rng.Intn(56))
			rng.Read(val)
			if err := w.Insert(key, val); err != nil {
				t.Fatal(err)
			}
			model[string(key)] = append([]byte(nil), val...)
		case 1:
			val := make([]byte, 8+rng.Intn(56))
			rng.Read(val)
			found, err := w.Update(key, val)
			if err != nil {
				t.Fatal(err)
			}
			if _, want := model[string(key)]; found != want {
				t.Fatalf("step %d: update found=%v", step, found)
			}
			if found {
				model[string(key)] = append([]byte(nil), val...)
			}
		case 2:
			found, err := w.Delete(key)
			if err != nil {
				t.Fatal(err)
			}
			if _, want := model[string(key)]; found != want {
				t.Fatalf("step %d: delete found=%v", step, found)
			}
			delete(model, string(key))
		default:
			got, found, err := w.Search(key, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, wantFound := model[string(key)]
			if found != wantFound || (found && !bytes.Equal(got, want)) {
				t.Fatalf("step %d: search mismatch (found=%v want=%v)", step, found, wantFound)
			}
		}
	}
	if exactLen(ix) && ix.Len() != len(model) {
		t.Fatalf("len %d vs model %d", ix.Len(), len(model))
	}
}

func testConcurrentDisjoint(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	const workers, per = 6, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := ix.NewWorker()
			defer wk.Close()
			for i := 0; i < per; i++ {
				key := uint64(w*per + i)
				if err := wk.Insert(k64(key), k64(key+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if exactLen(ix) && ix.Len() != workers*per {
		t.Fatalf("len = %d, want %d", ix.Len(), workers*per)
	}
	wk := ix.NewWorker()
	defer wk.Close()
	for i := uint64(0); i < workers*per; i++ {
		v, ok, err := wk.Search(k64(i), nil)
		if err != nil || !ok || binary.LittleEndian.Uint64(v) != i+1 {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func testConcurrentShared(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	wk0 := ix.NewWorker()
	const keys = 64
	mkval := func(tag byte) []byte { return bytes.Repeat([]byte{tag}, 128) }
	for i := uint64(0); i < keys; i++ {
		if err := wk0.Insert(k64(i), mkval(0)); err != nil {
			t.Fatal(err)
		}
	}
	var wwg, rwg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			wk := ix.NewWorker()
			defer wk.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(keys))
				if found, err := wk.Update(k64(k), mkval(byte(w+1))); err != nil || !found {
					t.Errorf("update: %v %v", found, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			wk := ix.NewWorker()
			defer wk.Close()
			rng := rand.New(rand.NewSource(42))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(keys))
				v, ok, err := wk.Search(k64(k), nil)
				if err != nil || !ok || len(v) != 128 {
					t.Errorf("search: ok=%v err=%v len=%d", ok, err, len(v))
					return
				}
				for i := 1; i < len(v); i++ {
					if v[i] != v[0] {
						t.Errorf("torn read")
						return
					}
				}
			}
		}()
	}
	wwg.Wait()
	close(stop)
	rwg.Wait()
}

func testLoadFactor(t *testing.T, factory ixapi.Factory) {
	ix := open(t, factory)
	w := ix.NewWorker()
	defer w.Close()
	for i := uint64(0); i < 20000; i++ {
		if err := w.Insert(k64(i), k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lf := ix.LoadFactor()
	if exactLen(ix) && (lf <= 0 || lf > 1.0001) {
		t.Fatalf("load factor %v out of range", lf)
	}
}
