// Package ixapi defines the common interface implemented by Spash and
// by every reimplemented baseline (CCEH, Dash, Level hashing, CLevel,
// Plush, Halo), so the conformance tests and the benchmark harness can
// drive them uniformly.
package ixapi

import (
	"spash/internal/pmem"
	"spash/internal/vsync"
)

// Index is a persistent hash index over a simulated PM pool.
type Index interface {
	// Name identifies the index in benchmark output.
	Name() string
	// NewWorker returns a per-goroutine execution handle.
	NewWorker() Worker
	// Len returns the number of live key-value pairs.
	Len() int
	// LoadFactor returns entries / slot capacity (Fig 9).
	LoadFactor() float64
	// Pool returns the simulated device, for memory-event counters.
	Pool() *pmem.Pool
	// Group returns the lock/commit serialisation group, for the
	// virtual-time elapsed model.
	Group() *vsync.Group
}

// Worker is a per-goroutine handle. Implementations are not safe for
// concurrent use of one Worker.
type Worker interface {
	Insert(key, val []byte) error
	Search(key, dst []byte) ([]byte, bool, error)
	Update(key, val []byte) (bool, error)
	Delete(key []byte) (bool, error)
	// Ctx returns the worker's pmem context (virtual clock).
	Ctx() *pmem.Ctx
	Close()
}

// MultiPool is optionally implemented by partitioned indexes whose
// data lives on several devices (one per shard). The harness then
// meters media traffic per device and bounds elapsed time by the
// hottest one — partitioned DIMMs have independent bandwidth. Pool()
// must still return a representative device (shard 0) for timing
// parameters.
type MultiPool interface {
	Pools() []*pmem.Pool
}

// MultiGroup is optionally implemented by partitioned indexes with one
// serialisation domain per shard. The harness bounds elapsed time by
// the hottest group — commit serialisation does not accumulate across
// independent shards.
type MultiGroup interface {
	Groups() []*vsync.Group
}

// MultiCtxWorker is optionally implemented by workers that keep one
// pmem context per shard: a worker's virtual time is the sum of its
// per-shard clocks (a single thread executes its operations serially,
// whichever shard they land on). Ctx() must still return a
// representative context.
type MultiCtxWorker interface {
	ResetClocks()
	TotalClock() int64
}

// Factory creates a fresh index on a fresh device. Used by conformance
// tests and the harness.
type Factory func(platform pmem.Config) (Index, error)
