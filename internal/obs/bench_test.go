package obs

import "testing"

// The registry's hot-path cost: one padded atomic add when enabled,
// one nil check when disabled. Compare with the ~dozens of simulated
// memory events per index operation to see why the instrumented hot
// path stays within noise (see also BenchmarkObsOverhead in
// internal/core).

func BenchmarkLaneInc(b *testing.B) {
	ln := NewRegistrySized(4, 64).Lane()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ln.Inc(CSplits)
	}
}

func BenchmarkLaneIncDisabled(b *testing.B) {
	var ln *Lane
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ln.Inc(CSplits)
	}
}

func BenchmarkLaneObserve(b *testing.B) {
	ln := NewRegistrySized(4, 64).Lane()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ln.Observe(HProbeLen, i&7)
	}
}

func BenchmarkObserveKeyedParallel(b *testing.B) {
	r := NewRegistrySized(64, 64)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			k += 0x9E3779B97F4A7C15
			r.ObserveKeyed(HProbeLen, k, int(k&7))
		}
	})
}

func BenchmarkTraceAdd(b *testing.B) {
	r := NewRegistrySized(4, DefaultRingSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Trace(EvSplit, int64(i), 1, 2)
	}
}

// Span path costs. Unsampled is the common case (one Active check per
// site, no allocation); sampled pays the histogram adds and a slow-log
// offer at operation end only.

func BenchmarkSpanRecordSampled(b *testing.B) {
	ln := NewRegistrySized(4, 64).Lane()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Span{Active: true, Kind: SpanInsert, Key: uint64(i)}
		sp.Dur[PhaseProbe] = int64(i & 1023)
		sp.Dur[PhasePublish] = 32
		ln.RecordSpan(&sp, int64(i&1023)+32)
	}
}

func BenchmarkSpanRecordUnsampled(b *testing.B) {
	ln := NewRegistrySized(4, 64).Lane()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Span{} // Active=false: the per-op cost when not elected
		ln.RecordSpan(&sp, int64(i))
	}
}
