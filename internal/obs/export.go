package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
)

// Source produces the current cumulative snapshot of a live index.
type Source func() Snapshot

// defaultSource/defaultRegistry is the process-wide export target: the
// most recently registered observable index. Benchmarks open many
// indexes in sequence; the export endpoints follow the live one.
var (
	defaultSource   atomic.Pointer[Source]
	defaultRegistry atomic.Pointer[Registry]
	expvarOnce      sync.Once
)

// SetDefault registers reg and snap as the process-wide export target
// for /metrics, /debug/vars and /debug/obs/trace. Passing a nil snap
// clears the target.
func SetDefault(reg *Registry, snap Source) {
	if snap == nil {
		defaultSource.Store(nil)
		defaultRegistry.Store(nil)
		return
	}
	defaultSource.Store(&snap)
	defaultRegistry.Store(reg)
}

func currentSnapshot() (Snapshot, bool) {
	p := defaultSource.Load()
	if p == nil {
		return Snapshot{}, false
	}
	return (*p)(), true
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format under the spash_ namespace.
func (s Snapshot) WritePrometheus(w io.Writer) {
	g := func(name string, v interface{}) {
		fmt.Fprintf(w, "spash_%s %v\n", name, v)
	}
	g("pm_media_read_bytes_total", s.Mem.MediaReadBytes())
	g("pm_media_write_bytes_total", s.Mem.MediaWriteBytes())
	g("pm_xpline_reads_total", s.Mem.XPLineReads)
	g("pm_xpline_writes_total", s.Mem.XPLineWrites)
	g("pm_cacheline_reads_total", s.Mem.CachelineReads)
	g("pm_cacheline_writes_total", s.Mem.CachelineWrites)
	g("pm_flushes_total", s.Mem.Flushes)
	g("pm_fences_total", s.Mem.Fences)
	g("pm_evictions_total", s.Mem.Evictions)
	g("pm_ntstores_total", s.Mem.NTStores)
	g("pm_cache_hits_total", s.Mem.CacheHits)
	g("pm_cache_misses_total", s.Mem.CacheMisses)
	g("htm_commits_total", s.HTM.Commits)
	g("htm_conflicts_total", s.HTM.Conflicts)
	g("htm_capacity_aborts_total", s.HTM.Capacities)
	g("htm_explicit_aborts_total", s.HTM.Explicits)
	g("htm_irrevocable_total", s.HTM.Irrevocable)
	g("alloc_watermark_bytes", s.Alloc.WatermarkBytes)
	g("alloc_arenas", s.Alloc.Arenas)
	g("alloc_free_blocks", s.Alloc.FreeBlocks)
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		g(k+"_total", s.Counters[k])
	}
	hnames := make([]string, 0, len(s.Hists))
	for k := range s.Hists {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		h := s.Hists[k]
		if h.Count() == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			p     float64
		}{{"0.5", 50}, {"0.99", 99}, {"1", 100}} {
			fmt.Fprintf(w, "spash_%s{quantile=%q} %d\n", k, q.label, h.Percentile(q.p))
		}
		fmt.Fprintf(w, "spash_%s_count %d\n", k, h.Count())
	}
}

// Handler serves the current default snapshot as Prometheus text.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s, ok := currentSnapshot()
		if !ok {
			http.Error(w, "no observable index registered", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WritePrometheus(w)
	})
}

// traceHandler serves the default registry's trace ring as JSON.
func traceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := defaultRegistry.Load()
		if r == nil {
			http.Error(w, "no observable index registered", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		r.ring.WriteJSON(w)
	})
}

// publishExpvar exposes the default snapshot under the expvar key
// "spash" (idempotent; expvar panics on duplicate names).
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("spash", expvar.Func(func() any {
			s, ok := currentSnapshot()
			if !ok {
				return nil
			}
			return s
		}))
	})
}

// NewMux returns the observability mux: /metrics (Prometheus text of
// the default snapshot), /debug/vars (expvar, including the "spash"
// snapshot), /debug/pprof/* and /debug/obs/trace (trace-ring JSON).
func NewMux() *http.ServeMux {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/obs/trace", traceHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability HTTP server on addr (e.g.
// "127.0.0.1:9100"; ":0" picks a free port) and returns the bound
// address. The server runs until the process exits.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: NewMux()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
