package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Source produces the current cumulative snapshot of a live index.
type Source func() Snapshot

// Sources bundles every export feed a live DB can offer. Snapshot is
// required; the rest are optional (their endpoints report 503 when
// absent).
type Sources struct {
	// Snapshot produces the cumulative aggregate snapshot.
	Snapshot Source
	// Shards produces per-shard snapshots (index order).
	Shards func() []Snapshot
	// SlowOps returns the worst-n retained operations, slowest first.
	SlowOps func(n int) []SlowOp
	// Health evaluates the current health verdict.
	Health func() Health
	// Registry backs the trace-ring endpoint.
	Registry *Registry
}

// defaultSources is the process-wide export target: the most recently
// registered observable index. Benchmarks open many indexes in
// sequence; the export endpoints follow the live one.
var (
	defaultSources atomic.Pointer[Sources]
	expvarOnce     sync.Once
)

// SetDefault registers reg and snap as the process-wide export target
// for /metrics, /debug/vars and /debug/obs/trace. Passing a nil snap
// clears the target. Shorthand for SetSources with only the required
// feed.
func SetDefault(reg *Registry, snap Source) {
	if snap == nil {
		defaultSources.Store(nil)
		return
	}
	SetSources(Sources{Snapshot: snap, Registry: reg})
}

// SetSources registers the full export bundle (see Sources). A nil
// Snapshot feed clears the target.
func SetSources(s Sources) {
	if s.Snapshot == nil {
		defaultSources.Store(nil)
		return
	}
	defaultSources.Store(&s)
}

func currentSources() *Sources {
	return defaultSources.Load()
}

func currentSnapshot() (Snapshot, bool) {
	s := currentSources()
	if s == nil {
		return Snapshot{}, false
	}
	return s.Snapshot(), true
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format under the spash_ namespace.
func (s Snapshot) WritePrometheus(w io.Writer) {
	g := func(name string, v interface{}) {
		fmt.Fprintf(w, "spash_%s %v\n", name, v)
	}
	g("pm_media_read_bytes_total", s.Mem.MediaReadBytes())
	g("pm_media_write_bytes_total", s.Mem.MediaWriteBytes())
	g("pm_xpline_reads_total", s.Mem.XPLineReads)
	g("pm_xpline_writes_total", s.Mem.XPLineWrites)
	g("pm_cacheline_reads_total", s.Mem.CachelineReads)
	g("pm_cacheline_writes_total", s.Mem.CachelineWrites)
	g("pm_flushes_total", s.Mem.Flushes)
	g("pm_fences_total", s.Mem.Fences)
	g("pm_evictions_total", s.Mem.Evictions)
	g("pm_ntstores_total", s.Mem.NTStores)
	g("pm_cache_hits_total", s.Mem.CacheHits)
	g("pm_cache_misses_total", s.Mem.CacheMisses)
	g("htm_commits_total", s.HTM.Commits)
	g("htm_conflicts_total", s.HTM.Conflicts)
	g("htm_capacity_aborts_total", s.HTM.Capacities)
	g("htm_explicit_aborts_total", s.HTM.Explicits)
	g("htm_irrevocable_total", s.HTM.Irrevocable)
	g("alloc_watermark_bytes", s.Alloc.WatermarkBytes)
	g("alloc_arenas", s.Alloc.Arenas)
	g("alloc_free_blocks", s.Alloc.FreeBlocks)
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		g(k+"_total", s.Counters[k])
	}
	hnames := make([]string, 0, len(s.Hists))
	for k := range s.Hists {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		h := s.Hists[k]
		if h.Count() == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			p     float64
		}{{"0.5", 50}, {"0.99", 99}, {"1", 100}} {
			fmt.Fprintf(w, "spash_%s{quantile=%q} %d\n", k, q.label, h.Percentile(q.p))
		}
		fmt.Fprintf(w, "spash_%s_count %d\n", k, h.Count())
	}
	gnames := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	for _, k := range gnames {
		g(k, s.Gauges[k])
	}
	writeDurMap(w, "phase_latency_ns", "phase", s.Phases)
	writeDurMap(w, "op_latency_ns", "op", s.OpLat)
}

// writeDurMap renders a duration-histogram map as Prometheus summary
// lines: spash_<metric>{<label>="<key>",quantile="..."} plus a _count.
func writeDurMap(w io.Writer, metric, label string, m map[string]DurSnapshot) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := m[k]
		if d.Count() == 0 {
			continue
		}
		for _, q := range []struct {
			lbl string
			p   float64
		}{{"0.5", 50}, {"0.99", 99}, {"1", 100}} {
			fmt.Fprintf(w, "spash_%s{%s=%q,quantile=%q} %d\n",
				metric, label, k, q.lbl, d.PercentileNS(q.p))
		}
		fmt.Fprintf(w, "spash_%s_count{%s=%q} %d\n", metric, label, k, d.Count())
	}
}

// Handler serves the current default snapshot as Prometheus text.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s, ok := currentSnapshot()
		if !ok {
			http.Error(w, "no observable index registered", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WritePrometheus(w)
	})
}

// traceHandler serves the default registry's trace ring as JSON.
func traceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := currentSources()
		if s == nil || s.Registry == nil {
			http.Error(w, "no observable index registered", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		s.Registry.ring.WriteJSON(w)
	})
}

// jsonHandler serves fn's result as JSON, 503 when the feed is absent.
func jsonHandler(fn func(s *Sources, req *http.Request) (any, bool)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := currentSources()
		if s == nil {
			http.Error(w, "no observable index registered", http.StatusServiceUnavailable)
			return
		}
		v, ok := fn(s, req)
		if !ok {
			http.Error(w, "feed not available", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v)
	})
}

// snapshotHandler serves the finalized cumulative snapshot as JSON.
func snapshotHandler() http.Handler {
	return jsonHandler(func(s *Sources, _ *http.Request) (any, bool) {
		snap := s.Snapshot()
		snap.Finalize()
		return snap, true
	})
}

// shardsHandler serves per-shard finalized snapshots as a JSON array.
func shardsHandler() http.Handler {
	return jsonHandler(func(s *Sources, _ *http.Request) (any, bool) {
		if s.Shards == nil {
			return nil, false
		}
		snaps := s.Shards()
		for i := range snaps {
			snaps[i].Finalize()
		}
		return snaps, true
	})
}

// slowlogHandler serves the worst-n retained ops (?n=, default 32).
func slowlogHandler() http.Handler {
	return jsonHandler(func(s *Sources, req *http.Request) (any, bool) {
		if s.SlowOps == nil {
			return nil, false
		}
		n := 32
		if q := req.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		ops := s.SlowOps(n)
		if ops == nil {
			ops = []SlowOp{}
		}
		return ops, true
	})
}

// healthHandler serves the current health verdict.
func healthHandler() http.Handler {
	return jsonHandler(func(s *Sources, _ *http.Request) (any, bool) {
		if s.Health == nil {
			return nil, false
		}
		return s.Health(), true
	})
}

// publishExpvar exposes the default snapshot under the expvar key
// "spash" (idempotent; expvar panics on duplicate names).
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("spash", expvar.Func(func() any {
			s, ok := currentSnapshot()
			if !ok {
				return nil
			}
			return s
		}))
	})
}

// NewMux returns the observability mux: /metrics (Prometheus text of
// the default snapshot), /debug/vars (expvar, including the "spash"
// snapshot), /debug/pprof/*, /debug/obs/trace (trace-ring JSON) and
// the /debug/spash/* JSON feeds (snapshot, shards, slowlog, health).
func NewMux() *http.ServeMux {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/obs/trace", traceHandler())
	mux.Handle("/debug/spash/snapshot", snapshotHandler())
	mux.Handle("/debug/spash/shards", shardsHandler())
	mux.Handle("/debug/spash/slowlog", slowlogHandler())
	mux.Handle("/debug/spash/health", healthHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability HTTP server on addr (e.g.
// "127.0.0.1:9100"; ":0" picks a free port), returning the bound
// address and a stop function. stop closes the listener and joins the
// serving goroutine, so after it returns no goroutine of this server
// is running — callers own the lifetime instead of leaking the server
// until process exit.
func Serve(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux()}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ln)
	}()
	stop := func() {
		_ = srv.Close()
		<-served
	}
	return ln.Addr().String(), stop, nil
}
