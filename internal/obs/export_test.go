package obs

import (
	"net"
	"net/http"
	"testing"
)

// TestServeStopJoins pins Serve's lifetime contract: the returned
// stop function closes the listener and joins the serving goroutine,
// so after stop returns the port is released and no goroutine of the
// server survives. Before stop existed, every Serve leaked its
// http.Server until process exit.
func TestServeStopJoins(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The server answers while running (503 without a registered
	// source is still an answer).
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics while serving: %v", err)
	}
	resp.Body.Close()

	stop()
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after stop returned")
	}
	stop() // idempotent: a second stop must not hang or panic
}

// TestServeBadAddr: a listen failure surfaces as an error, not a
// panic, and returns no stop function to misuse.
func TestServeBadAddr(t *testing.T) {
	if _, _, err := Serve("256.0.0.1:bad"); err == nil {
		t.Fatal("Serve on a bad address succeeded")
	}
}
