package obs

import "fmt"

// Health model: a Snapshot reduced against configurable watermarks to
// one of OK / DEGRADED / CRITICAL, with human-readable reasons. The
// inputs are the signals an operator acts on: quarantined segments,
// replication lag, HTM abort rate, fsck damage, scrub coverage.

// HealthStatus is the overall verdict.
type HealthStatus int

const (
	HealthOK HealthStatus = iota
	HealthDegraded
	HealthCritical
)

func (s HealthStatus) String() string {
	switch s {
	case HealthOK:
		return "OK"
	case HealthDegraded:
		return "DEGRADED"
	case HealthCritical:
		return "CRITICAL"
	}
	return "UNKNOWN"
}

// MarshalJSON renders the status by name.
func (s HealthStatus) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the status by name (consumers of the health
// endpoint, e.g. spash-top's attach mode, decode the verdict back).
func (s *HealthStatus) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"OK"`:
		*s = HealthOK
	case `"DEGRADED"`:
		*s = HealthDegraded
	case `"CRITICAL"`:
		*s = HealthCritical
	default:
		return fmt.Errorf("unknown health status %s", b)
	}
	return nil
}

// HealthWatermarks are the thresholds the health model evaluates
// against. Zero values select conservative defaults (see
// withDefaults); set a threshold negative to disable that check.
type HealthWatermarks struct {
	// QuarantineDegraded / QuarantineCritical: quarantined-segment
	// counts at which the verdict degrades. Default 1 / 16.
	QuarantineDegraded int64 `json:"quarantine_degraded"`
	QuarantineCritical int64 `json:"quarantine_critical"`
	// ReplLagDegraded / ReplLagCritical: replica lag in records behind
	// the primary. Default 1 / 4096.
	ReplLagDegraded int64 `json:"repl_lag_degraded"`
	ReplLagCritical int64 `json:"repl_lag_critical"`
	// AbortRateDegraded / AbortRateCritical: HTM aborts per commit.
	// Default 1.0 / 8.0.
	AbortRateDegraded float64 `json:"abort_rate_degraded"`
	AbortRateCritical float64 `json:"abort_rate_critical"`
	// UnrecoverableCritical: fsck-unrecoverable segment count that is
	// immediately critical. Default 1.
	UnrecoverableCritical int64 `json:"unrecoverable_critical"`
	// MinScrubPasses: a running scrubber that has not yet completed
	// this many passes marks the index DEGRADED (coverage unknown).
	// Default 0 (disabled): an index without a scrubber is healthy.
	MinScrubPasses int64 `json:"min_scrub_passes"`
	// SpillDegraded / SpillCritical: frames parked in the primary's
	// degraded-mode spill queue (shipping circuit breaker tripped).
	// Default 1 / 4096. A non-closed breaker is itself DEGRADED
	// regardless of these thresholds (set SpillDegraded negative to
	// disable the spill-depth checks only).
	SpillDegraded int64 `json:"spill_degraded"`
	SpillCritical int64 `json:"spill_critical"`
}

// withDefaults fills zero thresholds with the defaults above.
func (w HealthWatermarks) withDefaults() HealthWatermarks {
	if w.QuarantineDegraded == 0 {
		w.QuarantineDegraded = 1
	}
	if w.QuarantineCritical == 0 {
		w.QuarantineCritical = 16
	}
	if w.ReplLagDegraded == 0 {
		w.ReplLagDegraded = 1
	}
	if w.ReplLagCritical == 0 {
		w.ReplLagCritical = 4096
	}
	if w.AbortRateDegraded == 0 {
		w.AbortRateDegraded = 1.0
	}
	if w.AbortRateCritical == 0 {
		w.AbortRateCritical = 8.0
	}
	if w.UnrecoverableCritical == 0 {
		w.UnrecoverableCritical = 1
	}
	if w.SpillDegraded == 0 {
		w.SpillDegraded = 1
	}
	if w.SpillCritical == 0 {
		w.SpillCritical = 4096
	}
	return w
}

// Health is the evaluated verdict plus the signals it was derived
// from, so a consumer (exporter, spash-top) can show both.
type Health struct {
	Status  HealthStatus `json:"status"`
	Reasons []string     `json:"reasons,omitempty"`

	Quarantines       int64   `json:"quarantines"`
	FsckUnrecoverable int64   `json:"fsck_unrecoverable"`
	ReplLagRecords    int64   `json:"repl_lag_records"`
	ReplLagBytes      int64   `json:"repl_lag_bytes"`
	AbortRate         float64 `json:"abort_rate"`
	ScrubPasses       int64   `json:"scrub_passes"`
	// BreakerState is the shipping circuit breaker's state on a
	// replication primary (0 closed, 1 half-open, 2 open) and
	// SpillDepth the frames parked in its degraded-mode spill queue.
	BreakerState int64 `json:"repl_breaker_state"`
	SpillDepth   int64 `json:"repl_spill_depth"`
}

// EvalHealth reduces a (cumulative or diffed) Snapshot to a Health
// verdict under the given watermarks.
func EvalHealth(s Snapshot, w HealthWatermarks) Health {
	w = w.withDefaults()
	h := Health{
		Quarantines:       s.Counters[CounterNames[CQuarantines]],
		ReplLagRecords:    s.Gauges[GaugeNames[GReplLagRecords]],
		ReplLagBytes:      s.Gauges[GaugeNames[GReplLagBytes]],
		FsckUnrecoverable: s.Gauges[GaugeNames[GFsckUnrecoverable]],
		ScrubPasses:       s.Gauges[GaugeNames[GScrubPasses]],
		BreakerState:      s.Gauges[GaugeNames[GReplBreakerState]],
		SpillDepth:        s.Gauges[GaugeNames[GReplSpillDepth]],
	}
	if s.HTM.Commits > 0 {
		h.AbortRate = float64(s.HTM.Conflicts+s.HTM.Capacities+s.HTM.Explicits) /
			float64(s.HTM.Commits)
	}

	worst := HealthOK
	raise := func(to HealthStatus, format string, args ...any) {
		if to > worst {
			worst = to
		}
		h.Reasons = append(h.Reasons, fmt.Sprintf(format, args...))
	}

	if h.FsckUnrecoverable > 0 && w.UnrecoverableCritical > 0 && h.FsckUnrecoverable >= w.UnrecoverableCritical {
		raise(HealthCritical, "%d unrecoverable segment(s) reported by fsck", h.FsckUnrecoverable)
	}
	if w.QuarantineCritical > 0 && h.Quarantines >= w.QuarantineCritical {
		raise(HealthCritical, "%d segment(s) quarantined (critical >= %d)", h.Quarantines, w.QuarantineCritical)
	} else if w.QuarantineDegraded > 0 && h.Quarantines >= w.QuarantineDegraded {
		raise(HealthDegraded, "%d segment(s) quarantined", h.Quarantines)
	}
	if w.ReplLagCritical > 0 && h.ReplLagRecords >= w.ReplLagCritical {
		raise(HealthCritical, "replica %d record(s) behind (critical >= %d)", h.ReplLagRecords, w.ReplLagCritical)
	} else if w.ReplLagDegraded > 0 && h.ReplLagRecords >= w.ReplLagDegraded {
		raise(HealthDegraded, "replica %d record(s) / %d byte(s) behind", h.ReplLagRecords, h.ReplLagBytes)
	}
	if w.AbortRateCritical > 0 && h.AbortRate >= w.AbortRateCritical {
		raise(HealthCritical, "HTM abort rate %.2f/commit (critical >= %.2f)", h.AbortRate, w.AbortRateCritical)
	} else if w.AbortRateDegraded > 0 && h.AbortRate >= w.AbortRateDegraded {
		raise(HealthDegraded, "HTM abort rate %.2f/commit", h.AbortRate)
	}
	if w.MinScrubPasses > 0 && h.ScrubPasses < w.MinScrubPasses {
		raise(HealthDegraded, "scrub coverage %d pass(es), want >= %d", h.ScrubPasses, w.MinScrubPasses)
	}
	switch h.BreakerState {
	case 1:
		raise(HealthDegraded, "replication breaker half-open (probing the transport)")
	case 2:
		raise(HealthDegraded, "replication breaker open (degraded-async shipping)")
	}
	if w.SpillCritical > 0 && h.SpillDepth >= w.SpillCritical {
		raise(HealthCritical, "%d frame(s) in the replication spill queue (critical >= %d)", h.SpillDepth, w.SpillCritical)
	} else if w.SpillDegraded > 0 && h.SpillDepth >= w.SpillDegraded {
		raise(HealthDegraded, "%d frame(s) in the replication spill queue", h.SpillDepth)
	}

	h.Status = worst
	return h
}

// MergeHealth combines per-shard verdicts into one: the worst status
// wins and reasons are concatenated with shard prefixes; signal fields
// are summed (abort rate record-weighted is overkill — max is shown).
func MergeHealth(shards []Health) Health {
	var out Health
	for i, h := range shards {
		if h.Status > out.Status {
			out.Status = h.Status
		}
		for _, r := range h.Reasons {
			out.Reasons = append(out.Reasons, fmt.Sprintf("shard %d: %s", i, r))
		}
		out.Quarantines += h.Quarantines
		out.FsckUnrecoverable += h.FsckUnrecoverable
		out.ReplLagRecords += h.ReplLagRecords
		out.ReplLagBytes += h.ReplLagBytes
		out.ScrubPasses += h.ScrubPasses
		out.SpillDepth += h.SpillDepth
		if h.BreakerState > out.BreakerState {
			out.BreakerState = h.BreakerState
		}
		if h.AbortRate > out.AbortRate {
			out.AbortRate = h.AbortRate
		}
	}
	return out
}
