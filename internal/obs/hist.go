package obs

// HistSnapshot is a summed histogram: Counts[v] is the number of
// samples with (clamped) value v. Bucket index equals exact value for
// the bounded quantities the registry tracks.
type HistSnapshot struct {
	Counts []int64 `json:"counts"`
}

// Count returns the total number of samples.
func (h HistSnapshot) Count() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Mean returns the average sample value (0 when empty).
func (h HistSnapshot) Mean() float64 {
	var n, sum int64
	for v, c := range h.Counts {
		n += c
		sum += int64(v) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Percentile returns the smallest value v such that at least p percent
// of the samples are ≤ v (0 when empty). p is in [0, 100].
func (h HistSnapshot) Percentile(p float64) int {
	total := h.Count()
	if total == 0 {
		return 0
	}
	need := int64(p / 100 * float64(total))
	if need < 1 {
		need = 1
	}
	if need > total {
		need = total
	}
	var cum int64
	for v, c := range h.Counts {
		cum += c
		if cum >= need {
			return v
		}
	}
	return len(h.Counts) - 1
}

// Sub returns h - o bucket-wise (missing buckets treated as zero).
func (h HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	n := len(h.Counts)
	if len(o.Counts) > n {
		n = len(o.Counts)
	}
	out := HistSnapshot{Counts: make([]int64, n)}
	for i := 0; i < n; i++ {
		var a, b int64
		if i < len(h.Counts) {
			a = h.Counts[i]
		}
		if i < len(o.Counts) {
			b = o.Counts[i]
		}
		out.Counts[i] = a - b
	}
	return out
}

// Add returns h + o bucket-wise.
func (h HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	n := len(h.Counts)
	if len(o.Counts) > n {
		n = len(o.Counts)
	}
	out := HistSnapshot{Counts: make([]int64, n)}
	for i := 0; i < n; i++ {
		if i < len(h.Counts) {
			out.Counts[i] += h.Counts[i]
		}
		if i < len(o.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}
