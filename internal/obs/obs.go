// Package obs is the unified observability layer: a metrics registry
// of cache-line-padded striped counters and bounded-value histograms,
// a lock-free trace ring of timestamped structural events, a Snapshot
// type that unifies the per-subsystem counters (pmem media traffic,
// HTM outcomes, allocator occupancy, index structure churn) into one
// diffable document, and an export surface (expvar, Prometheus text,
// pprof — see export.go).
//
// The paper validates every design claim by counting exactly these
// events: ipmctl media read/write bytes for the write-amplification
// argument (Fig 8), HTM abort rates for the two-phase protocol (§IV-A)
// and doubling stall time for the staged-doubling claim (§IV-B). The
// registry makes those quantities first-class for any run.
//
// Hot-path cost. All mutation methods are nil-safe: a disabled
// registry is a nil *Registry (and nil *Lane), so instrumentation
// call sites cost one predictable branch when observability is off.
// When on, each worker increments its own cache-line-padded lane, so
// counters are contention-free under any worker count.
package obs

import (
	"runtime"
	"sync/atomic"
)

// Counter identifies one structural-event counter. The set mirrors the
// events the paper reasons about; see CounterNames for the export
// names and the README's taxonomy table for the figure mapping.
type Counter int

const (
	// CSplits counts committed segment splits (§III-A).
	CSplits Counter = iota
	// CSplitFallbacks counts splits that completed on the irrevocable
	// directory-locked path after the transactional path kept aborting.
	CSplitFallbacks
	// CMerges counts committed buddy-segment merges.
	CMerges
	// CDoubles counts completed directory doublings (§IV-B).
	CDoubles
	// CDoublingStages counts partition-copy stages executed by the
	// doubling thread; CCollabStages those executed collaboratively by
	// concurrent operations.
	CDoublingStages
	CCollabStages
	// CResizeStallNS accumulates the virtual duration (ns) of
	// stop-the-world resizes — the blocking §IV-B's staged design
	// eliminates.
	CResizeStallNS
	// CHTMConflicts / CHTMCapacity count HTM aborts by cause;
	// CLockFallbacks counts operations that took the per-segment
	// fallback lock (the two-phase protocol's slow path, §IV-A).
	CHTMConflicts
	CHTMCapacity
	CLockFallbacks
	// CUpdateInPlace / CUpdateAppend classify adaptive updates
	// (§III-B): value overwritten in place (same size class or inline)
	// vs. a fresh record appended.
	CUpdateInPlace
	CUpdateAppend
	// CFlushSkipHot / CFlushSkipSmall count update flushes elided by
	// the Table I policy (hot entry; ≤ 1 cacheline). CUpdateFlushes
	// counts the asynchronous flushes actually issued.
	CFlushSkipHot
	CFlushSkipSmall
	CUpdateFlushes
	// CChunkFlushes counts compacted-flush XPLine chunk write-backs
	// (§III-C); CRecordFlushes counts individual record flushes.
	CChunkFlushes
	CRecordFlushes
	// CSegAlloc / CSegFree count segment churn at the allocator.
	CSegAlloc
	CSegFree
	// CPipelineBatches counts pipelined batch executions (§III-D).
	CPipelineBatches
	// CScrubSegments / CScrubCorruptions count segments verified by the
	// online scrubber and the corruptions it found; CQuarantines counts
	// damaged segments dropped and rebuilt (scrubber or fsck).
	CScrubSegments
	CScrubCorruptions
	CQuarantines
	// CReplShipRecords / CReplShipSegments count committed op records
	// and sealed-segment ranges shipped by a replication primary
	// (internal/repl); CReplApplyRecords / CReplApplySegments count
	// the frames applied on the replica side.
	CReplShipRecords
	CReplShipSegments
	CReplApplyRecords
	CReplApplySegments
	// CReplFetches counts authoritative range fetches served to a
	// peer; CReplRepairKeys counts keys restored locally by replica
	// read-repair.
	CReplFetches
	CReplRepairKeys
	// Unreliable-transport hardening (internal/repl): CReplRetries
	// counts ship re-attempts after a transport timeout;
	// CReplApplyDupes counts duplicate frames the replica acked and
	// dropped; CReplReorderBuffered counts ahead-of-cursor frames held
	// in the reorder window; CReplSheds counts frames a replica
	// rejected over a full pause buffer or reorder window;
	// CReplBreakerTrips counts circuit-breaker openings on the
	// primary; CReplSpills counts frames diverted to the degraded-mode
	// spill queue; CReplSpillSheds counts writes refused over a full
	// spill queue; CReplResyncs counts cursor-handshake resyncs that
	// found work; CReplReplays counts frames re-shipped from the
	// replay log; CReplReseeds counts automated FullSync re-seeds.
	CReplRetries
	CReplApplyDupes
	CReplReorderBuffered
	CReplSheds
	CReplBreakerTrips
	CReplSpills
	CReplSpillSheds
	CReplResyncs
	CReplReplays
	CReplReseeds

	// Serving-layer counters (internal/server). CServeAccepts counts
	// accepted connections; CServeCmds counts commands executed, with
	// CServeCmdGet/Set/Del/Other breaking them out by verb family;
	// CServeBatches counts ExecBatch calls made on behalf of
	// connections (one per drained read burst); CServeErrors counts
	// error replies written (protocol and command errors alike).
	CServeAccepts
	CServeCmds
	CServeCmdGet
	CServeCmdSet
	CServeCmdDel
	CServeCmdOther
	CServeBatches
	CServeErrors

	numCounters
)

// CounterNames are the stable export names, indexed by Counter.
var CounterNames = [...]string{
	CSplits:          "splits",
	CSplitFallbacks:  "split_fallbacks",
	CMerges:          "merges",
	CDoubles:         "doubles",
	CDoublingStages:  "doubling_stages",
	CCollabStages:    "collab_stages",
	CResizeStallNS:   "resize_stall_ns",
	CHTMConflicts:    "htm_conflicts",
	CHTMCapacity:     "htm_capacity",
	CLockFallbacks:   "lock_fallbacks",
	CUpdateInPlace:   "update_inplace",
	CUpdateAppend:    "update_append",
	CFlushSkipHot:    "flush_skip_hot",
	CFlushSkipSmall:  "flush_skip_small",
	CUpdateFlushes:   "update_flushes",
	CChunkFlushes:    "chunk_flushes",
	CRecordFlushes:   "record_flushes",
	CSegAlloc:        "seg_alloc",
	CSegFree:         "seg_free",
	CPipelineBatches: "pipeline_batches",

	CScrubSegments:    "scrub_segments",
	CScrubCorruptions: "scrub_corruptions",
	CQuarantines:      "quarantines",

	CReplShipRecords:   "repl_ship_records",
	CReplShipSegments:  "repl_ship_segments",
	CReplApplyRecords:  "repl_apply_records",
	CReplApplySegments: "repl_apply_segments",
	CReplFetches:       "repl_fetches",
	CReplRepairKeys:    "repl_repair_keys",

	CReplRetries:         "repl_retries",
	CReplApplyDupes:      "repl_apply_dupes",
	CReplReorderBuffered: "repl_reorder_buffered",
	CReplSheds:           "repl_sheds",
	CReplBreakerTrips:    "repl_breaker_trips",
	CReplSpills:          "repl_spills",
	CReplSpillSheds:      "repl_spill_sheds",
	CReplResyncs:         "repl_resyncs",
	CReplReplays:         "repl_replays",
	CReplReseeds:         "repl_reseeds",
	CServeAccepts:        "serve_accepts",
	CServeCmds:           "serve_cmds",
	CServeCmdGet:         "serve_cmd_get",
	CServeCmdSet:         "serve_cmd_set",
	CServeCmdDel:         "serve_cmd_del",
	CServeCmdOther:       "serve_cmd_other",
	CServeBatches:        "serve_batches",
	CServeErrors:         "serve_errors",
}

// Gauge identifies one last-value metric: a level (not a rate) that a
// subsystem overwrites as its state changes. Gauges live on the
// registry (not striped) because their writers are rare.
type Gauge int

const (
	// GReplLagRecords / GReplLagBytes: how far a replica is behind the
	// primary, in committed records and payload bytes (internal/repl).
	GReplLagRecords Gauge = iota
	GReplLagBytes
	// GScrubPasses: completed full passes of the online scrubber.
	GScrubPasses
	// GFsckUnrecoverable: segments the last Fsck could not repair.
	GFsckUnrecoverable
	// GReplBreakerState: the shipping circuit breaker's state on a
	// replication primary (0 closed, 1 half-open, 2 open; see
	// internal/repl). GReplSpillDepth / GReplSpillBytes: frames and
	// payload bytes parked in the degraded-mode spill queue.
	GReplBreakerState
	GReplSpillDepth
	GReplSpillBytes
	// GServeConns: currently open server connections.
	// GServeInflight: ops parsed but not yet replied to, summed over
	// connections — the live pipelining depth the backpressure window
	// bounds.
	GServeConns
	GServeInflight

	numGauges
)

// GaugeNames are the stable export names, indexed by Gauge.
var GaugeNames = [...]string{
	GReplLagRecords:    "repl_lag_records",
	GReplLagBytes:      "repl_lag_bytes",
	GScrubPasses:       "scrub_passes",
	GFsckUnrecoverable: "fsck_unrecoverable",
	GReplBreakerState:  "repl_breaker_state",
	GReplSpillDepth:    "repl_spill_depth",
	GReplSpillBytes:    "repl_spill_bytes",
	GServeConns:        "serve_conns",
	GServeInflight:     "serve_inflight",
}

// Hist identifies one bounded-value histogram.
type Hist int

const (
	// HProbeLen is the per-lookup probe length: key slots examined by
	// locate before a hit or a proven miss (the every-overflow-entry-
	// has-a-hint invariant bounds it by one segment, §III-A).
	HProbeLen Hist = iota
	// HSegOccupancy is the live-entry count of a segment observed at
	// restructure time (split/merge), the distribution behind the
	// load-factor claim of Fig 9.
	HSegOccupancy
	// HServeBatch is the op count of one server-side ExecBatch (the
	// size of a drained read burst, clamped at the backpressure
	// window). Values ≥ histBuckets land in the top bucket.
	HServeBatch

	numHists
)

// HistNames are the stable export names, indexed by Hist.
var HistNames = [...]string{
	HProbeLen:     "probe_len",
	HSegOccupancy: "seg_occupancy",
	HServeBatch:   "serve_batch",
}

// histBuckets is the value range of a histogram: values are clamped to
// [0, histBuckets). Both tracked quantities are structurally bounded
// well below this (probe length by the 16-slot segment plus hint scan,
// occupancy by 16 slots), so bucket index == exact value.
const histBuckets = 48

// lane is one stripe of the registry. The trailing pad keeps adjacent
// lanes from sharing the final cacheline.
type lane struct {
	counters [numCounters]atomic.Int64
	hists    [numHists][histBuckets]atomic.Int64
	// phases / oplat are the latency-attribution histograms fed by
	// completed spans (span.go): per-phase durations and end-to-end
	// op latency by kind, log2-bucketed virtual ns.
	phases [NumPhases][durBuckets]atomic.Int64
	oplat  [numSpanKinds][durBuckets]atomic.Int64
	_      [8]uint64
}

// Registry is the metrics registry. The zero value is not usable; a
// nil *Registry is the disabled registry (all methods no-ops).
type Registry struct {
	lanes  []lane
	mask   uint64
	next   atomic.Uint64
	ring   *Ring
	gauges [numGauges]atomic.Int64
	slow   slowLog
}

// NewRegistry returns an enabled registry sized for the current
// GOMAXPROCS, with the default trace-ring capacity.
func NewRegistry() *Registry {
	return NewRegistrySized(2*runtime.GOMAXPROCS(0), DefaultRingSize)
}

// NewRegistrySized returns a registry with at least lanes stripes
// (rounded up to a power of two) and a trace ring of ringSize events.
func NewRegistrySized(lanes, ringSize int) *Registry {
	n := 1
	for n < lanes {
		n <<= 1
	}
	return &Registry{
		lanes: make([]lane, n),
		mask:  uint64(n - 1),
		ring:  newRing(ringSize),
	}
}

// Lane is a worker's private stripe. Workers obtain one at start-up
// (Registry.Lane) and do all hot-path accounting through it; a nil
// *Lane is the disabled lane.
type Lane struct {
	l   *lane
	reg *Registry
}

// Lane hands out a stripe (round-robin). Nil-safe: a nil registry
// returns a nil (disabled) lane.
func (r *Registry) Lane() *Lane {
	if r == nil {
		return nil
	}
	return &Lane{l: &r.lanes[r.next.Add(1)&r.mask], reg: r}
}

// Inc adds 1 to counter c.
func (ln *Lane) Inc(c Counter) {
	if ln == nil {
		return
	}
	ln.l.counters[c].Add(1)
}

// Add adds d to counter c.
func (ln *Lane) Add(c Counter, d int64) {
	if ln == nil {
		return
	}
	ln.l.counters[c].Add(d)
}

// Observe records value v (clamped to the bucket range) in histogram h.
func (ln *Lane) Observe(h Hist, v int) {
	if ln == nil {
		return
	}
	if v < 0 {
		v = 0
	} else if v >= histBuckets {
		v = histBuckets - 1
	}
	ln.l.hists[h][v].Add(1)
}

// Inc adds 1 to counter c on a stripe derived from the counter id.
// For call sites without a per-worker lane (rare structural events).
func (r *Registry) Inc(c Counter) { r.Add(c, 1) }

// Add adds d to counter c on a stripe derived from the counter id.
func (r *Registry) Add(c Counter, d int64) {
	if r == nil {
		return
	}
	r.lanes[uint64(c)&r.mask].counters[c].Add(d)
}

// ObserveKeyed records v in histogram h on the stripe selected by key
// (a key hash spreads contending workers without a lane).
func (r *Registry) ObserveKeyed(h Hist, key uint64, v int) {
	if r == nil {
		return
	}
	if v < 0 {
		v = 0
	} else if v >= histBuckets {
		v = histBuckets - 1
	}
	x := key * 0x9E3779B97F4A7C15
	r.lanes[(x>>32)&r.mask].hists[h][v].Add(1)
}

// SetGauge overwrites gauge g with v. Nil-safe.
func (r *Registry) SetGauge(g Gauge, v int64) {
	if r == nil {
		return
	}
	r.gauges[g].Store(v)
}

// AddGauge adds d to gauge g. Nil-safe.
func (r *Registry) AddGauge(g Gauge, d int64) {
	if r == nil {
		return
	}
	r.gauges[g].Add(d)
}

// GaugeValue returns gauge g's current value. Nil-safe.
func (r *Registry) GaugeValue(g Gauge) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[g].Load()
}

// Gauges returns the non-zero gauges keyed by export name. Nil-safe.
func (r *Registry) Gauges() map[string]int64 {
	m := make(map[string]int64, int(numGauges))
	if r == nil {
		return m
	}
	for g := Gauge(0); g < numGauges; g++ {
		if v := r.gauges[g].Load(); v != 0 {
			m[GaugeNames[g]] = v
		}
	}
	return m
}

// Counters sums every lane and returns the totals keyed by export
// name. Nil-safe: a nil registry returns an empty map.
func (r *Registry) Counters() map[string]int64 {
	m := make(map[string]int64, int(numCounters))
	if r == nil {
		return m
	}
	for c := Counter(0); c < numCounters; c++ {
		var t int64
		for i := range r.lanes {
			t += r.lanes[i].counters[c].Load()
		}
		if t != 0 {
			m[CounterNames[c]] = t
		}
	}
	return m
}

// HistSnapshot sums histogram h across lanes. Nil-safe.
func (r *Registry) HistSnapshot(h Hist) HistSnapshot {
	s := HistSnapshot{Counts: make([]int64, histBuckets)}
	if r == nil {
		return s
	}
	for i := range r.lanes {
		for b := 0; b < histBuckets; b++ {
			s.Counts[b] += r.lanes[i].hists[h][b].Load()
		}
	}
	return s
}

// Trace appends a structural event to the trace ring. ts is the
// emitting worker's virtual clock (ns). Nil-safe.
func (r *Registry) Trace(kind EventKind, ts int64, a, b int64) {
	if r == nil {
		return
	}
	r.ring.add(kind, ts, a, b)
}

// TraceRing returns the registry's event ring (nil for a disabled
// registry).
func (r *Registry) TraceRing() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}
