package obs

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"spash/internal/alloc"
	"spash/internal/htm"
	"spash/internal/pmem"
)

func testSnapshot(scale int64) Snapshot {
	r := NewRegistrySized(4, 64)
	ln := r.Lane()
	ln.Add(CSplits, 3*scale)
	ln.Add(CHTMConflicts, 7*scale)
	r.Add(CDoubles, scale)
	for i := int64(0); i < 5*scale; i++ {
		ln.Observe(HProbeLen, int(i%9))
	}
	s := Capture(
		pmem.Stats{XPLineReads: uint64(100 * scale), XPLineWrites: uint64(40 * scale), Flushes: uint64(10 * scale)},
		htm.Stats{Commits: 50 * scale, Conflicts: 5 * scale},
		alloc.Stats{WatermarkBytes: uint64(1 << 20), Arenas: 2, FreeBlocks: 8 * scale},
		r,
	)
	s.Ops = 20 * scale
	return s
}

func TestSnapshotSubAddRoundTrip(t *testing.T) {
	a := testSnapshot(1)
	b := testSnapshot(3)
	// (b - a) + a must restore b exactly, counter- and bucket-wise.
	d := b.Sub(a)
	d.Ops = b.Ops - a.Ops // Sub clears Ops; the caller sets the phase's count
	got := d.Add(a)
	if !reflect.DeepEqual(got.Mem, b.Mem) || !reflect.DeepEqual(got.HTM, b.HTM) ||
		!reflect.DeepEqual(got.Alloc, b.Alloc) || !reflect.DeepEqual(got.Counters, b.Counters) {
		t.Fatalf("Sub/Add round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
	for k := range b.Hists {
		if !reflect.DeepEqual(got.Hists[k].Counts, b.Hists[k].Counts) {
			t.Fatalf("hist %s round trip mismatch: got %v want %v", k, got.Hists[k].Counts, b.Hists[k].Counts)
		}
	}
	if got.Ops != b.Ops {
		t.Fatalf("ops: got %d want %d", got.Ops, b.Ops)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := testSnapshot(2)
	s.Finalize()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Counters, s.Counters) || back.Ops != s.Ops ||
		back.Mem != s.Mem || back.HTM != s.HTM {
		t.Fatalf("JSON round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
	if back.Derived == nil || back.Derived.MediaReadBytesPerOp != s.Derived.MediaReadBytesPerOp {
		t.Fatalf("derived rates lost in JSON round trip: %+v", back.Derived)
	}
}

func TestDerivedRates(t *testing.T) {
	s := testSnapshot(1) // 100 XPLine reads, 40 writes, 10 flushes, 20 ops
	s.Finalize()
	if want := float64(100*pmem.XPLineSize) / 20; s.Derived.MediaReadBytesPerOp != want {
		t.Fatalf("MediaReadBytesPerOp = %v, want %v", s.Derived.MediaReadBytesPerOp, want)
	}
	if want := 0.5; s.Derived.FlushesPerOp != want {
		t.Fatalf("FlushesPerOp = %v, want %v", s.Derived.FlushesPerOp, want)
	}
	if want := 0.1; s.Derived.AbortsPerCommit != want {
		t.Fatalf("AbortsPerCommit = %v, want %v", s.Derived.AbortsPerCommit, want)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	r := NewRegistrySized(1, 16)
	ln := r.Lane()
	ln.Observe(HProbeLen, -5)            // clamps to 0
	ln.Observe(HProbeLen, 0)             // exact 0
	ln.Observe(HProbeLen, histBuckets-1) // last bucket
	ln.Observe(HProbeLen, histBuckets)   // clamps to last
	ln.Observe(HProbeLen, 1<<30)         // clamps to last
	h := r.HistSnapshot(HProbeLen)
	if h.Counts[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2 (clamped negative + exact zero)", h.Counts[0])
	}
	if h.Counts[histBuckets-1] != 3 {
		t.Fatalf("last bucket = %d, want 3 (exact max + two clamped)", h.Counts[histBuckets-1])
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
}

func TestHistPercentiles(t *testing.T) {
	var h HistSnapshot
	h.Counts = make([]int64, histBuckets)
	// 100 samples of value 1, 1 sample of value 40.
	h.Counts[1] = 100
	h.Counts[40] = 1
	if p := h.Percentile(50); p != 1 {
		t.Fatalf("p50 = %d, want 1", p)
	}
	if p := h.Percentile(100); p != 40 {
		t.Fatalf("p100 = %d, want 40", p)
	}
	if p := h.Percentile(99); p != 1 {
		t.Fatalf("p99 = %d, want 1", p)
	}
	if p := (HistSnapshot{}).Percentile(50); p != 0 {
		t.Fatalf("empty p50 = %d, want 0", p)
	}
	if m := h.Mean(); m < 1.3 || m > 1.5 {
		t.Fatalf("mean = %v, want ~1.39", m)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 20; i++ {
		r.add(EvSplit, int64(i*10), int64(i), 0)
	}
	evs := r.Drain()
	if len(evs) != 8 {
		t.Fatalf("drained %d events, want 8 (ring capacity)", len(evs))
	}
	// The retained window is the newest 8, oldest first.
	for i, ev := range evs {
		wantSeq := uint64(13 + i) // events 13..20 survive
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.A != int64(wantSeq-1) || ev.TS != int64(wantSeq-1)*10 {
			t.Fatalf("event %d: fields (ts=%d a=%d) inconsistent with seq %d", i, ev.TS, ev.A, ev.Seq)
		}
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
}

func TestTraceEventJSON(t *testing.T) {
	r := NewRegistrySized(1, 8)
	r.Trace(EvDoubleDone, 1234, 5, 678)
	var sb strings.Builder
	if err := r.TraceRing().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0]["ev"] != "double_done" || evs[0]["ts_ns"] != float64(1234) {
		t.Fatalf("unexpected trace JSON: %s", sb.String())
	}
}

// TestNilRegistrySafe exercises every mutation and read path on the
// disabled (nil) registry and lane.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	ln := r.Lane()
	if ln != nil {
		t.Fatal("nil registry returned a live lane")
	}
	ln.Inc(CSplits)
	ln.Add(CMerges, 5)
	ln.Observe(HProbeLen, 3)
	r.Inc(CSplits)
	r.Add(CMerges, 2)
	r.ObserveKeyed(HProbeLen, 42, 1)
	r.Trace(EvSplit, 1, 2, 3)
	if n := len(r.Counters()); n != 0 {
		t.Fatalf("nil registry has %d counters", n)
	}
	if c := r.HistSnapshot(HProbeLen).Count(); c != 0 {
		t.Fatalf("nil registry hist count %d", c)
	}
	if r.TraceRing() != nil || r.TraceRing().Len() != 0 || r.TraceRing().Drain() != nil {
		t.Fatal("nil registry trace ring not inert")
	}
}

// TestStripedCountersRace hammers lanes, keyed observations and the
// trace ring from many goroutines while concurrently summing; run
// under -race in CI.
func TestStripedCountersRace(t *testing.T) {
	r := NewRegistrySized(8, 64)
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ln := r.Lane()
			for i := 0; i < perWorker; i++ {
				ln.Inc(CSplits)
				ln.Observe(HProbeLen, i%10)
				r.Add(CMerges, 1)
				r.ObserveKeyed(HSegOccupancy, uint64(w*perWorker+i), i%16)
				if i%64 == 0 {
					r.Trace(EvSplit, int64(i), int64(w), 0)
				}
			}
		}(w)
	}
	// Concurrent readers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Counters()
				r.HistSnapshot(HProbeLen)
				r.TraceRing().Drain()
			}
		}
	}()
	wg.Wait()
	close(done)

	c := r.Counters()
	if c["splits"] != workers*perWorker {
		t.Fatalf("splits = %d, want %d", c["splits"], workers*perWorker)
	}
	if c["merges"] != workers*perWorker {
		t.Fatalf("merges = %d, want %d", c["merges"], workers*perWorker)
	}
	if n := r.HistSnapshot(HProbeLen).Count(); n != workers*perWorker {
		t.Fatalf("probe observations = %d, want %d", n, workers*perWorker)
	}
}

func TestPrometheusAndMux(t *testing.T) {
	s := testSnapshot(1)
	s.Finalize()
	reg := NewRegistrySized(1, 8)
	reg.Trace(EvSplit, 1, 2, 3)
	SetDefault(reg, func() Snapshot { return s })
	defer SetDefault(nil, nil)

	mux := NewMux()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/obs/trace", "/debug/pprof/"} {
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		mux.ServeHTTP(rw, req)
		if rw.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rw.Code)
		}
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, req)
	body := rw.Body.String()
	for _, want := range []string{
		"spash_pm_media_read_bytes_total",
		"spash_htm_commits_total 50",
		"spash_splits_total 3",
		`spash_probe_len{quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// Clearing the default turns the endpoints into 503s.
	SetDefault(nil, nil)
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if rw.Code != 503 {
		t.Fatalf("cleared /metrics: status %d, want 503", rw.Code)
	}
}
