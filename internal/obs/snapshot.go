package obs

import (
	"spash/internal/alloc"
	"spash/internal/htm"
	"spash/internal/pmem"
)

// Snapshot unifies every subsystem's counters into one diffable,
// machine-readable document: pmem media traffic (what the paper
// measures with ipmctl), HTM outcomes, allocator occupancy, the
// registry's structural counters and histograms, and — once Finalize
// is called with an operation count — derived per-op rates.
type Snapshot struct {
	// Mem is the simulated device's memory-event counters.
	Mem pmem.Stats `json:"mem"`
	// HTM is the transactional-memory domain's outcome counters.
	HTM htm.Stats `json:"htm"`
	// Alloc is the allocator's occupancy counters.
	Alloc alloc.Stats `json:"alloc"`
	// Counters are the registry totals keyed by export name (zero
	// counters omitted).
	Counters map[string]int64 `json:"counters"`
	// Hists are the registry histograms keyed by export name.
	Hists map[string]HistSnapshot `json:"hists"`
	// Phases are the per-phase latency-attribution histograms keyed by
	// phase name (log2-bucketed virtual ns, fed by sampled spans);
	// OpLat the end-to-end sampled-op latency by op kind. Empty maps
	// when span sampling is off.
	Phases map[string]DurSnapshot `json:"phase_lat,omitempty"`
	OpLat  map[string]DurSnapshot `json:"op_lat,omitempty"`
	// Gauges are the last-value metrics keyed by export name (zero
	// gauges omitted). Sub keeps the newer snapshot's levels.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Ops is the operation count of the measured phase (set by the
	// caller, used for derived rates).
	Ops int64 `json:"ops,omitempty"`
	// Derived holds per-op rates; populated by Finalize.
	Derived *Derived `json:"derived,omitempty"`
}

// Derived are the rates the paper reasons in.
type Derived struct {
	// MediaReadBytesPerOp / MediaWriteBytesPerOp are the ipmctl-style
	// per-operation media traffic (Fig 8's y-axis).
	MediaReadBytesPerOp  float64 `json:"media_read_bytes_per_op"`
	MediaWriteBytesPerOp float64 `json:"media_write_bytes_per_op"`
	// FlushesPerOp counts clwb per operation.
	FlushesPerOp float64 `json:"flushes_per_op"`
	// AbortsPerCommit is (conflicts+capacity+explicit)/commits.
	AbortsPerCommit float64 `json:"aborts_per_commit"`
	// ProbeLenP50 / ProbeLenP99 summarise the lookup probe-length
	// histogram.
	ProbeLenP50 int `json:"probe_len_p50"`
	ProbeLenP99 int `json:"probe_len_p99"`
	// PhaseP50NS / PhaseP99NS summarise the per-phase attribution
	// histograms (virtual ns; bucket lower bounds). Only phases with
	// samples appear.
	PhaseP50NS map[string]int64 `json:"phase_p50_ns,omitempty"`
	PhaseP99NS map[string]int64 `json:"phase_p99_ns,omitempty"`
}

// Capture assembles a snapshot from the subsystem counters and the
// registry (which may be nil — its sections stay empty).
func Capture(mem pmem.Stats, tm htm.Stats, al alloc.Stats, r *Registry) Snapshot {
	s := Snapshot{
		Mem:      mem,
		HTM:      tm,
		Alloc:    al,
		Counters: r.Counters(),
		Hists:    make(map[string]HistSnapshot, int(numHists)),
		Phases:   make(map[string]DurSnapshot),
		OpLat:    make(map[string]DurSnapshot),
		Gauges:   r.Gauges(),
	}
	for h := Hist(0); h < numHists; h++ {
		s.Hists[HistNames[h]] = r.HistSnapshot(h)
	}
	// Duration histograms are only materialised when non-empty so
	// span-free runs keep their artifacts unchanged.
	for p := Phase(0); p < NumPhases; p++ {
		if d := r.PhaseSnapshot(p); d.Count() > 0 {
			s.Phases[PhaseNames[p]] = d
		}
	}
	for k := SpanKind(0); k < numSpanKinds; k++ {
		if d := r.OpLatSnapshot(k); d.Count() > 0 {
			s.OpLat[SpanKindNames[k]] = d
		}
	}
	return s
}

// Sub returns s - o, counter-wise: the events of the phase between the
// two snapshots. Ops and Derived are cleared (set Ops and call
// Finalize on the result).
func (s Snapshot) Sub(o Snapshot) Snapshot {
	out := Snapshot{
		Mem:      s.Mem.Sub(o.Mem),
		HTM:      subHTM(s.HTM, o.HTM),
		Alloc:    subAlloc(s.Alloc, o.Alloc),
		Counters: make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
	}
	for k, v := range s.Counters {
		if d := v - o.Counters[k]; d != 0 {
			out.Counters[k] = d
		}
	}
	for k, v := range o.Counters {
		if _, ok := s.Counters[k]; !ok && v != 0 {
			out.Counters[k] = -v
		}
	}
	for k, v := range s.Hists {
		out.Hists[k] = v.Sub(o.Hists[k])
	}
	for k, v := range o.Hists {
		if _, ok := s.Hists[k]; !ok {
			out.Hists[k] = HistSnapshot{}.Sub(v)
		}
	}
	out.Phases = subDurMap(s.Phases, o.Phases)
	out.OpLat = subDurMap(s.OpLat, o.OpLat)
	// Gauges are levels, not rates: the newer snapshot's values stand.
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
	}
	return out
}

// subDurMap diffs two duration-histogram maps key-wise.
func subDurMap(a, b map[string]DurSnapshot) map[string]DurSnapshot {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(map[string]DurSnapshot, len(a))
	for k, v := range a {
		out[k] = v.Sub(b[k])
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			out[k] = DurSnapshot{}.Sub(v)
		}
	}
	return out
}

// addDurMap sums two duration-histogram maps key-wise.
func addDurMap(a, b map[string]DurSnapshot) map[string]DurSnapshot {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(map[string]DurSnapshot, len(a))
	for k, v := range a {
		out[k] = v.Add(b[k])
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			out[k] = v.Add(DurSnapshot{})
		}
	}
	return out
}

// Add returns s + o, counter-wise. Ops accumulate; Derived is cleared.
func (s Snapshot) Add(o Snapshot) Snapshot {
	out := Snapshot{
		Mem:      s.Mem.Add(o.Mem),
		HTM:      addHTM(s.HTM, o.HTM),
		Alloc:    addAlloc(s.Alloc, o.Alloc),
		Counters: make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
		Ops:      s.Ops + o.Ops,
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		if n := out.Counters[k] + v; n != 0 {
			out.Counters[k] = n
		} else {
			delete(out.Counters, k)
		}
	}
	for k, v := range s.Hists {
		out.Hists[k] = v.Add(o.Hists[k])
	}
	for k, v := range o.Hists {
		if _, ok := s.Hists[k]; !ok {
			out.Hists[k] = v.Add(HistSnapshot{})
		}
	}
	out.Phases = addDurMap(s.Phases, o.Phases)
	out.OpLat = addDurMap(s.OpLat, o.OpLat)
	// Gauges sum across shards (each shard reports its own level).
	if len(s.Gauges)+len(o.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges)+len(o.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range o.Gauges {
			out.Gauges[k] += v
		}
	}
	return out
}

// Finalize computes the derived rates from the current counters and
// s.Ops (which the caller sets to the phase's operation count) and
// returns s for chaining.
func (s *Snapshot) Finalize() *Snapshot {
	d := &Derived{}
	if s.Ops > 0 {
		ops := float64(s.Ops)
		d.MediaReadBytesPerOp = float64(s.Mem.MediaReadBytes()) / ops
		d.MediaWriteBytesPerOp = float64(s.Mem.MediaWriteBytes()) / ops
		d.FlushesPerOp = float64(s.Mem.Flushes) / ops
	}
	if s.HTM.Commits > 0 {
		d.AbortsPerCommit = float64(s.HTM.Conflicts+s.HTM.Capacities+s.HTM.Explicits) /
			float64(s.HTM.Commits)
	}
	if h, ok := s.Hists[HistNames[HProbeLen]]; ok && h.Count() > 0 {
		d.ProbeLenP50 = h.Percentile(50)
		d.ProbeLenP99 = h.Percentile(99)
	}
	for name, ph := range s.Phases {
		if ph.Count() == 0 {
			continue
		}
		if d.PhaseP50NS == nil {
			d.PhaseP50NS = make(map[string]int64, len(s.Phases))
			d.PhaseP99NS = make(map[string]int64, len(s.Phases))
		}
		d.PhaseP50NS[name] = ph.PercentileNS(50)
		d.PhaseP99NS[name] = ph.PercentileNS(99)
	}
	s.Derived = d
	return s
}

func subHTM(a, b htm.Stats) htm.Stats {
	return htm.Stats{
		Commits:     a.Commits - b.Commits,
		Conflicts:   a.Conflicts - b.Conflicts,
		Capacities:  a.Capacities - b.Capacities,
		Explicits:   a.Explicits - b.Explicits,
		Irrevocable: a.Irrevocable - b.Irrevocable,
	}
}

func addHTM(a, b htm.Stats) htm.Stats {
	return htm.Stats{
		Commits:     a.Commits + b.Commits,
		Conflicts:   a.Conflicts + b.Conflicts,
		Capacities:  a.Capacities + b.Capacities,
		Explicits:   a.Explicits + b.Explicits,
		Irrevocable: a.Irrevocable + b.Irrevocable,
	}
}

func subAlloc(a, b alloc.Stats) alloc.Stats {
	return alloc.Stats{
		WatermarkBytes: a.WatermarkBytes - b.WatermarkBytes,
		Arenas:         a.Arenas - b.Arenas,
		FreeBlocks:     a.FreeBlocks - b.FreeBlocks,
	}
}

func addAlloc(a, b alloc.Stats) alloc.Stats {
	return alloc.Stats{
		WatermarkBytes: a.WatermarkBytes + b.WatermarkBytes,
		Arenas:         a.Arenas + b.Arenas,
		FreeBlocks:     a.FreeBlocks + b.FreeBlocks,
	}
}
