package obs

import (
	"math/bits"
	"sort"
	"sync/atomic"
)

// Per-operation latency attribution. A Span is a stack-friendly record
// one worker carries through a single index operation, accumulating
// per-phase virtual durations (route, probe, HTM retry, media flush,
// publish). Spans are sampling-gated: the unsampled path is one boolean
// check per instrumentation site and allocates nothing (the span lives
// by value inside the worker's handle). A completed sampled span feeds
// two registry consumers — the per-phase / per-op-kind duration
// histograms on the worker's lane, and the worst-N slow-op log.
//
// Durations are virtual nanoseconds (the pmem.Ctx clock the performance
// model reasons in), except PhaseReplShip, which the replication layer
// records in wall-clock nanoseconds because transport time is outside
// the virtual clock; see internal/repl.

// Phase identifies one attributed segment of an operation's latency.
type Phase int

const (
	// PhaseRoute is everything outside the atomic section and not
	// otherwise attributed: key hashing, shard routing, out-of-line
	// record preparation, result copying.
	PhaseRoute Phase = iota
	// PhaseProbe is the in-transaction lookup: directory resolution and
	// the segment probe (locate) until a hit or proven miss.
	PhaseProbe
	// PhaseHTMRetry is time lost to the two-phase protocol's retry
	// loop: aborted attempts, fallback-lock acquisition spins, and
	// split/resize waits encountered on the way.
	PhaseHTMRetry
	// PhaseMediaFlush is time spent issuing cacheline write-backs on
	// the operation's own path (compacted-chunk flushes, adaptive
	// update flushes).
	PhaseMediaFlush
	// PhasePublish is the mutating tail of the committed attempt: slot
	// stores, hint maintenance, seal recompute, HTM commit.
	PhasePublish
	// PhaseReplShip is the synchronous replication ship of a committed
	// write (wall-clock ns; recorded by internal/repl, not by spans).
	PhaseReplShip

	NumPhases
)

// PhaseNames are the stable export names, indexed by Phase.
var PhaseNames = [...]string{
	PhaseRoute:      "route",
	PhaseProbe:      "probe",
	PhaseHTMRetry:   "htm_retry",
	PhaseMediaFlush: "media_flush",
	PhasePublish:    "publish",
	PhaseReplShip:   "repl_ship",
}

func (p Phase) String() string {
	if int(p) < len(PhaseNames) {
		return PhaseNames[p]
	}
	return "unknown"
}

// SpanKind is the operation kind of a span.
type SpanKind int

const (
	SpanGet SpanKind = iota
	SpanInsert
	SpanUpdate
	SpanDelete

	numSpanKinds
)

// SpanKindNames are the stable export names, indexed by SpanKind.
var SpanKindNames = [...]string{
	SpanGet:    "get",
	SpanInsert: "insert",
	SpanUpdate: "update",
	SpanDelete: "delete",
}

func (k SpanKind) String() string {
	if int(k) < len(SpanKindNames) {
		return SpanKindNames[k]
	}
	return "unknown"
}

// Span is one sampled operation's latency-attribution record. It is a
// plain value (no pointers), embedded by value in the worker's handle,
// so the unsampled path costs one Active check and zero allocations.
// All fields are owned by the worker until the span is recorded.
type Span struct {
	// Active gates every instrumentation site; false = unsampled.
	Active bool
	// Kind is the operation kind; Key its 64-bit hash; Shard the owning
	// shard (-1 or 0 on an unsharded index).
	Kind  SpanKind
	Key   uint64
	Shard int32
	// Aborts counts HTM aborts the operation survived.
	Aborts int32
	// Start is the worker's virtual clock at operation entry.
	Start int64
	// Pending accumulates probe time inside the current attempt; the
	// commit attribution consumes it (exec loop, internal/core).
	Pending int64
	// Dur holds the attributed per-phase durations (virtual ns).
	Dur [NumPhases]int64
}

// durBuckets is the resolution of the duration histograms: log2-spaced
// buckets, bucket b covering [2^(b-1), 2^b) ns, bucket 0 = sub-ns/zero.
// 40 buckets span from 1 ns to ~9 minutes of virtual time.
const durBuckets = 40

// durBucket maps a duration in ns to its histogram bucket.
func durBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= durBuckets {
		return durBuckets - 1
	}
	return b
}

// durBucketNS returns a representative (lower-bound) duration for a
// bucket index.
func durBucketNS(b int) int64 {
	if b <= 0 {
		return 0
	}
	return int64(1) << (b - 1)
}

// DurSnapshot is a summed log2-bucketed duration histogram.
type DurSnapshot struct {
	Counts []int64 `json:"counts"`
}

// Count returns the total number of samples.
func (d DurSnapshot) Count() int64 {
	var n int64
	for _, c := range d.Counts {
		n += c
	}
	return n
}

// PercentileNS returns a representative duration (bucket lower bound)
// such that at least p percent of samples are ≤ its bucket. p in
// [0, 100]; 0 when empty.
func (d DurSnapshot) PercentileNS(p float64) int64 {
	total := d.Count()
	if total == 0 {
		return 0
	}
	need := int64(p / 100 * float64(total))
	if need < 1 {
		need = 1
	}
	if need > total {
		need = total
	}
	var cum int64
	for b, c := range d.Counts {
		cum += c
		if cum >= need {
			return durBucketNS(b)
		}
	}
	return durBucketNS(len(d.Counts) - 1)
}

// Sub returns d - o bucket-wise.
func (d DurSnapshot) Sub(o DurSnapshot) DurSnapshot {
	n := len(d.Counts)
	if len(o.Counts) > n {
		n = len(o.Counts)
	}
	out := DurSnapshot{Counts: make([]int64, n)}
	for i := 0; i < n; i++ {
		var a, b int64
		if i < len(d.Counts) {
			a = d.Counts[i]
		}
		if i < len(o.Counts) {
			b = o.Counts[i]
		}
		out.Counts[i] = a - b
	}
	return out
}

// Add returns d + o bucket-wise.
func (d DurSnapshot) Add(o DurSnapshot) DurSnapshot {
	n := len(d.Counts)
	if len(o.Counts) > n {
		n = len(o.Counts)
	}
	out := DurSnapshot{Counts: make([]int64, n)}
	for i := 0; i < n; i++ {
		if i < len(d.Counts) {
			out.Counts[i] += d.Counts[i]
		}
		if i < len(o.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}

// RecordSpan folds a completed sampled span into the lane's per-phase
// and per-op-kind duration histograms and offers it to the registry's
// slow-op log. totalNS is the span's end-to-end virtual duration.
// Nil-safe; inactive spans are ignored.
func (ln *Lane) RecordSpan(sp *Span, totalNS int64) {
	if ln == nil || !sp.Active {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		if d := sp.Dur[p]; d > 0 {
			ln.l.phases[p][durBucket(d)].Add(1)
		}
	}
	k := sp.Kind
	if k < 0 || k >= numSpanKinds {
		k = SpanGet
	}
	ln.l.oplat[k][durBucket(totalNS)].Add(1)
	ln.reg.slow.offer(sp, totalNS)
}

// ObservePhaseNS records a single phase duration without a span, on the
// stripe selected by key. The replication layer uses it for the
// repl_ship phase (wall-clock ns). Nil-safe.
func (r *Registry) ObservePhaseNS(p Phase, key uint64, ns int64) {
	if r == nil {
		return
	}
	x := key * 0x9E3779B97F4A7C15
	r.lanes[(x>>32)&r.mask].phases[p][durBucket(ns)].Add(1)
}

// PhaseSnapshot sums phase p's duration histogram across lanes.
func (r *Registry) PhaseSnapshot(p Phase) DurSnapshot {
	s := DurSnapshot{Counts: make([]int64, durBuckets)}
	if r == nil {
		return s
	}
	for i := range r.lanes {
		for b := 0; b < durBuckets; b++ {
			s.Counts[b] += r.lanes[i].phases[p][b].Load()
		}
	}
	return s
}

// OpLatSnapshot sums op kind k's end-to-end latency histogram across
// lanes.
func (r *Registry) OpLatSnapshot(k SpanKind) DurSnapshot {
	s := DurSnapshot{Counts: make([]int64, durBuckets)}
	if r == nil {
		return s
	}
	for i := range r.lanes {
		for b := 0; b < durBuckets; b++ {
			s.Counts[b] += r.lanes[i].oplat[k][b].Load()
		}
	}
	return s
}

// SlowOp is one completed span retained by the slow-op log, rendered
// for export.
type SlowOp struct {
	// Seq orders admissions (1 = first ever admitted); it breaks ties
	// between equal durations and makes eviction order testable.
	Seq uint64 `json:"seq"`
	// Op is the operation kind by name; Key its 64-bit hash.
	Op  string `json:"op"`
	Key uint64 `json:"key_hash"`
	// Shard is the owning shard.
	Shard int `json:"shard"`
	// Aborts is the HTM abort count the operation survived.
	Aborts int `json:"htm_aborts"`
	// StartNS is the worker's virtual clock at operation entry;
	// TotalNS the end-to-end virtual duration.
	StartNS int64 `json:"start_ns"`
	TotalNS int64 `json:"total_ns"`
	// Phases carries the per-phase breakdown (ns), keyed by phase name
	// (zero phases omitted).
	Phases map[string]int64 `json:"phases"`
}

// slowLogSize is the worst-N capacity of the slow-op log.
const slowLogSize = 64

// slowSlot is one retained span. ver is a per-slot seqlock: 0 = empty,
// odd = being written, even > 0 = stable. Writers claim with one CAS
// and drop on contention (losing a race to record one slow op is
// acceptable; blocking the hot path is not).
type slowSlot struct {
	ver    atomic.Uint64
	seq    atomic.Uint64
	total  atomic.Int64
	start  atomic.Int64
	key    atomic.Uint64
	kind   atomic.Int64
	shard  atomic.Int64
	aborts atomic.Int64
	dur    [NumPhases]atomic.Int64
}

// slowLog is the lock-free worst-N log of completed spans. floor
// caches the smallest retained total once the log is full, so the
// common case (an op faster than everything retained) is one atomic
// load.
type slowLog struct {
	slots [slowLogSize]slowSlot
	floor atomic.Int64
	next  atomic.Uint64
}

func (sl *slowLog) offer(sp *Span, totalNS int64) {
	if sl == nil {
		return
	}
	if f := sl.floor.Load(); f > 0 && totalNS <= f {
		return
	}
	// Pick the victim: an empty slot, else the smallest stable total.
	victim, victimTotal, full := -1, int64(1)<<62, true
	for i := range sl.slots {
		v := sl.slots[i].ver.Load()
		if v == 0 {
			victim, victimTotal, full = i, 0, false
			break
		}
		if v&1 == 1 {
			continue // mid-write; treat as occupied
		}
		if t := sl.slots[i].total.Load(); t < victimTotal {
			victim, victimTotal = i, t
		}
	}
	if victim < 0 || (victimTotal >= totalNS && full) {
		return
	}
	s := &sl.slots[victim]
	v := s.ver.Load()
	if v&1 == 1 || !s.ver.CompareAndSwap(v, v+1) {
		return // lost the claim race; drop
	}
	s.seq.Store(sl.next.Add(1))
	s.total.Store(totalNS)
	s.start.Store(sp.Start)
	s.key.Store(sp.Key)
	s.kind.Store(int64(sp.Kind))
	s.shard.Store(int64(sp.Shard))
	s.aborts.Store(int64(sp.Aborts))
	for p := 0; p < int(NumPhases); p++ {
		s.dur[p].Store(sp.Dur[p])
	}
	s.ver.Store(v + 2)
	sl.refloor()
}

// refloor recomputes the cheap-reject floor: the smallest stable total
// when every slot is occupied, 0 otherwise.
func (sl *slowLog) refloor() {
	minTotal := int64(1) << 62
	for i := range sl.slots {
		v := sl.slots[i].ver.Load()
		if v == 0 || v&1 == 1 {
			return // not full (or in flux): no floor
		}
		if t := sl.slots[i].total.Load(); t < minTotal {
			minTotal = t
		}
	}
	sl.floor.Store(minTotal)
}

// snapshot returns the retained ops, slowest first.
func (sl *slowLog) snapshot(n int) []SlowOp {
	if sl == nil {
		return nil
	}
	out := make([]SlowOp, 0, slowLogSize)
	for i := range sl.slots {
		s := &sl.slots[i]
		v := s.ver.Load()
		if v == 0 || v&1 == 1 {
			continue
		}
		op := SlowOp{
			Seq:     s.seq.Load(),
			Op:      SpanKind(s.kind.Load()).String(),
			Key:     s.key.Load(),
			Shard:   int(s.shard.Load()),
			Aborts:  int(s.aborts.Load()),
			StartNS: s.start.Load(),
			TotalNS: s.total.Load(),
			Phases:  make(map[string]int64, int(NumPhases)),
		}
		for p := Phase(0); p < NumPhases; p++ {
			if d := s.dur[p].Load(); d != 0 {
				op.Phases[p.String()] = d
			}
		}
		// A writer may have recycled the slot between the loads; an
		// unchanged version proves the fields belong together.
		if s.ver.Load() != v {
			continue
		}
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Seq > out[j].Seq
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// SlowOps returns the worst-n retained operations, slowest first
// (n <= 0 returns everything retained). Nil-safe.
func (r *Registry) SlowOps(n int) []SlowOp {
	if r == nil {
		return nil
	}
	return r.slow.snapshot(n)
}

// MergeSlowOps merges several logs' snapshots (e.g. one per shard)
// into one worst-n list, slowest first.
func MergeSlowOps(lists [][]SlowOp, n int) []SlowOp {
	var out []SlowOp
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Seq > out[j].Seq
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
