package obs

import (
	"strings"
	"sync"
	"testing"

	"spash/internal/alloc"
	"spash/internal/htm"
	"spash/internal/pmem"
)

func spanFor(kind SpanKind, key uint64, total int64) Span {
	sp := Span{Active: true, Kind: kind, Key: key, Shard: 0, Start: 10}
	// Attribute the whole duration to probe so histogram totals are
	// predictable.
	sp.Dur[PhaseProbe] = total
	return sp
}

func TestRecordSpanHistograms(t *testing.T) {
	r := NewRegistrySized(4, 64)
	ln := r.Lane()
	for i := int64(1); i <= 100; i++ {
		sp := spanFor(SpanInsert, uint64(i), i)
		ln.RecordSpan(&sp, i)
	}
	if got := r.PhaseSnapshot(PhaseProbe).Count(); got != 100 {
		t.Fatalf("probe samples: got %d want 100", got)
	}
	if got := r.PhaseSnapshot(PhasePublish).Count(); got != 0 {
		t.Fatalf("publish samples: got %d want 0 (never attributed)", got)
	}
	if got := r.OpLatSnapshot(SpanInsert).Count(); got != 100 {
		t.Fatalf("insert op-lat samples: got %d want 100", got)
	}
	if got := r.OpLatSnapshot(SpanGet).Count(); got != 0 {
		t.Fatalf("get op-lat samples: got %d want 0", got)
	}
	// Percentiles return bucket lower bounds: p100 of totals 1..100
	// lands in bucket [64,128) -> 64.
	if p := r.OpLatSnapshot(SpanInsert).PercentileNS(100); p != 64 {
		t.Fatalf("p100 representative: got %d want 64", p)
	}
}

func TestRecordSpanInactiveNoop(t *testing.T) {
	r := NewRegistrySized(4, 64)
	ln := r.Lane()
	sp := Span{} // Active=false
	sp.Dur[PhaseProbe] = 1000
	ln.RecordSpan(&sp, 1000)
	if got := r.PhaseSnapshot(PhaseProbe).Count(); got != 0 {
		t.Fatalf("inactive span recorded: %d samples", got)
	}
	if got := len(r.SlowOps(0)); got != 0 {
		t.Fatalf("inactive span reached slow log: %d entries", got)
	}
}

// The unsampled path must not allocate: neither the inactive
// RecordSpan call nor the nil-lane call.
func TestUnsampledSpanZeroAlloc(t *testing.T) {
	r := NewRegistrySized(4, 64)
	ln := r.Lane()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Span{}
		ln.RecordSpan(&sp, 500)
	})
	if allocs != 0 {
		t.Fatalf("inactive RecordSpan allocates %.1f per op, want 0", allocs)
	}
	var nilLane *Lane
	allocs = testing.AllocsPerRun(1000, func() {
		sp := Span{Active: true}
		nilLane.RecordSpan(&sp, 500)
	})
	if allocs != 0 {
		t.Fatalf("nil-lane RecordSpan allocates %.1f per op, want 0", allocs)
	}
}

// Even the sampled record path is allocation-free (histogram adds and
// the slow log's atomic slots; snapshots are where allocation belongs).
func TestSampledSpanRecordZeroAlloc(t *testing.T) {
	r := NewRegistrySized(4, 64)
	ln := r.Lane()
	i := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		sp := spanFor(SpanGet, uint64(i), i)
		ln.RecordSpan(&sp, i)
	})
	if allocs != 0 {
		t.Fatalf("sampled RecordSpan allocates %.1f per op, want 0", allocs)
	}
}

func TestSlowLogWorstNEviction(t *testing.T) {
	r := NewRegistrySized(4, 64)
	ln := r.Lane()
	// 200 spans with totals 1..200ns: only the worst slowLogSize may
	// survive, and everything retained must beat everything evicted.
	for i := int64(1); i <= 200; i++ {
		sp := spanFor(SpanUpdate, uint64(i), i)
		ln.RecordSpan(&sp, i)
	}
	ops := r.SlowOps(0)
	if len(ops) != slowLogSize {
		t.Fatalf("retained %d ops, want %d", len(ops), slowLogSize)
	}
	for i, op := range ops {
		want := int64(200 - i) // slowest first: 200, 199, ...
		if op.TotalNS != want {
			t.Fatalf("op[%d].TotalNS = %d, want %d (eviction kept a faster op)", i, op.TotalNS, want)
		}
		if op.Op != "update" {
			t.Fatalf("op[%d].Op = %q, want update", i, op.Op)
		}
		if op.Phases["probe"] != op.TotalNS {
			t.Fatalf("op[%d] phases = %v, want probe=%d", i, op.Phases, op.TotalNS)
		}
	}
	// The floor now equals the smallest retained total, so offering
	// anything at or below it must be rejected without a scan.
	if f := r.slow.floor.Load(); f != ops[len(ops)-1].TotalNS {
		t.Fatalf("floor = %d, want %d", f, ops[len(ops)-1].TotalNS)
	}
	sp := spanFor(SpanUpdate, 999, 3)
	ln.RecordSpan(&sp, 3)
	if got := r.SlowOps(1)[0].TotalNS; got != 200 {
		t.Fatalf("fast op displaced the slowest: head total %d", got)
	}
	// SlowOps(n) truncates.
	if got := len(r.SlowOps(5)); got != 5 {
		t.Fatalf("SlowOps(5) returned %d", got)
	}
}

func TestSlowLogSeqTieBreak(t *testing.T) {
	r := NewRegistrySized(4, 64)
	ln := r.Lane()
	for i := 0; i < 3; i++ {
		sp := spanFor(SpanGet, uint64(i), 100)
		ln.RecordSpan(&sp, 100)
	}
	ops := r.SlowOps(0)
	if len(ops) != 3 {
		t.Fatalf("retained %d ops, want 3", len(ops))
	}
	// Equal totals: newer admission (higher seq) sorts first.
	if !(ops[0].Seq > ops[1].Seq && ops[1].Seq > ops[2].Seq) {
		t.Fatalf("tie-break by seq violated: %d, %d, %d", ops[0].Seq, ops[1].Seq, ops[2].Seq)
	}
}

func TestMergeSlowOps(t *testing.T) {
	a := []SlowOp{{Seq: 1, TotalNS: 50, Shard: 0}, {Seq: 2, TotalNS: 10, Shard: 0}}
	b := []SlowOp{{Seq: 1, TotalNS: 70, Shard: 1}, {Seq: 2, TotalNS: 30, Shard: 1}}
	got := MergeSlowOps([][]SlowOp{a, b}, 3)
	if len(got) != 3 || got[0].TotalNS != 70 || got[1].TotalNS != 50 || got[2].TotalNS != 30 {
		t.Fatalf("merge order wrong: %+v", got)
	}
	if got[0].Shard != 1 || got[1].Shard != 0 {
		t.Fatalf("merge lost shard attribution: %+v", got)
	}
}

// Concurrent span recording and slow-log reads while snapshots are
// captured and diffed; run under -race this validates the seqlock
// protocol and the lock-free histograms.
func TestSpanSnapshotDiffConcurrent(t *testing.T) {
	r := NewRegistrySized(8, 64)
	pre := Capture(pmem.Stats{}, htm.Stats{}, alloc.Stats{}, r)

	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(id int) {
			defer wg.Done()
			ln := r.Lane()
			for i := 1; i <= perWriter; i++ {
				sp := spanFor(SpanKind(id%int(numSpanKinds)), uint64(id*perWriter+i), int64(i))
				sp.Dur[PhasePublish] = 7
				ln.RecordSpan(&sp, int64(i)+7)
			}
		}(w)
	}
	// Concurrent readers: snapshots, diffs, slow-log scans.
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		last := pre
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := Capture(pmem.Stats{}, htm.Stats{}, alloc.Stats{}, r)
			d := cur.Sub(last)
			for name, h := range d.Phases {
				if h.Count() < 0 {
					panic("negative diff for phase " + name)
				}
			}
			_ = r.SlowOps(8)
			last = cur
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	post := Capture(pmem.Stats{}, htm.Stats{}, alloc.Stats{}, r)
	d := post.Sub(pre)
	if got := d.Phases[PhaseNames[PhaseProbe]].Count(); got != writers*perWriter {
		t.Fatalf("probe samples after diff: got %d want %d", got, writers*perWriter)
	}
	if got := d.Phases[PhaseNames[PhasePublish]].Count(); got != writers*perWriter {
		t.Fatalf("publish samples after diff: got %d want %d", got, writers*perWriter)
	}
	var oplat int64
	for _, k := range SpanKindNames {
		oplat += d.OpLat[k].Count()
	}
	if oplat != writers*perWriter {
		t.Fatalf("op-lat samples after diff: got %d want %d", oplat, writers*perWriter)
	}
	// The slow log retained (close to) the global worst. Offers drop on
	// slot-claim contention by design, so allow a small shortfall: every
	// retained top op must still be within the worst 2*slowLogSize
	// totals ever offered.
	ops := r.SlowOps(writers)
	if len(ops) != writers {
		t.Fatalf("slow log returned %d ops, want %d", len(ops), writers)
	}
	for _, op := range ops {
		if op.TotalNS < perWriter+7-2*slowLogSize {
			t.Fatalf("slow log head = %dns, want >= %d", op.TotalNS, perWriter+7-2*slowLogSize)
		}
	}
}

func TestEvalHealth(t *testing.T) {
	base := Snapshot{HTM: htm.Stats{Commits: 1000, Conflicts: 10}}
	if h := EvalHealth(base, HealthWatermarks{}); h.Status != HealthOK {
		t.Fatalf("clean snapshot: %v (%v)", h.Status, h.Reasons)
	}

	quar := base
	quar.Counters = map[string]int64{CounterNames[CQuarantines]: 2}
	h := EvalHealth(quar, HealthWatermarks{})
	if h.Status != HealthDegraded || h.Quarantines != 2 {
		t.Fatalf("quarantine: %v %+v", h.Status, h)
	}
	quar.Counters[CounterNames[CQuarantines]] = 16
	if h = EvalHealth(quar, HealthWatermarks{}); h.Status != HealthCritical {
		t.Fatalf("quarantine critical: %v", h.Status)
	}

	lag := base
	lag.Gauges = map[string]int64{
		GaugeNames[GReplLagRecords]: 12,
		GaugeNames[GReplLagBytes]:   4096,
	}
	h = EvalHealth(lag, HealthWatermarks{})
	if h.Status != HealthDegraded || h.ReplLagRecords != 12 || h.ReplLagBytes != 4096 {
		t.Fatalf("repl lag: %v %+v", h.Status, h)
	}
	if len(h.Reasons) != 1 || !strings.Contains(h.Reasons[0], "behind") {
		t.Fatalf("repl lag reasons: %v", h.Reasons)
	}
	lag.Gauges[GaugeNames[GReplLagRecords]] = 5000
	if h = EvalHealth(lag, HealthWatermarks{}); h.Status != HealthCritical {
		t.Fatalf("repl lag critical: %v", h.Status)
	}
	// Disabled check: negative watermark ignores the signal.
	h = EvalHealth(lag, HealthWatermarks{ReplLagDegraded: -1, ReplLagCritical: -1})
	if h.Status != HealthOK {
		t.Fatalf("disabled lag check still fired: %v %v", h.Status, h.Reasons)
	}

	hot := base
	hot.HTM = htm.Stats{Commits: 100, Conflicts: 150, Capacities: 20, Explicits: 30}
	h = EvalHealth(hot, HealthWatermarks{})
	if h.Status != HealthDegraded || h.AbortRate != 2.0 {
		t.Fatalf("abort rate: %v rate=%v", h.Status, h.AbortRate)
	}

	fsck := base
	fsck.Gauges = map[string]int64{GaugeNames[GFsckUnrecoverable]: 1}
	if h = EvalHealth(fsck, HealthWatermarks{}); h.Status != HealthCritical {
		t.Fatalf("unrecoverable: %v", h.Status)
	}

	scrub := base
	h = EvalHealth(scrub, HealthWatermarks{MinScrubPasses: 1})
	if h.Status != HealthDegraded {
		t.Fatalf("scrub coverage: %v", h.Status)
	}
	scrub.Gauges = map[string]int64{GaugeNames[GScrubPasses]: 3}
	if h = EvalHealth(scrub, HealthWatermarks{MinScrubPasses: 1}); h.Status != HealthOK {
		t.Fatalf("scrub coverage met: %v (%v)", h.Status, h.Reasons)
	}
}

func TestMergeHealth(t *testing.T) {
	shards := []Health{
		{Status: HealthOK, ScrubPasses: 2},
		{Status: HealthDegraded, Reasons: []string{"replica 3 record(s) / 96 byte(s) behind"},
			ReplLagRecords: 3, ReplLagBytes: 96, AbortRate: 0.5},
		{Status: HealthOK, Quarantines: 1, AbortRate: 1.5},
	}
	m := MergeHealth(shards)
	if m.Status != HealthDegraded {
		t.Fatalf("merged status: %v", m.Status)
	}
	if len(m.Reasons) != 1 || !strings.HasPrefix(m.Reasons[0], "shard 1:") {
		t.Fatalf("merged reasons: %v", m.Reasons)
	}
	if m.ReplLagRecords != 3 || m.Quarantines != 1 || m.ScrubPasses != 2 {
		t.Fatalf("merged signals: %+v", m)
	}
	if m.AbortRate != 1.5 {
		t.Fatalf("merged abort rate: %v (want max)", m.AbortRate)
	}
}

func TestGaugeSnapshotSemantics(t *testing.T) {
	r := NewRegistrySized(4, 64)
	r.SetGauge(GReplLagRecords, 10)
	r.AddGauge(GReplLagBytes, 320)
	a := Capture(pmem.Stats{}, htm.Stats{}, alloc.Stats{}, r)
	r.SetGauge(GReplLagRecords, 4)
	b := Capture(pmem.Stats{}, htm.Stats{}, alloc.Stats{}, r)

	// Gauges are levels: Sub keeps the newer level, not the delta.
	d := b.Sub(a)
	if got := d.Gauges[GaugeNames[GReplLagRecords]]; got != 4 {
		t.Fatalf("Sub gauge level: got %d want 4", got)
	}
	// Add sums levels (per-shard aggregation).
	s := a.Add(b)
	if got := s.Gauges[GaugeNames[GReplLagRecords]]; got != 14 {
		t.Fatalf("Add gauge level: got %d want 14", got)
	}
	if got := s.Gauges[GaugeNames[GReplLagBytes]]; got != 640 {
		t.Fatalf("Add gauge bytes: got %d want 640", got)
	}
	if got := r.GaugeValue(GReplLagRecords); got != 4 {
		t.Fatalf("GaugeValue: got %d want 4", got)
	}
}
