package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
)

// EventKind classifies a structural trace event.
type EventKind uint8

const (
	// EvSplit: a segment split committed. A = new local depth,
	// B = live entries relocated.
	EvSplit EventKind = iota
	// EvSplitFallback: a split completed on the locked fallback path.
	// A = local depth before the split.
	EvSplitFallback
	// EvMerge: a buddy merge committed. A = merged local depth,
	// B = combined live entries.
	EvMerge
	// EvDoubleStart / EvDoubleDone bracket a collaborative staged
	// doubling. Start: A = old global depth. Done: A = new global
	// depth, B = virtual duration (ns) of the doubling role.
	EvDoubleStart
	EvDoubleDone
	// EvStopWorld: a stop-the-world resize (monolithic doubling or
	// halving) completed. A = new global depth (or -1 when aborted),
	// B = virtual stall duration (ns).
	EvStopWorld
	// EvLockFallback: an operation took the per-segment fallback lock.
	// A = top 16 bits of the key hash (coarse partition identity).
	EvLockFallback
	// EvHTMCapacity: a transaction exceeded the HTM capacity budget.
	// A = top 16 bits of the key hash.
	EvHTMCapacity
	// EvQuarantine: a damaged segment was dropped and rebuilt from
	// salvage. A = segment address, B = entries salvaged.
	EvQuarantine
	// EvScrubPass: the online scrubber completed one full pass.
	// A = segments verified, B = corruptions found.
	EvScrubPass
	// EvRecoverStart / EvRecoverDone bracket a shard recovery.
	// Done: A = virtual duration (ns), B = segments adopted.
	EvRecoverStart
	EvRecoverDone
	// EvFsckStart / EvFsckDone bracket a full integrity check.
	// Start: A = 1 when repairing. Done: A = faults found,
	// B = segments left unrecoverable.
	EvFsckStart
	EvFsckDone

	numEventKinds
)

// EventKindNames are the stable export names, indexed by EventKind.
var EventKindNames = [...]string{
	EvSplit:         "split",
	EvSplitFallback: "split_fallback",
	EvMerge:         "merge",
	EvDoubleStart:   "double_start",
	EvDoubleDone:    "double_done",
	EvStopWorld:     "stop_world",
	EvLockFallback:  "lock_fallback",
	EvHTMCapacity:   "htm_capacity",
	EvQuarantine:    "quarantine",
	EvScrubPass:     "scrub_pass",
	EvRecoverStart:  "recover_start",
	EvRecoverDone:   "recover_done",
	EvFsckStart:     "fsck_start",
	EvFsckDone:      "fsck_done",
}

func (k EventKind) String() string {
	if int(k) < len(EventKindNames) {
		return EventKindNames[k]
	}
	return "unknown"
}

// Event is one drained trace entry. Seq orders events globally (1 is
// the first event since registry creation); TS is the emitting
// worker's virtual clock in ns.
type Event struct {
	Seq  uint64    `json:"seq"`
	TS   int64     `json:"ts_ns"`
	Kind EventKind `json:"-"`
	A    int64     `json:"a"`
	B    int64     `json:"b"`
}

// MarshalJSON emits the kind by name.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seq  uint64 `json:"seq"`
		TS   int64  `json:"ts_ns"`
		Kind string `json:"ev"`
		A    int64  `json:"a"`
		B    int64  `json:"b"`
	}{e.Seq, e.TS, e.Kind.String(), e.A, e.B})
}

// DefaultRingSize is the trace-ring capacity used by NewRegistry.
const DefaultRingSize = 4096

type slot struct {
	// seq is written last (publish). 0 = never written.
	seq  atomic.Uint64
	ts   atomic.Int64
	kind atomic.Uint64
	a    atomic.Int64
	b    atomic.Int64
}

// Ring is a fixed-size lock-free ring of structural events: writers
// claim a slot with one atomic add and publish fields with atomic
// stores, so tracing never blocks the hot path and the ring is safe
// under -race. Old events are overwritten; Drain returns the retained
// window. A slot being overwritten concurrently with a drain is
// detected by its sequence word and dropped rather than returned torn.
type Ring struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64
}

func newRing(size int) *Ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

func (r *Ring) add(kind EventKind, ts, a, b int64) {
	seq := r.head.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	// Invalidate while rewriting so a concurrent drain drops the slot
	// instead of pairing the old seq with new fields.
	s.seq.Store(0)
	s.ts.Store(ts)
	s.kind.Store(uint64(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(seq)
}

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	n := r.head.Load()
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	return int(n)
}

// Drain returns the retained events, oldest first. It does not clear
// the ring. Under concurrent writers the result is a best-effort
// consistent window: slots caught mid-rewrite are omitted.
func (r *Ring) Drain() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		ev := Event{
			Seq:  seq,
			TS:   s.ts.Load(),
			Kind: EventKind(s.kind.Load()),
			A:    s.a.Load(),
			B:    s.b.Load(),
		}
		// A writer may have recycled the slot between the loads; the
		// publish order (seq last) means an unchanged seq proves the
		// fields belong together.
		if s.seq.Load() != seq {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSON writes the drained events as a JSON array.
func (r *Ring) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Drain())
}
