package pmem

import (
	"sync"
	"sync/atomic"
)

// cacheEntry is one way of one cache set.
type cacheEntry struct {
	// tag is the line address + 1; 0 means the way is empty.
	tag   uint64
	tick  uint32
	dirty bool
}

// cacheSet is one associativity set. Its mutex also covers the word
// stores performed by the pool while the line's residency is being
// established, which keeps ADR snapshots consistent.
type cacheSet struct {
	mu   sync.Mutex
	tick uint32
}

// cache models the shared CPU cache in front of the PM media.
type cache struct {
	sets    []cacheSet
	entries []cacheEntry // len(sets) * ways, flat
	ways    int
	mask    uint64 // numSets - 1
	// snaps holds, in ADR mode, the pre-dirty media image of each
	// dirty line (64 bytes per way). nil in eADR mode.
	snaps []byte
}

func newCache(cfg Config) *cache {
	lines := cfg.CacheSize / CachelineSize
	ways := cfg.CacheWays
	numSets := nextPow2(lines / uint64(ways))
	if numSets == 0 {
		numSets = 1
	}
	c := &cache{
		sets:    make([]cacheSet, numSets),
		entries: make([]cacheEntry, numSets*uint64(ways)),
		ways:    ways,
		mask:    numSets - 1,
	}
	if cfg.Mode == ADR {
		c.snaps = make([]byte, numSets*uint64(ways)*CachelineSize)
	}
	return c
}

func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// setIndex maps a line to a set. The index is hashed rather than
// sliced directly from the address: in a real shared LLC, complex
// indexing and unrelated traffic decorrelate the eviction times of
// neighbouring lines, which is exactly what turns unflushed multi-line
// writes into random single-line write-backs (Observation 2). Direct
// indexing would keep the lines of one XPLine in lockstep LRU
// positions and artificially preserve their coalescing.
func (c *cache) setIndex(line uint64) uint64 {
	x := line / CachelineSize
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x & c.mask
}

// access looks up line, filling it on a miss (write-allocate policy).
// It returns whether the line was already resident. All media traffic
// caused by the access (fill, dirty victim write-back) is recorded on
// ctx and coalesced through the pool's XPBuffer.
func (c *cache) access(p *Pool, ctx *Ctx, line uint64, store bool) (hit bool) {
	si := c.setIndex(line)
	set := &c.sets[si]
	base := si * uint64(c.ways)
	set.mu.Lock()
	set.tick++
	tag := line + 1

	empty, lru := -1, 0
	var lruTick uint32 = ^uint32(0)
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+uint64(w)]
		if e.tag == tag {
			e.tick = set.tick
			if store && !e.dirty {
				c.snapshot(p, base+uint64(w), line)
				e.dirty = true
			}
			set.mu.Unlock()
			return true
		}
		if e.tag == 0 {
			if empty < 0 {
				empty = w
			}
		} else if e.tick < lruTick {
			lru, lruTick = w, e.tick
		}
	}
	victim := lru
	if empty >= 0 {
		victim = empty
	}

	// Miss: evict the LRU (or an empty) way, then fill.
	e := &c.entries[base+uint64(victim)]
	if e.tag != 0 && e.dirty {
		ctx.stats.CachelineWrites++
		ctx.stats.Evictions++
		p.xpb.write(ctx, e.tag-1)
	}
	e.tag = tag
	e.tick = set.tick
	e.dirty = false
	ctx.stats.CachelineReads++
	p.xpb.read(ctx, line)
	if store {
		c.snapshot(p, base+uint64(victim), line)
		e.dirty = true
	}
	set.mu.Unlock()
	return false
}

// snapshot captures the media image of line into the way's snapshot
// slot (ADR mode only) so Crash can roll the line back.
func (c *cache) snapshot(p *Pool, way uint64, line uint64) {
	if c.snaps == nil {
		return
	}
	dst := c.snaps[way*CachelineSize : (way+1)*CachelineSize]
	w0 := line / 8
	for i := 0; i < CachelineSize/8; i++ {
		putLE64(dst[i*8:], atomic.LoadUint64(&p.words[w0+uint64(i)]))
	}
}

// flushLine implements clwb: if the line is resident and dirty it is
// written back to media and marked clean, remaining resident. Returns
// whether a write-back happened.
func (c *cache) flushLine(p *Pool, ctx *Ctx, line uint64) bool {
	si := c.setIndex(line)
	set := &c.sets[si]
	base := si * uint64(c.ways)
	set.mu.Lock()
	tag := line + 1
	wrote := false
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+uint64(w)]
		if e.tag == tag {
			if e.dirty {
				e.dirty = false
				ctx.stats.CachelineWrites++
				p.xpb.write(ctx, line)
				wrote = true
			}
			break
		}
	}
	set.mu.Unlock()
	return wrote
}

// invalidateLine drops the line from the cache without writing it
// back. Used by ntstore, whose data bypasses the cache and fully
// overwrites the line in media.
func (c *cache) invalidateLine(line uint64) {
	si := c.setIndex(line)
	set := &c.sets[si]
	base := si * uint64(c.ways)
	set.mu.Lock()
	tag := line + 1
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+uint64(w)]
		if e.tag == tag {
			e.tag = 0
			e.dirty = false
			break
		}
	}
	set.mu.Unlock()
}

// crash applies the persistence-domain semantics of a power failure
// and empties the cache. In ADR mode every dirty line is rolled back
// to its pre-dirty media image; the number of lines lost is returned.
// In eADR mode dirty lines are (conceptually) flushed by the reserve
// energy, so nothing is lost.
//
// With an armed MediaFaultPlan (mp non-nil), up to mp.TornLines of the
// ADR rollbacks are torn: a pseudorandom subset of the line's 8-byte
// words keeps the new value while the rest roll back, modelling a
// media write-back cut mid-line. eADR has no rollbacks to tear.
func (c *cache) crash(p *Pool, mode Mode, mp *MediaFaultPlan) (lost int) {
	for si := range c.sets {
		set := &c.sets[si]
		base := uint64(si) * uint64(c.ways)
		set.mu.Lock()
		for w := 0; w < c.ways; w++ {
			e := &c.entries[base+uint64(w)]
			if e.tag != 0 && e.dirty && mode == ADR {
				lost++
				line := e.tag - 1
				snap := c.snaps[(base+uint64(w))*CachelineSize:]
				w0 := line / 8
				keep := mp.tearMask()
				for i := 0; i < CachelineSize/8; i++ {
					if keep>>i&1 == 1 {
						continue // torn: this word's new value reached media
					}
					atomic.StoreUint64(&p.words[w0+uint64(i)], le64At(snap, i*8))
				}
			}
			e.tag = 0
			e.dirty = false
			e.tick = 0
		}
		set.tick = 0
		set.mu.Unlock()
	}
	return lost
}

// dirtyLines returns the number of currently dirty cache lines
// (diagnostic; used by tests).
func (c *cache) dirtyLines() int {
	n := 0
	for si := range c.sets {
		set := &c.sets[si]
		base := uint64(si) * uint64(c.ways)
		set.mu.Lock()
		for w := 0; w < c.ways; w++ {
			if e := &c.entries[base+uint64(w)]; e.tag != 0 && e.dirty {
				n++
			}
		}
		set.mu.Unlock()
	}
	return n
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func le64At(b []byte, off int) uint64 {
	b = b[off:]
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
