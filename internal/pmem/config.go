// Package pmem simulates a byte-addressable persistent memory device
// together with the CPU cache hierarchy in front of it. It is the
// substrate every index in this repository is built on.
//
// The simulation reproduces the behaviours the Spash paper's design
// exploits (ICDE'24, §II):
//
//   - The CPU cache is modelled as a shared set-associative cache with
//     dirty-line tracking and LRU eviction. Stores hit or allocate
//     lines; dirty lines reach the PM media only on eviction, on an
//     explicit flush (clwb), or on a non-temporal store.
//   - The PM media has a 256-byte internal access granularity (an
//     "XPLine"). A small write-combining buffer (the "XPBuffer")
//     coalesces adjacent line write-backs; random evictions of lines
//     from many different XPLines thrash it and cause write
//     amplification, exactly as in the paper's Observation 2.
//   - The persistence domain is configurable: EADR includes the CPU
//     cache (dirty lines survive a crash), ADR does not (dirty lines
//     roll back to their media image on Crash).
//
// Because the host running this reproduction has no PM hardware and
// may have a single CPU, performance is measured in virtual time: each
// worker goroutine owns a Ctx whose clock is charged for every memory
// event according to the cost model in Timing. The harness combines
// worker clocks with the media bandwidth counters to obtain elapsed
// time for a multi-worker run (see the harness package).
package pmem

// CachelineSize is the CPU cacheline size in bytes.
const CachelineSize = 64

// XPLineSize is the internal access granularity of the simulated PM
// media (the 3D-XPoint "XPLine" from the paper's Observation 1).
const XPLineSize = 256

// Mode selects the persistence domain of the simulated platform.
type Mode int

const (
	// EADR places the CPU cache inside the persistence domain: data
	// is durable as soon as the store retires (the paper's target
	// platform, Barlow Pass + eADR).
	EADR Mode = iota
	// ADR keeps the CPU cache volatile: only data that reached the
	// media (via flush, eviction, or ntstore) survives a crash.
	ADR
)

func (m Mode) String() string {
	if m == ADR {
		return "ADR"
	}
	return "eADR"
}

// Timing is the virtual-time cost model, in nanoseconds. The defaults
// approximate the Optane DCPMM characterisation from the paper and
// from Yang et al. (FAST'20).
type Timing struct {
	// CacheHitLoad is charged for a load served by the CPU cache.
	CacheHitLoad int64
	// CacheMissLoad is charged for a load that misses the cache and
	// fetches the line from PM media.
	CacheMissLoad int64
	// CacheHitStore is charged for a store to a resident line.
	CacheHitStore int64
	// CacheMissStore is charged for a store that must first fetch
	// (write-allocate) the line from PM media. Much lower than the
	// load miss: the store buffer and out-of-order engine hide most
	// of the RFO latency (the fetched data is not a dependency), so
	// write-heavy workloads are bandwidth-bound, not latency-bound —
	// as on the paper's testbed.
	CacheMissStore int64
	// FlushIssue is charged for issuing a clwb; the write-back itself
	// proceeds asynchronously and is accounted in media bandwidth.
	FlushIssue int64
	// FenceDrain is charged by Fence when flushes are outstanding.
	FenceDrain int64
	// FenceIdle is charged by Fence when nothing is outstanding.
	FenceIdle int64
	// NTStoreLine is charged per cacheline moved by a non-temporal
	// store.
	NTStoreLine int64
	// DRAMAccess is the cost helpers charge for touching volatile
	// (DRAM) structures such as the directory.
	DRAMAccess int64

	// PMReadBandwidth and PMWriteBandwidth are the aggregate media
	// bandwidths in bytes per second, used by the harness to bound
	// elapsed time from the media byte counters.
	PMReadBandwidth  float64
	PMWriteBandwidth float64
}

// DefaultTiming returns the cost model used throughout the evaluation.
func DefaultTiming() Timing {
	return Timing{
		CacheHitLoad:     8,
		CacheMissLoad:    300,
		CacheHitStore:    8,
		CacheMissStore:   60,
		FlushIssue:       25,
		FenceDrain:       90,
		FenceIdle:        5,
		NTStoreLine:      60,
		DRAMAccess:       5,
		PMReadBandwidth:  40e9,
		PMWriteBandwidth: 15e9,
	}
}

// Config describes a simulated PM platform.
type Config struct {
	// PoolSize is the simulated PM capacity in bytes. It is rounded
	// up to a whole number of XPLines.
	PoolSize uint64
	// Mode selects the persistence domain (EADR by default).
	Mode Mode
	// CacheSize is the capacity of the simulated CPU cache in bytes
	// (the paper's testbed has a 42 MB shared L3).
	CacheSize uint64
	// CacheWays is the cache associativity.
	CacheWays int
	// XPBufferLines is the number of XPLine entries in the media
	// write-combining buffer.
	XPBufferLines int
	// Timing is the virtual-time cost model; zero value means
	// DefaultTiming.
	Timing Timing
}

// DefaultConfig returns a platform sized for tests and examples:
// 256 MB pool, 8 MB cache, eADR.
func DefaultConfig() Config {
	return Config{
		PoolSize:      256 << 20,
		Mode:          EADR,
		CacheSize:     8 << 20,
		CacheWays:     16,
		XPBufferLines: 64,
		Timing:        DefaultTiming(),
	}
}

func (c Config) withDefaults() Config {
	if c.PoolSize == 0 {
		c.PoolSize = 256 << 20
	}
	c.PoolSize = (c.PoolSize + XPLineSize - 1) &^ uint64(XPLineSize-1)
	if c.CacheSize == 0 {
		c.CacheSize = 8 << 20
	}
	if c.CacheWays == 0 {
		c.CacheWays = 16
	}
	if c.XPBufferLines == 0 {
		c.XPBufferLines = 64
	}
	if c.Timing == (Timing{}) {
		c.Timing = DefaultTiming()
	}
	return c
}
