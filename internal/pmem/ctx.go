package pmem

// maxPrefetch bounds the number of in-flight asynchronous loads a
// single worker can track. The paper's pipeline depth tops out at 8.
const maxPrefetch = 16

// Ctx is the per-worker execution context. Every memory operation on a
// Pool takes a Ctx; the pool charges virtual time to the Ctx's clock
// and accumulates the worker's event counters locally, so the hot path
// has no cross-worker contention.
//
// A Ctx must not be used from two goroutines at once. A worker that
// lives for the whole run can keep one Ctx; short-lived workers should
// Release their Ctx when done so its counters fold into the pool.
type Ctx struct {
	pool *Pool

	// clock is the worker's virtual time in nanoseconds.
	clock int64
	// pendingFlushes counts clwb operations issued since the last
	// fence; it determines the fence's drain cost.
	pendingFlushes int

	// prefetch tracks in-flight asynchronous loads: the line address
	// and the virtual time at which its data becomes available.
	prefetch [maxPrefetch]struct {
		line uint64
		done int64
	}
	nprefetch int

	// opDepth tracks BeginOp/EndOp nesting: while > 0 this worker has an
	// operation in flight and the pool refuses quiescent-only Crash
	// calls. atomicDepth tracks BeginAtomic/EndAtomic nesting for the
	// fault injector's failure-atomic sections (fault.go).
	opDepth     int
	atomicDepth int
	// atomicPending is set while BeginAtomic has registered an
	// outermost section on the pool but not yet passed its counted
	// step: a crash firing on that very step must not drain the
	// firing worker's own registration (fault.go).
	atomicPending bool

	stats Stats
}

// BeginOp marks the start of an index operation on this worker. Ops
// may nest (an operation that calls another counts once); while any
// operation is in flight, Pool.Crash without an armed FaultPlan
// panics, because a mid-operation power cut is only well-defined when
// taken through the deterministic fault injector.
func (c *Ctx) BeginOp() {
	if c.opDepth == 0 {
		c.pool.inFlight.Add(1)
	}
	c.opDepth++
}

// EndOp marks the end of the innermost operation started by BeginOp.
// It is safe in a deferred call on the injected-crash unwind path.
func (c *Ctx) EndOp() {
	if c.opDepth == 0 {
		panic("pmem: EndOp without BeginOp")
	}
	c.opDepth--
	if c.opDepth == 0 {
		c.pool.inFlight.Add(-1)
	}
}

// Clock returns the worker's virtual time in nanoseconds.
func (c *Ctx) Clock() int64 { return c.clock }

// ResetClock zeroes the worker's virtual clock (used at phase
// boundaries by the harness).
func (c *Ctx) ResetClock() { c.clock = 0 }

// Charge advances the worker's clock by ns nanoseconds. Index code
// uses it to account for work on volatile structures (hashing, DRAM
// directory walks) that does not touch the simulated pool.
func (c *Ctx) Charge(ns int64) { c.clock += ns }

// ChargeDRAM advances the clock by n DRAM access costs.
func (c *Ctx) ChargeDRAM(n int) { c.clock += int64(n) * c.pool.cfg.Timing.DRAMAccess }

// Stats returns the events recorded through this context so far.
func (c *Ctx) Stats() Stats { return c.stats }

// Release folds the context's counters into the pool's retired total.
// The context must not be used afterwards.
func (c *Ctx) Release() {
	c.pool.retire(c)
	c.pool = nil
}

// notePrefetch records that line will be available at virtual time
// done. If the table is full the oldest entry is dropped (matching a
// hardware prefetcher's limited tracking).
func (c *Ctx) notePrefetch(line uint64, done int64) {
	for i := 0; i < c.nprefetch; i++ {
		if c.prefetch[i].line == line {
			if done < c.prefetch[i].done {
				c.prefetch[i].done = done
			}
			return
		}
	}
	if c.nprefetch == maxPrefetch {
		copy(c.prefetch[:], c.prefetch[1:])
		c.nprefetch--
	}
	c.prefetch[c.nprefetch].line = line
	c.prefetch[c.nprefetch].done = done
	c.nprefetch++
}

// takePrefetch looks up (and removes) an in-flight load of line. It
// returns the completion time and whether a prefetch was found.
func (c *Ctx) takePrefetch(line uint64) (int64, bool) {
	for i := 0; i < c.nprefetch; i++ {
		if c.prefetch[i].line == line {
			done := c.prefetch[i].done
			c.nprefetch--
			c.prefetch[i] = c.prefetch[c.nprefetch]
			return done, true
		}
	}
	return 0, false
}
